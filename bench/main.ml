(* The benchmark/reproduction harness: regenerates every table and figure
   of "Anonymity on QuickSand: Using BGP to Compromise Tor" (HotNets-XIII),
   prints paper-vs-measured rows, runs the ablations called out in
   DESIGN.md, and finishes with Bechamel microbenchmarks of each
   experiment's kernel.

   Usage:  main.exe [--scale paper|small] [--seed N] [--only T1,F3L,...]
                    [--no-micro]                                          *)

let scale = ref "paper"
let seed = ref 1
let only : string list ref = ref []
let micro = ref true

let spec =
  [ ("--scale", Arg.Symbol ([ "paper"; "small" ], fun s -> scale := s),
     " scenario size (default paper)");
    ("--seed", Arg.Set_int seed, " experiment seed (default 1)");
    ("--only",
     Arg.String (fun s -> only := String.split_on_char ',' s),
     " comma-separated experiment ids (default: all)");
    ("--no-micro", Arg.Clear micro, " skip the Bechamel microbenchmarks") ]

let want id = !only = [] || List.mem id !only

let t0 = Clock.now ()

let section id title f =
  if want id then begin
    Format.printf "@.=== %s: %s ===@." id title;
    let start = Clock.now () in
    f ();
    Format.printf "--- (%s took %.1f s; %.0f s elapsed)@." id
      (Clock.now () -. start)
      (Clock.now () -. t0)
  end

let fmt = Format.std_formatter

(* ------------------------------------------------------------------ *)

let () =
  Arg.parse spec (fun _ -> ()) "quicksand bench";
  let size = if !scale = "small" then Scenario.Small else Scenario.Paper in
  Format.printf
    "quicksand reproduction harness — scale=%s seed=%d@." !scale !seed;
  let scenario = Scenario.build ~seed:!seed size in
  Format.printf
    "scenario: %d ASes, %d links, %d announced prefixes, %d relays, %d sessions@."
    (As_graph.num_ases scenario.Scenario.graph)
    (As_graph.num_links scenario.Scenario.graph)
    (Addressing.count scenario.Scenario.addressing)
    (Consensus.n_relays scenario.Scenario.consensus)
    (List.length (Scenario.sessions scenario));

  let dynamics =
    if !scale = "small" then Dynamics.short_config else Dynamics.default_config
  in
  (* One full measurement month feeds T1, F3L and F3R. *)
  let measurement = ref None in
  let get_measurement () =
    match !measurement with
    | Some m -> m
    | None ->
        Format.printf "(running the measurement month...)@.";
        let m = Measurement.run ~dynamics scenario in
        Format.printf
          "(month done: %d churn events, %d updates emitted, %d reset bursts filtered)@."
          m.Measurement.dyn_stats.Dynamics.churn_events
          m.Measurement.dyn_stats.Dynamics.updates_emitted
          (match m.Measurement.filter_stats with
           | Some fs -> List.length fs.Session_reset.bursts
           | None -> 0);
        Format.printf "%a@." Measurement.pp_dynamics_summary m;
        measurement := Some m;
        m
  in

  section "T1" "dataset summary (§4 Methodology)" (fun () ->
      Dataset.print fmt (Dataset.compute (get_measurement ())));

  section "F2L" "Figure 2 left — relay concentration across ASes" (fun () ->
      Concentration.print fmt (Concentration.compute scenario));

  section "F3L" "Figure 3 left — path changes of Tor prefixes" (fun () ->
      Path_changes.print fmt (Path_changes.compute (get_measurement ())));

  section "F3R" "Figure 3 right — extra ASes seeing Tor traffic" (fun () ->
      As_exposure.print fmt (As_exposure.compute (get_measurement ())));

  section "M1" "§3.1 analytic compromise model" (fun () ->
      let rng = Scenario.rng_for scenario "compromise" in
      let m1 = Compromise.compute ~rng () in
      Compromise.print fmt m1;
      (* plug the measured month into the model *)
      (match !measurement with
       | Some m ->
           let exposure = As_exposure.compute m in
           let static, dynamic = Compromise.exposure_based ~f:0.05 ~l:3 exposure in
           Format.printf
             "  with f=0.05, l=3 guards: P[compromise] %.3f on static paths -> %.3f with measured dynamics@."
             static dynamic
       | None -> ()));

  section "F2R" "Figure 2 right — asymmetric traffic analysis" (fun () ->
      let rng = Scenario.rng_for scenario "asymmetric" in
      let size = if !scale = "small" then 8 * 1024 * 1024 else 40 * 1024 * 1024 in
      let r = Asymmetric.run ~rng ~size () in
      Asymmetric.print fmt r;
      let m = Asymmetric.deanonymize ~rng () in
      Asymmetric.print_matching fmt m);

  section "A1" "§3.2 prefix hijack — anonymity sets" (fun () ->
      let rng = Scenario.rng_for scenario "hijack" in
      Deanonymization.print_hijack fmt
        (Deanonymization.hijack ~rng ~n_trials:15 ~n_clients:40 scenario));

  section "A2" "§3.2 prefix interception — exact deanonymization" (fun () ->
      let rng = Scenario.rng_for scenario "interception" in
      Deanonymization.print_interception fmt
        (Deanonymization.interception ~rng ~n_trials:15 scenario));

  section "C1a" "§5 countermeasure — AS-aware relay selection" (fun () ->
      let rng = Scenario.rng_for scenario "selection" in
      Countermeasures.print_selection fmt
        (Countermeasures.selection ~rng ~n_trials:20 scenario));

  section "C1b" "§5 countermeasure — short AS-PATH guards vs stealth attacks"
    (fun () ->
       let rng = Scenario.rng_for scenario "stealth" in
       Countermeasures.print_stealth fmt
         (Countermeasures.stealth_resilience ~rng ~n_trials:20 scenario));

  section "C1c" "§5 countermeasure — relay-prefix monitoring" (fun () ->
      let rng = Scenario.rng_for scenario "monitoring" in
      Countermeasures.print_monitoring fmt
        (Countermeasures.monitoring ~rng ~n_attacks:6 scenario));

  section "M2" "§2 long-term anonymity vs guard design" (fun () ->
      let rng = Scenario.rng_for scenario "long-term" in
      let horizon_days = if !scale = "small" then 120 else 90 in
      Long_term.print fmt (Long_term.compare_designs ~rng ~horizon_days scenario));

  section "X1" "RPKI/ROV deployment vs BGP attacks (§7)" (fun () ->
      let rng = Scenario.rng_for scenario "rov" in
      let n_trials = if !scale = "small" then 12 else 8 in
      Bgp_security.print fmt (Bgp_security.sweep ~rng ~n_trials scenario));

  section "X2" "routing asymmetry on the entry segment (§3.3)" (fun () ->
      let rng = Scenario.rng_for scenario "asymmetry" in
      Route_asymmetry.print fmt (Route_asymmetry.compute ~rng scenario));

  section "X3" "the convergence side channel (§3.1)" (fun () ->
      Convergence_leak.print fmt (Convergence_leak.compute (get_measurement ())));

  section "GI" "guard inference (the §3.2 precursor)" (fun () ->
      let rng = Scenario.rng_for scenario "guard-inference" in
      List.iter
        (fun probes ->
           let config = { Guard_inference.default_config with Guard_inference.probes } in
           let rate =
             Guard_inference.success_rate ~rng ~config ~trials:150
               scenario.Scenario.consensus
           in
           Format.printf
             "  congestion probing, %d probes/candidate: guard identified in %.0f%% of trials@."
             probes (100. *. rate))
        [ 1; 3; 10 ]);

  (* ---------------- ablations (DESIGN.md §5) ----------------------- *)

  section "AB-reset" "ablation — session-reset filtering on/off" (fun () ->
      let short =
        { Dynamics.short_config with Dynamics.resets_per_session = 4. }
      in
      let tor_changes m =
        List.fold_left
          (fun acc (c : Measurement.cell) ->
             if Measurement.is_tor m c.Measurement.key.Measurement.prefix then
               acc + c.Measurement.path_changes
             else acc)
          0 m.Measurement.cells
      in
      let tor_updates m =
        List.fold_left
          (fun acc (c : Measurement.cell) ->
             if Measurement.is_tor m c.Measurement.key.Measurement.prefix then
               acc + c.Measurement.updates
             else acc)
          0 m.Measurement.cells
      in
      let with_filter = Measurement.run ~dynamics:short scenario in
      let without = Measurement.run ~dynamics:short ~no_filter:true scenario in
      Format.printf
        "  2-day run, Tor-prefix updates: %d filtered vs %d unfiltered (+%.0f%% artifacts)@."
        (tor_updates with_filter) (tor_updates without)
        (100.
         *. float_of_int (tor_updates without - tor_updates with_filter)
         /. float_of_int (max 1 (tor_updates with_filter)));
      Format.printf
        "  Tor-prefix path changes: %d filtered vs %d unfiltered — resets inflate the paper's headline metric@."
        (tor_changes with_filter) (tor_changes without));

  section "AB-threshold" "ablation — the 5-minute exposure rule" (fun () ->
      let m = get_measurement () in
      List.iter
        (fun minutes ->
           let e = As_exposure.compute ~threshold:(minutes *. 60.) m in
           Format.printf
             "  threshold %5.1f min: >=2 extra ASes in %5.1f%% of cases, max %d@."
             minutes
             (100. *. e.As_exposure.frac_at_least_2)
             e.As_exposure.max_extras)
        [ 0.; 1.; 5.; 30. ]);

  section "AB-loss" "ablation — asymmetric correlation vs packet loss" (fun () ->
      let rng = Scenario.rng_for scenario "ab-loss" in
      List.iter
        (fun loss ->
           let lp (l : Onion.link_profile) = { l with Onion.loss } in
           let p = Onion.default_profile in
           let profile =
             { p with
               Onion.client_guard = lp p.Onion.client_guard;
               guard_middle = lp p.Onion.guard_middle;
               middle_exit = lp p.Onion.middle_exit;
               exit_server = lp p.Onion.exit_server }
           in
           let r = Asymmetric.run ~rng ~size:(8 * 1024 * 1024) ~profile () in
           let m = Asymmetric.deanonymize ~rng ~loss () in
           Format.printf
             "  loss %.3f%%: asymmetric r = %.4f, ack-ack r = %.4f, matching %d/%d@."
             (100. *. loss) r.Asymmetric.asymmetric_r r.Asymmetric.ack_ack_r
             m.Asymmetric.correct m.Asymmetric.n_flows)
        [ 0.; 0.001; 0.005; 0.02 ]);

  section "AB-guards" "ablation — guard-set size l" (fun () ->
      let exposure = Option.map (fun m -> As_exposure.compute m) !measurement in
      List.iter
        (fun l ->
           match exposure with
           | Some e ->
               let _, dynamic = Compromise.exposure_based ~f:0.05 ~l e in
               Format.printf "  l = %d guards: mean P[compromise] = %.3f@." l dynamic
           | None ->
               Format.printf "  l = %d guards: P = %.3f (x = 6 assumed)@." l
                 (Anonymity.multi_guard_probability ~f:0.05 ~x:6 ~l))
        [ 1; 3; 9 ]);

  section "AB-radius" "ablation — stealth-attack scope vs detectability" (fun () ->
      let rng = Scenario.rng_for scenario "ab-radius" in
      let guard =
        Path_selection.pick_weighted ~rng (Consensus.guards scenario.Scenario.consensus)
      in
      match Scenario.guard_announcement scenario guard with
      | None -> Format.printf "  (skipped: unrouted guard)@."
      | Some victim ->
          let attacker = Scenario.random_client_as ~rng scenario in
          let monitors = Scenario.monitors scenario in
          List.iter
            (fun (radius, t) ->
               Format.printf
                 "  radius %2d: captures %4d ASes, seen by %2d/%d monitor ASes (P[detect] %.2f)@."
                 radius
                 (List.length t.Community_attack.visible_at)
                 t.Community_attack.seen_by_monitors (List.length monitors)
                 (Community_attack.detection_probability t))
            (Community_attack.sweep_radius scenario.Scenario.indexed ~victim
               ~attacker ~monitors [ 1; 2; 3; 5; 8 ]));

  section "AB-cache" "ablation — route cache on/off (same stream, fewer recomputes)"
    (fun () ->
       (* Declared as the `ab-cache` sweep registry entry: `quicksand
          sweep --matrix ab-cache` runs the same two arms and writes
          their results directories; this bench arm keeps the wall-clock
          comparison, which the sweep deliberately never records. *)
       (* Short outages keep failures mostly non-overlapping, so reverts
          return to an exact previously-seen (announcement, failed)
          configuration — the reuse pattern the cache exists for. Long
          overlapping outages make the global failed set churn constantly
          and no exact configuration ever repeats. *)
       let cfg =
         { Dynamics.short_config with
           Dynamics.duration = 1. *. 86_400.;
           base_churn_rate = 2.0;
           mean_outage = 5.;
           mean_global_outage = 5.;
           (* Delta repair off: this ablation isolates the cache over the
              full-recompute engine (AB-delta below isolates the delta
              engine). *)
           delta_states = 0 }
       in
       let capacity = if !scale = "small" then 4096 else 1024 in
       (* Timed runs discard updates so the clock measures route
          computation, not pretty-printing. *)
       let timed cache_size =
         let rng = Scenario.rng_for scenario "ab-cache" in
         let start = Clock.now () in
         let _, stats =
           Dynamics.run ~rng
             { cfg with Dynamics.route_cache_size = cache_size }
             scenario.Scenario.world ~emit:ignore
         in
         (Clock.now () -. start, stats)
       in
       (* Separate (untimed) runs capture the full rendered streams for
          the byte-identity check. *)
       let capture cache_size =
         let buf = Buffer.create (1 lsl 20) in
         let ppf = Format.formatter_of_buffer buf in
         let _ =
           Dynamics.run ~rng:(Scenario.rng_for scenario "ab-cache")
             { cfg with Dynamics.route_cache_size = cache_size }
             scenario.Scenario.world
             ~emit:(fun u -> Format.fprintf ppf "%a@." Update.pp u)
         in
         Format.pp_print_flush ppf ();
         Buffer.contents buf
       in
       let t_off, s_off = timed 0 in
       let t_on, s_on = timed capacity in
       Format.printf
         "  cache off: %.2f s, %d recomputations@." t_off
         s_off.Dynamics.full_recomputations;
       Format.printf
         "  cache on:  %.2f s, %d recomputations, %d hits / %d misses / %d evictions@."
         t_on s_on.Dynamics.full_recomputations s_on.Dynamics.cache_hits
         s_on.Dynamics.cache_misses s_on.Dynamics.cache_evictions;
       Format.printf "  speedup: %.2fx; streams byte-identical: %b@."
         (t_off /. Float.max t_on 1e-9)
         (String.equal (capture 0) (capture capacity)));

  section "AB-delta"
    "ablation — incremental delta repair vs full recompute (cache disabled)"
    (fun () ->
       (* Declared as the `ab-delta` sweep registry entry — same two
          arms, results-directory form. The churn-heavy day from
          AB-cache, with the route cache off in both arms so the clock
          compares the two propagation engines directly: every outcome
          request either full-computes or delta-repairs. *)
       let cfg =
         { Dynamics.short_config with
           Dynamics.duration = 1. *. 86_400.;
           base_churn_rate = 2.0;
           mean_outage = 5.;
           mean_global_outage = 5.;
           route_cache_size = 0 }
       in
       let timed delta_states =
         let rng = Scenario.rng_for scenario "ab-delta" in
         let start = Clock.now () in
         let _, stats =
           Dynamics.run ~rng
             { cfg with Dynamics.delta_states }
             scenario.Scenario.world ~emit:ignore
         in
         (Clock.now () -. start, stats)
       in
       let capture delta_states =
         let buf = Buffer.create (1 lsl 20) in
         let ppf = Format.formatter_of_buffer buf in
         let _ =
           Dynamics.run ~rng:(Scenario.rng_for scenario "ab-delta")
             { cfg with Dynamics.delta_states }
             scenario.Scenario.world
             ~emit:(fun u -> Format.fprintf ppf "%a@." Update.pp u)
         in
         Format.pp_print_flush ppf ();
         Buffer.contents buf
       in
       (* Enough retained states for every origin at either scale: states
          are keyed per origin, and an LRU smaller than the origin count
          thrashes — every eviction turns the next repair into a full
          rebuild, which is the ablation's off arm. *)
       let states = 4096 in
       let t_off, s_off = timed 0 in
       let t_on, s_on = timed states in
       Format.printf "  delta off: %.2f s, %d full recomputations@." t_off
         s_off.Dynamics.full_recomputations;
       Format.printf
         "  delta on:  %.2f s, %d full recomputations, %d delta steps (%d stop-early links)@."
         t_on s_on.Dynamics.full_recomputations s_on.Dynamics.delta_steps
         s_on.Dynamics.delta_stop_early;
       Format.printf "  speedup: %.2fx; streams byte-identical: %b@."
         (t_off /. Float.max t_on 1e-9)
         (String.equal (capture 0) (capture states)));

  section "AB-jobs" "ablation — executor pool, jobs=1 vs jobs=N (M1 Monte-Carlo)"
    (fun () ->
       (* Per-item seeding means the rendered table must be byte-identical
          at every worker count; only the wall clock may move. On a 1-CPU
          container [Domain.recommended_domain_count () = 1], so the
          honest speedup here is ~1x — the ablation still proves the
          determinism contract and prints the scheduling overhead. *)
       let jobs_n = max 2 (Domain.recommended_domain_count ()) in
       let trials = if !scale = "small" then 20_000 else 60_000 in
       let run jobs =
         Pool.with_pool ~jobs (fun exec ->
             let rng = Scenario.rng_for scenario "ab-jobs" in
             let start = Clock.now () in
             let m1 = Compromise.compute ~rng ~exec ~trials () in
             let dt = Clock.now () -. start in
             let buf = Buffer.create 4096 in
             let ppf = Format.formatter_of_buffer buf in
             Compromise.print ppf m1;
             Format.pp_print_flush ppf ();
             (dt, Buffer.contents buf, Pool.stats exec))
       in
       let t1, out1, st1 = run 1 in
       let tn, outn, stn = run jobs_n in
       Format.printf "  jobs=1: %.2f s  (%a)@." t1 Pool.pp_stats st1;
       Format.printf "  jobs=%d: %.2f s  (%a)@." jobs_n tn Pool.pp_stats stn;
       Format.printf
         "  speedup: %.2fx on %d recommended domain(s); tables byte-identical: %b@."
         (t1 /. Float.max tn 1e-9)
         (Domain.recommended_domain_count ())
         (String.equal out1 outn));

  section "AB-obs" "ablation — Qs_obs instrumentation on vs off (F3L dynamics kernel)"
    (fun () ->
       (* Declared as the `ab-obs` sweep registry entry, whose test pins
          the correctness half (identical measured numbers both arms);
          this bench arm keeps the cost half. *)
       (* Every hot-path counter bump in Dynamics/Route_cache/
          Session_reset/Pool goes through the registry; this proves the
          cost is in the noise. Runs alternate on/off so drift hits both
          arms equally, and each arm keeps its best-of — the stable
          estimate of kernel time under timer jitter. *)
       let cfg =
         { Dynamics.short_config with
           Dynamics.duration = 1. *. 86_400.;
           base_churn_rate = 2.0;
           mean_outage = 5.;
           mean_global_outage = 5. }
       in
       let timed enabled =
         Metrics.set_enabled enabled;
         let rng = Scenario.rng_for scenario "ab-obs" in
         let start = Clock.now () in
         let _ = Dynamics.run ~rng cfg scenario.Scenario.world ~emit:ignore in
         Metrics.set_enabled true;
         Clock.now () -. start
       in
       ignore (timed true);                   (* warm-up *)
       let rounds = 5 in
       let offs = ref [] and ons = ref [] in
       for _ = 1 to rounds do
         offs := timed false :: !offs;
         ons := timed true :: !ons
       done;
       let best l = List.fold_left Float.min infinity l in
       let t_off = best !offs in
       let t_on = best !ons in
       let overhead = 100. *. ((t_on /. Float.max t_off 1e-9) -. 1.) in
       Format.printf "  instrumentation off: %.3f s (best of %d)@." t_off rounds;
       Format.printf "  instrumentation on:  %.3f s (best of %d)@." t_on rounds;
       Format.printf "  overhead: %+.2f%% (acceptance: < 2%%)@." overhead);

  (* ---------------- Bechamel microbenchmarks ------------------------ *)
  if !micro && want "micro" then begin
    Format.printf "@.=== micro: Bechamel kernels (one per experiment) ===@.";
    let open Bechamel in
    let open Toolkit in
    (* small fixtures shared by the kernels *)
    let rng = Rng.of_int 7 in
    let small = Scenario.build ~seed:7 Scenario.Small in
    let ix = small.Scenario.indexed in
    let trie = Addressing.trie small.Scenario.addressing in
    let some_origin =
      match Addressing.announced small.Scenario.addressing with
      | (p, o) :: _ -> Announcement.originate o p
      | [] -> failwith "bench: scenario announced no prefixes"
    in
    let guard =
      Path_selection.pick_weighted ~rng (Consensus.guards small.Scenario.consensus)
    in
    let victim =
      match Scenario.guard_announcement small guard with
      | Some v -> v
      | None -> some_origin
    in
    let attacker = Scenario.random_client_as ~rng small in
    let mrt_blob =
      Mrt.encode
        (List.init 200 (fun i ->
             { Mrt.timestamp = float_of_int i;
               peer_as = Asn.of_int 64512; local_as = Asn.of_int 12654;
               peer_ip = Ipv4.of_string "192.0.2.1";
               local_ip = Ipv4.of_string "192.0.2.2";
               message =
                 Mrt.Update
                   { withdrawn = [];
                     as_path = [ Asn.of_int 64512; Asn.of_int 3356; Asn.of_int 24940 ];
                     next_hop = None; communities = [];
                     nlri = [ Prefix.of_string "78.46.0.0/15" ] } }))
    in
    let series_a = Array.init 256 (fun i -> float_of_int ((i * 31) mod 97)) in
    let series_b = Array.init 256 (fun i -> float_of_int ((i * 17) mod 89)) in
    let cmeasure = Measurement.run ~dynamics:Dynamics.short_config small in
    let addr = Ipv4.of_string "1.2.3.4" in
    (* A churny synthetic feed for the qs_serve hot path: 64 keys cycling
       through announces and withdrawals over a sub-window timescale, so
       the ring rolls, timers arm and evictions fire inside the kernel. *)
    let serve_feed =
      let session = { Update.collector = "rrc00"; peer = Asn.of_int 64512 } in
      let prefixes =
        Array.init 64 (fun i ->
            Prefix.make (Ipv4.of_int_trunc (0x0A000000 + (i * 65536))) 16)
      in
      let paths =
        [| [ Asn.of_int 1; Asn.of_int 2 ];
           [ Asn.of_int 3; Asn.of_int 1; Asn.of_int 2 ];
           [ Asn.of_int 4; Asn.of_int 2 ];
           [ Asn.of_int 5; Asn.of_int 4; Asn.of_int 2 ] |]
      in
      Array.init 2048 (fun i ->
          let time = float_of_int i in
          let p = prefixes.(i mod 64) in
          if i mod 7 = 0 then
            { Update.time; session; kind = Update.Withdraw p }
          else
            { Update.time; session;
              kind = Update.Announce (Route.make p paths.(i mod 4)) })
    in
    let serve_window =
      { Window.window = 120.; bucket = 60.; threshold = 60. }
    in
    let tests =
      Test.make_grouped ~name:"quicksand"
        [ Test.make ~name:"T1-tor-prefix-mapping"
            (Staged.stage (fun () ->
                 Tor_prefix.compute small.Scenario.addressing
                   small.Scenario.consensus));
          Test.make ~name:"F2L-concentration"
            (Staged.stage (fun () -> Concentration.compute small));
          Test.make ~name:"F3L-path-changes"
            (Staged.stage (fun () -> Path_changes.compute cmeasure));
          Test.make ~name:"F3R-as-exposure"
            (Staged.stage (fun () -> As_exposure.compute cmeasure));
          Test.make ~name:"M1-compromise-formula"
            (Staged.stage (fun () ->
                 Anonymity.multi_guard_probability ~f:0.05 ~x:12 ~l:3));
          Test.make ~name:"F2R-correlation-kernel"
            (Staged.stage (fun () -> Correlation.pearson series_a series_b));
          Test.make ~name:"A1-hijack"
            (Staged.stage (fun () ->
                 Hijack.same_prefix ix ~victim ~attacker ()));
          Test.make ~name:"A2-interception"
            (Staged.stage (fun () ->
                 Interception.run ix ~victim ~attacker ()));
          Test.make ~name:"C1-propagation"
            (Staged.stage (fun () -> Propagate.compute ix [ some_origin ]));
          (let ws = Propagate.Workspace.create () in
           Test.make ~name:"C1-propagation-ws"
             (Staged.stage (fun () ->
                  Propagate.compute ix ~workspace:ws [ some_origin ])));
          Test.make ~name:"substrate-lpm"
            (Staged.stage (fun () -> Prefix_trie.longest_match addr trie));
          Test.make ~name:"substrate-mrt-decode"
            (Staged.stage (fun () -> Mrt.decode mrt_blob));
          (* Trace-shaped churn: a full simulated day of heavy-tailed
             up/down renewals across 64 entities, the stream Dynamics
             consumes under churn=trace-pareto. *)
          Test.make ~name:"churn-trace-generate"
            (Staged.stage (fun () ->
                 Churn.generate ~rng:(Rng.of_int 11) Churn.pareto_day
                   ~entities:64 ~duration:86_400.));
          Test.make ~name:"M2-consensus-epochs"
            (Staged.stage (fun () ->
                 Consensus_dynamics.generate ~rng:(Rng.of_int 12)
                   ~gen:Consensus.small_params ~n_epochs:24
                   small.Scenario.graph small.Scenario.addressing
                   small.Scenario.consensus));
          (* The streaming service's sustained-ingestion kernels: 2048
             updates per run, so updates/sec = 2048 / time-per-run. *)
          Test.make ~name:"S1-serve-window-apply"
            (Staged.stage (fun () ->
                 let w =
                   Window.create ~config:serve_window
                     ~watched:(fun _ -> true) ()
                 in
                 Array.iter
                   (fun u -> ignore (Window.apply w u : Event.t list))
                   serve_feed));
          Test.make ~name:"S1-serve-ingest-pipeline"
            (Staged.stage (fun () ->
                 let i = Ingest.create () in
                 let w =
                   Window.create ~config:serve_window
                     ~watched:(fun _ -> true) ()
                 in
                 let apply u = ignore (Window.apply w u : Event.t list) in
                 Array.iter
                   (fun u ->
                      ignore (Ingest.push i u : Ingest.push_result);
                      List.iter apply (Ingest.ready i))
                   serve_feed;
                 List.iter apply (Ingest.flush i))) ]
    in
    let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None () in
    let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
    let ols =
      Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
    List.iter
      (fun (name, o) ->
         let est =
           match Analyze.OLS.estimates o with
           | Some (t :: _) -> Printf.sprintf "%12.1f ns/run" t
           | Some [] | None -> "(no estimate)"
         in
         Format.printf "  %-40s %s@." name est)
      (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);

    (* The valley-free closure is the substrate of every Qs_static bound,
       and the one kernel already expected to work at CAIDA scale — so it
       is benchmarked on the harness's main scenario (2 362 ASes at the
       default paper scale), not the small fixture, and the result is
       extrapolated to a 47k-AS graph under the O(V+E) cost model at the
       measured links-per-AS ratio. *)
    Format.printf "@.=== micro: valley-free closure kernel (Qs_static substrate) ===@.";
    let main_ix = scenario.Scenario.indexed in
    let n_main = As_graph.num_ases scenario.Scenario.graph in
    let m_main = As_graph.num_links scenario.Scenario.graph in
    let reach = Reach.create main_ix in
    let closure_sources =
      As_graph.ases scenario.Scenario.graph |> Array.of_list
    in
    let next_src = ref 0 in
    (* The delta-step kernel sits next to the closure row because the two
       are the per-event costs of the static and dynamic pipelines: one
       flap = one fail repair + one restore repair on a warm state,
       rotating through the link list so the kernel is not measured on
       one lucky subtree. *)
    let delta_st = Propagate.Delta.create main_ix in
    let delta_scratch = Propagate.Delta.create_scratch () in
    let delta_origin = closure_sources.(0) in
    let delta_ann =
      [ Announcement.originate delta_origin (Prefix.of_string "10.9.0.0/16") ]
    in
    let (_ : Propagate.t * Propagate.Delta.kind) =
      Propagate.Delta.update delta_st delta_scratch delta_ann
    in
    let delta_links =
      As_graph.links scenario.Scenario.graph
      |> List.filter (fun (a, b, _) ->
          not (Asn.equal a delta_origin) && not (Asn.equal b delta_origin))
      |> Array.of_list
    in
    let next_link = ref 0 in
    let closure_tests =
      Test.make_grouped ~name:"quicksand"
        [ Test.make ~name:(Printf.sprintf "reach-closure-%d-ases" n_main)
            (Staged.stage (fun () ->
                 (* rotate the source so the kernel is not measured on one
                    lucky BFS shape *)
                 let src =
                   closure_sources.(!next_src mod Array.length closure_sources)
                 in
                 incr next_src;
                 Reach.compute reach src));
          Test.make ~name:(Printf.sprintf "delta-step-flap-%d-ases" n_main)
            (Staged.stage (fun () ->
                 let a, b, _ =
                   delta_links.(!next_link mod Array.length delta_links)
                 in
                 incr next_link;
                 let failed = Link_set.of_list [ (a, b) ] in
                 ignore
                   (Propagate.Delta.update delta_st delta_scratch ~failed
                      delta_ann);
                 ignore
                   (Propagate.Delta.update delta_st delta_scratch delta_ann))) ]
    in
    let raw = Benchmark.all cfg Instance.[ monotonic_clock ] closure_tests in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    let estimate name =
      match Hashtbl.find_opt results ("quicksand/" ^ name) with
      | Some o ->
          (match Analyze.OLS.estimates o with
           | Some (t :: _) -> Some t
           | Some [] | None -> None)
      | None -> None
    in
    (match estimate (Printf.sprintf "reach-closure-%d-ases" n_main) with
     | Some t ->
         Format.printf "  %-40s %12.1f ns/run@."
           (Printf.sprintf "reach-closure-%d-ases" n_main) t;
         (* O(V+E) model: scale both nodes and links by 47k/V (links/AS
            ratio held at the measured value). *)
         let scale = 47_000. /. float_of_int n_main in
         let t47 = t *. scale in
         Format.printf
           "  extrapolated to 47k ASes (%d links/AS held): %.1f ms per \
            closure, %.1f s for an all-AS closure cache@."
           (int_of_float
              (Float.round (2. *. float_of_int m_main /. float_of_int n_main)))
           (t47 /. 1e6)
           (t47 *. 47_000. /. 1e9)
     | None -> Format.printf "  (no estimate for the closure kernel)@.");
    (match estimate (Printf.sprintf "delta-step-flap-%d-ases" n_main) with
     | Some t ->
         Format.printf "  %-40s %12.1f ns/run@."
           (Printf.sprintf "delta-step-flap-%d-ases" n_main) t
     | None -> Format.printf "  (no estimate for the delta-step kernel)@.");

    (* The month-dynamics kernels each run a whole simulation (~0.1–0.5 s),
       so they get their own, longer quota — the 0.5 s above would fit a
       single run. Short mostly non-overlapping outages are the regime the
       route cache exists for: reverts land back on previously-seen
       configurations (see the AB-cache ablation). *)
    Format.printf "@.=== micro: month-dynamics kernel, cached vs uncached ===@.";
    (* [base_churn_rate] is per-duration, so shrinking the horizon does not
       shrink the event count — it compresses the timeline and makes
       outages overlap (killing exact-configuration reuse). Keep the full
       day and lower the churn instead. *)
    let dyn_cfg cache =
      { Dynamics.short_config with
        Dynamics.duration = 1. *. 86_400.;
        base_churn_rate = 0.5;
        mean_outage = 5.;
        mean_global_outage = 5.;
        route_cache_size = cache;
        (* Cached/uncached isolate the memoization layer over the
           full-recompute engine; the -delta row below swaps in the
           incremental repair engine with no cache. *)
        delta_states = 0 }
    in
    let dyn_tests =
      Test.make_grouped ~name:"quicksand"
        [ Test.make ~name:"F3L-dynamics-cached"
            (Staged.stage (fun () ->
                 Dynamics.run ~rng:(Rng.of_int 11) (dyn_cfg 4096)
                   small.Scenario.world ~emit:ignore));
          Test.make ~name:"F3L-dynamics-uncached"
            (Staged.stage (fun () ->
                 Dynamics.run ~rng:(Rng.of_int 11) (dyn_cfg 0)
                   small.Scenario.world ~emit:ignore));
          Test.make ~name:"F3L-dynamics-delta"
            (Staged.stage (fun () ->
                 Dynamics.run ~rng:(Rng.of_int 11)
                   { (dyn_cfg 0) with Dynamics.delta_states = 4096 }
                   small.Scenario.world ~emit:ignore)) ]
    in
    let dyn_cfg_bench =
      Benchmark.cfg ~limit:50 ~quota:(Time.second 5.) ~kde:None ()
    in
    let raw = Benchmark.all dyn_cfg_bench Instance.[ monotonic_clock ] dyn_tests in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    let estimate name =
      match Hashtbl.find_opt results name with
      | Some o ->
          (match Analyze.OLS.estimates o with
           | Some (t :: _) -> Some t
           | Some [] | None -> None)
      | None -> None
    in
    let cached = estimate "quicksand/F3L-dynamics-cached" in
    let uncached = estimate "quicksand/F3L-dynamics-uncached" in
    let delta = estimate "quicksand/F3L-dynamics-delta" in
    (match (cached, uncached) with
     | Some c, Some u ->
         Format.printf "  %-40s %12.1f ns/run@." "F3L-dynamics-cached" c;
         Format.printf "  %-40s %12.1f ns/run@." "F3L-dynamics-uncached" u;
         Format.printf "  cache speedup: %.2fx@." (u /. Float.max c 1.)
     | _ -> Format.printf "  (no estimate for the dynamics kernels)@.");
    (match (delta, uncached) with
     | Some d, Some u ->
         Format.printf "  %-40s %12.1f ns/run@." "F3L-dynamics-delta" d;
         Format.printf "  delta speedup: %.2fx@." (u /. Float.max d 1.)
     | _ -> Format.printf "  (no estimate for the delta dynamics kernel)@.");

    (* Scheduling overhead of Pool.map on tiny tasks: mapping 8192 trivial
       items stresses chunk bookkeeping, not the work itself. chunk=1 is
       the pathological regime (one queue slot per item); larger chunks
       amortize it away. The baseline row is a plain Array.map. *)
    Format.printf "@.=== micro: Pool.map tiny-task overhead (chunking) ===@.";
    let items = Array.init 8192 (fun i -> i) in
    let tiny x = (x * 2654435761) lxor (x lsr 7) in
    let pool1 = Pool.create ~jobs:1 () in
    let pool2 = Pool.create ~jobs:2 () in
    let pool_kernel pool chunk =
      Staged.stage (fun () -> Pool.map ~chunk pool tiny items)
    in
    let pool_tests =
      Test.make_grouped ~name:"pool"
        (Test.make ~name:"baseline-array-map"
           (Staged.stage (fun () -> Array.map tiny items))
         :: List.concat_map
              (fun (label, pool) ->
                 List.map
                   (fun chunk ->
                      Test.make
                        ~name:(Printf.sprintf "map-%s-chunk%04d" label chunk)
                        (pool_kernel pool chunk))
                   [ 1; 64; 512 ])
              [ ("jobs1", pool1); ("jobs2", pool2) ])
    in
    let raw = Benchmark.all cfg Instance.[ monotonic_clock ] pool_tests in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
    List.iter
      (fun (name, o) ->
         let est =
           match Analyze.OLS.estimates o with
           | Some (t :: _) -> Printf.sprintf "%12.1f ns/run" t
           | Some [] | None -> "(no estimate)"
         in
         Format.printf "  %-40s %s@." name est)
      (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
    Pool.shutdown pool1;
    Pool.shutdown pool2
  end;
  Format.printf "@.done in %.1f s@." (Clock.now () -. t0)
