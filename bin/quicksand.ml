(* quicksand — command-line front end for the AS-level Tor attack toolkit.

   Each subcommand reproduces one experiment of "Anonymity on QuickSand"
   (HotNets-XIII 2014) on a freshly built (seeded) scenario. *)

open Cmdliner

let fmt = Format.std_formatter

(* ---- common options -------------------------------------------------- *)

let seed =
  let doc = "Experiment seed; equal seeds give identical scenarios." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let scale =
  let doc = "Scenario size: $(b,paper) (~2400 ASes, 4586 relays) or $(b,small)." in
  Arg.(value & opt (enum [ ("paper", Scenario.Paper); ("small", Scenario.Small) ])
         Scenario.Small
       & info [ "scale" ] ~docv:"SIZE" ~doc)

let days =
  let doc = "Simulated measurement duration in days." in
  Arg.(value & opt float 2. & info [ "days" ] ~docv:"DAYS" ~doc)

let json_flag =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Emit machine-readable JSON instead of text.")

let jobs =
  let doc =
    "Worker domains for parallel sweeps. Results are byte-identical at any \
     value; the default is what the runtime recommends for this machine."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* Shared per-flag definitions for options that several subcommands take.
   One definition per flag keeps names, docv and defaults from drifting
   between commands (the old copy-per-command style had three private
   [--trials] and three private [-o]). *)

let output_file =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write to a file instead of stdout.")

let trials_arg ?(doc = "Attack trials.") default =
  Arg.(value & opt int default & info [ "trials" ] ~docv:"N" ~doc)

(* Companion of [output_file]: dump [data] where the flag points. *)
let dump out data =
  match out with
  | None -> print_string data
  | Some path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc data);
      Format.printf "wrote %s@." path

(* ---- observability reports ------------------------------------------- *)

let metrics_file =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write a human-readable metrics report to $(docv) after the \
                 command finishes ($(b,-) for stdout).")

let metrics_json_file =
  Arg.(value & opt (some string) None
       & info [ "metrics-json" ] ~docv:"FILE"
           ~doc:"Write the qs-obs/1 JSON metrics report to $(docv) ($(b,-) \
                 for stdout). Counts are deterministic for a given seed; \
                 timing lives in dedicated fields.")

let trace_file =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Enable span tracing and write the JSON trace to $(docv) \
                 ($(b,-) for stdout).")

let obs_opts =
  let combine metrics metrics_json trace = (metrics, metrics_json, trace) in
  Term.(const combine $ metrics_file $ metrics_json_file $ trace_file)

let write_report path pp =
  match path with
  | "-" ->
      pp Format.std_formatter;
      Format.pp_print_flush Format.std_formatter ()
  | path ->
      Out_channel.with_open_text path (fun oc ->
          let ppf = Format.formatter_of_out_channel oc in
          pp ppf;
          Format.pp_print_flush ppf ());
      Format.eprintf "wrote %s@." path

(* Wrap a command body so the requested observability reports are
   written when it finishes — also on failure, so a crashed sweep still
   leaves its metrics behind. Callers that set exit codes must do so
   after this returns ([Stdlib.exit] would skip the reports). *)
let with_obs (metrics, metrics_json, trace) f =
  if trace <> None then Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      (match (metrics, metrics_json) with
       | None, None -> ()
       | _ ->
           let samples = Metrics.snapshot () in
           Option.iter
             (fun p ->
               write_report p (fun ppf -> Export.metrics_text ppf samples))
             metrics;
           Option.iter
             (fun p ->
               write_report p (fun ppf -> Export.metrics_json ppf samples))
             metrics_json);
      Option.iter
        (fun p ->
          let spans = Span.drain () in
          write_report p (fun ppf -> Export.trace_json ppf spans);
          Span.set_enabled false)
        trace)
    f

(* Run [f] over a fresh pool sized by --jobs (default: the runtime's
   recommendation) and print the executor stats afterwards. *)
let with_exec ?(show_stats = true) jobs f =
  let jobs =
    match jobs with Some j -> j | None -> Domain.recommended_domain_count ()
  in
  Pool.with_pool ~jobs (fun exec ->
      let r = f exec in
      if show_stats then Format.printf "%a@." Pool.pp_stats (Pool.stats exec);
      r)

let build_scenario seed scale =
  let s = Scenario.build ~seed scale in
  Format.printf
    "scenario: %d ASes, %d links, %d prefixes, %d relays, %d collector sessions (seed %d)@."
    (As_graph.num_ases s.Scenario.graph)
    (As_graph.num_links s.Scenario.graph)
    (Addressing.count s.Scenario.addressing)
    (Consensus.n_relays s.Scenario.consensus)
    (List.length (Scenario.sessions s))
    seed;
  s

let dynamics_for days =
  { Dynamics.default_config with Dynamics.duration = days *. 86_400. }

let measure scenario days =
  Format.printf "simulating %.1f days of BGP...@." days;
  Measurement.run ~dynamics:(dynamics_for days) scenario

(* ---- subcommands ------------------------------------------------------ *)

let dataset_cmd =
  let run seed scale days =
    let s = build_scenario seed scale in
    Dataset.print fmt (Dataset.compute (measure s days))
  in
  Cmd.v (Cmd.info "dataset" ~doc:"T1: the §4 dataset summary table")
    Term.(const run $ seed $ scale $ days)

let concentration_cmd =
  let run seed scale =
    let s = build_scenario seed scale in
    Concentration.print fmt (Concentration.compute s)
  in
  Cmd.v (Cmd.info "concentration" ~doc:"F2L: relay concentration across ASes")
    Term.(const run $ seed $ scale)

let path_changes_cmd =
  let run seed scale days jobs obs =
    with_obs obs (fun () ->
        let s = build_scenario seed scale in
        let m = measure s days in
        Format.printf "%a@." Measurement.pp_dynamics_summary m;
        with_exec jobs (fun exec ->
            Path_changes.print fmt (Path_changes.compute ~exec m)))
  in
  Cmd.v (Cmd.info "path-changes" ~doc:"F3L: Tor-prefix path-change CCDF")
    Term.(const run $ seed $ scale $ days $ jobs $ obs_opts)

let extra_ases_cmd =
  let run seed scale days threshold jobs obs =
    with_obs obs (fun () ->
        let s = build_scenario seed scale in
        let m = measure s days in
        with_exec jobs (fun exec ->
            As_exposure.print fmt (As_exposure.compute ~threshold ~exec m)))
  in
  let threshold =
    Arg.(value & opt float 300. & info [ "threshold" ] ~docv:"SECONDS"
           ~doc:"Residency threshold for an AS to count as exposed.")
  in
  Cmd.v (Cmd.info "extra-ases" ~doc:"F3R: extra-ASes-over-time CCDF")
    Term.(const run $ seed $ scale $ days $ threshold $ jobs $ obs_opts)

let compromise_cmd =
  let run seed jobs obs =
    with_obs obs (fun () ->
        let rng = Rng.of_int seed in
        with_exec jobs (fun exec ->
            Compromise.print fmt (Compromise.compute ~rng ~exec ())))
  in
  Cmd.v (Cmd.info "compromise" ~doc:"M1: the 1-(1-f)^(l*x) model, checked by Monte-Carlo")
    Term.(const run $ seed $ jobs $ obs_opts)

let asym_cmd =
  let run seed mb flows =
    let rng = Rng.of_int seed in
    let r = Asymmetric.run ~rng ~size:(mb * 1024 * 1024) () in
    Asymmetric.print fmt r;
    Asymmetric.print_matching fmt (Asymmetric.deanonymize ~rng ~n_flows:flows ())
  in
  let mb =
    Arg.(value & opt int 40 & info [ "mb" ] ~docv:"MB" ~doc:"Transfer size.")
  in
  let flows =
    Arg.(value & opt int 6 & info [ "flows" ] ~docv:"N"
           ~doc:"Concurrent circuits in the matching experiment.")
  in
  Cmd.v (Cmd.info "asym" ~doc:"F2R: asymmetric traffic analysis on a simulated circuit")
    Term.(const run $ seed $ mb $ flows)

let hijack_cmd =
  let run seed scale trials clients =
    let s = build_scenario seed scale in
    let rng = Scenario.rng_for s "hijack" in
    Deanonymization.print_hijack fmt
      (Deanonymization.hijack ~rng ~n_trials:trials ~n_clients:clients s)
  in
  let trials = trials_arg 20 in
  let clients =
    Arg.(value & opt int 40 & info [ "clients" ] ~docv:"N" ~doc:"Clients per trial.")
  in
  Cmd.v (Cmd.info "hijack" ~doc:"A1: guard-prefix hijack and anonymity sets")
    Term.(const run $ seed $ scale $ trials $ clients)

let intercept_cmd =
  let run seed scale trials =
    let s = build_scenario seed scale in
    let rng = Scenario.rng_for s "interception" in
    Deanonymization.print_interception fmt
      (Deanonymization.interception ~rng ~n_trials:trials s)
  in
  let trials = trials_arg 20 in
  Cmd.v (Cmd.info "intercept" ~doc:"A2: guard-prefix interception and deanonymization")
    Term.(const run $ seed $ scale $ trials)

let defend_cmd =
  let run seed scale =
    let s = build_scenario seed scale in
    Countermeasures.print_selection fmt
      (Countermeasures.selection ~rng:(Scenario.rng_for s "selection") s);
    Countermeasures.print_stealth fmt
      (Countermeasures.stealth_resilience ~rng:(Scenario.rng_for s "stealth") s);
    Countermeasures.print_monitoring fmt
      (Countermeasures.monitoring ~rng:(Scenario.rng_for s "monitoring") s)
  in
  Cmd.v (Cmd.info "defend" ~doc:"C1: evaluate the §5 countermeasures")
    Term.(const run $ seed $ scale)

let rov_cmd =
  let run seed scale trials =
    let s = build_scenario seed scale in
    let rng = Scenario.rng_for s "rov" in
    Bgp_security.print fmt (Bgp_security.sweep ~rng ~n_trials:trials s)
  in
  let trials = trials_arg ~doc:"Trials per point." 10 in
  Cmd.v (Cmd.info "rov" ~doc:"X1: RPKI/ROV deployment vs hijack and interception")
    Term.(const run $ seed $ scale $ trials)

let asymmetry_cmd =
  let run seed scale pairs =
    let s = build_scenario seed scale in
    let rng = Scenario.rng_for s "asymmetry" in
    Route_asymmetry.print fmt (Route_asymmetry.compute ~rng ~n_pairs:pairs s)
  in
  let pairs =
    Arg.(value & opt int 40 & info [ "pairs" ] ~docv:"N" ~doc:"(client, guard) pairs.")
  in
  Cmd.v (Cmd.info "asymmetry" ~doc:"X2: forward vs reverse AS exposure (§3.3)")
    Term.(const run $ seed $ scale $ pairs)

let long_term_cmd =
  let run seed scale horizon consensus jobs obs =
    with_obs obs (fun () ->
        let s = build_scenario seed scale in
        with_exec jobs (fun exec ->
            match consensus with
            | `Frozen ->
                let rng = Scenario.rng_for s "long-term" in
                Long_term.print fmt
                  (Long_term.compare_designs ~rng ~horizon_days:horizon ~exec s)
            | (`Live_hourly | `Live_heavy) as c ->
                (* Frozen vs living under the stock 3/30 design: both arms
                   replay the same stream (fresh "long-term" RNG each), so
                   the adversary draw and client streams match and the
                   delta is attributable to consensus dynamics alone. *)
                let params =
                  match c with
                  | `Live_hourly -> Consensus_dynamics.default_params
                  | `Live_heavy -> Consensus_dynamics.heavy_params
                in
                let config =
                  { Long_term.default_config with
                    Long_term.horizon_days = horizon }
                in
                let living =
                  Long_term.living_consensus ~params ~horizon_days:horizon s
                in
                let frozen_o =
                  Long_term.run ~rng:(Scenario.rng_for s "long-term")
                    ~config ~exec s
                in
                let living_o =
                  Long_term.run ~rng:(Scenario.rng_for s "long-term")
                    ~config ~living ~exec s
                in
                Long_term.print fmt
                  [ { frozen_o with
                      Long_term.label =
                        frozen_o.Long_term.label ^ ", frozen" };
                    { living_o with
                      Long_term.label =
                        living_o.Long_term.label ^ ", living" } ]))
  in
  let horizon =
    Arg.(value & opt int 120 & info [ "horizon" ] ~docv:"DAYS"
           ~doc:"Days of daily communication to simulate.")
  in
  let consensus =
    Arg.(value
         & opt (enum [ ("frozen", `Frozen); ("live-hourly", `Live_hourly);
                       ("live-heavy", `Live_heavy) ])
             `Frozen
         & info [ "consensus" ] ~docv:"MODEL"
             ~doc:"Consensus model: $(b,frozen) (the snapshot, §2 design \
                   comparison), or $(b,live-hourly)/$(b,live-heavy) \
                   (hourly epochs with relay arrival, departure and \
                   bandwidth drift — prints the frozen-vs-living pair for \
                   the stock guard design).")
  in
  Cmd.v (Cmd.info "long-term" ~doc:"M2: guard designs vs long-term AS-level compromise")
    Term.(const run $ seed $ scale $ horizon $ consensus $ jobs $ obs_opts)

let topology_cmd =
  let run seed scale out =
    let s = build_scenario seed scale in
    dump out (As_graph.to_caida_string s.Scenario.graph)
  in
  Cmd.v (Cmd.info "topology" ~doc:"Dump the AS graph in CAIDA as-rel format")
    Term.(const run $ seed $ scale $ output_file)

let consensus_cmd =
  let run seed scale out =
    let s = build_scenario seed scale in
    dump out (Consensus.to_string s.Scenario.consensus)
  in
  Cmd.v (Cmd.info "consensus" ~doc:"Dump the synthetic Tor consensus")
    Term.(const run $ seed $ scale $ output_file)

let mrt_cmd =
  let run seed scale hours out =
    let s = build_scenario seed scale in
    let dynamics =
      { Dynamics.short_config with Dynamics.duration = hours *. 3600. }
    in
    let rng = Scenario.rng_for s "mrt-dump" in
    let buf = Buffer.create (1 lsl 20) in
    let local_ip = Ipv4.of_string "192.0.2.254" in
    let session_ip =
      Scenario.sessions s
      |> List.map (fun (sess : Collector.session) ->
          (sess.Collector.id, sess.Collector.peer_ip))
    in
    let count = ref 0 in
    let emit (u : Update.t) =
      let peer_ip =
        match
          List.find_opt (fun (id, _) -> Update.session_equal id u.Update.session)
            session_ip
        with
        | Some (_, ip) -> ip
        | None -> local_ip
      in
      Mrt.encode_record buf
        (Mrt.record_of_update ~local_as:(Asn.of_int 12654) ~local_ip ~peer_ip u);
      incr count
    in
    let _, stats = Dynamics.run ~rng dynamics s.Scenario.world ~emit in
    let data = Buffer.contents buf in
    Out_channel.with_open_bin out (fun oc -> Out_channel.output_string oc data);
    Format.printf
      "wrote %s: %d MRT records (%d bytes) from %d churn events; decode check: %d records@."
      out !count (String.length data) stats.Dynamics.churn_events
      (List.length (Mrt.decode data))
  in
  let hours =
    Arg.(value & opt float 4. & info [ "hours" ] ~docv:"H"
           ~doc:"Simulated duration of the dump.")
  in
  let out =
    Arg.(value & opt string "updates.mrt" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output MRT file.")
  in
  Cmd.v
    (Cmd.info "mrt-dump"
       ~doc:"Simulate collector sessions and write their updates as an MRT file")
    Term.(const run $ seed $ scale $ hours $ out)

let lint_cmd =
  let run seed scale json rules fail_on max_prefixes no_determinism list_rules
      explain jobs obs =
    if list_rules then
      List.sort
        (fun (a : Diag.rule) (b : Diag.rule) ->
           String.compare a.Diag.code b.Diag.code)
        Lint.all_rules
      |> List.iter (fun (r : Diag.rule) ->
          Format.printf "%-10s %-26s %-5s %s@." r.Diag.code r.Diag.slug
            (Diag.severity_to_string r.Diag.severity) r.Diag.doc)
    else match explain with
    | Some sel -> (
        match Lint.find_rule sel with
        | None ->
            Format.eprintf
              "quicksand: unknown lint rule %S (try --list-rules)@." sel;
            Stdlib.exit 2
        | Some r ->
            Format.printf "@[<v>%s %s (%s)@,%s@,@,@[<hov>%a@]@]@."
              r.Diag.code r.Diag.slug
              (Diag.severity_to_string r.Diag.severity) r.Diag.doc
              Format.pp_print_text r.Diag.explain)
    | None -> begin
      if max_prefixes <= 0 then begin
        Format.eprintf "quicksand: --max-prefixes must be positive@.";
        Stdlib.exit 2
      end;
      (match rules with
       | None -> ()
       | Some sels ->
           List.iter
             (fun sel ->
                if Lint.find_rule sel = None then begin
                  Format.eprintf
                    "quicksand: unknown lint rule %S (try --list-rules)@." sel;
                  Stdlib.exit 2
                end)
             sels);
      (* The exit code is decided inside [with_obs] but acted on after
         it returns: [Stdlib.exit] would skip the report writers. *)
      let code =
        with_obs obs (fun () ->
            let s = Scenario.build ~seed scale in
            if not json then
              Format.printf
                "linting scenario: %d ASes, %d prefixes, %d relays (seed %d)@."
                (As_graph.num_ases s.Scenario.graph)
                (Addressing.count s.Scenario.addressing)
                (Consensus.n_relays s.Scenario.consensus) seed;
            let diags =
              (* Stats would corrupt --json output, so only text mode prints
                 them; the exit below must also happen after the pool is torn
                 down, hence outside [with_exec]. *)
              with_exec ~show_stats:(not json) jobs (fun exec ->
                  Lint.run ?rules ~max_prefixes
                    ~determinism:(not no_determinism) ~exec s)
            in
            if json then Diag.report_json fmt diags
            else Diag.report_text fmt diags;
            Diag.exit_code ~fail_on diags)
      in
      if code <> 0 then Stdlib.exit code
    end
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit machine-readable JSON diagnostics instead of text.")
  in
  let rules =
    Arg.(value & opt (some (list string)) None & info [ "rules" ] ~docv:"RULES"
           ~doc:"Comma-separated rule selectors (codes like $(b,QS001), slugs \
                 like $(b,valley-violation), or both combined); default all.")
  in
  let fail_on =
    Arg.(value
         & opt (enum [ ("warn", Diag.Warn); ("warning", Diag.Warn);
                       ("error", Diag.Error) ])
             Diag.Error
         & info [ "fail-on" ] ~docv:"SEVERITY"
             ~doc:"Exit non-zero if a diagnostic of at least this severity \
                   is found: $(b,warn) (or $(b,warning)) or $(b,error).")
  in
  let max_prefixes =
    Arg.(value & opt int 512 & info [ "max-prefixes" ] ~docv:"N"
           ~doc:"Bound on announced prefixes whose routing tables are \
                 recomputed and checked (evenly sampled beyond it).")
  in
  let no_determinism =
    Arg.(value & flag & info [ "no-determinism" ]
           ~doc:"Skip the QS301 rebuild-and-compare determinism check \
                 (saves one scenario build).")
  in
  let list_rules =
    Arg.(value & flag & info [ "list-rules" ]
           ~doc:"Print the rule registry (sorted by code) and exit.")
  in
  let explain =
    Arg.(value & opt (some string) None & info [ "explain" ] ~docv:"RULE"
           ~doc:"Print one rule's full rationale (selected by code, slug or \
                 combined id) and exit.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically verify routing-world invariants of a seeded scenario")
    Term.(const run $ seed $ scale $ json $ rules $ fail_on $ max_prefixes
          $ no_determinism $ list_rules $ explain $ jobs $ obs_opts)

let surface_cmd =
  let run seed scale n_pairs n_adversaries json jobs obs =
    with_obs obs (fun () ->
        let s = Scenario.build ~seed scale in
        if not json then
          Format.printf
            "surface: %d ASes, %d relays (seed %d)@."
            (As_graph.num_ases s.Scenario.graph)
            (Consensus.n_relays s.Scenario.consensus) seed;
        let g = s.Scenario.graph in
        let rng = Scenario.rng_for s "surface" in
        (* Monitored pairs: plausible client stubs x guard-prefix origins,
           drawn from the scenario's dedicated "surface" RNG stream. *)
        let guards = Array.of_list (Consensus.guards s.Scenario.consensus) in
        let pairs =
          let rec go acc k =
            if k = 0 then List.rev acc
            else
              let client = Scenario.random_client_as ~rng s in
              let relay = Rng.pick rng guards in
              match
                Tor_prefix.prefix_of_relay s.Scenario.tor_prefixes relay
              with
              | Some (_, origin) -> go ((client, origin) :: acc) (k - 1)
              | None -> go acc (k - 1) (* unrouted relay: drop the draw *)
          in
          go [] n_pairs
        in
        (* Candidate adversaries: the high-degree transit core (the ASes
           best placed to win propagation races) plus a sample of stubs
           as a baseline. *)
        let adversaries =
          let by_degree =
            As_graph.ases g
            |> List.sort (fun a b ->
                match Int.compare (As_graph.degree g b) (As_graph.degree g a)
                with
                | 0 -> Asn.compare a b
                | c -> c)
          in
          let core = List.filteri (fun i _ -> i < (n_adversaries + 1) / 2)
              by_degree in
          let stubs =
            As_graph.ases g
            |> List.filter (fun a ->
                (As_graph.info g a).As_graph.tier = As_graph.Stub)
            |> Array.of_list
          in
          let sampled =
            Rng.sample_without_replacement rng
              (min (n_adversaries / 2) (Array.length stubs))
              stubs
          in
          Asn.Set.elements (Asn.Set.of_list (core @ sampled))
        in
        let surfaces =
          Pool.per_domain (fun () -> Static_surface.create s.Scenario.indexed)
        in
        let feas, exposure_sizes, mean_resilience =
          Span.with_ ~name:"surface" (fun () ->
              with_exec ~show_stats:(not json) jobs (fun exec ->
                  let feas =
                    Pool.map_list exec
                      (fun a ->
                         Static_surface.feasibility (Pool.get surfaces) ~pairs a)
                      adversaries
                  in
                  let sizes =
                    Pool.map_list exec
                      (fun (client, guard) ->
                         Asn.Set.cardinal
                           (Static_surface.exposure_bound (Pool.get surfaces)
                              ~client ~guard))
                      pairs
                  in
                  let resilience =
                    Pool.map_list exec
                      (fun (client, guard) ->
                         Static_surface.resilience (Pool.get surfaces)
                           ~adversaries ~victim:guard client)
                      pairs
                  in
                  let mean l =
                    match l with
                    | [] -> 0.
                    | _ ->
                        List.fold_left ( +. ) 0. l
                        /. float_of_int (List.length l)
                  in
                  (feas, sizes, mean resilience)))
        in
        let feas =
          List.sort
            (fun (a : Static_surface.feasibility) b ->
               match Int.compare b.Static_surface.intercept
                       a.Static_surface.intercept
               with
               | 0 -> Asn.compare a.Static_surface.adversary
                        b.Static_surface.adversary
               | c -> c)
            feas
        in
        let frac n (f : Static_surface.feasibility) =
          if f.Static_surface.pairs = 0 then 0.
          else float_of_int n /. float_of_int f.Static_surface.pairs
        in
        let sorted_sizes = List.sort Int.compare exposure_sizes in
        let nth_size q =
          match sorted_sizes with
          | [] -> 0
          | l -> List.nth l (q * (List.length l - 1) / 100)
        in
        let disconnected =
          List.length (List.filter (fun n -> n = 0) exposure_sizes)
        in
        if json then begin
          Format.printf "{\"pairs\":%d,\"adversaries\":%d,@\n"
            (List.length pairs) (List.length adversaries);
          Format.printf
            " \"exposure\":{\"min\":%d,\"median\":%d,\"max\":%d,\"disconnected\":%d},@\n"
            (nth_size 0) (nth_size 50) (nth_size 100) disconnected;
          Format.printf " \"mean_resilience\":%.6f,@\n \"bounds\":[@\n"
            mean_resilience;
          List.iteri
            (fun i (f : Static_surface.feasibility) ->
               Format.printf
                 "  {\"adversary\":%d,\"tier\":%S,\"degree\":%d,\
                  \"blackhole_subprefix\":%.6f,\"blackhole_same_prefix\":%.6f,\
                  \"intercept\":%.6f}%s@\n"
                 (Asn.to_int f.Static_surface.adversary)
                 (As_graph.tier_to_string
                    (As_graph.info g f.Static_surface.adversary).As_graph.tier)
                 (As_graph.degree g f.Static_surface.adversary)
                 (frac f.Static_surface.blackhole_subprefix f)
                 (frac f.Static_surface.blackhole_same_prefix f)
                 (frac f.Static_surface.intercept f)
                 (if i = List.length feas - 1 then "" else ","))
            feas;
          Format.printf " ]}@."
        end
        else begin
          Format.printf
            "monitored pairs: %d (%d statically disconnected)@."
            (List.length pairs) disconnected;
          Format.printf
            "exposure bound size min/median/max: %d / %d / %d ASes@."
            (nth_size 0) (nth_size 50) (nth_size 100);
          Format.printf
            "mean client resilience vs the %d candidates: %.3f@.@."
            (List.length adversaries) mean_resilience;
          Format.printf "%-10s %-8s %6s %15s %16s %10s@." "adversary" "tier"
            "degree" "blackhole(sub)" "blackhole(same)" "intercept";
          List.iter
            (fun (f : Static_surface.feasibility) ->
               Format.printf "%-10s %-8s %6d %15.3f %16.3f %10.3f@."
                 (Asn.to_string f.Static_surface.adversary)
                 (As_graph.tier_to_string
                    (As_graph.info g f.Static_surface.adversary).As_graph.tier)
                 (As_graph.degree g f.Static_surface.adversary)
                 (frac f.Static_surface.blackhole_subprefix f)
                 (frac f.Static_surface.blackhole_same_prefix f)
                 (frac f.Static_surface.intercept f))
            feas
        end)
  in
  let n_pairs =
    Arg.(value & opt int 40 & info [ "pairs" ] ~docv:"N"
           ~doc:"Monitored (client, guard) pairs to draw.")
  in
  let n_adversaries =
    Arg.(value & opt int 20 & info [ "adversaries" ] ~docv:"N"
           ~doc:"Candidate adversary ASes (top-degree core plus sampled \
                 stubs).")
  in
  Cmd.v
    (Cmd.info "surface"
       ~doc:"Static attack surface: per-adversary upper bounds on \
             blackhole/interception reach, without simulating a single \
             churn day")
    Term.(const run $ seed $ scale $ n_pairs $ n_adversaries $ json_flag
          $ jobs $ obs_opts)

let serve_cmd =
  let run seed scale days window bucket threshold slack queue chunk attacks
      replay mrt_file collector events verify quiet jobs obs =
    if replay && mrt_file <> None then begin
      Format.eprintf "quicksand: --replay and --mrt are mutually exclusive@.";
      Stdlib.exit 2
    end;
    let config =
      { Serve.Config.default with
        Serve.Config.window; bucket; threshold; slack;
        capacity = queue; chunk }
    in
    (* An event sink per --events: "-" streams JSON lines to stdout (left
       open); a path gets its own channel, closed after the serve loop
       has closed the sink. *)
    let sinks_of () =
      match events with
      | None -> ([], fun () -> ())
      | Some "-" -> ([ Sink.jsonl ~name:"stdout" stdout ], fun () -> flush stdout)
      | Some path ->
          let oc = open_out path in
          ( [ Sink.jsonl ~name:path oc ],
            fun () ->
              close_out oc;
              Format.eprintf "wrote %s@." path )
    in
    let print_alerts alerts =
      List.iter (fun a -> Format.printf "%a@." Alert.pp a) alerts
    in
    let code =
      with_obs obs (fun () ->
          match mrt_file with
          | Some path ->
              (* Live mode: decode a recorded MRT feed and stream it
                 through the service. No scenario, so no baselines — the
                 window accumulates and the detectors watch, but the
                 extra-AS rule (which needs a time-0 table) stays idle. *)
              let data = In_channel.with_open_bin path In_channel.input_all in
              with_exec ~show_stats:false jobs (fun exec ->
                  let updates =
                    Ingest.decode_mrt ~chunk:config.Serve.Config.chunk
                      ~collector ~exec data
                  in
                  let sinks, finish = sinks_of () in
                  let t =
                    Serve.create ~config ~watched:(fun _ -> true) ~sinks
                      ~exec ()
                  in
                  List.iter (Serve.offer t) updates;
                  let horizon =
                    List.fold_left
                      (fun acc (u : Update.t) -> Float.max acc u.Update.time)
                      0. updates
                  in
                  let violations = Serve.drain t ~horizon in
                  finish ();
                  if not quiet then begin
                    Format.printf "decoded %d updates from %s@."
                      (List.length updates) path;
                    Format.printf "%a@.%a@." Ingest.pp_stats
                      (Ingest.stats (Serve.ingest t))
                      Window.pp_stats
                      (Window.stats (Serve.window t));
                    print_alerts (Serve.alerts t)
                  end;
                  if violations <> [] then 1 else 0)
          | None ->
              let s = build_scenario seed scale in
              (* Lint the effective config against the scenario before
                 anything runs: QS307 failures here are config typos, not
                 simulation bugs. *)
              let diags = Serve_lint.check ~scenario:s (Serve.Config.view config) in
              if diags <> [] then begin
                Diag.report_text fmt diags;
                2
              end
              else begin
                let dynamics = dynamics_for days in
                let extra_updates =
                  if attacks <= 0 then []
                  else begin
                    let rng = Scenario.rng_for s "serve" in
                    let atk, extras =
                      Countermeasures.inject_hijacks ~rng ~n_attacks:attacks
                        ~duration:dynamics.Dynamics.duration s
                    in
                    if not quiet then
                      Format.printf "injecting %d attack announcement(s)@."
                        (List.length atk);
                    extras
                  end
                in
                with_exec ~show_stats:false jobs (fun exec ->
                    let sinks, finish = sinks_of () in
                    let r =
                      Serve.replay ~dynamics ~extra_updates ~sinks ~config
                        ~exec s
                    in
                    finish ();
                    if not quiet then begin
                      Format.printf "%a@." Serve.pp_replay_summary r;
                      print_alerts r.Serve.r_alerts
                    end;
                    let fail = ref (r.Serve.r_violations <> []) in
                    if verify then begin
                      let m, batch =
                        Serve.batch_alerts ~dynamics ~extra_updates
                          ~learning_period:
                            config.Serve.Config.learning_period s
                      in
                      let issues = Serve.diff_against_batch r m batch in
                      List.iter
                        (fun i -> Format.printf "verify: DIFF %s@." i)
                        issues;
                      if issues = [] then
                        Format.printf
                          "verify: streaming = batch (%d alerts, %d cells)@."
                          (List.length r.Serve.r_alerts)
                          (List.length r.Serve.r_cells)
                      else fail := true;
                      (* The rendered §4 analyses must agree byte-for-byte
                         too; both cell lists are canonically sorted first
                         because the busiest-cell tie-break is otherwise
                         order-sensitive. *)
                      let render cells =
                        let m' = { m with Measurement.cells } in
                        Format.asprintf "%a%a" Path_changes.print
                          (Path_changes.compute ~exec m')
                          As_exposure.print
                          (As_exposure.compute
                             ~threshold:config.Serve.Config.threshold ~exec m')
                      in
                      let batch_render =
                        render (Serve.sort_cells m.Measurement.cells)
                      in
                      let serve_render = render r.Serve.r_cells in
                      if String.equal batch_render serve_render then
                        Format.printf
                          "verify: F3L/F3R renders byte-identical@."
                      else begin
                        Format.printf "verify: F3L/F3R renders DIFFER@.";
                        fail := true
                      end
                    end;
                    if !fail then 1 else 0)
              end)
    in
    if code <> 0 then Stdlib.exit code
  in
  let window =
    Arg.(value & opt float 3600. & info [ "window" ] ~docv:"SECONDS"
           ~doc:"Sliding-window span for rolling path-change state.")
  in
  let bucket =
    Arg.(value & opt float 60. & info [ "bucket" ] ~docv:"SECONDS"
           ~doc:"Ring-buffer bucket width; must divide the window.")
  in
  let threshold =
    Arg.(value & opt float 300. & info [ "threshold" ] ~docv:"SECONDS"
           ~doc:"Contiguous-residency threshold for extra-AS alerts (must \
                 lie within the window).")
  in
  let slack =
    Arg.(value & opt float 120. & info [ "slack" ] ~docv:"SECONDS"
           ~doc:"Out-of-order tolerance: updates older than the watermark \
                 (newest seen minus slack) are dropped and counted.")
  in
  let queue =
    Arg.(value & opt int 65536 & info [ "queue" ] ~docv:"N"
           ~doc:"Ingest queue bound; overflow drops are counted, never \
                 silent.")
  in
  let chunk =
    Arg.(value & opt int 512 & info [ "chunk" ] ~docv:"N"
           ~doc:"Batch size for event rendering and MRT decoding.")
  in
  let attacks =
    Arg.(value & opt int 0 & info [ "attacks" ] ~docv:"N"
           ~doc:"Inject $(docv) guard-prefix attack announcements into the \
                 replay (as the §5 monitoring experiment does).")
  in
  let replay =
    Arg.(value & flag & info [ "replay" ]
           ~doc:"Replay a seeded simulated measurement period through the \
                 live service (the default mode; incompatible with \
                 $(b,--mrt)).")
  in
  let mrt_file =
    Arg.(value & opt (some string) None & info [ "mrt" ] ~docv:"FILE"
           ~doc:"Stream a recorded MRT update file (e.g. from \
                 $(b,quicksand mrt-dump)) instead of replaying a scenario.")
  in
  let collector =
    Arg.(value & opt string "mrt" & info [ "collector" ] ~docv:"NAME"
           ~doc:"Collector name attached to updates decoded from --mrt.")
  in
  let events =
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE"
           ~doc:"Write the event stream as JSON lines to $(docv) ($(b,-) \
                 for stdout).")
  in
  let verify =
    Arg.(value & flag & info [ "verify-batch" ]
           ~doc:"Also run the batch pipeline over the same feed and demand \
                 exact agreement: alert-for-alert, cell-for-cell \
                 (bit-equal floats), and byte-identical F3L/F3R renders.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the text summary.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Streaming exposure monitor: bounded sliding windows and live \
             C1c alerting over a continuous update feed")
    Term.(const run $ seed $ scale $ days $ window $ bucket $ threshold
          $ slack $ queue $ chunk $ attacks $ replay $ mrt_file $ collector
          $ events $ verify $ quiet $ jobs $ obs_opts)

let check_cmd =
  let run seed scale suite seeds days json obs =
    let failed = ref false in
    let run_conform () =
      let dynamics =
        { Dynamics.short_config with Dynamics.duration = days *. 86_400. }
      in
      if not json then
        Format.printf "conformance: seed %d, %.1f simulated days@." seed days;
      let scenario = Scenario.build ~seed scale in
      let c = Conformance.create ~duration:dynamics.Dynamics.duration () in
      let m =
        Measurement.run ~dynamics ~observe:(Conformance.observe c) scenario
      in
      let violations =
        Conformance.finalize ~initial:m.Measurement.initial c
        @ Conformance.check_measurement m
      in
      Report.conformance ~json fmt ~observed:(Conformance.observed c)
        violations;
      if violations <> [] then failed := true
    in
    let run_diff () =
      let seeds = List.init (if seeds = 0 then 2 else seeds) (fun i -> i + 1) in
      if not json then
        Format.printf "differential: %d seeds x 4 configuration pairs@."
          (List.length seeds);
      let outcomes = Differential.run ~seeds scale in
      Report.differential ~json fmt outcomes;
      if not (Differential.all_ok outcomes) then failed := true
    in
    let run_fuzz () =
      let seeds = if seeds = 0 then 200 else seeds in
      let mrt = Fuzz.mrt ~seeds () in
      let sr = Fuzz.session_reset ~seeds () in
      Report.fuzz ~json fmt [ ("mrt", mrt); ("session-reset", sr) ];
      if not (Fuzz.ok mrt && Fuzz.ok sr) then failed := true
    in
    let run_static () =
      let seeds = List.init (if seeds = 0 then 5 else seeds) (fun i -> i + 1) in
      if not json then
        Format.printf
          "static: %d seeds, dynamic paths and attack wins vs the \
           valley-free closure bounds@."
          (List.length seeds);
      let outcomes = Differential.static ~seeds scale in
      Report.differential ~json fmt outcomes;
      if not (Differential.all_ok outcomes) then failed := true
    in
    let run_delta () =
      let seeds = List.init (if seeds = 0 then 5 else seeds) (fun i -> i + 1) in
      if not json then
        Format.printf
          "delta: %d seeds, incremental repair vs full recompute (streams, \
           final tables, cache layering, jobs)@."
          (List.length seeds);
      let outcomes = Differential.delta ~seeds scale in
      Report.differential ~json fmt outcomes;
      if not (Differential.all_ok outcomes) then failed := true
    in
    let run_churn () =
      let seeds = List.init (if seeds = 0 then 5 else seeds) (fun i -> i + 1) in
      if not json then
        Format.printf
          "churn: %d seeds, trace-generator shape/structure/identity laws@."
          (List.length seeds);
      let outcomes = Churn_check.run ~seeds () in
      Report.differential ~json fmt outcomes;
      if not (Differential.all_ok outcomes) then failed := true
    in
    with_obs obs (fun () ->
        match suite with
        | `Conform -> run_conform ()
        | `Diff -> run_diff ()
        | `Fuzz -> run_fuzz ()
        | `Static -> run_static ()
        | `Delta -> run_delta ()
        | `Churn -> run_churn ()
        | `All ->
            run_conform (); run_diff (); run_fuzz (); run_static ();
            run_delta (); run_churn ());
    if !failed then Stdlib.exit 1
  in
  let suite =
    Arg.(value
         & opt (enum [ ("conform", `Conform); ("diff", `Diff);
                       ("fuzz", `Fuzz); ("static", `Static);
                       ("delta", `Delta); ("churn", `Churn); ("all", `All) ])
             `All
         & info [ "suite" ] ~docv:"SUITE"
             ~doc:"Which harness to run: $(b,conform) (streaming invariant \
                   checker over a full measurement), $(b,diff) \
                   (configuration pairs that must not change results), \
                   $(b,fuzz) (MRT codec mutation + session-reset \
                   injection), $(b,static) (dynamic paths and attack wins \
                   audited against the static valley-free bounds), \
                   $(b,delta) (incremental delta repair vs full recompute: \
                   byte-identical streams and final tables), $(b,churn) \
                   (trace-churn generator: distribution shape, stream \
                   structure, byte-identity), or $(b,all).")
  in
  let seeds =
    Arg.(value & opt int 0 & info [ "seeds" ] ~docv:"N"
           ~doc:"Seed count for $(b,diff) (default 2), $(b,fuzz) \
                 (default 200), $(b,static) (default 5), $(b,delta) \
                 (default 5) and $(b,churn) (default 5). Ignored by \
                 $(b,conform), which uses $(b,--seed).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run the qs_check conformance/differential/fuzz harness")
    Term.(const run $ seed $ scale $ suite $ seeds $ days $ json_flag
          $ obs_opts)

let sweep_cmd =
  let list_entries () =
    List.iter
      (fun (e : Sweep.entry) ->
         let cells =
           match Sweep.cells e with
           | Ok cs -> string_of_int (List.length cs)
           | Error _ -> "invalid"
         in
         Format.printf "%-18s %7s cells  %s@." e.Sweep.name cells e.Sweep.doc)
      Sweep.builtin;
    Format.printf "@.overlay/axis keys:@.";
    List.iter
      (fun (k, doc) -> Format.printf "  %-10s %s@." k doc)
      Sweep.known_keys
  in
  let run matrix out list json jobs obs =
    if list then list_entries ()
    else
      match matrix with
      | None ->
          Format.eprintf
            "quicksand: sweep needs --matrix ENTRY (try --list)@.";
          Stdlib.exit 2
      | Some name ->
          match Sweep.find Sweep.builtin name with
          | None ->
              Format.eprintf
                "quicksand: unknown sweep matrix %S (try --list)@." name;
              Stdlib.exit 2
          | Some entry ->
              (* Exit code decided inside [with_obs], acted on after it
                 returns, like lint: [Stdlib.exit] would skip the report
                 writers. *)
              let code =
                with_obs obs (fun () ->
                    let outcome =
                      with_exec ~show_stats:(not json) jobs (fun exec ->
                          Sweep_run.run ~exec entry)
                    in
                    match outcome with
                    | Error invalids ->
                        List.iter
                          (fun (i : Sweep.invalid) ->
                            Format.eprintf "sweep: %s@." i.Sweep.message)
                          invalids;
                        2
                    | Ok t ->
                        Option.iter
                          (fun dir ->
                            let written = Sweep_run.write ~dir t in
                            Format.eprintf "wrote %d files under %s@."
                              (List.length written) dir)
                          out;
                        if json then print_string (t.Sweep_run.index_json ^ "\n")
                        else begin
                          Sweep_run.print_table fmt t;
                          Format.pp_print_newline fmt ()
                        end;
                        0)
              in
              if code <> 0 then Stdlib.exit code
  in
  let matrix =
    Arg.(value & opt (some string) None
         & info [ "matrix"; "m" ] ~docv:"ENTRY"
             ~doc:"Registry entry to expand and run (see $(b,--list)).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Write the results directory: $(i,DIR)/index.json, \
                   $(i,DIR)/table.txt and one \
                   $(i,DIR)/cell-*/{summary.json,metrics.json,fingerprint} \
                   per cell. Byte-identical across reruns and $(b,--jobs) \
                   settings.")
  in
  let list =
    Arg.(value & flag & info [ "list" ]
           ~doc:"Print the registry (entries, cell counts, known keys) \
                 and exit.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Expand a declared scenario matrix and run every cell")
    Term.(const run $ matrix $ out $ list $ json_flag $ jobs $ obs_opts)

let default =
  Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "quicksand" ~version:"1.0.0"
      ~doc:"AS-level BGP attacks on Tor — reproduction toolkit for HotNets-XIII 'Anonymity on QuickSand'"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ dataset_cmd; concentration_cmd; path_changes_cmd; extra_ases_cmd;
            compromise_cmd; asym_cmd; hijack_cmd; intercept_cmd; defend_cmd;
            rov_cmd; asymmetry_cmd; long_term_cmd;
            topology_cmd; consensus_cmd; mrt_cmd; lint_cmd; surface_cmd;
            serve_cmd; check_cmd; sweep_cmd ]))
