test/test_net.ml: Alcotest Array Float Hashtbl Int Int64 Ipv4 List Option Pqueue Prefix Prefix_trie Printf QCheck QCheck_alcotest Rng
