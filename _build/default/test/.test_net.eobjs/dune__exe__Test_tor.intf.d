test/test_tor.mli:
