test/test_traffic.ml: Alcotest Array Float Ipv4 List Netsim Onion QCheck QCheck_alcotest Rng Tcp Trace
