test/test_analysis.ml: Alcotest Anonymity Array Ccdf Correlation Float Ipv4 List Netsim QCheck QCheck_alcotest Rng Stats Trace
