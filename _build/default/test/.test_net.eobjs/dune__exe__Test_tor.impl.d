test/test_tor.ml: Addressing Alcotest Array Asn Consensus Float Ipv4 List Path_selection Prefix QCheck QCheck_alcotest Relay Rng Topo_gen Tor_prefix
