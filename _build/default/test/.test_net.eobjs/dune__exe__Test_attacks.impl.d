test/test_attacks.ml: Alcotest Announcement As_graph Asn Community_attack Detection Hijack Interception List Prefix Propagate Route Update
