test/test_topology.ml: Addressing Alcotest Array As_graph Asn List Paths Prefix QCheck QCheck_alcotest Relationship Rng Topo_gen
