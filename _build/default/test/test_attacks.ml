(* Tests for qs_attacks: hijacks, interception, community-scoped attacks
   and control-plane detection. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let asn = Asn.of_int
let pfx = Prefix.of_string

let stub_info name =
  { As_graph.name; tier = As_graph.Stub; hosting_weight = 0. }

(* A chain with two stub leaves at opposite ends:

        1 ---- 2          (1, 2 tier-like, peers)
        |      |
        3      4          (customers)
        |      |
        5      6          (victim 5, attacker 6)               *)
let chain () =
  let g = As_graph.create () in
  List.iter (fun i -> As_graph.add_as g (asn i) (stub_info "")) [ 1; 2; 3; 4; 5; 6 ];
  As_graph.add_peering g (asn 1) (asn 2);
  As_graph.add_provider_customer g ~provider:(asn 1) ~customer:(asn 3);
  As_graph.add_provider_customer g ~provider:(asn 2) ~customer:(asn 4);
  As_graph.add_provider_customer g ~provider:(asn 3) ~customer:(asn 5);
  As_graph.add_provider_customer g ~provider:(asn 4) ~customer:(asn 6);
  As_graph.Indexed.of_graph g

let victim_prefix = pfx "78.46.0.0/15"
let victim = Announcement.originate (asn 5) victim_prefix

(* ---- Hijack ---------------------------------------------------------- *)

let test_hijack_same_prefix () =
  let h = Hijack.same_prefix (chain ()) ~victim ~attacker:(asn 6) () in
  (* The attacker's side of the chain (6, 4, and 2 via its customer) is
     captured; the victim's side stays clean. *)
  check_bool "attacker captured" true (Hijack.is_captured h (asn 6));
  check_bool "attacker's provider captured" true (Hijack.is_captured h (asn 4));
  check_bool "2 prefers its customer cone" true (Hijack.is_captured h (asn 2));
  check_bool "victim not captured" false (Hijack.is_captured h (asn 5));
  check_bool "victim's provider not captured" false (Hijack.is_captured h (asn 3));
  check_bool "1 sticks with customer route" false (Hijack.is_captured h (asn 1));
  check_bool "capture fraction in (0,1)" true
    (h.Hijack.capture_fraction > 0. && h.Hijack.capture_fraction < 1.)

let test_hijack_rejects_self () =
  Alcotest.check_raises "attacker = victim"
    (Invalid_argument "Hijack.same_prefix: attacker is the victim")
    (fun () -> ignore (Hijack.same_prefix (chain ()) ~victim ~attacker:(asn 5) ()))

let test_hijack_more_specific () =
  let sub = pfx "78.46.16.0/20" in
  let h = Hijack.more_specific (chain ()) ~victim ~attacker:(asn 6) ~sub () in
  (* Longest-prefix match: even the victim's own provider is captured. *)
  check_bool "victim's provider captured by /20" true (Hijack.is_captured h (asn 3));
  check_bool "far side captured" true (Hijack.is_captured h (asn 1))

let test_hijack_more_specific_rejects () =
  check_bool "outside prefix rejected" true
    (try
       ignore
         (Hijack.more_specific (chain ()) ~victim ~attacker:(asn 6)
            ~sub:(pfx "10.0.0.0/24") ());
       false
     with Invalid_argument _ -> true);
  check_bool "equal prefix rejected" true
    (try
       ignore
         (Hijack.more_specific (chain ()) ~victim ~attacker:(asn 6)
            ~sub:victim_prefix ());
       false
     with Invalid_argument _ -> true)

let test_hijack_anonymity_set () =
  let h = Hijack.same_prefix (chain ()) ~victim ~attacker:(asn 6) () in
  let clients = [ (asn 6, "near-attacker"); (asn 3, "near-victim") ] in
  match Hijack.anonymity_set h ~clients with
  | [ ("near-attacker", a) ] -> check_int "captured client AS" 6 (Asn.to_int a)
  | _ -> Alcotest.fail "expected exactly the near-attacker client"

(* ---- Interception ---------------------------------------------------- *)

(* Interception needs a clean uplink: multihome the attacker to 3, whose
   customer route to the real victim (length 2) beats the bogus one. *)
let chain_multihomed () =
  let g = As_graph.create () in
  List.iter (fun i -> As_graph.add_as g (asn i) (stub_info "")) [ 1; 2; 3; 4; 5; 6 ];
  As_graph.add_peering g (asn 1) (asn 2);
  As_graph.add_provider_customer g ~provider:(asn 1) ~customer:(asn 3);
  As_graph.add_provider_customer g ~provider:(asn 2) ~customer:(asn 4);
  As_graph.add_provider_customer g ~provider:(asn 3) ~customer:(asn 5);
  As_graph.add_provider_customer g ~provider:(asn 4) ~customer:(asn 6);
  As_graph.add_provider_customer g ~provider:(asn 3) ~customer:(asn 6);
  As_graph.Indexed.of_graph g

let test_interception_feasible () =
  let i = Interception.run (chain_multihomed ()) ~victim ~attacker:(asn 6) () in
  check_bool "captures someone" true (i.Interception.captured <> []);
  check_bool "feasible" true i.Interception.feasible;
  (match i.Interception.return_path with
   | Some (first :: _ as walk) ->
       check_int "return path starts at attacker" 6 (Asn.to_int first);
       let last = List.nth walk (List.length walk - 1) in
       check_int "return path ends at victim" 5 (Asn.to_int last);
       check_bool "no attacker loop in tail" true
         (not (List.exists (Asn.equal (asn 6)) (List.tl walk)))
   | Some [] | None -> Alcotest.fail "expected a return path")

let test_interception_loop_detection_shields_victim () =
  let i = Interception.run (chain ()) ~victim ~attacker:(asn 6) () in
  check_bool "victim never selects the bogus route" true
    (not (List.exists (Asn.equal (asn 5)) i.Interception.captured));
  check_bool "observes includes attacker" true (Interception.observes i (asn 6))

let test_interception_rejects_self () =
  Alcotest.check_raises "attacker = victim"
    (Invalid_argument "Interception.run: attacker is the victim")
    (fun () -> ignore (Interception.run (chain ()) ~victim ~attacker:(asn 5) ()))

let test_interception_infeasible_when_isolated () =
  (* In the plain chain the attacker's only uplink (4) always prefers the
     bogus customer route, so there is no clean return path and the
     "interception" degrades into a hijack. *)
  let i = Interception.run (chain ()) ~victim ~attacker:(asn 6) () in
  check_bool "no clean return path" false i.Interception.feasible;
  check_bool "still captures its cone" true (i.Interception.captured <> [])

(* ---- Community attack ------------------------------------------------ *)

let test_community_radius_tradeoff () =
  let monitors = [ asn 1; asn 3 ] in
  let sweep =
    Community_attack.sweep_radius (chain ()) ~victim ~attacker:(asn 6)
      ~monitors [ 1; 2; 4 ]
  in
  let captures =
    List.map (fun (_, t) -> List.length t.Community_attack.visible_at) sweep
  in
  (* capture is monotone in the radius *)
  check_bool "monotone capture" true
    (match captures with
     | [ a; b; c ] -> a <= b && b <= c
     | _ -> false);
  (* tighter scope, fewer monitors see it *)
  let seen = List.map (fun (_, t) -> t.Community_attack.seen_by_monitors) sweep in
  check_bool "monotone visibility" true
    (match seen with
     | [ a; b; c ] -> a <= b && b <= c
     | _ -> false)

let test_community_detection_probability () =
  let t =
    Community_attack.run (chain ()) ~victim ~attacker:(asn 6) ~radius:1
      ~monitors:[ asn 1; asn 2; asn 3; asn 4 ] ()
  in
  let p = Community_attack.detection_probability t in
  check_bool "probability in [0,1]" true (p >= 0. && p <= 1.)

(* ---- Detection ------------------------------------------------------- *)

let session = { Update.collector = "rrc00"; peer = asn 99 }

let announce time p path =
  { Update.time; session;
    kind = Update.Announce (Route.make p (List.map asn path)) }

let test_detection_moas () =
  let d = Detection.create ~learning_period:100. () in
  (* learn the legitimate origin *)
  check_int "learning quiet" 0
    (List.length (Detection.observe d (announce 10. victim_prefix [ 99; 3; 5 ])));
  (* same origin after learning: fine *)
  check_int "known origin quiet" 0
    (List.length (Detection.observe d (announce 200. victim_prefix [ 99; 3; 5 ])));
  (* new origin: MOAS alarm *)
  let alarms = Detection.observe d (announce 300. victim_prefix [ 99; 4; 6 ]) in
  check_int "one alarm" 1 (List.length alarms);
  (match alarms with
   | [ { Detection.kind = Detection.Moas { new_origin; _ }; _ } ] ->
       check_int "flags the hijacker" 6 (Asn.to_int new_origin)
   | _ -> Alcotest.fail "expected a MOAS alarm");
  check_bool "prefix now suspicious" true (Detection.suspicious d victim_prefix)

let test_detection_moas_cooldown () =
  let d = Detection.create ~learning_period:100. () in
  ignore (Detection.observe d (announce 10. victim_prefix [ 99; 3; 5 ]));
  let a1 = Detection.observe d (announce 200. victim_prefix [ 99; 4; 6 ]) in
  (* The hijacked origin was learned after alarming once; a different new
     origin within the cooldown stays quiet. *)
  let a2 = Detection.observe d (announce 210. victim_prefix [ 99; 2; 7 ]) in
  check_int "first alarm" 1 (List.length a1);
  check_int "cooldown suppresses repeats" 0 (List.length a2)

let test_detection_subprefix () =
  let d = Detection.create ~learning_period:100. () in
  ignore (Detection.observe d (announce 10. victim_prefix [ 99; 3; 5 ]));
  let alarms = Detection.observe d (announce 300. (pfx "78.46.16.0/20") [ 99; 4; 6 ]) in
  check_bool "sub-prefix alarm raised" true
    (List.exists
       (fun a ->
          match a.Detection.kind with
          | Detection.Sub_prefix { sub_origin; _ } -> Asn.to_int sub_origin = 6
          | _ -> false)
       alarms)

let test_detection_adjacency () =
  let d = Detection.create ~learning_period:100. () in
  ignore (Detection.observe d (announce 10. victim_prefix [ 99; 3; 5 ]));
  (* same origin, but reached through a never-seen neighbor: the
     interception signature *)
  let alarms = Detection.observe d (announce 300. victim_prefix [ 99; 4; 6; 5 ]) in
  check_bool "adjacency alarm raised" true
    (List.exists
       (fun a ->
          match a.Detection.kind with
          | Detection.Origin_adjacency { new_neighbor; _ } -> Asn.to_int new_neighbor = 6
          | _ -> false)
       alarms)

let test_detection_learning_period_quiet () =
  let d = Detection.create ~learning_period:1000. () in
  ignore (Detection.observe d (announce 10. victim_prefix [ 99; 3; 5 ]));
  let alarms = Detection.observe d (announce 20. victim_prefix [ 99; 4; 6 ]) in
  check_int "no alarms while learning" 0 (List.length alarms)

let test_detection_withdraw_ignored () =
  let d = Detection.create ~learning_period:0. () in
  let w = { Update.time = 10.; session; kind = Update.Withdraw victim_prefix } in
  check_int "withdraw raises nothing" 0 (List.length (Detection.observe d w))

let test_detection_end_to_end_hijack () =
  (* Run a real hijack through Propagate and make sure the resulting
     routes, observed at a collector peer, trip the monitor. *)
  let ix = chain () in
  let d = Detection.create ~learning_period:100. () in
  let before = Propagate.compute ix [ victim ] in
  (match Propagate.route_at before (asn 1) with
   | Some r ->
       ignore (Detection.observe d
                 { Update.time = 10.; session; kind = Update.Announce r })
   | None -> Alcotest.fail "no baseline route");
  let h = Hijack.same_prefix ix ~victim ~attacker:(asn 6) () in
  (* AS 2 is captured; its exported route shows origin 6. *)
  (match Propagate.route_at h.Hijack.outcome (asn 2) with
   | Some r ->
       let alarms =
         Detection.observe d
           { Update.time = 500.; session; kind = Update.Announce r }
       in
       check_bool "hijacked route trips MOAS" true
         (List.exists
            (fun a -> match a.Detection.kind with
               | Detection.Moas _ -> true
               | _ -> false)
            alarms)
   | None -> Alcotest.fail "expected hijacked route at 2")

let () =
  Alcotest.run "qs_attacks"
    [ ("hijack",
       [ Alcotest.test_case "same prefix" `Quick test_hijack_same_prefix;
         Alcotest.test_case "rejects self-hijack" `Quick test_hijack_rejects_self;
         Alcotest.test_case "more specific" `Quick test_hijack_more_specific;
         Alcotest.test_case "more specific validation" `Quick
           test_hijack_more_specific_rejects;
         Alcotest.test_case "anonymity set" `Quick test_hijack_anonymity_set ]);
      ("interception",
       [ Alcotest.test_case "feasible with return path" `Quick
           test_interception_feasible;
         Alcotest.test_case "victim shielded by loop detection" `Quick
           test_interception_loop_detection_shields_victim;
         Alcotest.test_case "rejects self" `Quick test_interception_rejects_self;
         Alcotest.test_case "infeasible when isolated" `Quick
           test_interception_infeasible_when_isolated ]);
      ("community",
       [ Alcotest.test_case "radius trade-off" `Quick test_community_radius_tradeoff;
         Alcotest.test_case "detection probability" `Quick
           test_community_detection_probability ]);
      ("detection",
       [ Alcotest.test_case "MOAS" `Quick test_detection_moas;
         Alcotest.test_case "MOAS cooldown" `Quick test_detection_moas_cooldown;
         Alcotest.test_case "sub-prefix" `Quick test_detection_subprefix;
         Alcotest.test_case "origin adjacency" `Quick test_detection_adjacency;
         Alcotest.test_case "learning period quiet" `Quick
           test_detection_learning_period_quiet;
         Alcotest.test_case "withdraw ignored" `Quick test_detection_withdraw_ignored;
         Alcotest.test_case "end-to-end hijack detection" `Quick
           test_detection_end_to_end_hijack ]) ]
