(* Figure 2 (right) as a terminal plot: download a file over a simulated
   Tor circuit, tap all four segments, and show that bytes *sent* on one
   side track bytes *acked* on the other — the §3.3 asymmetric attack.

     dune exec examples/asymmetric_analysis.exe                           *)

let pf = Format.printf

let plot ~width ~height (curves : (string * float array) list) =
  match curves with
  | [] -> ()
  | (_, first) :: _ ->
      let n = Array.length first in
      let max_v =
        List.fold_left
          (fun acc (_, c) -> Array.fold_left Float.max acc c)
          1e-9 curves
      in
      let marks = [| 'S'; 'a'; 'G'; 'c' |] in
      let grid = Array.make_matrix height width ' ' in
      List.iteri
        (fun ci (_, curve) ->
           for x = 0 to width - 1 do
             let i = min (n - 1) (x * n / width) in
             let y =
               min (height - 1)
                 (int_of_float (curve.(i) /. max_v *. float_of_int (height - 1)))
             in
             let row = height - 1 - y in
             if grid.(row).(x) = ' ' then grid.(row).(x) <- marks.(ci mod 4)
           done)
        curves;
      Array.iteri
        (fun r row ->
           let label =
             if r = 0 then Printf.sprintf "%5.1f MB |" max_v
             else if r = height - 1 then Printf.sprintf "%5.1f MB |" 0.
             else "         |"
           in
           pf "%s%s@." label (String.init width (fun c -> row.(c))))
        grid;
      pf "          +%s@." (String.make width '-')

let () =
  let rng = Rng.of_int 11 in
  let size = 20 * 1024 * 1024 in
  pf "downloading %d MB through a simulated 3-hop circuit...@."
    (size / 1024 / 1024);
  let r = Asymmetric.run ~rng ~size ~bin:1.0 () in
  pf "transfer took %.1f simulated seconds@.@." r.Asymmetric.duration;
  plot ~width:64 ~height:12
    (List.map
       (fun (c : Asymmetric.curve) -> (c.Asymmetric.label, c.Asymmetric.cumulative_mb))
       r.Asymmetric.curves);
  pf "   S = server->exit data   a = exit->server acks@.";
  pf "   G = guard->client data  c = client->guard acks@.";
  pf "   (overlapping curves print only the first mark — that is the point)@.@.";
  pf "correlations an AS-level adversary can compute:@.";
  pf "  data vs data (conventional, symmetric routing)  r = %.4f@."
    r.Asymmetric.conventional_r;
  pf "  data vs acks (asymmetric, one direction each)   r = %.4f@."
    r.Asymmetric.asymmetric_r;
  pf "  acks vs data                                    r = %.4f@."
    r.Asymmetric.asymmetric_r2;
  pf "  acks vs acks (extreme variant)                  r = %.4f@.@."
    r.Asymmetric.ack_ack_r;
  let m = Asymmetric.deanonymize ~rng () in
  pf "matching %d concurrent flows by their ACK streams alone: %d/%d correct@."
    m.Asymmetric.n_flows m.Asymmetric.correct m.Asymmetric.n_flows
