(* The §5 countermeasure in action: a control-plane monitor watches the
   collector feeds for anomalies on relay prefixes; clients consult it
   before extending circuits and route around flagged guards.

     dune exec examples/guard_monitoring.exe                              *)

let pf = Format.printf

let () =
  let scenario = Scenario.build ~seed:3 Scenario.Small in
  let rng = Scenario.rng_for scenario "guard-monitoring" in
  let dynamics =
    { Dynamics.short_config with Dynamics.duration = 1.5 *. 86_400. }
  in
  let duration = dynamics.Dynamics.duration in

  (* The attack we will inject: hijack a busy guard's prefix mid-run. *)
  let guard =
    Path_selection.pick_weighted ~rng (Consensus.guards scenario.Scenario.consensus)
  in
  let victim =
    match Scenario.guard_announcement scenario guard with
    | Some v -> v
    | None -> failwith "unrouted guard"
  in
  let attacker =
    let rec pick () =
      let a = Scenario.random_client_as ~rng scenario in
      if Asn.equal a victim.Announcement.origin then pick () else a
    in
    pick ()
  in
  let attack_time = duration *. 0.6 in
  let h = Hijack.same_prefix scenario.Scenario.indexed ~victim ~attacker () in
  let injected =
    Scenario.sessions scenario
    |> List.filter_map (fun (s : Collector.session) ->
        let peer = s.Collector.id.Update.peer in
        match Propagate.winning_announcement h.Hijack.outcome peer with
        | Some 1 ->
            Option.map
              (fun route ->
                 { Update.time = attack_time +. Rng.float rng 60.;
                   session = s.Collector.id;
                   kind = Update.Announce route })
              (Propagate.route_at h.Hijack.outcome peer)
        | Some _ | None -> None)
    |> List.sort (fun a b -> Float.compare a.Update.time b.Update.time)
  in
  pf "guard under attack: %a in %a (prefix %a), hijacked at t=%.0fs by %a@."
    Ipv4.pp guard.Relay.ip Asn.pp guard.Relay.asn Prefix.pp
    victim.Announcement.prefix attack_time Asn.pp attacker;

  (* Run the measurement with the monitor attached to the filtered feed. *)
  let monitor = Detection.create ~learning_period:(duration /. 4.) () in
  let first_alarm = ref None in
  let observe u =
    List.iter
      (fun (a : Detection.alarm) ->
         if !first_alarm = None
            && Prefix.overlaps victim.Announcement.prefix
                 (match a.Detection.kind with
                  | Detection.Moas { prefix; _ } -> prefix
                  | Detection.Sub_prefix { sub; _ } -> sub
                  | Detection.Origin_adjacency { prefix; _ } -> prefix)
         then begin
           first_alarm := Some a.Detection.time;
           pf "ALARM at t=%.0fs (%.0fs after injection): %a@." a.Detection.time
             (a.Detection.time -. attack_time) Detection.pp_alarm a
         end)
      (Detection.observe monitor u)
  in
  let _ =
    Measurement.run ~dynamics ~extra_updates:injected ~observe scenario
  in
  (match !first_alarm with
   | None -> pf "monitor missed the hijack (increase collector coverage)@."
   | Some _ -> ());

  (* A client consults the monitor during guard selection. *)
  let pick_safe_guard () =
    let rec loop attempts =
      if attempts > 50 then None
      else
        let g =
          Path_selection.pick_weighted ~rng
            (Consensus.guards scenario.Scenario.consensus)
        in
        match Tor_prefix.prefix_of_relay scenario.Scenario.tor_prefixes g with
        | Some (p, _) when Detection.suspicious monitor p -> loop (attempts + 1)
        | _ -> Some g
    in
    loop 0
  in
  match pick_safe_guard () with
  | Some g when Relay.equal g guard ->
      pf "client still picked the attacked guard — alarm came too late?@."
  | Some g ->
      pf "client guard selection now avoids the flagged prefix; picked %a in %a instead@."
        Ipv4.pp g.Relay.ip Asn.pp g.Relay.asn;
      pf "(false positives are fine here: §5 — better to skip a healthy relay than to lose anonymity)@."
  | None -> pf "no unflagged guard available (aggressive monitor + tiny consensus)@."
