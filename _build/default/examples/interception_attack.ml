(* The §3.2 WikiLeaks scenario, end to end.

   An adversary AS watches a connection arrive at a monitored web server
   ("wikileaks.example") and wants the client's identity:

     1. infer which guard relay the target circuit uses (throughput
        fingerprinting against candidate guards);
     2. launch a prefix interception against that guard's BGP prefix;
     3. correlate the traffic captured at the guard side with the flow
        seen at the server — exact deanonymization, connection kept alive.

     dune exec examples/interception_attack.exe                           *)

let pf = Format.printf

let () =
  let scenario = Scenario.build ~seed:7 Scenario.Small in
  let rng = Scenario.rng_for scenario "wikileaks" in
  let consensus = scenario.Scenario.consensus in

  (* The victim: a client on a circuit whose guard the adversary must find. *)
  let client_as = Scenario.random_client_as ~rng scenario in
  let client =
    Path_selection.make_client ~rng consensus ~id:0 ~asn:client_as
      ~ip:(Addressing.address_in ~rng scenario.Scenario.addressing client_as) 0.
  in
  let circuit =
    Path_selection.build_circuit ~rng consensus ~guards:client.Path_selection.guard_set
  in
  let true_guard = circuit.Path_selection.guard in
  pf "target circuit: %a (client in %a)@." Path_selection.pp_circuit circuit
    Asn.pp client_as;

  (* Step 1 — guard inference: congestion probing against the heaviest
     guards (Murdoch-Danezis style), via the Guard_inference module. *)
  let gi = Guard_inference.infer ~rng consensus ~true_guard in
  (match gi.Guard_inference.inferred with
   | Some g when gi.Guard_inference.correct ->
       pf "step 1: congestion probing fingers guard %a (correct)@." Ipv4.pp
         g.Relay.ip
   | Some g ->
       pf "step 1: congestion probing fingers guard %a (WRONG, true was %a%s)@."
         Ipv4.pp g.Relay.ip Ipv4.pp true_guard.Relay.ip
         (if gi.Guard_inference.true_guard_probed then ""
          else " — not even probed")
   | None -> pf "step 1: inference failed@.");
  let target_guard =
    Option.value ~default:true_guard gi.Guard_inference.inferred
  in

  (* Step 2 — intercept the guard's prefix. *)
  match Scenario.guard_announcement scenario target_guard with
  | None -> pf "guard unrouted, attack over@."
  | Some victim ->
      let attacker =
        let rec pick () =
          let a = Scenario.random_client_as ~rng scenario in
          if Asn.equal a victim.Announcement.origin then pick () else a
        in
        pick ()
      in
      let i = Interception.run scenario.Scenario.indexed ~victim ~attacker () in
      pf "step 2: %a intercepts %a: %d ASes captured, feasible %b@."
        Asn.pp attacker Prefix.pp victim.Announcement.prefix
        (List.length i.Interception.captured) i.Interception.feasible;
      if not (i.Interception.feasible && Interception.observes i client_as) then
        pf "         target not captured this time — the adversary waits for BGP dynamics or re-homes.@."
      else begin
        (* Step 3 — timing correlation on the kept-alive connection. The
           adversary sees client->guard traffic (captured) and the server
           side of the target flow; the client is downloading a large file
           from the monitored server. *)
        let m =
          Asymmetric.deanonymize ~rng ~n_flows:6 ~size:(3 * 1024 * 1024) ()
        in
        pf "step 3: correlating captured guard-side traffic with the monitored flow@.";
        pf "         %d concurrent candidate flows, matched %d/%d (margin %.3f)@."
          m.Asymmetric.n_flows m.Asymmetric.correct m.Asymmetric.n_flows
          m.Asymmetric.mean_margin;
        if m.Asymmetric.accuracy > 0.8 then
          pf "verdict: client %a deanonymized while the connection stayed up.@."
            Asn.pp client_as
        else pf "verdict: correlation inconclusive this run.@."
      end
