(* Quickstart: build a synthetic Internet, run Tor on top of it, and watch
   an AS-level adversary end a client's anonymity.

     dune exec examples/quickstart.exe                                    *)

let pf = Format.printf

let () =
  (* 1. A seeded scenario: AS topology, BGP table, collectors, consensus. *)
  let scenario = Scenario.build ~seed:42 Scenario.Small in
  pf "Internet: %d ASes, %d links; Tor: %d relays in %d ASes@."
    (As_graph.num_ases scenario.Scenario.graph)
    (As_graph.num_links scenario.Scenario.graph)
    (Consensus.n_relays scenario.Scenario.consensus)
    (Asn.Set.cardinal
       (Array.fold_left
          (fun acc (r : Relay.t) -> Asn.Set.add r.Relay.asn acc)
          Asn.Set.empty scenario.Scenario.consensus.Consensus.relays));

  (* 2. A client in some stub AS picks its guards and builds a circuit. *)
  let rng = Scenario.rng_for scenario "quickstart" in
  let client_as = Scenario.random_client_as ~rng scenario in
  let client_ip = Addressing.address_in ~rng scenario.Scenario.addressing client_as in
  let client =
    Path_selection.make_client ~rng scenario.Scenario.consensus ~id:0
      ~asn:client_as ~ip:client_ip 0.
  in
  let circuit =
    Path_selection.build_circuit ~rng scenario.Scenario.consensus
      ~guards:client.Path_selection.guard_set
  in
  pf "client %a (in %a) built circuit %a@." Ipv4.pp client_ip Asn.pp client_as
    Path_selection.pp_circuit circuit;

  (* 3. Which ASes see the entry segment? Compute the data-plane walk from
     the client's AS to the guard's BGP prefix. *)
  let guard = circuit.Path_selection.guard in
  let entry_ases =
    match Scenario.guard_announcement scenario guard with
    | Some ann ->
        let outcome = Propagate.compute scenario.Scenario.indexed [ ann ] in
        Option.value ~default:[] (Propagate.forwarding_path outcome client_as)
    | None -> []
  in
  pf "entry segment (client -> guard) crosses: %s@."
    (String.concat " " (List.map Asn.to_string entry_ases));
  let x = List.length entry_ases in
  pf "with f = 5%% malicious ASes and x = %d exposed ASes: P[compromise] = %.3f (3 guards: %.3f)@."
    x
    (Anonymity.compromise_probability ~f:0.05 ~x)
    (Anonymity.multi_guard_probability ~f:0.05 ~x ~l:3);

  (* 4. An adversary AS intercepts the guard's prefix (§3.2). *)
  match Scenario.guard_announcement scenario guard with
  | None -> pf "guard unrouted?!@."
  | Some victim ->
      let attacker =
        let rec pick () =
          let a = Scenario.random_client_as ~rng scenario in
          if Asn.equal a victim.Announcement.origin || Asn.equal a client_as then
            pick ()
          else a
        in
        pick ()
      in
      let i =
        Interception.run scenario.Scenario.indexed ~victim ~attacker ()
      in
      pf "@.%a intercepts %a (guard %a's prefix):@." Asn.pp attacker Prefix.pp
        victim.Announcement.prefix Ipv4.pp guard.Relay.ip;
      pf "  captures %d ASes (%.0f%% of the Internet), feasible: %b@."
        (List.length i.Interception.captured)
        (100. *. i.Interception.capture_fraction)
        i.Interception.feasible;
      (match i.Interception.return_path with
       | Some walk ->
           pf "  captured traffic flows on to the real guard via %s@."
             (String.concat " " (List.map Asn.to_string walk))
       | None -> ());
      if Interception.observes i client_as then begin
        pf "  the client's AS is captured: the adversary sees client -> guard traffic.@.";
        (* 5. ...and timing analysis finishes the job (§3.3). *)
        let m = Asymmetric.deanonymize ~rng ~n_flows:5 ~size:(2 * 1024 * 1024) () in
        pf "  timing correlation singles the client out of %d concurrent flows: %d/%d matched.@."
          m.Asymmetric.n_flows m.Asymmetric.correct m.Asymmetric.n_flows
      end
      else
        pf "  this client's AS escaped; %.0f%% of client locations would not have.@."
          (100. *. i.Interception.capture_fraction)
