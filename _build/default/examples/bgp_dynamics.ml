(* §3.1 in miniature: watch interdomain paths to one guard prefix change
   over a simulated week, and the adversary's compromise probability climb
   as more ASes get a look at the traffic.

     dune exec examples/bgp_dynamics.exe                                  *)

let pf = Format.printf

let () =
  let scenario = Scenario.build ~seed:9 Scenario.Small in
  let dynamics =
    { Dynamics.short_config with
      Dynamics.duration = 7. *. 86_400.;
      base_churn_rate = 1.0 }
  in
  pf "simulating a week of BGP over %d prefixes / %d sessions...@."
    (Addressing.count scenario.Scenario.addressing)
    (List.length (Scenario.sessions scenario));
  let m = Measurement.run ~dynamics scenario in
  pf "%d updates after reset filtering@."
    (match m.Measurement.filter_stats with
     | Some fs -> fs.Session_reset.passed
     | None -> 0);

  (* The churn league table: which prefixes moved most? *)
  let by_prefix = Prefix.Table.create 256 in
  List.iter
    (fun (c : Measurement.cell) ->
       let p = c.Measurement.key.Measurement.prefix in
       let cur = Option.value ~default:0 (Prefix.Table.find_opt by_prefix p) in
       Prefix.Table.replace by_prefix p (cur + c.Measurement.path_changes))
    m.Measurement.cells;
  let ranked =
    Prefix.Table.fold (fun p c acc -> (p, c) :: acc) by_prefix []
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  pf "@.churn league table (path changes summed over sessions):@.";
  List.iteri
    (fun i (p, changes) ->
       if i < 8 then
         pf "  %2d. %-18s %5d changes %s@." (i + 1) (Prefix.to_string p) changes
           (if Measurement.is_tor m p then "  <- Tor prefix" else ""))
    ranked;

  (* Zoom into the busiest Tor prefix: how did its AS exposure grow? *)
  match List.find_opt (fun (p, _) -> Measurement.is_tor m p) ranked with
  | None -> pf "no Tor prefix saw churn this week@."
  | Some (p, _) ->
      pf "@.busiest Tor prefix: %a@." Prefix.pp p;
      let cells =
        List.filter
          (fun (c : Measurement.cell) ->
             Prefix.equal c.Measurement.key.Measurement.prefix p
             && c.Measurement.baseline <> None)
          m.Measurement.cells
      in
      List.iteri
        (fun i (c : Measurement.cell) ->
           if i < 6 then begin
             let base = Option.value ~default:Asn.Set.empty c.Measurement.baseline in
             let extra = Measurement.extra_ases c in
             pf "  session %-12s baseline %d ASes, +%d extra (>=5 min): %s@."
               (Format.asprintf "%a" Update.pp_session
                  c.Measurement.key.Measurement.session)
               (Asn.Set.cardinal base)
               (Asn.Set.cardinal extra)
               (String.concat " " (List.map Asn.to_string (Asn.Set.elements extra)))
           end)
        cells;
      let exposures =
        List.map
          (fun c ->
             Asn.Set.cardinal
               (Option.value ~default:Asn.Set.empty c.Measurement.baseline)
             + Asn.Set.cardinal (Measurement.extra_ases c))
          cells
      in
      (match exposures with
       | [] -> ()
       | _ ->
           let mean_x = Stats.mean (Stats.of_ints exposures) in
           let static_x = 4 in
           pf "@.the §3.1 model with f = 0.05, 3 guards:@.";
           pf "  static paths   (x = %d):   P = %.3f@." static_x
             (Anonymity.multi_guard_probability ~f:0.05 ~x:static_x ~l:3);
           pf "  with dynamics  (x = %.1f): P = %.3f@." mean_x
             (Anonymity.multi_guard_probability ~f:0.05
                ~x:(int_of_float (Float.round mean_x)) ~l:3))
