examples/asymmetric_analysis.mli:
