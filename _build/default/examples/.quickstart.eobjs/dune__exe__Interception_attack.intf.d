examples/interception_attack.mli:
