examples/bgp_dynamics.mli:
