examples/quickstart.ml: Addressing Announcement Anonymity Array As_graph Asn Asymmetric Consensus Format Interception Ipv4 List Option Path_selection Prefix Propagate Relay Scenario String
