examples/asymmetric_analysis.ml: Array Asymmetric Float Format List Printf Rng String
