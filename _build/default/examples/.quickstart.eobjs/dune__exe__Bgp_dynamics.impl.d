examples/bgp_dynamics.ml: Addressing Anonymity Asn Dynamics Float Format Int List Measurement Option Prefix Scenario Session_reset Stats String Update
