examples/interception_attack.ml: Addressing Announcement Asn Asymmetric Format Guard_inference Interception Ipv4 List Option Path_selection Prefix Relay Scenario
