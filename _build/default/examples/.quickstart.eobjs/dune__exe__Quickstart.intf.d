examples/quickstart.mli:
