examples/guard_monitoring.mli:
