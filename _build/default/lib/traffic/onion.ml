type link_profile = {
  latency : float;
  jitter : float;
  loss : float;
}

type profile = {
  client_guard : link_profile;
  guard_middle : link_profile;
  middle_exit : link_profile;
  exit_server : link_profile;
  tcp : Tcp.options;
}

let default_profile =
  { client_guard = { latency = 0.030; jitter = 0.004; loss = 0.0005 };
    guard_middle = { latency = 0.045; jitter = 0.005; loss = 0.0005 };
    middle_exit = { latency = 0.040; jitter = 0.005; loss = 0.0005 };
    exit_server = { latency = 0.035; jitter = 0.004; loss = 0.0005 };
    tcp = { Tcp.default_options with Tcp.rwnd = 327680 } }

type result = {
  guard_to_client : Trace.t;
  client_to_guard : Trace.t;
  server_to_exit : Trace.t;
  exit_to_server : Trace.t;
  completed : bool;
  finish_time : float;
  client_received : int;
}

let cell_size = 514.
let cell_payload = 498.

(* Integer byte-stream scaler with a float remainder, so repeated calls
   neither lose nor invent bytes beyond one cell's worth. *)
let make_scaler ratio =
  let acc = ref 0. in
  fun n ->
    acc := !acc +. (float_of_int n *. ratio);
    let out = int_of_float (Float.floor !acc) in
    acc := !acc -. float_of_int out;
    out

(* Tor enforces circuit-level flow control (package/deliver windows), so a
   relay cannot buffer unboundedly: it forwards onward only while the next
   hop's send queue is small. We model that with a per-direction pump: bytes
   land in the pump's buffer and drain into the downstream connection while
   its backlog is under [window]. This is what keeps the four segments'
   timing coupled end to end (and timing analysis effective). *)
type pump = {
  p_net : Netsim.t;
  p_from : Tcp.conn;    (* upstream conn we consume from (manual mode) *)
  p_to : Tcp.conn;      (* downstream conn we write into *)
  p_scale : int -> int;
  mutable p_ticking : bool;
}

let pump_window = 196608
let pump_interval = 0.02

let rec pump_drain pump =
  let backlog = Tcp.receive_backlog pump.p_from in
  let room = pump_window - Tcp.bytes_queued pump.p_to in
  if room > 0 && backlog > 0 then begin
    let burst = min room backlog in
    Tcp.consume pump.p_from burst;
    let scaled = pump.p_scale burst in
    if scaled > 0 then Tcp.send pump.p_to scaled
  end;
  if Tcp.receive_backlog pump.p_from > 0 && not pump.p_ticking then begin
    pump.p_ticking <- true;
    Netsim.schedule pump.p_net pump_interval (fun _ ->
        pump.p_ticking <- false;
        pump_drain pump)
  end

let make_pump net from_conn to_conn scale =
  Tcp.set_manual_consume from_conn true;
  { p_net = net; p_from = from_conn; p_to = to_conn; p_scale = scale;
    p_ticking = false }

type setup = {
  net : Netsim.t;
  client_conn : Tcp.conn;      (* client's half of client<->guard *)
  server_conn : Tcp.conn;      (* server's half of exit<->server *)
  traces : Trace.t * Trace.t * Trace.t * Trace.t;
      (* guard->client, client->guard, server->exit, exit->server *)
}

let build ~rng profile =
  let net = Netsim.create ~rng () in
  let client = Netsim.add_node net in
  let guard = Netsim.add_node net in
  let middle = Netsim.add_node net in
  let exit = Netsim.add_node net in
  let server = Netsim.add_node net in
  let ip i = Ipv4.of_octets 10 9 0 (i + 1) in
  let add_link a b (p : link_profile) =
    Netsim.link net a b ~latency:p.latency ~jitter:p.jitter ~loss:p.loss ()
  in
  add_link client guard profile.client_guard;
  add_link guard middle profile.guard_middle;
  add_link middle exit profile.middle_exit;
  add_link exit server profile.exit_server;
  let g2c = Trace.create () and c2g = Trace.create () in
  let s2e = Trace.create () and e2s = Trace.create () in
  Netsim.set_tap net ~from:guard ~to_:client (Trace.tap g2c);
  Netsim.set_tap net ~from:client ~to_:guard (Trace.tap c2g);
  Netsim.set_tap net ~from:server ~to_:exit (Trace.tap s2e);
  Netsim.set_tap net ~from:exit ~to_:server (Trace.tap e2s);
  let ep_client = Tcp.attach net client (ip 0) in
  let ep_guard = Tcp.attach net guard (ip 1) in
  let ep_middle = Tcp.attach net middle (ip 2) in
  let ep_exit = Tcp.attach net exit (ip 3) in
  let ep_server = Tcp.attach net server (ip 4) in
  let options = profile.tcp in
  let c_cg, c_gc = Tcp.connect ~options ~a:ep_client ~b:ep_guard () in
  let c_gm, c_mg = Tcp.connect ~options ~a:ep_guard ~b:ep_middle () in
  let c_me, c_em = Tcp.connect ~options ~a:ep_middle ~b:ep_exit () in
  let c_es, c_se = Tcp.connect ~options ~a:ep_exit ~b:ep_server () in
  (* Relay plumbing. Guard and middle shuffle cells unchanged; the exit
     packs raw server bytes into cells downstream and unpacks upstream. *)
  let pass = (fun n -> n) in
  let wire recv_conn send_conn scale =
    let pump = make_pump net recv_conn send_conn scale in
    Tcp.set_on_receive recv_conn (fun _ -> pump_drain pump)
  in
  wire c_gc c_gm pass;                                  (* guard: up   *)
  wire c_gm c_gc pass;                                  (* guard: down *)
  wire c_mg c_me pass;                                  (* middle: up   *)
  wire c_me c_mg pass;                                  (* middle: down *)
  wire c_em c_es (make_scaler (cell_payload /. cell_size));  (* exit: up *)
  wire c_es c_em (make_scaler (cell_size /. cell_payload));  (* exit: down *)
  { net;
    client_conn = c_cg;
    server_conn = c_se;
    traces = (g2c, c2g, s2e, e2s) }

let finish setup ~completed ~finish_time =
  let g2c, c2g, s2e, e2s = setup.traces in
  { guard_to_client = g2c; client_to_guard = c2g;
    server_to_exit = s2e; exit_to_server = e2s;
    completed; finish_time;
    client_received = Tcp.bytes_delivered setup.client_conn }

let download ~rng ?(profile = default_profile) ?(until = 600.) ?start_delay
    ?burst ~size () =
  if size <= 0 then invalid_arg "Onion.download: size must be positive";
  let setup = build ~rng profile in
  (* The client's request (a small HTTP GET) rides up the circuit; the
     server answers with the file. *)
  let request = 200 in
  let finish_time = ref 0. in
  let expected = ref max_int in
  let started = ref false in
  let serve () =
    match burst with
    | None -> Tcp.send setup.server_conn size
    | Some (mean_burst, mean_gap) ->
        (* Bursty application: the server emits the payload in
           exponentially-sized chunks separated by think-time gaps (what
           rate-limited or chunked HTTP looks like). Gives each flow a
           distinctive on/off timing signature. *)
        let remaining = ref size in
        let rec burst_loop net =
          if !remaining > 0 then begin
            let chunk =
              min !remaining
                (max 1024 (int_of_float (Rng.exponential rng (1. /. float_of_int mean_burst))))
            in
            remaining := !remaining - chunk;
            Tcp.send setup.server_conn chunk;
            if !remaining > 0 then
              Netsim.schedule net (Rng.exponential rng (1. /. mean_gap)) burst_loop
          end
        in
        burst_loop setup.net
  in
  Tcp.set_on_receive setup.server_conn
    (fun _ ->
       if not !started then begin
         started := true;
         serve ()
       end);
  (* Completion: the client has received the cell-packed payload. The
     packing ratio is applied once, at the exit. *)
  let packed = int_of_float (Float.floor (float_of_int size *. cell_size /. cell_payload)) in
  expected := packed - 600 (* tolerate one unfilled cell per hop buffer *);
  let probe = ref (fun () -> ()) in
  (probe := fun () ->
     if Tcp.bytes_delivered setup.client_conn >= !expected && !finish_time = 0. then
       finish_time := Netsim.now setup.net
     else Netsim.schedule setup.net 0.25 (fun _ -> !probe ()));
  Netsim.schedule setup.net 0.25 (fun _ -> !probe ());
  (match start_delay with
   | Some d -> Netsim.schedule setup.net d (fun _ -> Tcp.send setup.client_conn request)
   | None -> Tcp.send setup.client_conn request);
  Netsim.run ~until setup.net;
  let completed = Tcp.bytes_delivered setup.client_conn >= !expected in
  finish setup ~completed
    ~finish_time:(if !finish_time > 0. then !finish_time else Netsim.now setup.net)

let upload ~rng ?(profile = default_profile) ?(until = 600.) ~size () =
  if size <= 0 then invalid_arg "Onion.upload: size must be positive";
  let setup = build ~rng profile in
  (* The client sends cells; the exit unpacks them for the server. *)
  let packed = int_of_float (Float.ceil (float_of_int size *. cell_size /. cell_payload)) in
  let expected = size - 600 in
  let finish_time = ref 0. in
  let probe = ref (fun () -> ()) in
  (probe := fun () ->
     if Tcp.bytes_delivered setup.server_conn >= expected && !finish_time = 0. then
       finish_time := Netsim.now setup.net
     else Netsim.schedule setup.net 0.25 (fun _ -> !probe ()));
  Netsim.schedule setup.net 0.25 (fun _ -> !probe ());
  Tcp.send setup.client_conn packed;
  Netsim.run ~until setup.net;
  let completed = Tcp.bytes_delivered setup.server_conn >= expected in
  finish setup ~completed
    ~finish_time:(if !finish_time > 0. then !finish_time else Netsim.now setup.net)
