(** tcpdump-like packet traces collected at {!Netsim} taps.

    A trace records headers only (timestamp, sequence, cumulative ACK,
    payload length) — exactly what an on-path AS sees of SSL/TLS traffic,
    since TCP headers are not encrypted (§3.3). *)

type obs = {
  time : float;
  seq : int;
  ack : int;
  payload : int;
}

type t

val create : unit -> t

val tap : t -> float -> Netsim.packet -> unit
(** Use as a {!Netsim.set_tap} observer:
    [Netsim.set_tap net ~from ~to_ (Trace.tap trace)]. *)

val observations : t -> obs list
(** In capture order (time-sorted by construction). *)

val length : t -> int

val total_payload : t -> int
(** Sum of payload bytes seen — "bytes sent" on this segment-direction. *)

val max_ack : t -> int
(** Highest cumulative ACK seen — "bytes acknowledged". *)

val bytes_sent_series : t -> bin:float -> duration:float -> float array
(** [bytes_sent_series t ~bin ~duration] sums payload bytes per time bin:
    the data curves of Figure 2 (right). *)

val bytes_acked_series : t -> bin:float -> duration:float -> float array
(** Per-bin {e newly} acknowledged bytes, computed from the cumulative ACK
    field (the increment of the running maximum per bin): the ACK curves
    of Figure 2 (right). This is where cumulative acking matters — there
    is no per-packet correspondence with the data direction. *)

val cumulative : float array -> float array
(** Running sum, for plotting MB-over-time curves. *)
