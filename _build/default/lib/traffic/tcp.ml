type options = {
  mss : int;
  rwnd : int;
  initial_cwnd : int;
  delack_timeout : float;
}

let default_options =
  { mss = 1460; rwnd = 131072; initial_cwnd = 14600; delack_timeout = 0.04 }

type conn = {
  net : Netsim.t;
  opts : options;
  local_node : Netsim.node;
  peer_node : Netsim.node;
  local_ip : Ipv4.t;
  remote_ip : Ipv4.t;
  lport : int;
  rport : int;
  (* sender state *)
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable backlog : int;          (* app bytes not yet given a sequence *)
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable dupacks : int;
  mutable srtt : float;
  mutable rttvar : float;
  mutable rto : float;
  mutable rto_generation : int;
  mutable rto_armed : bool;
  mutable sample_seq : int;       (* segment end being timed; -1 = none *)
  mutable sample_sent : float;
  (* receiver state *)
  mutable rcv_nxt : int;
  mutable ooo : (int * int) list; (* disjoint [start, end) intervals, sorted *)
  mutable delack_count : int;
  mutable delack_generation : int;
  mutable delivered : int;
  mutable consumed : int;          (* bytes the application has drained *)
  mutable manual_consume : bool;
  mutable peer_wnd : int;          (* peer's last advertised window *)
  mutable on_receive : int -> unit;
  mutable n_rto : int;
  mutable n_fast_rtx : int;
}

type endpoint = {
  e_net : Netsim.t;
  e_node : Netsim.node;
  e_ip : Ipv4.t;
  conns : (int * int * int, conn) Hashtbl.t;
      (* (remote ip as int, remote port, local port) *)
  mutable next_port : int;
}

(* --- sending machinery --------------------------------------------- *)

let advertised_window c =
  max 0 (c.opts.rwnd - (c.delivered - c.consumed))

let packet c ~seq ~payload =
  { Netsim.src = c.local_ip; dst = c.remote_ip; sport = c.lport; dport = c.rport;
    seq; ack = c.rcv_nxt; payload; wnd = advertised_window c;
    syn = false; fin = false }

let transmit c p = Netsim.send c.net ~from:c.local_node ~to_:c.peer_node p

let rec arm_rto c =
  if not c.rto_armed then begin
    c.rto_armed <- true;
    let generation = c.rto_generation in
    Netsim.schedule c.net c.rto (fun _ ->
        if c.rto_generation = generation then begin
          c.rto_armed <- false;
          on_rto c
        end)
  end

and disarm_rto c =
  c.rto_generation <- c.rto_generation + 1;
  c.rto_armed <- false

and on_rto c =
  if c.snd_una < c.snd_nxt then begin
    c.n_rto <- c.n_rto + 1;
    (* Go-back-N: collapse the window and resend from snd_una. *)
    c.ssthresh <- Float.max (2. *. float_of_int c.opts.mss) (c.cwnd /. 2.);
    c.cwnd <- float_of_int c.opts.mss;
    c.backlog <- c.backlog + (c.snd_nxt - c.snd_una);
    c.snd_nxt <- c.snd_una;
    c.rto <- Float.min 8. (c.rto *. 2.);
    c.sample_seq <- -1;
    try_send c
  end

and try_send c =
  let window = min (int_of_float c.cwnd) (min c.opts.rwnd (max c.peer_wnd 1)) in
  let continue = ref true in
  while !continue && c.backlog > 0 && c.snd_nxt - c.snd_una < window do
    (* Never let the flight exceed the window, even by a partial segment. *)
    let room = window - (c.snd_nxt - c.snd_una) in
    let payload = min (min c.opts.mss c.backlog) room in
    let seq = c.snd_nxt in
    c.snd_nxt <- c.snd_nxt + payload;
    c.backlog <- c.backlog - payload;
    if c.sample_seq < 0 then begin
      c.sample_seq <- seq + payload;
      c.sample_sent <- Netsim.now c.net
    end;
    transmit c (packet c ~seq ~payload);
    arm_rto c;
    if c.snd_nxt - c.snd_una >= window then continue := false
  done

let send_pure_ack c =
  c.delack_count <- 0;
  c.delack_generation <- c.delack_generation + 1;
  transmit c (packet c ~seq:c.snd_nxt ~payload:0)

(* --- receiving machinery -------------------------------------------- *)

let update_rtt c =
  let sample = Netsim.now c.net -. c.sample_sent in
  if c.srtt = 0. then begin
    c.srtt <- sample;
    c.rttvar <- sample /. 2.
  end
  else begin
    c.rttvar <- (0.75 *. c.rttvar) +. (0.25 *. Float.abs (c.srtt -. sample));
    c.srtt <- (0.875 *. c.srtt) +. (0.125 *. sample)
  end;
  c.rto <- Float.max 0.2 (c.srtt +. (4. *. c.rttvar))

let handle_ack c ack =
  if ack > c.snd_una then begin
    let mss = float_of_int c.opts.mss in
    if c.dupacks >= 3 then c.cwnd <- c.ssthresh  (* leave fast recovery *)
    else if c.cwnd < c.ssthresh then c.cwnd <- c.cwnd +. mss
    else
      (* CUBIC-flavoured congestion avoidance: grow a few segments per
         RTT rather than Reno's one, as modern stacks do. *)
      c.cwnd <- c.cwnd +. (4. *. mss *. mss /. c.cwnd);
    c.snd_una <- ack;
    c.dupacks <- 0;
    if c.sample_seq >= 0 && ack >= c.sample_seq then begin
      update_rtt c;
      c.sample_seq <- -1
    end;
    disarm_rto c;
    if c.snd_una < c.snd_nxt then arm_rto c;
    try_send c
  end
  else if ack = c.snd_una && c.snd_una < c.snd_nxt then begin
    c.dupacks <- c.dupacks + 1;
    if c.dupacks = 3 then begin
      (* Fast retransmit. *)
      c.n_fast_rtx <- c.n_fast_rtx + 1;
      (* CUBIC-style multiplicative decrease (beta = 0.7). *)
      c.ssthresh <-
        Float.max (2. *. float_of_int c.opts.mss)
          (float_of_int (c.snd_nxt - c.snd_una) *. 0.7);
      c.cwnd <- c.ssthresh +. (3. *. float_of_int c.opts.mss);
      c.sample_seq <- -1;
      transmit c (packet c ~seq:c.snd_una ~payload:(min c.opts.mss (c.snd_nxt - c.snd_una)))
    end
  end

let rec absorb_ooo c =
  match c.ooo with
  | (s, e) :: rest when s <= c.rcv_nxt ->
      c.rcv_nxt <- max c.rcv_nxt e;
      c.ooo <- rest;
      absorb_ooo c
  | _ -> ()

let insert_ooo c s e =
  let rec insert = function
    | [] -> [ (s, e) ]
    | (s', e') :: rest when e < s' -> (s, e) :: (s', e') :: rest
    | (s', e') :: rest when s > e' -> (s', e') :: insert rest
    | (s', e') :: rest ->
        (* overlap: merge *)
        (min s s', max e e') :: rest
  in
  c.ooo <- insert c.ooo

let schedule_delack c =
  c.delack_count <- c.delack_count + 1;
  if c.delack_count >= 2 then send_pure_ack c
  else begin
    let generation = c.delack_generation in
    Netsim.schedule c.net c.opts.delack_timeout (fun _ ->
        if c.delack_generation = generation && c.delack_count > 0 then
          send_pure_ack c)
  end

let handle_data c (p : Netsim.packet) =
  let s = p.Netsim.seq and e = p.Netsim.seq + p.Netsim.payload in
  if e <= c.rcv_nxt then
    (* stale duplicate *)
    send_pure_ack c
  else if s > c.rcv_nxt then begin
    insert_ooo c s e;
    send_pure_ack c  (* immediate dup-ACK *)
  end
  else begin
    let before = c.rcv_nxt in
    c.rcv_nxt <- e;
    absorb_ooo c;
    let fresh = c.rcv_nxt - before in
    c.delivered <- c.delivered + fresh;
    if not c.manual_consume then c.consumed <- c.consumed + fresh;
    schedule_delack c;
    c.on_receive fresh
  end

let handle_packet c (p : Netsim.packet) =
  let old_wnd = c.peer_wnd in
  c.peer_wnd <- p.Netsim.wnd;
  handle_ack c p.Netsim.ack;
  if p.Netsim.payload > 0 then handle_data c p;
  (* A window update can unblock a stalled sender. *)
  if c.peer_wnd > old_wnd then try_send c

(* --- endpoints and connection setup --------------------------------- *)

let dispatch ep _net (p : Netsim.packet) =
  match
    Hashtbl.find_opt ep.conns (Ipv4.to_int p.Netsim.src, p.Netsim.sport, p.Netsim.dport)
  with
  | Some c -> handle_packet c p
  | None -> ()  (* no listener: drop, like a RST-less firewall *)

let attach net node ip =
  let ep = { e_net = net; e_node = node; e_ip = ip; conns = Hashtbl.create 8;
             next_port = 10000 } in
  Netsim.set_handler net node (dispatch ep);
  ep

let fresh_port ep =
  let p = ep.next_port in
  ep.next_port <- ep.next_port + 1;
  p

let make_conn opts net ~local ~peer ~lport ~rport =
  { net; opts;
    local_node = local.e_node; peer_node = peer.e_node;
    local_ip = local.e_ip; remote_ip = peer.e_ip;
    lport; rport;
    snd_una = 0; snd_nxt = 0; backlog = 0;
    cwnd = float_of_int opts.initial_cwnd;
    ssthresh = float_of_int opts.rwnd;
    dupacks = 0; srtt = 0.; rttvar = 0.; rto = 1.0;
    rto_generation = 0; rto_armed = false;
    sample_seq = -1; sample_sent = 0.;
    rcv_nxt = 0; ooo = []; delack_count = 0; delack_generation = 0;
    delivered = 0; consumed = 0; manual_consume = false;
    peer_wnd = opts.rwnd; on_receive = (fun _ -> ()); n_rto = 0; n_fast_rtx = 0 }

let connect ?(options = default_options) ~a ~b () =
  let pa = fresh_port a and pb = fresh_port b in
  let ca = make_conn options a.e_net ~local:a ~peer:b ~lport:pa ~rport:pb in
  let cb = make_conn options b.e_net ~local:b ~peer:a ~lport:pb ~rport:pa in
  Hashtbl.replace a.conns (Ipv4.to_int b.e_ip, pb, pa) ca;
  Hashtbl.replace b.conns (Ipv4.to_int a.e_ip, pa, pb) cb;
  (ca, cb)

let send c n =
  if n < 0 then invalid_arg "Tcp.send: negative byte count";
  c.backlog <- c.backlog + n;
  try_send c

let set_on_receive c f = c.on_receive <- f
let bytes_delivered c = c.delivered
let bytes_acked c = c.snd_una
let bytes_queued c = c.backlog
let retransmit_stats c = (c.n_rto, c.n_fast_rtx)

let set_manual_consume c flag =
  c.manual_consume <- flag;
  if flag then c.consumed <- min c.consumed c.delivered

let consume c n =
  if n < 0 then invalid_arg "Tcp.consume: negative byte count";
  let before = advertised_window c in
  c.consumed <- min c.delivered (c.consumed + n);
  let after = advertised_window c in
  (* Tell the peer the window reopened (window-update ACK), as real stacks
     do when crossing an MSS boundary or leaving zero-window. *)
  if before < c.opts.mss && after >= c.opts.mss then send_pure_ack c

let receive_backlog c = c.delivered - c.consumed
let local_port c = c.lport
let remote_port c = c.rport
