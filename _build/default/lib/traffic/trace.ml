type obs = {
  time : float;
  seq : int;
  ack : int;
  payload : int;
}

type t = { mutable observations : obs list (* newest first *) }

let create () = { observations = [] }

let tap t time (p : Netsim.packet) =
  t.observations <-
    { time; seq = p.Netsim.seq; ack = p.Netsim.ack; payload = p.Netsim.payload }
    :: t.observations

let observations t = List.rev t.observations

let length t = List.length t.observations

let total_payload t =
  List.fold_left (fun acc o -> acc + o.payload) 0 t.observations

let max_ack t = List.fold_left (fun acc o -> max acc o.ack) 0 t.observations

let n_bins ~bin ~duration =
  if bin <= 0. || duration <= 0. then
    invalid_arg "Trace: bin and duration must be positive";
  int_of_float (Float.ceil (duration /. bin))

let bin_index ~bin ~n time =
  let i = int_of_float (time /. bin) in
  if i < 0 then 0 else if i >= n then n - 1 else i

let bytes_sent_series t ~bin ~duration =
  let n = n_bins ~bin ~duration in
  let series = Array.make n 0. in
  List.iter
    (fun o ->
       if o.time <= duration then begin
         let i = bin_index ~bin ~n o.time in
         series.(i) <- series.(i) +. float_of_int o.payload
       end)
    t.observations;
  series

let bytes_acked_series t ~bin ~duration =
  let n = n_bins ~bin ~duration in
  let series = Array.make n 0. in
  (* Walk observations oldest-first, tracking the running max ACK; credit
     each bin with the advance it saw. *)
  let high = ref 0 in
  List.iter
    (fun o ->
       if o.time <= duration && o.ack > !high then begin
         let i = bin_index ~bin ~n o.time in
         series.(i) <- series.(i) +. float_of_int (o.ack - !high);
         high := o.ack
       end)
    (observations t);
  series

let cumulative series =
  let out = Array.make (Array.length series) 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i v ->
       acc := !acc +. v;
       out.(i) <- !acc)
    series;
  out
