(** A byte-counting TCP implementation over {!Netsim}.

    Models exactly the mechanisms the paper's asymmetric traffic analysis
    depends on: sequence numbers and {e cumulative} acknowledgements
    visible in cleartext headers, delayed ACKs (so there is no one-to-one
    packet correspondence between the two directions), slow start and AIMD
    congestion control, a receive-window cap, fast retransmit on three
    duplicate ACKs, and go-back-N on retransmission timeout. Payload bytes
    are counted, not stored.

    One [endpoint] is attached per node; connections between two endpoints
    run over the (single) Netsim link joining their nodes. *)

type endpoint
type conn

val attach : Netsim.t -> Netsim.node -> Ipv4.t -> endpoint
(** Takes ownership of the node's packet handler (replacing any previous
    handler). *)

type options = {
  mss : int;            (** bytes per segment (default 1460) *)
  rwnd : int;           (** receive window cap, bytes (default 131072) *)
  initial_cwnd : int;   (** bytes (default 10 * mss) *)
  delack_timeout : float; (** delayed-ACK timer (default 0.04 s) *)
}

val default_options : options

val connect :
  ?options:options -> a:endpoint -> b:endpoint -> unit -> conn * conn
(** Establishes a connection between the endpoints' nodes (which must be
    directly linked in the Netsim). Returns the two connection halves;
    each can send and receive. Ports are allocated automatically. *)

val send : conn -> int -> unit
(** Queue [n] application bytes for transmission. *)

val set_on_receive : conn -> (int -> unit) -> unit
(** Called with the number of new in-order bytes each time data is
    delivered to the application. *)

val bytes_delivered : conn -> int
(** In-order bytes handed to the application so far. *)

val bytes_acked : conn -> int
(** Own bytes the peer has cumulatively acknowledged. *)

val bytes_queued : conn -> int
(** Application bytes accepted by {!send} but not yet transmitted. *)

val retransmit_stats : conn -> int * int
(** (timeouts taken, fast retransmits taken) — diagnostics. *)

val set_manual_consume : conn -> bool -> unit
(** By default, delivered bytes are consumed immediately and the receive
    window stays open. With manual consumption the application must call
    {!consume}; undrained bytes shrink the advertised window until the
    sender stalls — real receive-side backpressure, which onion relays use
    to couple circuit segments. *)

val consume : conn -> int -> unit
(** Drain bytes from the receive buffer, reopening the advertised window
    (sends a window-update ACK when the window reopens past one MSS).
    @raise Invalid_argument on a negative count. *)

val receive_backlog : conn -> int
(** Delivered-but-unconsumed bytes. Always 0 without manual consumption. *)

val local_port : conn -> int
val remote_port : conn -> int
