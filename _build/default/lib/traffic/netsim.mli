(** Discrete-event packet-network simulator.

    Hosts are nodes; links are point-to-point with latency, jitter and
    loss. Each directed link can carry a {e tap} — a tcpdump-like observer
    that sees every packet (with its timestamp) crossing the link in that
    direction. Taps are how the paper's four observation points
    (client⇄guard, exit⇄server) are realised. *)

type node = int

type packet = {
  src : Ipv4.t;
  dst : Ipv4.t;
  sport : int;
  dport : int;
  seq : int;       (** first byte's sequence number *)
  ack : int;       (** cumulative acknowledgement *)
  payload : int;   (** payload length in bytes; 0 = pure ACK *)
  wnd : int;       (** advertised receive window (flow control) *)
  syn : bool;
  fin : bool;
}

val pp_packet : Format.formatter -> packet -> unit

type t

val create : rng:Rng.t -> unit -> t
val now : t -> float

val add_node : t -> node
(** Nodes start with no handler; see {!set_handler}. *)

val set_handler : t -> node -> (t -> packet -> unit) -> unit
(** Called on every packet delivered to the node. *)

val link :
  t -> node -> node -> latency:float -> ?jitter:float -> ?loss:float -> unit -> unit
(** Creates a bidirectional link. [latency] is one-way seconds; [jitter]
    adds uniform extra delay in [\[0, jitter\]]; [loss] drops each packet
    independently with that probability (in-order delivery is preserved
    among survivors). @raise Invalid_argument if the link exists or the
    nodes are equal. *)

val set_tap : t -> from:node -> to_:node -> (float -> packet -> unit) -> unit
(** Installs the observer for the directed link [from → to_]. The tap sees
    packets when they {e enter} the link (before loss), like a tcpdump at
    the sender's edge. @raise Invalid_argument if no such link. *)

val send : t -> from:node -> to_:node -> packet -> unit
(** Transmits over the link; @raise Invalid_argument if no such link. *)

val schedule : t -> float -> (t -> unit) -> unit
(** [schedule t delay f] runs [f] after [delay] seconds of simulated time. *)

val run : ?until:float -> t -> unit
(** Processes events until the queue empties or simulated time exceeds
    [until]. *)
