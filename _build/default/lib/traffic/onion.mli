(** The paper's wide-area experiment (§4, Figure 2 right), in simulation.

    Builds a 3-hop Tor circuit — client, guard, middle, exit — plus a web
    server, as five {!Netsim} nodes chained by four TCP connections (Tor
    runs a separate TCP connection per hop). Relays are store-and-forward:
    bytes delivered on one hop are immediately queued on the next. The
    exit repackages raw server bytes into 514-byte Tor cells carrying 498
    payload bytes (and unpacks in the upload direction), so segment byte
    counts differ by the cell overhead, exactly as on the real network.

    Taps on the client⇄guard and exit⇄server links record the four traces
    the paper plots: data from guard to client, ACKs from client to guard,
    data from server to exit, ACKs from exit to server. *)

type link_profile = {
  latency : float;  (** one-way seconds *)
  jitter : float;
  loss : float;
}

type profile = {
  client_guard : link_profile;
  guard_middle : link_profile;
  middle_exit : link_profile;
  exit_server : link_profile;
  tcp : Tcp.options;
}

val default_profile : profile
(** Wide-area latencies (tens of ms per hop), light jitter, 0.2% loss. *)

type result = {
  guard_to_client : Trace.t;
  client_to_guard : Trace.t;
  server_to_exit : Trace.t;
  exit_to_server : Trace.t;
  completed : bool;       (** the whole payload arrived *)
  finish_time : float;    (** simulated seconds when the last byte landed *)
  client_received : int;  (** bytes delivered on the client's connection *)
}

val download :
  rng:Rng.t -> ?profile:profile -> ?until:float -> ?start_delay:float ->
  ?burst:int * float -> size:int -> unit -> result
(** The client fetches [size] bytes from the server through the circuit
    (the paper's large-file wget). [until] caps simulated time (default
    600 s); [start_delay] postpones the request; [burst = (mean_bytes,
    mean_gap_s)] makes the server emit the payload in bursts, giving the
    flow a distinctive timing signature.
    @raise Invalid_argument if [size <= 0]. *)

val upload : rng:Rng.t -> ?profile:profile -> ?until:float -> size:int -> unit -> result
(** The client pushes [size] bytes to the server (the paper's
    file-upload-to-WikiLeaks scenario). Trace fields keep their names: in
    an upload, [client_to_guard] carries data and [guard_to_client] the
    ACKs. *)
