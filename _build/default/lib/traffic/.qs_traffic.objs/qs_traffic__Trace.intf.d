lib/traffic/trace.mli: Netsim
