lib/traffic/netsim.ml: Array Float Format Hashtbl Ipv4 Pqueue Printf Rng
