lib/traffic/onion.ml: Float Ipv4 Netsim Rng Tcp Trace
