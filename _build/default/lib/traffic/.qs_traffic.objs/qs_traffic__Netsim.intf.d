lib/traffic/netsim.mli: Format Ipv4 Rng
