lib/traffic/tcp.ml: Float Hashtbl Ipv4 Netsim
