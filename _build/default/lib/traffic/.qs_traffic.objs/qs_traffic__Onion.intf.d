lib/traffic/onion.mli: Rng Tcp Trace
