lib/traffic/trace.ml: Array Float List Netsim
