lib/traffic/tcp.mli: Ipv4 Netsim
