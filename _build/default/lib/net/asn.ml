type t = int

let of_int i =
  if i < 0 || i > 0xFFFFFFFF then invalid_arg "Asn.of_int: out of range";
  i

let to_int a = a
let compare = Int.compare
let equal = Int.equal
let hash a = a
let to_string a = Printf.sprintf "AS%d" a
let pp ppf a = Format.pp_print_string ppf (to_string a)

module Key = struct
  type nonrec t = t
  let compare = compare
end

module Set = Set.Make (Key)
module Map = Map.Make (Key)

module Table = Hashtbl.Make (struct
    type nonrec t = t
    let equal = equal
    let hash = hash
  end)
