(** IPv4 addresses, represented as unboxed [int] (the 32-bit address in the
    low bits). OCaml's native [int] is 63-bit on every platform we target, so
    this is both compact and allocation-free. *)

type t = private int
(** An IPv4 address. The private type prevents out-of-range values; build
    with {!of_int32}, {!of_octets}, {!of_string} or {!of_int_trunc}. *)

val of_int32 : int32 -> t
(** [of_int32 i] reinterprets the 32 bits of [i] as an address. *)

val to_int32 : t -> int32

val of_int_trunc : int -> t
(** [of_int_trunc i] keeps the low 32 bits of [i]. Total. *)

val to_int : t -> int
(** [to_int a] is the address as a non-negative int in [\[0, 2^32)]. *)

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is the address [a.b.c.d].
    @raise Invalid_argument if any octet is outside [\[0, 255\]]. *)

val of_string : string -> t
(** [of_string "10.0.0.1"] parses dotted-quad notation.
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option

val to_string : t -> string
(** Dotted-quad rendering. *)

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val bit : t -> int -> bool
(** [bit a i] is the [i]-th most significant bit of [a], [i] in [\[0, 32)].
    @raise Invalid_argument if [i] is out of range. *)

val succ : t -> t
(** Next address, wrapping at 255.255.255.255. *)

val add : t -> int -> t
(** [add a n] offsets [a] by [n], truncated to 32 bits. *)
