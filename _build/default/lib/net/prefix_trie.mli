(** Immutable binary (Patricia-style) trie keyed by IPv4 prefixes.

    Supports exact-match insertion/lookup and the two queries every piece of
    this system needs constantly:

    - {!longest_match}: the most specific stored prefix containing an
      address (how a router forwards, and how we map a Tor relay to its
      covering BGP prefix);
    - {!covered}: all stored prefixes subsumed by a query prefix (how a
      more-specific hijack finds its victims).

    The trie is persistent: updates return a new trie and share structure,
    which lets the BGP dynamics simulator snapshot routing state cheaply. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool

val add : Prefix.t -> 'a -> 'a t -> 'a t
(** [add p v t] binds [p] to [v], replacing any previous binding of [p]. *)

val remove : Prefix.t -> 'a t -> 'a t
(** [remove p t] removes the binding of [p] if present. *)

val find : Prefix.t -> 'a t -> 'a option
(** Exact-match lookup. *)

val mem : Prefix.t -> 'a t -> bool

val longest_match : Ipv4.t -> 'a t -> (Prefix.t * 'a) option
(** [longest_match addr t] returns the most specific stored prefix
    containing [addr], with its value. *)

val matches : Ipv4.t -> 'a t -> (Prefix.t * 'a) list
(** All stored prefixes containing [addr], most specific first. *)

val covered : Prefix.t -> 'a t -> (Prefix.t * 'a) list
(** [covered p t] lists stored prefixes subsumed by [p] (including [p]
    itself if stored), in increasing {!Prefix.compare} order. *)

val fold : (Prefix.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
(** In increasing {!Prefix.compare} order of keys. *)

val iter : (Prefix.t -> 'a -> unit) -> 'a t -> unit
val cardinal : 'a t -> int
val to_list : 'a t -> (Prefix.t * 'a) list
val of_list : (Prefix.t * 'a) list -> 'a t
val keys : 'a t -> Prefix.t list
