lib/net/prefix.ml: Format Hashtbl Int Ipv4 Map Printf Set String
