lib/net/pqueue.ml: Array List
