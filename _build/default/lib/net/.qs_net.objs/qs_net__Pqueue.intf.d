lib/net/pqueue.mli:
