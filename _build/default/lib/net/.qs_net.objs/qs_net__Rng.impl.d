lib/net/rng.ml: Array Float Int64 List
