lib/net/rng.mli:
