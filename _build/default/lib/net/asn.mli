(** Autonomous System numbers. *)

type t = private int

val of_int : int -> t
(** @raise Invalid_argument if negative or above 2^32-1. *)

val to_int : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
(** Renders as ["AS64512"]. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Table : Hashtbl.S with type key = t
