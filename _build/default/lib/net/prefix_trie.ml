(* A persistent binary trie over prefix bits. Depth is bounded by 32, so an
   uncompressed trie is simple and fast enough; pre-order traversal (node,
   0-branch, 1-branch) yields keys in increasing Prefix.compare order. *)

type 'a t =
  | Leaf
  | Node of { value : 'a option; zero : 'a t; one : 'a t }

let empty = Leaf

let is_empty = function
  | Leaf -> true
  | Node _ -> false

let node value zero one =
  match (value, zero, one) with
  | None, Leaf, Leaf -> Leaf
  | _ -> Node { value; zero; one }

let rec add_at depth p v t =
  let len = Prefix.length p in
  match t with
  | Leaf ->
      if depth = len then Node { value = Some v; zero = Leaf; one = Leaf }
      else if Ipv4.bit (Prefix.network p) depth then
        Node { value = None; zero = Leaf; one = add_at (depth + 1) p v Leaf }
      else Node { value = None; zero = add_at (depth + 1) p v Leaf; one = Leaf }
  | Node { value; zero; one } ->
      if depth = len then Node { value = Some v; zero; one }
      else if Ipv4.bit (Prefix.network p) depth then
        Node { value; zero; one = add_at (depth + 1) p v one }
      else Node { value; zero = add_at (depth + 1) p v zero; one }

let add p v t = add_at 0 p v t

let rec remove_at depth p t =
  match t with
  | Leaf -> Leaf
  | Node { value; zero; one } ->
      if depth = Prefix.length p then node None zero one
      else if Ipv4.bit (Prefix.network p) depth then
        node value zero (remove_at (depth + 1) p one)
      else node value (remove_at (depth + 1) p zero) one

let remove p t = remove_at 0 p t

let rec find_at depth p t =
  match t with
  | Leaf -> None
  | Node { value; zero; one } ->
      if depth = Prefix.length p then value
      else if Ipv4.bit (Prefix.network p) depth then find_at (depth + 1) p one
      else find_at (depth + 1) p zero

let find p t = find_at 0 p t

let mem p t = Option.is_some (find p t)

let matches addr t =
  (* Walk the 32-bit path of [addr], collecting every stored value on the
     way; most specific first means deepest first. *)
  let rec walk depth t acc =
    match t with
    | Leaf -> acc
    | Node { value; zero; one } ->
        let acc =
          match value with
          | Some v -> (Prefix.make addr depth, v) :: acc
          | None -> acc
        in
        if depth = 32 then acc
        else if Ipv4.bit addr depth then walk (depth + 1) one acc
        else walk (depth + 1) zero acc
  in
  walk 0 t []

let longest_match addr t =
  match matches addr t with
  | [] -> None
  | best :: _ -> Some best

(* Pre-order fold, tracking the path bits to reconstruct each key. *)
let fold f t init =
  let rec go depth bits t acc =
    match t with
    | Leaf -> acc
    | Node { value; zero; one } ->
        let acc =
          match value with
          | Some v -> f (Prefix.make (Ipv4.of_int_trunc bits) depth) v acc
          | None -> acc
        in
        let acc = go (depth + 1) bits zero acc in
        go (depth + 1) (bits lor (1 lsl (31 - depth))) one acc
  in
  go 0 0 t init

let iter f t = fold (fun p v () -> f p v) t ()

let cardinal t = fold (fun _ _ n -> n + 1) t 0

let to_list t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])

let of_list l = List.fold_left (fun t (p, v) -> add p v t) empty l

let keys t = List.map fst (to_list t)

let covered p t =
  (* Descend to the node for [p], then enumerate its whole subtree. *)
  let rec descend depth t =
    match t with
    | Leaf -> Leaf
    | Node { zero; one; _ } ->
        if depth = Prefix.length p then t
        else if Ipv4.bit (Prefix.network p) depth then descend (depth + 1) one
        else descend (depth + 1) zero
  in
  let subtree = descend 0 t in
  let base = Ipv4.to_int (Prefix.network p) in
  let rec go depth bits t acc =
    match t with
    | Leaf -> acc
    | Node { value; zero; one } ->
        let acc =
          match value with
          | Some v -> f_acc (Prefix.make (Ipv4.of_int_trunc bits) depth) v acc
          | None -> acc
        in
        let acc = go (depth + 1) bits zero acc in
        go (depth + 1) (bits lor (1 lsl (31 - depth))) one acc
  and f_acc k v acc = (k, v) :: acc in
  List.rev (go (Prefix.length p) base subtree [])
