(** IPv4 CIDR prefixes (e.g. [78.46.0.0/15]).

    A prefix is stored in canonical form: host bits are always zero. Two
    prefixes are equal iff their canonical network address and length are
    equal, so prefixes are usable as keys in maps and hash tables. *)

type t
(** A CIDR prefix. *)

val make : Ipv4.t -> int -> t
(** [make addr len] builds the prefix [addr/len], zeroing host bits.
    @raise Invalid_argument unless [0 <= len <= 32]. *)

val network : t -> Ipv4.t
(** Canonical network address (host bits are zero). *)

val length : t -> int
(** Prefix length in [\[0, 32\]]. *)

val of_string : string -> t
(** [of_string "10.0.0.0/8"] parses CIDR notation.
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
(** Orders by network address, then by length (shorter first). *)

val equal : t -> t -> bool
val hash : t -> int

val mem : Ipv4.t -> t -> bool
(** [mem addr p] is true iff [addr] falls inside [p]. *)

val subsumes : t -> t -> bool
(** [subsumes p q] is true iff every address of [q] lies inside [p]
    (i.e. [p] is equal to or less specific than [q] and covers it). *)

val overlaps : t -> t -> bool
(** [overlaps p q] iff they share at least one address (one subsumes the
    other, for prefixes). *)

val split : t -> t * t
(** [split p] returns the two halves [p0/len+1] and [p1/len+1].
    @raise Invalid_argument if [length p = 32]. *)

val host : Ipv4.t -> t
(** [host addr] is the /32 prefix for [addr]. *)

val first : t -> Ipv4.t
(** Lowest address in the prefix (= {!network}). *)

val last : t -> Ipv4.t
(** Highest address in the prefix. *)

val size : t -> int
(** Number of addresses covered. *)

val nth : t -> int -> Ipv4.t
(** [nth p i] is the [i]-th address of [p].
    @raise Invalid_argument if [i < 0 || i >= size p]. *)

val default : t
(** The default route [0.0.0.0/0]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Table : Hashtbl.S with type key = t
