type t = { net : Ipv4.t; len : int }

let mask_of_len len =
  if len = 0 then 0 else 0xFFFFFFFF lsl (32 - len) land 0xFFFFFFFF

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: length out of range";
  { net = Ipv4.of_int_trunc (Ipv4.to_int addr land mask_of_len len); len }

let network p = p.net
let length p = p.len

let of_string_opt s =
  match String.index_opt s '/' with
  | None -> None
  | Some i ->
      let addr = String.sub s 0 i in
      let len = String.sub s (i + 1) (String.length s - i - 1) in
      begin match (Ipv4.of_string_opt addr, int_of_string_opt len) with
      | Some addr, Some len when len >= 0 && len <= 32 -> Some (make addr len)
      | _ -> None
      end

let of_string s =
  match of_string_opt s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string: %S" s)

let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.net) p.len
let pp ppf p = Format.pp_print_string ppf (to_string p)

let compare p q =
  match Ipv4.compare p.net q.net with
  | 0 -> Int.compare p.len q.len
  | c -> c

let equal p q = compare p q = 0
let hash p = (Ipv4.hash p.net * 37) + p.len

let mem addr p = Ipv4.to_int addr land mask_of_len p.len = Ipv4.to_int p.net

let subsumes p q = p.len <= q.len && mem q.net p
let overlaps p q = subsumes p q || subsumes q p

let split p =
  if p.len = 32 then invalid_arg "Prefix.split: cannot split a /32";
  let len = p.len + 1 in
  let low = { net = p.net; len } in
  let high_net = Ipv4.of_int_trunc (Ipv4.to_int p.net lor (1 lsl (32 - len))) in
  (low, { net = high_net; len })

let host addr = { net = addr; len = 32 }

let first p = p.net

let size p = 1 lsl (32 - p.len)

let last p = Ipv4.of_int_trunc (Ipv4.to_int p.net lor (size p - 1))

let nth p i =
  if i < 0 || i >= size p then invalid_arg "Prefix.nth: index out of range";
  Ipv4.add p.net i

let default = { net = Ipv4.of_int_trunc 0; len = 0 }

module Key = struct
  type nonrec t = t
  let compare = compare
end

module Set = Set.Make (Key)
module Map = Map.Make (Key)

module Table = Hashtbl.Make (struct
    type nonrec t = t
    let equal = equal
    let hash = hash
  end)
