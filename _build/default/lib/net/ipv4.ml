type t = int

let mask32 = 0xFFFFFFFF

let of_int_trunc i = i land mask32
let to_int a = a

let of_int32 i = Int32.to_int i land mask32
let to_int32 a = Int32.of_int a

let of_octets a b c d =
  let check o =
    if o < 0 || o > 255 then invalid_arg "Ipv4.of_octets: octet out of range"
  in
  check a; check b; check c; check d;
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let of_string_opt s =
  match String.split_on_char '.' s with
  | [a; b; c; d] -> begin
      match (int_of_string_opt a, int_of_string_opt b,
             int_of_string_opt c, int_of_string_opt d) with
      | Some a, Some b, Some c, Some d
        when a >= 0 && a <= 255 && b >= 0 && b <= 255
          && c >= 0 && c <= 255 && d >= 0 && d <= 255 ->
          Some (of_octets a b c d)
      | _ -> None
    end
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string: %S" s)

let to_string a =
  Printf.sprintf "%d.%d.%d.%d"
    ((a lsr 24) land 0xFF) ((a lsr 16) land 0xFF)
    ((a lsr 8) land 0xFF) (a land 0xFF)

let pp ppf a = Format.pp_print_string ppf (to_string a)

let compare = Int.compare
let equal = Int.equal
let hash a = a

let bit a i =
  if i < 0 || i > 31 then invalid_arg "Ipv4.bit: index out of range";
  (a lsr (31 - i)) land 1 = 1

let succ a = (a + 1) land mask32
let add a n = (a + n) land mask32
