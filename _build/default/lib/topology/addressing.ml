type t = {
  by_prefix : Asn.t Prefix_trie.t;
  by_asn : Prefix.t list Asn.Table.t;  (* least specific first *)
}

(* Sequential carving: align the cursor to the block size, take the block,
   advance. Guarantees all top-level blocks are disjoint. *)
type cursor = { mutable pos : int }

let carve cur len =
  let size = 1 lsl (32 - len) in
  let aligned = (cur.pos + size - 1) land lnot (size - 1) in
  cur.pos <- aligned + size;
  if cur.pos > 0xE0000000 then failwith "Addressing: address space exhausted";
  Prefix.make (Ipv4.of_int_trunc aligned) len

let allocate ~rng g =
  let by_asn = Asn.Table.create 1024 in
  let cur = { pos = 0x01000000 } in
  let all = ref [] in
  let announce asn p = all := (p, asn) :: !all in
  List.iter
    (fun asn ->
       let info = As_graph.info g asn in
       let blocks = ref [] in
       let top_lens =
         match info.As_graph.tier with
         | As_graph.Tier1 -> [ 16 ]
         | As_graph.Transit -> if Rng.bool rng then [ 18; 20 ] else [ 19 ]
         | As_graph.Stub ->
             if info.As_graph.hosting_weight > 10.0 then [ 15 ]
             else if info.As_graph.hosting_weight > 0. then [ 17 + Rng.int rng 3 ]
             else if Rng.float rng 1.0 < 0.25 then [ 21 + Rng.int rng 3; 22 + Rng.int rng 3 ]
             else [ 21 + Rng.int rng 4 ]
       in
       List.iter
         (fun len ->
            let p = carve cur len in
            blocks := p :: !blocks;
            announce asn p;
            (* Nested more-specific announcements inside the aggregate:
               common for traffic engineering, and what makes the Tor-prefix
               mapping a real longest-prefix-match problem. *)
            let big_hoster = info.As_graph.hosting_weight > 10.0 in
            let hoster = info.As_graph.hosting_weight > 0. in
            if (len <= 20 && Rng.float rng 1.0 < 0.35) || hoster then begin
              (* Hosting ASes (the Hetzner-style /15s especially)
                 de-aggregate a lot, which is what keeps
                 relays-per-most-specific-prefix bounded in the paper's
                 data. *)
              let n_nested =
                if big_hoster then 10 + Rng.int rng 6
                else if hoster then 2 + Rng.int rng 4
                else 1 + Rng.int rng 3
              in
              for _ = 1 to n_nested do
                let extra = 2 + Rng.int rng 4 in
                let sub_len = min 24 (len + extra) in
                let offset = Rng.int rng (1 lsl (sub_len - len)) in
                let sub_net =
                  Ipv4.add (Prefix.network p) (offset * (1 lsl (32 - sub_len)))
                in
                let sub = Prefix.make sub_net sub_len in
                if not (List.exists (Prefix.equal sub) !blocks) then begin
                  blocks := !blocks @ [ sub ];
                  announce asn sub
                end
              done
            end)
         top_lens;
       Asn.Table.replace by_asn asn (List.rev !blocks))
    (As_graph.ases g);
  let by_prefix =
    List.fold_left (fun t (p, asn) -> Prefix_trie.add p asn t) Prefix_trie.empty !all
  in
  { by_prefix; by_asn }

let origin t p = Prefix_trie.find p t.by_prefix

let prefixes_of t asn =
  match Asn.Table.find_opt t.by_asn asn with
  | Some l -> List.sort (fun a b -> Int.compare (Prefix.length a) (Prefix.length b)) l
  | None -> []

let announced t = Prefix_trie.to_list t.by_prefix

let count t = Prefix_trie.cardinal t.by_prefix

let trie t = t.by_prefix

let covering_prefix t addr = Prefix_trie.longest_match addr t.by_prefix

let address_in ~rng t asn =
  match prefixes_of t asn with
  | [] -> raise Not_found
  | blocks ->
      (* Pick among all the AS's announced blocks (nested ones included) so
         hosts spread across its de-aggregated prefixes, as relays do in
         the paper's data. *)
      let p = Rng.pick_list rng blocks in
      (* avoid network/broadcast-looking extremes for realism *)
      let size = Prefix.size p in
      if size <= 2 then Prefix.first p
      else Prefix.nth p (1 + Rng.int rng (size - 2))
