lib/topology/as_graph.ml: Array Asn Buffer List Printf Relationship String
