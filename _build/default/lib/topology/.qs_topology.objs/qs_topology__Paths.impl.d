lib/topology/paths.ml: As_graph Asn List Option Queue Relationship
