lib/topology/addressing.mli: As_graph Asn Ipv4 Prefix Prefix_trie Rng
