lib/topology/addressing.ml: As_graph Asn Int Ipv4 List Prefix Prefix_trie Rng
