lib/topology/topo_gen.ml: Array As_graph Asn Float Hashtbl Int List Printf Rng
