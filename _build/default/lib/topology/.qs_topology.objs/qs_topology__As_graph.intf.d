lib/topology/as_graph.mli: Asn Relationship
