lib/topology/paths.mli: As_graph Asn
