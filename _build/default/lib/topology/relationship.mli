(** AS business relationships, following the Gao model: an inter-AS link is
    either customer-provider (the customer pays) or settlement-free peering.
    Relationships drive both BGP route preference and export policy
    (valley-free routing). *)

type t =
  | Customer  (** the neighbor is my customer: it pays me *)
  | Provider  (** the neighbor is my provider: I pay it *)
  | Peer      (** settlement-free peer *)

val invert : t -> t
(** The relationship as seen from the other side of the link:
    [invert Customer = Provider], [invert Peer = Peer]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val export_allowed : learned_from:t -> to_:t -> bool
(** Gao–Rexford export rule: a route learned from [learned_from] may be
    exported to a neighbor of class [to_] iff at least one of the two is a
    customer. Routes from peers/providers go only to customers; customer
    routes (and self-originated routes) go to everyone. *)

val preference_class : t -> int
(** Route-preference ranking of the neighbor class a route was learned from:
    customer (2) > peer (1) > provider (0). Higher is preferred. *)
