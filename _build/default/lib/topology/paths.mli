(** Relationship-agnostic graph algorithms over an AS topology: used for
    validation (connectivity), statistics, and as a reference implementation
    against which the policy-aware BGP engine is property-tested. *)

val connected : As_graph.t -> bool
(** True iff the undirected graph is connected (and non-empty). *)

val bfs_hops : As_graph.t -> Asn.t -> int Asn.Map.t
(** Shortest-path hop counts from a source, ignoring policy. *)

val degree_stats : As_graph.t -> float * int * int
(** (mean, min, max) undirected degree. *)

val valley_free : As_graph.t -> Asn.t list -> bool
(** [valley_free g path] checks the Gao export condition along an AS path
    (origin last): the path must consist of zero or more customer→provider
    ("uphill") steps, at most one peering step, then zero or more
    provider→customer ("downhill") steps. Vacuously true for paths of length
    <= 1; false if any adjacent pair is not linked. *)

val customer_cone_size : As_graph.t -> Asn.t -> int
(** Number of ASes in the customer cone (the AS itself included). *)
