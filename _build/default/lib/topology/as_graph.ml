type tier = Tier1 | Transit | Stub

type info = { name : string; tier : tier; hosting_weight : float }

let tier_to_string = function
  | Tier1 -> "tier1"
  | Transit -> "transit"
  | Stub -> "stub"

let tier_of_string = function
  | "tier1" -> Tier1
  | "transit" -> Transit
  | "stub" -> Stub
  | s -> invalid_arg (Printf.sprintf "As_graph: unknown tier %S" s)

type t = {
  infos : info Asn.Table.t;
  adj : (Asn.t * Relationship.t) list Asn.Table.t;  (* neighbor, what-neighbor-is-to-me *)
  mutable link_count : int;
}

let create () =
  { infos = Asn.Table.create 1024; adj = Asn.Table.create 1024; link_count = 0 }

let mem_as g a = Asn.Table.mem g.infos a

let add_as g a info =
  if mem_as g a then
    invalid_arg (Printf.sprintf "As_graph.add_as: %s already present" (Asn.to_string a));
  Asn.Table.replace g.infos a info;
  Asn.Table.replace g.adj a []

let info g a =
  match Asn.Table.find_opt g.infos a with
  | Some i -> i
  | None -> raise Not_found

let neighbors g a =
  match Asn.Table.find_opt g.adj a with
  | Some l -> l
  | None -> []

let relationship g a b =
  List.find_map (fun (n, rel) -> if Asn.equal n b then Some rel else None)
    (neighbors g a)

let add_link g a b rel_of_b_for_a =
  if not (mem_as g a) then
    invalid_arg (Printf.sprintf "As_graph.add_link: unknown %s" (Asn.to_string a));
  if not (mem_as g b) then
    invalid_arg (Printf.sprintf "As_graph.add_link: unknown %s" (Asn.to_string b));
  if Asn.equal a b then invalid_arg "As_graph.add_link: self loop";
  if relationship g a b <> None then
    invalid_arg (Printf.sprintf "As_graph.add_link: %s-%s already linked"
                   (Asn.to_string a) (Asn.to_string b));
  Asn.Table.replace g.adj a ((b, rel_of_b_for_a) :: neighbors g a);
  Asn.Table.replace g.adj b ((a, Relationship.invert rel_of_b_for_a) :: neighbors g b);
  g.link_count <- g.link_count + 1

let add_provider_customer g ~provider ~customer =
  add_link g provider customer Relationship.Customer

let add_peering g a b = add_link g a b Relationship.Peer

let filter_neighbors g a rel =
  List.filter_map
    (fun (b, r) -> if Relationship.equal r rel then Some b else None)
    (neighbors g a)

let customers g a = filter_neighbors g a Relationship.Customer
let providers g a = filter_neighbors g a Relationship.Provider
let peers g a = filter_neighbors g a Relationship.Peer

let ases g =
  Asn.Table.fold (fun a _ acc -> a :: acc) g.infos []
  |> List.sort Asn.compare

let num_ases g = Asn.Table.length g.infos
let num_links g = g.link_count
let degree g a = List.length (neighbors g a)

let links g =
  let out = ref [] in
  Asn.Table.iter
    (fun a ns ->
       List.iter
         (fun (b, rel) -> if Asn.compare a b < 0 then out := (a, b, rel) :: !out)
         ns)
    g.adj;
  List.sort
    (fun (a1, b1, _) (a2, b2, _) ->
       match Asn.compare a1 a2 with 0 -> Asn.compare b1 b2 | c -> c)
    !out

let to_caida_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# quicksand AS topology, CAIDA as-rel serial-1 format\n";
  List.iter
    (fun a ->
       let i = info g a in
       Buffer.add_string buf
         (Printf.sprintf "# as-info %d %s %g %s\n" (Asn.to_int a)
            (tier_to_string i.tier) i.hosting_weight i.name))
    (ases g);
  List.iter
    (fun (a, b, rel) ->
       let line =
         match rel with
         | Relationship.Customer ->
             (* b is a's customer: a is the provider *)
             Printf.sprintf "%d|%d|-1\n" (Asn.to_int a) (Asn.to_int b)
         | Relationship.Provider ->
             Printf.sprintf "%d|%d|-1\n" (Asn.to_int b) (Asn.to_int a)
         | Relationship.Peer ->
             Printf.sprintf "%d|%d|0\n" (Asn.to_int a) (Asn.to_int b)
       in
       Buffer.add_string buf line)
    (links g);
  Buffer.contents buf

let of_caida_string s =
  let g = create () in
  let default_info = { name = ""; tier = Stub; hosting_weight = 0. } in
  let ensure a = if not (mem_as g a) then add_as g a default_info in
  let parse_line line =
    let line = String.trim line in
    if line = "" then ()
    else if String.length line >= 10 && String.sub line 0 10 = "# as-info " then begin
      let rest = String.sub line 10 (String.length line - 10) in
      match String.split_on_char ' ' rest with
      | asn :: tier :: weight :: name_parts -> begin
          match (int_of_string_opt asn, float_of_string_opt weight) with
          | Some asn, Some weight ->
              let a = Asn.of_int asn in
              let i =
                { name = String.concat " " name_parts;
                  tier = tier_of_string tier;
                  hosting_weight = weight }
              in
              if mem_as g a then Asn.Table.replace g.infos a i else add_as g a i
          | _ -> invalid_arg "As_graph.of_caida_string: bad as-info line"
        end
      | _ -> invalid_arg "As_graph.of_caida_string: bad as-info line"
    end
    else if line.[0] = '#' then ()
    else
      match String.split_on_char '|' line with
      | [a; b; rel] -> begin
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some a, Some b ->
              let a = Asn.of_int a and b = Asn.of_int b in
              ensure a; ensure b;
              begin match rel with
              | "-1" -> add_provider_customer g ~provider:a ~customer:b
              | "0" -> add_peering g a b
              | _ -> invalid_arg "As_graph.of_caida_string: bad relationship code"
              end
          | _ -> invalid_arg "As_graph.of_caida_string: bad ASN"
        end
      | _ -> invalid_arg "As_graph.of_caida_string: bad line"
  in
  List.iter parse_line (String.split_on_char '\n' s);
  g

module Indexed = struct
  type graph = t

  type t = {
    asns : Asn.t array;
    ids : int Asn.Table.t;
    neighbor_arr : (int * Relationship.t) array array;
    tiers : tier array;
  }

  let of_graph g =
    let asns = Array.of_list (ases g) in
    let n = Array.length asns in
    let ids = Asn.Table.create n in
    Array.iteri (fun i a -> Asn.Table.replace ids a i) asns;
    let neighbor_arr =
      Array.map
        (fun a ->
           neighbors g a
           |> List.map (fun (b, rel) -> (Asn.Table.find ids b, rel))
           |> Array.of_list)
        asns
    in
    let tiers = Array.map (fun a -> (info g a).tier) asns in
    { asns; ids; neighbor_arr; tiers }

  let n t = Array.length t.asns
  let asn_of_id t i = t.asns.(i)
  let id_of_asn t a = Asn.Table.find t.ids a
  let neighbors t i = t.neighbor_arr.(i)
  let tier t i = t.tiers.(i)
end
