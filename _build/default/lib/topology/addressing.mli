(** IPv4 address-space allocation for a topology: which prefixes each AS
    originates in BGP.

    Mirrors the structure the paper measures against: most ASes originate a
    couple of /20–/24 blocks; hosting ASes originate fewer, larger blocks
    (Hetzner's 78.46.0.0/15 being the extreme case), and some ASes announce
    more-specific prefixes nested inside their own aggregates, so that
    "most specific covering prefix" (the Tor-prefix mapping) is non-trivial. *)

type t

val allocate : rng:Rng.t -> As_graph.t -> t
(** Carves disjoint top-level blocks from 1.0.0.0 upward and assigns them to
    every AS in the graph; additionally nests more-specific announcements
    inside some aggregates. Deterministic given [rng]. *)

val origin : t -> Prefix.t -> Asn.t option
(** The AS that originates exactly this prefix, if it is announced. *)

val prefixes_of : t -> Asn.t -> Prefix.t list
(** All prefixes originated by an AS (possibly nested), most specific last. *)

val announced : t -> (Prefix.t * Asn.t) list
(** Every announced prefix with its origin, in {!Prefix.compare} order. *)

val count : t -> int
(** Number of announced prefixes. *)

val trie : t -> Asn.t Prefix_trie.t
(** Announced prefixes as a trie, for longest-prefix-match queries. *)

val covering_prefix : t -> Ipv4.t -> (Prefix.t * Asn.t) option
(** Most specific announced prefix containing the address — the paper's
    "Tor prefix" mapping when the address is a relay. *)

val address_in : rng:Rng.t -> t -> Asn.t -> Ipv4.t
(** A host address inside one of the AS's (least specific) blocks; used to
    place Tor relays, clients and servers inside ASes.
    @raise Not_found if the AS originates nothing. *)
