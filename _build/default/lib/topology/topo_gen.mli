(** Synthetic Internet topology generator.

    Produces a three-tier AS graph with the structural features the paper's
    measurements depend on: a small full-mesh Tier-1 core, preferentially
    attached transit providers (heavy-tailed customer degrees), multihomed
    stubs, and a handful of large hosting ASes with high [hosting_weight]
    (the Hetzner/OVH analogues that end up concentrating Tor relays). *)

type params = {
  n_tier1 : int;           (** size of the Tier-1 clique (e.g. 12) *)
  n_transit : int;         (** number of transit ASes *)
  n_stub : int;            (** number of stub ASes *)
  n_hosting : int;         (** how many ASes get a positive hosting weight *)
  multihoming_prob : float;(** probability a stub has a second provider *)
  transit_peering_prob : float; (** probability two same-region transits peer *)
}

val default_params : params
(** ~2 400 ASes: 12 Tier-1, 350 transit, 2 000 stubs, 60 hosting ASes. *)

val small_params : params
(** ~220 ASes, for tests and examples. *)

val generate : rng:Rng.t -> params -> As_graph.t
(** Generates a connected, valley-free-routable topology. ASNs are assigned
    densely from 1. The five highest-weight hosting ASes are named after the
    paper's top relay hosters (Hetzner Online AG, OVH SAS, Abovenet
    Communications, Fiberring, Online.net).

    @raise Invalid_argument if any count is negative or [n_tier1 < 2]. *)

val hosting_ases : As_graph.t -> (Asn.t * float) list
(** ASes with positive hosting weight, heaviest first. *)
