let bfs_hops g src =
  let dist = ref (Asn.Map.singleton src 0) in
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let a = Queue.pop q in
    let d = Asn.Map.find a !dist in
    List.iter
      (fun (b, _) ->
         if not (Asn.Map.mem b !dist) then begin
           dist := Asn.Map.add b (d + 1) !dist;
           Queue.add b q
         end)
      (As_graph.neighbors g a)
  done;
  !dist

let connected g =
  match As_graph.ases g with
  | [] -> false
  | src :: _ -> Asn.Map.cardinal (bfs_hops g src) = As_graph.num_ases g

let degree_stats g =
  let ases = As_graph.ases g in
  match ases with
  | [] -> (0., 0, 0)
  | _ ->
      let degrees = List.map (As_graph.degree g) ases in
      let total = List.fold_left ( + ) 0 degrees in
      let mn = List.fold_left min max_int degrees in
      let mx = List.fold_left max 0 degrees in
      (float_of_int total /. float_of_int (List.length ases), mn, mx)

(* Walking from the first AS (traffic receiver side in an AS-PATH) towards
   the origin, classify each step by what the *next* hop is to the current
   one, and check uphill* [peer?] downhill* reading from the origin. It is
   easier to validate in reverse: from origin forward, steps go
   customer->provider (next is my provider = Up) ... so we walk from the
   origin end. *)
let valley_free g path =
  let rec steps = function
    | a :: (b :: _ as rest) -> begin
        match As_graph.relationship g a b with
        | None -> None
        | Some rel ->
            Option.map (fun tl -> rel :: tl) (steps rest)
      end
    | [ _ ] | [] -> Some []
  in
  (* path is listed adversary-style: first element is the AS closest to the
     route learner, last is the origin. Walk from the origin: reverse. *)
  match steps (List.rev path) with
  | None -> false
  | Some rels ->
      (* rels.(i) = what step-target is to step-source, origin side first.
         Valid = Provider* (Peer)? Customer*  (uphill, one peak, downhill). *)
      let rec uphill = function
        | Relationship.Provider :: rest -> uphill rest
        | rest -> peak rest
      and peak = function
        | Relationship.Peer :: rest -> downhill rest
        | rest -> downhill rest
      and downhill = function
        | [] -> true
        | Relationship.Customer :: rest -> downhill rest
        | Relationship.Provider :: _ | Relationship.Peer :: _ -> false
      in
      uphill rels

let customer_cone_size g a =
  let seen = ref (Asn.Set.singleton a) in
  let q = Queue.create () in
  Queue.add a q;
  while not (Queue.is_empty q) do
    let x = Queue.pop q in
    List.iter
      (fun c ->
         if not (Asn.Set.mem c !seen) then begin
           seen := Asn.Set.add c !seen;
           Queue.add c q
         end)
      (As_graph.customers g x)
  done;
  Asn.Set.cardinal !seen
