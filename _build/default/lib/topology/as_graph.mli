(** AS-level Internet topology: ASes annotated with metadata, links annotated
    with business relationships.

    The graph is built once (mutably) and then treated as immutable by the
    routing code; link failures are modelled as a set of down links passed to
    the BGP propagation engine, not as graph mutation, so that concurrent
    experiments can share one topology. *)

type tier =
  | Tier1    (** default-free core; peers with all other Tier1s *)
  | Transit  (** regional/national transit provider *)
  | Stub     (** edge AS: enterprise, eyeball, or hosting *)

type info = {
  name : string;          (** human-readable AS name (e.g. "Hetzner Online AG") *)
  tier : tier;
  hosting_weight : float; (** propensity to host Tor relays; 0 for most ASes *)
}

val tier_to_string : tier -> string

type t

val create : unit -> t

val add_as : t -> Asn.t -> info -> unit
(** @raise Invalid_argument if the AS is already present. *)

val add_provider_customer : t -> provider:Asn.t -> customer:Asn.t -> unit
(** Adds a customer-provider link.
    @raise Invalid_argument if either AS is unknown, the ASes are equal, or
    the link already exists. *)

val add_peering : t -> Asn.t -> Asn.t -> unit
(** Adds a settlement-free peering link (same constraints). *)

val mem_as : t -> Asn.t -> bool
val info : t -> Asn.t -> info
(** @raise Not_found if unknown. *)

val relationship : t -> Asn.t -> Asn.t -> Relationship.t option
(** [relationship g a b] is what [b] is to [a] ([Some Customer] if [b] is
    [a]'s customer), or [None] if no link. *)

val neighbors : t -> Asn.t -> (Asn.t * Relationship.t) list
(** [neighbors g a] lists [(b, rel)] with [rel] = what [b] is to [a]. *)

val customers : t -> Asn.t -> Asn.t list
val providers : t -> Asn.t -> Asn.t list
val peers : t -> Asn.t -> Asn.t list

val ases : t -> Asn.t list
(** All ASes, in increasing ASN order. *)

val num_ases : t -> int
val num_links : t -> int
val degree : t -> Asn.t -> int

val links : t -> (Asn.t * Asn.t * Relationship.t) list
(** Each undirected link once, as [(a, b, what-b-is-to-a)] with [a < b]. *)

val to_caida_string : t -> string
(** CAIDA as-rel "serial-1" format, extended with AS metadata comments:
    [<provider>|<customer>|-1] and [<peer>|<peer>|0] lines, preceded by
    [# as-info <asn> <tier> <hosting_weight> <name>] lines. *)

val of_caida_string : string -> t
(** Parses the format written by {!to_caida_string}. ASes appearing only in
    link lines get default stub metadata.
    @raise Invalid_argument on malformed input. *)

(** Dense integer-indexed view for tight inner loops (BGP propagation runs
    BFS over this thousands of times). *)
module Indexed : sig
  type graph = t
  type t

  val of_graph : graph -> t
  val n : t -> int
  val asn_of_id : t -> int -> Asn.t
  val id_of_asn : t -> Asn.t -> int
  (** @raise Not_found if the ASN is not in the graph. *)

  val neighbors : t -> int -> (int * Relationship.t) array
  (** Neighbor ids with what-the-neighbor-is-to-me. *)

  val tier : t -> int -> tier
end
