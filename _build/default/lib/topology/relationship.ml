type t = Customer | Provider | Peer

let invert = function
  | Customer -> Provider
  | Provider -> Customer
  | Peer -> Peer

let to_string = function
  | Customer -> "customer"
  | Provider -> "provider"
  | Peer -> "peer"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b =
  match (a, b) with
  | Customer, Customer | Provider, Provider | Peer, Peer -> true
  | (Customer | Provider | Peer), _ -> false

let export_allowed ~learned_from ~to_ =
  match (learned_from, to_) with
  | Customer, _ -> true
  | (Peer | Provider), Customer -> true
  | (Peer | Provider), (Peer | Provider) -> false

let preference_class = function
  | Customer -> 2
  | Peer -> 1
  | Provider -> 0
