(** RIPE-RIS-style route collectors.

    A collector passively maintains eBGP sessions with volunteer peer ASes
    and records every UPDATE each peer sends. What a session sees depends on
    the peer's export policy towards the collector: *)

type feed =
  | Full                (** peer exports its best route for every prefix *)
  | Customer_and_peer   (** exports only customer- and peer-learned routes *)
  | Customer_only       (** exports only customer-learned (+ own) routes *)

type session = {
  id : Update.session_id;
  peer_ip : Ipv4.t;
  feed : feed;
}

val visible : session -> route_class:[ `Origin | `Customer | `Peer | `Provider ] -> bool
(** Whether a route of the given class at the peer is exported on this
    session. *)

type t = {
  name : string;
  sessions : session list;
}

val standard_names : string list
(** The four collectors the paper used: rrc00, rrc01, rrc03, rrc04. *)

val standard_setup :
  rng:Rng.t -> ?sessions_per_collector:int -> As_graph.t -> Addressing.t -> t list
(** Builds the paper's measurement apparatus: 4 collectors with
    [sessions_per_collector] (default 18, i.e. 72 sessions total — "more
    than 70 eBGP sessions"). Peers are sampled from transit and Tier-1 ASes
    without replacement per collector; the feed mix is roughly 45% full,
    35% customer+peer, 20% customer-only, which reproduces the paper's
    partial-visibility statistics (each Tor prefix seen on ~40% of
    sessions). *)

val all_sessions : t list -> session list
(** Sessions of all collectors, in a stable order. *)
