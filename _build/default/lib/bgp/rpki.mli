(** RPKI route-origin validation (ROV) — the "improvements in BGP security"
    the paper's conclusion calls for.

    A ROA (Route Origin Authorization) states that an AS may originate a
    prefix up to a maximum length. Validating ASes classify received routes
    by their {e claimed} origin:

    - {b Valid}: a covering ROA authorizes the origin and the prefix is no
      longer than its [max_length];
    - {b Invalid}: covering ROAs exist but none matches (wrong origin, or
      over-specific);
    - {b Not_found}: no covering ROA — unprotected space.

    Deploying ASes drop Invalids. Note what this does {e not} stop: an
    interception that forges the victim's ASN as the path origin presents a
    Valid origin, so ROV alone cannot block it (that takes path
    validation) — exactly the deployment gap the paper laments. *)

type roa = {
  roa_prefix : Prefix.t;
  max_length : int;
  authorized : Asn.t;
}

type validity = Valid | Invalid | Not_found

val validity_to_string : validity -> string

type t

val empty : t

val add_roa : t -> roa -> t
(** @raise Invalid_argument if [max_length] is below the ROA prefix length
    or above 32. *)

val of_addressing : Addressing.t -> t
(** Full deployment: one ROA per announced prefix, authorizing its true
    origin at exactly its length (the strictest, recommended practice). *)

val validate : t -> Prefix.t -> Asn.t -> validity
(** [validate t prefix claimed_origin] — RFC 6811 semantics. *)

val size : t -> int
