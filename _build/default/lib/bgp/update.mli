(** Timestamped BGP UPDATE messages as recorded on a collector session —
    the unit of data every measurement in §4 of the paper consumes. *)

type session_id = {
  collector : string; (** e.g. "rrc00" *)
  peer : Asn.t;       (** the AS feeding this session *)
}

val session_compare : session_id -> session_id -> int
val session_equal : session_id -> session_id -> bool
val pp_session : Format.formatter -> session_id -> unit

type kind =
  | Announce of Route.t
  | Withdraw of Prefix.t

type t = {
  time : float;        (** seconds since the start of the measurement *)
  session : session_id;
  kind : kind;
}

val prefix : t -> Prefix.t
(** The prefix the update is about, for either kind. *)

val is_announce : t -> bool
val pp : Format.formatter -> t -> unit

module Session_map : Map.S with type key = session_id
