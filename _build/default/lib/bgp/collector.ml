type feed = Full | Customer_and_peer | Customer_only

type session = {
  id : Update.session_id;
  peer_ip : Ipv4.t;
  feed : feed;
}

let visible session ~route_class =
  match (session.feed, route_class) with
  | Full, _ -> true
  | Customer_and_peer, (`Origin | `Customer | `Peer) -> true
  | Customer_and_peer, `Provider -> false
  | Customer_only, (`Origin | `Customer) -> true
  | Customer_only, (`Peer | `Provider) -> false

type t = { name : string; sessions : session list }

let standard_names = [ "rrc00"; "rrc01"; "rrc03"; "rrc04" ]

let standard_setup ~rng ?(sessions_per_collector = 18) g addressing =
  let candidates =
    As_graph.ases g
    |> List.filter (fun a ->
        match (As_graph.info g a).As_graph.tier with
        | As_graph.Tier1 | As_graph.Transit -> true
        | As_graph.Stub -> false)
    |> Array.of_list
  in
  if Array.length candidates = 0 then
    invalid_arg "Collector.standard_setup: no transit ASes to peer with";
  (* RIS-like mix: a handful of full feeds, many substantial partial feeds
     (customer+peer exports from well-peered networks), a tail of
     customer-only feeds. Reproduces the paper's visibility spread (mean
     ~40% of sessions per Tor prefix, one near-full session). *)
  let pick_feed () =
    let r = Rng.float rng 1.0 in
    if r < 0.15 then Full
    else if r < 0.65 then Customer_and_peer
    else Customer_only
  in
  (* Weight peer choice by degree: real RIS feeds come from well-connected
     networks, which is what makes even partial feeds substantial. *)
  let weights =
    Array.map (fun a -> float_of_int (1 + As_graph.degree g a)) candidates
  in
  let weighted_sample k =
    let chosen = ref Asn.Set.empty in
    let attempts = ref 0 in
    while Asn.Set.cardinal !chosen < min k (Array.length candidates)
          && !attempts < 50 * k do
      incr attempts;
      chosen := Asn.Set.add candidates.(Rng.weighted_index rng weights) !chosen
    done;
    Asn.Set.elements !chosen
  in
  List.map
    (fun name ->
       let peers = weighted_sample sessions_per_collector in
       let sessions =
         List.map
           (fun peer ->
              let peer_ip =
                try Addressing.address_in ~rng addressing peer
                with Not_found -> Ipv4.of_octets 192 0 2 1
              in
              { id = { Update.collector = name; peer }; peer_ip; feed = pick_feed () })
           peers
       in
       { name; sessions })
    standard_names

let all_sessions ts = List.concat_map (fun t -> t.sessions) ts
