(** Sets of inter-AS links, used to represent currently-failed links.

    Links are undirected and stored normalized, so [(a, b)] and [(b, a)]
    denote the same link. *)

type t

val empty : t
val is_empty : t -> bool
val add : Asn.t -> Asn.t -> t -> t
val remove : Asn.t -> Asn.t -> t -> t
val mem : Asn.t -> Asn.t -> t -> bool
val cardinal : t -> int
val elements : t -> (Asn.t * Asn.t) list
val of_list : (Asn.t * Asn.t) list -> t
val touches : Asn.t -> t -> bool
(** [touches a t] iff some link in [t] has [a] as an endpoint. *)
