module Pair = struct
  type t = Asn.t * Asn.t

  let compare (a1, b1) (a2, b2) =
    match Asn.compare a1 a2 with 0 -> Asn.compare b1 b2 | c -> c
end

module S = Set.Make (Pair)

type t = S.t

let norm a b = if Asn.compare a b <= 0 then (a, b) else (b, a)

let empty = S.empty
let is_empty = S.is_empty
let add a b t = S.add (norm a b) t
let remove a b t = S.remove (norm a b) t
let mem a b t = S.mem (norm a b) t
let cardinal = S.cardinal
let elements = S.elements
let of_list l = List.fold_left (fun t (a, b) -> add a b t) empty l
let touches a t = S.exists (fun (x, y) -> Asn.equal x a || Asn.equal y a) t
