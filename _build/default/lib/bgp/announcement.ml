type t = {
  origin : Asn.t;
  prefix : Prefix.t;
  prepend : int;
  fake_suffix : Asn.t list;
  export_to : Asn.Set.t option;
  max_radius : int option;
  communities : (int * int) list;
}

let originate origin prefix =
  { origin; prefix; prepend = 0; fake_suffix = []; export_to = None;
    max_radius = None; communities = [] }

let with_prepend n t =
  if n < 0 then invalid_arg "Announcement.with_prepend: negative";
  { t with prepend = n }

let with_fake_suffix suffix t = { t with fake_suffix = suffix }
let with_export_to set t = { t with export_to = Some set }
let with_max_radius r t = { t with max_radius = Some r }
let with_communities cs t = { t with communities = cs }

let announced_path t =
  let rec repeat n acc = if n = 0 then acc else repeat (n - 1) (t.origin :: acc) in
  repeat (1 + t.prepend) t.fake_suffix

let pp ppf t =
  Format.fprintf ppf "%a -> %a (path %s%s)" Asn.pp t.origin Prefix.pp t.prefix
    (String.concat " "
       (List.map (fun a -> string_of_int (Asn.to_int a)) (announced_path t)))
    (match t.max_radius with
     | Some r -> Printf.sprintf ", radius %d" r
     | None -> "")
