type session_id = { collector : string; peer : Asn.t }

let session_compare a b =
  match String.compare a.collector b.collector with
  | 0 -> Asn.compare a.peer b.peer
  | c -> c

let session_equal a b = session_compare a b = 0

let pp_session ppf s =
  Format.fprintf ppf "%s:%a" s.collector Asn.pp s.peer

type kind =
  | Announce of Route.t
  | Withdraw of Prefix.t

type t = { time : float; session : session_id; kind : kind }

let prefix t =
  match t.kind with
  | Announce r -> r.Route.prefix
  | Withdraw p -> p

let is_announce t =
  match t.kind with
  | Announce _ -> true
  | Withdraw _ -> false

let pp ppf t =
  match t.kind with
  | Announce r ->
      Format.fprintf ppf "%.1f %a A %a" t.time pp_session t.session Route.pp r
  | Withdraw p ->
      Format.fprintf ppf "%.1f %a W %a" t.time pp_session t.session Prefix.pp p

module Session_map = Map.Make (struct
    type t = session_id
    let compare = session_compare
  end)
