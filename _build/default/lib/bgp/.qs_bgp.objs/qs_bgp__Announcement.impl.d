lib/bgp/announcement.ml: Asn Format List Prefix Printf String
