lib/bgp/link_set.mli: Asn
