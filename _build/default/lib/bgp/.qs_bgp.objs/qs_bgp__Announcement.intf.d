lib/bgp/announcement.mli: Asn Format Prefix
