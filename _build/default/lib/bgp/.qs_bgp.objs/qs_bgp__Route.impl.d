lib/bgp/route.ml: Asn Format Int List Prefix Printf String
