lib/bgp/propagate.ml: Announcement Array As_graph Asn Int Link_set List Prefix Printf Relationship Route Rpki
