lib/bgp/propagate.mli: Announcement As_graph Asn Link_set Prefix Route Rpki
