lib/bgp/link_set.ml: Asn List Set
