lib/bgp/update.ml: Asn Format Map Prefix Route String
