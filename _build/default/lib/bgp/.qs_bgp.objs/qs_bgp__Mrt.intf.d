lib/bgp/mrt.mli: Asn Buffer Ipv4 Prefix Route Update
