lib/bgp/mrt.ml: Array Asn Buffer Char Float Hashtbl Ipv4 List Option Prefix Printf Route String Update
