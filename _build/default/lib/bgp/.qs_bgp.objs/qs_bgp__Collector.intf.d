lib/bgp/collector.mli: Addressing As_graph Ipv4 Rng Update
