lib/bgp/dynamics.mli: Addressing As_graph Asn Collector Prefix Rng Route Update
