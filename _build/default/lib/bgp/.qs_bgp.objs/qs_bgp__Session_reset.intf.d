lib/bgp/session_reset.mli: Update
