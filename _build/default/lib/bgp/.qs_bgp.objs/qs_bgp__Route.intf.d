lib/bgp/route.mli: Asn Format Prefix
