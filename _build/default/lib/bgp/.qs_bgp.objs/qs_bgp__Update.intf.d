lib/bgp/update.mli: Asn Format Map Prefix Route
