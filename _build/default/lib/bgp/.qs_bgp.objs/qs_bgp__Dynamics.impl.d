lib/bgp/dynamics.ml: Addressing Announcement Array As_graph Asn Collector Float Int Link_set List Option Pqueue Prefix Propagate Rng Route Update
