lib/bgp/rpki.ml: Addressing Asn List Option Prefix Prefix_trie
