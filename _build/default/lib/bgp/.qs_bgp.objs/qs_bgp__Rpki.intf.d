lib/bgp/rpki.mli: Addressing Asn Prefix
