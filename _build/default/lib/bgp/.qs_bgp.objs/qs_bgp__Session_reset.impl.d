lib/bgp/session_reset.ml: Hashtbl Option Prefix Queue Update
