lib/bgp/collector.ml: Addressing Array As_graph Asn Ipv4 List Rng Update
