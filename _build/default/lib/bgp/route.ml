type t = {
  prefix : Prefix.t;
  as_path : Asn.t list;
  communities : (int * int) list;
}

let make ?(communities = []) prefix as_path =
  if as_path = [] then invalid_arg "Route.make: empty AS path";
  { prefix; as_path; communities }

let rec last = function
  | [ x ] -> x
  | _ :: rest -> last rest
  | [] -> invalid_arg "Route.origin: empty path"

let origin t = last t.as_path

let first_hop t =
  match t.as_path with
  | hop :: _ -> hop
  | [] -> invalid_arg "Route.first_hop: empty path"

let path_length t = List.length t.as_path

let as_set t = Asn.Set.of_list t.as_path

let contains_as t a = List.exists (Asn.equal a) t.as_path

let same_as_set a b = Asn.Set.equal (as_set a) (as_set b)

let compare a b =
  match Prefix.compare a.prefix b.prefix with
  | 0 -> begin
      match List.compare Asn.compare a.as_path b.as_path with
      | 0 -> List.compare (fun (x1, y1) (x2, y2) ->
          match Int.compare x1 x2 with 0 -> Int.compare y1 y2 | c -> c)
          a.communities b.communities
      | c -> c
    end
  | c -> c

let equal a b = compare a b = 0

let to_string t =
  Printf.sprintf "%s via [%s]" (Prefix.to_string t.prefix)
    (String.concat " " (List.map (fun a -> string_of_int (Asn.to_int a)) t.as_path))

let pp ppf t = Format.pp_print_string ppf (to_string t)
