(** What an AS injects into BGP for a prefix.

    A single prefix can have several simultaneous announcements — that is
    exactly what a hijack is (the legitimate origin plus the attacker both
    originating it). The attack-relevant knobs are all here:

    - [prepend]: AS-path prepending of the origin's own ASN (used both for
      traffic engineering churn and by interception attackers to keep a
      clean path back to the victim);
    - [fake_suffix]: ASes appended after the origin in the announced path.
      An interception attacker announces [attacker, victim] so the route
      still "ends" at the victim and loop detection at the victim's
      neighbors is not triggered;
    - [export_to]: restrict which neighbors receive the announcement
      (BGP-community-style scoped propagation, the Renesys MITM trick);
    - [max_radius]: stop re-export after this many AS hops from the origin
      (NO_EXPORT-style scoping), [None] = unlimited. *)

type t = {
  origin : Asn.t;
  prefix : Prefix.t;
  prepend : int;
  fake_suffix : Asn.t list;
  export_to : Asn.Set.t option;
  max_radius : int option;
  communities : (int * int) list;
}

val originate : Asn.t -> Prefix.t -> t
(** A plain, honest announcement: no prepending, no scoping. *)

val with_prepend : int -> t -> t
(** @raise Invalid_argument if negative. *)

val with_fake_suffix : Asn.t list -> t -> t
val with_export_to : Asn.Set.t -> t -> t
val with_max_radius : int -> t -> t
val with_communities : (int * int) list -> t -> t

val announced_path : t -> Asn.t list
(** The AS path as injected at the origin: the origin repeated
    [1 + prepend] times, then [fake_suffix]. *)

val pp : Format.formatter -> t -> unit
