type roa = {
  roa_prefix : Prefix.t;
  max_length : int;
  authorized : Asn.t;
}

type validity = Valid | Invalid | Not_found

let validity_to_string = function
  | Valid -> "valid"
  | Invalid -> "invalid"
  | Not_found -> "not-found"

type t = { roas : roa list Prefix_trie.t; count : int }

let empty = { roas = Prefix_trie.empty; count = 0 }

let add_roa t roa =
  if roa.max_length < Prefix.length roa.roa_prefix || roa.max_length > 32 then
    invalid_arg "Rpki.add_roa: bad max_length";
  let existing =
    Option.value ~default:[] (Prefix_trie.find roa.roa_prefix t.roas)
  in
  { roas = Prefix_trie.add roa.roa_prefix (roa :: existing) t.roas;
    count = t.count + 1 }

let of_addressing addressing =
  List.fold_left
    (fun t (p, origin) ->
       add_roa t
         { roa_prefix = p; max_length = Prefix.length p; authorized = origin })
    empty (Addressing.announced addressing)

let validate t prefix claimed_origin =
  (* Covering ROAs: every stored ROA whose prefix subsumes the route's. *)
  let covering =
    Prefix_trie.matches (Prefix.network prefix) t.roas
    |> List.concat_map snd
    |> List.filter (fun roa -> Prefix.subsumes roa.roa_prefix prefix)
  in
  match covering with
  | [] -> Not_found
  | roas ->
      if
        List.exists
          (fun roa ->
             Asn.equal roa.authorized claimed_origin
             && Prefix.length prefix <= roa.max_length)
          roas
      then Valid
      else Invalid

let size t = t.count
