(** BGP routes: a prefix plus the attributes this system reasons about.

    The AS path is stored receiver-first: the head is the AS that would
    export the route next (the neighbor you learn it from), the last element
    is the (claimed) origin. Prepending shows up as repeated ASNs. *)

type t = {
  prefix : Prefix.t;
  as_path : Asn.t list;          (** receiver-first; last = claimed origin *)
  communities : (int * int) list; (** RFC1997-style [(asn, value)] tags *)
}

val make : ?communities:(int * int) list -> Prefix.t -> Asn.t list -> t
(** @raise Invalid_argument if the path is empty. *)

val origin : t -> Asn.t
(** The claimed origin: the last AS on the path. *)

val first_hop : t -> Asn.t
(** The head of the path: the AS announcing this route to us. *)

val path_length : t -> int
(** AS-path length, counting prepending repetitions (BGP semantics). *)

val as_set : t -> Asn.Set.t
(** The set of distinct ASes on the path — the paper's "set of ASes
    crossed", used to define a path change. *)

val contains_as : t -> Asn.t -> bool

val same_as_set : t -> t -> bool
(** True iff the two routes cross the same set of ASes. A transition
    between routes with [same_as_set = false] is a path change (§4). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
