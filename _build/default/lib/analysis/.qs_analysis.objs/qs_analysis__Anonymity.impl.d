lib/analysis/anonymity.ml: Array Float List Rng
