lib/analysis/anonymity.mli: Rng
