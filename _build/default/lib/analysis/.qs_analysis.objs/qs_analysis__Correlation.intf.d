lib/analysis/correlation.mli:
