lib/analysis/ccdf.mli:
