lib/analysis/correlation.ml: Array Float List
