lib/analysis/ccdf.ml: Array Float List
