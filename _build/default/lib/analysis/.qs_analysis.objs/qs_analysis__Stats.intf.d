lib/analysis/stats.mli:
