let check_f f =
  if f < 0. || f > 1. then invalid_arg "Anonymity: f must be in [0, 1]"

let compromise_probability ~f ~x =
  check_f f;
  if x < 0 then invalid_arg "Anonymity: x must be non-negative";
  1. -. ((1. -. f) ** float_of_int x)

let multi_guard_probability ~f ~x ~l =
  if l < 0 then invalid_arg "Anonymity: l must be non-negative";
  compromise_probability ~f ~x:(l * x)

let monte_carlo_compromise ~rng ~trials ~universe ~f ~exposed =
  check_f f;
  if trials <= 0 || universe <= 0 || exposed < 0 || exposed > universe then
    invalid_arg "Anonymity.monte_carlo_compromise: bad parameters";
  let hits = ref 0 in
  let ids = Array.init universe (fun i -> i) in
  for _ = 1 to trials do
    (* Only the [exposed] observing ASes matter: each is malicious
       independently with probability f, but we draw them as distinct ASes
       from the universe to mirror the model's setup. *)
    let observers = Rng.sample_without_replacement rng exposed ids in
    if List.exists (fun _ -> Rng.float rng 1.0 < f) observers then incr hits
  done;
  float_of_int !hits /. float_of_int trials

let time_to_compromise ~rng ~per_instance ~max_instances =
  check_f per_instance;
  let rec loop i =
    if i > max_instances then None
    else if Rng.float rng 1.0 < per_instance then Some i
    else loop (i + 1)
  in
  loop 1

let entropy dist =
  let sum = List.fold_left ( +. ) 0. dist in
  if Float.abs (sum -. 1.) > 1e-6 then
    invalid_arg "Anonymity.entropy: distribution does not sum to 1";
  List.fold_left
    (fun acc p ->
       if p < 0. then invalid_arg "Anonymity.entropy: negative probability"
       else if p = 0. then acc
       else acc -. (p *. (log p /. log 2.)))
    0. dist

let anonymity_set_entropy n =
  if n <= 0 then invalid_arg "Anonymity.anonymity_set_entropy: empty set";
  log (float_of_int n) /. log 2.
