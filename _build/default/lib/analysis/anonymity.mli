(** Anonymity metrics: the §3.1 analytic compromise model and friends.

    The paper's model: if each AS is malicious independently with
    probability [f] and the paths between a client and one guard cross [x]
    distinct ASes over time, the chance that at least one observing AS is
    malicious is [1 - (1-f)^x]; with [l] guards it becomes
    [1 - (1-f)^(l*x)]. *)

val compromise_probability : f:float -> x:int -> float
(** @raise Invalid_argument unless [0 <= f <= 1] and [x >= 0]. *)

val multi_guard_probability : f:float -> x:int -> l:int -> float
(** [1 - (1-f)^(l*x)]. @raise Invalid_argument as above, or [l < 0]. *)

val monte_carlo_compromise :
  rng:Rng.t -> trials:int -> universe:int -> f:float -> exposed:int -> float
(** Empirical estimate to validate the closed form: draw a malicious set
    (each of [universe] ASes malicious w.p. [f]) and a set of [exposed]
    distinct observing ASes per trial; return the fraction of trials where
    they intersect. @raise Invalid_argument on nonsensical inputs. *)

val time_to_compromise :
  rng:Rng.t -> per_instance:float -> max_instances:int -> int option
(** Number of communication instances until first compromise when each
    instance is compromised independently with [per_instance]; [None] if
    it never happens within [max_instances]. *)

val entropy : float list -> float
(** Shannon entropy (bits) of a probability distribution; raises
    [Invalid_argument] if it does not sum to ~1 or has negatives. *)

val anonymity_set_entropy : int -> float
(** Entropy of a uniform anonymity set of the given size (bits);
    [anonymity_set_entropy 1 = 0.]. *)
