(** Descriptive statistics over float samples. All functions raise
    [Invalid_argument] on an empty sample unless stated otherwise. *)

val mean : float list -> float
val variance : float list -> float
(** Population variance. *)

val stddev : float list -> float

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]]; linear interpolation
    between order statistics. @raise Invalid_argument if [p] is out of
    range. *)

val median : float list -> float
val minimum : float list -> float
val maximum : float list -> float

val of_ints : int list -> float list

val summary : float list -> string
(** "n=… mean=… p50=… p75=… p95=… max=…" — for logs and reports. *)
