let check = function
  | [] -> invalid_arg "Stats: empty sample"
  | xs -> xs

let mean xs =
  let xs = check xs in
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let variance xs =
  let m = mean xs in
  let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
  sq /. float_of_int (List.length xs)

let stddev xs = sqrt (variance xs)

let percentile xs p =
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let arr = Array.of_list (check xs) in
  Array.sort Float.compare arr;
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
  end

let median xs = percentile xs 50.
let minimum xs = List.fold_left Float.min infinity (check xs)
let maximum xs = List.fold_left Float.max neg_infinity (check xs)

let of_ints = List.map float_of_int

let summary xs =
  let xs = check xs in
  Printf.sprintf "n=%d mean=%.3g p50=%.3g p75=%.3g p95=%.3g max=%.3g"
    (List.length xs) (mean xs) (median xs) (percentile xs 75.)
    (percentile xs 95.) (maximum xs)
