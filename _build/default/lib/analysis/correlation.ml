let check a b =
  if Array.length a <> Array.length b then
    invalid_arg "Correlation: length mismatch";
  if Array.length a < 2 then invalid_arg "Correlation: need at least 2 points"

let pearson a b =
  check a b;
  let n = float_of_int (Array.length a) in
  let sum = Array.fold_left ( +. ) 0. in
  let ma = sum a /. n and mb = sum b /. n in
  let cov = ref 0. and va = ref 0. and vb = ref 0. in
  Array.iteri
    (fun i x ->
       let dx = x -. ma and dy = b.(i) -. mb in
       cov := !cov +. (dx *. dy);
       va := !va +. (dx *. dx);
       vb := !vb +. (dy *. dy))
    a;
  if !va = 0. || !vb = 0. then 0. else !cov /. sqrt (!va *. !vb)

let ranks a =
  let n = Array.length a in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare a.(i) a.(j)) order;
  let r = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    (* average rank across the tie group *)
    let j = ref !i in
    while !j + 1 < n && a.(order.(!j + 1)) = a.(order.(!i)) do incr j done;
    let avg = float_of_int (!i + !j) /. 2. in
    for k = !i to !j do
      r.(order.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman a b =
  check a b;
  pearson (ranks a) (ranks b)

let best_lag a b ~max_lag =
  if max_lag < 0 then invalid_arg "Correlation.best_lag: negative max_lag";
  if Array.length a = 0 || Array.length b = 0 then
    invalid_arg "Correlation.best_lag: empty series";
  let n = min (Array.length a) (Array.length b) in
  let best = ref (0, neg_infinity) in
  for lag = -max_lag to max_lag do
    (* positive lag: compare a.(i) with b.(i - lag) *)
    let start = max 0 lag in
    let stop = min n (n + lag) in
    let len = stop - start in
    if len >= 2 then begin
      let xa = Array.sub a start len in
      let xb = Array.init len (fun i -> b.(start + i - lag)) in
      let r = pearson xa xb in
      let _, best_r = !best in
      if r > best_r then best := (lag, r)
    end
  done;
  if snd !best = neg_infinity then invalid_arg "Correlation.best_lag: series too short";
  !best

let match_score observed ~target ~max_lag =
  match target with
  | [] -> invalid_arg "Correlation.match_score: no candidates"
  | _ ->
      let scored =
        List.mapi
          (fun i cand ->
             let _, r = best_lag observed cand ~max_lag in
             (i, r))
          target
      in
      fst (List.fold_left
             (fun (bi, br) (i, r) -> if r > br then (i, r) else (bi, br))
             (-1, neg_infinity) scored)
