(** Time-series correlation — the measurement engine behind asymmetric
    traffic analysis (§3.3). The adversary bins bytes-sent on one segment
    and bytes-acked on another and asks whether they co-move. *)

val pearson : float array -> float array -> float
(** Pearson's r. Returns 0 if either series is constant.
    @raise Invalid_argument on length mismatch or length < 2. *)

val spearman : float array -> float array -> float
(** Rank correlation (average ranks on ties). Same error conditions. *)

val best_lag : float array -> float array -> max_lag:int -> int * float
(** [best_lag a b ~max_lag] slides [b] by [-max_lag .. max_lag] bins and
    returns the lag maximising Pearson's r on the overlap, with that r.
    Positive lag means [b] trails [a]. Overlaps shorter than 2 bins are
    skipped. @raise Invalid_argument if [max_lag < 0] or inputs empty. *)

val match_score :
  float array -> target:float array list -> max_lag:int -> int
(** [match_score observed ~target ~max_lag] — deanonymization decision:
    the index of the candidate [target] series whose best-lag correlation
    with [observed] is highest. @raise Invalid_argument on empty target
    list. *)
