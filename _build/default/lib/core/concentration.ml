type t = {
  per_as : (Asn.t * string * int) list;
  curve : (int * float) list;
  top5_share : float;
  ases_for_half : int;
  total_ases : int;
}

let compute (scenario : Scenario.t) =
  let relays = Consensus.guard_or_exit scenario.Scenario.consensus in
  let counts = Asn.Table.create 256 in
  List.iter
    (fun (r : Relay.t) ->
       let c = Option.value ~default:0 (Asn.Table.find_opt counts r.Relay.asn) in
       Asn.Table.replace counts r.Relay.asn (c + 1))
    relays;
  let per_as =
    Asn.Table.fold
      (fun asn c acc ->
         ((asn, (As_graph.info scenario.Scenario.graph asn).As_graph.name, c) :: acc))
      counts []
    |> List.sort (fun (_, _, c1) (_, _, c2) -> Int.compare c2 c1)
  in
  let total = float_of_int (List.length relays) in
  let curve =
    let acc = ref 0 in
    List.mapi
      (fun i (_, _, c) ->
         acc := !acc + c;
         (i + 1, 100. *. float_of_int !acc /. total))
      per_as
  in
  let share_at_rank k =
    let rec last_le best = function
      | [] -> best
      | (rank, pct) :: rest -> if rank <= k then last_le pct rest else best
    in
    last_le 0. curve /. 100.
  in
  let ases_for_half =
    match List.find_opt (fun (_, pct) -> pct >= 50.) curve with
    | Some (rank, _) -> rank
    | None -> List.length curve
  in
  { per_as; curve;
    top5_share = share_at_rank 5;
    ases_for_half;
    total_ases = List.length per_as }

let share_at t k =
  let rec last_le best = function
    | [] -> best
    | (rank, pct) :: rest -> if rank <= k then last_le pct rest else best
  in
  last_le 0. t.curve /. 100.

let print ppf t =
  Format.fprintf ppf "F2L: concentration of guard/exit relays across ASes@.";
  Format.fprintf ppf "  paper: 5 ASes host 20%% of guard/exit relays@.";
  Format.fprintf ppf "  measured: top-5 share = %.1f%%, %d ASes host half, %d hosting ASes total@."
    (100. *. t.top5_share) t.ases_for_half t.total_ases;
  Format.fprintf ppf "  curve (x ASes -> y%% of relays):@.";
  List.iter
    (fun k ->
       if k <= t.total_ases then
         Format.fprintf ppf "    %4d -> %5.1f%%@." k (100. *. share_at t k))
    [ 1; 2; 5; 10; 20; 50; 100; 200; 500; t.total_ases ];
  Format.fprintf ppf "  top hosting ASes:@.";
  List.iteri
    (fun i (asn, name, c) ->
       if i < 10 then
         Format.fprintf ppf "    %-24s %-8s %4d relays@."
           (if name = "" then "(unnamed)" else name)
           (Asn.to_string asn) c)
    t.per_as
