lib/core/deanonymization.ml: Announcement Anonymity Array As_graph Asn Asymmetric Consensus Format Hijack Interception List Path_selection Prefix Relay Rng Scenario
