lib/core/guard_inference.mli: Consensus Relay Rng
