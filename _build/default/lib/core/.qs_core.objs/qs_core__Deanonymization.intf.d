lib/core/deanonymization.mli: Asn Format Prefix Relay Rng Scenario
