lib/core/as_exposure.mli: Ccdf Format Measurement Prefix
