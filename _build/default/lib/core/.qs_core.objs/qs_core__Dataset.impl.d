lib/core/dataset.ml: Array Asn Collector Consensus Format List Measurement Printf Relay Scenario Stats Tor_prefix
