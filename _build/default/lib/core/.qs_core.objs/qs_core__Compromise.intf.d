lib/core/compromise.mli: As_exposure Format Rng
