lib/core/bgp_security.ml: Announcement Array As_graph Asn Consensus Float Format Hijack Interception List Option Path_selection Prefix Rng Rpki Scenario
