lib/core/path_changes.ml: Asn Ccdf Float Format Hashtbl List Measurement Option Prefix Stats Update
