lib/core/asymmetric.ml: Array Correlation Float Format List Onion Rng Stats Trace
