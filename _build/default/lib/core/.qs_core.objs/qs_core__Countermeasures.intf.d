lib/core/countermeasures.mli: Dynamics Format Rng Scenario
