lib/core/scenario.ml: Addressing Announcement Array As_graph Asn Collector Consensus Dynamics Hashtbl Int64 List Relay Rng Topo_gen Tor_prefix Update
