lib/core/bgp_security.mli: Format Rng Scenario
