lib/core/convergence_leak.ml: Asn Format List Measurement Option
