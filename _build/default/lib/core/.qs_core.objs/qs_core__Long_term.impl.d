lib/core/long_term.ml: Addressing Announcement Array As_graph Asn Consensus Format Fun Hashtbl Int Link_set List Path_selection Prefix Printf Propagate Relay Rng Scenario
