lib/core/as_exposure.ml: Asn Ccdf Format List Measurement Option Prefix
