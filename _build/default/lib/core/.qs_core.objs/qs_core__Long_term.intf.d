lib/core/long_term.mli: Asn Format Rng Scenario
