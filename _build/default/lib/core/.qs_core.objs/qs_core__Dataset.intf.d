lib/core/dataset.mli: Format Measurement Scenario
