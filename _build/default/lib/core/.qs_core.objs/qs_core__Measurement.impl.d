lib/core/measurement.ml: Asn Dynamics Hashtbl List Option Prefix Route Scenario Session_reset Tor_prefix Update
