lib/core/route_asymmetry.ml: Addressing Announcement Anonymity Asn Consensus Format Fun List Path_selection Propagate Relay Scenario
