lib/core/scenario.mli: Addressing Announcement As_graph Asn Collector Consensus Dynamics Relay Rng Tor_prefix
