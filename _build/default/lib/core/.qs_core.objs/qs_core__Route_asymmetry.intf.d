lib/core/route_asymmetry.mli: Asn Format Relay Rng Scenario
