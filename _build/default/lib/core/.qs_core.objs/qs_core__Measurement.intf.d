lib/core/measurement.mli: Asn Dynamics Prefix Scenario Session_reset Update
