lib/core/path_changes.mli: Ccdf Format Measurement Prefix Update
