lib/core/concentration.ml: As_graph Asn Consensus Format Int List Option Relay Scenario
