lib/core/concentration.mli: Asn Format Scenario
