lib/core/asymmetric.mli: Format Onion Rng
