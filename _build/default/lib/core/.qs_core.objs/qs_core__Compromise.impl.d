lib/core/compromise.ml: Anonymity As_exposure Float Format List Stats
