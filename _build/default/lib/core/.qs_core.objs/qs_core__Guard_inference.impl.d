lib/core/guard_inference.ml: Consensus Int List Option Path_selection Relay Rng
