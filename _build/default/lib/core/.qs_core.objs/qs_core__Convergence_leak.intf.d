lib/core/convergence_leak.mli: Format Measurement
