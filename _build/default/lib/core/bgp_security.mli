(** Experiment X1 — what BGP security buys Tor (§7 "Improvements in BGP
    security can go a long way...", and why "techniques that prevent
    interception attacks" are the hard part).

    Sweeps RPKI/ROV deployment from 0% to 100% of ASes and measures the
    capture footprint of:

    - a same-prefix origin hijack (claimed origin = attacker — Invalid
      under ROV, so deployers drop it);
    - a more-specific hijack (also Invalid with max-length ROAs);
    - a forged-origin interception (claimed origin = victim — {e Valid}
      under ROV: origin validation alone cannot stop it).

    The expected shape: hijack curves collapse as deployment grows, the
    interception curve barely moves. That asymmetry is the paper's §7
    point. *)

type point = {
  deployment : float;            (** fraction of ASes enforcing ROV *)
  hijack_capture : float;        (** mean capture fraction over trials *)
  subprefix_capture : float;
  interception_capture : float;
  interception_feasible : float; (** fraction of trials still feasible *)
}

type t = {
  points : point list;           (** ascending deployment *)
  trials_per_point : int;
}

val sweep :
  rng:Rng.t -> ?deployments:float list -> ?n_trials:int -> Scenario.t -> t
(** Defaults: deployment in {0, 0.25, 0.5, 0.75, 1.0}, 10 trials per point
    (a random guard-victim and random attacker per trial, shared across
    deployment levels so curves are comparable). *)

val print : Format.formatter -> t -> unit
