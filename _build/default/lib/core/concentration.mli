(** Experiment F2L — Figure 2 (left): Tor guard and exit relays are
    concentrated in a handful of ASes.

    A point (x, y) on the curve means the top-x relay-hosting ASes host y%
    of guard/exit relays. Paper headline: just 5 ASes (Hetzner Online AG,
    OVH SAS, Abovenet Communications, Fiberring, Online.net) host 20% of
    them. *)

type t = {
  per_as : (Asn.t * string * int) list;
      (** (AS, name, #guard/exit relays), descending *)
  curve : (int * float) list;
      (** (#top ASes, cumulative % of guard/exit relays) at each rank *)
  top5_share : float;
  ases_for_half : int;   (** #ASes hosting 50% of guard/exit relays *)
  total_ases : int;      (** #ASes hosting at least one guard/exit relay *)
}

val compute : Scenario.t -> t

val share_at : t -> int -> float
(** Cumulative share of the top-k ASes, in [\[0, 1\]]. *)

val print : Format.formatter -> t -> unit
(** The curve at the paper's reference points plus the top-10 AS table. *)
