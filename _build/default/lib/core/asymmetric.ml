type curve = {
  label : string;
  cumulative_mb : float array;
}

type t = {
  bin : float;
  duration : float;
  curves : curve list;
  conventional_r : float;
  asymmetric_r : float;
  asymmetric_r2 : float;
  ack_ack_r : float;
  completed : bool;
}

let mb series = Array.map (fun b -> b /. 1048576.) series

let run ~rng ?(size = 40 * 1024 * 1024) ?(bin = 1.0) ?profile () =
  let result = Onion.download ~rng ?profile ~size () in
  let duration = Float.max bin result.Onion.finish_time in
  let sent trace = Trace.bytes_sent_series trace ~bin ~duration in
  let acked trace = Trace.bytes_acked_series trace ~bin ~duration in
  let s2e_data = sent result.Onion.server_to_exit in
  let e2s_acks = acked result.Onion.exit_to_server in
  let g2c_data = sent result.Onion.guard_to_client in
  let c2g_acks = acked result.Onion.client_to_guard in
  let curve label series =
    { label; cumulative_mb = mb (Trace.cumulative series) }
  in
  (* The adversary aligns the two vantage points with a lag search, as
     any real correlator would (the circuit pipelines bytes with a few
     hundred ms of buffering). *)
  let max_lag = max 1 (int_of_float (Float.ceil (2.0 /. bin))) in
  let lagged a b = snd (Correlation.best_lag a b ~max_lag) in
  { bin; duration;
    curves =
      [ curve "server to exit (data)" s2e_data;
        curve "exit to server (acks)" e2s_acks;
        curve "guard to client (data)" g2c_data;
        curve "client to guard (acks)" c2g_acks ];
    conventional_r = lagged s2e_data g2c_data;
    asymmetric_r = lagged s2e_data c2g_acks;
    asymmetric_r2 = lagged e2s_acks g2c_data;
    ack_ack_r = lagged e2s_acks c2g_acks;
    completed = result.Onion.completed }

type matching = {
  n_flows : int;
  correct : int;
  accuracy : float;
  mean_margin : float;
}

(* Distinct client locations: each flow gets its own wide-area profile. *)
let random_profile rng =
  let lp lo =
    { Onion.latency = lo +. Rng.float rng 0.05;
      jitter = 0.002 +. Rng.float rng 0.006;
      loss = 0.0002 +. Rng.float rng 0.0008 }
  in
  { Onion.client_guard = lp 0.01; guard_middle = lp 0.02;
    middle_exit = lp 0.02; exit_server = lp 0.01;
    tcp = Onion.default_profile.Onion.tcp }

let deanonymize ~rng ?(n_flows = 6) ?(size = 4 * 1024 * 1024) ?(bin = 0.5)
    ?loss () =
  if n_flows < 2 then invalid_arg "Asymmetric.deanonymize: need >= 2 flows";
  let flows =
    List.init n_flows (fun _ ->
        let profile = random_profile rng in
        let profile =
          match loss with
          | None -> profile
          | Some loss ->
              let lp (l : Onion.link_profile) = { l with Onion.loss } in
              { profile with
                Onion.client_guard = lp profile.Onion.client_guard;
                guard_middle = lp profile.Onion.guard_middle;
                middle_exit = lp profile.Onion.middle_exit;
                exit_server = lp profile.Onion.exit_server }
        in
        (* Staggered, bursty flows: different clients start at different
           moments and fetch rate-limited content, so each flow carries a
           distinctive timing signature — the structure end-to-end
           correlation attacks actually exploit. *)
        let start_delay = Rng.float rng 3.0 in
        Onion.download ~rng ~profile ~start_delay
          ~burst:(300 * 1024, 2.5) ~size ())
  in
  let duration =
    List.fold_left (fun acc r -> Float.max acc r.Onion.finish_time) bin flows
  in
  (* What the adversary sees at the destination side: ACKs from the exit
     back to the server (asymmetric observation); at the client side: data
     from client to guard... the upload direction carries only ACKs in a
     download, so use the client->guard ACK stream. *)
  let server_side =
    List.map (fun r -> Trace.bytes_acked_series r.Onion.exit_to_server ~bin ~duration) flows
  in
  let client_side =
    List.map (fun r -> Trace.bytes_acked_series r.Onion.client_to_guard ~bin ~duration) flows
  in
  let max_lag = int_of_float (2.0 /. bin) in
  let margins = ref [] in
  let correct = ref 0 in
  List.iteri
    (fun i observed ->
       let scored =
         List.map (fun cand -> snd (Correlation.best_lag observed cand ~max_lag))
           client_side
       in
       let best_i, best_r, second_r =
         let rec fold i (bi, br, sr) = function
           | [] -> (bi, br, sr)
           | r :: rest ->
               if r > br then fold (i + 1) (i, r, br) rest
               else fold (i + 1) (bi, br, Float.max sr r) rest
         in
         fold 0 (-1, neg_infinity, neg_infinity) scored
       in
       if best_i = i then incr correct;
       if second_r > neg_infinity then margins := (best_r -. second_r) :: !margins)
    server_side;
  { n_flows;
    correct = !correct;
    accuracy = float_of_int !correct /. float_of_int n_flows;
    mean_margin = (match !margins with [] -> 0. | m -> Stats.mean m) }

let print ppf t =
  Format.fprintf ppf "F2R: asymmetric traffic analysis on a simulated wide-area circuit@.";
  Format.fprintf ppf "  transfer %s in %.1f s (paper: ~40 MB in ~30 s)@."
    (if t.completed then "completed" else "did NOT complete") t.duration;
  Format.fprintf ppf "  correlations of per-%.1fs byte counts:@." t.bin;
  Format.fprintf ppf "    conventional (data vs data)      r = %.4f@." t.conventional_r;
  Format.fprintf ppf "    asymmetric (data vs acks)        r = %.4f@." t.asymmetric_r;
  Format.fprintf ppf "    asymmetric (acks vs data)        r = %.4f@." t.asymmetric_r2;
  Format.fprintf ppf "    extreme (acks vs acks)           r = %.4f@." t.ack_ack_r;
  Format.fprintf ppf "  cumulative MB per curve (every 5 bins):@.";
  (match t.curves with
   | { cumulative_mb; _ } :: _ ->
       let n = Array.length cumulative_mb in
       Format.fprintf ppf "    %-8s" "t(s)";
       List.iter (fun c -> Format.fprintf ppf "%-26s" c.label) t.curves;
       Format.fprintf ppf "@.";
       let step = max 1 (n / 8) in
       let i = ref 0 in
       while !i < n do
         Format.fprintf ppf "    %-8.0f" (float_of_int (!i + 1) *. t.bin);
         List.iter
           (fun c -> Format.fprintf ppf "%-26.1f" c.cumulative_mb.(!i))
           t.curves;
         Format.fprintf ppf "@.";
         i := !i + step
       done
   | [] -> ())

let print_matching ppf m =
  Format.fprintf ppf
    "F2R/deanonymization: matched %d/%d flows (accuracy %.0f%%), mean margin %.3f@."
    m.correct m.n_flows (100. *. m.accuracy) m.mean_margin
