(** Experiment F2R — Figure 2 (right) and the §3.3 asymmetric
    traffic-analysis attack.

    Runs the wide-area download through the simulated circuit, collects
    the four segment traces, and correlates every direction combination:

    - conventional: data seen at both ends (server→exit vs guard→client);
    - asymmetric: data at one end vs TCP ACKs at the other (the paper's
      novel attack — works because cumulative ACK numbers in cleartext
      TCP headers reveal the number of bytes acknowledged);
    - extreme: ACKs at both ends.

    Also quantifies the attack as a classifier: given the server-side
    trace of one flow and several candidate client-side traces (decoy
    circuits), does best-lag correlation pick the right client? *)

type curve = {
  label : string;
  cumulative_mb : float array;  (** per bin, running total *)
}

type t = {
  bin : float;
  duration : float;
  curves : curve list;          (** the four Figure-2-right curves *)
  conventional_r : float;       (** server→exit data vs guard→client data *)
  asymmetric_r : float;         (** server→exit data vs client→guard ACKs *)
  asymmetric_r2 : float;        (** exit→server ACKs vs guard→client data *)
  ack_ack_r : float;            (** exit→server ACKs vs client→guard ACKs *)
  completed : bool;
}

val run :
  rng:Rng.t -> ?size:int -> ?bin:float -> ?profile:Onion.profile -> unit -> t
(** Default: 40 MB download, 1 s bins (the paper's setting). *)

type matching = {
  n_flows : int;
  correct : int;                (** flows matched to the right client *)
  accuracy : float;
  mean_margin : float;          (** best minus second-best correlation *)
}

val deanonymize :
  rng:Rng.t -> ?n_flows:int -> ?size:int -> ?bin:float -> ?loss:float ->
  unit -> matching
(** Simulates [n_flows] (default 6) concurrent circuits with distinct
    client locations (randomised link profiles), then matches each flow's
    server-side ACK trace against all client-side data traces by best-lag
    Pearson correlation. Accuracy near 1 demonstrates §3.3 end-to-end. *)

val print : Format.formatter -> t -> unit
val print_matching : Format.formatter -> matching -> unit
