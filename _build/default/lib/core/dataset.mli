(** Experiment T1 — the §4 "Methodology and datasets" summary table.

    Paper values: 4586 relays (1918 guards, 891 exits, 442 both); 1251 Tor
    prefixes announced by 650 distinct ASes; relays-per-prefix median 1,
    p75 2, max 33; each Tor prefix received on ~40% of sessions on average
    (max 60%); per-session Tor prefixes learned: median 438 (35%), max
    1242 (99%). *)

type t = {
  n_relays : int;
  n_guards : int;
  n_exits : int;
  n_guard_exits : int;
  n_tor_prefixes : int;
  n_origin_ases : int;
  relays_per_prefix_median : float;
  relays_per_prefix_p75 : float;
  relays_per_prefix_max : int;
  n_sessions : int;
  mean_visibility : float;     (** avg fraction of sessions a Tor prefix is on *)
  max_visibility : float;
  per_session_tor_median : float; (** Tor prefixes learned per session *)
  per_session_tor_max : int;
}

val compute : Measurement.t -> t
(** Uses the measurement's visibility data plus the scenario's consensus
    and Tor-prefix mapping. *)

val of_scenario : Scenario.t -> t
(** The consensus-only subset (visibility fields are 0) — cheap, no
    measurement run needed. *)

val print : Format.formatter -> t -> unit
(** The T1 table, paper value vs measured, one row per statistic. *)
