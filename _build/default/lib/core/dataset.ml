type t = {
  n_relays : int;
  n_guards : int;
  n_exits : int;
  n_guard_exits : int;
  n_tor_prefixes : int;
  n_origin_ases : int;
  relays_per_prefix_median : float;
  relays_per_prefix_p75 : float;
  relays_per_prefix_max : int;
  n_sessions : int;
  mean_visibility : float;
  max_visibility : float;
  per_session_tor_median : float;
  per_session_tor_max : int;
}

let consensus_part (scenario : Scenario.t) =
  let consensus = scenario.Scenario.consensus in
  let tp = scenario.Scenario.tor_prefixes in
  let per_prefix = Tor_prefix.relays_per_prefix tp in
  let per_prefix_f = Stats.of_ints per_prefix in
  let guards = List.length (Consensus.guards consensus) in
  let exits = List.length (Consensus.exits consensus) in
  let both =
    Array.to_list consensus.Consensus.relays
    |> List.filter (fun r -> Relay.is_guard r && Relay.is_exit r)
    |> List.length
  in
  { n_relays = Consensus.n_relays consensus;
    n_guards = guards;
    n_exits = exits;
    n_guard_exits = both;
    n_tor_prefixes = Tor_prefix.count tp;
    n_origin_ases = Asn.Set.cardinal (Tor_prefix.origin_ases tp);
    relays_per_prefix_median = Stats.median per_prefix_f;
    relays_per_prefix_p75 = Stats.percentile per_prefix_f 75.;
    relays_per_prefix_max =
      List.fold_left max 0 per_prefix;
    n_sessions = List.length (Scenario.sessions scenario);
    mean_visibility = 0.;
    max_visibility = 0.;
    per_session_tor_median = 0.;
    per_session_tor_max = 0 }

let of_scenario = consensus_part

let compute (m : Measurement.t) =
  let scenario = m.Measurement.scenario in
  let base = consensus_part scenario in
  let tor_prefixes =
    Tor_prefix.entries scenario.Scenario.tor_prefixes
    |> List.map (fun e -> e.Tor_prefix.prefix)
  in
  let visibilities =
    List.map (fun p -> Measurement.visibility_fraction m p) tor_prefixes
  in
  (* Tor prefixes learned per session. *)
  let per_session =
    Scenario.sessions scenario
    |> List.map (fun (s : Collector.session) ->
        Measurement.cells_for_session m s.Collector.id
        |> List.filter (fun c ->
            Measurement.is_tor m c.Measurement.key.Measurement.prefix
            && (c.Measurement.baseline <> None || c.Measurement.updates > 0))
        |> List.length)
  in
  { base with
    mean_visibility = (match visibilities with [] -> 0. | v -> Stats.mean v);
    max_visibility = (match visibilities with [] -> 0. | v -> Stats.maximum v);
    per_session_tor_median =
      (match per_session with [] -> 0. | l -> Stats.median (Stats.of_ints l));
    per_session_tor_max = List.fold_left max 0 per_session }

let print ppf t =
  let row name paper measured =
    Format.fprintf ppf "  %-38s %14s %14s@." name paper measured
  in
  Format.fprintf ppf "T1: dataset summary (paper vs measured)@.";
  row "statistic" "paper" "measured";
  row "relays" "4586" (string_of_int t.n_relays);
  row "guards" "1918" (string_of_int t.n_guards);
  row "exits" "891" (string_of_int t.n_exits);
  row "guard+exit" "442" (string_of_int t.n_guard_exits);
  row "Tor prefixes" "1251" (string_of_int t.n_tor_prefixes);
  row "origin ASes" "650" (string_of_int t.n_origin_ases);
  row "relays/prefix median" "1" (Printf.sprintf "%.0f" t.relays_per_prefix_median);
  row "relays/prefix p75" "2" (Printf.sprintf "%.0f" t.relays_per_prefix_p75);
  row "relays/prefix max" "33" (string_of_int t.relays_per_prefix_max);
  row "collector sessions" ">70" (string_of_int t.n_sessions);
  row "Tor prefix visibility (mean)" "~40%"
    (Printf.sprintf "%.0f%%" (100. *. t.mean_visibility));
  row "Tor prefix visibility (max)" "60%"
    (Printf.sprintf "%.0f%%" (100. *. t.max_visibility));
  row "Tor prefixes/session median" "438 (35%)"
    (Printf.sprintf "%.0f (%.0f%%)" t.per_session_tor_median
       (100. *. t.per_session_tor_median /. float_of_int (max 1 t.n_tor_prefixes)));
  row "Tor prefixes/session max" "1242 (99%)"
    (Printf.sprintf "%d (%.0f%%)" t.per_session_tor_max
       (100. *. float_of_int t.per_session_tor_max
        /. float_of_int (max 1 t.n_tor_prefixes)))
