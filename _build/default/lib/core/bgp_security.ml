type point = {
  deployment : float;
  hijack_capture : float;
  subprefix_capture : float;
  interception_capture : float;
  interception_feasible : float;
}

type t = {
  points : point list;
  trials_per_point : int;
}

(* A strictly-inside sub-prefix for the more-specific attack; None if the
   victim prefix is a /24 or longer (operators rarely accept longer). *)
let sub_of p =
  if Prefix.length p >= 24 then None
  else Some (fst (Prefix.split p))

let sweep ~rng ?(deployments = [ 0.; 0.25; 0.5; 0.75; 1.0 ]) ?(n_trials = 10)
    (scenario : Scenario.t) =
  let indexed = scenario.Scenario.indexed in
  let n_ases = As_graph.num_ases scenario.Scenario.graph in
  let table = Rpki.of_addressing scenario.Scenario.addressing in
  (* An adversary mounting BGP attacks is a real network: require at least
     two uplinks (single-homed stubs cannot intercept — their only provider
     always prefers the bogus customer route). *)
  let ases =
    As_graph.ases scenario.Scenario.graph
    |> List.filter (fun a -> As_graph.degree scenario.Scenario.graph a >= 2)
    |> Array.of_list
  in
  (* Fix the trial set (victim guard + attacker) across deployment levels. *)
  let trials =
    List.init n_trials (fun _ ->
        let guard =
          Path_selection.pick_weighted ~rng
            (Consensus.guards scenario.Scenario.consensus)
        in
        let victim = Scenario.guard_announcement scenario guard in
        let attacker =
          let rec pick n =
            let a = Rng.pick rng ases in
            match victim with
            | Some v when Asn.equal a v.Announcement.origin && n < 100 ->
                pick (n + 1)
            | _ -> a
          in
          pick 0
        in
        (victim, attacker))
    |> List.filter_map (fun (v, a) -> Option.map (fun v -> (v, a)) v)
  in
  (* Fix deployment sets too, largest-first nesting so the curves are
     monotone in deployment rather than re-rolled noise. *)
  let shuffled = Array.copy ases in
  Rng.shuffle rng shuffled;
  let deployers_for frac =
    let k = int_of_float (frac *. float_of_int (Array.length shuffled)) in
    Array.sub shuffled 0 k |> Array.to_list |> Asn.Set.of_list
  in
  let points =
    List.map
      (fun deployment ->
         let rov = (table, deployers_for deployment) in
         let stats =
           List.map
             (fun (victim, attacker) ->
                let h = Hijack.same_prefix indexed ~rov ~victim ~attacker () in
                let sub =
                  (* Capture over ALL ASes: deployers that drop the bogus
                     more-specific keep the legitimate covering route, so
                     captured/routed-on-the-subprefix would be vacuously 1. *)
                  match sub_of victim.Announcement.prefix with
                  | Some sub ->
                      let h' =
                        Hijack.more_specific indexed ~rov ~victim ~attacker ~sub ()
                      in
                      float_of_int (List.length h'.Hijack.captured)
                      /. float_of_int n_ases
                  | None -> 0.
                in
                let i = Interception.run indexed ~rov ~victim ~attacker () in
                ( h.Hijack.capture_fraction,
                  sub,
                  i.Interception.capture_fraction,
                  if i.Interception.feasible then 1. else 0. ))
             trials
         in
         let n = float_of_int (max 1 (List.length stats)) in
         let mean f = List.fold_left (fun acc s -> acc +. f s) 0. stats /. n in
         { deployment;
           hijack_capture = mean (fun (h, _, _, _) -> h);
           subprefix_capture = mean (fun (_, s, _, _) -> s);
           interception_capture = mean (fun (_, _, i, _) -> i);
           interception_feasible = mean (fun (_, _, _, f) -> f) })
      (List.sort Float.compare deployments)
  in
  { points; trials_per_point = List.length trials }

let print ppf t =
  Format.fprintf ppf "X1: RPKI/ROV deployment vs BGP attacks on guard prefixes@.";
  Format.fprintf ppf
    "  (%d trials per point; capture = mean fraction of ASes deflected)@."
    t.trials_per_point;
  Format.fprintf ppf "  %-12s %-14s %-16s %-20s %-12s@."
    "deployment" "origin-hijack" "subprefix-hijack" "interception(forged)" "feasible";
  List.iter
    (fun p ->
       Format.fprintf ppf "  %-12.0f %-14.3f %-16.3f %-20.3f %-12.2f@."
         (100. *. p.deployment) p.hijack_capture p.subprefix_capture
         p.interception_capture p.interception_feasible)
    t.points;
  Format.fprintf ppf
    "  -> ROV kills origin hijacks but forged-origin interception survives:@.";
  Format.fprintf ppf
    "     origin validation alone cannot protect Tor (the paper's §7 point).@."
