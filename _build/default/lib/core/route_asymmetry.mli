(** Experiment X2 — quantifying the §3.3 claim that "asymmetric routing
    increases the security risk, by increasing the number of ASes that lie
    on some path (either forward or reverse) at each end".

    For (client, guard) pairs we compute the data-plane AS walk in both
    directions (policy routing is not symmetric: each side picks its own
    best route). A conventional adversary must sit on the {e forward} path
    at both ends; the asymmetric attacker of §3.3 only needs to sit on
    {e either direction} at each end — a strictly larger AS set. *)

type pair = {
  client : Asn.t;
  guard : Relay.t;
  forward : Asn.Set.t;   (** ASes on client -> guard *)
  reverse : Asn.Set.t;   (** ASes on guard -> client *)
}

type t = {
  pairs : pair list;
  asymmetric_fraction : float;
      (** pairs where forward and reverse AS sets differ *)
  mean_forward : float;         (** mean |forward| *)
  mean_union : float;           (** mean |forward ∪ reverse| *)
  mean_gain : float;            (** mean (|union| - |forward|) *)
  compromise_forward : float;   (** mean 1-(1-f)^|forward| *)
  compromise_union : float;     (** mean 1-(1-f)^|union| *)
}

val compute :
  rng:Rng.t -> ?n_pairs:int -> ?f:float -> Scenario.t -> t
(** Defaults: 40 (client, guard) pairs, f = 0.05. *)

val print : Format.formatter -> t -> unit
