type config = {
  n_candidates : int;
  signal : float;
  noise_sigma : float;
  probes : int;
}

let default_config =
  { n_candidates = 12; signal = 0.4; noise_sigma = 0.25; probes = 3 }

type result = {
  inferred : Relay.t option;
  correct : bool;
  true_guard_probed : bool;
}

let candidates config consensus =
  Consensus.guards consensus
  |> List.sort (fun (a : Relay.t) b -> Int.compare b.Relay.bandwidth a.Relay.bandwidth)
  |> List.filteri (fun i _ -> i < config.n_candidates)

let infer ~rng ?(config = default_config) consensus ~true_guard =
  let cands = candidates config consensus in
  let true_guard_probed = List.exists (Relay.equal true_guard) cands in
  let score g =
    let base = if Relay.equal g true_guard then config.signal else 0. in
    let rec probe k acc =
      if k = 0 then acc /. float_of_int config.probes
      else
        probe (k - 1)
          (acc +. base +. Rng.normal rng ~mu:0. ~sigma:config.noise_sigma)
    in
    probe config.probes 0.
  in
  let inferred =
    List.fold_left
      (fun best g ->
         let s = score g in
         match best with
         | Some (_, bs) when bs >= s -> best
         | _ -> Some (g, s))
      None cands
    |> Option.map fst
  in
  { inferred;
    correct =
      (match inferred with
       | Some g -> Relay.equal g true_guard
       | None -> false);
    true_guard_probed }

let success_rate ~rng ?(config = default_config) ?(trials = 200) consensus =
  let hits = ref 0 in
  for _ = 1 to trials do
    let true_guard =
      Path_selection.pick_weighted ~rng (Consensus.guards consensus)
    in
    if (infer ~rng ~config consensus ~true_guard).correct then incr hits
  done;
  float_of_int !hits /. float_of_int trials
