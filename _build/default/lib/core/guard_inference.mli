(** Guard inference — the precursor the §3.2 attacks assume ("the adversary
    can first use existing attacks on Tor to infer what guard relay the
    connection uses", citing Murdoch–Danezis congestion analysis and
    throughput fingerprinting).

    Model: the adversary congests candidate guards one at a time and
    watches the target flow's throughput. Probing the true guard dents the
    flow by [signal] (relative units); probing any other relay yields only
    measurement noise (Gaussian, sigma [noise_sigma]). Repeating each probe
    [probes] times averages the noise down, so inference accuracy is
    governed by signal * sqrt(probes) / noise — and by whether the true
    guard is in the probed candidate set at all. *)

type config = {
  n_candidates : int;   (** adversary probes the top-N guards by weight *)
  signal : float;       (** throughput dent when congesting the true guard *)
  noise_sigma : float;  (** per-probe measurement noise *)
  probes : int;         (** repetitions per candidate *)
}

val default_config : config
(** 12 candidates, signal 0.4, sigma 0.25, 3 probes. *)

type result = {
  inferred : Relay.t option;  (** the top-scoring candidate *)
  correct : bool;
  true_guard_probed : bool;   (** was the real guard even in the set? *)
}

val infer :
  rng:Rng.t -> ?config:config -> Consensus.t -> true_guard:Relay.t -> result

val success_rate :
  rng:Rng.t -> ?config:config -> ?trials:int -> Consensus.t -> float
(** Empirical accuracy over random (bandwidth-weighted) true guards —
    the probability the §3.2 pipeline starts from the right victim. *)
