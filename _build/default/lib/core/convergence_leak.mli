(** Experiment X3 — the §3.1 convergence side channel.

    "BGP convergence ... allows even more far-flung ASes to get a
    (temporary) look at the client's traffic. [It] is probably fast enough
    to prevent these ASes from performing a successful traffic-analysis
    attack. Still, these ASes can learn about a client's use of the Tor
    network — information that can be combined with other data to
    implicate the client" (the Harvard bomb-threat anecdote).

    From the measurement month's residency data we split the extra ASes on
    each (Tor prefix, session) into {e timing-capable} observers (on-path
    at least [analysis_threshold]) and {e transient} observers — ASes that
    only surfaced during path exploration, too briefly for correlation but
    long enough to log "this address talks to a Tor guard". *)

type t = {
  analysis_threshold : float;    (** seconds, default 300 (the 5-min rule) *)
  transient_counts : int list;   (** per (Tor prefix, session) case *)
  mean_transient : float;
  frac_cases_with_transient : float;
  total_transient_ases : int;    (** distinct transient ASes, all prefixes *)
  capable_vs_transient : float * float;
      (** mean timing-capable extras vs mean transient extras *)
}

val compute : ?analysis_threshold:float -> Measurement.t -> t

val print : Format.formatter -> t -> unit
