type t = {
  analysis_threshold : float;
  transient_counts : int list;
  mean_transient : float;
  frac_cases_with_transient : float;
  total_transient_ases : int;
  capable_vs_transient : float * float;
}

let compute ?(analysis_threshold = 300.) (m : Measurement.t) =
  let transient_counts = ref [] in
  let capable_sum = ref 0 and transient_sum = ref 0 and cases = ref 0 in
  let all_transient = ref Asn.Set.empty in
  List.iter
    (fun (c : Measurement.cell) ->
       if Measurement.is_tor m c.Measurement.key.Measurement.prefix
          && c.Measurement.baseline <> None
       then begin
         incr cases;
         let base = Option.value ~default:Asn.Set.empty c.Measurement.baseline in
         let transient = ref 0 and capable = ref 0 in
         List.iter
           (fun (a, d) ->
              if not (Asn.Set.mem a base) then
                if d >= analysis_threshold then incr capable
                else begin
                  incr transient;
                  all_transient := Asn.Set.add a !all_transient
                end)
           c.Measurement.residency;
         transient_counts := !transient :: !transient_counts;
         capable_sum := !capable_sum + !capable;
         transient_sum := !transient_sum + !transient
       end)
    m.Measurement.cells;
  let n = float_of_int (max 1 !cases) in
  { analysis_threshold;
    transient_counts = !transient_counts;
    mean_transient = float_of_int !transient_sum /. n;
    frac_cases_with_transient =
      float_of_int (List.length (List.filter (fun c -> c > 0) !transient_counts))
      /. n;
    total_transient_ases = Asn.Set.cardinal !all_transient;
    capable_vs_transient =
      (float_of_int !capable_sum /. n, float_of_int !transient_sum /. n) }

let print ppf t =
  let capable, transient = t.capable_vs_transient in
  Format.fprintf ppf "X3: the convergence side channel (§3.1, Harvard anecdote)@.";
  Format.fprintf ppf
    "  extra observers per (Tor prefix, session): %.2f timing-capable (>=%.0f min) + %.2f transient@."
    capable (t.analysis_threshold /. 60.) transient;
  Format.fprintf ppf
    "  %.0f%% of cases leaked to at least one transient AS; %d distinct ASes got a glimpse@."
    (100. *. t.frac_cases_with_transient)
    t.total_transient_ases;
  Format.fprintf ppf
    "  -> too brief for timing analysis, enough to log 'this client talks to a Tor guard'.@."
