(** Experiments A1/A2 — §3.2: deanonymization through active BGP attacks.

    A1 (prefix hijack): the adversary hijacks the prefix of the guard used
    by a monitored connection. Traffic from the captured part of the
    Internet blackholes at the adversary, who reads IP headers and learns
    the {e anonymity set} — which clients were talking to that guard.

    A2 (prefix interception): the adversary intercepts instead, keeping
    connections alive, and exactly deanonymizes captured clients by
    timing analysis (modelled by the measured F2R matching accuracy). *)

type hijack_trial = {
  guard : Relay.t;
  victim_prefix : Prefix.t;
  attacker : Asn.t;
  n_clients : int;                (** clients of the guard before the attack *)
  anonymity_set_size : int;       (** clients the adversary observes *)
  target_captured : bool;         (** the monitored client is in the set *)
  capture_fraction : float;       (** of all routed ASes *)
  entropy_bits_before : float;
  entropy_bits_after : float;     (** given the target was captured *)
}

type hijack_summary = {
  trials : hijack_trial list;
  mean_capture : float;
  target_capture_rate : float;
  mean_set_reduction : float;     (** anonymity-set size / clients *)
  mean_entropy_loss : float;      (** bits, over trials with capture *)
}

val hijack :
  rng:Rng.t -> ?n_trials:int -> ?n_clients:int -> Scenario.t -> hijack_summary
(** Each trial: a bandwidth-weighted random guard, a random adversary AS,
    [n_clients] clients of that guard in random stub ASes (one of them the
    target), a same-prefix hijack. Defaults: 20 trials, 40 clients. *)

type interception_trial = {
  i_guard : Relay.t;
  i_attacker : Asn.t;
  feasible : bool;                (** clean return path exists *)
  i_capture_fraction : float;
  i_target_captured : bool;
  deanonymized : bool;            (** captured && feasible && timing match *)
}

type interception_summary = {
  i_trials : interception_trial list;
  feasibility_rate : float;
  i_target_capture_rate : float;
  deanonymization_rate : float;
  timing_accuracy : float;        (** the F2R matching accuracy used *)
}

val interception :
  rng:Rng.t -> ?n_trials:int -> ?timing_accuracy:float -> Scenario.t ->
  interception_summary
(** [timing_accuracy] defaults to running a fresh {!Asymmetric.deanonymize}
    (6 flows, 4 MB); pass a cached value to avoid the traffic simulation.
    Defaults: 20 trials. *)

val print_hijack : Format.formatter -> hijack_summary -> unit
val print_interception : Format.formatter -> interception_summary -> unit
