type pair = {
  client : Asn.t;
  guard : Relay.t;
  forward : Asn.Set.t;
  reverse : Asn.Set.t;
}

type t = {
  pairs : pair list;
  asymmetric_fraction : float;
  mean_forward : float;
  mean_union : float;
  mean_gain : float;
  compromise_forward : float;
  compromise_union : float;
}

let walk_set indexed ann from_as =
  let outcome = Propagate.compute indexed [ ann ] in
  match Propagate.forwarding_path outcome from_as with
  | Some walk -> Asn.Set.of_list walk
  | None -> Asn.Set.empty

let compute ~rng ?(n_pairs = 40) ?(f = 0.05) (scenario : Scenario.t) =
  let indexed = scenario.Scenario.indexed in
  let pairs =
    List.init n_pairs (fun _ ->
        let client = Scenario.random_client_as ~rng scenario in
        let guard =
          Path_selection.pick_weighted ~rng
            (Consensus.guards scenario.Scenario.consensus)
        in
        match Scenario.guard_announcement scenario guard with
        | None -> None
        | Some guard_ann ->
            (* forward: the client's route towards the guard's prefix;
               reverse: the guard AS's route towards the client's prefix *)
            let forward = walk_set indexed guard_ann client in
            let reverse =
              match Addressing.prefixes_of scenario.Scenario.addressing client with
              | p :: _ ->
                  walk_set indexed (Announcement.originate client p)
                    guard.Relay.asn
              | [] -> Asn.Set.empty
            in
            if Asn.Set.is_empty forward || Asn.Set.is_empty reverse then None
            else Some { client; guard; forward; reverse })
    |> List.filter_map Fun.id
  in
  let n = float_of_int (max 1 (List.length pairs)) in
  let mean g = List.fold_left (fun acc p -> acc +. g p) 0. pairs /. n in
  let union p = Asn.Set.union p.forward p.reverse in
  { pairs;
    asymmetric_fraction =
      mean (fun p -> if Asn.Set.equal p.forward p.reverse then 0. else 1.);
    mean_forward = mean (fun p -> float_of_int (Asn.Set.cardinal p.forward));
    mean_union = mean (fun p -> float_of_int (Asn.Set.cardinal (union p)));
    mean_gain =
      mean (fun p ->
          float_of_int
            (Asn.Set.cardinal (union p) - Asn.Set.cardinal p.forward));
    compromise_forward =
      mean (fun p ->
          Anonymity.compromise_probability ~f
            ~x:(Asn.Set.cardinal p.forward));
    compromise_union =
      mean (fun p ->
          Anonymity.compromise_probability ~f
            ~x:(Asn.Set.cardinal (union p))) }

let print ppf t =
  Format.fprintf ppf "X2: routing asymmetry on the entry segment (§3.3)@.";
  Format.fprintf ppf
    "  %d (client, guard) pairs: %.0f%% have forward != reverse AS sets@."
    (List.length t.pairs)
    (100. *. t.asymmetric_fraction);
  Format.fprintf ppf
    "  mean ASes: forward-only %.1f -> either-direction %.1f (+%.1f)@."
    t.mean_forward t.mean_union t.mean_gain;
  Format.fprintf ppf
    "  P[compromise] at f=0.05: %.3f (conventional) -> %.3f (asymmetric attacker)@."
    t.compromise_forward t.compromise_union
