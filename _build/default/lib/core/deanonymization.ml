type hijack_trial = {
  guard : Relay.t;
  victim_prefix : Prefix.t;
  attacker : Asn.t;
  n_clients : int;
  anonymity_set_size : int;
  target_captured : bool;
  capture_fraction : float;
  entropy_bits_before : float;
  entropy_bits_after : float;
}

type hijack_summary = {
  trials : hijack_trial list;
  mean_capture : float;
  target_capture_rate : float;
  mean_set_reduction : float;
  mean_entropy_loss : float;
}

let pick_guard ~rng (scenario : Scenario.t) =
  Path_selection.pick_weighted ~rng (Consensus.guards scenario.Scenario.consensus)

let pick_attacker ~rng (scenario : Scenario.t) ~victim_origin =
  let rec loop attempts =
    if attempts > 100 then invalid_arg "Deanonymization: cannot pick attacker";
    let ases = Array.of_list (As_graph.ases scenario.Scenario.graph) in
    let a = Rng.pick rng ases in
    if Asn.equal a victim_origin then loop (attempts + 1) else a
  in
  loop 0

let hijack ~rng ?(n_trials = 20) ?(n_clients = 40) (scenario : Scenario.t) =
  let trials = ref [] in
  for _ = 1 to n_trials do
    let guard = pick_guard ~rng scenario in
    match Scenario.guard_announcement scenario guard with
    | None -> ()  (* unrouted relay: skip trial *)
    | Some victim ->
        let attacker =
          pick_attacker ~rng scenario ~victim_origin:victim.Announcement.origin
        in
        let h =
          Hijack.same_prefix scenario.Scenario.indexed ~victim ~attacker ()
        in
        let client_ases =
          List.init n_clients (fun i ->
              (Scenario.random_client_as ~rng scenario, i))
        in
        let observed = Hijack.anonymity_set h ~clients:client_ases in
        let set_size = List.length observed in
        let target_captured = List.exists (fun (tag, _) -> tag = 0) observed in
        let entropy_before = Anonymity.anonymity_set_entropy n_clients in
        let entropy_after =
          if target_captured && set_size > 0 then
            Anonymity.anonymity_set_entropy set_size
          else entropy_before
        in
        trials :=
          { guard;
            victim_prefix = victim.Announcement.prefix;
            attacker;
            n_clients;
            anonymity_set_size = set_size;
            target_captured;
            capture_fraction = h.Hijack.capture_fraction;
            entropy_bits_before = entropy_before;
            entropy_bits_after = entropy_after }
          :: !trials
  done;
  let trials = !trials in
  let n = float_of_int (max 1 (List.length trials)) in
  let mean f = List.fold_left (fun acc t -> acc +. f t) 0. trials /. n in
  { trials;
    mean_capture = mean (fun t -> t.capture_fraction);
    target_capture_rate =
      mean (fun t -> if t.target_captured then 1. else 0.);
    mean_set_reduction =
      mean (fun t ->
          float_of_int t.anonymity_set_size /. float_of_int (max 1 t.n_clients));
    mean_entropy_loss =
      mean (fun t -> t.entropy_bits_before -. t.entropy_bits_after) }

type interception_trial = {
  i_guard : Relay.t;
  i_attacker : Asn.t;
  feasible : bool;
  i_capture_fraction : float;
  i_target_captured : bool;
  deanonymized : bool;
}

type interception_summary = {
  i_trials : interception_trial list;
  feasibility_rate : float;
  i_target_capture_rate : float;
  deanonymization_rate : float;
  timing_accuracy : float;
}

let interception ~rng ?(n_trials = 20) ?timing_accuracy (scenario : Scenario.t) =
  let timing_accuracy =
    match timing_accuracy with
    | Some a -> a
    | None ->
        let m = Asymmetric.deanonymize ~rng () in
        m.Asymmetric.accuracy
  in
  let trials = ref [] in
  for _ = 1 to n_trials do
    let guard = pick_guard ~rng scenario in
    match Scenario.guard_announcement scenario guard with
    | None -> ()
    | Some victim ->
        let attacker =
          pick_attacker ~rng scenario ~victim_origin:victim.Announcement.origin
        in
        let i =
          Interception.run scenario.Scenario.indexed ~victim ~attacker ()
        in
        let target_as = Scenario.random_client_as ~rng scenario in
        let captured = Interception.observes i target_as in
        (* Exact deanonymization needs the connection to survive (feasible
           interception) and the timing correlation to single the client
           out. *)
        let deanonymized =
          i.Interception.feasible && captured
          && Rng.float rng 1.0 < timing_accuracy
        in
        trials :=
          { i_guard = guard;
            i_attacker = attacker;
            feasible = i.Interception.feasible;
            i_capture_fraction = i.Interception.capture_fraction;
            i_target_captured = captured;
            deanonymized }
          :: !trials
  done;
  let trials = !trials in
  let n = float_of_int (max 1 (List.length trials)) in
  let rate f = List.fold_left (fun acc t -> acc +. (if f t then 1. else 0.)) 0. trials /. n in
  { i_trials = trials;
    feasibility_rate = rate (fun t -> t.feasible);
    i_target_capture_rate = rate (fun t -> t.i_target_captured);
    deanonymization_rate = rate (fun t -> t.deanonymized);
    timing_accuracy }

let print_hijack ppf s =
  Format.fprintf ppf "A1: prefix hijack of guard prefixes (anonymity-set attack)@.";
  Format.fprintf ppf
    "  %d trials: mean capture %.1f%% of ASes; target observed in %.0f%% of trials@."
    (List.length s.trials) (100. *. s.mean_capture)
    (100. *. s.target_capture_rate);
  Format.fprintf ppf
    "  anonymity set shrinks to %.0f%% of clients on average; mean entropy loss %.2f bits@."
    (100. *. s.mean_set_reduction) s.mean_entropy_loss

let print_interception ppf s =
  Format.fprintf ppf "A2: prefix interception of guard prefixes (exact deanonymization)@.";
  Format.fprintf ppf
    "  %d trials: interception feasible in %.0f%%; target captured in %.0f%%@."
    (List.length s.i_trials) (100. *. s.feasibility_rate)
    (100. *. s.i_target_capture_rate);
  Format.fprintf ppf
    "  end-to-end deanonymization rate %.0f%% (timing-correlation accuracy %.0f%%)@."
    (100. *. s.deanonymization_rate) (100. *. s.timing_accuracy)
