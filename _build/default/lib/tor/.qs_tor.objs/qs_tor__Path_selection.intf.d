lib/tor/path_selection.mli: Asn Consensus Format Ipv4 Relay Rng
