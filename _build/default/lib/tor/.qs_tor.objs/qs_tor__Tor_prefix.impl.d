lib/tor/tor_prefix.ml: Addressing Asn Consensus Hashtbl Int Ipv4 List Prefix Relay
