lib/tor/consensus.mli: Addressing As_graph Asn Relay Rng
