lib/tor/consensus.ml: Addressing Array As_graph Asn Buffer Hashtbl Ipv4 List Printf Relay Rng String Topo_gen
