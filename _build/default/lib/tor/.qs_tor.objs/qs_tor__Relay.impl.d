lib/tor/relay.ml: Asn Format Ipv4 List String
