lib/tor/relay.mli: Asn Format Ipv4
