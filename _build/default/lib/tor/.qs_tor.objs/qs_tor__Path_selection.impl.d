lib/tor/path_selection.ml: Array Asn Consensus Format Ipv4 List Relay Rng
