lib/tor/tor_prefix.mli: Addressing Asn Consensus Prefix Relay
