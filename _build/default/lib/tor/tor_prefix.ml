type entry = {
  prefix : Prefix.t;
  origin : Asn.t;
  relays : Relay.t list;
}

type t = {
  by_prefix : entry Prefix.Map.t;
  by_relay_ip : (int, Prefix.t * Asn.t) Hashtbl.t;  (* keyed by Ipv4.to_int *)
  unmapped : int;
}

let compute addressing consensus =
  let by_prefix = ref Prefix.Map.empty in
  let by_relay_ip = Hashtbl.create 1024 in
  let unmapped = ref 0 in
  List.iter
    (fun (r : Relay.t) ->
       match Addressing.covering_prefix addressing r.Relay.ip with
       | Some (prefix, origin) ->
           Hashtbl.replace by_relay_ip (Ipv4.to_int r.Relay.ip) (prefix, origin);
           let entry =
             match Prefix.Map.find_opt prefix !by_prefix with
             | Some e -> { e with relays = r :: e.relays }
             | None -> { prefix; origin; relays = [ r ] }
           in
           by_prefix := Prefix.Map.add prefix entry !by_prefix
       | None -> incr unmapped)
    (Consensus.guard_or_exit consensus);
  { by_prefix = !by_prefix; by_relay_ip; unmapped = !unmapped }

let entries t = List.map snd (Prefix.Map.bindings t.by_prefix)

let count t = Prefix.Map.cardinal t.by_prefix

let origin_ases t =
  Prefix.Map.fold (fun _ e acc -> Asn.Set.add e.origin acc) t.by_prefix Asn.Set.empty

let unmapped t = t.unmapped

let prefix_of_relay t (r : Relay.t) =
  Hashtbl.find_opt t.by_relay_ip (Ipv4.to_int r.Relay.ip)

let relays_per_prefix t =
  Prefix.Map.fold (fun _ e acc -> List.length e.relays :: acc) t.by_prefix []
  |> List.sort Int.compare

let is_tor_prefix t p = Prefix.Map.mem p t.by_prefix
