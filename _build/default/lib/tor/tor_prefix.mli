(** Tor prefixes: the paper's mapping from relays to BGP.

    "For each guard and exit relay, we identified the most specific BGP
    prefix that contained it. We refer to those as Tor prefixes." This
    module computes that mapping against an {!Addressing.t} (the announced
    BGP table) and exposes the dataset statistics §4 reports. *)

type entry = {
  prefix : Prefix.t;
  origin : Asn.t;
  relays : Relay.t list;          (** guard/exit relays inside the prefix *)
}

type t

val compute : Addressing.t -> Consensus.t -> t
(** Maps every relay carrying the Guard or Exit flag to its most specific
    covering announced prefix. Relays whose address matches no announced
    prefix are skipped (counted in {!unmapped}). *)

val entries : t -> entry list
(** One entry per Tor prefix, in {!Prefix.compare} order. *)

val count : t -> int
(** Number of distinct Tor prefixes (paper: 1251). *)

val origin_ases : t -> Asn.Set.t
(** Distinct ASes originating Tor prefixes (paper: 650). *)

val unmapped : t -> int

val prefix_of_relay : t -> Relay.t -> (Prefix.t * Asn.t) option
(** The Tor prefix (and its origin AS) covering a given relay. *)

val relays_per_prefix : t -> int list
(** Sorted ascending; the paper reports median 1, 75th percentile 2,
    maximum 33. *)

val is_tor_prefix : t -> Prefix.t -> bool
