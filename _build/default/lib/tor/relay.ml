type flag = Guard | Exit | Fast | Stable

type t = {
  nickname : string;
  ip : Ipv4.t;
  asn : Asn.t;
  bandwidth : int;
  flags : flag list;
}

let make ~nickname ~ip ~asn ~bandwidth ~flags =
  if bandwidth < 0 then invalid_arg "Relay.make: negative bandwidth";
  { nickname; ip; asn; bandwidth; flags }

let flag_equal a b =
  match (a, b) with
  | Guard, Guard | Exit, Exit | Fast, Fast | Stable, Stable -> true
  | (Guard | Exit | Fast | Stable), _ -> false

let has_flag t f = List.exists (flag_equal f) t.flags
let is_guard t = has_flag t Guard
let is_exit t = has_flag t Exit

let flag_to_string = function
  | Guard -> "Guard"
  | Exit -> "Exit"
  | Fast -> "Fast"
  | Stable -> "Stable"

let flag_of_string = function
  | "Guard" -> Some Guard
  | "Exit" -> Some Exit
  | "Fast" -> Some Fast
  | "Stable" -> Some Stable
  | _ -> None

let pp ppf t =
  Format.fprintf ppf "%s %a bw=%d [%s]" t.nickname Ipv4.pp t.ip t.bandwidth
    (String.concat "," (List.map flag_to_string t.flags))

let equal a b = Ipv4.equal a.ip b.ip
let compare a b = Ipv4.compare a.ip b.ip
