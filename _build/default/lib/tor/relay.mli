(** A Tor relay as described by the network consensus: address, flags and
    the consensus bandwidth weight that drives path selection. *)

type flag = Guard | Exit | Fast | Stable

type t = {
  nickname : string;
  ip : Ipv4.t;
  asn : Asn.t;        (** the AS hosting the relay *)
  bandwidth : int;    (** consensus weight, KB/s *)
  flags : flag list;
}

val make :
  nickname:string -> ip:Ipv4.t -> asn:Asn.t -> bandwidth:int ->
  flags:flag list -> t
(** @raise Invalid_argument if [bandwidth < 0]. *)

val has_flag : t -> flag -> bool
val is_guard : t -> bool
val is_exit : t -> bool

val flag_to_string : flag -> string
val flag_of_string : string -> flag option

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
(** Relays are identified by their IP address. *)

val compare : t -> t -> int
