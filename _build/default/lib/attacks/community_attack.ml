type t = {
  interception : Interception.t;
  radius : int option;
  visible_at : Asn.t list;
  seen_by_monitors : int;
  monitors : Asn.t list;
}

let run graph ?failed ~victim ~attacker ?radius ?export_to ~monitors () =
  let scope =
    let base =
      Announcement.originate attacker victim.Announcement.prefix
      |> Announcement.with_fake_suffix [ victim.Announcement.origin ]
      |> Announcement.with_communities [ (Asn.to_int attacker land 0xFFFF, 666) ]
    in
    let base =
      match radius with Some r -> Announcement.with_max_radius r base | None -> base
    in
    match export_to with
    | Some set -> Announcement.with_export_to set base
    | None -> base
  in
  let interception = Interception.run graph ?failed ~scope ~victim ~attacker () in
  let visible_at = interception.Interception.captured in
  let seen_by_monitors =
    List.length
      (List.filter
         (fun m -> List.exists (Asn.equal m) visible_at)
         monitors)
  in
  { interception; radius; visible_at; seen_by_monitors; monitors }

let detection_probability t =
  match t.monitors with
  | [] -> 0.
  | ms -> float_of_int t.seen_by_monitors /. float_of_int (List.length ms)

let sweep_radius graph ~victim ~attacker ~monitors radii =
  List.map
    (fun r -> (r, run graph ~victim ~attacker ~radius:r ~monitors ()))
    radii
