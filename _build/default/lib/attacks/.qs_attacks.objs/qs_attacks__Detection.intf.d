lib/attacks/detection.mli: Asn Format Prefix Update
