lib/attacks/hijack.ml: Announcement Asn List Prefix Propagate
