lib/attacks/hijack.mli: Announcement As_graph Asn Link_set Prefix Propagate Rpki
