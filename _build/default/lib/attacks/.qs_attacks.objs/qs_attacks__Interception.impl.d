lib/attacks/interception.ml: Announcement Array As_graph Asn Int List Option Prefix Propagate Relationship
