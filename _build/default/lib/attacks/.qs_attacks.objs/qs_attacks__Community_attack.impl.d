lib/attacks/community_attack.ml: Announcement Asn Interception List
