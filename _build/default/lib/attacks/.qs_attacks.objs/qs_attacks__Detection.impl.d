lib/attacks/detection.ml: Asn Format Hashtbl List Option Prefix Prefix_trie Route Update
