lib/attacks/community_attack.mli: Announcement As_graph Asn Interception Link_set
