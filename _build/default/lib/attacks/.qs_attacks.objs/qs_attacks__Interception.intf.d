lib/attacks/interception.mli: Announcement As_graph Asn Link_set Propagate Rpki
