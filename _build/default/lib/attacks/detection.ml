type alarm_kind =
  | Moas of { prefix : Prefix.t; old_origins : Asn.Set.t; new_origin : Asn.t }
  | Sub_prefix of { covering : Prefix.t; sub : Prefix.t;
                    covering_origin : Asn.t; sub_origin : Asn.t }
  | Origin_adjacency of { prefix : Prefix.t; origin : Asn.t;
                          old_neighbors : Asn.Set.t; new_neighbor : Asn.t }

type alarm = {
  time : float;
  session : Update.session_id;
  kind : alarm_kind;
}

let pp_alarm ppf a =
  match a.kind with
  | Moas { prefix; new_origin; _ } ->
      Format.fprintf ppf "%.0f MOAS %a now also originated by %a" a.time
        Prefix.pp prefix Asn.pp new_origin
  | Sub_prefix { covering; sub; sub_origin; _ } ->
      Format.fprintf ppf "%.0f SUBPREFIX %a inside %a from %a" a.time
        Prefix.pp sub Prefix.pp covering Asn.pp sub_origin
  | Origin_adjacency { prefix; origin; new_neighbor; _ } ->
      Format.fprintf ppf "%.0f ADJACENCY %a origin %a now via %a" a.time
        Prefix.pp prefix Asn.pp origin Asn.pp new_neighbor

type baseline = {
  mutable origins : Asn.Set.t;
  mutable origin_neighbors : Asn.Set.t Asn.Map.t;  (* per origin *)
}

type t = {
  learning_period : float;
  baselines : baseline Prefix.Table.t;
  trie : unit Prefix_trie.t ref;       (* known prefixes, for sub-prefix checks *)
  mutable raised : alarm list;         (* newest first *)
  cooldown : (string, float) Hashtbl.t; (* key: prefix string + kind tag *)
  mutable suspicious_prefixes : (Prefix.t * float) list;
}

let cooldown_seconds = 3600.

let create ?(learning_period = 86_400.) () =
  { learning_period;
    baselines = Prefix.Table.create 4096;
    trie = ref Prefix_trie.empty;
    raised = [];
    cooldown = Hashtbl.create 64;
    suspicious_prefixes = [] }

let baseline t p =
  match Prefix.Table.find_opt t.baselines p with
  | Some b -> b
  | None ->
      let b = { origins = Asn.Set.empty; origin_neighbors = Asn.Map.empty } in
      Prefix.Table.replace t.baselines p b;
      t.trie := Prefix_trie.add p () !(t.trie);
      b

let learn b route =
  let origin = Route.origin route in
  b.origins <- Asn.Set.add origin b.origins;
  match List.rev route.Route.as_path with
  | _ :: neighbor :: _ when not (Asn.equal neighbor origin) ->
      let known =
        Option.value ~default:Asn.Set.empty (Asn.Map.find_opt origin b.origin_neighbors)
      in
      b.origin_neighbors <- Asn.Map.add origin (Asn.Set.add neighbor known) b.origin_neighbors
  | _ -> ()

let cooled t time key =
  match Hashtbl.find_opt t.cooldown key with
  | Some until when time < until -> true
  | Some _ | None ->
      Hashtbl.replace t.cooldown key (time +. cooldown_seconds);
      false

let raise_alarm t time session kind out =
  let prefix, tag =
    match kind with
    | Moas { prefix; _ } -> (prefix, "moas")
    | Sub_prefix { sub; _ } -> (sub, "sub")
    | Origin_adjacency { prefix; _ } -> (prefix, "adj")
  in
  let key = Prefix.to_string prefix ^ "/" ^ tag in
  if cooled t time key then out
  else begin
    let a = { time; session; kind } in
    t.raised <- a :: t.raised;
    t.suspicious_prefixes <- (prefix, time) :: t.suspicious_prefixes;
    a :: out
  end

let observe t (u : Update.t) =
  match u.Update.kind with
  | Update.Withdraw _ -> []
  | Update.Announce route ->
      let p = route.Route.prefix in
      let origin = Route.origin route in
      let learning = u.Update.time < t.learning_period in
      let b = baseline t p in
      let out = [] in
      let out =
        if learning || Asn.Set.is_empty b.origins || Asn.Set.mem origin b.origins
        then out
        else
          raise_alarm t u.Update.time u.Update.session
            (Moas { prefix = p; old_origins = b.origins; new_origin = origin })
            out
      in
      (* Sub-prefix: a new, never-seen prefix nested inside a known one
         announced by a foreign origin. *)
      let out =
        if learning || Asn.Set.cardinal b.origins > 0 then out
        else begin
          let covering =
            Prefix_trie.matches (Prefix.network p) !(t.trie)
            |> List.find_opt (fun (q, ()) ->
                not (Prefix.equal q p) && Prefix.subsumes q p
                && not (Asn.Set.is_empty (baseline t q).origins))
          in
          match covering with
          | Some (q, ()) when not (Asn.Set.mem origin (baseline t q).origins) ->
              let covering_origin = Asn.Set.min_elt (baseline t q).origins in
              raise_alarm t u.Update.time u.Update.session
                (Sub_prefix { covering = q; sub = p; covering_origin;
                              sub_origin = origin })
                out
          | Some _ | None -> out
        end
      in
      let out =
        if learning then out
        else
          match List.rev route.Route.as_path with
          | _ :: neighbor :: _ when not (Asn.equal neighbor origin) -> begin
              match Asn.Map.find_opt origin b.origin_neighbors with
              | Some known
                when not (Asn.Set.is_empty known)
                  && not (Asn.Set.mem neighbor known) ->
                  raise_alarm t u.Update.time u.Update.session
                    (Origin_adjacency { prefix = p; origin;
                                        old_neighbors = known;
                                        new_neighbor = neighbor })
                    out
              | Some _ | None -> out
            end
          | _ -> out
      in
      (* Keep learning even after the learning period — yesterday's alarm
         is today's baseline, like real deployed monitors. *)
      learn b route;
      List.rev out

let alarms t = List.rev t.raised

let watched t p = Prefix.Table.mem t.baselines p

let suspicious t ?(since = neg_infinity) p =
  List.exists
    (fun (q, time) -> time >= since && (Prefix.equal p q || Prefix.overlaps p q))
    t.suspicious_prefixes
