(** Control-plane hijack/interception detection (§5).

    Consumes a collector update stream and raises alarms on the classic
    signatures: MOAS (a prefix suddenly originated by a new AS), sub-prefix
    announcements covering known prefixes from a foreign origin, and
    origin-adjacency changes (the AS next to the origin changes to a
    never-seen neighbor — how path-poisoned interceptions look from afar).

    Following the paper's §5 stance, the monitor is deliberately aggressive:
    for anonymity systems false positives are much more acceptable than
    false negatives, so everything anomalous after the learning phase is
    flagged and it is the consumer's job (e.g. Tor's relay-selection layer)
    to react by avoiding the relay. *)

type alarm_kind =
  | Moas of { prefix : Prefix.t; old_origins : Asn.Set.t; new_origin : Asn.t }
  | Sub_prefix of { covering : Prefix.t; sub : Prefix.t;
                    covering_origin : Asn.t; sub_origin : Asn.t }
  | Origin_adjacency of { prefix : Prefix.t; origin : Asn.t;
                          old_neighbors : Asn.Set.t; new_neighbor : Asn.t }

type alarm = {
  time : float;
  session : Update.session_id;
  kind : alarm_kind;
}

val pp_alarm : Format.formatter -> alarm -> unit

type t

val create : ?learning_period:float -> unit -> t
(** During the first [learning_period] seconds (default 86400) the monitor
    only learns baselines and raises nothing. *)

val observe : t -> Update.t -> alarm list
(** Feed one update (time-ordered); returns the alarms it triggers.
    An anomaly keeps a per-(prefix, kind) cool-down so one event does not
    raise hundreds of identical alarms across sessions. *)

val alarms : t -> alarm list
(** All alarms raised so far, oldest first. *)

val watched : t -> Prefix.t -> bool
(** Has the monitor learned a baseline for this prefix? *)

val suspicious : t -> ?since:float -> Prefix.t -> bool
(** Has this prefix (or a covering one) an alarm at/after [since]
    (default: any time)? This is what relay selection consults. *)
