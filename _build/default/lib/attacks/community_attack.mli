(** Stealth (scoped) hijacks using BGP communities (§3.2, after the
    Renesys/Zmijewski MITM report and §5's "stealthier attacks").

    By tagging the bogus announcement with communities that limit its
    propagation (NO_EXPORT-style radius limits, or per-neighbor scoping),
    an attacker trades capture footprint for detectability: few ASes ever
    see the bogus route, so control-plane monitors relying on global
    visibility (e.g. route collectors) are likely to miss it. This module
    quantifies that trade-off. *)

type t = {
  interception : Interception.t;
  radius : int option;
  visible_at : Asn.t list;
      (** ASes that selected the bogus route — the only places a monitor
          could observe the attack *)
  seen_by_monitors : int;
      (** how many of the given monitor ASes can see the bogus route *)
  monitors : Asn.t list;
}

val run :
  As_graph.Indexed.t -> ?failed:Link_set.t -> victim:Announcement.t ->
  attacker:Asn.t -> ?radius:int -> ?export_to:Asn.Set.t ->
  monitors:Asn.t list -> unit -> t
(** Mounts a scoped interception and evaluates which of [monitors] (e.g.
    collector peer ASes) end up selecting the bogus route. The community
    tag [(attacker, 666)] marks the announcement. *)

val detection_probability : t -> float
(** [seen_by_monitors / length monitors]; 0 when no monitors. *)

val sweep_radius :
  As_graph.Indexed.t -> victim:Announcement.t -> attacker:Asn.t ->
  monitors:Asn.t list -> int list -> (int * t) list
(** The capture-vs-stealth trade-off curve: runs the attack at each radius. *)
