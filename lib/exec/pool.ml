(* A fixed-size domain pool with deterministic reduction.

   Scheduling: one job at a time. The caller publishes a job (a chunked
   sweep) under [m], broadcasts [work_cv], then participates itself;
   workers and caller race on an atomic chunk counter, so load-balancing
   is dynamic while the *placement of results* stays fixed (each chunk
   writes its own slots). Completion is an atomic count-up; the finisher
   signals [done_cv]. Workers block between jobs — an idle pool burns no
   cycles.

   Determinism comes from the callers of this module never letting
   scheduling leak into data: results land in per-item slots and are
   reduced in submission order, and seeded work derives per-item RNG
   streams before anything runs (see [map_seeded]). *)

let now = Clock.now

(* Registry handles (see lib/obs): counts are exact and scheduling-
   independent — one [exec.sweeps] increment and one observation per
   histogram per sweep — while the histogram timing fields carry the
   wall-clock content of [stats]. *)
let m_sweeps = Metrics.counter ~help:"parallel sweeps submitted" "exec.sweeps"
let m_chunks = Metrics.counter ~help:"chunks across all sweeps" "exec.chunks"
let m_jobs = Metrics.gauge ~help:"width of the last pool created" "exec.jobs"

let m_sweep_s =
  Metrics.histogram ~help:"caller wall seconds per sweep" "exec.sweep_seconds"

let m_busy_s =
  Metrics.histogram ~help:"summed domain-busy seconds per sweep"
    "exec.busy_seconds"

let m_wait_s =
  Metrics.histogram ~help:"summed worker-wait seconds per sweep"
    "exec.wait_seconds"

type domain_stats = { chunks : int; busy : float; wait : float }

type stats = {
  jobs : int;
  calls : int;
  chunks : int;
  wall : float;
  domains : domain_stats array;
}

type job = {
  run_chunk : int -> unit;
  n_chunks : int;
  next : int Atomic.t;
  completed : int Atomic.t;
}

type slot = {
  mutable s_chunks : int;
  mutable s_busy : float;
  mutable s_wait : float;
}

type t = {
  n_jobs : int;
  m : Mutex.t;
  work_cv : Condition.t;
  done_cv : Condition.t;
  mutable job : job option;        (* protected by [m] *)
  mutable generation : int;        (* protected by [m]; bumped per job *)
  mutable stop : bool;             (* protected by [m] *)
  mutable shut : bool;
  mutable workers : unit Domain.t array;
  worker_ids : int array;          (* domain ids, written by each worker *)
  slots : slot array;              (* slot i touched only by domain i *)
  submit : Mutex.t;                (* serializes whole sweeps *)
  active_caller : int Atomic.t;    (* domain id inside a sweep, or -1 *)
  err : exn option Atomic.t;
  mutable calls : int;             (* protected by [submit] *)
  mutable chunks_total : int;
  mutable wall : float;
  mutable last : stats option;     (* protected by [submit] *)
}

let jobs t = t.n_jobs

let self_id () = (Domain.self () :> int)

(* Pull chunks off [job] until the counter runs dry. Runs on workers and on
   the caller alike; [w] is this domain's stats slot. Task exceptions are
   captured (first wins) and re-raised by the submitting caller once the
   sweep drains, so a failing chunk can never wedge the completion count. *)
let participate t w (job : job) =
  let started = now () in
  let n = job.n_chunks in
  let rec grab () =
    let c = Atomic.fetch_and_add job.next 1 in
    if c < n then begin
      (try job.run_chunk c
       with e -> ignore (Atomic.compare_and_set t.err None (Some e)));
      t.slots.(w).s_chunks <- t.slots.(w).s_chunks + 1;
      let completed = 1 + Atomic.fetch_and_add job.completed 1 in
      if completed = n then begin
        Mutex.lock t.m;
        Condition.broadcast t.done_cv;
        Mutex.unlock t.m
      end;
      grab ()
    end
  in
  grab ();
  t.slots.(w).s_busy <- t.slots.(w).s_busy +. (now () -. started)

let worker_loop t w =
  t.worker_ids.(w - 1) <- self_id ();
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.m;
    let wait0 = now () in
    while (not t.stop) && (t.job = None || t.generation = !seen) do
      Condition.wait t.work_cv t.m
    done;
    t.slots.(w).s_wait <- t.slots.(w).s_wait +. (now () -. wait0);
    if t.stop then begin
      Mutex.unlock t.m;
      running := false
    end else begin
      let job = Option.get t.job in
      seen := t.generation;
      Mutex.unlock t.m;
      participate t w job
    end
  done

let create ~jobs () =
  if jobs < 1 || jobs > 512 then
    invalid_arg "Pool.create: jobs must be in [1, 512]";
  let t =
    { n_jobs = jobs;
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      job = None;
      generation = 0;
      stop = false;
      shut = false;
      workers = [||];
      worker_ids = Array.make (max 0 (jobs - 1)) (-1);
      slots = Array.init jobs (fun _ -> { s_chunks = 0; s_busy = 0.; s_wait = 0. });
      submit = Mutex.create ();
      active_caller = Atomic.make (-1);
      err = Atomic.make None;
      calls = 0;
      chunks_total = 0;
      wall = 0.;
      last = None }
  in
  Metrics.set m_jobs (float_of_int jobs);
  t.workers <- Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    if t.n_jobs > 1 then begin
      Mutex.lock t.m;
      t.stop <- true;
      Condition.broadcast t.work_cv;
      Mutex.unlock t.m;
      Array.iter Domain.join t.workers
    end
  end

let with_pool ~jobs f =
  let t = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_pool = ref None
let default_m = Mutex.create ()

let default () =
  Mutex.lock default_m;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create ~jobs:(Domain.recommended_domain_count ()) () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_m;
  p

(* ---- sweep submission ------------------------------------------------ *)

let run_job t ~n_chunks run_chunk =
  if t.shut then invalid_arg "Pool: pool is shut down";
  let self = self_id () in
  if Atomic.get t.active_caller = self
     || Array.exists (fun id -> id = self) t.worker_ids
  then invalid_arg "Pool: tasks must not submit work to their own pool";
  Mutex.lock t.submit;
  Atomic.set t.active_caller self;
  (* Per-call reset marker: remember where every slot stood so the
     deltas of *this* sweep can be separated from the pool's cumulative
     totals.  Chunk counts are published before the completion count, so
     chunk deltas are exact; a worker adds its busy tail *after* its
     last chunk completes the sweep, so a slow tail may slip into the
     next sweep's delta — busy/wait deltas are non-negative and sum to
     the totals over a pool's lifetime, but an individual sweep's is a
     lower bound (exact at [jobs = 1]).  See [last_sweep]. *)
  let marks =
    Array.map (fun s -> (s.s_chunks, s.s_busy, s.s_wait)) t.slots
  in
  let started = now () in
  Atomic.set t.err None;
  let job =
    { run_chunk; n_chunks; next = Atomic.make 0; completed = Atomic.make 0 }
  in
  if t.n_jobs = 1 then participate t 0 job
  else begin
    Mutex.lock t.m;
    t.job <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.m;
    participate t 0 job;
    Mutex.lock t.m;
    while Atomic.get job.completed < n_chunks do
      Condition.wait t.done_cv t.m
    done;
    t.job <- None;
    Mutex.unlock t.m
  end;
  t.calls <- t.calls + 1;
  t.chunks_total <- t.chunks_total + n_chunks;
  let dt = now () -. started in
  t.wall <- t.wall +. dt;
  let deltas =
    Array.mapi
      (fun i (c0, b0, w0) ->
        let s = t.slots.(i) in
        { chunks = s.s_chunks - c0;
          busy = Float.max 0. (s.s_busy -. b0);
          wait = Float.max 0. (s.s_wait -. w0) })
      marks
  in
  t.last <-
    Some { jobs = t.n_jobs; calls = 1; chunks = n_chunks; wall = dt;
           domains = deltas };
  Metrics.incr m_sweeps;
  Metrics.add m_chunks n_chunks;
  Metrics.observe m_sweep_s dt;
  Metrics.observe m_busy_s
    (Array.fold_left (fun acc d -> acc +. d.busy) 0. deltas);
  Metrics.observe m_wait_s
    (Array.fold_left (fun acc d -> acc +. d.wait) 0. deltas);
  let failure = Atomic.get t.err in
  Atomic.set t.active_caller (-1);
  Mutex.unlock t.submit;
  match failure with Some e -> raise e | None -> ()

let default_chunk t n = max 1 (n / (t.n_jobs * 8))

exception Missing_result
(* unreachable: run_job re-raises any task failure before extraction *)

let mapi_into ?chunk t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let chunk =
      match chunk with
      | Some c ->
          if c <= 0 then invalid_arg "Pool.map: chunk must be positive";
          c
      | None -> default_chunk t n
    in
    let results = Array.make n None in
    let n_chunks = (n + chunk - 1) / chunk in
    run_job t ~n_chunks (fun c ->
        let lo = c * chunk in
        let hi = min n (lo + chunk) - 1 in
        for i = lo to hi do
          results.(i) <- Some (f i arr.(i))
        done);
    Array.map (function Some v -> v | None -> raise Missing_result) results
  end

let map ?chunk t f arr = mapi_into ?chunk t (fun _ x -> f x) arr

let map_list ?chunk t f l = Array.to_list (map ?chunk t f (Array.of_list l))

let map_seeded ?chunk t ~rng f arr =
  let streams = Rng.split_n rng (Array.length arr) in
  mapi_into ?chunk t (fun i x -> f streams.(i) x) arr

let fold ?chunk t ~f ~reduce ~init arr =
  Array.fold_left reduce init (map ?chunk t f arr)

(* ---- per-domain resources -------------------------------------------- *)

type 'r per_domain = {
  make : unit -> 'r;
  table : (int, 'r) Hashtbl.t;
  table_m : Mutex.t;
}

let per_domain make = { make; table = Hashtbl.create 8; table_m = Mutex.create () }

let get r =
  let id = self_id () in
  Mutex.lock r.table_m;
  match Hashtbl.find_opt r.table id with
  | Some v ->
      Mutex.unlock r.table_m;
      v
  | None ->
      (* Create outside the lock: [make] may be slow, and only this domain
         can ask for this key, so the later insert cannot race with
         another creation of the same instance. *)
      Mutex.unlock r.table_m;
      let v = r.make () in
      Mutex.lock r.table_m;
      Hashtbl.replace r.table id v;
      Mutex.unlock r.table_m;
      v

(* ---- stats ------------------------------------------------------------ *)

let stats t =
  Mutex.lock t.submit;
  let s =
    { jobs = t.n_jobs;
      calls = t.calls;
      chunks = t.chunks_total;
      wall = t.wall;
      domains =
        Array.map
          (fun s -> { chunks = s.s_chunks; busy = s.s_busy; wait = s.s_wait })
          t.slots }
  in
  Mutex.unlock t.submit;
  s

let last_sweep t =
  Mutex.lock t.submit;
  let s = t.last in
  Mutex.unlock t.submit;
  s

let reset_stats t =
  Mutex.lock t.submit;
  t.calls <- 0;
  t.chunks_total <- 0;
  t.wall <- 0.;
  t.last <- None;
  Array.iter
    (fun s ->
       s.s_chunks <- 0;
       s.s_busy <- 0.;
       s.s_wait <- 0.)
    t.slots;
  Mutex.unlock t.submit

let pp_stats ppf s =
  Format.fprintf ppf "exec pool: jobs=%d calls=%d chunks=%d parallel-wall=%.3fs"
    s.jobs s.calls s.chunks s.wall;
  Array.iteri
    (fun i (d : domain_stats) ->
       if i = 0 then
         Format.fprintf ppf "@.  d0 (caller): %d chunks, %.3fs busy" d.chunks d.busy
       else
         Format.fprintf ppf "@.  d%d: %d chunks, %.3fs busy, %.3fs waiting" i
           d.chunks d.busy d.wait)
    s.domains
