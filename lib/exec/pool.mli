(** The deterministic multicore execution engine.

    Every §4 experiment is an embarrassingly parallel sweep — Monte-Carlo
    adversary draws, per-prefix propagations, per-(client, guard) pair
    analyses. This module runs those sweeps over a fixed-size pool of OCaml
    domains, spawned once and reused across calls, under three hard
    guarantees:

    {b Determinism.} Results are written into per-item slots and reduced in
    submission order, never in completion order, so the output of {!map}
    and {!fold} is independent of the worker count and of scheduling. For
    seeded work, {!map_seeded} derives one {!Rng.split} stream per {e item}
    (not per chunk or per worker) before any task runs: a seeded experiment
    is byte-identical at [jobs = 1] and [jobs = N]. A property test in
    [test/test_exec.ml] and the QS305 lint rule enforce this end to end.

    {b Isolation.} Mutable scratch state (a {!Propagate.Workspace.t}, a
    route cache) must never be shared across domains. {!per_domain} is the
    resource combinator for that rule: it lazily creates one instance per
    domain, so a task may freely use {!get} on whatever domain it happens
    to run.

    {b Observability.} {!stats} reports per-domain task counts, busy and
    queue-wait times, and the accumulated wall time of parallel sections;
    the bench harness and the CLI [--jobs] subcommands print it.

    Tasks must be pure apart from per-domain resources and their own
    per-item RNG stream; they must not submit work to the pool they run on
    (detected, raises [Invalid_argument]). *)

type t
(** A pool of [jobs] domains: the caller plus [jobs - 1] spawned workers.
    The workers are spawned by {!create} and live until {!shutdown} (or
    process exit); between calls they block on a condition variable, so an
    idle pool costs nothing. *)

val create : jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains. [jobs = 1] is the
    sequential pool: no domains are spawned and every task runs inline in
    the caller — by the determinism guarantee it computes exactly what any
    wider pool computes.
    @raise Invalid_argument unless [1 <= jobs <= 512]. *)

val jobs : t -> int
(** The worker count the pool was created with (caller included). *)

val default : unit -> t
(** The shared default pool, created on first use with
    [jobs = Domain.recommended_domain_count ()]. Experiment entry points
    use it when no explicit pool is passed. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] over a fresh pool and shuts it down
    afterwards, whatever [f] does. *)

val shutdown : t -> unit
(** Stops and joins the worker domains. Idempotent. Submitting to a shut
    pool raises [Invalid_argument]. *)

(** {1 Parallel sweeps} *)

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f arr] computes [Array.map f arr] with the elements chunked
    over the pool's domains. [f] runs once per element, on an unspecified
    domain; element order in the result is the submission order. [chunk]
    (default: aiming at ~8 chunks per domain) only affects scheduling
    granularity, never the result.
    @raise Invalid_argument if [chunk <= 0], if called from inside a pool
    task, or if the pool is shut down. Exceptions raised by [f] are
    re-raised in the caller after the sweep drains. *)

val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list (element order preserved). *)

val map_seeded :
  ?chunk:int -> t -> rng:Rng.t -> (Rng.t -> 'a -> 'b) -> 'a array -> 'b array
(** [map_seeded pool ~rng f arr] is the deterministic seeded sweep: it
    first splits one sibling stream per element off [rng] (in index order,
    advancing [rng] by [Array.length arr] splits), then maps
    [f stream.(i) arr.(i)] over the pool. Because streams are attached to
    items, not to workers or chunks, the result is byte-identical at any
    [jobs] and any [chunk]. *)

val fold :
  ?chunk:int -> t -> f:('a -> 'b) -> reduce:('acc -> 'b -> 'acc) ->
  init:'acc -> 'a array -> 'acc
(** [fold pool ~f ~reduce ~init arr] maps [f] in parallel, then reduces
    the per-item results {e sequentially, in submission order} in the
    caller. [reduce] therefore needs no commutativity: floating-point
    accumulation, list building and "first wins" logic are all stable
    across worker counts. *)

(** {1 Per-domain resources} *)

type 'r per_domain
(** A lazily instantiated resource with one instance per domain — the
    "one workspace per domain" rule of {!Propagate.Workspace} made a
    combinator. Instances are created on a domain's first {!get} and
    reused for the value's lifetime; they are never migrated or shared. *)

val per_domain : (unit -> 'r) -> 'r per_domain
(** [per_domain make] declares a per-domain resource. [make] runs on the
    domain that first touches the resource; it must not call {!get} on the
    resource being created. *)

val get : 'r per_domain -> 'r
(** This domain's instance, created on first use. Callable from pool tasks
    and from plain sequential code alike. *)

(** {1 Observability} *)

type domain_stats = {
  chunks : int;   (** chunks this domain executed *)
  busy : float;   (** seconds spent running tasks *)
  wait : float;   (** seconds spent blocked waiting for work (workers only) *)
}

type stats = {
  jobs : int;
  calls : int;            (** map/fold sweeps submitted *)
  chunks : int;           (** chunks across all sweeps *)
  wall : float;           (** seconds of caller wall time inside sweeps *)
  domains : domain_stats array;
      (** index 0 is the caller; 1.. are the spawned workers *)
}

val stats : t -> stats
val reset_stats : t -> unit

val last_sweep : t -> stats option
(** The per-call delta of the most recent sweep — [calls = 1], [chunks]
    the sweep's own chunk count, [wall] its caller wall time, [domains]
    the per-domain progress since the sweep started (the per-call reset
    marker that makes a reused pool's counters merge-correct). Chunk
    deltas are exact at any [jobs]; busy/wait deltas are non-negative
    lower bounds that sum to the cumulative totals over the pool's
    lifetime (a worker publishes its busy tail after the completion
    signal, so a slow tail can slip into the next sweep's delta), and
    are exact at [jobs = 1]. [None] before the first sweep and after
    {!reset_stats}. *)

val pp_stats : Format.formatter -> stats -> unit
(** Multi-line human-readable rendering, printed by the bench ablations
    and the [--jobs] CLI subcommands. *)
