(** Tor path selection: bandwidth-weighted relay choice, guard sets, and
    circuit construction.

    Follows the deployed algorithm's structure: clients weight relays by
    consensus bandwidth, keep a small fixed set of entry guards (three, in
    the 2014 implementation the paper discusses; rotated on a timescale of
    weeks-to-months), and never put two relays from the same /16 — or the
    same relay twice — in one circuit. *)

type circuit = {
  guard : Relay.t;
  middle : Relay.t;
  exit : Relay.t;
}

val pp_circuit : Format.formatter -> circuit -> unit

val pick_weighted : rng:Rng.t -> Relay.t list -> Relay.t
(** Bandwidth-weighted choice. @raise Invalid_argument on empty list. *)

val pick_guards : rng:Rng.t -> Consensus.t -> n:int -> Relay.t list
(** [n] distinct guard-flagged relays, bandwidth-weighted, no two in the
    same /16. @raise Invalid_argument if the consensus cannot satisfy it. *)

val conflict : Relay.t -> Relay.t -> bool
(** Same relay or same /16 — Tor's circuit-diversity constraint. *)

val refresh_guards :
  rng:Rng.t -> Consensus.t -> Relay.t list -> Relay.t list * int
(** [refresh_guards ~rng consensus guards] reconciles a guard set with a
    newer consensus ({!Consensus_dynamics}): guards still listed keep
    their slot (updated to the new consensus record, so bandwidth drift
    is visible), departed ones are replaced by fresh bandwidth-weighted
    draws respecting {!conflict} against the kept set. Returns the
    refreshed set (kept first, in order) and the number replaced; draws
    from [rng] only when a replacement is needed, so a frozen consensus
    costs nothing. @raise Invalid_argument if the consensus cannot
    satisfy the set size. *)

val build_circuit :
  rng:Rng.t -> Consensus.t -> guards:Relay.t list -> circuit
(** Picks the entry uniformly among [guards] (Tor rotates across its guard
    set), then a bandwidth-weighted exit and middle respecting
    {!conflict}. @raise Invalid_argument if impossible. *)

type client = {
  client_id : int;
  client_asn : Asn.t;
  client_ip : Ipv4.t;
  mutable guard_set : Relay.t list;
  mutable guards_chosen_at : float;
}

val make_client :
  rng:Rng.t -> Consensus.t -> id:int -> asn:Asn.t -> ip:Ipv4.t ->
  ?n_guards:int -> float -> client
(** [make_client ... time] creates a client and picks its guard set
    (default 3 guards) at [time]. *)

val rotate_guards_if_due :
  rng:Rng.t -> Consensus.t -> rotation_period:float -> now:float ->
  client -> bool
(** Re-picks the guard set if [now - guards_chosen_at >= rotation_period];
    returns whether a rotation happened. *)
