type t = {
  relays : Relay.t array;
  valid_after : float;
}

type gen_params = {
  n_relays : int;
  n_guards : int;
  n_exits : int;
  n_guard_exits : int;
  eligible_stub_fraction : float;
  stub_weight : float;
  bandwidth_alpha : float;
  bandwidth_min : int;
}

let paper_params =
  { n_relays = 4586;
    n_guards = 1918;
    n_exits = 891;
    n_guard_exits = 442;
    eligible_stub_fraction = 0.33;
    stub_weight = 0.42;
    bandwidth_alpha = 1.3;
    bandwidth_min = 20 }

let small_params =
  { n_relays = 230;
    n_guards = 96;
    n_exits = 45;
    n_guard_exits = 22;
    eligible_stub_fraction = 0.28;
    stub_weight = 0.35;
    bandwidth_alpha = 1.3;
    bandwidth_min = 20 }

let check p =
  if p.n_relays <= 0 then invalid_arg "Consensus.generate: n_relays <= 0";
  if p.n_guard_exits > min p.n_guards p.n_exits then
    invalid_arg "Consensus.generate: n_guard_exits exceeds guard or exit count";
  if p.n_guards + p.n_exits - p.n_guard_exits > p.n_relays then
    invalid_arg "Consensus.generate: more flagged relays than relays"

type sites = {
  site_ases : (Asn.t * float) array;
  site_weights : float array;
}

(* Candidate hosting locations: hosting ASes with their weight, plus an
   eligible subset of plain stubs (most ASes host no relay at all).
   Shared with [Consensus_dynamics], which places arriving relays on the
   same weighted site distribution the base consensus used. *)
let candidate_sites ~rng ?(params = paper_params) g addressing =
  let hosting = Topo_gen.hosting_ases g in
  let plain_stubs =
    As_graph.ases g
    |> List.filter (fun a ->
        let i = As_graph.info g a in
        (match i.As_graph.tier with As_graph.Stub -> true | _ -> false)
        && i.As_graph.hosting_weight = 0.
        && Addressing.prefixes_of addressing a <> [])
    |> Array.of_list
  in
  let n_eligible =
    int_of_float (params.eligible_stub_fraction *. float_of_int (Array.length plain_stubs))
  in
  let eligible = Rng.sample_without_replacement rng n_eligible plain_stubs in
  let site_ases =
    Array.of_list
      (List.map (fun (a, w) -> (a, w)) hosting
       @ List.map (fun a -> (a, params.stub_weight)) eligible)
  in
  if Array.length site_ases = 0 then
    invalid_arg "Consensus.candidate_sites: no AS can host relays";
  { site_ases; site_weights = Array.map snd site_ases }

let pick_site ~rng sites = fst sites.site_ases.(Rng.weighted_index rng sites.site_weights)

let sample_bandwidth ~rng params =
  max params.bandwidth_min
    (int_of_float
       (Rng.pareto rng ~alpha:params.bandwidth_alpha
          ~xmin:(float_of_int params.bandwidth_min)
        *. 10.))

let generate ~rng ?(params = paper_params) g addressing =
  check params;
  let sites = candidate_sites ~rng ~params g addressing in
  (* Assign flags by shuffling indices: the first [n_guard_exits] are
     Guard+Exit, then guard-only, then exit-only. *)
  let order = Array.init params.n_relays (fun i -> i) in
  Rng.shuffle rng order;
  let flags_of = Array.make params.n_relays [ Relay.Fast ] in
  Array.iteri
    (fun rank idx ->
       let fl =
         if rank < params.n_guard_exits then
           [ Relay.Guard; Relay.Exit; Relay.Fast; Relay.Stable ]
         else if rank < params.n_guards then [ Relay.Guard; Relay.Fast; Relay.Stable ]
         else if rank < params.n_guards + (params.n_exits - params.n_guard_exits) then
           [ Relay.Exit; Relay.Fast ]
         else [ Relay.Fast ]
       in
       flags_of.(idx) <- fl)
    order;
  let used_ips = Hashtbl.create params.n_relays in
  let fresh_ip asn =
    let rec try_ip attempts =
      let ip = Addressing.address_in ~rng addressing asn in
      if Hashtbl.mem used_ips (Ipv4.to_int ip) && attempts < 50 then
        try_ip (attempts + 1)
      else ip
    in
    let ip = try_ip 0 in
    Hashtbl.replace used_ips (Ipv4.to_int ip) ();
    ip
  in
  let relays =
    Array.init params.n_relays
      (fun i ->
         let asn = pick_site ~rng sites in
         let ip = fresh_ip asn in
         let bandwidth = sample_bandwidth ~rng params in
         Relay.make
           ~nickname:(Printf.sprintf "relay%04d" i)
           ~ip ~asn ~bandwidth ~flags:flags_of.(i))
  in
  { relays; valid_after = 0. }

let guards t = Array.to_list t.relays |> List.filter Relay.is_guard
let exits t = Array.to_list t.relays |> List.filter Relay.is_exit

let guard_or_exit t =
  Array.to_list t.relays |> List.filter (fun r -> Relay.is_guard r || Relay.is_exit r)

let n_relays t = Array.length t.relays

let relays_in t asn =
  Array.to_list t.relays |> List.filter (fun r -> Asn.equal r.Relay.asn asn)

let total_bandwidth t =
  Array.fold_left (fun acc r -> acc + r.Relay.bandwidth) 0 t.relays

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "valid-after %.0f\n" t.valid_after);
  Array.iter
    (fun r ->
       Buffer.add_string buf
         (Printf.sprintf "r %s %s %d %d %s\n" r.Relay.nickname
            (Ipv4.to_string r.Relay.ip)
            (Asn.to_int r.Relay.asn)
            r.Relay.bandwidth
            (String.concat "," (List.map Relay.flag_to_string r.Relay.flags))))
    t.relays;
  Buffer.contents buf

let of_string s =
  let valid_after = ref 0. in
  let relays = ref [] in
  let parse_line line =
    match String.split_on_char ' ' (String.trim line) with
    | [ "" ] -> ()
    | [ "valid-after"; v ] -> begin
        match float_of_string_opt v with
        | Some v -> valid_after := v
        | None -> invalid_arg "Consensus.of_string: bad valid-after"
      end
    | [ "r"; nickname; ip; asn; bw; flags ] -> begin
        match
          ( Ipv4.of_string_opt ip,
            int_of_string_opt asn,
            int_of_string_opt bw )
        with
        | Some ip, Some asn, Some bandwidth ->
            let flags =
              String.split_on_char ',' flags
              |> List.filter_map Relay.flag_of_string
            in
            relays :=
              Relay.make ~nickname ~ip ~asn:(Asn.of_int asn) ~bandwidth ~flags
              :: !relays
        | _ -> invalid_arg "Consensus.of_string: bad relay line"
      end
    | _ -> invalid_arg (Printf.sprintf "Consensus.of_string: bad line %S" line)
  in
  List.iter parse_line (String.split_on_char '\n' s);
  { relays = Array.of_list (List.rev !relays); valid_after = !valid_after }
