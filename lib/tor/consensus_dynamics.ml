(* A living consensus: hourly epochs over a base snapshot, with per-relay
   departure hazards, Poisson relay arrivals placed on the same weighted
   candidate sites the base consensus used, and log-normal bandwidth-
   weight drift. Epoch 0 is the base snapshot verbatim; epoch i is derived
   from epoch i-1 by one round of departures, drift and arrivals, so the
   conservation law n(i) = n(i-1) + |joined(i)| - |departed(i)| holds by
   construction (and is qcheck-pinned in test_tor.ml).

   Determinism: one serial pass over epochs from a single caller-provided
   rng — a pure function of (rng, params, gen, base, n_epochs). *)

type params = {
  epoch_seconds : float;
  arrival_rate : float;
  departure_hazard : float;
  bw_drift_sigma : float;
  guard_fraction : float;
  exit_fraction : float;
}

let default_params =
  { epoch_seconds = 3600.;
    arrival_rate = 1.0;
    departure_hazard = 0.004;
    bw_drift_sigma = 0.02;
    guard_fraction = 0.4;
    exit_fraction = 0.2 }

let heavy_params =
  { default_params with
    arrival_rate = 3.0;
    departure_hazard = 0.015;
    bw_drift_sigma = 0.05 }

let check_params p =
  if p.epoch_seconds <= 0. then
    invalid_arg "Consensus_dynamics: epoch_seconds <= 0";
  if p.arrival_rate < 0. then invalid_arg "Consensus_dynamics: arrival_rate < 0";
  if p.departure_hazard < 0. || p.departure_hazard >= 1. then
    invalid_arg "Consensus_dynamics: departure_hazard outside [0, 1)";
  if p.bw_drift_sigma < 0. then
    invalid_arg "Consensus_dynamics: bw_drift_sigma < 0";
  if p.guard_fraction < 0. || p.guard_fraction > 1. then
    invalid_arg "Consensus_dynamics: guard_fraction outside [0, 1]";
  if p.exit_fraction < 0. || p.exit_fraction > 1. then
    invalid_arg "Consensus_dynamics: exit_fraction outside [0, 1]"

type epoch = {
  consensus : Consensus.t;
  joined : Relay.t list;
  departed : Relay.t list;
}

type t = {
  params : params;
  epochs : epoch array;
}

let m_epochs = Metrics.counter "consensus.epochs"
    ~help:"consensus epochs generated"
let m_joined = Metrics.counter "consensus.relays_joined"
    ~help:"relay arrivals across generated epochs"
let m_departed = Metrics.counter "consensus.relays_departed"
    ~help:"relay departures across generated epochs"

(* Knuth's product-of-uniforms Poisson sampler; our arrival rates are a
   handful per epoch, far from the exp(-lambda) underflow regime. *)
let poisson rng lambda =
  if lambda <= 0. then 0
  else begin
    let l = exp (-.lambda) in
    let rec go k p =
      let p = p *. Rng.float rng 1.0 in
      if p <= l then k else go (k + 1) p
    in
    go 0 1.0
  end

let arrival_flags rng params =
  let guard = Rng.float rng 1.0 < params.guard_fraction in
  let exit = Rng.float rng 1.0 < params.exit_fraction in
  match (guard, exit) with
  | true, true -> [ Relay.Guard; Relay.Exit; Relay.Fast; Relay.Stable ]
  | true, false -> [ Relay.Guard; Relay.Fast; Relay.Stable ]
  | false, true -> [ Relay.Exit; Relay.Fast ]
  | false, false -> [ Relay.Fast ]

let generate ~rng ?(params = default_params) ~gen ~n_epochs g addressing base =
  check_params params;
  if n_epochs <= 0 then invalid_arg "Consensus_dynamics.generate: n_epochs <= 0";
  let sites = Consensus.candidate_sites ~rng ~params:gen g addressing in
  let used_ips = Hashtbl.create (Consensus.n_relays base * 2) in
  Array.iter
    (fun (r : Relay.t) -> Hashtbl.replace used_ips (Ipv4.to_int r.Relay.ip) ())
    base.Consensus.relays;
  let fresh_ip asn =
    let rec try_ip attempts =
      let ip = Addressing.address_in ~rng addressing asn in
      if Hashtbl.mem used_ips (Ipv4.to_int ip) && attempts < 50 then
        try_ip (attempts + 1)
      else ip
    in
    let ip = try_ip 0 in
    Hashtbl.replace used_ips (Ipv4.to_int ip) ();
    ip
  in
  (* Nickname numbering continues past the base roster so an arrival never
     shadows a (possibly departed-and-grepped-for) base relay. *)
  let next_nick = ref (Consensus.n_relays base) in
  let new_relay () =
    let asn = Consensus.pick_site ~rng sites in
    let ip = fresh_ip asn in
    let bandwidth = Consensus.sample_bandwidth ~rng gen in
    let flags = arrival_flags rng params in
    let nickname = Printf.sprintf "relay%04d" !next_nick in
    incr next_nick;
    Relay.make ~nickname ~ip ~asn ~bandwidth ~flags
  in
  let current = ref (Array.to_list base.Consensus.relays) in
  let epochs =
    Array.init n_epochs (fun i ->
        if i = 0 then
          { consensus = { base with Consensus.valid_after = 0. };
            joined = [];
            departed = [] }
        else begin
          let stay, departed =
            List.partition
              (fun _ -> Rng.float rng 1.0 >= params.departure_hazard)
              !current
          in
          let stay =
            List.map
              (fun (r : Relay.t) ->
                 let f = exp (Rng.normal rng ~mu:0. ~sigma:params.bw_drift_sigma) in
                 { r with
                   Relay.bandwidth =
                     max 1 (int_of_float (float_of_int r.Relay.bandwidth *. f)) })
              stay
          in
          let joined = List.init (poisson rng params.arrival_rate) (fun _ -> new_relay ()) in
          current := stay @ joined;
          Metrics.add m_joined (List.length joined);
          Metrics.add m_departed (List.length departed);
          { consensus =
              { Consensus.relays = Array.of_list !current;
                valid_after = float_of_int i *. params.epoch_seconds };
            joined;
            departed }
        end)
  in
  Metrics.add m_epochs n_epochs;
  { params; epochs }

let n_epochs t = Array.length t.epochs

let at t i =
  if i < 0 || i >= Array.length t.epochs then
    invalid_arg "Consensus_dynamics.at: epoch out of range";
  t.epochs.(i)

let epoch_of_time t time =
  let i = int_of_float (Float.max 0. time /. t.params.epoch_seconds) in
  min i (Array.length t.epochs - 1)

let at_time t time = t.epochs.(epoch_of_time t time).consensus

let to_string t =
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun i e ->
       Buffer.add_string buf
         (Printf.sprintf "epoch %d valid-after %.0f relays %d joined %d departed %d\n"
            i e.consensus.Consensus.valid_after
            (Consensus.n_relays e.consensus)
            (List.length e.joined) (List.length e.departed));
       let line sign (r : Relay.t) =
         Buffer.add_string buf
           (Printf.sprintf "%s %s %s %d %d %s\n" sign r.Relay.nickname
              (Ipv4.to_string r.Relay.ip)
              (Asn.to_int r.Relay.asn)
              r.Relay.bandwidth
              (String.concat "," (List.map Relay.flag_to_string r.Relay.flags)))
       in
       List.iter (line "+") e.joined;
       List.iter (line "-") e.departed)
    t.epochs;
  Buffer.contents buf
