(** A living consensus: hourly epochs over a base snapshot.

    The paper's measurement month had a moving relay population — relays
    joining and dying, bandwidth weights drifting, guards rotating — not
    the one frozen snapshot {!Consensus.generate} produces. This module
    derives a sequence of consensus epochs from a base snapshot:

    - {b departures}: each relay independently leaves with probability
      [departure_hazard] per epoch;
    - {b arrivals}: Poisson([arrival_rate]) new relays per epoch, placed
      on the {e same} weighted candidate sites
      ({!Consensus.candidate_sites}) the base consensus used, with fresh
      addresses, heavy-tailed bandwidths and Bernoulli Guard/Exit flags;
    - {b drift}: surviving relays' bandwidth weights move by a log-normal
      factor per epoch (floored at 1).

    Epoch 0 is the base snapshot verbatim; epoch [i] is one round of
    departures → drift → arrivals applied to epoch [i-1], so
    [n(i) = n(i-1) + |joined(i)| − |departed(i)|] holds by construction.
    [Long_term] (M2) and guard maintenance consult {!at_time} per
    simulated day instead of reading the frozen snapshot.

    Deterministic: one serial pass from a single caller-provided rng
    (normally [Scenario.rng_for _ "consensus-epochs"]). *)

type params = {
  epoch_seconds : float;      (** epoch length (default: one hour) *)
  arrival_rate : float;       (** expected relay arrivals per epoch *)
  departure_hazard : float;   (** per-relay leave probability per epoch *)
  bw_drift_sigma : float;     (** log-normal drift scale per epoch *)
  guard_fraction : float;     (** chance an arrival carries Guard *)
  exit_fraction : float;      (** chance an arrival carries Exit *)
}

val default_params : params
(** Hourly epochs, ~1 arrival/h, ~0.4%/h departure (≈ 10%/day turnover)
    — the [consensus=live-hourly] sweep model. *)

val heavy_params : params
(** 3 arrivals/h, 1.5%/h departure, larger drift — the
    [consensus=live-heavy] sweep model. *)

val check_params : params -> unit
(** @raise Invalid_argument on out-of-range fields. *)

type epoch = {
  consensus : Consensus.t;   (** the full roster at this epoch *)
  joined : Relay.t list;     (** arrivals since the previous epoch *)
  departed : Relay.t list;   (** departures since the previous epoch *)
}

type t = {
  params : params;
  epochs : epoch array;
}

val generate :
  rng:Rng.t -> ?params:params -> gen:Consensus.gen_params -> n_epochs:int ->
  As_graph.t -> Addressing.t -> Consensus.t -> t
(** [generate ~rng ~gen ~n_epochs g addressing base] derives [n_epochs]
    epochs (epoch 0 = [base]). [gen] supplies the bandwidth law and site
    eligibility used for arrivals — pass the params [base] was generated
    with.
    @raise Invalid_argument if [n_epochs <= 0] or params are invalid. *)

val n_epochs : t -> int

val at : t -> int -> epoch
(** @raise Invalid_argument if the index is out of range. *)

val epoch_of_time : t -> float -> int
(** The epoch index covering time [t] seconds (clamped to the generated
    range: negative times map to 0, times past the end to the last
    epoch). *)

val at_time : t -> float -> Consensus.t
(** [at (epoch_of_time t time)]'s consensus. *)

val to_string : t -> string
(** Canonical per-epoch rendering — a header line per epoch
    ([epoch i valid-after .. relays .. joined .. departed ..]) followed
    by [+]/[-] relay lines for arrivals/departures. The byte-stability
    witness of the golden test. *)
