(** The Tor network consensus: the directory document listing every relay.

    {!generate} builds a synthetic consensus over a given topology that
    reproduces the marginals of the paper's July-2014 snapshot (§4
    "Methodology and datasets"): 4586 relays of which 1918 carry the Guard
    flag, 891 the Exit flag and 442 both; relays concentrated in a handful
    of hosting ASes (5 ASes ≈ 20% of guard/exit relays, Figure 2 left);
    heavy-tailed consensus bandwidths. *)

type t = {
  relays : Relay.t array;
  valid_after : float;
}

type gen_params = {
  n_relays : int;            (** 4586 *)
  n_guards : int;            (** 1918, including the dual-flagged *)
  n_exits : int;             (** 891, including the dual-flagged *)
  n_guard_exits : int;       (** 442 relays flagged Guard+Exit *)
  eligible_stub_fraction : float;
      (** share of non-hosting stub ASes that may host relays at all *)
  stub_weight : float;       (** placement weight of an eligible stub *)
  bandwidth_alpha : float;   (** Pareto shape of consensus weights *)
  bandwidth_min : int;       (** KB/s floor *)
}

val paper_params : gen_params
val small_params : gen_params
(** A ~230-relay consensus for tests, same proportions. *)

type sites = {
  site_ases : (Asn.t * float) array;  (** candidate AS with placement weight *)
  site_weights : float array;         (** the weights alone, for sampling *)
}
(** Where relays may live: hosting ASes with their hosting weight plus a
    sampled eligible subset of plain stubs. *)

val candidate_sites :
  rng:Rng.t -> ?params:gen_params -> As_graph.t -> Addressing.t -> sites
(** The placement distribution {!generate} draws from, exposed so
    {!Consensus_dynamics} places arriving relays on the same sites.
    @raise Invalid_argument if no AS can host relays. *)

val pick_site : rng:Rng.t -> sites -> Asn.t
(** One weighted site draw. *)

val sample_bandwidth : rng:Rng.t -> gen_params -> int
(** One heavy-tailed consensus-weight draw (Pareto, floored at
    [bandwidth_min]). *)

val generate :
  rng:Rng.t -> ?params:gen_params -> As_graph.t -> Addressing.t -> t
(** @raise Invalid_argument if the flag counts are inconsistent
    (e.g. [n_guard_exits > min n_guards n_exits] or more flags than
    relays). *)

val guards : t -> Relay.t list
val exits : t -> Relay.t list
val guard_or_exit : t -> Relay.t list
val n_relays : t -> int

val relays_in : t -> Asn.t -> Relay.t list

val total_bandwidth : t -> int

val to_string : t -> string
(** A consensus-flavoured text serialization ("r <nick> <ip> <asn> <bw>
    <flags>" lines). *)

val of_string : string -> t
(** Parses {!to_string} output. @raise Invalid_argument on malformed
    input. *)
