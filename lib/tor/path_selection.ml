type circuit = {
  guard : Relay.t;
  middle : Relay.t;
  exit : Relay.t;
}

let pp_circuit ppf c =
  Format.fprintf ppf "%a -> %a -> %a" Ipv4.pp c.guard.Relay.ip Ipv4.pp
    c.middle.Relay.ip Ipv4.pp c.exit.Relay.ip

let pick_weighted ~rng relays =
  match relays with
  | [] -> invalid_arg "Path_selection.pick_weighted: no relays"
  | _ ->
      let arr = Array.of_list relays in
      let weights = Array.map (fun r -> float_of_int r.Relay.bandwidth) arr in
      arr.(Rng.weighted_index rng weights)

let slash16 r = Ipv4.to_int r.Relay.ip lsr 16

let conflict a b = Relay.equal a b || slash16 a = slash16 b

let conflict_with_any r chosen = List.exists (conflict r) chosen

let pick_guards ~rng consensus ~n =
  let pool = Consensus.guards consensus in
  let rec loop chosen attempts =
    if List.length chosen = n then List.rev chosen
    else if attempts > 200 * n then
      invalid_arg "Path_selection.pick_guards: cannot satisfy diversity constraint"
    else begin
      let g = pick_weighted ~rng pool in
      if conflict_with_any g chosen then loop chosen (attempts + 1)
      else loop (g :: chosen) (attempts + 1)
    end
  in
  if List.length pool < n then
    invalid_arg "Path_selection.pick_guards: not enough guards";
  loop [] 0

(* Under a living consensus a client's guard set must survive relay
   churn: guards still listed keep their slot (updated to the new
   consensus record, so drifted bandwidths are visible), departed ones
   are replaced by fresh weighted draws that respect the same
   relay-/16 diversity constraint against the kept set. *)
let refresh_guards ~rng consensus guards =
  let pool = Consensus.guards consensus in
  let kept = List.filter_map (fun g -> List.find_opt (Relay.equal g) pool) guards in
  let need = List.length guards - List.length kept in
  if need = 0 then (kept, 0)
  else begin
    if List.length pool < List.length guards then
      invalid_arg "Path_selection.refresh_guards: not enough guards";
    let rec loop chosen need attempts =
      if need = 0 then chosen
      else if attempts > 200 * List.length guards then
        invalid_arg
          "Path_selection.refresh_guards: cannot satisfy diversity constraint"
      else begin
        let g = pick_weighted ~rng pool in
        if conflict_with_any g chosen then loop chosen need (attempts + 1)
        else loop (chosen @ [ g ]) (need - 1) (attempts + 1)
      end
    in
    (loop kept need 0, need)
  end

let build_circuit ~rng consensus ~guards =
  match guards with
  | [] -> invalid_arg "Path_selection.build_circuit: empty guard set"
  | _ ->
      let guard = Rng.pick_list rng guards in
      let exits =
        Consensus.exits consensus |> List.filter (fun r -> not (conflict r guard))
      in
      let exit =
        match exits with
        | [] -> invalid_arg "Path_selection.build_circuit: no usable exit"
        | _ -> pick_weighted ~rng exits
      in
      let middles =
        Array.to_list consensus.Consensus.relays
        |> List.filter (fun r -> not (conflict r guard) && not (conflict r exit))
      in
      let middle =
        match middles with
        | [] -> invalid_arg "Path_selection.build_circuit: no usable middle"
        | _ -> pick_weighted ~rng middles
      in
      { guard; middle; exit }

type client = {
  client_id : int;
  client_asn : Asn.t;
  client_ip : Ipv4.t;
  mutable guard_set : Relay.t list;
  mutable guards_chosen_at : float;
}

let make_client ~rng consensus ~id ~asn ~ip ?(n_guards = 3) time =
  { client_id = id;
    client_asn = asn;
    client_ip = ip;
    guard_set = pick_guards ~rng consensus ~n:n_guards;
    guards_chosen_at = time }

let rotate_guards_if_due ~rng consensus ~rotation_period ~now client =
  if now -. client.guards_chosen_at >= rotation_period then begin
    client.guard_set <-
      pick_guards ~rng consensus ~n:(List.length client.guard_set);
    client.guards_chosen_at <- now;
    true
  end
  else false
