(** Trace-shaped session churn generation.

    Per-entity alternating-renewal processes with heavy-tailed session
    and outage laws, after the overnet availability traces of Bhagwan et
    al. (NSDI'03): every entity starts Up at time 0, stays up for a
    duration drawn from {!config.up_law}, goes Down for a duration drawn
    from {!config.down_law}, and repeats. The merged event stream is
    what {!Qs_bgp.Dynamics} consumes when a scenario selects a
    [trace-pareto] or [trace-lognormal] churn model.

    {b Determinism.} Entity [i] draws from sibling stream [i] of
    {!Qs_net.Rng.split_n}, so the generated stream is a pure function of
    (rng seed, config, entities, duration) — independent of worker count
    or consumption order. [quicksand check --suite churn] enforces
    byte-identity across [--jobs] and reruns, plus the distribution-shape
    laws below. *)

type law =
  | Pareto of { alpha : float; xmin : float }
      (** Survival [ (xmin/x)^alpha ] for [x >= xmin]. Mean
          [alpha*xmin/(alpha-1)] when [alpha > 1], infinite otherwise;
          median [xmin * 2^(1/alpha)]. *)
  | Log_normal of { mu : float; sigma : float }
      (** [exp (Normal (mu, sigma))]. Mean [exp (mu + sigma^2/2)];
          median [exp mu]. *)

val check_law : law -> unit
(** @raise Invalid_argument on non-positive [alpha], [xmin] or [sigma]. *)

val law_to_string : law -> string
(** Canonical rendering, e.g. ["pareto(alpha=1.5,xmin=1800)"]. *)

val mean : law -> float
(** Closed-form mean; [infinity] for a Pareto with [alpha <= 1]. *)

val median : law -> float
(** Closed-form median. *)

val cdf : law -> float -> float
(** Closed-form CDF (log-normal via an Abramowitz–Stegun [erf]
    approximation, absolute error < 1.5e-7). *)

val sample : Rng.t -> law -> float
(** One duration draw. *)

type config = {
  up_law : law;   (** session (entity reachable) duration law *)
  down_law : law; (** outage duration law *)
}

val check_config : config -> unit
(** {!check_law} on both laws. *)

val pareto_day : config
(** Heavy-tailed sessions (Pareto alpha 1.5, xmin 30 min — infinite
    variance, like the measured traces) with shorter, lighter-tailed
    outages (alpha 2.5, xmin 2 min). The [churn=trace-pareto] sweep
    model. *)

val lognormal_day : config
(** Log-normal sessions (median 2 h) and outages (median 5 min). The
    [churn=trace-lognormal] sweep model. *)

val config_to_string : config -> string

type action = Up | Down

val action_to_string : action -> string
(** ["U"] / ["D"], the overnet trace encoding. *)

type event = {
  time : float;   (** seconds from scenario start *)
  entity : int;   (** generator-assigned entity index, [0..entities-1] *)
  action : action;
}

val compare_event : event -> event -> int
(** Total order: time, then entity, then [Down] before [Up]. *)

val generate :
  rng:Rng.t -> config -> entities:int -> duration:float -> event list
(** [generate ~rng config ~entities ~duration] returns the merged
    event stream, sorted by {!compare_event}. Invariants (enforced by
    [check --suite churn]): times are non-decreasing; per entity the
    actions strictly alternate starting with [Down]; every [Down] has a
    matching later [Up] — closing [Up]s are emitted even past
    [duration], so a consumer that applies stragglers returns to the
    all-up baseline.
    @raise Invalid_argument if [entities < 0] or [duration <= 0]. *)

val to_string : event list -> string
(** Canonical one-line-per-event rendering (["%.6f %d U|D\n"]) — the
    byte-identity witness of the check suite. *)

val durations : event list -> float list * float list
(** [(up_durations, down_durations)] recovered from a time-sorted
    stream by pairing each entity's consecutive events. Ties the emitted
    stream back to the configured laws in the check suite. *)
