(* Trace-shaped session churn: per-entity heavy-tailed up/down
   alternating-renewal processes, after the overnet availability traces of
   Bhagwan et al. (NSDI'03). Each entity alternates Up sessions and Down
   outages whose durations are drawn from configurable heavy-tailed laws;
   the merged, time-sorted event stream is what [Qs_bgp.Dynamics] consumes
   when a scenario selects a trace-shaped churn model.

   Determinism: generation is serial and per-entity. Entity [i] draws from
   sibling stream [i] of [Rng.split_n], so its session sequence depends
   only on the seed and on [i] — never on the worker count or on any other
   entity. The merged stream is therefore byte-identical across reruns and
   across [--jobs] settings by construction; [check --suite churn]
   enforces this plus the distribution-shape laws. *)

type law =
  | Pareto of { alpha : float; xmin : float }
  | Log_normal of { mu : float; sigma : float }

let check_law = function
  | Pareto { alpha; xmin } ->
      if alpha <= 0. || xmin <= 0. then
        invalid_arg "Churn: Pareto needs alpha > 0 and xmin > 0"
  | Log_normal { sigma; _ } ->
      if sigma <= 0. then invalid_arg "Churn: Log_normal needs sigma > 0"

let law_to_string = function
  | Pareto { alpha; xmin } -> Printf.sprintf "pareto(alpha=%g,xmin=%g)" alpha xmin
  | Log_normal { mu; sigma } -> Printf.sprintf "lognormal(mu=%g,sigma=%g)" mu sigma

let mean = function
  | Pareto { alpha; xmin } ->
      if alpha > 1. then alpha *. xmin /. (alpha -. 1.) else infinity
  | Log_normal { mu; sigma } -> exp (mu +. (sigma *. sigma /. 2.))

let median = function
  | Pareto { alpha; xmin } -> xmin *. Float.pow 2. (1. /. alpha)
  | Log_normal { mu; _ } -> exp mu

(* Abramowitz–Stegun 7.1.26; |error| < 1.5e-7, plenty under the KS
   tolerance the check suite asserts. *)
let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let poly =
    ((((1.061405429 *. t -. 1.453152027) *. t) +. 1.421413741) *. t
     -. 0.284496736)
    *. t
    +. 0.254829592
  in
  sign *. (1. -. (poly *. t *. exp (-.x *. x)))

let cdf law x =
  match law with
  | Pareto { alpha; xmin } ->
      if x < xmin then 0. else 1. -. Float.pow (xmin /. x) alpha
  | Log_normal { mu; sigma } ->
      if x <= 0. then 0.
      else 0.5 *. (1. +. erf ((log x -. mu) /. (sigma *. Float.sqrt 2.)))

let sample rng = function
  | Pareto { alpha; xmin } -> Rng.pareto rng ~alpha ~xmin
  | Log_normal { mu; sigma } -> exp (Rng.normal rng ~mu ~sigma)

type config = {
  up_law : law;
  down_law : law;
}

let check_config c =
  check_law c.up_law;
  check_law c.down_law

(* Pareto alpha = 1.5 for up sessions gives the infinite-variance tail the
   overnet traces show (median ~30 min, a fat tail of day-long sessions);
   outages are shorter and lighter-tailed. *)
let pareto_day =
  { up_law = Pareto { alpha = 1.5; xmin = 1800. };
    down_law = Pareto { alpha = 2.5; xmin = 120. } }

let lognormal_day =
  { up_law = Log_normal { mu = log 7200.; sigma = 1.2 };
    down_law = Log_normal { mu = log 300.; sigma = 0.8 } }

let config_to_string c =
  Printf.sprintf "up=%s down=%s" (law_to_string c.up_law)
    (law_to_string c.down_law)

type action = Up | Down

let action_to_string = function Up -> "U" | Down -> "D"

type event = {
  time : float;
  entity : int;
  action : action;
}

let m_events = Metrics.counter "churn.trace_events" ~help:"trace churn events generated"
let m_entities = Metrics.counter "churn.trace_entities" ~help:"entities given trace churn sessions"

let compare_event a b =
  match Float.compare a.time b.time with
  | 0 -> (
      match Int.compare a.entity b.entity with
      | 0 -> (
          (* a zero-length outage cannot be sampled (xmin > 0, lognormal
             support is (0, inf)), but keep the order total anyway *)
          match (a.action, b.action) with
          | Down, Up -> -1
          | Up, Down -> 1
          | Up, Up | Down, Down -> 0)
      | c -> c)
  | c -> c

let generate ~rng config ~entities ~duration =
  check_config config;
  if entities < 0 then invalid_arg "Churn.generate: entities < 0";
  if duration <= 0. then invalid_arg "Churn.generate: duration <= 0";
  let streams = Rng.split_n rng entities in
  let events = ref [] in
  for e = 0 to entities - 1 do
    let rng = streams.(e) in
    (* Every entity starts Up at t = 0; its first Down comes after a full
       up-session. Every emitted Down gets its closing Up emitted even
       past the horizon, so a consumer that applies stragglers returns to
       the all-up baseline — the accounting identity the check suite
       asserts. *)
    let t = ref (sample rng config.up_law) in
    while !t < duration do
      let d = sample rng config.down_law in
      events := { time = !t; entity = e; action = Down } :: !events;
      events := { time = !t +. d; entity = e; action = Up } :: !events;
      t := !t +. d +. sample rng config.up_law
    done
  done;
  let sorted = List.stable_sort compare_event (List.rev !events) in
  Metrics.add m_events (List.length sorted);
  Metrics.add m_entities entities;
  sorted

let to_string events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ev ->
       Buffer.add_string buf
         (Printf.sprintf "%.6f %d %s\n" ev.time ev.entity
            (action_to_string ev.action)))
    events;
  Buffer.contents buf

(* Per-entity session durations recovered from a stream: each Down at t
   paired with the entity's next Up at t' yields outage t' - t; each Up at
   t' paired with the next Down yields session length. Used by the check
   suite to tie the emitted stream back to the configured laws. *)
let durations events =
  let last : (int, float * action) Hashtbl.t = Hashtbl.create 64 in
  let ups = ref [] and downs = ref [] in
  List.iter
    (fun ev ->
       (match Hashtbl.find_opt last ev.entity with
        | Some (t0, Down) when ev.action = Up -> downs := (ev.time -. t0) :: !downs
        | Some (t0, Up) when ev.action = Down -> ups := (ev.time -. t0) :: !ups
        | _ -> ());
       Hashtbl.replace last ev.entity (ev.time, ev.action))
    events;
  (List.rev !ups, List.rev !downs)
