(** Static analysis of an AS topology: structural invariants the routing
    model (and every number derived from it) silently assumes.

    These run on a bare {!As_graph.t} — no traffic, no RIBs — so they are
    cheap enough to gate every generated scenario. *)

val relationship_asymmetry : Diag.rule
(** [QS101]: the two directions of a link must agree with
    {!Relationship.invert} — if [b] is [a]'s customer, [a] must be [b]'s
    provider. *)

val graph_disconnected : Diag.rule
(** [QS102]: the topology must be one connected component; an unreachable
    island would make compromise probabilities meaningless. *)

val provider_cycle : Diag.rule
(** [QS103]: the customer→provider digraph must be acyclic (Gao–Rexford
    assumes a provider hierarchy; a cycle of "everyone pays everyone" can
    make valley-free route propagation non-terminating in real BGP). *)

val tier_sanity : Diag.rule
(** [QS104]: tier metadata must match link structure — a Tier-1 has no
    provider, a stub has no customers, a transit should have customers. *)

val rules : Diag.rule list

val check_symmetry : As_graph.t -> Diag.t list
val check_connectivity : As_graph.t -> Diag.t list
val check_provider_acyclicity : As_graph.t -> Diag.t list
val check_tiers : As_graph.t -> Diag.t list

val check : As_graph.t -> Diag.t list
(** All topology analyzers, in rule-code order. *)
