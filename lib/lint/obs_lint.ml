let metric_registry_mismatch =
  { Diag.code = "QS306"; slug = "metric-registry-mismatch";
    severity = Diag.Error;
    doc = "a registry metric name is not in Qs_obs.Manifest, is declared \
           but never registered, or was registered more than once";
    explain =
      "Qs_obs.Manifest is the declared telemetry schema and the live \
       registry is what the code actually registered; dashboards and \
       golden tests key on the manifest, so the two must match exactly. \
       An undeclared metric is invisible to consumers, a declared-but- \
       never-registered one makes exports silently incomplete, and a \
       double registration usually means two modules claimed the same \
       name and their counts are now merged. Names under test. are \
       exempt." }

let rules = [ metric_registry_mismatch ]

(* Instrumented modules register their metrics at module initialization,
   and the linker only initializes modules that some binary actually
   references.  Touching one value per instrumented module here makes
   linking qs_lint sufficient to populate the registry, so QS306 sees
   the same registration set in every binary. *)
let () =
  let force : 'a. 'a -> unit = fun _ -> () in
  force Pool.jobs;
  force Route_cache.zero_stats;
  force Session_reset.default_config;
  force Churn.pareto_day;
  force Consensus_dynamics.default_params;
  force Dynamics.default_config;
  force Hijack.is_captured;
  force Interception.run;
  force Measurement.changes_of;
  force Scenario.sessions;
  force Static_surface.create;
  force Sweep_run.table_string;
  force Span.enabled

let exempt name = String.length name >= 5 && String.sub name 0 5 = "test."

let check ?(manifest = Manifest.names) registrations =
  let declared = List.sort_uniq String.compare manifest in
  let unregistered =
    List.filter
      (fun name -> not (List.mem_assoc name registrations))
      declared
    |> List.map (fun name ->
        Diag.msgf metric_registry_mismatch
          ~context:[ ("metric", name); ("problem", "never-registered") ]
          "manifest metric %s was never registered" name)
  in
  let findings =
    registrations
    |> List.concat_map (fun (name, regs) ->
        if exempt name then []
        else begin
          let undeclared =
            if List.mem name declared then []
            else
              [ Diag.msgf metric_registry_mismatch
                  ~context:[ ("metric", name); ("problem", "undeclared") ]
                  "metric %s is registered but missing from Qs_obs.Manifest"
                  name ]
          in
          let duplicated =
            if regs <= 1 then []
            else
              [ Diag.msgf metric_registry_mismatch
                  ~context:
                    [ ("metric", name); ("problem", "duplicate");
                      ("registrations", string_of_int regs) ]
                  "metric %s was registered %d times" name regs ]
          in
          undeclared @ duplicated
        end)
  in
  findings @ unregistered
