(** QS4xx: static attack-surface rules.

    These rules compare the live pipeline against the valley-free
    reachability bounds of {!Qs_analysis.Static_surface}: anything the
    dynamic side produces that the static side proves impossible is a bug
    by construction (QS401), and statically-dead corners of a scenario —
    disconnected monitored pairs (QS402), deaf vantage points (QS403) —
    mean a measurement is silently measuring nothing. QS404 closes the
    policy-safety gap QS103 leaves: overlays that override the
    prefer-customer rule can re-introduce dispute wheels without any
    provider-link cycle existing. *)

val exposure_bound_violation : Diag.rule (** QS401 *)

val unreachable_monitored_pair : Diag.rule (** QS402 *)

val vantage_dead_zone : Diag.rule (** QS403 *)

val policy_unsafe_overlay : Diag.rule (** QS404 *)

val rules : Diag.rule list

val check_table :
  Static_surface.t -> As_graph.t -> origin:Asn.t -> Propagate.t -> Diag.t list
(** QS401 over a converged table: every AS on the route selected at [x]
    for a prefix originated at [origin] must lie on some valley-free walk
    between [x] and [origin] ({!Static_surface.exposure_bound} membership
    for the pair). *)

val check_stream :
  Static_surface.t ->
  origin_of:(Prefix.t -> Asn.t option) -> Update.t list -> Diag.t list
(** QS401 over an emitted update stream: for each announce recorded on a
    session, the peer and every AS on the carried path must lie inside
    the static exposure bound of (peer, true origin). Prefixes [origin_of]
    does not know are skipped. *)

val check_pairs :
  Static_surface.t -> (Asn.t * Asn.t) list -> Diag.t list
(** QS402: each monitored [(client, guard-origin)] pair must have a
    non-empty static exposure bound — otherwise no policy-compliant path
    can ever join the endpoints and every measurement of the pair is
    vacuous. *)

val check_vantage :
  Static_surface.t -> monitors:Asn.t list -> origins:Asn.t list -> Diag.t list
(** QS403: each collector peer must be able to statically hear routes for
    every monitored origin; a peer deaf to some origins is a vantage dead
    zone for exactly those prefixes. One diagnostic per deaf monitor,
    listing the origins it can never hear. *)

val check_overlay :
  As_graph.t -> (Asn.t * Asn.t) list -> Diag.t list
(** QS404 over a policy overlay, given as directed [(a, via)] entries
    meaning "a community/local-pref override makes [a] prefer routes
    through neighbor [via]". Overriding toward a customer never hurts
    (prefer-customer still holds); entries steering toward a peer or
    provider violate it, and a cycle among such entries is a dispute
    wheel — each AS on it yields its best route whenever its successor
    does, so the system can oscillate forever. Also flags entries whose
    endpoints are not adjacent (the override can never match a real
    route). *)
