let valley_violation =
  { Diag.code = "QS001"; slug = "valley-violation";
    severity = Diag.Error;
    doc = "a RIB path violates the Gao-Rexford valley-free export condition";
    explain =
      "Under the Gao-Rexford model an AS exports routes learned from peers \
       or providers only to its customers, so every selected AS path must \
       read up* peer? down* (climb provider links, cross at most one \
       peering link, then descend customer links). A path with a valley \
       means the propagation engine exported a route its policy forbids, \
       and every measurement derived from that table is suspect." }

let as_path_loop =
  { Diag.code = "QS002"; slug = "as-path-loop";
    severity = Diag.Error;
    doc = "an ASN appears twice (non-adjacently) on an AS path";
    explain =
      "BGP loop detection makes an AS reject any route whose path already \
       carries its own number, so (prepending aside) a selected path can \
       never visit an AS twice. A non-adjacent repetition means loop \
       detection was bypassed somewhere in the propagation engine, which \
       can cascade into forwarding loops and non-terminating convergence." }

let next_hop_inconsistency =
  { Diag.code = "QS003"; slug = "next-hop-inconsistency";
    severity = Diag.Error;
    doc = "an AS's next hop is not adjacent, unrouted, or disagrees on the \
           winning announcement";
    explain =
      "Forwarding must follow routing: an AS's next hop has to be a direct \
       neighbor, hold a route itself, and have selected the same winning \
       announcement (a route always descends from its next hop's route). \
       Any disagreement means the data plane the simulator would walk does \
       not match the control plane it computed, so traceroute-style \
       analyses would cross ASes the RIB never chose." }

let rules = [ valley_violation; as_path_loop; next_hop_inconsistency ]

let collapse_prepends path =
  match path with
  | [] -> []
  | first :: rest ->
      List.rev
        (List.fold_left
           (fun acc a ->
              match acc with
              | prev :: _ when Asn.equal prev a -> acc
              | _ -> a :: acc)
           [ first ] rest)

let path_string path = String.concat " " (List.map Asn.to_string path)

(* First ASN appearing twice in an already-collapsed path, if any. *)
let find_loop path =
  let rec go seen = function
    | [] -> None
    | a :: rest ->
        if Asn.Set.mem a seen then Some a else go (Asn.Set.add a seen) rest
  in
  go Asn.Set.empty path

let check_path g ~prefix path =
  let walk = collapse_prepends path in
  let ctx =
    [ ("prefix", Prefix.to_string prefix); ("path", path_string path) ]
  in
  match find_loop walk with
  | Some a ->
      [ Diag.msgf as_path_loop ~context:(("repeated", Asn.to_string a) :: ctx)
          "%a appears twice on the path for %a" Asn.pp a Prefix.pp prefix ]
  | None ->
      if List.length walk <= 1 || Paths.valley_free g walk then []
      else
        [ Diag.msgf valley_violation ~context:ctx
            "path for %a is not valley-free" Prefix.pp prefix ]

let check_route g (r : Route.t) =
  check_path g ~prefix:r.Route.prefix r.Route.as_path

let check_next_hops ~neighbor ~next_hop ~routed ases =
  ases
  |> List.concat_map (fun a ->
      match next_hop a with
      | None -> []
      | Some nh ->
          let ctx = [ ("as", Asn.to_string a); ("next_hop", Asn.to_string nh) ] in
          if not (neighbor a nh) then
            [ Diag.msgf next_hop_inconsistency ~context:ctx
                "%a forwards to %a, which is not an adjacent AS" Asn.pp a
                Asn.pp nh ]
          else if not (routed nh) then
            [ Diag.msgf next_hop_inconsistency ~context:ctx
                "%a forwards to %a, which has no route" Asn.pp a Asn.pp nh ]
          else [])

let check_table g table =
  let ases = As_graph.ases g in
  let path_diags =
    ases
    |> List.concat_map (fun a ->
        match Propagate.route_at table a with
        | Some r -> check_route g r
        | None -> [])
  in
  let nh_diags =
    check_next_hops
      ~neighbor:(fun a b -> As_graph.relationship g a b <> None)
      ~next_hop:(Propagate.next_hop table)
      ~routed:(Propagate.has_route table) ases
  in
  (* The next hop must have selected the same announcement as the AS it
     serves: a route always descends from its next hop's route. *)
  let src_diags =
    ases
    |> List.concat_map (fun a ->
        match Propagate.next_hop table a with
        | None -> []
        | Some nh -> (
            match
              ( Propagate.winning_announcement table a,
                Propagate.winning_announcement table nh )
            with
            | Some i, Some j when i <> j ->
                [ Diag.msgf next_hop_inconsistency
                    ~context:
                      [ ("as", Asn.to_string a); ("next_hop", Asn.to_string nh);
                        ("as_winner", string_of_int i);
                        ("next_hop_winner", string_of_int j) ]
                    "%a selected announcement %d but its next hop %a selected \
                     %d"
                    Asn.pp a i Asn.pp nh j ]
            | _ -> []))
  in
  path_diags @ nh_diags @ src_diags
