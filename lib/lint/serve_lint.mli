(** QS307: static validation of a [quicksand serve] configuration.

    The serve subsystem lives above this library in the dependency order
    (it needs [Qs_check]), so the rule operates on a dependency-free
    {!config_view} that [Qs_serve.Serve.Config.view] produces; the CLI
    lints its effective config at startup and [Lint.run ?serve_config]
    folds the findings into a whole-scenario pass. *)

type config_view = {
  window : float;
  bucket : float;
  threshold : float;
  slack : float;
  capacity : int;
  chunk : int;
  monitored : (Prefix.t * Prefix.t) list;
      (** (client prefix, guard prefix) pairs the service watches *)
}

val serve_config_invalid : Diag.rule
(** [QS307-serve-config-invalid]. *)

val rules : Diag.rule list

val check : ?scenario:Scenario.t -> config_view -> Diag.t list
(** Structural checks always run (window a positive multiple of bucket,
    threshold within (0, window], slack non-negative, queue/chunk bounds);
    with a [scenario], monitored-pair prefixes must additionally be
    announced — and guard prefixes must host a Tor relay. *)
