(** Static analysis of a fully-built scenario: determinism of the build
    itself and liveness of the measurement apparatus.

    Every table in the paper reproduction is keyed by a seed; if two
    builds from the same seed diverge, no reported number is
    reproducible. And a collector session peering with an AS that does
    not exist (or from an address the peer does not own) silently
    records nothing. *)

val nondeterministic_build : Diag.rule
(** [QS301]: two [Scenario.build] calls with the same seed and size
    produced different fingerprints. *)

val dead_collector_peer : Diag.rule
(** [QS302]: a collector session's peer AS is not present in the
    topology. *)

val collector_peer_ip : Diag.rule
(** [QS303]: a collector session's peer IP is not inside address space
    owned by the peer AS (warning: the collector builder falls back to a
    documentation address when the peer owns no prefix). *)

val update_stream_hygiene : Diag.rule
(** [QS304]: an update stream violated the emission contract — an update
    timestamped outside [\[0, duration\]], or timestamps going backwards.
    {!Dynamics.run} promises both (late-scheduled updates are dropped and
    counted in [post_horizon_dropped], never emitted). *)

val parallel_fingerprint_divergence : Diag.rule
(** [QS305]: {!Scenario.fingerprint} computed over a [jobs = 1] pool and a
    [jobs = 2] pool disagreed — the executor's determinism guarantee is
    broken for this scenario. *)

val rules : Diag.rule list

val check_collectors :
  As_graph.t -> Addressing.t -> Collector.t list -> Diag.t list

val check_update_stream : duration:float -> Update.t list -> Diag.t list
(** Checks a captured update stream (in emission order) against the
    [QS304] contract: every timestamp within [\[0, duration\]] and the
    sequence non-decreasing. *)

val check_determinism : Scenario.t -> Diag.t list
(** Rebuilds the scenario from its own seed and size and compares
    {!Scenario.fingerprint}s. Costs one extra scenario build. *)

val check_parallel_fingerprint :
  ?fingerprint:(exec:Pool.t -> string) -> Scenario.t -> Diag.t list
(** The [QS305] check: computes the scenario fingerprint over a fresh
    [jobs = 1] pool and a fresh [jobs = 2] pool and compares. [fingerprint]
    overrides the digest function (tests use it to force a firing); the
    default is [Scenario.fingerprint ~exec] of the given scenario. *)
