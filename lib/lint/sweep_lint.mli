(** QS308: static validation of the sweep scenario registry.

    Registry entries are pure data ({!Sweep.entry}), so everything that
    can make a [quicksand sweep] run wrong — an unknown key, an
    out-of-range overlay value, an empty axis, an unresolvable or cyclic
    base chain, two cells collapsing onto one identity — is detectable
    without building a single scenario. The rule simply lifts
    {!Sweep.validate_registry}'s findings into diagnostics. *)

val sweep_entry_invalid : Diag.rule
(** [QS308-sweep-entry-invalid]. *)

val rules : Diag.rule list

val check : ?registry:Sweep.entry list -> unit -> Diag.t list
(** Validate [registry] (default {!Sweep.builtin}): one [Error]
    diagnostic per {!Sweep.invalid} finding, carrying the entry name,
    the problem slug and the finding's structured detail as context. *)
