let sweep_entry_invalid =
  { Diag.code = "QS308"; slug = "sweep-entry-invalid";
    severity = Diag.Error;
    doc = "a sweep registry entry cannot expand into a runnable, \
           collision-free matrix of cells";
    explain =
      "The sweep registry is declarative on purpose: an entry is a named \
       overlay on a base entry plus a matrix of axis values, and \
       `quicksand sweep` trusts that expanding it yields cells that are \
       each runnable and pairwise distinct. Everything that can break \
       that promise is static. An unknown key or an unparseable / \
       out-of-range value (a churn model that is not calm|baseline|heavy, \
       an adversary fraction outside [0, 1], a non-positive horizon) \
       would only surface as a crash mid-sweep, hours into the cheap \
       cells; an empty axis makes the cartesian product empty, so the \
       sweep silently runs nothing; a base naming a missing entry, or a \
       base chain that loops, makes the overlay unresolvable; and two \
       cells whose canonical bindings collapse onto the same identity \
       (an axis value repeating the overlay's, or two axis combinations \
       normalizing to one spelling) would run one cell twice and present \
       it as two results — the scenario fingerprint digests exactly these \
       bindings, so duplicate identities mean byte-identical results \
       directories masquerading as distinct measurements. Typical \
       causes: a typo'd key in a hand-added entry, renaming a base \
       without updating its dependents, or adding an axis value already \
       pinned by the overlay." }

let rules = [ sweep_entry_invalid ]

let check ?(registry = Sweep.builtin) () =
  Sweep.validate_registry registry
  |> List.map (fun (i : Sweep.invalid) ->
      Diag.make sweep_entry_invalid
        ~context:
          (("entry", i.Sweep.entry)
           :: ("problem", i.Sweep.problem)
           :: i.Sweep.detail)
        i.Sweep.message)
