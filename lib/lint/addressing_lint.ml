let origin_mismatch =
  { Diag.code = "QS201"; slug = "origin-mismatch";
    severity = Diag.Error;
    doc = "an announcement's origin is not the AS the address plan assigns \
           the prefix to";
    explain =
      "The address plan is the ground truth of who legitimately originates \
       what; the only intentional origin mismatches in this system are the \
       ones the attack modules inject. A baseline announcement whose \
       origin disagrees with the plan is therefore an accidental hijack — \
       it would teach every measurement that bogus routing is normal and \
       poison the hijack-detection baselines." }

let roa_bounds =
  { Diag.code = "QS202"; slug = "roa-bounds";
    severity = Diag.Error;
    doc = "a ROA's max_length is below its prefix length or above 32";
    explain =
      "A ROA authorises an origin for a prefix up to max_length bits. If \
       max_length is shorter than the prefix itself the ROA cannot match \
       anything (even the covered announcement is invalid), and above 32 \
       is meaningless for IPv4 — both shapes silently disable the ROV \
       countermeasure they were meant to configure, so the experiment \
       would measure an undefended network while reporting a defended \
       one." }

let moas_conflict =
  { Diag.code = "QS203"; slug = "moas-conflict";
    severity = Diag.Error;
    doc = "the same prefix is listed with two different origins";
    explain =
      "Multiple-origin-AS prefixes exist on the real Internet, but in \
       this simulator the address plan assigns each prefix exactly one \
       owner, and every legitimate MOAS-looking event must come from an \
       attack module competing with that owner. Two plan-level origins \
       for one prefix make 'who is the victim?' ambiguous, so capture \
       accounting and ROV validation both lose their reference point." }

let relay_coverage =
  { Diag.code = "QS204"; slug = "relay-coverage";
    severity = Diag.Error;
    doc = "a relay's address is unrouted or covered by another AS's prefix";
    explain =
      "Every Tor relay must sit inside a prefix the plan assigns to the \
       AS hosting it: an unrouted relay can never be reached (its guard \
       is dead weight in the consensus), and a relay covered by another \
       AS's prefix means client traffic to it would be delivered to the \
       wrong AS even with no attacker present. Either way, interception \
       results involving that relay measure an address-plan artefact \
       rather than BGP." }

let rules = [ origin_mismatch; roa_bounds; moas_conflict; relay_coverage ]

let check_announcement addressing (a : Announcement.t) =
  let p = a.Announcement.prefix in
  let ctx =
    [ ("prefix", Prefix.to_string p);
      ("origin", Asn.to_string a.Announcement.origin) ]
  in
  match Addressing.origin addressing p with
  | Some owner when Asn.equal owner a.Announcement.origin -> []
  | Some owner ->
      [ Diag.msgf origin_mismatch
          ~context:(("owner", Asn.to_string owner) :: ctx)
          "%a announced by %a but the address plan assigns it to %a" Prefix.pp
          p Asn.pp a.Announcement.origin Asn.pp owner ]
  | None ->
      [ Diag.msgf origin_mismatch ~context:ctx
          "%a announced by %a but is not in the address plan" Prefix.pp p
          Asn.pp a.Announcement.origin ]

let check_roa (roa : Rpki.roa) =
  let len = Prefix.length roa.Rpki.roa_prefix in
  let ctx =
    [ ("roa_prefix", Prefix.to_string roa.Rpki.roa_prefix);
      ("max_length", string_of_int roa.Rpki.max_length);
      ("authorized", Asn.to_string roa.Rpki.authorized) ]
  in
  if roa.Rpki.max_length < len then
    [ Diag.msgf roa_bounds ~context:ctx
        "ROA for %a has max_length %d below its prefix length %d" Prefix.pp
        roa.Rpki.roa_prefix roa.Rpki.max_length len ]
  else if roa.Rpki.max_length > 32 then
    [ Diag.msgf roa_bounds ~context:ctx
        "ROA for %a has max_length %d above 32" Prefix.pp roa.Rpki.roa_prefix
        roa.Rpki.max_length ]
  else []

let check_origins listing =
  let by_prefix = Prefix.Table.create (List.length listing) in
  List.iter
    (fun (p, o) ->
       let prev = Option.value ~default:[] (Prefix.Table.find_opt by_prefix p) in
       Prefix.Table.replace by_prefix p (o :: prev))
    listing;
  List.map fst listing
  |> List.sort_uniq Prefix.compare
  |> List.concat_map (fun p ->
      let origins =
        Prefix.Table.find_opt by_prefix p
        |> Option.value ~default:[]
        |> List.sort_uniq Asn.compare
      in
      match origins with
      | [] | [ _ ] -> []
      | many ->
          [ Diag.msgf moas_conflict
              ~context:
                [ ("prefix", Prefix.to_string p);
                  ("origins",
                   String.concat " " (List.map Asn.to_string many)) ]
              "%a is listed with %d different origins" Prefix.pp p
              (List.length many) ])

let check_relays addressing relays =
  relays
  |> List.concat_map (fun (r : Relay.t) ->
      let ctx =
        [ ("relay", r.Relay.nickname); ("ip", Ipv4.to_string r.Relay.ip);
          ("as", Asn.to_string r.Relay.asn) ]
      in
      match Addressing.covering_prefix addressing r.Relay.ip with
      | None ->
          [ Diag.msgf relay_coverage ~context:ctx
              "relay %s at %a is not covered by any announced prefix"
              r.Relay.nickname Ipv4.pp r.Relay.ip ]
      | Some (p, owner) when not (Asn.equal owner r.Relay.asn) ->
          [ Diag.msgf relay_coverage
              ~context:
                (("covering", Prefix.to_string p)
                 :: ("owner", Asn.to_string owner) :: ctx)
              "relay %s at %a is hosted by %a but covered by %a's prefix %a"
              r.Relay.nickname Ipv4.pp r.Relay.ip Asn.pp r.Relay.asn Asn.pp
              owner Prefix.pp p ]
      | Some _ -> [])

let check addressing consensus =
  let announced = Addressing.announced addressing in
  (* The honest table itself: every listed (prefix, origin) must survive the
     origin lookup and the trie — the two views every consumer uses. *)
  let listing_diags =
    announced
    |> List.concat_map (fun (p, o) ->
        check_announcement addressing (Announcement.originate o p)
        @
        match Prefix_trie.find p (Addressing.trie addressing) with
        | Some o' when Asn.equal o o' -> []
        | _ ->
            [ Diag.msgf origin_mismatch
                ~context:
                  [ ("prefix", Prefix.to_string p); ("origin", Asn.to_string o) ]
                "%a is in the announced listing but the trie disagrees"
                Prefix.pp p ])
  in
  (* Full-deployment ROAs derived from the plan must be well-bounded. *)
  let roa_diags =
    announced
    |> List.concat_map (fun (p, o) ->
        check_roa
          { Rpki.roa_prefix = p; max_length = Prefix.length p; authorized = o })
  in
  listing_diags @ roa_diags @ check_origins announced
  @ check_relays addressing (Array.to_list consensus.Consensus.relays)
