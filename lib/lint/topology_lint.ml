let relationship_asymmetry =
  { Diag.code = "QS101"; slug = "relationship-asymmetry";
    severity = Diag.Error;
    doc = "the two directions of a link disagree with Relationship.invert";
    explain =
      "A business relationship is one fact seen from two sides: if B is \
       A's customer then A must be B's provider, and peering is symmetric. \
       When the two directions of a stored link disagree, export policy \
       becomes direction-dependent — one side applies customer rules while \
       the other applies provider rules — and valley-free reasoning about \
       the graph silently breaks. This is always a topology-construction \
       bug." }

let graph_disconnected =
  { Diag.code = "QS102"; slug = "graph-disconnected";
    severity = Diag.Error;
    doc = "the AS graph is not a single connected component";
    explain =
      "The synthetic Internet must be one connected component: the paper's \
       measurements assume every client AS can in principle reach every \
       guard prefix, and the topology generator is required to wire every \
       stub into the transit hierarchy. An unreachable island makes \
       propagation results for its prefixes vacuous and usually indicates \
       the generator dropped links or ASes on the floor." }

let provider_cycle =
  { Diag.code = "QS103"; slug = "provider-cycle";
    severity = Diag.Error;
    doc = "the customer->provider digraph contains a cycle";
    explain =
      "Money flows up: the customer-to-provider digraph must be acyclic, \
       both economically (someone in a cycle pays themselves) and \
       technically — Gao-Rexford convergence proofs require a provider \
       DAG, and the valley-free closure's customer-cone arguments assume \
       it. A cycle can make the routing system oscillate forever, so it \
       is rejected outright rather than simulated. See QS404 for the \
       overlay-level analogue this check cannot see." }

let tier_sanity =
  { Diag.code = "QS104"; slug = "tier-sanity";
    severity = Diag.Warn;
    doc = "an AS's tier metadata contradicts its link structure";
    explain =
      "Tier metadata drives relay placement and adversary selection, so \
       it should agree with the link structure: a Tier1 has no providers \
       and peers with the other Tier1s, a stub has no customers, and a \
       transit AS has both providers and customers. A contradiction does \
       not break routing — relationships, not tiers, drive export policy \
       — but it skews any analysis that samples ASes by tier, hence a \
       warning rather than an error." }

let rules =
  [ relationship_asymmetry; graph_disconnected; provider_cycle; tier_sanity ]

let check_symmetry g =
  As_graph.ases g
  |> List.concat_map (fun a ->
      As_graph.neighbors g a
      |> List.filter_map (fun (b, rel) ->
          if Asn.compare a b >= 0 then None
          else
            let expected = Relationship.invert rel in
            match As_graph.relationship g b a with
            | Some rel' when Relationship.equal rel' expected -> None
            | Some rel' ->
                Some
                  (Diag.msgf relationship_asymmetry
                     ~context:
                       [ ("a", Asn.to_string a); ("b", Asn.to_string b);
                         ("a_sees", Relationship.to_string rel);
                         ("b_sees", Relationship.to_string rel') ]
                     "link %a--%a: %a sees a %s but %a sees a %s (expected %s)"
                     Asn.pp a Asn.pp b Asn.pp a (Relationship.to_string rel)
                     Asn.pp b (Relationship.to_string rel')
                     (Relationship.to_string expected))
            | None ->
                Some
                  (Diag.msgf relationship_asymmetry
                     ~context:[ ("a", Asn.to_string a); ("b", Asn.to_string b) ]
                     "link %a--%a exists for %a but not for %a" Asn.pp a
                     Asn.pp b Asn.pp a Asn.pp b)))

let check_connectivity g =
  if Paths.connected g then []
  else
    [ Diag.msgf graph_disconnected
        ~context:[ ("ases", string_of_int (As_graph.num_ases g)) ]
        "the %d-AS graph is not connected" (As_graph.num_ases g) ]

(* DFS over customer->provider edges with the classic three colours; a
   back-edge to an in-progress AS closes a payment cycle. One diagnostic
   per back-edge found. *)
let check_provider_acyclicity g =
  let state = Asn.Table.create (As_graph.num_ases g) in
  let diags = ref [] in
  let rec visit stack a =
    match Asn.Table.find_opt state a with
    | Some `Done -> ()
    | Some `Active ->
        let rec cycle acc = function
          | [] -> List.rev acc
          | x :: rest ->
              if Asn.equal x a then List.rev (x :: acc) else cycle (x :: acc) rest
        in
        let members = cycle [] stack @ [ a ] in
        diags :=
          Diag.msgf provider_cycle
            ~context:
              [ ("cycle",
                 String.concat " -> " (List.map Asn.to_string members)) ]
            "provider cycle through %a (%d ASes pay each other in a loop)"
            Asn.pp a (List.length members - 1)
          :: !diags
    | None ->
        Asn.Table.replace state a `Active;
        List.iter (visit (a :: stack)) (As_graph.providers g a);
        Asn.Table.replace state a `Done
  in
  List.iter (visit []) (As_graph.ases g);
  List.rev !diags

let check_tiers g =
  As_graph.ases g
  |> List.concat_map (fun a ->
      let info = As_graph.info g a in
      let ctx = [ ("as", Asn.to_string a); ("name", info.As_graph.name) ] in
      match info.As_graph.tier with
      | As_graph.Tier1 ->
          if As_graph.providers g a = [] then []
          else
            [ Diag.msgf tier_sanity ~context:ctx
                "Tier-1 %a has a provider (the core is default-free)" Asn.pp a ]
      | As_graph.Stub ->
          if As_graph.customers g a = [] then []
          else
            [ Diag.msgf tier_sanity ~context:ctx
                "stub %a has %d customer(s) (stubs sit at the edge)" Asn.pp a
                (List.length (As_graph.customers g a)) ]
      | As_graph.Transit ->
          if As_graph.customers g a <> [] then []
          else
            [ Diag.msgf tier_sanity ~context:ctx
                "transit %a has no customers" Asn.pp a ])

let check g =
  check_symmetry g @ check_connectivity g @ check_provider_acyclicity g
  @ check_tiers g
