let relationship_asymmetry =
  { Diag.code = "QS101"; slug = "relationship-asymmetry";
    severity = Diag.Error;
    doc = "the two directions of a link disagree with Relationship.invert" }

let graph_disconnected =
  { Diag.code = "QS102"; slug = "graph-disconnected";
    severity = Diag.Error;
    doc = "the AS graph is not a single connected component" }

let provider_cycle =
  { Diag.code = "QS103"; slug = "provider-cycle";
    severity = Diag.Error;
    doc = "the customer->provider digraph contains a cycle" }

let tier_sanity =
  { Diag.code = "QS104"; slug = "tier-sanity";
    severity = Diag.Warn;
    doc = "an AS's tier metadata contradicts its link structure" }

let rules =
  [ relationship_asymmetry; graph_disconnected; provider_cycle; tier_sanity ]

let check_symmetry g =
  As_graph.ases g
  |> List.concat_map (fun a ->
      As_graph.neighbors g a
      |> List.filter_map (fun (b, rel) ->
          if Asn.compare a b >= 0 then None
          else
            let expected = Relationship.invert rel in
            match As_graph.relationship g b a with
            | Some rel' when Relationship.equal rel' expected -> None
            | Some rel' ->
                Some
                  (Diag.msgf relationship_asymmetry
                     ~context:
                       [ ("a", Asn.to_string a); ("b", Asn.to_string b);
                         ("a_sees", Relationship.to_string rel);
                         ("b_sees", Relationship.to_string rel') ]
                     "link %a--%a: %a sees a %s but %a sees a %s (expected %s)"
                     Asn.pp a Asn.pp b Asn.pp a (Relationship.to_string rel)
                     Asn.pp b (Relationship.to_string rel')
                     (Relationship.to_string expected))
            | None ->
                Some
                  (Diag.msgf relationship_asymmetry
                     ~context:[ ("a", Asn.to_string a); ("b", Asn.to_string b) ]
                     "link %a--%a exists for %a but not for %a" Asn.pp a
                     Asn.pp b Asn.pp a Asn.pp b)))

let check_connectivity g =
  if Paths.connected g then []
  else
    [ Diag.msgf graph_disconnected
        ~context:[ ("ases", string_of_int (As_graph.num_ases g)) ]
        "the %d-AS graph is not connected" (As_graph.num_ases g) ]

(* DFS over customer->provider edges with the classic three colours; a
   back-edge to an in-progress AS closes a payment cycle. One diagnostic
   per back-edge found. *)
let check_provider_acyclicity g =
  let state = Asn.Table.create (As_graph.num_ases g) in
  let diags = ref [] in
  let rec visit stack a =
    match Asn.Table.find_opt state a with
    | Some `Done -> ()
    | Some `Active ->
        let rec cycle acc = function
          | [] -> List.rev acc
          | x :: rest ->
              if Asn.equal x a then List.rev (x :: acc) else cycle (x :: acc) rest
        in
        let members = cycle [] stack @ [ a ] in
        diags :=
          Diag.msgf provider_cycle
            ~context:
              [ ("cycle",
                 String.concat " -> " (List.map Asn.to_string members)) ]
            "provider cycle through %a (%d ASes pay each other in a loop)"
            Asn.pp a (List.length members - 1)
          :: !diags
    | None ->
        Asn.Table.replace state a `Active;
        List.iter (visit (a :: stack)) (As_graph.providers g a);
        Asn.Table.replace state a `Done
  in
  List.iter (visit []) (As_graph.ases g);
  List.rev !diags

let check_tiers g =
  As_graph.ases g
  |> List.concat_map (fun a ->
      let info = As_graph.info g a in
      let ctx = [ ("as", Asn.to_string a); ("name", info.As_graph.name) ] in
      match info.As_graph.tier with
      | As_graph.Tier1 ->
          if As_graph.providers g a = [] then []
          else
            [ Diag.msgf tier_sanity ~context:ctx
                "Tier-1 %a has a provider (the core is default-free)" Asn.pp a ]
      | As_graph.Stub ->
          if As_graph.customers g a = [] then []
          else
            [ Diag.msgf tier_sanity ~context:ctx
                "stub %a has %d customer(s) (stubs sit at the edge)" Asn.pp a
                (List.length (As_graph.customers g a)) ]
      | As_graph.Transit ->
          if As_graph.customers g a <> [] then []
          else
            [ Diag.msgf tier_sanity ~context:ctx
                "transit %a has no customers" Asn.pp a ])

let check g =
  check_symmetry g @ check_connectivity g @ check_provider_acyclicity g
  @ check_tiers g
