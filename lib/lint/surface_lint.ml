let exposure_bound_violation =
  { Diag.code = "QS401"; slug = "exposure-bound-violation";
    severity = Diag.Error;
    doc = "a selected path or emitted update carries an AS outside the \
           static valley-free exposure bound of its (receiver, origin) pair";
    explain =
      "The valley-free closure over the intact graph over-approximates \
       every path the Gao-Rexford engine can ever select, under any churn \
       state, failure pattern or tie-break: an AS can sit between a \
       receiver and an origin only if it lies on some valley-free walk \
       joining them. A dynamic path that escapes this bound is therefore \
       a propagation bug by construction — an illegal export, a corrupted \
       path attribute, or a closure bug — never a legitimate route. The \
       'static' differential suite audits the same containment across \
       whole simulated days." }

let unreachable_monitored_pair =
  { Diag.code = "QS402"; slug = "unreachable-monitored-pair";
    severity = Diag.Warn;
    doc = "a monitored (client, guard) pair has an empty static exposure \
           bound";
    explain =
      "If no valley-free walk joins a client AS to a guard's origin AS, \
       then no policy-compliant path between them can ever exist: the \
       client can never build a circuit through that guard, no hijack of \
       the pair is meaningful, and every per-pair statistic is vacuously \
       zero. Such pairs usually indicate a topology whose transit \
       hierarchy strands one endpoint (physical connectivity is not \
       enough — the walk must be exportable), and they silently deflate \
       aggregate attack-surface numbers." }

let vantage_dead_zone =
  { Diag.code = "QS403"; slug = "vantage-dead-zone";
    severity = Diag.Warn;
    doc = "a collector peer can statically never hear routes for one or \
           more monitored Tor prefixes";
    explain =
      "A collector session only sees what its peer AS selects, and the \
       peer can only select a route for a prefix it can hear — i.e. the \
       peer must lie in the valley-free forward closure of the prefix's \
       origin. A peer outside that closure is a dead vantage point for \
       the prefix: it will record nothing about hijacks of it, however \
       long the measurement runs, and visibility statistics that assume \
       it could have seen the event undercount the attack. The fix is a \
       better-placed session, not a longer measurement." }

let policy_unsafe_overlay =
  { Diag.code = "QS404"; slug = "policy-unsafe-overlay";
    severity = Diag.Error;
    doc = "a policy overlay forms a cycle of non-customer preference \
           overrides (a dispute wheel QS103 cannot see)";
    explain =
      "Gao-Rexford stability rests on two legs: the provider DAG (QS103) \
       and prefer-customer route selection. Communities and local-pref \
       overlays can break the second leg without touching any link: if \
       each AS in a ring prefers the route through its peer or provider \
       neighbour in the ring, the ring is a dispute wheel — every AS \
       abandons its stable route when its successor does, and BGP can \
       oscillate forever (the classic BAD GADGET). Overrides toward \
       customers are always safe and are ignored here; overrides between \
       non-adjacent ASes can never match a real route and are flagged \
       too." }

let rules =
  [ exposure_bound_violation; unreachable_monitored_pair; vantage_dead_zone;
    policy_unsafe_overlay ]

let audit_route surface ~receiver ~origin (r : Route.t) ~where ctx =
  let src = Static_surface.closure surface receiver in
  let dst = Static_surface.closure surface origin in
  Route.as_set r
  |> Asn.Set.add receiver
  |> Asn.Set.elements
  |> List.filter_map (fun x ->
      if Reach.on_some_path ~src ~dst x then None
      else
        Some
          (Diag.msgf exposure_bound_violation
             ~context:
               (("escapee", Asn.to_string x)
                :: ("receiver", Asn.to_string receiver)
                :: ("origin", Asn.to_string origin)
                :: ctx)
             "%s: %a is on the %a -> %a path but outside the static \
              exposure bound"
             where Asn.pp x Asn.pp receiver Asn.pp origin))

let check_table surface g ~origin table =
  As_graph.ases g
  |> List.concat_map (fun a ->
      match Propagate.route_at table a with
      | None -> []
      | Some r ->
          audit_route surface ~receiver:a ~origin r ~where:"RIB"
            [ ("prefix", Prefix.to_string r.Route.prefix) ])

let check_stream surface ~origin_of updates =
  updates
  |> List.concat_map (fun (u : Update.t) ->
      match u.Update.kind with
      | Update.Withdraw _ -> []
      | Update.Announce r -> (
          match origin_of r.Route.prefix with
          | None -> []
          | Some origin ->
              audit_route surface ~receiver:u.Update.session.Update.peer
                ~origin r ~where:"update"
                [ ("prefix", Prefix.to_string r.Route.prefix);
                  ("time", string_of_float u.Update.time);
                  ("session", u.Update.session.Update.collector) ]))

let check_pairs surface pairs =
  pairs
  |> List.filter_map (fun (client, guard) ->
      if Static_surface.pair_connected surface ~client ~guard then None
      else
        Some
          (Diag.msgf unreachable_monitored_pair
             ~context:
               [ ("client", Asn.to_string client);
                 ("guard", Asn.to_string guard) ]
             "no valley-free path can ever join client %a to guard origin \
              %a"
             Asn.pp client Asn.pp guard))

let check_vantage surface ~monitors ~origins =
  monitors
  |> List.filter_map (fun m ->
      let deaf =
        List.filter
          (fun o -> not (Static_surface.can_hear surface ~listener:m ~origin:o))
          origins
      in
      match deaf with
      | [] -> None
      | _ ->
          Some
            (Diag.msgf vantage_dead_zone
               ~context:
                 [ ("monitor", Asn.to_string m);
                   ("deaf_to",
                    String.concat " " (List.map Asn.to_string deaf));
                   ("origins", string_of_int (List.length origins)) ]
               "collector peer %a can never hear %d of %d monitored \
                origins"
               Asn.pp m (List.length deaf) (List.length origins)))

let check_overlay g overlay =
  let adjacency =
    overlay
    |> List.filter_map (fun (a, via) ->
        match As_graph.relationship g a via with
        | None -> None
        | Some Relationship.Customer -> None (* prefer-customer still holds *)
        | Some (Relationship.Peer | Relationship.Provider) -> Some (a, via))
  in
  let non_adjacent =
    overlay
    |> List.filter_map (fun (a, via) ->
        match As_graph.relationship g a via with
        | Some _ -> None
        | None ->
            Some
              (Diag.msgf policy_unsafe_overlay
                 ~context:
                   [ ("as", Asn.to_string a); ("via", Asn.to_string via) ]
                 "overlay steers %a via %a, but they are not adjacent"
                 Asn.pp a Asn.pp via))
  in
  (* DFS with three colours over the risky-override digraph; a back-edge
     closes a preference ring = dispute wheel (same shape as QS103's
     payment-cycle check, one level up the policy stack). *)
  let succ a =
    List.filter_map
      (fun (x, via) -> if Asn.equal x a then Some via else None)
      adjacency
  in
  let state = Asn.Table.create 16 in
  let diags = ref [] in
  let rec visit stack a =
    match Asn.Table.find_opt state a with
    | Some `Done -> ()
    | Some `Active ->
        let rec cycle acc = function
          | [] -> List.rev acc
          | x :: rest ->
              if Asn.equal x a then List.rev (x :: acc) else cycle (x :: acc) rest
        in
        let members = cycle [] stack @ [ a ] in
        diags :=
          Diag.msgf policy_unsafe_overlay
            ~context:
              [ ("wheel",
                 String.concat " -> " (List.map Asn.to_string members)) ]
            "dispute wheel: %d ASes override prefer-customer in a ring \
             through %a"
            (List.length members - 1) Asn.pp a
          :: !diags
    | None ->
        Asn.Table.replace state a `Active;
        List.iter (visit (a :: stack)) (succ a);
        Asn.Table.replace state a `Done
  in
  List.iter (fun (a, _) -> visit [] a) adjacency;
  non_adjacent @ List.rev !diags
