(** Static analysis of computed BGP state: every path in a RIB must be
    valley-free (Gao–Rexford export discipline), loop-free, and the
    forwarding next-hops must be mutually consistent.

    The checkers take explicit paths/routes rather than only a
    {!Propagate.t}, so the test suite can inject forged violations (a
    valley route, a looped AS path) and prove the rules fire. *)

val valley_violation : Diag.rule
(** [QS001]: an AS path violates the valley-free export condition —
    uphill, at most one peering step, then downhill — or crosses an
    unlinked AS pair. *)

val as_path_loop : Diag.rule
(** [QS002]: an ASN appears twice on a path at non-adjacent positions
    (adjacent repeats are prepending, which is legitimate). BGP loop
    detection should make this impossible in honest state. *)

val next_hop_inconsistency : Diag.rule
(** [QS003]: an AS's forwarding next hop is not an adjacent AS, has no
    route itself, or selected a different announcement than the AS it
    serves — traffic would be blackholed or misattributed. *)

val rules : Diag.rule list

val collapse_prepends : Asn.t list -> Asn.t list
(** Removes adjacent duplicate ASNs: the path as walked, prepending
    stripped. *)

val check_path : As_graph.t -> prefix:Prefix.t -> Asn.t list -> Diag.t list
(** Valley-freeness and loop-freeness of one AS path (receiver first,
    origin last). If a loop is found, the valley check is skipped — a
    looped path always also fails the relationship walk. *)

val check_route : As_graph.t -> Route.t -> Diag.t list

val check_next_hops :
  neighbor:(Asn.t -> Asn.t -> bool) ->
  next_hop:(Asn.t -> Asn.t option) ->
  routed:(Asn.t -> bool) ->
  Asn.t list -> Diag.t list
(** Next-hop consistency over an abstract forwarding view, so violations
    can be injected in tests. [neighbor a b] = adjacency, [next_hop a] =
    where [a] forwards ([None] for origins and unrouted ASes), [routed a]
    = whether [a] has any route. *)

val check_table : As_graph.t -> Propagate.t -> Diag.t list
(** All routing analyzers over one computed prefix table: every exported
    path, plus next-hop and winning-announcement consistency. *)
