(** Static analysis of the address plan and RPKI material: announcements
    must originate from the AS that owns the prefix, ROAs must be
    well-bounded, no prefix may have conflicting origins, and every Tor
    relay must sit inside announced space.

    A violation here skews every downstream number: a relay on an
    unrouted prefix silently disappears from the attack surface, a
    wrong-origin announcement is an accidental hijack baked into the
    "honest" table. *)

val origin_mismatch : Diag.rule
(** [QS201]: an announcement's origin AS is not the AS the address plan
    assigns the prefix to (or the prefix is not in the plan at all). *)

val roa_bounds : Diag.rule
(** [QS202]: a ROA's [max_length] is below its prefix length or above 32
    — such a ROA authorizes nothing or everything. *)

val moas_conflict : Diag.rule
(** [QS203]: the same prefix is listed with two different origins
    (multi-origin AS conflict) in the address plan. *)

val relay_coverage : Diag.rule
(** [QS204]: a relay's address is not covered by any announced prefix, or
    its covering prefix belongs to a different AS than the consensus
    claims hosts the relay. *)

val rules : Diag.rule list

val check_announcement : Addressing.t -> Announcement.t -> Diag.t list
val check_roa : Rpki.roa -> Diag.t list

val check_origins : (Prefix.t * Asn.t) list -> Diag.t list
(** MOAS conflicts in an explicit (prefix, origin) listing. *)

val check_relays : Addressing.t -> Relay.t list -> Diag.t list

val check : Addressing.t -> Consensus.t -> Diag.t list
(** All addressing analyzers over a scenario's address plan and
    consensus, including trie/listing consistency and the full-deployment
    ROA set derived from the plan. *)
