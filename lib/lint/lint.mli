(** The diagnostics engine's front door: the rule registry and the
    whole-scenario driver behind [quicksand lint].

    Analyzers verify the routing world {e statically} — no traffic is
    simulated. The driver recomputes the honest per-prefix BGP tables
    (sampled if the plan is huge) and runs every registered analyzer over
    topology, RIBs, addressing/RPKI material and the scenario build
    itself. See DESIGN.md "Static checks" for the rule catalogue and how
    to add an analyzer. *)

val all_rules : Diag.rule list
(** Every registered rule, in code order. *)

val find_rule : string -> Diag.rule option
(** Look a rule up by code ("QS001"), slug ("valley-violation") or
    combined id ("QS001-valley-violation"), case-insensitively. *)

val select : rules:string list -> Diag.t list -> Diag.t list
(** Keep only diagnostics of the selected rules.
    @raise Invalid_argument if a selector matches no registered rule. *)

val run :
  ?rules:string list -> ?max_prefixes:int -> ?determinism:bool ->
  ?serve_config:Serve_lint.config_view ->
  ?exec:Pool.t -> Scenario.t -> Diag.t list
(** Run every analyzer over a scenario and return the findings,
    filtered to [rules] when given. [max_prefixes] (default 512) bounds
    how many announced prefixes get their routing table recomputed and
    checked — prefixes are sampled evenly and deterministically beyond
    that. [serve_config] additionally runs the QS307 serve-config checks
    against the scenario (the CLI passes its effective serve config). [determinism] (default [true]) enables the rebuild-and-compare
    check (one extra scenario build) and the [QS305] jobs=1-vs-jobs=2
    fingerprint comparison. The per-prefix table recomputations run as
    tasks on [exec] (default {!Pool.default}), each domain using its own
    scratch workspace; sampled-prefix order is preserved, so the findings
    are identical at any worker count.
    @raise Invalid_argument if [max_prefixes] is not positive. *)
