type severity = Info | Warn | Error

let severity_to_string = function
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let severity_of_string = function
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity_rank = function Info -> 0 | Warn -> 1 | Error -> 2

let compare_severity a b = Int.compare (severity_rank a) (severity_rank b)

type rule = {
  code : string;
  slug : string;
  severity : severity;
  doc : string;
  explain : string;
}

let rule_id r = r.code ^ "-" ^ r.slug

let matches_rule r selector =
  let s = String.lowercase_ascii selector in
  String.equal s (String.lowercase_ascii r.code)
  || String.equal s r.slug
  || String.equal s (String.lowercase_ascii (rule_id r))

type t = {
  rule : rule;
  message : string;
  context : (string * string) list;
}

let make rule ?(context = []) message = { rule; message; context }

let msgf rule ?context fmt = Format.kasprintf (make rule ?context) fmt

let count sev diags =
  List.length (List.filter (fun d -> d.rule.severity = sev) diags)

let errors = count Error
let warnings = count Warn

let pp ppf d =
  Format.fprintf ppf "%s %s %s: %s" d.rule.code d.rule.slug
    (severity_to_string d.rule.severity) d.message;
  match d.context with
  | [] -> ()
  | ctx ->
      Format.fprintf ppf " (%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf (k, v) -> Format.fprintf ppf "%s=%s" k v))
        ctx

let report_text ppf diags =
  List.iter (fun d -> Format.fprintf ppf "%a@." pp d) diags;
  Format.fprintf ppf "lint: %d error(s), %d warning(s), %d info(s)@."
    (errors diags) (warnings diags) (count Info diags)

(* ---- JSON ------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
           Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string ppf s = Format.fprintf ppf "\"%s\"" (json_escape s)

let json_diag ppf d =
  Format.fprintf ppf
    "{\"code\":%a,\"slug\":%a,\"severity\":%a,\"message\":%a,\"context\":{%a}}"
    json_string d.rule.code json_string d.rule.slug
    json_string (severity_to_string d.rule.severity)
    json_string d.message
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       (fun ppf (k, v) -> Format.fprintf ppf "%a:%a" json_string k json_string v))
    d.context

let report_json ppf diags =
  Format.fprintf ppf "[%a]@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@\n ")
       json_diag)
    diags

let exit_code ~fail_on diags =
  if List.exists (fun d -> compare_severity d.rule.severity fail_on >= 0) diags
  then 1
  else 0
