let all_rules =
  Routing_lint.rules @ Topology_lint.rules @ Addressing_lint.rules
  @ Scenario_lint.rules @ Obs_lint.rules @ Surface_lint.rules
  @ Serve_lint.rules @ Sweep_lint.rules

let find_rule selector =
  List.find_opt (fun r -> Diag.matches_rule r selector) all_rules

let select ~rules diags =
  let selected =
    List.map
      (fun selector ->
         match find_rule selector with
         | Some r -> r.Diag.code
         | None ->
             invalid_arg
               (Printf.sprintf "Lint.select: unknown rule %S" selector))
      rules
  in
  List.filter (fun d -> List.mem d.Diag.rule.Diag.code selected) diags

(* Evenly-spaced deterministic sample: lint must not add randomness of its
   own, or a clean run would not be reproducible. *)
let sample_prefixes ~max_prefixes listing =
  if max_prefixes <= 0 then
    invalid_arg "Lint.sample_prefixes: max_prefixes must be positive";
  let n = List.length listing in
  if n <= max_prefixes then listing
  else
    let k = (n + max_prefixes - 1) / max_prefixes in
    List.filteri (fun i _ -> i mod k = 0) listing

let run ?rules ?(max_prefixes = 512) ?(determinism = true) ?serve_config
    ?exec (s : Scenario.t) =
  let pool = match exec with Some p -> p | None -> Pool.default () in
  let g = s.Scenario.graph in
  let topology = Topology_lint.check g in
  (* Per-prefix tables are recomputed as pool tasks. Each domain gets its
     own scratch workspace ("one workspace per domain", see
     [Propagate.Workspace]); the table must be checked inside the task
     that computed it, because the next compute through the same
     workspace clobbers it. [Pool.map_list] keeps sampled-prefix order,
     so the diagnostics come out in the same order at any worker count. *)
  let workspaces = Pool.per_domain Propagate.Workspace.create in
  let surfaces =
    Pool.per_domain (fun () -> Static_surface.create s.Scenario.indexed)
  in
  let routing =
    sample_prefixes ~max_prefixes (Addressing.announced s.Scenario.addressing)
    |> Pool.map_list pool (fun (p, o) ->
        let table =
          Propagate.compute s.Scenario.indexed
            ~workspace:(Pool.get workspaces)
            [ Announcement.originate o p ]
        in
        Routing_lint.check_table g table
        @ Surface_lint.check_table (Pool.get surfaces) g ~origin:o table)
    |> List.concat
  in
  let addressing = Addressing_lint.check s.Scenario.addressing s.Scenario.consensus in
  let scenario =
    Scenario_lint.check_collectors g s.Scenario.addressing s.Scenario.collectors
    @ (if determinism then
         Scenario_lint.check_determinism s
         @ Scenario_lint.check_parallel_fingerprint s
       else [])
  in
  let obs = Obs_lint.check (Metrics.registrations ()) in
  (* Static-surface sweep over a deterministic evenly-spaced sample of
     plausible monitored pairs: stub client ASes hosting no relays,
     crossed with the guard-prefix origin ASes. Cheap (one cached closure
     per sampled AS) and random-free, like the prefix sample above. *)
  let surface =
    let surf = Pool.get surfaces in
    let evenly ~max_items l = sample_prefixes ~max_prefixes:max_items l in
    let clients =
      As_graph.ases g
      |> List.filter (fun a ->
          (As_graph.info g a).As_graph.tier = As_graph.Stub
          && Consensus.relays_in s.Scenario.consensus a = [])
      |> evenly ~max_items:8
    in
    let origins =
      Asn.Set.elements (Tor_prefix.origin_ases s.Scenario.tor_prefixes)
      |> evenly ~max_items:8
    in
    let pairs =
      List.concat_map (fun c -> List.map (fun o -> (c, o)) origins) clients
    in
    Surface_lint.check_pairs surf pairs
    @ Surface_lint.check_vantage surf ~monitors:(Scenario.monitors s) ~origins
    @ Surface_lint.check_overlay g []
  in
  let serve =
    match serve_config with
    | None -> []
    | Some view -> Serve_lint.check ~scenario:s view
  in
  let sweep = Sweep_lint.check () in
  let diags =
    routing @ topology @ addressing @ scenario @ obs @ surface @ serve
    @ sweep
  in
  match rules with None -> diags | Some rules -> select ~rules diags
