let all_rules =
  Routing_lint.rules @ Topology_lint.rules @ Addressing_lint.rules
  @ Scenario_lint.rules @ Obs_lint.rules

let find_rule selector =
  List.find_opt (fun r -> Diag.matches_rule r selector) all_rules

let select ~rules diags =
  let selected =
    List.map
      (fun selector ->
         match find_rule selector with
         | Some r -> r.Diag.code
         | None ->
             invalid_arg
               (Printf.sprintf "Lint.select: unknown rule %S" selector))
      rules
  in
  List.filter (fun d -> List.mem d.Diag.rule.Diag.code selected) diags

(* Evenly-spaced deterministic sample: lint must not add randomness of its
   own, or a clean run would not be reproducible. *)
let sample_prefixes ~max_prefixes listing =
  if max_prefixes <= 0 then
    invalid_arg "Lint.sample_prefixes: max_prefixes must be positive";
  let n = List.length listing in
  if n <= max_prefixes then listing
  else
    let k = (n + max_prefixes - 1) / max_prefixes in
    List.filteri (fun i _ -> i mod k = 0) listing

let run ?rules ?(max_prefixes = 512) ?(determinism = true) ?exec
    (s : Scenario.t) =
  let pool = match exec with Some p -> p | None -> Pool.default () in
  let g = s.Scenario.graph in
  let topology = Topology_lint.check g in
  (* Per-prefix tables are recomputed as pool tasks. Each domain gets its
     own scratch workspace ("one workspace per domain", see
     [Propagate.Workspace]); the table must be checked inside the task
     that computed it, because the next compute through the same
     workspace clobbers it. [Pool.map_list] keeps sampled-prefix order,
     so the diagnostics come out in the same order at any worker count. *)
  let workspaces = Pool.per_domain Propagate.Workspace.create in
  let routing =
    sample_prefixes ~max_prefixes (Addressing.announced s.Scenario.addressing)
    |> Pool.map_list pool (fun (p, o) ->
        let table =
          Propagate.compute s.Scenario.indexed
            ~workspace:(Pool.get workspaces)
            [ Announcement.originate o p ]
        in
        Routing_lint.check_table g table)
    |> List.concat
  in
  let addressing = Addressing_lint.check s.Scenario.addressing s.Scenario.consensus in
  let scenario =
    Scenario_lint.check_collectors g s.Scenario.addressing s.Scenario.collectors
    @ (if determinism then
         Scenario_lint.check_determinism s
         @ Scenario_lint.check_parallel_fingerprint s
       else [])
  in
  let obs = Obs_lint.check (Metrics.registrations ()) in
  let diags = routing @ topology @ addressing @ scenario @ obs in
  match rules with None -> diags | Some rules -> select ~rules diags
