(** Lint diagnostics: stable rule codes, severities, reporters and the
    exit-code policy shared by [quicksand lint] and the test suite.

    A {e rule} is a statically-registered invariant with a stable code
    (["QS001"]) and slug (["valley-violation"]); a {e diagnostic} is one
    violation of a rule, carrying a human-readable message plus structured
    context (key/value pairs) that the JSON reporter emits
    machine-readably. Rule codes are append-only: once shipped, a code
    never changes meaning, so downstream tooling can filter on them. *)

type severity = Info | Warn | Error

val severity_to_string : severity -> string
val severity_of_string : string -> severity option

val compare_severity : severity -> severity -> int
(** Orders [Info < Warn < Error]. *)

type rule = {
  code : string;      (** stable identifier, e.g. ["QS001"] *)
  slug : string;      (** human-readable slug, e.g. ["valley-violation"] *)
  severity : severity; (** severity of every finding of this rule *)
  doc : string;       (** one-line description, shown by [--list-rules] *)
  explain : string;
      (** one-paragraph rationale — what invariant the rule guards, why a
          finding is a bug, and what typically causes one; shown by
          [quicksand lint --explain CODE] *)
}

val rule_id : rule -> string
(** ["QS001-valley-violation"] — the fully-qualified form. Rules can be
    selected by code, slug, or this combined id. *)

val matches_rule : rule -> string -> bool
(** Whether a user-supplied selector (code, slug or combined id,
    case-insensitive) designates this rule. *)

type t = {
  rule : rule;
  message : string;
  context : (string * string) list;
}

val make : rule -> ?context:(string * string) list -> string -> t

val msgf :
  rule -> ?context:(string * string) list ->
  ('a, Format.formatter, unit, t) format4 -> 'a
(** [msgf rule ~context fmt ...] formats the message inline. *)

val count : severity -> t list -> int
val errors : t list -> int
val warnings : t list -> int

val pp : Format.formatter -> t -> unit
(** One-line text rendering:
    [QS001 valley-violation error: message (k=v, k=v)]. *)

val report_text : Format.formatter -> t list -> unit
(** Every diagnostic on its own line, then a one-line count summary. *)

val report_json : Format.formatter -> t list -> unit
(** A JSON array of [{code, slug, severity, message, context}] objects;
    [context] is an object with string values. No external JSON library is
    used — the encoder escapes per RFC 8259. *)

val exit_code : fail_on:severity -> t list -> int
(** [0] if no diagnostic reaches severity [fail_on], [1] otherwise —
    the exit-code policy of [quicksand lint]. *)
