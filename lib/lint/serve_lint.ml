let serve_config_invalid =
  { Diag.code = "QS307"; slug = "serve-config-invalid";
    severity = Diag.Error;
    doc = "a quicksand-serve configuration is internally inconsistent or \
           monitors prefixes the scenario does not announce";
    explain =
      "The serve subsystem's correctness argument leans on three static \
       relations between its knobs: the window must be a positive \
       multiple of the bucket width (the ring buffer has exactly \
       window/bucket slots, so a remainder would silently shrink the \
       window); the extra-AS threshold must lie within (0, window] (a \
       threshold beyond the window could let a key be evicted before a \
       satisfiable alert timer fires, breaking the streaming = batch \
       equivalence the replay verifier enforces); and the ingest queue \
       and decode chunk must be positive with chunk <= capacity (a chunk \
       larger than the queue would overflow on every refill). Monitored \
       (client prefix, guard prefix) pairs must also name prefixes the \
       scenario actually announces — a typo'd prefix would make the \
       monitor silently watch nothing. Typical causes: hand-edited CLI \
       flags, or a scenario regenerated under a different seed than the \
       monitoring config was written for." }

let rules = [ serve_config_invalid ]

type config_view = {
  window : float;
  bucket : float;
  threshold : float;
  slack : float;
  capacity : int;
  chunk : int;
  monitored : (Prefix.t * Prefix.t) list;
}

let diag ?context fmt = Diag.msgf serve_config_invalid ?context fmt

let check ?scenario (v : config_view) =
  let structural =
    (if v.window <= 0. || v.bucket <= 0. then
       [ diag
           ~context:
             [ ("window", Printf.sprintf "%g" v.window);
               ("bucket", Printf.sprintf "%g" v.bucket) ]
           "window and bucket width must be positive" ]
     else
       let k = Float.round (v.window /. v.bucket) in
       if k < 1. || Float.abs ((k *. v.bucket) -. v.window) > 1e-6 *. v.window
       then
         [ diag
             ~context:
               [ ("window", Printf.sprintf "%g" v.window);
                 ("bucket", Printf.sprintf "%g" v.bucket) ]
             "window must be a positive multiple of the bucket width" ]
       else [])
    @ (if v.threshold <= 0. || (v.window > 0. && v.threshold > v.window) then
         [ diag
             ~context:
               [ ("threshold", Printf.sprintf "%g" v.threshold);
                 ("window", Printf.sprintf "%g" v.window) ]
             "extra-AS threshold must lie within (0, window]" ]
       else [])
    @ (if v.slack < 0. then
         [ diag
             ~context:[ ("slack", Printf.sprintf "%g" v.slack) ]
             "ingest slack must be non-negative" ]
       else [])
    @ (if v.capacity <= 0 || v.chunk <= 0 || v.chunk > v.capacity then
         [ diag
             ~context:
               [ ("capacity", string_of_int v.capacity);
                 ("chunk", string_of_int v.chunk) ]
             "ingest queue capacity and chunk must be positive with \
              chunk <= capacity" ]
       else [])
  in
  let pairs =
    match scenario with
    | None -> []
    | Some (s : Scenario.t) ->
        let announced =
          List.map fst (Addressing.announced s.Scenario.addressing)
        in
        let known p = List.exists (Prefix.equal p) announced in
        List.concat_map
          (fun (client, guard) ->
             (if known client then []
              else
                [ diag
                    ~context:
                      [ ("role", "client");
                        ("prefix", Prefix.to_string client) ]
                    "monitored client prefix %a is not announced in the \
                     scenario" Prefix.pp client ])
             @ (if not (known guard) then
                  [ diag
                      ~context:
                        [ ("role", "guard");
                          ("prefix", Prefix.to_string guard) ]
                      "monitored guard prefix %a is not announced in the \
                       scenario" Prefix.pp guard ]
                else if
                  not
                    (Tor_prefix.is_tor_prefix s.Scenario.tor_prefixes guard)
                then
                  [ diag
                      ~context:
                        [ ("role", "guard");
                          ("prefix", Prefix.to_string guard) ]
                      "monitored guard prefix %a hosts no Tor relay in the \
                       scenario" Prefix.pp guard ]
                else []))
          v.monitored
  in
  structural @ pairs
