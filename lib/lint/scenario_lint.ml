let nondeterministic_build =
  { Diag.code = "QS301"; slug = "nondeterministic-build";
    severity = Diag.Error;
    doc = "two Scenario.build calls with equal seeds produced different \
           fingerprints";
    explain =
      "Equal seeds must give bit-identical scenarios: reproducibility is \
       the contract that makes every number in EXPERIMENTS.md re-derivable \
       and every differential suite meaningful. If two builds from one \
       seed fingerprint differently, some construction step consumed \
       nondeterministic state — an unseeded RNG, hash-table iteration \
       order, wall-clock time — and must be found before any result is \
       trusted." }

let dead_collector_peer =
  { Diag.code = "QS302"; slug = "dead-collector-peer";
    severity = Diag.Error;
    doc = "a collector session's peer AS is not in the topology";
    explain =
      "A collector session records the routes its peer AS selects, so a \
       peer that does not exist in the topology can never feed it an \
       update: the session is a permanently silent vantage point. Every \
       visibility number computed over the collector set would silently \
       undercount, which is exactly the bias the paper warns about when \
       comparing control-plane monitors." }

let collector_peer_ip =
  { Diag.code = "QS303"; slug = "collector-peer-ip";
    severity = Diag.Warn;
    doc = "a collector session's peer IP is outside the peer AS's address \
           space";
    explain =
      "Real RIS sessions are identified by the peer's source address, and \
       downstream tooling joins updates to ASes through that address. A \
       session sourcing from an address the plan assigns to a different \
       AS still collects updates (hence only a warning), but any analysis \
       that maps sessions back to ASes via addressing will attribute its \
       feed to the wrong AS." }

let update_stream_hygiene =
  { Diag.code = "QS304"; slug = "update-stream-hygiene";
    severity = Diag.Error;
    doc = "an emitted update stream left the measurement horizon or went \
           backwards in time";
    explain =
      "Measurements are defined over a fixed horizon [0, duration], and \
       stream consumers (churn counters, inter-arrival statistics, the \
       path-change detector) assume timestamps are non-decreasing the way \
       a real collector dump's are. An update outside the horizon or a \
       timestamp regression means the dynamics engine emitted events it \
       should have clamped or dropped, and windowed statistics would \
       double-count or miss them." }

let parallel_fingerprint_divergence =
  { Diag.code = "QS305"; slug = "parallel-fingerprint-divergence";
    severity = Diag.Error;
    doc = "Scenario.fingerprint disagrees between a jobs=1 and a jobs=2 \
           executor pool";
    explain =
      "Determinism must not depend on the worker count: the executor \
       hands out chunks in a fixed order and merges results positionally, \
       so the same scenario digested on one worker and on two must hash \
       identically. A divergence means some task communicates through \
       shared mutable state (a workspace used off-domain, an accumulator \
       merged in completion order), which is a portability bug for every \
       machine with a different core count." }

let rules =
  [ nondeterministic_build; dead_collector_peer; collector_peer_ip;
    update_stream_hygiene; parallel_fingerprint_divergence ]

let check_collectors g addressing collectors =
  collectors
  |> List.concat_map (fun (c : Collector.t) ->
      c.Collector.sessions
      |> List.concat_map (fun (s : Collector.session) ->
          let peer = s.Collector.id.Update.peer in
          let ctx =
            [ ("collector", c.Collector.name); ("peer", Asn.to_string peer);
              ("peer_ip", Ipv4.to_string s.Collector.peer_ip) ]
          in
          let liveness =
            if As_graph.mem_as g peer then []
            else
              [ Diag.msgf dead_collector_peer ~context:ctx
                  "%s session peers with %a, which is not in the topology"
                  c.Collector.name Asn.pp peer ]
          in
          let ip =
            match Addressing.covering_prefix addressing s.Collector.peer_ip with
            | Some (_, owner) when Asn.equal owner peer -> []
            | Some (p, owner) ->
                [ Diag.msgf collector_peer_ip
                    ~context:
                      (("covering", Prefix.to_string p)
                       :: ("owner", Asn.to_string owner) :: ctx)
                    "%s session with %a sources from %a, inside %a's prefix"
                    c.Collector.name Asn.pp peer Ipv4.pp s.Collector.peer_ip
                    Asn.pp owner ]
            | None ->
                [ Diag.msgf collector_peer_ip ~context:ctx
                    "%s session with %a sources from unrouted address %a"
                    c.Collector.name Asn.pp peer Ipv4.pp s.Collector.peer_ip ]
          in
          liveness @ ip))

let check_update_stream ~duration updates =
  let last = ref neg_infinity in
  List.concat_map
    (fun (u : Update.t) ->
       let t = u.Update.time in
       let ctx =
         [ ("time", string_of_float t);
           ("duration", string_of_float duration);
           ("session", u.Update.session.Update.collector) ]
       in
       let horizon =
         if t < 0. || t > duration then
           [ Diag.msgf update_stream_hygiene ~context:ctx
               "update at t=%g is outside the measurement horizon [0, %g]"
               t duration ]
         else []
       in
       let order =
         if t < !last then
           [ Diag.msgf update_stream_hygiene
               ~context:(("previous", string_of_float !last) :: ctx)
               "update at t=%g emitted after one at t=%g (stream must be \
                non-decreasing)"
               t !last ]
         else []
       in
       last := Float.max !last t;
       horizon @ order)
    updates

let check_parallel_fingerprint ?fingerprint (s : Scenario.t) =
  let fingerprint =
    match fingerprint with
    | Some f -> f
    | None -> fun ~exec -> Scenario.fingerprint ~exec s
  in
  let sequential = Pool.with_pool ~jobs:1 (fun exec -> fingerprint ~exec) in
  let parallel = Pool.with_pool ~jobs:2 (fun exec -> fingerprint ~exec) in
  if String.equal sequential parallel then []
  else
    [ Diag.msgf parallel_fingerprint_divergence
        ~context:
          [ ("seed", string_of_int s.Scenario.seed);
            ("jobs1", sequential); ("jobs2", parallel) ]
        "fingerprint of seed %d differs between jobs=1 (%s) and jobs=2 (%s)"
        s.Scenario.seed sequential parallel ]

let check_determinism (s : Scenario.t) =
  let rebuilt = Scenario.build ~seed:s.Scenario.seed s.Scenario.size in
  let fp = Scenario.fingerprint s and fp' = Scenario.fingerprint rebuilt in
  if String.equal fp fp' then []
  else
    [ Diag.msgf nondeterministic_build
        ~context:
          [ ("seed", string_of_int s.Scenario.seed); ("first", fp);
            ("second", fp') ]
        "seed %d built two different scenarios (%s vs %s)" s.Scenario.seed fp
        fp' ]
