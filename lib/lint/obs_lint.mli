(** Static analysis of the observability registry.

    [lib/obs] keeps the declared metric schema as data
    ([Qs_obs.Manifest.names]); this analyzer cross-checks it against the
    live registry. The check is pure over its inputs, so tests can feed
    synthetic registration lists; [Lint.run] feeds the real
    [Qs_obs.Metrics.registrations ()]. Linking this module force-links
    every instrumented module, so the registration set is the same in
    every binary that runs the lint. *)

val metric_registry_mismatch : Diag.rule
(** [QS306]: a registered metric name is missing from the manifest, a
    manifest name was never registered, or a name was registered more
    than once (two subsystems claiming the same metric). Names under
    ["test."] are reserved for test suites and exempt. *)

val rules : Diag.rule list

val check : ?manifest:string list -> (string * int) list -> Diag.t list
(** [check registrations] compares [(name, times-registered)] pairs —
    normally [Qs_obs.Metrics.registrations ()] — against [manifest]
    (default [Qs_obs.Manifest.names]). *)
