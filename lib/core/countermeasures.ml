type policy = Default | As_aware | Short_path

let policy_name = function
  | Default -> "default (bandwidth-weighted)"
  | As_aware -> "AS-aware (avoid common ASes)"
  | Short_path -> "short-AS-PATH preference"

type selection_eval = {
  policy : policy;
  trials : int;
  common_as_rate : float;
  mean_exposed_ases : int;
  model_compromise : float;
}

(* The AS set of the data-plane walk from [from_as] towards [ann]'s prefix
   under the given failure state. *)
let segment_ases indexed ?failed ~from_as ann =
  let outcome = Propagate.compute indexed ?failed [ ann ] in
  match Propagate.forwarding_path outcome from_as with
  | Some walk -> Asn.Set.of_list walk
  | None -> Asn.Set.empty

let core_links (scenario : Scenario.t) =
  As_graph.links scenario.Scenario.graph
  |> List.filter (fun (a, b, _) ->
      let tier x = (As_graph.info scenario.Scenario.graph x).As_graph.tier in
      (match tier a with As_graph.Tier1 | As_graph.Transit -> true | As_graph.Stub -> false)
      && (match tier b with As_graph.Tier1 | As_graph.Transit -> true | As_graph.Stub -> false))
  |> List.map (fun (a, b, _) -> (a, b))
  |> Array.of_list

(* Entry-segment exposure of a candidate guard: ASes on the client->guard
   walk in the healthy state plus under each failure variant — the
   "path dynamics taken into account" knowledge of §5. *)
let entry_exposure indexed ~variants ~client ann =
  let base = segment_ases indexed ~from_as:client ann in
  List.fold_left
    (fun acc failed ->
       Asn.Set.union acc (segment_ases indexed ~failed ~from_as:client ann))
    base variants

let selection ~rng ?(n_trials = 30) ?(f = 0.05) ?(candidates = 12)
    ?(failure_variants = 3) (scenario : Scenario.t) =
  let indexed = scenario.Scenario.indexed in
  let links = core_links scenario in
  let results = Hashtbl.create 4 in
  (* per policy: (#trials with a common AS, sum of entry ASes, sum of
     P[some common AS is malicious], #trials) *)
  let add policy n_common exposed =
    let c, e, p, n =
      Option.value ~default:(0, 0, 0., 0) (Hashtbl.find_opt results policy)
    in
    Hashtbl.replace results policy
      ( (c + if n_common > 0 then 1 else 0),
        e + exposed,
        p +. Anonymity.compromise_probability ~f ~x:n_common,
        n + 1 )
  in
  for _ = 1 to n_trials do
    let client = Scenario.random_client_as ~rng scenario in
    let destination = Scenario.random_client_as ~rng scenario in
    let exit = Path_selection.pick_weighted ~rng (Consensus.exits scenario.Scenario.consensus) in
    let variants =
      List.init failure_variants (fun _ ->
          let a, b = Rng.pick rng links in
          Link_set.of_list [ (a, b) ])
    in
    (* Exit segment: ASes between the exit relay's AS and the destination. *)
    let dest_ann =
      match Addressing.prefixes_of scenario.Scenario.addressing destination with
      | p :: _ -> Some (Announcement.originate destination p)
      | [] -> None
    in
    match dest_ann with
    | None -> ()
    | Some dest_ann ->
        let exit_segment =
          entry_exposure indexed ~variants ~client:exit.Relay.asn dest_ann
        in
        (* Candidate guards with their entry-segment exposure. *)
        let guard_pool = Consensus.guards scenario.Scenario.consensus in
        let cands =
          List.init candidates (fun _ -> Path_selection.pick_weighted ~rng guard_pool)
          |> List.filter_map (fun g ->
              match Scenario.guard_announcement scenario g with
              | Some ann ->
                  let exposure = entry_exposure indexed ~variants ~client ann in
                  let static = segment_ases indexed ~from_as:client ann in
                  if Asn.Set.is_empty exposure then None
                  else Some (g, exposure, Asn.Set.cardinal static)
              | None -> None)
        in
        (match cands with
         | [] -> ()
         | (first, first_exposure, _) :: _ ->
             let eval policy =
               let _, exposure =
                 match policy with
                 | Default -> (first, first_exposure)
                 | As_aware ->
                     let score (_, exp_, _) =
                       Asn.Set.cardinal (Asn.Set.inter exp_ exit_segment)
                     in
                     let best =
                       List.fold_left
                         (fun acc c -> if score c < score acc then c else acc)
                         (List.hd cands) cands
                     in
                     let g, e, _ = best in
                     (g, e)
                 | Short_path ->
                     let best =
                       List.fold_left
                         (fun acc ((_, _, len) as c) ->
                            let _, _, best_len = acc in
                            if len < best_len then c else acc)
                         (List.hd cands) cands
                     in
                     let g, e, _ = best in
                     (g, e)
               in
               let n_common =
                 Asn.Set.cardinal (Asn.Set.inter exposure exit_segment)
               in
               add policy n_common (Asn.Set.cardinal exposure)
             in
             List.iter eval [ Default; As_aware; Short_path ])
  done;
  List.map
    (fun policy ->
       let c, e, p, n =
         Option.value ~default:(0, 0, 0., 0) (Hashtbl.find_opt results policy)
       in
       let n_f = float_of_int (max 1 n) in
       let mean_exposed = if n = 0 then 0 else e / n in
       { policy;
         trials = n;
         common_as_rate = float_of_int c /. n_f;
         mean_exposed_ases = mean_exposed;
         (* mean P[a common AS is malicious]: the end-to-end timing attack
            needs one AS on BOTH segments *)
         model_compromise = p /. n_f })
    [ Default; As_aware; Short_path ]

type stealth_eval = {
  s_policy : policy;
  s_trials : int;
  captured_rate : float;
}

let stealth_resilience ~rng ?(n_trials = 30) ?(radius = 3) ?(candidates = 12)
    (scenario : Scenario.t) =
  let indexed = scenario.Scenario.indexed in
  let counts = Hashtbl.create 2 in
  let add policy captured =
    let c, n = Option.value ~default:(0, 0) (Hashtbl.find_opt counts policy) in
    Hashtbl.replace counts policy ((c + if captured then 1 else 0), n + 1)
  in
  let ases = Array.of_list (As_graph.ases scenario.Scenario.graph) in
  for _ = 1 to n_trials do
    let client = Scenario.random_client_as ~rng scenario in
    let guard_pool = Consensus.guards scenario.Scenario.consensus in
    let cands =
      List.init candidates (fun _ -> Path_selection.pick_weighted ~rng guard_pool)
      |> List.filter_map (fun g ->
          match Scenario.guard_announcement scenario g with
          | Some ann ->
              let outcome = Propagate.compute indexed [ ann ] in
              Option.map
                (fun walk -> (g, ann, List.length walk))
                (Propagate.forwarding_path outcome client)
          | None -> None)
    in
    match cands with
    | [] -> ()
    | (g0, ann0, _) :: _ ->
        let short =
          List.fold_left
            (fun ((_, _, bl) as acc) ((_, _, l) as c) -> if l < bl then c else acc)
            (List.hd cands) cands
        in
        let g_short, ann_short, _ = short in
        let attacker =
          let rec pick attempts =
            if attempts > 100 then None
            else
              let a = Rng.pick rng ases in
              if Asn.equal a ann0.Announcement.origin
                 || Asn.equal a ann_short.Announcement.origin
                 || Asn.equal a client
              then pick (attempts + 1)
              else Some a
          in
          pick 0
        in
        (match attacker with
         | None -> ()
         | Some attacker ->
             let capture ann _g =
               let atk =
                 Community_attack.run indexed ~victim:ann ~attacker ~radius
                   ~monitors:[] ()
               in
               Interception.observes atk.Community_attack.interception client
             in
             add Default (capture ann0 g0);
             add Short_path (capture ann_short g_short))
  done;
  List.map
    (fun policy ->
       let c, n = Option.value ~default:(0, 0) (Hashtbl.find_opt counts policy) in
       { s_policy = policy;
         s_trials = n;
         captured_rate = float_of_int c /. float_of_int (max 1 n) })
    [ Default; Short_path ]

type monitoring_eval = {
  n_attacks : int;
  detected : int;
  recall : float;
  alarms_total : int;
  alarms_on_attacked : int;
  precision : float;
  mean_detection_delay : float;
}

(* Inject attacks in the second half so the monitor has a baseline. The
   helper is shared with the [Qs_serve] replay/verify path, which needs
   the {e same} injected update set for its batch and streaming arms. *)
let inject_hijacks ~rng ?(n_attacks = 6) ~duration (scenario : Scenario.t) =
  let indexed = scenario.Scenario.indexed in
  let sessions = Scenario.sessions scenario in
  let tor_entries = Tor_prefix.entries scenario.Scenario.tor_prefixes in
  let entries = Array.of_list tor_entries in
  let ases = Array.of_list (As_graph.ases scenario.Scenario.graph) in
  let attacks =
    List.init n_attacks (fun _ ->
        let e = Rng.pick rng entries in
        let victim = Announcement.originate e.Tor_prefix.origin e.Tor_prefix.prefix in
        let attacker =
          let rec pick n =
            if n > 100 then e.Tor_prefix.origin
            else
              let a = Rng.pick rng ases in
              if Asn.equal a e.Tor_prefix.origin then pick (n + 1) else a
          in
          pick 0
        in
        let time = (duration /. 2.) +. Rng.float rng (duration /. 2. -. 3600.) in
        (victim, attacker, time))
  in
  let extra_updates =
    List.concat_map
      (fun (victim, attacker, time) ->
         let h = Hijack.same_prefix indexed ~victim ~attacker () in
         List.filter_map
           (fun (s : Collector.session) ->
              let peer = s.Collector.id.Update.peer in
              match Propagate.winning_announcement h.Hijack.outcome peer with
              | Some 1 -> begin
                  match Propagate.route_at h.Hijack.outcome peer with
                  | Some route ->
                      Some { Update.time = time +. Rng.float rng 60.;
                             session = s.Collector.id;
                             kind = Update.Announce route }
                  | None -> None
                end
              | Some _ | None -> None)
           sessions)
      attacks
    |> List.sort (fun a b -> Float.compare a.Update.time b.Update.time)
  in
  (attacks, extra_updates)

let monitoring ~rng ?(n_attacks = 6) ?(dynamics = Dynamics.short_config)
    (scenario : Scenario.t) =
  let duration = dynamics.Dynamics.duration in
  let attacks, extra_updates =
    inject_hijacks ~rng ~n_attacks ~duration scenario
  in
  let monitor = Detection.create ~learning_period:(duration /. 4.) () in
  let alarm_log = ref [] in
  let observe u =
    List.iter (fun a -> alarm_log := a :: !alarm_log) (Detection.observe monitor u)
  in
  let _ = Measurement.run ~dynamics ~extra_updates ~observe scenario in
  let alarms = List.rev !alarm_log in
  let attacked_prefixes =
    List.map (fun (v, _, t) -> (v.Announcement.prefix, t)) attacks
  in
  let alarm_prefix (a : Detection.alarm) =
    match a.Detection.kind with
    | Detection.Moas { prefix; _ } -> prefix
    | Detection.Sub_prefix { sub; _ } -> sub
    | Detection.Origin_adjacency { prefix; _ } -> prefix
  in
  let on_attacked =
    List.filter
      (fun a ->
         List.exists (fun (p, _) -> Prefix.equal p (alarm_prefix a)) attacked_prefixes)
      alarms
  in
  let delays =
    List.filter_map
      (fun (p, t) ->
         alarms
         |> List.filter (fun a ->
             Prefix.equal (alarm_prefix a) p && a.Detection.time >= t)
         |> List.map (fun a -> a.Detection.time -. t)
         |> function [] -> None | l -> Some (List.fold_left Float.min infinity l))
      attacked_prefixes
  in
  let detected = List.length delays in
  { n_attacks = List.length attacks;
    detected;
    recall = float_of_int detected /. float_of_int (max 1 (List.length attacks));
    alarms_total = List.length alarms;
    alarms_on_attacked = List.length on_attacked;
    precision =
      float_of_int (List.length on_attacked)
      /. float_of_int (max 1 (List.length alarms));
    mean_detection_delay = (match delays with [] -> 0. | l -> Stats.mean l) }

let print_selection ppf evals =
  Format.fprintf ppf "C1a: relay-selection policies vs AS-level adversaries@.";
  Format.fprintf ppf "  %-34s %-8s %-14s %-12s %-12s@."
    "policy" "trials" "common-AS rate" "entry ASes" "P[compromise]";
  List.iter
    (fun e ->
       Format.fprintf ppf "  %-34s %-8d %-14.2f %-12d %-12.3f@."
         (policy_name e.policy) e.trials e.common_as_rate e.mean_exposed_ases
         e.model_compromise)
    evals

let print_stealth ppf evals =
  Format.fprintf ppf "C1b: stealth (community-scoped) interception vs guard choice@.";
  List.iter
    (fun e ->
       Format.fprintf ppf "  %-34s capture rate %.2f over %d trials@."
         (policy_name e.s_policy) e.captured_rate e.s_trials)
    evals

let print_monitoring ppf m =
  Format.fprintf ppf "C1c: control-plane monitoring of relay prefixes@.";
  Format.fprintf ppf
    "  %d injected hijacks: detected %d (recall %.2f), mean delay %.0f s@."
    m.n_attacks m.detected m.recall m.mean_detection_delay;
  Format.fprintf ppf
    "  %d alarms total, %d on attacked prefixes (precision %.2f — FPs are acceptable per §5)@."
    m.alarms_total m.alarms_on_attacked m.precision
