type size = Paper | Small

type t = {
  seed : int;
  size : size;
  graph : As_graph.t;
  indexed : As_graph.Indexed.t;
  addressing : Addressing.t;
  collectors : Collector.t list;
  consensus : Consensus.t;
  tor_prefixes : Tor_prefix.t;
  world : Dynamics.world;
  workspace : Propagate.Workspace.t;
}

let m_builds = Metrics.counter ~help:"scenarios built" "scenario.builds"

let build ~seed size =
  Span.with_ ~name:"scenario.build" @@ fun () ->
  Metrics.incr m_builds;
  let rng = Rng.of_int seed in
  let topo_rng = Rng.split rng in
  let addr_rng = Rng.split rng in
  let coll_rng = Rng.split rng in
  let cons_rng = Rng.split rng in
  let topo_params, cons_params, sessions_per_collector =
    match size with
    | Paper -> (Topo_gen.default_params, Consensus.paper_params, 18)
    | Small -> (Topo_gen.small_params, Consensus.small_params, 5)
  in
  let graph = Topo_gen.generate ~rng:topo_rng topo_params in
  let addressing = Addressing.allocate ~rng:addr_rng graph in
  let collectors =
    Collector.standard_setup ~rng:coll_rng ~sessions_per_collector graph addressing
  in
  let consensus = Consensus.generate ~rng:cons_rng ~params:cons_params graph addressing in
  let tor_prefixes = Tor_prefix.compute addressing consensus in
  let world = Dynamics.make_world graph addressing collectors in
  { seed; size; graph; indexed = world.Dynamics.indexed; addressing;
    collectors; consensus; tor_prefixes; world;
    workspace = Propagate.Workspace.create () }

let sessions t = Collector.all_sessions t.collectors

let size_to_string = function Paper -> "paper" | Small -> "small"

let size_of_string = function
  | "paper" -> Some Paper
  | "small" -> Some Small
  | _ -> None

(* The canonical identity section: seed, size, and whatever process
   parameters the caller layers on top (churn model, adversary fraction,
   horizon — anything that can make two runs over this scenario diverge).
   Length-prefixed fields make the rendering injection-proof — no choice
   of key/value strings can collide with another binding list — and keys
   are sorted so binding order never matters. *)
let params_section ?(params = []) t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "qs-params/1\n";
  Buffer.add_string buf (Printf.sprintf "seed %d\n" t.seed);
  Buffer.add_string buf (Printf.sprintf "size %s\n" (size_to_string t.size));
  List.stable_sort (fun (a, _) (b, _) -> String.compare a b) params
  |> List.iter (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%s=%d:%s\n" (String.length k) k (String.length v)
           v));
  Buffer.contents buf

(* The content sections of a scenario, each rendered to a canonical
   string: graph, consensus, addressing and sessions. Kept as thunks so
   [fingerprint] can render and digest them as pool tasks — each thunk
   only reads the (frozen) scenario. *)
let content_sections t : (unit -> string) array =
  [| (fun () -> As_graph.to_caida_string t.graph);
     (fun () -> Consensus.to_string t.consensus);
     (fun () ->
        let buf = Buffer.create (1 lsl 12) in
        List.iter
          (fun (p, o) ->
             Buffer.add_string buf (Prefix.to_string p);
             Buffer.add_char buf ' ';
             Buffer.add_string buf (Asn.to_string o);
             Buffer.add_char buf '\n')
          (Addressing.announced t.addressing);
        Buffer.contents buf);
     (fun () ->
        let buf = Buffer.create (1 lsl 10) in
        List.iter
          (fun (s : Collector.session) ->
             Buffer.add_string buf s.Collector.id.Update.collector;
             Buffer.add_char buf ' ';
             Buffer.add_string buf (Asn.to_string s.Collector.id.Update.peer);
             Buffer.add_char buf ' ';
             Buffer.add_string buf (Ipv4.to_string s.Collector.peer_ip);
             Buffer.add_char buf ' ';
             Buffer.add_string buf
               (match s.Collector.feed with
                | Collector.Full -> "full"
                | Collector.Customer_and_peer -> "customer+peer"
                | Collector.Customer_only -> "customer");
             Buffer.add_char buf '\n')
          (sessions t);
        Buffer.contents buf) |]

let fingerprint ?exec ?params t =
  let pool = match exec with Some p -> p | None -> Pool.default () in
  (* The identity section comes first: two cells over the same built world
     that can still diverge (different seeds recorded, different process
     parameters) must fingerprint differently. *)
  let sections =
    Array.append
      [| (fun () -> params_section ?params t) |]
      (content_sections t)
  in
  let section_digests =
    Pool.map pool
      (fun render -> Digest.to_hex (Digest.string (render ())))
      sections
  in
  Digest.to_hex
    (Digest.string (String.concat "+" (Array.to_list section_digests)))

let rng_for t name =
  (* Derive a stream from the seed and the experiment name only, so that
     running experiments in any order gives identical results. The name
     enters through an MD5 digest, never [Hashtbl.hash]: the hash's 30-bit
     range made cross-(seed, name) stream collisions constructible (see
     the regression in test/test_core.ml), and colliding names would feed
     two supposedly independent experiments the same randomness. The
     decimal seed before the first ':' keeps (seed, name) pairs apart even
     when names contain ':'. *)
  let d = Digest.string (Printf.sprintf "qs-rng/1:%d:%s" t.seed name) in
  Rng.create (String.get_int64_le d 0)

(* Every stream name the codebase derives via [rng_for], in one place so
   collisions are auditable: the qcheck property in test/test_core.ml
   checks all pairs derive distinct seeds (and any new generator's name
   belongs in this list). Sorted, duplicates would be a bug. *)
let stream_names =
  [ "ab-cache"; "ab-delta"; "ab-jobs"; "ab-loss"; "ab-obs"; "ab-radius";
    "asymmetric"; "asymmetry"; "check-static"; "compromise";
    "consensus-epochs"; "guard-inference"; "guard-monitoring"; "hijack";
    "hijack-detect"; "interception"; "interception-path"; "long-term";
    "measurement"; "monitoring"; "mrt-dump"; "mrt-roundtrip"; "quickstart";
    "reset-truth"; "rov"; "selection"; "serve"; "stealth"; "surface";
    "sweep-m2"; "trace-churn"; "wikileaks" ]

let guard_announcement t relay =
  match Tor_prefix.prefix_of_relay t.tor_prefixes relay with
  | Some (prefix, origin) -> Some (Announcement.originate origin prefix)
  | None -> begin
      match Addressing.covering_prefix t.addressing relay.Relay.ip with
      | Some (prefix, origin) -> Some (Announcement.originate origin prefix)
      | None -> None
    end

let random_client_as ~rng t =
  let relay_ases =
    Array.fold_left
      (fun acc (r : Relay.t) -> Asn.Set.add r.Relay.asn acc)
      Asn.Set.empty t.consensus.Consensus.relays
  in
  let candidates =
    As_graph.ases t.graph
    |> List.filter (fun a ->
        (match (As_graph.info t.graph a).As_graph.tier with
         | As_graph.Stub -> true
         | As_graph.Tier1 | As_graph.Transit -> false)
        && not (Asn.Set.mem a relay_ases)
        && Addressing.prefixes_of t.addressing a <> [])
    |> Array.of_list
  in
  Rng.pick rng candidates

let monitors t =
  sessions t |> List.map (fun s -> s.Collector.id.Update.peer)
  |> List.sort_uniq Asn.compare
