(** The paper's §4 measurement pipeline, end to end: simulate a month of
    BGP over the scenario, filter session-reset artifacts, and accumulate
    per-(session, prefix) statistics streamingly:

    - {b path changes}: transitions between announcements whose AS {e set}
      differs (the paper's definition of a path change);
    - {b AS residency}: how long each AS spent on the observed path, so
      the 5-minute exposure rule of Figure 3 (right) can be applied;
    - visibility (which sessions learned which prefixes — the T1 dataset
      numbers).

    The dynamics stream can be spiked with extra (attack) updates, which
    are merged in time order — that is how the §5 monitoring experiments
    inject hijacks into an otherwise normal month. *)

type key = { session : Update.session_id; prefix : Prefix.t }

type cell = {
  key : key;
  baseline : Asn.Set.t option;   (** AS set of the initial route *)
  updates : int;                 (** updates seen post-filter — announcements
                                     {e and} withdrawals *)
  path_changes : int;
  residency : (Asn.t * float) list;
      (** total seconds each AS spent on this (session, prefix) path *)
  contiguous : (Asn.t * float) list;
      (** per AS, the longest single contiguous interval it spent on the
          path (always <= its cumulative residency) *)
  final_set : Asn.Set.t option;
}
(** Cells exist only for keys that carried routing state: a baseline route
    at time 0 or at least one announcement. A key that only ever saw
    withdrawals is not materialized. *)

module Key_table : Hashtbl.S with type key = key
(** Hash tables over measurement keys — shared with the [Qs_serve]
    sliding window so both sides key state identically. *)

(** Incremental per-key accumulator — the unit the batch pipeline below
    and the [Qs_serve] sliding window both build on. A key's statistics
    depend only on that key's update subsequence, so any consumer that
    preserves per-key time order reproduces the batch numbers exactly
    (path changes, residency, longest contiguous runs are all computed by
    the same code). *)
module Acc : sig
  type t

  type event = [ `First | `Same | `Changed | `Withdrawn ]
  (** What one update did to the key: first-ever announcement, re-announce
      with an identical AS set, a path change, or a withdrawal. *)

  val create : unit -> t

  val set_baseline : t -> Asn.Set.t -> unit
  (** Register the time-0 table route: sets the baseline AS set, the
      current path, and starts contiguous runs at t = 0. Call before any
      update flows. *)

  val consume : t -> Update.t -> event
  (** Feed one update (per-key time order). Counts it, credits residency
      up to the update's time, and maintains contiguous-run state. *)

  val seal : t -> float -> unit
  (** Close the accumulator at a horizon: credit residency up to it and
      close every open run. Call exactly once, then read {!cell}. *)

  val cell : key -> t -> cell option
  (** Materialize; [None] for a withdraw-only key (no baseline and no
      announcement — nothing a collector could measure). *)

  val baseline : t -> Asn.Set.t option
  val current : t -> Asn.Set.t option
  val updates : t -> int
  val announces : t -> int
  val path_changes : t -> int

  val residency : t -> (Asn.t * float) list
  (** Per-AS cumulative residency credited so far (unsealed: excludes the
      open span since the last update), in unspecified order. *)

  val contiguous : t -> (Asn.t * float) list
  (** Per-AS longest {e completed} run so far (unsealed), in unspecified
      order. A windowed consumer merges these across a key's lives with
      per-AS [max] — runs never span a withdrawal, so the global longest
      run is the max over lives. *)

  val run_start : t -> Asn.t -> float option
  (** Start time of the AS's current on-path run, if it is on the path. *)

  val best_run : t -> Asn.t -> float
  (** Longest {e completed} contiguous run for the AS (0 if none). *)

  val longest_run : t -> at:float -> Asn.t -> float
  (** Longest contiguous run counting the still-open one as if it closed
      at [at] — what a threshold query at time [at] must compare against. *)
end

type t = {
  scenario : Scenario.t;
  duration : float;
  initial : Dynamics.initial;
  cells : cell list;
  dyn_stats : Dynamics.stats;
  filter_stats : Session_reset.stats option;
  visibility : int Prefix.Table.t;
      (** per prefix: number of sessions that ever saw it *)
  n_sessions : int;
}

val run :
  ?dynamics:Dynamics.config ->
  ?filter:Session_reset.config ->
  ?no_filter:bool ->
  ?extra_updates:Update.t list ->
  ?observe:(Update.t -> unit) ->
  Scenario.t -> t
(** Runs the full pipeline (deterministic given the scenario; the RNG
    stream is derived from the scenario seed). [no_filter] disables
    session-reset filtering (the ablation). [observe] sees every
    post-filter update, in per-session time order — attach monitors here.
    [extra_updates] must be time-sorted. *)

val pp_dynamics_summary : Format.formatter -> t -> unit
(** Three-line summary of the run's {!Dynamics.stats}: update counts,
    recomputations with route-cache hit/miss/eviction counters, and the
    horizon accounting (post-horizon drops, links still failed at the
    end). Printed by [quicksand path-changes] and the benchmarks. *)

val cells_for_session : t -> Update.session_id -> cell list

val is_tor : t -> Prefix.t -> bool

val changes_of : cell -> int
val extra_ases : ?threshold:float -> cell -> Asn.Set.t
(** ASes whose longest {e contiguous} on-path interval reaches the
    threshold (default 300 s) and that are not in the baseline AS set —
    the paper's "seen for more than five minutes" rule demands a sustained
    appearance, so disjoint short stints do not accumulate. Empty if the
    cell has no baseline (prefix never seen at time 0 on this session). *)

val visibility_fraction : t -> Prefix.t -> float
(** Fraction of sessions on which the prefix was ever visible. *)
