(** The paper's §4 measurement pipeline, end to end: simulate a month of
    BGP over the scenario, filter session-reset artifacts, and accumulate
    per-(session, prefix) statistics streamingly:

    - {b path changes}: transitions between announcements whose AS {e set}
      differs (the paper's definition of a path change);
    - {b AS residency}: how long each AS spent on the observed path, so
      the 5-minute exposure rule of Figure 3 (right) can be applied;
    - visibility (which sessions learned which prefixes — the T1 dataset
      numbers).

    The dynamics stream can be spiked with extra (attack) updates, which
    are merged in time order — that is how the §5 monitoring experiments
    inject hijacks into an otherwise normal month. *)

type key = { session : Update.session_id; prefix : Prefix.t }

type cell = {
  key : key;
  baseline : Asn.Set.t option;   (** AS set of the initial route *)
  updates : int;                 (** updates seen post-filter — announcements
                                     {e and} withdrawals *)
  path_changes : int;
  residency : (Asn.t * float) list;
      (** total seconds each AS spent on this (session, prefix) path *)
  contiguous : (Asn.t * float) list;
      (** per AS, the longest single contiguous interval it spent on the
          path (always <= its cumulative residency) *)
  final_set : Asn.Set.t option;
}
(** Cells exist only for keys that carried routing state: a baseline route
    at time 0 or at least one announcement. A key that only ever saw
    withdrawals is not materialized. *)

type t = {
  scenario : Scenario.t;
  duration : float;
  initial : Dynamics.initial;
  cells : cell list;
  dyn_stats : Dynamics.stats;
  filter_stats : Session_reset.stats option;
  visibility : int Prefix.Table.t;
      (** per prefix: number of sessions that ever saw it *)
  n_sessions : int;
}

val run :
  ?dynamics:Dynamics.config ->
  ?filter:Session_reset.config ->
  ?no_filter:bool ->
  ?extra_updates:Update.t list ->
  ?observe:(Update.t -> unit) ->
  Scenario.t -> t
(** Runs the full pipeline (deterministic given the scenario; the RNG
    stream is derived from the scenario seed). [no_filter] disables
    session-reset filtering (the ablation). [observe] sees every
    post-filter update, in per-session time order — attach monitors here.
    [extra_updates] must be time-sorted. *)

val pp_dynamics_summary : Format.formatter -> t -> unit
(** Three-line summary of the run's {!Dynamics.stats}: update counts,
    recomputations with route-cache hit/miss/eviction counters, and the
    horizon accounting (post-horizon drops, links still failed at the
    end). Printed by [quicksand path-changes] and the benchmarks. *)

val cells_for_session : t -> Update.session_id -> cell list

val is_tor : t -> Prefix.t -> bool

val changes_of : cell -> int
val extra_ases : ?threshold:float -> cell -> Asn.Set.t
(** ASes whose longest {e contiguous} on-path interval reaches the
    threshold (default 300 s) and that are not in the baseline AS set —
    the paper's "seen for more than five minutes" rule demands a sustained
    appearance, so disjoint short stints do not accumulate. Empty if the
    cell has no baseline (prefix never seen at time 0 on this session). *)

val visibility_fraction : t -> Prefix.t -> float
(** Fraction of sessions on which the prefix was ever visible. *)
