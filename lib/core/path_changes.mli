(** Experiment F3L — Figure 3 (left): Tor prefixes see more path changes
    than other BGP prefixes.

    For every (Tor prefix, session) pair, the statistic is the number of
    path changes the prefix saw on that session divided by the {e median}
    number of path changes any prefix saw on that session, presented as a
    CCDF. Paper headlines: more than 50% of the pairs have ratio > 1; one
    prefix reached >2000x; 90% of Tor prefixes beat the median on at least
    one session. *)

type t = {
  ratios : float list;            (** one per (Tor prefix, session) pair *)
  ccdf : Ccdf.t;
  frac_above_one : float;
  max_ratio : float;
  frac_tor_beating_median_somewhere : float;
      (** fraction of Tor prefixes with ratio > 1 on >= 1 session *)
  per_session_median : (Update.session_id * float) list;
  busiest : (Prefix.t * Update.session_id * int) option;
      (** the (prefix, session, changes) with the most changes *)
}

val compute : ?exec:Pool.t -> Measurement.t -> t
(** Per-session statistics run as tasks on [exec] (default
    {!Pool.default}); sessions are processed in a canonical sorted order
    and reduced sequentially, so the result — including tie-breaks in
    [busiest] — is identical at any worker count. *)

val print : Format.formatter -> t -> unit
