(** Experiment M2 — long-term anonymity and guard design (§2).

    "When users communicate with recipients over multiple time instances,
    there is a potential for compromise of anonymity at every
    communication instance." Guards were Tor's answer against malicious
    relays; the paper observes that the {e ASes} on the client→guard paths
    keep changing even when the guard does not.

    This experiment simulates clients communicating daily over many weeks
    against a fixed set of colluding malicious ASes and records the time to
    first compromise (a day on which one malicious AS sees both the entry
    and exit segment) under different guard designs:

    - no guards (a fresh entry relay every day — pre-guard Tor);
    - l guards rotated every [rotation_days] (e.g. 3 guards / 30 days, the
      2014 deployment);
    - 1 guard / 270 days (the "one fast guard for life (or 9 months)"
      proposal the paper cites).

    Path dynamics are modelled by drawing each day's routing state from a
    small pool of single-link-failure variants. *)

type config = {
  n_clients : int;           (** trial clients (default 40) *)
  horizon_days : int;        (** simulated days (default 120) *)
  f : float;                 (** fraction of malicious ASes (default 0.03) *)
  n_guards : int;            (** guard-set size *)
  rotation_days : int;       (** guard-set lifetime; max_int = never *)
  use_guards : bool;         (** false = fresh entry relay daily *)
  failure_variants : int;    (** routing states modelling BGP dynamics *)
}

val default_config : config
(** 3 guards / 30 days — the deployment the paper describes. *)

type outcome = {
  label : string;
  compromised_fraction : float;  (** clients compromised within horizon *)
  median_day : int option;       (** median day of first compromise *)
  mean_exposed_per_day : float;  (** mean entry-segment ASes per day *)
  days_to_compromise : int list; (** raw first-compromise days *)
  clients : int;                 (** client-trials behind the fractions *)
}

type routing_pool
(** Cached per-(prefix, routing-variant) outcomes, shareable across runs.
    The memo table behind it is a {!Pool.per_domain} resource: each worker
    domain fills its own copy, so a pool can be shared by parallel client
    simulations without locking and without affecting any result. *)

val make_pool :
  rng:Rng.t -> Scenario.t -> failure_variants:int -> routing_pool

val living_consensus :
  ?params:Consensus_dynamics.params -> horizon_days:int -> Scenario.t ->
  Consensus_dynamics.t
(** A living consensus covering [horizon_days]: epochs derived from the
    scenario's frozen snapshot with the generation params matching the
    scenario size, seeded off the scenario's dedicated
    ["consensus-epochs"] stream — a pure function of (scenario, params,
    horizon). *)

val run :
  rng:Rng.t -> ?config:config -> ?pool:routing_pool -> ?malicious:Asn.Set.t ->
  ?living:Consensus_dynamics.t -> ?exec:Pool.t -> Scenario.t -> outcome
(** One configuration. [malicious] overrides the random adversary draw
    (used to compare designs against the same adversary). Clients simulate
    as tasks on [exec] (default {!Pool.default}), one {!Rng.split} stream
    per client, reduced in client order — the outcome is byte-identical at
    any worker count, and deterministic given [rng].

    [living] runs the experiment under a living consensus
    ({!Consensus_dynamics}, e.g. {!living_consensus}): each simulated day
    consults the epoch covering it — entry/exit pools and bandwidth
    weights move, and a client whose guard departed replaces it
    ({!Path_selection.refresh_guards}) before building the day's circuit.
    Omitted, the frozen snapshot and the pre-existing draw sequence are
    used unchanged. *)

val compare_designs :
  rng:Rng.t -> ?horizon_days:int -> ?f:float -> ?n_draws:int -> ?exec:Pool.t ->
  Scenario.t -> outcome list
(** The §2 comparison: no guards vs 3/30d vs 1/270d vs 3/never. Each design
    faces the same [n_draws] (default 10) independent adversary draws, with
    a shared routing pool; results are aggregated over all draws. [exec]
    parallelises the client simulations inside each run. *)

val print : Format.formatter -> outcome list -> unit
