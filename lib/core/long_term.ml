type config = {
  n_clients : int;
  horizon_days : int;
  f : float;
  n_guards : int;
  rotation_days : int;
  use_guards : bool;
  failure_variants : int;
}

let default_config =
  { n_clients = 40;
    horizon_days = 120;
    f = 0.03;
    n_guards = 3;
    rotation_days = 30;
    use_guards = true;
    failure_variants = 5 }

type outcome = {
  label : string;
  compromised_fraction : float;
  median_day : int option;
  mean_exposed_per_day : float;
  days_to_compromise : int list;
  clients : int;
}

(* Routing outcomes are cached per (prefix, variant): clients share them,
   and a day's path is just a forwarding-walk lookup. Client simulations
   run as pool tasks, so the memo table is a per-domain resource — each
   domain fills its own copy of the same pure function, which costs a few
   redundant recomputes but never a cross-domain race (and never changes a
   result: the cache is invisible to the outputs). *)
type routing_pool = {
  indexed : As_graph.Indexed.t;
  variants : Link_set.t array;    (* variants.(0) is the healthy state *)
  caches : (string * int, Propagate.t) Hashtbl.t Pool.per_domain;
}

let make_pool ~rng (scenario : Scenario.t) ~failure_variants =
  let links =
    As_graph.links scenario.Scenario.graph
    |> List.filter (fun (a, b, _) ->
        let tier x = (As_graph.info scenario.Scenario.graph x).As_graph.tier in
        (match tier a with As_graph.Stub -> false | _ -> true)
        && (match tier b with As_graph.Stub -> false | _ -> true))
    |> List.map (fun (a, b, _) -> (a, b))
    |> Array.of_list
  in
  let variants =
    Array.init (failure_variants + 1) (fun i ->
        if i = 0 || Array.length links = 0 then Link_set.empty
        else
          let a, b = Rng.pick rng links in
          Link_set.of_list [ (a, b) ])
  in
  { indexed = scenario.Scenario.indexed; variants;
    caches = Pool.per_domain (fun () -> Hashtbl.create 1024) }

let outcome_for pool ann variant =
  let cache = Pool.get pool.caches in
  let key = (Prefix.to_string ann.Announcement.prefix, variant) in
  match Hashtbl.find_opt cache key with
  | Some o -> o
  | None ->
      let o =
        Propagate.compute pool.indexed ~failed:pool.variants.(variant) [ ann ]
      in
      Hashtbl.replace cache key o;
      o

let walk_set pool ann variant from_as =
  match Propagate.forwarding_path (outcome_for pool ann variant) from_as with
  | Some walk -> Asn.Set.of_list walk
  | None -> Asn.Set.empty

let draw_malicious ~rng ~f scenario =
  List.fold_left
    (fun acc a ->
       if Rng.float rng 1.0 < f then Asn.Set.add a acc else acc)
    Asn.Set.empty
    (As_graph.ases scenario.Scenario.graph)

let day_seconds = 86_400.

(* One client's daily-communication history, self-contained so it can run
   as a pool task: draws come only from [rng] (this client's sibling
   stream) and routing goes through the per-domain caches of [pool].
   Under a living consensus ([?living]) every day consults the epoch
   covering it instead of the frozen snapshot, and departed guards are
   replaced before the day's circuit; with [living = None] the code path
   and RNG draw sequence are exactly the frozen ones. *)
let simulate_client ~rng ~config ~pool ~malicious ?living
    (scenario : Scenario.t) =
  let consensus_at d =
    match living with
    | None -> scenario.Scenario.consensus
    | Some cd ->
        Consensus_dynamics.at_time cd (float_of_int (d - 1) *. day_seconds)
  in
  let client_as = Scenario.random_client_as ~rng scenario in
  let destination = Scenario.random_client_as ~rng scenario in
  let dest_ann =
    match Addressing.prefixes_of scenario.Scenario.addressing destination with
    | p :: _ -> Announcement.originate destination p
    | [] ->
        (* every AS has prefixes by construction *)
        invalid_arg "Long_term: destination AS originates no prefix"
  in
  let guards =
    ref (Path_selection.pick_guards ~rng (consensus_at 1) ~n:config.n_guards)
  in
  let guards_age = ref 0 in
  let compromised = ref None in
  let exposed_total = ref 0. and exposed_days = ref 0 in
  let day = ref 1 in
  while !compromised = None && !day <= config.horizon_days do
    let consensus = consensus_at !day in
    (* under a living consensus, departed guards are replaced first *)
    if living <> None && config.use_guards then
      guards := fst (Path_selection.refresh_guards ~rng consensus !guards);
    (* today's entry relay *)
    let entry =
      if config.use_guards then Rng.pick_list rng !guards
      else Path_selection.pick_weighted ~rng (Consensus.guards consensus)
    in
    let exit =
      Path_selection.pick_weighted ~rng (Consensus.exits consensus)
    in
    let variant = Rng.int rng (Array.length pool.variants) in
    (match Scenario.guard_announcement scenario entry with
     | None -> ()
     | Some entry_ann ->
         let entry_set = walk_set pool entry_ann variant client_as in
         let exit_set = walk_set pool dest_ann variant exit.Relay.asn in
         exposed_total :=
           !exposed_total +. float_of_int (Asn.Set.cardinal entry_set);
         incr exposed_days;
         let sees set = not (Asn.Set.is_empty (Asn.Set.inter malicious set)) in
         if sees entry_set && sees exit_set then compromised := Some !day);
    (* guard rotation *)
    incr guards_age;
    if config.use_guards && !guards_age >= config.rotation_days then begin
      guards := Path_selection.pick_guards ~rng consensus ~n:config.n_guards;
      guards_age := 0
    end;
    incr day
  done;
  (!compromised, !exposed_total, !exposed_days)

(* A living consensus for [scenario] covering [horizon_days]:
   hourly-or-whatever [params.epoch_seconds] epochs derived from the
   scenario's frozen snapshot, seeded off the scenario's dedicated
   "consensus-epochs" stream, so it is a pure function of (scenario,
   params, horizon). *)
let living_consensus ?(params = Consensus_dynamics.default_params)
    ~horizon_days (scenario : Scenario.t) =
  let gen =
    match scenario.Scenario.size with
    | Scenario.Paper -> Consensus.paper_params
    | Scenario.Small -> Consensus.small_params
  in
  let n_epochs =
    max 1
      (int_of_float
         (Float.ceil
            (float_of_int horizon_days *. day_seconds /. params.epoch_seconds)))
  in
  Consensus_dynamics.generate
    ~rng:(Scenario.rng_for scenario "consensus-epochs")
    ~params ~gen ~n_epochs scenario.Scenario.graph
    scenario.Scenario.addressing scenario.Scenario.consensus

let run ~rng ?(config = default_config) ?pool ?malicious ?living ?exec
    (scenario : Scenario.t) =
  let workers = match exec with Some p -> p | None -> Pool.default () in
  let pool =
    match pool with
    | Some p -> p
    | None -> make_pool ~rng scenario ~failure_variants:config.failure_variants
  in
  (* One colluding malicious-AS draw shared by all clients of this run. *)
  let malicious =
    match malicious with
    | Some m -> m
    | None -> draw_malicious ~rng ~f:config.f scenario
  in
  (* Clients are the parallel unit: each gets its own sibling stream, and
     the per-client triples are reduced in client order below, so the
     outcome is identical at any worker count. *)
  let per_client =
    Pool.map_seeded workers ~rng
      (fun rng () ->
         simulate_client ~rng ~config ~pool ~malicious ?living scenario)
      (Array.make config.n_clients ())
  in
  let first_compromise = ref [] in
  let exposed_total = ref 0. and exposed_days = ref 0 in
  Array.iter
    (fun (compromised, exposed, days) ->
       first_compromise := compromised :: !first_compromise;
       exposed_total := !exposed_total +. exposed;
       exposed_days := !exposed_days + days)
    per_client;
  let compromised_days = List.filter_map Fun.id !first_compromise in
  let label =
    if not config.use_guards then "no guards (fresh relay daily)"
    else if config.rotation_days >= config.horizon_days then
      Printf.sprintf "%d guard%s, never rotated" config.n_guards
        (if config.n_guards = 1 then "" else "s")
    else
      Printf.sprintf "%d guard%s / %d days" config.n_guards
        (if config.n_guards = 1 then "" else "s")
        config.rotation_days
  in
  { label;
    compromised_fraction =
      float_of_int (List.length compromised_days)
      /. float_of_int (max 1 config.n_clients);
    median_day =
      (match List.sort Int.compare compromised_days with
       | [] -> None
       | days -> Some (List.nth days (List.length days / 2)));
    mean_exposed_per_day =
      !exposed_total /. float_of_int (max 1 !exposed_days);
    days_to_compromise = compromised_days;
    clients = config.n_clients }

let merge label outcomes =
  let clients = List.fold_left (fun acc o -> acc + o.clients) 0 outcomes in
  let days = List.concat_map (fun o -> o.days_to_compromise) outcomes in
  let exposed =
    match outcomes with
    | [] -> 0.
    | os ->
        List.fold_left (fun acc o -> acc +. o.mean_exposed_per_day) 0. os
        /. float_of_int (List.length os)
  in
  { label;
    compromised_fraction =
      float_of_int (List.length days) /. float_of_int (max 1 clients);
    median_day =
      (match List.sort Int.compare days with
       | [] -> None
       | d -> Some (List.nth d (List.length d / 2)));
    mean_exposed_per_day = exposed;
    days_to_compromise = days;
    clients }

let compare_designs ~rng ?(horizon_days = 120) ?(f = 0.05) ?(n_draws = 10)
    ?exec scenario =
  Span.with_ ~name:"long_term.compare_designs" @@ fun () ->
  (* The adversary draw dominates the variance (a handful of malicious ASes
     either sit on transit paths or do not), so we average each design over
     [n_draws] independent adversaries, all sharing one routing pool. *)
  let base = { default_config with horizon_days; f; n_clients = 8 } in
  let pool = make_pool ~rng scenario ~failure_variants:base.failure_variants in
  let designs =
    [ { base with use_guards = false };
      { base with n_guards = 3; rotation_days = 30 };
      { base with n_guards = 1; rotation_days = 270 };
      { base with n_guards = 3; rotation_days = max_int } ]
  in
  let per_draw =
    List.init n_draws (fun _ ->
        let malicious = draw_malicious ~rng ~f scenario in
        List.map
          (fun config -> run ~rng ~config ~pool ~malicious ?exec scenario)
          designs)
  in
  List.mapi
    (fun i _ ->
       let outcomes = List.map (fun draw -> List.nth draw i) per_draw in
       merge (List.nth outcomes 0).label outcomes)
    designs

let print ppf outcomes =
  Format.fprintf ppf "M2: long-term anonymity vs guard design (§2)@.";
  Format.fprintf ppf "  %-32s %-22s %-12s %-14s@."
    "design" "compromised in horizon" "median day" "entry ASes/day";
  List.iter
    (fun o ->
       Format.fprintf ppf "  %-32s %-22s %-12s %-14.1f@."
         o.label
         (Printf.sprintf "%.0f%%" (100. *. o.compromised_fraction))
         (match o.median_day with Some d -> string_of_int d | None -> "-")
         o.mean_exposed_per_day)
    outcomes;
  Format.fprintf ppf
    "  -> guards slow the malicious-relay game, but AS-level exposure keeps@.";
  Format.fprintf ppf
    "     accruing: the paths under a fixed guard still change (§3.1).@."
