type t = {
  threshold : float;
  extras : int list;
  ccdf : Ccdf.t;
  frac_at_least_2 : float;
  frac_above_5 : float;
  max_extras : int;
  per_prefix_union : (Prefix.t * int) list;
}

let compute ?(threshold = 300.) ?exec (m : Measurement.t) =
  Span.with_ ~name:"as_exposure.compute" @@ fun () ->
  let pool = match exec with Some p -> p | None -> Pool.default () in
  (* Only cases where the prefix had a baseline path on the session, as in
     the paper (the baseline is "the first path used at the beginning of
     the month"). *)
  let cases =
    m.Measurement.cells
    |> List.filter (fun (c : Measurement.cell) ->
        Measurement.is_tor m c.Measurement.key.Measurement.prefix
        && c.Measurement.baseline <> None)
    |> Array.of_list
  in
  (* The residency scans are the expensive part and are independent per
     cell; the union/extras accumulation below stays sequential in cell
     order, so the result matches the single-threaded one exactly. *)
  let sets =
    Pool.map pool (fun c -> Measurement.extra_ases ~threshold c) cases
  in
  let extras = ref [] in
  let union = Prefix.Table.create 256 in
  Array.iteri
    (fun i (c : Measurement.cell) ->
       let p = c.Measurement.key.Measurement.prefix in
       let set = sets.(i) in
       extras := Asn.Set.cardinal set :: !extras;
       let cur =
         Option.value ~default:Asn.Set.empty (Prefix.Table.find_opt union p)
       in
       Prefix.Table.replace union p (Asn.Set.union cur set))
    cases;
  let extras = !extras in
  let samples = List.map float_of_int extras in
  let ccdf = Ccdf.of_samples (match samples with [] -> [ 0. ] | s -> s) in
  let n = float_of_int (max 1 (List.length extras)) in
  let count f = float_of_int (List.length (List.filter f extras)) /. n in
  { threshold;
    extras;
    ccdf;
    frac_at_least_2 = count (fun e -> e >= 2);
    frac_above_5 = count (fun e -> e > 5);
    max_extras = List.fold_left max 0 extras;
    per_prefix_union =
      Prefix.Table.fold (fun p s acc -> (p, Asn.Set.cardinal s) :: acc) union [] }

let print ppf t =
  Format.fprintf ppf
    "F3R: extra ASes seen >%.0f min per (Tor prefix, session) over the month (CCDF)@."
    (t.threshold /. 60.);
  Format.fprintf ppf "  paper: >=2 extra ASes in ~50%% of cases; >5 in ~8%%; tail to ~20@.";
  Format.fprintf ppf "  measured: >=2 in %.1f%%; >5 in %.1f%%; max %d@."
    (100. *. t.frac_at_least_2) (100. *. t.frac_above_5) t.max_extras;
  Format.fprintf ppf "  CCDF (extra ASes -> %% of cases at or above):@.";
  List.iter
    (fun x ->
       Format.fprintf ppf "    %4.0f -> %5.1f%%@." x (100. *. Ccdf.at t.ccdf x))
    [ 1.; 2.; 3.; 5.; 10.; 15.; 20. ]
