type row = {
  f : float;
  x : int;
  analytic_l1 : float;
  analytic_l3 : float;
  monte_carlo_l1 : float;
}

type t = {
  rows : row list;
  max_abs_error : float;
}

let compute ~rng ?exec ?(fs = [ 0.01; 0.02; 0.05; 0.1 ])
    ?(xs = [ 1; 2; 4; 8; 16; 30 ]) ?(trials = 5000) ?(universe = 2400) () =
  Span.with_ ~name:"compromise.compute" @@ fun () ->
  let pool = match exec with Some p -> p | None -> Pool.default () in
  let cells =
    Array.of_list (List.concat_map (fun f -> List.map (fun x -> (f, x)) xs) fs)
  in
  (* One sibling stream per (f, x) cell: the Monte-Carlo columns are
     byte-identical at any worker count. *)
  let rows =
    Pool.map_seeded pool ~rng
      (fun rng (f, x) ->
         { f; x;
           analytic_l1 = Anonymity.compromise_probability ~f ~x;
           analytic_l3 = Anonymity.multi_guard_probability ~f ~x ~l:3;
           monte_carlo_l1 =
             Anonymity.monte_carlo_compromise ~rng ~trials ~universe ~f
               ~exposed:x })
      cells
    |> Array.to_list
  in
  let max_abs_error =
    List.fold_left
      (fun acc r -> Float.max acc (Float.abs (r.analytic_l1 -. r.monte_carlo_l1)))
      0. rows
  in
  { rows; max_abs_error }

let baseline_path_ases = 4
(* "the number of ASes crossed in the Internet is around 4, on average" *)

let exposure_based ~f ~l (exposure : As_exposure.t) =
  let probs_static, probs_dynamic =
    List.fold_left
      (fun (s, d) extra ->
         ( Anonymity.multi_guard_probability ~f ~x:baseline_path_ases ~l :: s,
           Anonymity.multi_guard_probability ~f ~x:(baseline_path_ases + extra) ~l
           :: d ))
      ([], []) exposure.As_exposure.extras
  in
  match probs_static with
  | [] -> (0., 0.)
  | _ -> (Stats.mean probs_static, Stats.mean probs_dynamic)

let print ppf t =
  Format.fprintf ppf "M1: compromise probability 1-(1-f)^(l*x)@.";
  Format.fprintf ppf "  %-6s %-4s %-12s %-12s %-14s@."
    "f" "x" "l=1" "l=3" "monte-carlo(l=1)";
  List.iter
    (fun r ->
       Format.fprintf ppf "  %-6.3f %-4d %-12.4f %-12.4f %-14.4f@."
        r.f r.x r.analytic_l1 r.analytic_l3 r.monte_carlo_l1)
    t.rows;
  Format.fprintf ppf "  max |analytic - monte-carlo| = %.4f@." t.max_abs_error
