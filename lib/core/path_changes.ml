type t = {
  ratios : float list;
  ccdf : Ccdf.t;
  frac_above_one : float;
  max_ratio : float;
  frac_tor_beating_median_somewhere : float;
  per_session_median : (Update.session_id * float) list;
  busiest : (Prefix.t * Update.session_id * int) option;
}

let compare_keys (ca, pa) (cb, pb) =
  match String.compare ca cb with 0 -> Int.compare pa pb | c -> c

(* One session's statistics, computed independently of every other
   session — the parallel unit of [compute]. *)
type session_stats = {
  s_id : Update.session_id;
  s_median : float;
  s_tor : (Prefix.t * float * int) list;   (* (prefix, ratio, changes) *)
}

let compute ?exec (m : Measurement.t) =
  Span.with_ ~name:"path_changes.compute" @@ fun () ->
  let pool = match exec with Some p -> p | None -> Pool.default () in
  (* Group cells by session. *)
  let by_session = Hashtbl.create 128 in
  List.iter
    (fun (c : Measurement.cell) ->
       let id = c.Measurement.key.Measurement.session in
       let key = (id.Update.collector, Asn.to_int id.Update.peer) in
       let cur = Option.value ~default:[] (Hashtbl.find_opt by_session key) in
       Hashtbl.replace by_session key (c :: cur))
    m.Measurement.cells;
  (* Canonical session order: results no longer depend on hash-table
     iteration order, so the reduce below is stable at any worker count. *)
  let sessions =
    Hashtbl.fold (fun key cells acc -> (key, cells) :: acc) by_session []
    |> List.sort (fun (a, _) (b, _) -> compare_keys a b)
    |> Array.of_list
  in
  let stats =
    Pool.map pool
      (fun (_, cells) ->
         match cells with
         | [] -> None
         | (first : Measurement.cell) :: _ ->
             let session = first.Measurement.key.Measurement.session in
             let all_changes =
               List.map (fun c -> float_of_int c.Measurement.path_changes) cells
             in
             let median = Stats.median all_changes in
             (* Ratios are only defined where the session's median is
                nonzero; the paper's sessions all saw background churn. We
                floor the median at 1 change to keep ratios finite, which
                only makes the comparison harder for Tor prefixes. *)
             let denom = Float.max 1. median in
             let tor =
               List.filter_map
                 (fun (c : Measurement.cell) ->
                    let p = c.Measurement.key.Measurement.prefix in
                    if Measurement.is_tor m p then
                      Some (p,
                            float_of_int c.Measurement.path_changes /. denom,
                            c.Measurement.path_changes)
                    else None)
                 cells
             in
             Some { s_id = session; s_median = median; s_tor = tor })
      sessions
  in
  let ratios = ref [] in
  let per_session_median = ref [] in
  let beating = Prefix.Table.create 256 in   (* Tor prefix -> beat somewhere *)
  let tor_seen = Prefix.Table.create 256 in
  let busiest = ref None in
  Array.iter
    (function
      | None -> ()
      | Some s ->
          per_session_median := (s.s_id, s.s_median) :: !per_session_median;
          List.iter
            (fun (p, r, changes) ->
               Prefix.Table.replace tor_seen p ();
               ratios := r :: !ratios;
               if r > 1. then Prefix.Table.replace beating p ();
               match !busiest with
               | Some (_, _, best) when best >= changes -> ()
               | _ -> busiest := Some (p, s.s_id, changes))
            s.s_tor)
    stats;
  let ratios = !ratios in
  let ccdf = Ccdf.of_samples (match ratios with [] -> [ 0. ] | r -> r) in
  let n = float_of_int (max 1 (List.length ratios)) in
  let above = List.length (List.filter (fun r -> r > 1.) ratios) in
  let tor_count = max 1 (Prefix.Table.length tor_seen) in
  { ratios; ccdf;
    frac_above_one = float_of_int above /. n;
    max_ratio = List.fold_left Float.max 0. ratios;
    frac_tor_beating_median_somewhere =
      float_of_int (Prefix.Table.length beating) /. float_of_int tor_count;
    per_session_median = !per_session_median;
    busiest = !busiest }

let print ppf t =
  Format.fprintf ppf "F3L: path-change ratio of Tor prefixes vs session median (CCDF)@.";
  Format.fprintf ppf
    "  paper: >50%% of pairs above 1x; tail to >2000x; 90%% of Tor prefixes beat the median somewhere@.";
  Format.fprintf ppf
    "  measured: %.1f%% of pairs above 1x; max ratio %.0fx; %.1f%% of Tor prefixes beat the median somewhere@."
    (100. *. t.frac_above_one) t.max_ratio
    (100. *. t.frac_tor_beating_median_somewhere);
  Format.fprintf ppf "  CCDF (ratio -> %% of pairs at or above):@.";
  List.iter
    (fun x ->
       Format.fprintf ppf "    %7.1fx -> %5.1f%%@." x (100. *. Ccdf.at t.ccdf x))
    [ 0.2; 0.5; 1.; 2.; 5.; 10.; 50.; 100.; 1000. ];
  match t.busiest with
  | Some (p, s, changes) ->
      Format.fprintf ppf "  busiest: %a on %a with %d changes@." Prefix.pp p
        Update.pp_session s changes
  | None -> ()
