(** Experiment C1 — the §5 countermeasures, evaluated.

    1. {b AS-aware relay selection under path dynamics}: clients pick the
       guard whose (dynamics-aware) client→guard AS set avoids the ASes on
       the exit→destination segment, so no single AS can run end-to-end
       timing analysis.
    2. {b Shorter-AS-PATH guard preference}: stealthy (community-scoped)
       hijacks only win at ASes with longer paths to the victim than to
       the attacker; clients near their guards are harder to capture.
    3. {b Real-time relay-prefix monitoring}: control-plane detection of
       hijacks/interceptions of relay prefixes, with the paper's bias that
       false positives are acceptable. *)

type policy =
  | Default     (** Tor's bandwidth-weighted selection *)
  | As_aware    (** avoid common ASes across both segments *)
  | Short_path  (** prefer guards with short client→guard AS paths *)

val policy_name : policy -> string

type selection_eval = {
  policy : policy;
  trials : int;
  common_as_rate : float;
      (** fraction of (client, destination) trials where at least one AS
          sees both the entry and exit segments *)
  mean_exposed_ases : int;
      (** mean distinct ASes on the entry segment, dynamics included *)
  model_compromise : float;
      (** mean over trials of 1-(1-f)^c with c = #ASes seeing both
          segments: the probability a timing-capable AS is malicious *)
}

val selection :
  rng:Rng.t -> ?n_trials:int -> ?f:float -> ?candidates:int ->
  ?failure_variants:int -> Scenario.t -> selection_eval list
(** Evaluates all three policies on the same (client, destination,
    candidate-guard) draws. [failure_variants] extra routing states (each
    with one random core link down) model path dynamics when computing
    exposure (default 3). Defaults: 30 trials, f = 0.05, 12 candidate
    guards. *)

type stealth_eval = {
  s_policy : policy;
  s_trials : int;
  captured_rate : float;
      (** fraction of trials where a radius-limited interception of the
          chosen guard's prefix captures the client's traffic *)
}

val stealth_resilience :
  rng:Rng.t -> ?n_trials:int -> ?radius:int -> ?candidates:int ->
  Scenario.t -> stealth_eval list
(** Community-scoped interception (default radius 3) against clients using
    Default vs Short_path guard selection. *)

type monitoring_eval = {
  n_attacks : int;
  detected : int;
  recall : float;
  alarms_total : int;
  alarms_on_attacked : int;
  precision : float;
  mean_detection_delay : float;  (** seconds from injection to first alarm *)
}

val inject_hijacks :
  rng:Rng.t -> ?n_attacks:int -> duration:float -> Scenario.t ->
  (Announcement.t * Asn.t * float) list * Update.t list
(** Draws [n_attacks] (default 6) hijacks of random Tor prefixes in the
    second half of [duration] (so a monitor has a learning baseline),
    propagates each through the topology, and returns
    [(victim, attacker, injection time)] ground truth plus the
    time-sorted collector updates to splice into a measurement via
    [Measurement.run ~extra_updates] — or into a [Qs_serve] feed, which
    must inject the {e same} updates in both its streaming and batch
    arms when verifying replay equivalence. *)

val monitoring :
  rng:Rng.t -> ?n_attacks:int -> ?dynamics:Dynamics.config -> Scenario.t ->
  monitoring_eval
(** Injects hijacks of random Tor prefixes into a simulated measurement
    period and scores the {!Detection} monitor against ground truth.
    Default: 6 attacks over {!Dynamics.short_config}. *)

val print_selection : Format.formatter -> selection_eval list -> unit
val print_stealth : Format.formatter -> stealth_eval list -> unit
val print_monitoring : Format.formatter -> monitoring_eval -> unit
