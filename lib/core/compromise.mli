(** Experiment M1 — the §3.1 analytic compromise model.

    P[compromise] = 1-(1-f)^x with x the distinct ASes exposed over time
    between client and guard, amplified to 1-(1-f)^(l*x) by l guards. The
    table sweeps f and x, shows the l=1 vs l=3 amplification, and
    cross-validates the closed form against Monte-Carlo sampling. *)

type row = {
  f : float;
  x : int;
  analytic_l1 : float;
  analytic_l3 : float;
  monte_carlo_l1 : float;
}

type t = {
  rows : row list;
  max_abs_error : float;   (** analytic vs Monte-Carlo, l=1 *)
}

val compute :
  rng:Rng.t -> ?exec:Pool.t -> ?fs:float list -> ?xs:int list ->
  ?trials:int -> ?universe:int -> unit -> t
(** Defaults: f in {0.01, 0.02, 0.05, 0.1}, x in {1, 2, 4, 8, 16, 30},
    5000 trials over a 2400-AS universe. The (f, x) cells run as tasks on
    [exec] (default {!Pool.default}), one {!Rng.split} stream per cell, so
    the table is byte-identical at any worker count. *)

val exposure_based :
  f:float -> l:int -> As_exposure.t -> float * float
(** Plugs the measured exposure (F3R) into the model: returns the mean
    compromise probability using (baseline 4 ASes, baseline + measured
    extra ASes) per case — what the month of churn actually bought the
    adversary. *)

val print : Format.formatter -> t -> unit
