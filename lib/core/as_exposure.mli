(** Experiment F3R — Figure 3 (right): BGP dynamics put extra ASes on the
    paths towards Tor prefixes.

    Baseline: the AS set of the first path of the month on each session.
    Over the month, every AS that appears on the observed path for at
    least 5 minutes (shorter visits are unlikely to allow traffic
    analysis) and is not in the baseline counts as an {e extra} AS. The
    paper reports the CCDF over cases: >= 2 extra ASes in ~50% of cases,
    > 5 in ~8%, tail to ~20. *)

type t = {
  threshold : float;              (** residency threshold, seconds *)
  extras : int list;              (** per (Tor prefix, session) case *)
  ccdf : Ccdf.t;
  frac_at_least_2 : float;
  frac_above_5 : float;
  max_extras : int;
  per_prefix_union : (Prefix.t * int) list;
      (** per Tor prefix: extra ASes across all its sessions *)
}

val compute : ?threshold:float -> ?exec:Pool.t -> Measurement.t -> t
(** Default threshold 300 s (the paper's 5-minute rule). The per-case
    residency scans run as tasks on [exec] (default {!Pool.default});
    accumulation stays sequential in cell order, so the result is
    byte-identical at any worker count. *)

val print : Format.formatter -> t -> unit
