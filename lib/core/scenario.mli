(** A fully-instantiated measurement scenario: the synthetic Internet, its
    BGP table, the RIS-style collectors and the Tor network living on top.
    Every experiment in this library starts from one of these; equal seeds
    give bit-identical scenarios. *)

type size =
  | Paper  (** ~2 400 ASes, 4 586 relays — the §4 scale *)
  | Small  (** ~220 ASes, 230 relays — tests and examples *)

type t = {
  seed : int;
  size : size;
  graph : As_graph.t;
  indexed : As_graph.Indexed.t;
  addressing : Addressing.t;
  collectors : Collector.t list;
  consensus : Consensus.t;
  tor_prefixes : Tor_prefix.t;
  world : Dynamics.world;
  workspace : Propagate.Workspace.t;
      (** shared scratch for one-off {!Propagate.compute} calls over this
          scenario's graph (lint sweeps, ad-hoc probes). Single-threaded:
          each outcome is valid only until the next compute through it. *)
}

val build : seed:int -> size -> t

val sessions : t -> Collector.session list

val fingerprint : ?exec:Pool.t -> t -> string
(** A digest over every externally-visible piece of the scenario —
    topology, consensus, address plan, collector sessions. Two builds
    from the same seed and size must produce equal fingerprints; the
    [QS301] lint rule enforces exactly that. The four sections are
    rendered and digested as tasks on [exec] (default {!Pool.default})
    and combined in a fixed order, so the digest is independent of the
    worker count — the [QS305] lint rule recomputes it at [jobs = 1] and
    [jobs = 2] and flags any disagreement. *)

val rng_for : t -> string -> Rng.t
(** A deterministic RNG stream for a named sub-experiment, independent of
    streams consumed while building the scenario. *)

val guard_announcement : t -> Relay.t -> Announcement.t option
(** The legitimate BGP announcement covering a relay: its Tor prefix with
    its true origin — what a hijacker must compete with. [None] if the
    relay's address is unrouted. *)

val random_client_as : rng:Rng.t -> t -> Asn.t
(** A stub AS that hosts no relays (a plausible client location). *)

val monitors : t -> Asn.t list
(** The collector peer ASes — where control-plane monitoring can look. *)
