(** A fully-instantiated measurement scenario: the synthetic Internet, its
    BGP table, the RIS-style collectors and the Tor network living on top.
    Every experiment in this library starts from one of these; equal seeds
    give bit-identical scenarios. *)

type size =
  | Paper  (** ~2 400 ASes, 4 586 relays — the §4 scale *)
  | Small  (** ~220 ASes, 230 relays — tests and examples *)

type t = {
  seed : int;
  size : size;
  graph : As_graph.t;
  indexed : As_graph.Indexed.t;
  addressing : Addressing.t;
  collectors : Collector.t list;
  consensus : Consensus.t;
  tor_prefixes : Tor_prefix.t;
  world : Dynamics.world;
  workspace : Propagate.Workspace.t;
      (** shared scratch for one-off {!Propagate.compute} calls over this
          scenario's graph (lint sweeps, ad-hoc probes). Single-threaded:
          each outcome is valid only until the next compute through it. *)
}

val build : seed:int -> size -> t

val sessions : t -> Collector.session list

val size_to_string : size -> string
(** ["paper"] or ["small"] — the spelling the CLI and the sweep registry
    use. *)

val size_of_string : string -> size option

val fingerprint : ?exec:Pool.t -> ?params:(string * string) list -> t -> string
(** A digest over every externally-visible piece of the scenario —
    an identity section (seed, size, and the caller-supplied [params]
    bindings, canonically sorted and length-prefixed so binding order and
    adversarial key/value strings cannot alias), then topology, consensus,
    address plan and collector sessions. Two builds from the same seed and
    size (and equal [params]) must produce equal fingerprints; the [QS301]
    lint rule enforces exactly that. [params] is how a sweep cell bakes
    its process parameters (churn model, adversary, horizon) into its
    identity: any two cells whose results can diverge must fingerprint
    differently. The sections are rendered and digested as tasks on [exec]
    (default {!Pool.default}) and combined in a fixed order, so the digest
    is independent of the worker count — the [QS305] lint rule recomputes
    it at [jobs = 1] and [jobs = 2] and flags any disagreement. *)

val rng_for : t -> string -> Rng.t
(** A deterministic RNG stream for a named sub-experiment, independent of
    streams consumed while building the scenario. The stream is derived
    from an MD5 digest of the (seed, full name) pair, so distinct
    experiment names get independent streams — no [Hashtbl.hash]-style
    truncation through which two names (or two (seed, name) pairs) can
    collide onto one stream. *)

val stream_names : string list
(** Every stream name the codebase passes to {!rng_for}, sorted — the
    audit surface for stream independence. The qcheck property in
    test/test_core.ml derives all of them across random seeds and checks
    the seeds are pairwise distinct; a new generator's stream name
    belongs in this list. *)

val guard_announcement : t -> Relay.t -> Announcement.t option
(** The legitimate BGP announcement covering a relay: its Tor prefix with
    its true origin — what a hijacker must compete with. [None] if the
    relay's address is unrouted. *)

val random_client_as : rng:Rng.t -> t -> Asn.t
(** A stub AS that hosts no relays (a plausible client location). *)

val monitors : t -> Asn.t list
(** The collector peer ASes — where control-plane monitoring can look. *)
