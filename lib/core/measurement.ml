type key = { session : Update.session_id; prefix : Prefix.t }

type cell = {
  key : key;
  baseline : Asn.Set.t option;
  updates : int;
  path_changes : int;
  residency : (Asn.t * float) list;
  contiguous : (Asn.t * float) list;
  final_set : Asn.Set.t option;
}

type t = {
  scenario : Scenario.t;
  duration : float;
  initial : Dynamics.initial;
  cells : cell list;
  dyn_stats : Dynamics.stats;
  filter_stats : Session_reset.stats option;
  visibility : int Prefix.Table.t;  (* sessions that ever saw the prefix *)
  n_sessions : int;
}

module Key_table = Hashtbl.Make (struct
    type t = key

    let equal a b =
      Update.session_equal a.session b.session && Prefix.equal a.prefix b.prefix

    let hash k = (Hashtbl.hash k.session.Update.collector * 31)
                 + (Asn.hash k.session.Update.peer * 7)
                 + Prefix.hash k.prefix
  end)

(* The per-key accumulator is the unit both the batch pipeline below and
   the qs_serve sliding window build on: one key's statistics depend only
   on that key's update subsequence, so any consumer that preserves
   per-key order reproduces the batch numbers exactly. *)
module Acc = struct
  type t = {
    mutable a_baseline : Asn.Set.t option;
    mutable a_updates : int;
    mutable a_announces : int;
    mutable a_changes : int;
    mutable a_current : Asn.Set.t option;
    mutable a_since : float;
    a_residency : (Asn.t, float) Hashtbl.t;
    a_entered : (Asn.t, float) Hashtbl.t; (* AS -> start of current on-path run *)
    a_contig : (Asn.t, float) Hashtbl.t;  (* AS -> longest completed run *)
  }

  type event = [ `First | `Same | `Changed | `Withdrawn ]

  let create () =
    { a_baseline = None; a_updates = 0; a_announces = 0; a_changes = 0;
      a_current = None; a_since = 0.;
      a_residency = Hashtbl.create 8;
      a_entered = Hashtbl.create 8;
      a_contig = Hashtbl.create 8 }

  let credit_residency acc until =
    match acc.a_current with
    | None -> ()
    | Some set ->
        let dt = until -. acc.a_since in
        if dt > 0. then
          Asn.Set.iter
            (fun a ->
               let cur =
                 Option.value ~default:0. (Hashtbl.find_opt acc.a_residency a)
               in
               Hashtbl.replace acc.a_residency a (cur +. dt))
            set

  let close_run acc a until =
    match Hashtbl.find_opt acc.a_entered a with
    | None -> ()
    | Some start ->
        Hashtbl.remove acc.a_entered a;
        let run = until -. start in
        let best = Option.value ~default:0. (Hashtbl.find_opt acc.a_contig a) in
        if run > best then Hashtbl.replace acc.a_contig a run

  (* Maintain per-AS contiguous on-path runs: an AS's run survives path
     changes as long as the AS stays somewhere on the path; it closes the
     moment the AS leaves (or the route is withdrawn). *)
  let track_membership acc time next =
    let old = Option.value ~default:Asn.Set.empty acc.a_current in
    let next = Option.value ~default:Asn.Set.empty next in
    Asn.Set.iter
      (fun a -> if not (Asn.Set.mem a next) then close_run acc a time) old;
    Asn.Set.iter
      (fun a ->
         if not (Hashtbl.mem acc.a_entered a) then
           Hashtbl.replace acc.a_entered a time)
      next

  let set_baseline acc set =
    acc.a_baseline <- Some set;
    track_membership acc 0. (Some set);
    acc.a_current <- Some set;
    acc.a_since <- 0.

  let consume acc (u : Update.t) : event =
    match u.Update.kind with
    | Update.Announce route ->
        acc.a_updates <- acc.a_updates + 1;
        acc.a_announces <- acc.a_announces + 1;
        let set = Route.as_set route in
        let ev =
          match acc.a_current with
          | Some old when Asn.Set.equal old set -> `Same
          | Some _ -> acc.a_changes <- acc.a_changes + 1; `Changed
          | None -> `First
        in
        credit_residency acc u.Update.time;
        track_membership acc u.Update.time (Some set);
        acc.a_current <- Some set;
        acc.a_since <- u.Update.time;
        ev
    | Update.Withdraw _ ->
        (* A withdrawal is BGP churn like any other update; it must count. *)
        acc.a_updates <- acc.a_updates + 1;
        credit_residency acc u.Update.time;
        track_membership acc u.Update.time None;
        acc.a_current <- None;
        acc.a_since <- u.Update.time;
        `Withdrawn

  let seal acc until =
    credit_residency acc until;
    let open_runs = Hashtbl.fold (fun a _ l -> a :: l) acc.a_entered [] in
    List.iter (fun a -> close_run acc a until) open_runs

  let materializes acc = acc.a_baseline <> None || acc.a_announces > 0

  let cell key acc =
    if not (materializes acc) then None
    else
      Some
        { key;
          baseline = acc.a_baseline;
          updates = acc.a_updates;
          path_changes = acc.a_changes;
          residency = Hashtbl.fold (fun a d l -> (a, d) :: l) acc.a_residency [];
          contiguous = Hashtbl.fold (fun a d l -> (a, d) :: l) acc.a_contig [];
          final_set = acc.a_current }

  let baseline acc = acc.a_baseline
  let current acc = acc.a_current
  let updates acc = acc.a_updates
  let announces acc = acc.a_announces
  let path_changes acc = acc.a_changes
  let residency acc = Hashtbl.fold (fun a d l -> (a, d) :: l) acc.a_residency []
  let contiguous acc = Hashtbl.fold (fun a d l -> (a, d) :: l) acc.a_contig []
  let run_start acc a = Hashtbl.find_opt acc.a_entered a

  let best_run acc a =
    Option.value ~default:0. (Hashtbl.find_opt acc.a_contig a)

  let longest_run acc ~at a =
    let closed = best_run acc a in
    match run_start acc a with
    | None -> closed
    | Some start -> Float.max closed (at -. start)
end

(* Registry mirrors: one bulk add per [run], so counts are exact at any
   worker count and accumulate across repeated measurements. *)
let m_updates =
  Metrics.counter ~help:"updates consumed by measurement" "measurement.updates"

let m_cells =
  Metrics.counter ~help:"(session, prefix) cells materialized"
    "measurement.cells"

let run ?(dynamics = Dynamics.default_config) ?filter ?(no_filter = false)
    ?(extra_updates = []) ?observe scenario =
  Span.with_ ~name:"measurement.run" @@ fun () ->
  let n_consumed = ref 0 in
  let rng = Scenario.rng_for scenario "measurement" in
  let table : Acc.t Key_table.t = Key_table.create 65536 in
  let get_acc key =
    match Key_table.find_opt table key with
    | Some a -> a
    | None ->
        let a = Acc.create () in
        Key_table.replace table key a;
        a
  in
  let consume (u : Update.t) =
    incr n_consumed;
    (match observe with Some f -> f u | None -> ());
    let key = { session = u.Update.session; prefix = Update.prefix u } in
    ignore (Acc.consume (get_acc key) u : Acc.event)
  in
  (* Merge the (time-sorted) attack updates into the stream. *)
  let pending_extra = ref extra_updates in
  let flush_extra_until time =
    let rec loop () =
      match !pending_extra with
      | e :: rest when e.Update.time <= time ->
          pending_extra := rest;
          consume e;
          loop ()
      | _ -> ()
    in
    loop ()
  in
  let downstream u =
    flush_extra_until u.Update.time;
    consume u
  in
  let filter_state =
    if no_filter then None
    else Some (Session_reset.create ?config:filter ~emit:downstream ())
  in
  (* Tick the filter with the input clock before each push: emission
     delay becomes bounded by the filter window and the post-filter
     stream comes out globally time-ordered — so [observe] monitors and
     the qs_serve streaming arm see the same well-ordered feed, while
     per-session pass/drop decisions stay exactly as without ticks. *)
  let emit =
    match filter_state with
    | Some f ->
        fun (u : Update.t) ->
          Session_reset.advance f u.Update.time;
          Session_reset.push f u
    | None -> downstream
  in
  (* Baselines and reset-filter table sizes come from the time-0 tables,
     registered before any update flows. *)
  let on_initial initial =
    Update.Session_map.iter
      (fun session table0 ->
         (match filter_state with
          | Some f ->
              Session_reset.preload_table f session (Prefix.Map.cardinal table0)
          | None -> ());
         Prefix.Map.iter
           (fun prefix route ->
              let acc = get_acc { session; prefix } in
              Acc.set_baseline acc (Route.as_set route))
           table0)
      initial
  in
  let initial, dyn_stats =
    (* The trace-churn generator (when [dynamics.session_churn] is set)
       rides the scenario's dedicated stream so the Poisson processes on
       [rng] are untouched by the choice of trace model. *)
    Dynamics.run ~rng
      ~trace_rng:(Scenario.rng_for scenario "trace-churn")
      ~on_initial dynamics scenario.Scenario.world ~emit
  in
  (match filter_state with
   | Some f -> Session_reset.flush f
   | None -> ());
  flush_extra_until infinity;
  let duration = dynamics.Dynamics.duration in
  let visibility = Prefix.Table.create 4096 in
  let cells =
    Key_table.fold
      (fun key acc out ->
         (* A key that only ever saw withdrawals carries no routing state:
            no baseline, no route, nothing a collector could measure.
            Materializing it would skew per-cell counts, so drop it. *)
         match
           (if Acc.materializes acc then Acc.seal acc duration);
           Acc.cell key acc
         with
         | None -> out
         | Some cell ->
             let cur =
               Option.value ~default:0
                 (Prefix.Table.find_opt visibility key.prefix)
             in
             Prefix.Table.replace visibility key.prefix (cur + 1);
             cell :: out)
      table []
  in
  Metrics.add m_updates !n_consumed;
  Metrics.add m_cells (List.length cells);
  { scenario; duration; initial; cells; dyn_stats;
    filter_stats = Option.map Session_reset.stats filter_state;
    visibility;
    n_sessions = List.length (Scenario.sessions scenario) }

let pp_dynamics_summary ppf t =
  let s = t.dyn_stats in
  Format.fprintf ppf
    "@[<v>dynamics: %d updates (%d announce / %d withdraw), %d churn events@,\
     propagation: %d full recomputations, %d delta steps (%d stop-early \
     links)%s, cache %d hits / %d misses / %d evictions%s@,\
     horizon: %d updates dropped past t=%g, %d links still failed@]"
    s.Dynamics.updates_emitted s.Dynamics.announces s.Dynamics.withdraws
    s.Dynamics.churn_events s.Dynamics.full_recomputations
    s.Dynamics.delta_steps s.Dynamics.delta_stop_early
    (if s.Dynamics.delta_steps = 0 then " (delta disabled or unused)" else "")
    s.Dynamics.cache_hits
    s.Dynamics.cache_misses s.Dynamics.cache_evictions
    (if s.Dynamics.cache_hits = 0 && s.Dynamics.cache_misses = 0
     then " (disabled)" else "")
    s.Dynamics.post_horizon_dropped t.duration
    (Link_set.cardinal s.Dynamics.final_failed)

let cells_for_session t session =
  List.filter (fun c -> Update.session_equal c.key.session session) t.cells

let is_tor t p = Tor_prefix.is_tor_prefix t.scenario.Scenario.tor_prefixes p

let changes_of c = c.path_changes

(* The paper's rule is "seen on the path for more than five minutes" — a
   sustained presence, so the threshold applies to the longest contiguous
   run, not the cumulative residency (ten disjoint 40 s appearances must
   not qualify). *)
let extra_ases ?(threshold = 300.) cell =
  match cell.baseline with
  | None -> Asn.Set.empty
  | Some base ->
      List.fold_left
        (fun acc (a, d) ->
           if d >= threshold && not (Asn.Set.mem a base) then Asn.Set.add a acc
           else acc)
        Asn.Set.empty cell.contiguous

let visibility_fraction t p =
  if t.n_sessions = 0 then 0.
  else
    float_of_int (Option.value ~default:0 (Prefix.Table.find_opt t.visibility p))
    /. float_of_int t.n_sessions
