(** BGP prefix hijacking (§3.2).

    An attacker AS originates a victim's prefix (or a more-specific of it).
    Every AS whose policy prefers the bogus route sends its traffic for the
    victim to the attacker, where it is blackholed — the connection dies,
    but while it lasts the attacker reads IP headers and learns the
    anonymity set (which clients talk to a hijacked guard relay). *)

type t = {
  outcome : Propagate.t;      (** routing with both origins active *)
  victim : Asn.t;
  attacker : Asn.t;
  captured : Asn.t list;      (** ASes now routing to the attacker *)
  capture_fraction : float;   (** captured / ASes-with-a-route *)
}

val same_prefix :
  As_graph.Indexed.t -> ?failed:Link_set.t -> ?rov:Rpki.t * Asn.Set.t ->
  victim:Announcement.t -> attacker:Asn.t -> unit -> t
(** The attacker originates exactly the victim's prefix. Whoever is
    policy-closer to the attacker is captured.
    @raise Invalid_argument if attacker = victim's origin. *)

val more_specific :
  As_graph.Indexed.t -> ?failed:Link_set.t -> ?rov:Rpki.t * Asn.Set.t ->
  victim:Announcement.t -> attacker:Asn.t -> sub:Prefix.t -> unit -> t
(** The attacker originates [sub], a strictly more-specific prefix inside
    the victim's. Longest-prefix match sends {e every} AS that hears the
    bogus route to the attacker, regardless of path length: [captured] is
    computed on the [sub] announcement alone, with the victim's covering
    route still present for everyone else.
    @raise Invalid_argument unless the victim's prefix strictly subsumes
    [sub]. *)

val is_captured : t -> Asn.t -> bool
(** Does this AS's traffic toward the victim reach the attacker? *)

val wins : t -> Asn.t -> bool
(** The §3.2 win condition against one client AS, under its own name so
    static analyses can audit it: the hijack {e wins} against a client
    iff the client's traffic toward the victim is deflected to the
    attacker. Alias of {!is_captured}; the [static] differential suite
    checks every winning client against
    [Qs_analysis.Static_surface.can_blackhole]. *)

val anonymity_set :
  t -> clients:(Asn.t * 'a) list -> ('a * Asn.t) list
(** [anonymity_set t ~clients] — given clients tagged with their AS — the
    clients whose traffic to the victim the attacker observes during the
    hijack (the paper's reduced anonymity set), with their AS. *)
