type t = {
  outcome : Propagate.t;
  victim : Asn.t;
  attacker : Asn.t;
  captured : Asn.t list;
  capture_fraction : float;
}

let m_runs =
  Metrics.counter ~help:"hijack propagations simulated" "attack.hijack.runs"

let build outcome ~victim ~attacker ~attacker_index =
  let captured = Propagate.captured outcome attacker_index in
  let routed = Propagate.routed_count outcome in
  let capture_fraction =
    if routed = 0 then 0.
    else float_of_int (List.length captured) /. float_of_int routed
  in
  { outcome; victim; attacker; captured; capture_fraction }

let same_prefix graph ?failed ?rov ~victim ~attacker () =
  let victim_origin = victim.Announcement.origin in
  if Asn.equal attacker victim_origin then
    invalid_arg "Hijack.same_prefix: attacker is the victim";
  Metrics.incr m_runs;
  let bogus = Announcement.originate attacker victim.Announcement.prefix in
  let outcome = Propagate.compute graph ?failed ?rov [ victim; bogus ] in
  build outcome ~victim:victim_origin ~attacker ~attacker_index:1

let more_specific graph ?failed ?rov ~victim ~attacker ~sub () =
  let victim_origin = victim.Announcement.origin in
  if Asn.equal attacker victim_origin then
    invalid_arg "Hijack.more_specific: attacker is the victim";
  if not (Prefix.subsumes victim.Announcement.prefix sub)
     || Prefix.equal victim.Announcement.prefix sub
  then invalid_arg "Hijack.more_specific: sub must be strictly inside the victim prefix";
  Metrics.incr m_runs;
  (* The more-specific travels on its own; anyone who hears it prefers it
     by longest-prefix match, whatever the AS path looks like. *)
  let bogus = Announcement.originate attacker sub in
  let outcome = Propagate.compute graph ?failed ?rov [ bogus ] in
  build outcome ~victim:victim_origin ~attacker ~attacker_index:0

let is_captured t a = List.exists (Asn.equal a) t.captured

let wins = is_captured

let anonymity_set t ~clients =
  List.filter_map
    (fun (asn, tag) -> if is_captured t asn then Some (tag, asn) else None)
    clients
