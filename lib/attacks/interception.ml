type t = {
  outcome : Propagate.t;
  victim : Asn.t;
  attacker : Asn.t;
  captured : Asn.t list;
  capture_fraction : float;
  feasible : bool;
  return_path : Asn.t list option;
}

(* A clean return path through neighbor [n]: [n] selected the legitimate
   announcement (index 0) and its forwarding walk avoids the attacker. *)
let clean_via graph outcome ~attacker n_id =
  let n = As_graph.Indexed.asn_of_id graph n_id in
  match Propagate.winning_announcement outcome n with
  | Some 0 -> begin
      match Propagate.forwarding_path outcome n with
      | Some walk when not (List.exists (Asn.equal attacker) walk) ->
          Some (attacker :: walk)
      | Some _ | None -> None
    end
  | Some _ | None -> None

let find_return_path graph outcome ~attacker =
  let attacker_id = As_graph.Indexed.id_of_asn graph attacker in
  let candidates = ref [] in
  Array.iter
    (fun (n_id, _rel) ->
       match clean_via graph outcome ~attacker n_id with
       | Some walk -> candidates := (List.length walk, walk) :: !candidates
       | None -> ())
    (As_graph.Indexed.neighbors graph attacker_id);
  match List.sort (fun (l1, _) (l2, _) -> Int.compare l1 l2) !candidates with
  | (_, walk) :: _ -> Some walk
  | [] -> None

let summarize graph outcome ~victim_origin ~attacker =
  let captured = Propagate.captured outcome 1 in
  let routed = Propagate.routed_count outcome in
  let capture_fraction =
    if routed = 0 then 0.
    else float_of_int (List.length captured) /. float_of_int routed
  in
  let return_path = find_return_path graph outcome ~attacker in
  (* An interception that captures nobody but the attacker is pointless;
     one without a clean return path is a blackholing hijack, not an
     interception. *)
  let nontrivial = List.exists (fun a -> not (Asn.equal a attacker)) captured in
  { outcome; victim = victim_origin; attacker; captured; capture_fraction;
    feasible = Option.is_some return_path && nontrivial;
    return_path = (if nontrivial then return_path else None) }

let m_runs =
  Metrics.counter ~help:"interception attempts simulated"
    "attack.interception.runs"

let run graph ?failed ?rov ?scope ~victim ~attacker () =
  let victim_origin = victim.Announcement.origin in
  if Asn.equal attacker victim_origin then
    invalid_arg "Interception.run: attacker is the victim";
  Metrics.incr m_runs;
  let base_bogus =
    Announcement.originate attacker victim.Announcement.prefix
    |> Announcement.with_fake_suffix [ victim_origin ]
  in
  match scope with
  | Some s ->
      if not (Asn.equal s.Announcement.origin attacker)
         || not (Prefix.equal s.Announcement.prefix victim.Announcement.prefix)
      then invalid_arg "Interception.run: scope origin/prefix mismatch";
      let outcome = Propagate.compute graph ?failed ?rov [ victim; s ] in
      summarize graph outcome ~victim_origin ~attacker
  | None ->
      (* Ballani-style selective announcement: try the full announcement
         first (maximal capture); if no clean uplink survives, withhold the
         announcement from one neighbor at a time (providers first — their
         routes are usable for sending regardless of export policy) until a
         clean return path exists. *)
      let attacker_id = As_graph.Indexed.id_of_asn graph attacker in
      let neighbors =
        Array.to_list (As_graph.Indexed.neighbors graph attacker_id)
      in
      let rel_rank = function
        | Relationship.Provider -> 0
        | Relationship.Peer -> 1
        | Relationship.Customer -> 2
      in
      let by_pref =
        List.sort (fun (_, r1) (_, r2) -> Int.compare (rel_rank r1) (rel_rank r2))
          neighbors
      in
      let all_neighbor_set =
        List.fold_left
          (fun acc (n_id, _) ->
             Asn.Set.add (As_graph.Indexed.asn_of_id graph n_id) acc)
          Asn.Set.empty neighbors
      in
      let attempt spared =
        let bogus =
          match spared with
          | None -> base_bogus
          | Some n ->
              Announcement.with_export_to (Asn.Set.remove n all_neighbor_set)
                base_bogus
        in
        let outcome = Propagate.compute graph ?failed ?rov [ victim; bogus ] in
        summarize graph outcome ~victim_origin ~attacker
      in
      let full = attempt None in
      if full.feasible then full
      else begin
        let rec try_candidates = function
          | [] -> full  (* report the infeasible full-announcement attempt *)
          | (n_id, _) :: rest ->
              let n = As_graph.Indexed.asn_of_id graph n_id in
              let r = attempt (Some n) in
              if r.feasible then r else try_candidates rest
        in
        try_candidates (match by_pref with
                        | xs when List.length xs > 6 -> List.filteri (fun i _ -> i < 6) xs
                        | xs -> xs)
      end

let observes t a =
  Asn.equal a t.attacker || List.exists (Asn.equal a) t.captured

let wins t a = t.feasible && observes t a
