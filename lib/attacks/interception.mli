(** BGP prefix interception (§3.2, after Ballani et al.).

    Like a hijack, but the attacker keeps a working route back to the
    victim and forwards the captured traffic onward, so connections stay
    alive and end-to-end timing analysis can run to completion. The
    attacker announces the victim's prefix with the victim's ASN appended
    ([attacker, victim]): loop detection keeps the announcement out of the
    victim's own neighborhood, and the extra hop makes the bogus path look
    plausible.

    Feasibility (the crux of a real interception): after the announcement
    pollutes part of the Internet, the attacker must still have a neighbor
    whose best route to the victim's prefix is the {e legitimate} one and
    whose forwarding path avoids the attacker; otherwise captured traffic
    has nowhere clean to go and the "interception" degrades into a hijack.
    Following Ballani et al., the attacker announces {e selectively}: if a
    full announcement pollutes every uplink, it withholds the announcement
    from one neighbor at a time (providers first) until a clean return
    path survives, and only then mounts the attack. *)

type t = {
  outcome : Propagate.t;        (** routing with the bogus route in play *)
  victim : Asn.t;
  attacker : Asn.t;
  captured : Asn.t list;        (** ASes deflected through the attacker *)
  capture_fraction : float;
  feasible : bool;              (** a clean return path exists *)
  return_path : Asn.t list option;
      (** attacker-first AS walk the re-injected traffic takes to the
          victim, if feasible *)
}

val run :
  As_graph.Indexed.t -> ?failed:Link_set.t -> ?rov:Rpki.t * Asn.Set.t ->
  ?scope:Announcement.t -> victim:Announcement.t ->
  attacker:Asn.t -> unit -> t
(** [run graph ~victim ~attacker ()] mounts the interception. [?scope]
    replaces the default bogus announcement with a customised one (e.g.
    community-scoped via {!Announcement.with_export_to} /
    {!Announcement.with_max_radius}) — its origin and prefix must match
    [attacker] and the victim's prefix.
    @raise Invalid_argument if attacker = victim's origin, or [scope] is
    inconsistent. *)

val observes : t -> Asn.t -> bool
(** Is this AS's traffic toward the victim visible to the attacker? The
    attacker itself always observes. *)

val wins : t -> Asn.t -> bool
(** The §3.2 interception win condition against one client AS: the
    attack is {!feasible} (captured traffic can still be delivered, so
    connections survive and timing analysis completes) {e and} the
    client's traffic is visible to the attacker. The [static]
    differential suite checks every win against
    [Qs_analysis.Static_surface.can_intercept]. *)
