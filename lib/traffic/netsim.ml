type node = int

type packet = {
  src : Ipv4.t;
  dst : Ipv4.t;
  sport : int;
  dport : int;
  seq : int;
  ack : int;
  payload : int;
  wnd : int;
  syn : bool;
  fin : bool;
}

let pp_packet ppf p =
  Format.fprintf ppf "%a:%d > %a:%d seq=%d ack=%d len=%d wnd=%d%s%s" Ipv4.pp p.src
    p.sport Ipv4.pp p.dst p.dport p.seq p.ack p.payload p.wnd
    (if p.syn then " SYN" else "")
    (if p.fin then " FIN" else "")

type link_dir = {
  latency : float;
  jitter : float;
  loss : float;
  mutable tap : (float -> packet -> unit) option;
  mutable last_delivery : float;  (* enforce in-order delivery *)
}

type event =
  | Deliver of node * packet
  | Timer of (t -> unit)

and t = {
  rng : Rng.t;
  mutable time : float;
  queue : event Pqueue.t;
  mutable handlers : (t -> packet -> unit) option array;
  mutable n_nodes : int;
  links : (int * int, link_dir) Hashtbl.t;  (* directed *)
}

let create ~rng () =
  { rng; time = 0.; queue = Pqueue.create (); handlers = Array.make 16 None;
    n_nodes = 0; links = Hashtbl.create 32 }

let now t = t.time

let add_node t =
  if t.n_nodes = Array.length t.handlers then begin
    let handlers = Array.make (2 * t.n_nodes) None in
    Array.blit t.handlers 0 handlers 0 t.n_nodes;
    t.handlers <- handlers
  end;
  let id = t.n_nodes in
  t.n_nodes <- t.n_nodes + 1;
  id

let set_handler t node f =
  if node < 0 || node >= t.n_nodes then invalid_arg "Netsim.set_handler: bad node";
  t.handlers.(node) <- Some f

let link t a b ~latency ?(jitter = 0.) ?(loss = 0.) () =
  if a = b then invalid_arg "Netsim.link: self link";
  if Hashtbl.mem t.links (a, b) then invalid_arg "Netsim.link: duplicate link";
  let dir () =
    { latency; jitter; loss; tap = None; last_delivery = 0. }
  in
  Hashtbl.replace t.links (a, b) (dir ());
  Hashtbl.replace t.links (b, a) (dir ())

let get_link t a b =
  match Hashtbl.find_opt t.links (a, b) with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Netsim: no link %d -> %d" a b)

let set_tap t ~from ~to_ f = (get_link t from to_).tap <- Some f

let send t ~from ~to_ packet =
  let l = get_link t from to_ in
  (match l.tap with
   | Some tap -> tap t.time packet
   | None -> ());
  if Rng.float t.rng 1.0 >= l.loss then begin
    let arrival = t.time +. l.latency +. Rng.float t.rng (max 0. l.jitter) in
    (* FIFO links: jitter cannot reorder packets. *)
    let arrival = Float.max arrival l.last_delivery in
    l.last_delivery <- arrival;
    Pqueue.push t.queue arrival (Deliver (to_, packet))
  end

let schedule t delay f = Pqueue.push t.queue (t.time +. delay) (Timer f)

let run ?(until = infinity) t =
  let continue = ref true in
  while !continue do
    match Pqueue.min_key t.queue with
    | None -> continue := false
    | Some key when key > until ->
        t.time <- until;
        continue := false
    | Some _ -> (
        match Pqueue.pop t.queue with
        | None -> continue := false
        | Some (time, ev) ->
            t.time <- time;
            (match ev with
             | Deliver (node, packet) -> begin
                 match t.handlers.(node) with
                 | Some h -> h t packet
                 | None -> ()
               end
             | Timer f -> f t))
  done
