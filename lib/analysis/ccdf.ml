type t = { sorted : float array }

let of_samples xs =
  let sorted = Array.of_list xs in
  Array.sort Float.compare sorted;
  { sorted }

let size t = Array.length t.sorted

(* Index of the first element >= x, by binary search. *)
let lower_bound t x =
  let n = Array.length t.sorted in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.sorted.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let at t x =
  let n = Array.length t.sorted in
  (* Empty sample: no sample is >= x, so the tail mass is 0 everywhere
     (and not the 0/0 = nan the unguarded division would produce). *)
  if n = 0 then 0.
  else float_of_int (n - lower_bound t x) /. float_of_int n

let points t =
  let n = Array.length t.sorted in
  let rec distinct i acc =
    if i >= n then List.rev acc
    else if i > 0 && t.sorted.(i) = t.sorted.(i - 1) then distinct (i + 1) acc
    else distinct (i + 1) ((t.sorted.(i), at t t.sorted.(i)) :: acc)
  in
  distinct 0 []

let eval_at t xs = List.map (fun x -> (x, at t x)) xs

let quantile_where t q =
  if Array.length t.sorted = 0 then None
  else
    match
      List.find_map (fun (x, p) -> if p <= q then Some x else None) (points t)
    with
    | Some _ as found -> found
    | None ->
        (* [q] is below the tail mass at the maximum: no sample value has
           [at t x <= q], and the largest sample is the tightest answer. *)
        Some t.sorted.(Array.length t.sorted - 1)
