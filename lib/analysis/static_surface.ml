let m_closures = Metrics.counter ~help:"valley-free closures computed" "surface.closures"
let m_pairs = Metrics.counter ~help:"(client, guard) pairs evaluated" "surface.pairs"

let m_adversaries =
  Metrics.counter ~help:"candidate adversaries evaluated" "surface.adversaries"

type t = {
  reach : Reach.t;
  cache : Reach.closure Asn.Table.t;
}

let create graph = { reach = Reach.create graph; cache = Asn.Table.create 64 }

let closure t a =
  match Asn.Table.find_opt t.cache a with
  | Some c -> c
  | None ->
      let c = Reach.compute t.reach a in
      Metrics.incr m_closures;
      Asn.Table.add t.cache a c;
      c

let exposure_bound t ~client ~guard =
  Reach.exposure ~src:(closure t client) ~dst:(closure t guard)

(* Non-empty exposure iff the endpoints are mutually reachable: any
   valley-free client->guard walk puts both endpoints in the bound, and
   conversely the guard is on such a walk iff one exists. *)
let pair_connected t ~client ~guard = Reach.reaches (closure t client) guard

let can_hear t ~listener ~origin = Reach.reaches (closure t origin) listener

(* Customer-cone protection (equal-specific races only): if the victim is
   in x's customer cone and the adversary is not, every customer-learned
   route at x descends to an origin inside the cone — so x always holds a
   customer route to the true origin and prefers it over anything the
   adversary (reaching x only via peers or providers) can offer. *)
let protected_ t ~adversary ~victim x =
  Reach.uphill_only (closure t victim) x
  && not (Reach.uphill_only (closure t adversary) x)

let can_blackhole t ?(same_prefix = false) ~adversary ~victim x =
  Reach.reaches (closure t adversary) x
  && not (same_prefix && protected_ t ~adversary ~victim x)

let can_intercept t ~adversary ~victim x =
  can_blackhole t ~same_prefix:true ~adversary ~victim x
  && can_hear t ~listener:adversary ~origin:victim

type feasibility = {
  adversary : Asn.t;
  pairs : int;
  blackhole_subprefix : int;
  blackhole_same_prefix : int;
  intercept : int;
}

let feasibility t ~pairs adversary =
  Metrics.incr m_adversaries;
  Metrics.add m_pairs (List.length pairs);
  (* The return-path leg of interception does not depend on the pair, so
     hoist it out of the per-pair loop. *)
  let returnable victim = can_hear t ~listener:adversary ~origin:victim in
  List.fold_left
    (fun acc (client, guard) ->
       let sub = can_blackhole t ~adversary ~victim:guard client in
       let same =
         sub && can_blackhole t ~same_prefix:true ~adversary ~victim:guard client
       in
       let icept = same && returnable guard in
       { acc with
         pairs = acc.pairs + 1;
         blackhole_subprefix = acc.blackhole_subprefix + Bool.to_int sub;
         blackhole_same_prefix = acc.blackhole_same_prefix + Bool.to_int same;
         intercept = acc.intercept + Bool.to_int icept })
    { adversary; pairs = 0; blackhole_subprefix = 0; blackhole_same_prefix = 0;
      intercept = 0 }
    pairs

let resilience t ~adversaries ~victim x =
  match adversaries with
  | [] -> 1.0
  | _ ->
      let safe =
        List.fold_left
          (fun n a ->
             if can_blackhole t ~same_prefix:true ~adversary:a ~victim x then n
             else n + 1)
          0 adversaries
      in
      float_of_int safe /. float_of_int (List.length adversaries)
