(** Static attack-surface bounds over the AS graph.

    This is the no-simulation half of the paper's question: which ASes
    {e can ever} observe, blackhole, or intercept a (client, guard) pair
    under Gao–Rexford export policies? Everything here is derived from
    {!Qs_topology.Reach} valley-free closures on the {e intact} graph, so
    by closure monotonicity the answers are upper bounds that stay valid
    for every churn state, failure pattern, and tie-break the dynamic
    simulator can reach. The [static] differential suite
    ([Qs_check.Differential]) audits exactly that containment against
    the live pipeline.

    Three refinements make the bounds non-trivial:

    - {b exposure} ({!exposure_bound}): an AS can sit on a forwarding
      path between [client] and [guard] only if it lies on some
      valley-free walk between them ({!Reach.on_some_path});
    - {b hearing} ({!can_hear}): an AS can be offered a route for a
      prefix only if it is in the origin's valley-free forward closure;
    - {b customer-cone protection}: in a {e same-prefix} race (equally
      specific bogus announcement, longest-prefix match cannot decide),
      an AS [x] with the victim in its customer cone and the adversary
      outside it always prefers a customer-learned route descending to
      the true origin — such an [x] can never be captured, whatever
      prepending or scoping the adversary tries. {!can_blackhole}
      [~same_prefix:true] subtracts this protected set; for
      more-specific hijacks no such protection exists and the bound is
      the plain hear set.

    A {!t} caches one closure per source AS (a byte per graph node, so a
    few KB each) and is single-threaded like the underlying
    {!Reach.t} workspace — use one per domain
    ([Qs_exec.Pool.per_domain]). *)

type t

val create : As_graph.Indexed.t -> t
(** A fresh analyzer (empty closure cache) over one indexed graph. *)

val closure : t -> Asn.t -> Reach.closure
(** The cached full-graph valley-free closure from one AS.
    @raise Not_found if the AS is not in the graph. *)

val exposure_bound : t -> client:Asn.t -> guard:Asn.t -> Asn.Set.t
(** Every AS that can appear on {e any} policy-compliant forward or
    reverse path between the pair ({!Reach.exposure}); both endpoints
    are always members when the pair is connected. Empty iff no
    valley-free walk joins the endpoints. *)

val pair_connected : t -> client:Asn.t -> guard:Asn.t -> bool
(** Some valley-free walk joins client and guard (non-empty exposure
    bound, without materializing the set). *)

val can_hear : t -> listener:Asn.t -> origin:Asn.t -> bool
(** Can [listener] ever be offered a route for a prefix originated (or
    forged) at [origin]? True iff [listener] is in [origin]'s forward
    closure. This is the QS403 vantage predicate: a collector whose
    peer fails it for a monitored prefix records nothing, statically. *)

val can_blackhole :
  t -> ?same_prefix:bool -> adversary:Asn.t -> victim:Asn.t -> Asn.t -> bool
(** [can_blackhole t ~adversary ~victim x]: can the adversary, by
    originating a bogus route for the victim's prefix, ever attract
    [x]'s traffic? Default ([same_prefix:false]) is the more-specific
    hijack bound: every AS that can hear the adversary.
    [~same_prefix:true] additionally subtracts the customer-cone
    protected set (see above), which is sound only for equally-specific
    races. *)

val can_intercept : t -> adversary:Asn.t -> victim:Asn.t -> Asn.t -> bool
(** Interception needs the capture {e and} a policy-compliant return
    path from the adversary to the true origin that survives the
    adversary's own announcement: [can_blackhole ~same_prefix:true]
    conjoined with [can_hear ~listener:adversary ~origin:victim]. *)

type feasibility = {
  adversary : Asn.t;
  pairs : int;  (** monitored pairs evaluated *)
  blackhole_subprefix : int;
      (** pairs whose client the adversary can capture with a
          more-specific bogus prefix *)
  blackhole_same_prefix : int;
      (** pairs whose client it can capture in an equal-specific race *)
  intercept : int;  (** pairs it can capture {e and} still deliver *)
}

val feasibility : t -> pairs:(Asn.t * Asn.t) list -> Asn.t -> feasibility
(** Evaluate one candidate adversary against a list of
    [(client, guard-origin)] pairs: counts of pairs it can ever
    blackhole (both prefix regimes) or intercept. Fractions of the
    paper's §3.2 kind are [float count /. float pairs]. *)

val resilience : t -> adversaries:Asn.t list -> victim:Asn.t -> Asn.t -> float
(** Counter-RAPTOR-style resilience of AS [x] for a prefix originated at
    [victim]: the fraction of candidate adversaries that can {e never}
    capture [x] in an equal-specific race. 1.0 for an empty candidate
    list. A sound {e lower} bound on the dynamic resilience (static
    capture is necessary for dynamic capture). *)
