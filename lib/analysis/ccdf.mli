(** Complementary cumulative distribution functions — the paper presents
    both panels of Figure 3 as CCDFs. *)

type t

val of_samples : float list -> t
(** Total, including on the empty sample: an empty CCDF has {!size} 0,
    {!at} 0 everywhere, no {!points} and no quantiles — it never raises
    and never manufactures a phantom sample. *)

val at : t -> float -> float
(** [at t x] = fraction of samples [>= x], in [\[0, 1\]]. [0.] everywhere
    on an empty sample (never [nan]). *)

val points : t -> (float * float) list
(** The distinct sample values [x] ascending, each with [at t x]. *)

val size : t -> int
(** Number of samples the CCDF was built from. *)

val eval_at : t -> float list -> (float * float) list
(** CCDF sampled at the given x values (for printing fixed tables). *)

val quantile_where : t -> float -> float option
(** [quantile_where t q] = the smallest sample x with [at t x <= q]:
    "the value past which only a fraction q of cases remain". When [q] is
    below the tail mass at the maximum (no sample satisfies the bound —
    e.g. [q = 0], or heavy ties at the top), the maximum sample is
    returned — always [Some] on a non-empty sample, [None] only on the
    empty one. *)
