type t = {
  name : string;
  emit : (Event.t * string) array -> unit;
  close : unit -> unit;
}

let make ~name ?(close = fun () -> ()) emit = { name; emit; close }

let name t = t.name
let emit t batch = if Array.length batch > 0 then t.emit batch
let close t = t.close ()

let null = make ~name:"null" (fun _ -> ())

let memory () =
  let events = ref [] in
  let sink =
    make ~name:"memory" (fun batch ->
        Array.iter (fun (e, _) -> events := e :: !events) batch)
  in
  (sink, fun () -> List.rev !events)

let jsonl ?(name = "jsonl") oc =
  make ~name
    ~close:(fun () -> flush oc)
    (fun batch ->
       Array.iter
         (fun (_, line) ->
            output_string oc line;
            output_char oc '\n')
         batch;
       flush oc)

let formatter ?(name = "text") ppf =
  make ~name (fun batch ->
      Array.iter (fun (e, _) -> Format.fprintf ppf "%a@." Event.pp e) batch)
