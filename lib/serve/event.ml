type t =
  | Path_change of {
      key : Measurement.key;
      time : float;
      total : int;
      in_window : int;
    }
  | Extra_as of {
      key : Measurement.key;
      time : float;
      asn : Asn.t;
      run : float;
    }
  | Evicted of {
      key : Measurement.key;
      time : float;
      cell : Measurement.cell option;
    }
  | Alert of Alert.t
  | Violation of { invariant : string; message : string }

let time = function
  | Path_change { time; _ } | Extra_as { time; _ } | Evicted { time; _ } ->
      Some time
  | Alert a -> Some a.Alert.time
  | Violation _ -> None

let label = function
  | Path_change _ -> "path_change"
  | Extra_as _ -> "extra_as"
  | Evicted _ -> "evicted"
  | Alert _ -> "alert"
  | Violation _ -> "violation"

(* Minimal RFC 8259 string escaping — same policy as Diag.report_json. *)
let esc s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
           Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num f = Printf.sprintf "%.6f" f

let key_fields (k : Measurement.key) =
  Printf.sprintf "\"collector\":\"%s\",\"peer\":%d,\"prefix\":\"%s\""
    (esc k.Measurement.session.Update.collector)
    (Asn.to_int k.Measurement.session.Update.peer)
    (esc (Prefix.to_string k.Measurement.prefix))

let to_json = function
  | Path_change { key; time; total; in_window } ->
      Printf.sprintf
        "{\"event\":\"path_change\",\"time\":%s,%s,\"total\":%d,\"in_window\":%d}"
        (num time) (key_fields key) total in_window
  | Extra_as { key; time; asn; run } ->
      Printf.sprintf
        "{\"event\":\"extra_as\",\"time\":%s,%s,\"asn\":%d,\"run\":%s}"
        (num time) (key_fields key) (Asn.to_int asn) (num run)
  | Evicted { key; time; cell } ->
      let counts =
        match cell with
        | None -> "\"measured\":false"
        | Some c ->
            Printf.sprintf
              "\"measured\":true,\"updates\":%d,\"path_changes\":%d"
              c.Measurement.updates c.Measurement.path_changes
      in
      Printf.sprintf "{\"event\":\"evicted\",\"time\":%s,%s,%s}" (num time)
        (key_fields key) counts
  | Alert a ->
      Printf.sprintf
        "{\"event\":\"alert\",\"time\":%s,\"detector\":\"%s\",\"kind\":\"%s\",\
         \"collector\":\"%s\",\"peer\":%d,\"prefix\":\"%s\",\"summary\":\"%s\",\
         \"evidence\":%d}"
        (num a.Alert.time) (esc a.Alert.detector) (esc a.Alert.kind)
        (esc a.Alert.session.Update.collector)
        (Asn.to_int a.Alert.session.Update.peer)
        (esc (Prefix.to_string a.Alert.prefix))
        (esc a.Alert.summary)
        (List.length a.Alert.evidence)
  | Violation { invariant; message } ->
      Printf.sprintf
        "{\"event\":\"violation\",\"invariant\":\"%s\",\"message\":\"%s\"}"
        (esc invariant) (esc message)

let pp ppf = function
  | Path_change { key; time; total; in_window } ->
      Format.fprintf ppf "%.0f path-change %a %a (total %d, window %d)" time
        Update.pp_session key.Measurement.session Prefix.pp
        key.Measurement.prefix total in_window
  | Extra_as { key; time; asn; run } ->
      Format.fprintf ppf "%.0f extra-AS %a on %a %a (run %.0f s)" time Asn.pp
        asn Update.pp_session key.Measurement.session Prefix.pp
        key.Measurement.prefix run
  | Evicted { key; time; _ } ->
      Format.fprintf ppf "%.0f evicted %a %a" time Update.pp_session
        key.Measurement.session Prefix.pp key.Measurement.prefix
  | Alert a -> Format.fprintf ppf "alert %a" Alert.pp a
  | Violation { invariant; message } ->
      Format.fprintf ppf "violation [%s] %s" invariant message
