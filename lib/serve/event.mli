(** The serve subsystem's subscription-channel payload: one variant per
    thing a subscriber can learn from the live stream.

    Rendering is pure and byte-stable: two runs that compute the same
    events render the same JSON, whatever the worker count — that is the
    [--jobs] byte-identity contract of [quicksand serve], enforced by
    [test/test_serve.ml]. *)

type t =
  | Path_change of {
      key : Measurement.key;
      time : float;
      total : int;       (** lifetime path changes for the key *)
      in_window : int;   (** path changes inside the sliding window *)
    }
  | Extra_as of {
      key : Measurement.key;
      time : float;  (** the moment the threshold was first satisfied *)
      asn : Asn.t;
      run : float;   (** contiguous on-path seconds at emission *)
    }  (** a non-baseline AS crossed the contiguous-residency threshold
          (the paper's 5-minute rule) on a watched pair *)
  | Evicted of {
      key : Measurement.key;
      time : float;
      cell : Measurement.cell option;
          (** the key's sealed statistics for the evicted life; [None]
              for a withdraw-only life (nothing measurable) *)
    }  (** the window reclaimed a dead key (route withdrawn, idle for a
          full window) — the bounded-memory guarantee in action *)
  | Alert of Alert.t
  | Violation of { invariant : string; message : string }
      (** the conformance observer riding the stream found an invariant
          break — always a bug somewhere upstream *)

val time : t -> float option
(** Event time ([None] for violations, which are end-of-stream). *)

val label : t -> string
(** Stable event-kind tag, the ["event"] field of {!to_json}. *)

val to_json : t -> string
(** One JSON object, no trailing newline. Pure; safe to render on pool
    workers. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-liner. *)
