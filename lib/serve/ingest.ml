type config = {
  capacity : int;
  slack : float;
}

let default_config = { capacity = 65536; slack = 120. }

type push_result = [ `Accepted | `Dropped_late | `Dropped_overflow ]

type stats = {
  ingested : int;
  released : int;
  dropped_late : int;
  dropped_overflow : int;
  queued : int;
  max_seen : float;
  watermark : float;
}

type t = {
  cfg : config;
  queue : Update.t Pqueue.t;
  mutable ingested : int;
  mutable released : int;
  mutable dropped_late : int;
  mutable dropped_overflow : int;
  mutable max_seen : float;
}

let create ?(config = default_config) () =
  if config.capacity <= 0 then
    invalid_arg "Ingest.create: capacity must be positive";
  if config.slack < 0. then invalid_arg "Ingest.create: slack must be >= 0";
  { cfg = config;
    queue = Pqueue.create ();
    ingested = 0;
    released = 0;
    dropped_late = 0;
    dropped_overflow = 0;
    max_seen = neg_infinity }

let config t = t.cfg

let watermark t =
  if t.max_seen = neg_infinity then neg_infinity
  else t.max_seen -. t.cfg.slack

let queued t = Pqueue.length t.queue

let push t (u : Update.t) : push_result =
  t.ingested <- t.ingested + 1;
  if u.Update.time < watermark t then begin
    t.dropped_late <- t.dropped_late + 1;
    `Dropped_late
  end
  else if Pqueue.length t.queue >= t.cfg.capacity then begin
    t.dropped_overflow <- t.dropped_overflow + 1;
    `Dropped_overflow
  end
  else begin
    Pqueue.push t.queue u.Update.time u;
    if u.Update.time > t.max_seen then t.max_seen <- u.Update.time;
    `Accepted
  end

let ready t =
  let due = Pqueue.pop_until t.queue (watermark t) in
  t.released <- t.released + List.length due;
  List.map snd due

let flush t =
  let rest = Pqueue.drain t.queue in
  t.released <- t.released + List.length rest;
  List.map snd rest

let stats t =
  { ingested = t.ingested;
    released = t.released;
    dropped_late = t.dropped_late;
    dropped_overflow = t.dropped_overflow;
    queued = queued t;
    max_seen = t.max_seen;
    watermark = watermark t }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "ingest: %d ingested = %d released + %d late + %d overflow + %d queued \
     (watermark %.0f)"
    s.ingested s.released s.dropped_late s.dropped_overflow s.queued
    s.watermark

(* MRT records are length-headered (12-byte header, big-endian length at
   offset 8), so chunk boundaries are found with a cheap linear scan and
   the expensive BGP attribute parsing runs as pool tasks. Slice order is
   submission order, so the result is byte-identical at any [jobs]. *)
let mrt_record_ends data =
  let len = String.length data in
  let rec scan pos acc =
    if pos >= len then List.rev acc
    else if pos + 12 > len then raise (Mrt.Malformed "truncated MRT header")
    else
      let rlen = Int32.to_int (String.get_int32_be data (pos + 8)) in
      if rlen < 0 || pos + 12 + rlen > len then
        raise (Mrt.Malformed "MRT record overruns buffer")
      else scan (pos + 12 + rlen) ((pos + 12 + rlen) :: acc)
  in
  scan 0 []

let decode_mrt ?(chunk = 512) ~collector ~exec data =
  if chunk <= 0 then invalid_arg "Ingest.decode_mrt: chunk must be positive";
  let ends = Array.of_list (mrt_record_ends data) in
  let n = Array.length ends in
  let slices = ref [] in
  let start = ref 0 in
  let i = ref 0 in
  while !i < n do
    let last = min (n - 1) (!i + chunk - 1) in
    slices := (!start, ends.(last) - !start) :: !slices;
    start := ends.(last);
    i := last + 1
  done;
  List.rev !slices
  |> Pool.map_list exec (fun (off, len) ->
      Mrt.decode (String.sub data off len)
      |> List.concat_map (Mrt.update_of_record ~collector))
  |> List.concat
