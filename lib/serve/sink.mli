(** Pluggable event subscribers.

    The serve loop renders events centrally (JSON lines, chunked over the
    pool) and hands each sink batches of [(event, rendered JSON)] pairs in
    stream order, so a sink is just a consumer — it never formats, blocks
    the hot path on per-event flushes, or sees events out of order. *)

type t

val make :
  name:string -> ?close:(unit -> unit) ->
  ((Event.t * string) array -> unit) -> t

val name : t -> string

val emit : t -> (Event.t * string) array -> unit
(** Deliver one batch (skipped when empty). Batches arrive in stream
    order; pairs within a batch are in stream order too. *)

val close : t -> unit
(** Flush/release whatever the sink holds. The serve loop closes every
    subscribed sink exactly once, at end of stream. *)

val null : t
(** Discards everything (benchmark harness). *)

val memory : unit -> t * (unit -> Event.t list)
(** In-memory sink for tests: the second component returns everything
    captured so far, oldest first. *)

val jsonl : ?name:string -> out_channel -> t
(** One JSON object per line. Flushes per batch and on {!close}; the
    channel itself is owned by the caller (stdout) or closed by the
    caller's wrapper (files). *)

val formatter : ?name:string -> Format.formatter -> t
(** Human-readable one-liner per event ({!Event.pp}). *)
