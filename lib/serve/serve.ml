module Config = struct
  type t = {
    window : float;
    bucket : float;
    threshold : float;
    slack : float;
    capacity : int;
    chunk : int;
    learning_period : float;
    monitored : (Prefix.t * Prefix.t) list;
  }

  let default =
    { window = 3600.;
      bucket = 60.;
      threshold = 300.;
      slack = 120.;
      capacity = 65536;
      chunk = 512;
      learning_period = 21600.;
      monitored = [] }

  let view t =
    { Serve_lint.window = t.window;
      bucket = t.bucket;
      threshold = t.threshold;
      slack = t.slack;
      capacity = t.capacity;
      chunk = t.chunk;
      monitored = t.monitored }

  let window_config t =
    { Window.window = t.window; bucket = t.bucket; threshold = t.threshold }

  let ingest_config t = { Ingest.capacity = t.capacity; slack = t.slack }
end

(* The whole serve.* health surface registers here — one module, so one
   reference to any [Serve] value initializes every name the manifest
   declares (the linker only initializes referenced modules; QS306
   cross-checks manifest and registry in both directions). *)
let m_ingested =
  Metrics.counter ~help:"updates offered to the serve ingest queue"
    "serve.ingested"

let m_released =
  Metrics.counter ~help:"updates released past the watermark into the window"
    "serve.released"

let m_dropped_late =
  Metrics.counter ~help:"updates dropped as older than the watermark"
    "serve.dropped_late"

let m_dropped_overflow =
  Metrics.counter ~help:"updates dropped on a full ingest queue"
    "serve.dropped_overflow"

let g_queue_depth =
  Metrics.gauge ~help:"updates currently buffered in the ingest queue"
    "serve.queue_depth"

let g_watermark_lag =
  Metrics.gauge ~help:"seconds between the newest ingested update and the \
                       window's watermark"
    "serve.watermark_lag"

let g_live_keys =
  Metrics.gauge ~help:"(session, prefix) keys live in the sliding window"
    "serve.live_keys"

let g_ghost_keys =
  Metrics.gauge ~help:"evicted keys parked as ghosts" "serve.ghost_keys"

let m_evictions =
  Metrics.counter ~help:"window evictions of dead keys" "serve.evictions"

let m_events =
  Metrics.counter ~help:"events emitted on the subscription channel"
    "serve.events"

let m_alerts = Metrics.counter ~help:"alerts raised" "serve.alerts"

let m_alerts_moas =
  Metrics.counter ~help:"MOAS alerts raised" "serve.alerts_moas"

let m_alerts_subprefix =
  Metrics.counter ~help:"sub-prefix alerts raised" "serve.alerts_subprefix"

let m_alerts_adjacency =
  Metrics.counter ~help:"origin-adjacency alerts raised"
    "serve.alerts_adjacency"

let m_violations =
  Metrics.counter ~help:"conformance violations on the live stream"
    "serve.violations"

let h_update_seconds =
  Metrics.histogram
    ~help:"wall seconds per released update (batch average, timing-derived)"
    "serve.update_seconds"

let evidence_depth = 4

type t = {
  config : Config.t;
  exec : Pool.t;
  window : Window.t;
  ingest : Ingest.t;
  registry : Alert.registry;
  conformance : Conformance.t;
  evidence : Update.t list Prefix.Table.t;
  mutable sinks : Sink.t list;
  mutable pending : Event.t list;   (* newest first *)
  mutable n_pending : int;
  mutable alerts_log : Alert.t list; (* newest first *)
  mutable n_events : int;
  mutable drained : bool;
}

let create ?(config = Config.default) ?(duration = infinity)
    ?(watched = fun _ -> true) ?(sinks = []) ~exec () =
  (match Serve_lint.check (Config.view config) with
   | [] -> ()
   | d :: _ ->
       invalid_arg
         (Format.asprintf "Serve.create: invalid config: %a" Diag.pp d));
  let t =
    { config;
      exec;
      window = Window.create ~config:(Config.window_config config) ~watched ();
      ingest = Ingest.create ~config:(Config.ingest_config config) ();
      registry = Alert.registry ();
      conformance =
        Conformance.create ~duration ~require_global_order:true ();
      evidence = Prefix.Table.create 1024;
      sinks;
      pending = [];
      n_pending = 0;
      alerts_log = [];
      n_events = 0;
      drained = false }
  in
  Alert.register t.registry
    (Alert.c1c ~learning_period:config.Config.learning_period
       ~evidence:(fun p ->
           Option.value ~default:[] (Prefix.Table.find_opt t.evidence p))
       ());
  t

let subscribe t sink = t.sinks <- t.sinks @ [ sink ]

let alerts t = List.rev t.alerts_log

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let note_evidence t (u : Update.t) =
  let p = Update.prefix u in
  let old = Option.value ~default:[] (Prefix.Table.find_opt t.evidence p) in
  Prefix.Table.replace t.evidence p (u :: take (evidence_depth - 1) old)

let queue_events t evs =
  List.iter
    (fun e ->
       t.pending <- e :: t.pending;
       t.n_pending <- t.n_pending + 1;
       t.n_events <- t.n_events + 1;
       Metrics.incr m_events)
    evs

let flush_events t =
  if t.n_pending > 0 then begin
    let arr = Array.of_list (List.rev t.pending) in
    t.pending <- [];
    t.n_pending <- 0;
    (* Rendering is pure per event; chunk it over the pool. Submission
       order is preserved, so sinks see the stream in order and the
       output is byte-identical at any worker count. *)
    let rendered = Pool.map t.exec Event.to_json arr in
    let batch = Array.mapi (fun i e -> (e, rendered.(i))) arr in
    List.iter (fun s -> Sink.emit s batch) t.sinks
  end

let count_alert t (a : Alert.t) =
  t.alerts_log <- a :: t.alerts_log;
  Metrics.incr m_alerts;
  match a.Alert.kind with
  | "moas" -> Metrics.incr m_alerts_moas
  | "subprefix" -> Metrics.incr m_alerts_subprefix
  | "origin-adjacency" -> Metrics.incr m_alerts_adjacency
  | _ -> ()

let process_one t (u : Update.t) =
  Metrics.incr m_released;
  Conformance.observe t.conformance u;
  note_evidence t u;
  let window_events = Window.apply t.window u in
  let alerts = Alert.observe t.registry u in
  List.iter (count_alert t) alerts;
  queue_events t (window_events @ List.map (fun a -> Event.Alert a) alerts)

let set_gauges t =
  let is = Ingest.stats t.ingest in
  let ws = Window.stats t.window in
  Metrics.set g_queue_depth (float_of_int is.Ingest.queued);
  if is.Ingest.max_seen > neg_infinity then
    Metrics.set g_watermark_lag
      (Float.max 0. (is.Ingest.max_seen -. Window.watermark t.window));
  Metrics.set g_live_keys (float_of_int ws.Window.live);
  Metrics.set g_ghost_keys (float_of_int ws.Window.ghosts)

let pump t =
  let due = Ingest.ready t.ingest in
  let n = List.length due in
  if n > 0 then begin
    let t0 = Clock.now () in
    List.iter (process_one t) due;
    let dt = Clock.now () -. t0 in
    Metrics.observe h_update_seconds (dt /. float_of_int n);
    set_gauges t;
    if t.n_pending >= max 1 t.config.Config.chunk then flush_events t
  end;
  n

let offer t u =
  Metrics.incr m_ingested;
  (match Ingest.push t.ingest u with
   | `Accepted -> ()
   | `Dropped_late -> Metrics.incr m_dropped_late
   | `Dropped_overflow -> Metrics.incr m_dropped_overflow);
  ignore (pump t : int)

let drain ?initial t ~horizon =
  if t.drained then invalid_arg "Serve.drain: already drained";
  t.drained <- true;
  let rest = Ingest.flush t.ingest in
  List.iter (process_one t) rest;
  queue_events t (Window.drain t.window ~horizon);
  let violations = Conformance.finalize ?initial t.conformance in
  Metrics.add m_violations (List.length violations);
  queue_events t
    (List.map
       (fun (v : Conformance.violation) ->
          Event.Violation
            { invariant = v.Conformance.invariant;
              message = v.Conformance.message })
       violations);
  (* Window evictions may have happened before this final accounting;
     mirror the total into the registry once, at end of stream. *)
  Metrics.add m_evictions (Window.stats t.window).Window.evictions;
  set_gauges t;
  flush_events t;
  List.iter Sink.close t.sinks;
  violations

let window t = t.window
let ingest t = t.ingest
let events_emitted t = t.n_events

(* ------------------------------------------------------------------ *)
(* Replay: feed a simulated measurement period through the service.    *)

type replay_result = {
  r_config : Config.t;
  r_duration : float;
  r_cells : Measurement.cell list;
  r_alerts : Alert.t list;
  r_events : int;
  r_violations : Conformance.violation list;
  r_ingest : Ingest.stats;
  r_window : Window.stats;
  r_dyn : Dynamics.stats;
  r_filter : Session_reset.stats option;
}

let watched_of config scenario p =
  Tor_prefix.is_tor_prefix scenario.Scenario.tor_prefixes p
  || List.exists
       (fun (c, g) -> Prefix.equal c p || Prefix.equal g p)
       config.Config.monitored

let replay ?(dynamics = Dynamics.default_config) ?filter ?(no_filter = false)
    ?(extra_updates = []) ?(sinks = []) ?(config = Config.default) ~exec
    scenario =
  Span.with_ ~name:"serve.replay" @@ fun () ->
  let duration = dynamics.Dynamics.duration in
  let t =
    create ~config ~duration ~watched:(watched_of config scenario) ~sinks
      ~exec ()
  in
  (* Feed plumbing identical to [Measurement.run]: same RNG stream name,
     same session-reset filtering, same time-merge of extra updates — so
     the update multiset entering the service is exactly the batch one. *)
  let rng = Scenario.rng_for scenario "measurement" in
  let pending_extra = ref extra_updates in
  let flush_extra_until time =
    let rec loop () =
      match !pending_extra with
      | e :: rest when e.Update.time <= time ->
          pending_extra := rest;
          offer t e;
          loop ()
      | _ -> ()
    in
    loop ()
  in
  let downstream u =
    flush_extra_until u.Update.time;
    offer t u
  in
  let filter_state =
    if no_filter then None
    else Some (Session_reset.create ?config:filter ~emit:downstream ())
  in
  (* Tick-driven filter, exactly as [Measurement.run]: bounded emission
     delay, globally time-ordered post-filter stream — so the ingest
     stage's bounded slack never drops a straggler on replay. *)
  let emit =
    match filter_state with
    | Some f ->
        fun (u : Update.t) ->
          Session_reset.advance f u.Update.time;
          Session_reset.push f u
    | None -> downstream
  in
  let on_initial initial =
    Update.Session_map.iter
      (fun session table0 ->
         (match filter_state with
          | Some f ->
              Session_reset.preload_table f session (Prefix.Map.cardinal table0)
          | None -> ());
         Prefix.Map.iter
           (fun prefix route ->
              Window.set_baseline t.window { Measurement.session; prefix }
                (Route.as_set route))
           table0)
      initial
  in
  let initial, dyn_stats =
    Dynamics.run ~rng ~on_initial dynamics scenario.Scenario.world ~emit
  in
  (match filter_state with
   | Some f -> Session_reset.flush f
   | None -> ());
  flush_extra_until infinity;
  let violations = drain ~initial t ~horizon:duration in
  { r_config = config;
    r_duration = duration;
    r_cells = Window.cells t.window;
    r_alerts = alerts t;
    r_events = t.n_events;
    r_violations = violations;
    r_ingest = Ingest.stats t.ingest;
    r_window = Window.stats t.window;
    r_dyn = dyn_stats;
    r_filter = Option.map Session_reset.stats filter_state }

(* ------------------------------------------------------------------ *)
(* Batch reference arm.                                                *)

let batch_alerts ?(dynamics = Dynamics.default_config) ?filter
    ?(no_filter = false) ?(extra_updates = []) ~learning_period scenario =
  (* The tick-driven filter makes the post-filter stream globally
     time-ordered, so the batch detector consumes the [observe] hook
     directly — the very sequence the service's watermark releases. *)
  let monitor = Detection.create ~learning_period () in
  let batch = ref [] in
  let m =
    Measurement.run ~dynamics ?filter ~no_filter ~extra_updates
      ~observe:(fun u ->
          List.iter
            (fun a -> batch := Alert.of_alarm ~detector:"c1c" a :: !batch)
            (Detection.observe monitor u))
      scenario
  in
  (m, List.rev !batch)

(* ------------------------------------------------------------------ *)
(* Replay-equivalence verdict.                                         *)

let sort_cells cells =
  List.sort
    (fun (a : Measurement.cell) b -> Window.compare_key a.key b.key)
    cells

let pp_key ppf (k : Measurement.key) =
  Format.fprintf ppf "%a %a" Update.pp_session k.Measurement.session
    Prefix.pp k.Measurement.prefix

let sorted_assoc l =
  List.sort (fun (a, _) (b, _) -> Asn.compare a b) l

let assoc_equal a b =
  List.equal
    (fun (xa, da) (xb, db) -> Asn.equal xa xb && Float.equal da db)
    (sorted_assoc a) (sorted_assoc b)

let diff_cell ~threshold issues (s : Measurement.cell)
    (b : Measurement.cell) =
  let addf fmt = Format.kasprintf (fun m -> issues := m :: !issues) fmt in
  if not (Option.equal Asn.Set.equal s.baseline b.baseline) then
    addf "cell %a: baseline differs" pp_key s.key;
  if s.updates <> b.updates then
    addf "cell %a: updates %d (serve) vs %d (batch)" pp_key s.key s.updates
      b.updates;
  if s.path_changes <> b.path_changes then
    addf "cell %a: path changes %d (serve) vs %d (batch)" pp_key s.key
      s.path_changes b.path_changes;
  if not (Option.equal Asn.Set.equal s.final_set b.final_set) then
    addf "cell %a: final AS set differs" pp_key s.key;
  if not (assoc_equal s.residency b.residency) then
    addf "cell %a: residency differs" pp_key s.key;
  if not (assoc_equal s.contiguous b.contiguous) then
    addf "cell %a: contiguous runs differ" pp_key s.key;
  if
    not
      (Asn.Set.equal
         (Measurement.extra_ases ~threshold s)
         (Measurement.extra_ases ~threshold b))
  then addf "cell %a: extra-AS set differs" pp_key s.key

let diff_against_batch (r : replay_result) (m : Measurement.t)
    (batch_alerts : Alert.t list) =
  let issues = ref [] in
  let addf fmt = Format.kasprintf (fun s -> issues := s :: !issues) fmt in
  let is = r.r_ingest in
  if is.Ingest.dropped_late > 0 then
    addf "%d late drops in ingest (slack too small for the feed's disorder)"
      is.Ingest.dropped_late;
  if is.Ingest.dropped_overflow > 0 then
    addf "%d overflow drops in ingest (queue capacity too small)"
      is.Ingest.dropped_overflow;
  if is.Ingest.queued > 0 then
    addf "%d updates still queued after drain" is.Ingest.queued;
  List.iter
    (fun (v : Conformance.violation) ->
       addf "conformance violation [%s] %s" v.Conformance.invariant
         v.Conformance.message)
    r.r_violations;
  if List.length r.r_alerts <> List.length batch_alerts then
    addf "alert count %d (serve) vs %d (batch)" (List.length r.r_alerts)
      (List.length batch_alerts)
  else
    List.iteri
      (fun i (s, b) ->
         if not (Alert.equal s b) then
           addf "alert %d differs: %s (serve) vs %s (batch)" i
             s.Alert.summary b.Alert.summary)
      (List.combine r.r_alerts batch_alerts);
  let batch_cells = sort_cells m.Measurement.cells in
  if List.length r.r_cells <> List.length batch_cells then
    addf "cell count %d (serve) vs %d (batch)" (List.length r.r_cells)
      (List.length batch_cells)
  else
    List.iter2
      (fun (s : Measurement.cell) (b : Measurement.cell) ->
         if Window.compare_key s.key b.key <> 0 then
           addf "cell key mismatch: %a (serve) vs %a (batch)" pp_key s.key
             pp_key b.key
         else
           diff_cell ~threshold:r.r_config.Config.threshold issues s b)
      r.r_cells batch_cells;
  List.rev !issues

let pp_replay_summary ppf r =
  Format.fprintf ppf
    "@[<v>serve: %d cells, %d alerts, %d events, %d violations over %.0f s@,\
     %a@,%a@]"
    (List.length r.r_cells) (List.length r.r_alerts) r.r_events
    (List.length r.r_violations) r.r_duration Ingest.pp_stats r.r_ingest
    Window.pp_stats r.r_window
