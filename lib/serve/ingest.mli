(** The feed driver: a bounded reorder buffer with watermarking and
    explicit backpressure.

    Live collector feeds are only ordered per session; the window wants a
    globally time-ordered stream. The buffer holds updates until the
    watermark — the highest time seen minus a configurable [slack] —
    passes them, then releases them in (time, arrival) order. Anything
    later than the slack allows is dropped {e and counted}; anything
    beyond the bounded queue is dropped {e and counted} — the backpressure
    contract is that nothing ever disappears silently, enforced by the
    accounting identity

    {[ ingested = released + dropped_late + dropped_overflow + queued ]}

    which holds at every point of the stream (a qcheck property in
    [test/test_serve.ml]). *)

type config = {
  capacity : int;  (** max updates buffered; pushes beyond are dropped *)
  slack : float;   (** out-of-order tolerance, seconds. Must cover the
                       feed's reordering (e.g. twice the session-reset
                       filter's buffering window in replay) or late drops
                       break replay equivalence — loudly. *)
}

val default_config : config
(** 65536 updates, 120 s slack (twice the default reset-filter window). *)

type push_result = [ `Accepted | `Dropped_late | `Dropped_overflow ]

type stats = {
  ingested : int;         (** every push, accepted or not *)
  released : int;
  dropped_late : int;
  dropped_overflow : int;
  queued : int;
  max_seen : float;       (** [neg_infinity] before the first accept *)
  watermark : float;      (** [max_seen - slack] *)
}

type t

val create : ?config:config -> unit -> t
(** @raise Invalid_argument on a non-positive capacity or negative
    slack. *)

val config : t -> config
val watermark : t -> float
val queued : t -> int

val push : t -> Update.t -> push_result
(** Offer one update. [`Dropped_late] if its time is already behind the
    watermark, [`Dropped_overflow] if the queue is full — either way it
    is counted, never silently gone. *)

val ready : t -> Update.t list
(** Release everything at or before the watermark, in (time, arrival)
    order. Call after pushes; cheap when nothing is due. *)

val flush : t -> Update.t list
(** End of feed: release everything still queued, ordered. *)

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val decode_mrt :
  ?chunk:int -> collector:string -> exec:Pool.t -> string -> Update.t list
(** Decode a raw MRT byte stream into collector updates, parallelising
    the per-record BGP parsing over [exec] in slices of [chunk] (default
    512) records: record boundaries come from a cheap header scan, slices
    decode as pool tasks, and slice order is submission order — the
    result is byte-identical at any worker count.
    @raise Mrt.Malformed on truncated or invalid framing. *)
