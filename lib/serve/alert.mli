(** Structured alerts and the detector registry of the serve subsystem.

    A detector consumes the released (time-ordered) update stream and
    raises alert records; the registry fans one update out to every
    registered detector in registration order, so the merged alert
    stream is deterministic. The first detector is the paper's §5 C1c
    control-plane monitor ({!Detection}), wrapped so each alarm becomes
    a self-contained record with the evidence window attached. *)

type t = {
  detector : string;      (** registry name, e.g. ["c1c"] *)
  time : float;           (** event time of the triggering update *)
  session : Update.session_id;
  prefix : Prefix.t;      (** the (sub-)prefix the alarm is about *)
  kind : string;          (** ["moas"] | ["subprefix"] | ["origin-adjacency"] *)
  summary : string;       (** rendered one-line alarm text (byte-stable) *)
  evidence : Update.t list;
      (** most-recent-first updates for the prefix at alert time *)
}

type detector = {
  name : string;
  observe : Update.t -> t list;
}

type registry

val registry : unit -> registry

val register : registry -> detector -> unit
(** Appends; observation order is registration order.
    @raise Invalid_argument on a duplicate name. *)

val names : registry -> string list

val observe : registry -> Update.t -> t list
(** Feed one released update to every detector, concatenating alerts in
    registration order. *)

val c1c :
  ?learning_period:float -> ?evidence:(Prefix.t -> Update.t list) -> unit ->
  detector
(** The §5 control-plane monitor as a detector: MOAS, sub-prefix and
    origin-adjacency alarms with {!Detection}'s learning period and
    per-(prefix, kind) cool-down. [evidence] supplies the recent-update
    window attached to each alert (default: none). *)

val of_alarm :
  detector:string -> ?evidence:Update.t list -> Detection.alarm -> t
(** Wrap a raw alarm — also used by the batch reference arm of replay
    verification, so streaming and batch alerts render identically by
    construction. *)

val equal : t -> t -> bool
(** Equality on (time, detector, kind, summary) — the alert-set
    comparison of replay verification; evidence is excluded because the
    batch arm has no evidence ring. *)

val pp : Format.formatter -> t -> unit
