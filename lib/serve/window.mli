(** The bounded-memory sliding window at the heart of [quicksand serve].

    One {!Measurement.Acc} per live (session, prefix) key, plus three
    O(1)-amortized mechanisms per update:

    - {b ring-buffer bucketing}: per-key path-change counts in
      [window / bucket] time buckets with a rolling sum, so "changes in
      the last window" is a field read;
    - {b threshold timers}: when a non-baseline AS enters a watched path,
      a timer is armed at [entry + threshold]; when it pops, the key's
      longest contiguous run decides emission — this reproduces the batch
      {!Measurement.extra_ases} set {e exactly} (see the proof sketch in
      DESIGN.md §14) while doing O(1) work per update;
    - {b timed eviction}: a withdrawal arms an expiry at
      [withdrawal + window]; a key still route-less and untouched when it
      pops is evicted — its ring and live-set slot are reclaimed and its
      sealed accumulator parks as a {e ghost}, so a later update for the
      key resumes bit-exactly where batch accounting would be (residency
      credit on a withdrawn accumulator is a no-op, so nothing is lost
      across the gap).

    Updates must arrive in non-decreasing time order — the ingest stage's
    watermark reordering provides that. Everything here is sequential and
    deterministic: same stream in, same events and cells out, at any pool
    width. *)

type config = {
  window : float;     (** sliding-window length, seconds *)
  bucket : float;     (** ring-buffer bucket width; must divide [window] *)
  threshold : float;  (** extra-AS contiguous-run threshold, in
                          [(0, window]] — the bound that guarantees every
                          satisfiable timer fires before its key can be
                          evicted *)
}

val default_config : config
(** 1 h window, 60 s buckets, the paper's 300 s threshold. *)

type t

type stats = {
  live : int;
  ghosts : int;
  evictions : int;
  resurrections : int;
  scheduled : int;
  fired : int;
}

val create : ?config:config -> watched:(Prefix.t -> bool) -> unit -> t
(** [watched] selects the prefixes whose keys emit path-change and
    extra-AS events (monitored pairs and Tor prefixes); unwatched keys
    are still accumulated — session medians need every prefix — but stay
    silent. @raise Invalid_argument on an invalid config (QS307 states
    the same constraints statically). *)

val config : t -> config

val set_baseline : t -> Measurement.key -> Asn.Set.t -> unit
(** Register a time-0 table route before any update flows (mirrors
    [Measurement]'s baseline seeding). *)

val apply : t -> Update.t -> Event.t list
(** Feed one update (non-decreasing time). Returned events, in order:
    timers and evictions that came due strictly as of the update's time,
    then the update's own path-change event (if any). *)

val advance : t -> float -> Event.t list
(** Move the watermark forward without an update (idle feed): fires due
    timers and evictions. A no-op if the time is not ahead of the
    watermark. *)

val drain : t -> horizon:float -> Event.t list
(** End of stream: advance to [horizon], firing due timers; discard
    timers past it (their runs cannot reach the threshold inside the
    horizon — exactly the batch rule); seal every live accumulator. Call
    once; {!cells} is meaningful afterwards. *)

val cells : t -> Measurement.cell list
(** After {!drain}: one cell per key that ever carried routing state
    (live or ghost), in canonical (collector, peer, prefix) order. On
    the same (globally ordered) stream these equal the batch
    [Measurement.run] cells field-for-field, bit-exact floats included. *)

val compare_key : Measurement.key -> Measurement.key -> int
(** The canonical (collector, peer, prefix) cell order {!cells} uses —
    exported so renderers can sort batch cells the same way before
    byte-comparing output. *)

val in_window : t -> Measurement.key -> int
(** Path changes inside the window as of the current watermark (0 for
    unknown or evicted keys). *)

val watermark : t -> float

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
