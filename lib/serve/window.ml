type config = {
  window : float;
  bucket : float;
  threshold : float;
}

let default_config = { window = 3600.; bucket = 60.; threshold = 300. }

type entry = {
  e_key : Measurement.key;
  e_acc : Measurement.Acc.t;
  mutable e_last : float;          (* time of the last update touching the key *)
  e_ring : int array;              (* per-bucket path changes *)
  mutable e_ring_sum : int;
  mutable e_ring_newest : int;     (* absolute bucket index of the ring head *)
  mutable e_emitted : Asn.Set.t;   (* extra-AS events already emitted *)
}

(* A ghost is an evicted key's accumulator, frozen. Eviction reclaims the
   hot-path state (the ring and the live-set membership) but keeps the
   sealed statistics: they are bounded by the key space and the AS
   diversity of its paths — never by feed length — and carrying them is
   what makes a resurrected key continue exactly where the batch
   accounting would be (a withdrawn accumulator's residency credit is a
   no-op, so reusing it is bit-exact). *)
type ghost = {
  g_acc : Measurement.Acc.t;
  g_emitted : Asn.Set.t;
}

type stats = {
  live : int;
  ghosts : int;
  evictions : int;
  resurrections : int;
  scheduled : int;    (** extra-AS threshold timers ever armed *)
  fired : int;        (** timers that came due (emitted or not) *)
}

type t = {
  cfg : config;
  n_buckets : int;
  watched : Prefix.t -> bool;
  entries : entry Measurement.Key_table.t;
  ghost_tbl : ghost Measurement.Key_table.t;
  schedules : (Measurement.key * Asn.t) Pqueue.t;
  expiries : Measurement.key Pqueue.t;
  mutable watermark : float;
  mutable n_evictions : int;
  mutable n_resurrections : int;
  mutable n_scheduled : int;
  mutable n_fired : int;
}

let create ?(config = default_config) ~watched () =
  if config.bucket <= 0. || config.window <= 0. then
    invalid_arg "Window.create: window and bucket must be positive";
  if config.threshold <= 0. || config.threshold > config.window then
    invalid_arg "Window.create: threshold must be in (0, window]";
  let n = Float.round (config.window /. config.bucket) in
  if Float.abs ((n *. config.bucket) -. config.window) > 1e-6 *. config.window
  then invalid_arg "Window.create: window must be a multiple of bucket";
  { cfg = config;
    n_buckets = int_of_float n;
    watched;
    entries = Measurement.Key_table.create 4096;
    ghost_tbl = Measurement.Key_table.create 4096;
    schedules = Pqueue.create ();
    expiries = Pqueue.create ();
    watermark = 0.;
    n_evictions = 0;
    n_resurrections = 0;
    n_scheduled = 0;
    n_fired = 0 }

let config t = t.cfg

let bucket_of t time = int_of_float (Float.floor (time /. t.cfg.bucket))

let ring_advance t e b =
  if b > e.e_ring_newest then begin
    let steps = min t.n_buckets (b - e.e_ring_newest) in
    for i = 1 to steps do
      let idx = (e.e_ring_newest + i) mod t.n_buckets in
      e.e_ring_sum <- e.e_ring_sum - e.e_ring.(idx);
      e.e_ring.(idx) <- 0
    done;
    e.e_ring_newest <- b
  end

let ring_bump t e b =
  ring_advance t e b;
  let idx = b mod t.n_buckets in
  e.e_ring.(idx) <- e.e_ring.(idx) + 1;
  e.e_ring_sum <- e.e_ring_sum + 1

let get_entry t key time =
  match Measurement.Key_table.find_opt t.entries key with
  | Some e -> e
  | None ->
      let acc, emitted =
        match Measurement.Key_table.find_opt t.ghost_tbl key with
        | Some g ->
            Measurement.Key_table.remove t.ghost_tbl key;
            t.n_resurrections <- t.n_resurrections + 1;
            (g.g_acc, g.g_emitted)
        | None -> (Measurement.Acc.create (), Asn.Set.empty)
      in
      let e =
        { e_key = key;
          e_acc = acc;
          e_last = time;
          e_ring = Array.make t.n_buckets 0;
          e_ring_sum = 0;
          e_ring_newest = bucket_of t time;
          e_emitted = emitted }
      in
      Measurement.Key_table.replace t.entries key e;
      e

let set_baseline t key set =
  let e = get_entry t key 0. in
  Measurement.Acc.set_baseline e.e_acc set

(* Fire one due extra-AS timer. [at] is the watermark the window is
   advancing to; the open-run length is measured against it, which makes
   the emitted set exactly the batch [Measurement.extra_ases] set: a
   finally-qualifying run's timer (armed at run entry, due at
   entry + threshold <= horizon) pops at a watermark where the run is
   either still open (length >= threshold by construction) or already
   closed at full length. *)
let fire t ~at evs (f, (key, asn)) =
  t.n_fired <- t.n_fired + 1;
  match Measurement.Key_table.find_opt t.entries key with
  | None -> ()
  | Some e ->
      if not (Asn.Set.mem asn e.e_emitted) then begin
        match Measurement.Acc.baseline e.e_acc with
        | Some base when not (Asn.Set.mem asn base) ->
            let run = Measurement.Acc.longest_run e.e_acc ~at asn in
            if run >= t.cfg.threshold then begin
              e.e_emitted <- Asn.Set.add asn e.e_emitted;
              evs :=
                Event.Extra_as { key; time = f; asn; run } :: !evs
            end
        | Some _ | None -> ()
      end

let expire t evs (f, key) =
  match Measurement.Key_table.find_opt t.entries key with
  | None -> ()
  | Some e ->
      if Measurement.Acc.current e.e_acc = None
         && Float.compare (e.e_last +. t.cfg.window) f <= 0
      then begin
        Measurement.Key_table.remove t.entries key;
        Measurement.Key_table.replace t.ghost_tbl key
          { g_acc = e.e_acc; g_emitted = e.e_emitted };
        t.n_evictions <- t.n_evictions + 1;
        evs :=
          Event.Evicted { key; time = f; cell = Measurement.Acc.cell key e.e_acc }
          :: !evs
      end

(* Timers first, then evictions: a timer that can still emit fires no
   later than its key's eviction (threshold <= window, and runs close at
   the withdrawal that starts the eviction countdown). *)
let advance_to t ~at evs =
  List.iter (fire t ~at evs) (Pqueue.pop_until t.schedules at);
  List.iter (expire t evs) (Pqueue.pop_until t.expiries at);
  if at > t.watermark then t.watermark <- at

let advance t at =
  let evs = ref [] in
  advance_to t ~at evs;
  List.rev !evs

let apply t (u : Update.t) =
  let time = u.Update.time in
  let evs = ref [] in
  advance_to t ~at:time evs;
  let key =
    { Measurement.session = u.Update.session; prefix = Update.prefix u }
  in
  let e = get_entry t key time in
  e.e_last <- time;
  let old = Measurement.Acc.current e.e_acc in
  (match Measurement.Acc.consume e.e_acc u with
   | `Changed ->
       ring_bump t e (bucket_of t time);
       if t.watched key.Measurement.prefix then
         evs :=
           Event.Path_change
             { key; time;
               total = Measurement.Acc.path_changes e.e_acc;
               in_window = e.e_ring_sum }
           :: !evs
   | `First | `Same -> ()
   | `Withdrawn -> Pqueue.push t.expiries (time +. t.cfg.window) key);
  (* Arm one threshold timer per AS entering a watched path, unless it is
     a baseline AS (never "extra") or already emitted. Keys with no
     time-0 baseline never emit (batch rule), so nothing is armed. *)
  (match u.Update.kind with
   | Update.Announce route when t.watched key.Measurement.prefix -> begin
       match Measurement.Acc.baseline e.e_acc with
       | None -> ()
       | Some base ->
           let old_set = Option.value ~default:Asn.Set.empty old in
           Asn.Set.iter
             (fun a ->
                if not (Asn.Set.mem a old_set)
                   && not (Asn.Set.mem a base)
                   && not (Asn.Set.mem a e.e_emitted)
                then begin
                  Pqueue.push t.schedules (time +. t.cfg.threshold) (key, a);
                  t.n_scheduled <- t.n_scheduled + 1
                end)
             (Route.as_set route)
     end
   | Update.Announce _ | Update.Withdraw _ -> ());
  List.rev !evs

let drain t ~horizon =
  let evs = ref [] in
  advance_to t ~at:horizon evs;
  (* Timers past the horizon can never be satisfied within it; pending
     expiries die with the stream. *)
  ignore (Pqueue.drain t.schedules);
  ignore (Pqueue.drain t.expiries);
  Measurement.Key_table.iter
    (fun _ e -> Measurement.Acc.seal e.e_acc horizon)
    t.entries;
  List.rev !evs

let compare_key (a : Measurement.key) (b : Measurement.key) =
  match
    String.compare a.Measurement.session.Update.collector
      b.Measurement.session.Update.collector
  with
  | 0 -> begin
      match
        Asn.compare a.Measurement.session.Update.peer
          b.Measurement.session.Update.peer
      with
      | 0 -> Prefix.compare a.Measurement.prefix b.Measurement.prefix
      | c -> c
    end
  | c -> c

let cells t =
  let out = ref [] in
  let add key acc =
    match Measurement.Acc.cell key acc with
    | Some c -> out := c :: !out
    | None -> ()
  in
  Measurement.Key_table.iter (fun _ e -> add e.e_key e.e_acc) t.entries;
  Measurement.Key_table.iter (fun key g -> add key g.g_acc) t.ghost_tbl;
  List.sort (fun (a : Measurement.cell) b -> compare_key a.key b.key) !out

let in_window t key =
  match Measurement.Key_table.find_opt t.entries key with
  | None -> 0
  | Some e ->
      ring_advance t e (bucket_of t t.watermark);
      e.e_ring_sum

let watermark t = t.watermark

let stats t =
  { live = Measurement.Key_table.length t.entries;
    ghosts = Measurement.Key_table.length t.ghost_tbl;
    evictions = t.n_evictions;
    resurrections = t.n_resurrections;
    scheduled = t.n_scheduled;
    fired = t.n_fired }

let pp_stats ppf s =
  Format.fprintf ppf
    "window: %d live keys, %d ghosts (%d evictions, %d resurrections), \
     %d timers armed / %d fired"
    s.live s.ghosts s.evictions s.resurrections s.scheduled s.fired
