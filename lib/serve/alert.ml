type t = {
  detector : string;
  time : float;
  session : Update.session_id;
  prefix : Prefix.t;
  kind : string;
  summary : string;
  evidence : Update.t list;
}

type detector = {
  name : string;
  observe : Update.t -> t list;
}

type registry = { mutable detectors : detector list }

let registry () = { detectors = [] }

let register r d =
  if List.exists (fun d' -> String.equal d'.name d.name) r.detectors then
    invalid_arg (Printf.sprintf "Alert.register: duplicate detector %S" d.name);
  r.detectors <- r.detectors @ [ d ]

let names r = List.map (fun d -> d.name) r.detectors

let observe r u = List.concat_map (fun d -> d.observe u) r.detectors

let alarm_prefix (a : Detection.alarm) =
  match a.Detection.kind with
  | Detection.Moas { prefix; _ } -> prefix
  | Detection.Sub_prefix { sub; _ } -> sub
  | Detection.Origin_adjacency { prefix; _ } -> prefix

let alarm_kind (a : Detection.alarm) =
  match a.Detection.kind with
  | Detection.Moas _ -> "moas"
  | Detection.Sub_prefix _ -> "subprefix"
  | Detection.Origin_adjacency _ -> "origin-adjacency"

let of_alarm ~detector ?(evidence = []) (a : Detection.alarm) =
  { detector;
    time = a.Detection.time;
    session = a.Detection.session;
    prefix = alarm_prefix a;
    kind = alarm_kind a;
    summary = Format.asprintf "%a" Detection.pp_alarm a;
    evidence }

let c1c ?learning_period ?(evidence = fun _ -> []) () =
  let monitor = Detection.create ?learning_period () in
  { name = "c1c";
    observe =
      (fun u ->
         Detection.observe monitor u
         |> List.map (fun a ->
             of_alarm ~detector:"c1c" ~evidence:(evidence (alarm_prefix a)) a)) }

(* Alerts from the same detector over the same alarm stream render
   identically, so alert-set comparisons (streaming vs batch) compare
   these tuples. *)
let comparable a = (a.time, a.detector, a.kind, a.summary)

let equal a b =
  let ta, da, ka, sa = comparable a and tb, db, kb, sb = comparable b in
  Float.equal ta tb && String.equal da db && String.equal ka kb
  && String.equal sa sb

let pp ppf a =
  Format.fprintf ppf "[%s/%s] %s (session %a, %d evidence updates)"
    a.detector a.kind a.summary Update.pp_session a.session
    (List.length a.evidence)
