(** The streaming exposure-monitoring service behind [quicksand serve].

    A long-running loop ingests a continuous BGP update feed, keeps
    rolling-window path-change / extra-AS state for every watched
    (session, prefix) key in bounded memory ({!Window}), and publishes
    events — per-key exposure deltas, C1c hijack/interception alerts,
    conformance violations — to pluggable {!Sink}s as JSON lines.

    The service is a thin assembly over the subsystem's parts: updates
    enter through {!Ingest} (watermarked reorder buffer with explicit
    backpressure), released updates drive {!Window} and the {!Alert}
    detector registry, and every event is rendered off the hot path in
    submission order over a {!Pool.t} — so the emitted stream is
    byte-identical at any worker count.

    {b Replay equivalence.} [replay] feeds a simulated measurement
    period (same RNG stream, same session-reset filter, same extra-update
    merge as {!Measurement.run}) through the live service;
    [diff_against_batch] then certifies that the streaming arm produced
    {e exactly} the batch arm's cells (bit-equal floats included) and
    C1c alert sequence. See DESIGN.md §14 for the proof sketch. *)

module Config : sig
  type t = {
    window : float;       (** sliding-window span, seconds *)
    bucket : float;       (** ring-buffer bucket width, seconds *)
    threshold : float;    (** extra-AS residency threshold, seconds *)
    slack : float;        (** out-of-order tolerance, seconds *)
    capacity : int;       (** ingest queue bound *)
    chunk : int;          (** event-flush / MRT-decode batch size *)
    learning_period : float;  (** C1c detector warm-up, seconds *)
    monitored : (Prefix.t * Prefix.t) list;
        (** (client prefix, guard prefix) pairs to watch *)
  }

  val default : t
  (** 1 h window over 60 s buckets, 300 s threshold, 120 s slack,
      65536-deep queue, 512-event chunks, 6 h learning period. *)

  val view : t -> Serve_lint.config_view
  (** Dependency-free projection for the QS307 lint rule. *)

  val window_config : t -> Window.config
  val ingest_config : t -> Ingest.config
end

type t
(** A live service instance. Not thread-safe: one feeder loop owns it;
    parallelism lives inside the {!Pool.t} it renders events on. *)

val create :
  ?config:Config.t -> ?duration:float -> ?watched:(Prefix.t -> bool) ->
  ?sinks:Sink.t list -> exec:Pool.t -> unit -> t
(** Build a service. [watched] selects the prefixes whose keys emit
    path-change / extra-AS events (default: all); [duration] bounds the
    conformance observer's timeline (default unbounded). The C1c
    detector is pre-registered with the config's learning period.
    @raise Invalid_argument if the config fails {!Serve_lint.check}. *)

val subscribe : t -> Sink.t -> unit
(** Attach one more event subscriber (appended after existing sinks). *)

val offer : t -> Update.t -> unit
(** Feed one update: push through the ingest buffer, then process every
    update the watermark releases. Drops are counted, never silent. *)

val pump : t -> int
(** Process whatever the watermark has already released without feeding
    anything new; returns how many updates were processed. *)

val drain : ?initial:Route.t Prefix.Map.t Update.Session_map.t ->
  t -> horizon:float -> Conformance.violation list
(** End of feed: flush the reorder buffer, advance the window to
    [horizon] (sealing every live accumulator), finalize conformance
    against the optional [initial] RIB snapshot, flush pending events
    and close all sinks. Single-shot.
    @raise Invalid_argument on a second call. *)

val alerts : t -> Alert.t list
(** Alerts raised so far, oldest first. *)

val window : t -> Window.t
val ingest : t -> Ingest.t
val events_emitted : t -> int

(** {1 Replay: the simulated-feed driver} *)

type replay_result = {
  r_config : Config.t;
  r_duration : float;
  r_cells : Measurement.cell list;   (** canonically sorted *)
  r_alerts : Alert.t list;           (** oldest first *)
  r_events : int;
  r_violations : Conformance.violation list;
  r_ingest : Ingest.stats;
  r_window : Window.stats;
  r_dyn : Dynamics.stats;
  r_filter : Session_reset.stats option;
}

val replay :
  ?dynamics:Dynamics.config -> ?filter:Session_reset.config ->
  ?no_filter:bool -> ?extra_updates:Update.t list -> ?sinks:Sink.t list ->
  ?config:Config.t -> exec:Pool.t -> Scenario.t -> replay_result
(** Run a whole simulated measurement period through the live service.
    The feed plumbing — RNG stream name, session-reset filtering,
    time-ordered merge of [extra_updates] — mirrors {!Measurement.run}
    exactly, so the update multiset entering the service is the batch
    one and {!diff_against_batch} can demand bit-exact agreement. *)

val batch_alerts :
  ?dynamics:Dynamics.config -> ?filter:Session_reset.config ->
  ?no_filter:bool -> ?extra_updates:Update.t list ->
  learning_period:float -> Scenario.t -> Measurement.t * Alert.t list
(** The batch reference arm: run {!Measurement.run} over the same feed,
    stable-sort the post-filter stream into global (time, arrival)
    order — the order the service's watermark releases it in — and feed
    one {!Detection} monitor. Returns the batch measurement and its
    alert sequence. *)

val diff_against_batch :
  replay_result -> Measurement.t -> Alert.t list -> string list
(** Certify replay equivalence: no ingest loss, no conformance
    violations, alert sequences equal element-wise, and every batch cell
    reproduced field-by-field (floats compared with [Float.equal], i.e.
    bit-for-bit up to NaN) including the derived extra-AS sets. Returns
    human-readable discrepancies; [[]] means the arms agree exactly. *)

val sort_cells : Measurement.cell list -> Measurement.cell list
(** Canonical (collector, peer, prefix) cell order — the order
    [r_cells] uses and renderers should apply before byte-comparing. *)

val pp_replay_summary : Format.formatter -> replay_result -> unit
