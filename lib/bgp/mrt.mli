(** MRT (RFC 6396) encoding and decoding of BGP update streams.

    The paper's raw input is RIPE RIS MRT dumps; since no OCaml MRT library
    exists, we implement the subset RIS update files actually use:
    [BGP4MP_ET] records (type 17, with microsecond timestamps) carrying
    [BGP4MP_MESSAGE_AS4] (subtype 4) BGP UPDATE or KEEPALIVE messages over
    IPv4, with ORIGIN / AS_PATH (AS_SEQUENCE, 4-byte ASNs, extended length
    when needed) / NEXT_HOP / COMMUNITIES path attributes.

    The encoder and decoder round-trip: [decode (encode rs) = rs]. *)

exception Malformed of string
(** Raised by {!decode} on truncated or invalid input, with a description
    of the first problem found. *)

type message =
  | Update of {
      withdrawn : Prefix.t list;
      as_path : Asn.t list;          (** empty iff withdraw-only *)
      next_hop : Ipv4.t option;
      communities : (int * int) list;
      nlri : Prefix.t list;
    }
  | Keepalive

type record = {
  timestamp : float;   (** seconds; microsecond precision is preserved *)
  peer_as : Asn.t;
  local_as : Asn.t;    (** the collector's AS *)
  peer_ip : Ipv4.t;
  local_ip : Ipv4.t;
  message : message;
}

val encode_record : Buffer.t -> record -> unit
val encode : record list -> string
val decode : string -> record list

val decode_result : string -> (record list, string) result
(** Total wrapper around {!decode} for untrusted input: [Error msg] where
    {!decode} would raise [Malformed msg]. Never raises on malformed
    bytes — any other exception escaping it is a decoder bug (this is the
    property the [quicksand check --suite fuzz] mutation fuzzer pins). *)

val record_of_update :
  local_as:Asn.t -> local_ip:Ipv4.t -> peer_ip:Ipv4.t -> Update.t -> record
(** Wraps one of our collector updates as an MRT record. *)

val update_of_record : collector:string -> record -> Update.t list
(** Unwraps an MRT record into collector updates (one per withdrawn prefix
    and one per NLRI prefix; empty for keepalives). *)

(** {2 TABLE_DUMP_V2 RIB snapshots}

    RIS collectors also dump full tables ("bview" files) as TABLE_DUMP_V2
    (RFC 6396 §4.3): a PEER_INDEX_TABLE followed by one RIB_IPV4_UNICAST
    record per prefix, each entry referencing a peer by index. *)

type rib = {
  rib_time : float;
  collector_id : Ipv4.t;
  view_name : string;
  peers : (Ipv4.t * Asn.t) array;
  rib_entries : (Prefix.t * (int * Route.t) list) list;
      (** per prefix: (peer index, route as exported by that peer) *)
}

val encode_rib : rib -> string
val decode_rib : string -> rib
(** Round-trips with {!encode_rib}. @raise Malformed on bad input. *)

val decode_rib_result : string -> (rib, string) result
(** Total wrapper around {!decode_rib}; same contract as {!decode_result}. *)

val rib_of_initial :
  time:float -> collector_id:Ipv4.t -> view_name:string ->
  peer_ip:(Update.session_id -> Ipv4.t) ->
  Route.t Prefix.Map.t Update.Session_map.t -> rib
(** Builds a bview from a {!Dynamics.initial} table set. *)
