(** Bounded LRU cache of propagation outcomes.

    The dynamics simulator replays a small set of routing configurations
    over and over: every [Revert] and [Global_restore] returns the
    network to a previously-seen (announcements, failed-links) state, and
    prepend toggles alternate between two announcement shapes. Caching
    the {!Propagate.t} outcome per configuration turns those recomputes
    into O(1) lookups.

    Keys are {e exact} canonical serializations of the announcement list
    and the failed-link set — no lossy hashing — so a hit can never
    return routes for a different configuration. This is what lets the
    simulator guarantee a byte-identical update stream with the cache on
    and off. The graph and ROV configuration are {e not} part of the key:
    use one cache per (graph, rov) pair and never share it across
    scenarios.

    Cached outcomes are stored by reference and must own their arrays.
    The simulator's miss path computes through a reused
    {!Propagate.Workspace} (or the delta engine's scratch state) and
    inserts a {!Propagate.copy} of the result — copy-out-on-insert —
    because workspace-backed outcomes are invalidated by the workspace's
    next compute. Never insert a workspace- or scratch-backed [t]
    directly. *)

type t

type stats = { hits : int; misses : int; evictions : int; entries : int }

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val key : anns:Announcement.t list -> failed:Link_set.t -> string
(** Canonical key for a routing configuration. Deterministic:
    [Link_set.elements] is sorted and every announcement field is
    serialized in a fixed order. *)

val find : t -> string -> Propagate.t option
(** Lookup; a hit refreshes the entry's recency. Counts toward
    [hits]/[misses]. *)

val add : t -> string -> Propagate.t -> unit
(** Insert (or refresh) an entry, evicting the least-recently-used one
    when over capacity. *)

val length : t -> int

val stats : t -> stats

val zero_stats : stats
(** All-zero stats, for the cache-disabled case. *)
