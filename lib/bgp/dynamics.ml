type config = {
  duration : float;
  base_churn_rate : float;
  churn_alpha : float;
  churn_xmin : float;
  hosting_churn_factor : float;
  max_rate_multiplier : float;
  mean_outage : float;
  global_link_events : int;
  mean_global_outage : float;
  resets_per_session : float;
  reset_transfer_time : float;
  convergence_transients : bool;
  transient_prob : float;
  mrai : float;
  convergence_delay_max : float;
  max_affected_per_event : int;
  pathological_prefixes : int;
  pathological_multiplier : float;
  route_cache_size : int;
  delta_states : int;
  session_churn : Churn.config option;
}

let day = 86_400.

let default_config =
  { duration = 30. *. day;
    base_churn_rate = 1.5;
    churn_alpha = 1.5;
    churn_xmin = 0.5;
    hosting_churn_factor = 1.5;
    max_rate_multiplier = 400.;
    mean_outage = 2800.;
    global_link_events = 12;
    mean_global_outage = 1800.;
    resets_per_session = 2.5;
    reset_transfer_time = 45.;
    convergence_transients = true;
    transient_prob = 0.35;
    mrai = 28.;
    convergence_delay_max = 40.;
    max_affected_per_event = 40;
    pathological_prefixes = 2;
    pathological_multiplier = 2600.;
    route_cache_size = 512;
    delta_states = 512;
    session_churn = None }

let short_config =
  { default_config with
    duration = 2. *. day;
    base_churn_rate = 0.4;
    global_link_events = 2;
    resets_per_session = 0.5;
    pathological_prefixes = 1;
    pathological_multiplier = 150. }

type world = {
  graph : As_graph.t;
  indexed : As_graph.Indexed.t;
  addressing : Addressing.t;
  collectors : Collector.t list;
}

let make_world graph addressing collectors =
  { graph; indexed = As_graph.Indexed.of_graph graph; addressing; collectors }

type initial = Route.t Prefix.Map.t Update.Session_map.t

(* Registry mirrors of [stats], bulk-added once per [run] so a process
   that drives several dynamics runs accumulates across them.  The
   regression suite pins these against the returned record. *)
let m_churn = Metrics.counter ~help:"churn events applied" "dynamics.churn_events"
let m_updates = Metrics.counter ~help:"updates emitted" "dynamics.updates_emitted"
let m_ann = Metrics.counter ~help:"announcements emitted" "dynamics.announces"
let m_wd = Metrics.counter ~help:"withdrawals emitted" "dynamics.withdraws"
let m_full_recomp =
  Metrics.counter ~help:"full route recomputations" "dynamics.full_recomputations"
let m_delta_steps =
  Metrics.counter ~help:"incremental delta repairs" "dynamics.delta_steps"
let m_delta_stop =
  Metrics.counter ~help:"delta link repairs proven no-ops"
    "dynamics.delta_stop_early"
let m_delta_frontier =
  Metrics.histogram ~help:"ASes touched per delta step"
    ~buckets:[| 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024.;
                2048.; 4096. |]
    "dynamics.delta_frontier"
let m_dropped = Metrics.counter ~help:"updates dropped past horizon" "dynamics.post_horizon_dropped"

type stats = {
  churn_events : int;
  global_events : (Asn.t * Asn.t * float * float) list;
  resets_injected : (Update.session_id * float * float) list;
  updates_emitted : int;
  announces : int;
  withdraws : int;
  full_recomputations : int;
  delta_steps : int;
  delta_stop_early : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  post_horizon_dropped : int;
  final_failed : Link_set.t;
}

type perturbation =
  | Restore_link of Asn.t * Asn.t
  | Set_prepend of int * int  (* prefix index, value to restore *)

type event =
  | Churn of int                               (* prefix index *)
  | Revert of perturbation * int list          (* affected prefix indices *)
  | Global_fail
  | Global_restore of (Asn.t * Asn.t) * int list
  | Reset of int                               (* session index *)
  | Trace_down of int                          (* trace-churn entity index *)
  | Trace_up of int

type state = {
  cfg : config;
  w : world;
  rng : Rng.t;
  sessions : Collector.session array;
  pfxs : Prefix.t array;
  origins : Asn.t array;
  prepend : int array;
  current : Route.t option array array;  (* .(pfx).(session) *)
  previous : Route.t option array array; (* route before the last change *)
  pfx_of_origin : int list Asn.Table.t;
  core_links : (Asn.t * Asn.t) array;
  mutable failed : Link_set.t;
  workspace : Propagate.Workspace.t;
  cache : Route_cache.t option;
  delta_scratch : Propagate.Delta.scratch;
  peer_ids : int array;    (* session index -> peer's graph id *)
  vis_threshold : int array;
      (* session index -> minimum Propagate class code its feed shows *)
  origin_key : int array;  (* prefix index -> origin's graph id *)
  ann_cache : Announcement.t list array;
      (* prefix index -> its current singleton announcement list;
         rebuilt lazily when the prepend moves *)
  seen_version : int array;
      (* prefix index -> {!Propagate.Delta.version} of the state
         [current.(p)] was last derived from; -1 = unknown. When a
         recompute lands on the same version, no session view can have
         changed and the whole per-session scan is skipped. *)
  delta : (int, Propagate.Delta.state * int ref) Hashtbl.t;
      (* origin graph id -> (state, last-use tick) — a bounded LRU.
         Keyed per {e origin}, not per prefix: the routing arrays never
         depend on the prefix, so all prefixes of one origin share a
         single retained fixed point ({!Propagate.Delta.update} swaps
         the announcement metadata in O(1)). *)
  mutable delta_tick : int;
  trace_entities : Asn.t array;
      (* trace-churn entity index -> origin AS; distinct origins sorted by
         [Asn.compare], empty unless [cfg.session_churn] is set *)
  trace_links : (Asn.t * Asn.t) list array;
      (* entity -> links its last Trace_down actually failed (links some
         other process had already failed are excluded: their own restore
         owns them) *)
  trace_affected : int list array;
      (* entity -> prefixes recomputed at its last Trace_down; its
         Trace_up recomputes the same set *)
  events : event Pqueue.t;
  outq : Update.t Pqueue.t;
  emit : Update.t -> unit;
  mutable n_churn : int;
  mutable n_updates : int;
  mutable n_ann : int;
  mutable n_wd : int;
  mutable n_full_recomp : int;
  mutable n_delta_steps : int;
  mutable n_delta_stop : int;
  mutable n_dropped : int;
  mutable globals : (Asn.t * Asn.t * float * float) list;
  mutable resets : (Update.session_id * float * float) list;
}

(* ---- emission ----------------------------------------------------- *)

let drain st limit =
  List.iter
    (fun (_, u) ->
       st.emit u;
       st.n_updates <- st.n_updates + 1;
       if Update.is_announce u then st.n_ann <- st.n_ann + 1
       else st.n_wd <- st.n_wd + 1)
    (Pqueue.pop_until st.outq limit)

let schedule_update st time session kind =
  Pqueue.push st.outq time { Update.time; session; kind }

(* ---- route computation -------------------------------------------- *)

(* The singleton announcement list for [p]'s current configuration,
   rebuilt only when [p]'s prepend moved since the last query: every
   event queries it once per affected prefix, and the steady state is
   an unchanged prepend. *)
let announcement st p =
  match st.ann_cache.(p) with
  | [ a ] when a.Announcement.prepend = st.prepend.(p) -> st.ann_cache.(p)
  | _ ->
      let anns =
        [ Announcement.originate st.origins.(p) st.pfxs.(p)
          |> Announcement.with_prepend st.prepend.(p) ]
      in
      st.ann_cache.(p) <- anns;
      anns

(* Compute the outcome for prefix [p] in the current (prepend, failed)
   configuration, preferring the incremental engine: each {e origin}
   keeps a {!Propagate.Delta.state} (bounded LRU of [cfg.delta_states])
   whose update diffs the configuration against the last one it applied
   and repairs only the dirty region — O(affected) instead of O(world),
   and O(1) when the flapped link carries no selected route. Because
   routing is prefix-agnostic, one state serves every prefix of an
   origin: an event that touches dozens of co-originated prefixes pays
   for one repair, and each further prefix is an O(1) metadata swap.
   Full computes remain the cold-start / eviction / unsupported-shape
   fallback and run through the reusable workspace. [n_full_recomp]
   counts full propagation runs (wherever they happen), [n_delta_steps]
   incremental repairs. *)
let delta_state_for st p =
  st.delta_tick <- st.delta_tick + 1;
  match Hashtbl.find_opt st.delta st.origin_key.(p) with
  | Some (ds, last) ->
      last := st.delta_tick;
      ds
  | None ->
      if Hashtbl.length st.delta >= st.cfg.delta_states then begin
        (* Evict the least-recently-used state. *)
        let victim =
          Hashtbl.fold
            (fun q (_, last) acc ->
               match acc with
               | Some (_, best) when best <= !last -> acc
               | _ -> Some (q, !last))
            st.delta None
        in
        match victim with
        | Some (q, _) -> Hashtbl.remove st.delta q
        | None -> ()
      end;
      let ds = Propagate.Delta.create st.w.indexed in
      Hashtbl.add st.delta st.origin_key.(p) (ds, ref st.delta_tick);
      ds

let compute_now st p anns =
  if st.cfg.delta_states > 0 && Propagate.Delta.supported anns then begin
    let ds = delta_state_for st p in
    let outcome, kind =
      Propagate.Delta.update ds st.delta_scratch ~failed:st.failed anns
    in
    (match kind with
     | Propagate.Delta.Full_rebuild ->
         st.n_full_recomp <- st.n_full_recomp + 1
     | Propagate.Delta.Steps { frontier; stop_early; _ } ->
         st.n_delta_steps <- st.n_delta_steps + 1;
         st.n_delta_stop <- st.n_delta_stop + stop_early;
         Metrics.observe m_delta_frontier (float_of_int frontier));
    (outcome, Propagate.Delta.version ds)
  end
  else begin
    st.n_full_recomp <- st.n_full_recomp + 1;
    ( Propagate.compute st.w.indexed ~workspace:st.workspace ~failed:st.failed
        anns,
      -1 )
  end

(* The routing outcome for prefix [p]. With the cache enabled, Revert /
   Global_restore / prepend-toggle events land back on a previously-seen
   configuration and reuse its outcome. Misses run through the shared
   scratch (workspace or delta state) and only the {e cached} outcome
   owns fresh arrays ({!Propagate.copy}) — scratch-backed views are
   invalidated by the next compute and must never enter the cache. *)
let outcome_for st p =
  let anns = announcement st p in
  match st.cache with
  | None -> compute_now st p anns
  | Some cache ->
      let k = Route_cache.key ~anns ~failed:st.failed in
      (match Route_cache.find cache k with
       (* A hit serves an outcome for the {e current} configuration, but
          the delta state may sit at an older one — its version says
          nothing about this outcome, so report none. *)
       | Some outcome -> (outcome, -1)
       | None ->
           let ((outcome, _) as r) = compute_now st p anns in
           Route_cache.add cache k (Propagate.copy outcome);
           r)

let visible_route outcome (session : Collector.session) =
  let peer = session.Collector.id.Update.peer in
  match Propagate.route_class_at outcome peer with
  | Some cls when Collector.visible session ~route_class:cls ->
      Propagate.route_at outcome peer
  | Some _ | None -> None

(* Recompute routes for the given prefixes and emit the resulting session
   transitions (with optional convergence transients). *)
let recompute st now affected =
  List.iter
    (fun p ->
       let outcome, ver = outcome_for st p in
       (* If the delta state's version is the one [current.(p)] was
          derived from, the repair changed nothing any session can see:
          skip the per-session scan outright (no route is compared, no
          RNG is drawn — exactly what an all-unchanged scan would do). *)
       if ver < 0 || st.seen_version.(p) <> ver then begin
       let any_changed = ref false in
       Array.iteri
         (fun s_idx (session : Collector.session) ->
            let peer_id = st.peer_ids.(s_idx) in
            let vis =
              Propagate.class_code_at_id outcome peer_id
              >= st.vis_threshold.(s_idx)
            in
            let old = st.current.(p).(s_idx) in
            (* Decide "changed" without materializing the new route: the
               steady state is an unchanged session, and building a Route
               per (prefix, session) per event dominates the loop. *)
            let changed =
              match old with
              | None -> vis
              | Some r ->
                  not (vis && Propagate.route_matches_id outcome peer_id r)
            in
            if changed then begin
              any_changed := true;
              let next =
                if vis then Propagate.route_at_id outcome peer_id else None
              in
              let delay = 2. +. Rng.float st.rng st.cfg.convergence_delay_max in
              let id = session.Collector.id in
              (match next with
               | None -> schedule_update st (now +. delay) id (Update.Withdraw st.pfxs.(p))
               | Some route ->
                   let base = now +. delay in
                   let n_transients =
                     if st.cfg.convergence_transients
                        && Rng.float st.rng 1.0 < st.cfg.transient_prob
                     then begin
                       (* Path exploration: the peer walks through alternate
                          candidates before settling on [route]. *)
                       let peer = id.Update.peer in
                       let cands = Propagate.candidates_at outcome peer in
                       let transients =
                         cands
                         |> List.filter (fun (c : Route.t) ->
                             not (List.equal Asn.equal (peer :: c.Route.as_path)
                                    route.Route.as_path))
                         |> (fun l -> List.filteri (fun i _ -> i < 2) l)
                       in
                       List.iteri
                         (fun i (c : Route.t) ->
                            let path = peer :: c.Route.as_path in
                            schedule_update st
                              (base +. (float_of_int i *. st.cfg.mrai))
                              id
                              (Update.Announce (Route.make st.pfxs.(p) path)))
                         transients;
                       List.length transients
                     end
                     else 0
                   in
                   schedule_update st
                     (base +. (float_of_int n_transients *. st.cfg.mrai))
                     id (Update.Announce route));
              st.previous.(p).(s_idx) <- old;
              st.current.(p).(s_idx) <- next
            end)
         st.sessions;
       if ver >= 0 then st.seen_version.(p) <- ver
       else if !any_changed then
         (* A versionless outcome (cache hit, full compute) moved
            [current.(p)] away from whatever version last derived it. *)
         st.seen_version.(p) <- -1
       end)
    affected

(* ---- event handlers ------------------------------------------------ *)

let prefixes_of_origin st o =
  Option.value ~default:[] (Asn.Table.find_opt st.pfx_of_origin o)

let cap st l =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take st.cfg.max_affected_per_event l

let dedup l = List.sort_uniq Int.compare l

let fail_link st now a b affected =
  if Link_set.mem a b st.failed then ()
  else begin
    st.failed <- Link_set.add a b st.failed;
    let d = Rng.exponential st.rng (1. /. st.cfg.mean_outage) in
    Pqueue.push st.events (now +. d) (Revert (Restore_link (a, b), affected));
    recompute st now affected
  end

let handle_churn st now p =
  st.n_churn <- st.n_churn + 1;
  let o = st.origins.(p) in
  let g = st.w.graph in
  let roll = Rng.float st.rng 1.0 in
  if roll < 0.5 then begin
    (* Re-homing flap: one of the origin's uplinks goes down. *)
    let uplinks = As_graph.providers g o @ As_graph.peers g o in
    match uplinks with
    | [] -> ()
    | _ ->
        let up = Rng.pick_list st.rng uplinks in
        let affected =
          dedup
            (prefixes_of_origin st o
             @ List.concat_map (prefixes_of_origin st) (cap st (As_graph.customers g o)))
        in
        fail_link st now o up (cap st affected)
  end
  else if roll < 0.8 then begin
    (* Upstream flap: a link one AS up from the origin flaps. *)
    match As_graph.providers g o with
    | [] -> ()
    | provs ->
        let pr = Rng.pick_list st.rng provs in
        let candidates = As_graph.providers g pr @ As_graph.peers g pr in
        (match candidates with
         | [] -> ()
         | _ ->
             let x = Rng.pick_list st.rng candidates in
             let affected =
               dedup
                 (prefixes_of_origin st o
                  @ prefixes_of_origin st pr
                  @ List.concat_map (prefixes_of_origin st)
                      (cap st (As_graph.customers g pr)))
             in
             fail_link st now pr x (cap st affected))
  end
  else begin
    (* Traffic-engineering prepend toggle. *)
    let old = st.prepend.(p) in
    st.prepend.(p) <- (if old = 0 then 2 else 0);
    let d = Rng.exponential st.rng (1. /. st.cfg.mean_outage) in
    Pqueue.push st.events (now +. d) (Revert (Set_prepend (p, old), [ p ]));
    recompute st now [ p ]
  end

let apply_perturbation st = function
  | Restore_link (a, b) -> st.failed <- Link_set.remove a b st.failed
  | Set_prepend (p, v) -> st.prepend.(p) <- v

let handle_revert st now perturbation affected =
  apply_perturbation st perturbation;
  recompute st now affected

(* Prefixes whose currently-recorded path at some session crosses link
   (a, b): the only ones a core-link failure can deflect. *)
let prefixes_using_link st a b =
  let uses route =
    let rec consecutive = function
      | x :: (y :: _ as rest) ->
          (Asn.equal x a && Asn.equal y b)
          || (Asn.equal x b && Asn.equal y a)
          || consecutive rest
      | [ _ ] | [] -> false
    in
    consecutive route.Route.as_path
  in
  let out = ref [] in
  Array.iteri
    (fun p per_session ->
       if Array.exists (function Some r -> uses r | None -> false) per_session
       then out := p :: !out)
    st.current;
  !out

let handle_global_fail st now =
  if Array.length st.core_links = 0 then ()
  else begin
    let a, b = Rng.pick st.rng st.core_links in
    if not (Link_set.mem a b st.failed) then begin
      let affected = prefixes_using_link st a b in
      st.failed <- Link_set.add a b st.failed;
      let d = Rng.exponential st.rng (1. /. st.cfg.mean_global_outage) in
      Pqueue.push st.events (now +. d) (Global_restore ((a, b), affected));
      st.globals <- (a, b, now, now +. d) :: st.globals;
      recompute st now affected
    end
  end

let handle_global_restore st now (a, b) affected =
  st.failed <- Link_set.remove a b st.failed;
  recompute st now affected

(* Trace-shaped session churn ([cfg.session_churn]): entity [e]'s origin
   AS drops off the network — every uplink it has goes down at once — and
   comes back when the generator's matching Up event lands. Only links
   this handler itself failed are recorded and later restored, so
   Down/Up pairs compose with Churn/Global perturbations without
   double-failing or double-restoring a link. *)
let handle_trace_down st now e =
  st.n_churn <- st.n_churn + 1;
  let o = st.trace_entities.(e) in
  let g = st.w.graph in
  let uplinks =
    List.filter
      (fun up -> not (Link_set.mem o up st.failed))
      (As_graph.providers g o @ As_graph.peers g o)
  in
  if uplinks <> [] then begin
    List.iter (fun up -> st.failed <- Link_set.add o up st.failed) uplinks;
    let affected =
      cap st
        (dedup
           (prefixes_of_origin st o
            @ List.concat_map (prefixes_of_origin st)
                (cap st (As_graph.customers g o))))
    in
    st.trace_links.(e) <- List.map (fun up -> (o, up)) uplinks;
    st.trace_affected.(e) <- affected;
    recompute st now affected
  end

let trace_restore st e =
  List.iter
    (fun (a, b) -> st.failed <- Link_set.remove a b st.failed)
    st.trace_links.(e);
  st.trace_links.(e) <- []

let handle_trace_up st now e =
  if st.trace_links.(e) <> [] then begin
    let affected = st.trace_affected.(e) in
    trace_restore st e;
    st.trace_affected.(e) <- [];
    recompute st now affected
  end

let handle_reset st now s_idx =
  let session = st.sessions.(s_idx) in
  let id = session.Collector.id in
  let finish = now +. st.cfg.reset_transfer_time in
  st.resets <- (id, now, finish) :: st.resets;
  Array.iteri
    (fun p per_session ->
       match per_session.(s_idx) with
       | None -> ()
       | Some route ->
           let at = now +. Rng.float st.rng st.cfg.reset_transfer_time in
           (* A slice of the table is replayed through a stale path first:
              the peer itself is still converging during the transfer. *)
           (match st.previous.(p).(s_idx) with
            | Some stale when Rng.float st.rng 1.0 < 0.25
                              && not (Route.equal stale route) ->
                schedule_update st at id (Update.Announce stale);
                schedule_update st (at +. 1.0) id (Update.Announce route)
            | Some _ | None -> schedule_update st at id (Update.Announce route)))
    st.current

(* ---- setup and main loop ------------------------------------------- *)

let poisson_times rng rate duration =
  if rate <= 0. then []
  else begin
    let rec loop t acc =
      let t = t +. Rng.exponential rng (rate /. duration) in
      if t >= duration then List.rev acc else loop t (t :: acc)
    in
    loop 0. []
  end

let run ~rng ?trace_rng ?(on_initial = fun _ -> ()) cfg w ~emit =
  Span.with_ ~name:"dynamics.run" @@ fun () ->
  let sessions = Array.of_list (Collector.all_sessions w.collectors) in
  let announced = Array.of_list (Addressing.announced w.addressing) in
  let pfxs = Array.map fst announced in
  let origins = Array.map snd announced in
  let n_pfx = Array.length pfxs in
  let pfx_of_origin = Asn.Table.create 1024 in
  Array.iteri
    (fun i o ->
       let cur = Option.value ~default:[] (Asn.Table.find_opt pfx_of_origin o) in
       Asn.Table.replace pfx_of_origin o (i :: cur))
    origins;
  let rate_multiplier =
    Array.map
      (fun o ->
         let hosting = (As_graph.info w.graph o).As_graph.hosting_weight in
         let m =
           Rng.pareto rng ~alpha:cfg.churn_alpha ~xmin:cfg.churn_xmin
           *. (1. +. (cfg.hosting_churn_factor *. hosting))
         in
         Float.min m cfg.max_rate_multiplier)
      origins
  in
  (* A couple of pathological super-flappers among hosting-AS prefixes —
     the paper's 178.239.176.0/20 anecdote (2000x the median churn). *)
  if cfg.pathological_prefixes > 0 && n_pfx > 0 then begin
    let hosting_idx =
      Array.to_list (Array.mapi (fun i o -> (i, o)) origins)
      |> List.filter (fun (_, o) ->
          (As_graph.info w.graph o).As_graph.hosting_weight > 0.)
      |> List.map fst
      |> Array.of_list
    in
    let pool = if Array.length hosting_idx > 0 then hosting_idx
               else Array.init n_pfx (fun i -> i) in
    for _ = 1 to cfg.pathological_prefixes do
      let i = Rng.pick rng pool in
      rate_multiplier.(i) <-
        cfg.pathological_multiplier *. (0.75 +. Rng.float rng 0.5)
    done
  end;
  let core_links =
    As_graph.links w.graph
    |> List.filter (fun (a, b, _) ->
        let tier x = (As_graph.info w.graph x).As_graph.tier in
        (match tier a with As_graph.Tier1 | As_graph.Transit -> true | As_graph.Stub -> false)
        && (match tier b with As_graph.Tier1 | As_graph.Transit -> true | As_graph.Stub -> false))
    |> List.map (fun (a, b, _) -> (a, b))
    |> Array.of_list
  in
  let trace_entities =
    match cfg.session_churn with
    | None -> [||]
    | Some _ ->
        Array.to_list origins |> List.sort_uniq Asn.compare |> Array.of_list
  in
  let st =
    { cfg; w; rng; sessions; pfxs; origins;
      prepend = Array.make n_pfx 0;
      current = Array.make_matrix n_pfx (Array.length sessions) None;
      previous = Array.make_matrix n_pfx (Array.length sessions) None;
      pfx_of_origin; core_links;
      failed = Link_set.empty;
      workspace = Propagate.Workspace.create ();
      cache =
        (if cfg.route_cache_size > 0 then
           Some (Route_cache.create ~capacity:cfg.route_cache_size)
         else None);
      delta_scratch = Propagate.Delta.create_scratch ();
      peer_ids =
        Array.map
          (fun (s : Collector.session) ->
             As_graph.Indexed.id_of_asn w.indexed s.Collector.id.Update.peer)
          sessions;
      vis_threshold =
        Array.map
          (fun (s : Collector.session) ->
             match s.Collector.feed with
             | Collector.Full -> 0
             | Collector.Customer_and_peer -> 1
             | Collector.Customer_only -> 2)
          sessions;
      origin_key =
        Array.map (As_graph.Indexed.id_of_asn w.indexed) origins;
      ann_cache = Array.make n_pfx [];
      seen_version = Array.make n_pfx (-1);
      delta = Hashtbl.create (max 16 (min cfg.delta_states 1024));
      delta_tick = 0;
      trace_entities;
      trace_links = Array.make (Array.length trace_entities) [];
      trace_affected = Array.make (Array.length trace_entities) [];
      events = Pqueue.create ();
      outq = Pqueue.create ();
      emit;
      n_churn = 0; n_updates = 0; n_ann = 0; n_wd = 0;
      n_full_recomp = 0; n_delta_steps = 0; n_delta_stop = 0;
      n_dropped = 0;
      globals = []; resets = [] }
  in
  (* Time 0: full routing computation, no emissions. *)
  let initial = ref Update.Session_map.empty in
  for p = 0 to n_pfx - 1 do
    (* Routed through [outcome_for] so the cache is seeded with every
       prefix's baseline (no failures, no prepend) configuration — the one
       each Revert eventually returns to. *)
    let outcome, ver = outcome_for st p in
    st.seen_version.(p) <- ver;
    Array.iteri
      (fun s_idx session ->
         match visible_route outcome session with
         | Some route ->
             st.current.(p).(s_idx) <- Some route;
             let id = session.Collector.id in
             let table =
               Option.value ~default:Prefix.Map.empty
                 (Update.Session_map.find_opt id !initial)
             in
             initial :=
               Update.Session_map.add id
                 (Prefix.Map.add pfxs.(p) route table)
                 !initial
         | None -> ())
      sessions
  done;
  on_initial !initial;
  (* Pre-generate the independent event processes. *)
  for p = 0 to n_pfx - 1 do
    let rate = cfg.base_churn_rate *. rate_multiplier.(p) in
    List.iter
      (fun t -> Pqueue.push st.events t (Churn p))
      (poisson_times rng rate cfg.duration)
  done;
  for _ = 1 to cfg.global_link_events do
    Pqueue.push st.events (Rng.float rng cfg.duration) Global_fail
  done;
  Array.iteri
    (fun s_idx _ ->
       List.iter
         (fun t -> Pqueue.push st.events t (Reset s_idx))
         (poisson_times rng cfg.resets_per_session cfg.duration))
    sessions;
  (* Trace-shaped session churn rides its own stream ([trace_rng],
     normally [Scenario.rng_for _ "trace-churn"]; a split of [rng]
     otherwise), so switching a scenario's trace model never re-times the
     Poisson processes above. *)
  (match cfg.session_churn with
   | None -> ()
   | Some chcfg when Array.length trace_entities > 0 ->
       let trng =
         match trace_rng with Some r -> r | None -> Rng.split rng
       in
       List.iter
         (fun (ev : Churn.event) ->
            let k =
              match ev.Churn.action with
              | Churn.Down -> Trace_down ev.Churn.entity
              | Churn.Up -> Trace_up ev.Churn.entity
            in
            Pqueue.push st.events ev.Churn.time k)
         (Churn.generate ~rng:trng chcfg
            ~entities:(Array.length trace_entities) ~duration:cfg.duration)
   | Some _ -> ());
  (* Main loop. *)
  let rec loop () =
    match Pqueue.pop st.events with
    | None -> ()
    | Some (now, ev) ->
        drain st (Float.min now cfg.duration);
        if now <= cfg.duration then begin
          (match ev with
           | Churn p -> handle_churn st now p
           | Revert (perturbation, affected) -> handle_revert st now perturbation affected
           | Global_fail -> handle_global_fail st now
           | Global_restore (link, affected) -> handle_global_restore st now link affected
           | Reset s_idx -> handle_reset st now s_idx
           | Trace_down e -> handle_trace_down st now e
           | Trace_up e -> handle_trace_up st now e);
          loop ()
        end
        else begin
          (* Past the horizon nothing is emitted or recomputed, but
             revert-type events still land so every transient perturbation
             returns the state to baseline: [failed] ends empty and
             [prepend] at its configured values. *)
          (match ev with
           | Revert (perturbation, _) -> apply_perturbation st perturbation
           | Global_restore ((a, b), _) ->
               st.failed <- Link_set.remove a b st.failed
           | Trace_up e -> trace_restore st e
           | Churn _ | Global_fail | Reset _ | Trace_down _ -> ());
          loop ()
        end
  in
  loop ();
  (* The out-queue may still hold updates scheduled past the horizon
     (convergence delays and reset replays near the end of the run push
     past it). Emit only up to [duration]; count the rest as dropped. *)
  drain st cfg.duration;
  st.n_dropped <- st.n_dropped + Pqueue.length st.outq;
  let cache_stats =
    match st.cache with
    | Some c -> Route_cache.stats c
    | None -> Route_cache.zero_stats
  in
  Metrics.add m_churn st.n_churn;
  Metrics.add m_updates st.n_updates;
  Metrics.add m_ann st.n_ann;
  Metrics.add m_wd st.n_wd;
  Metrics.add m_full_recomp st.n_full_recomp;
  Metrics.add m_delta_steps st.n_delta_steps;
  Metrics.add m_delta_stop st.n_delta_stop;
  Metrics.add m_dropped st.n_dropped;
  ( !initial,
    { churn_events = st.n_churn;
      global_events = List.rev st.globals;
      resets_injected = List.rev st.resets;
      updates_emitted = st.n_updates;
      announces = st.n_ann;
      withdraws = st.n_wd;
      full_recomputations = st.n_full_recomp;
      delta_steps = st.n_delta_steps;
      delta_stop_early = st.n_delta_stop;
      cache_hits = cache_stats.Route_cache.hits;
      cache_misses = cache_stats.Route_cache.misses;
      cache_evictions = cache_stats.Route_cache.evictions;
      post_horizon_dropped = st.n_dropped;
      final_failed = st.failed } )
