(** Event-driven interdomain routing dynamics.

    Simulates the processes that make BGP paths change over a measurement
    period — the raw material of the paper's §4 study:

    - {b per-prefix churn}: re-homing flaps (an origin's provider link goes
      down and comes back), upstream link flaps, and traffic-engineering
      prepending changes. Per-prefix churn rates are heavy-tailed
      (Pareto-distributed multipliers), and prefixes originated by hosting
      ASes (where Tor relays concentrate) churn more — datacenters do
      aggressive TE and attract attacks; this is the generative assumption
      behind the paper's measured "Tor prefixes see more path changes";
    - {b global events}: core transit links failing and recovering,
      affecting many prefixes at once;
    - {b convergence path exploration}: when a path changes, a session may
      transiently announce alternate candidate routes before settling
      (MRAI-spaced), the §3.1 "far-flung ASes get a temporary look" effect;
    - {b session resets}: collector sessions occasionally reset and replay
      their whole table (to be filtered out by {!Session_reset}).

    The simulator maintains ground truth (which updates are reset
    artifacts, which links failed when) so that detection and measurement
    code can be evaluated against it. All updates are emitted in
    non-decreasing time order. *)

type config = {
  duration : float;              (** simulated seconds (default: 30 days) *)
  base_churn_rate : float;       (** mean churn events per background prefix
                                     per [duration] *)
  churn_alpha : float;           (** Pareto shape of per-prefix rate
                                     multipliers (heavy tail) *)
  churn_xmin : float;            (** Pareto scale of the multipliers *)
  hosting_churn_factor : float;  (** extra multiplier per unit of
                                     [hosting_weight] *)
  max_rate_multiplier : float;   (** cap on the combined multiplier *)
  mean_outage : float;           (** mean duration of a perturbation, s *)
  global_link_events : int;      (** number of core-link failures *)
  mean_global_outage : float;
  resets_per_session : float;    (** expected session resets per session *)
  reset_transfer_time : float;   (** seconds a table replay takes *)
  convergence_transients : bool; (** emit path-exploration transients *)
  transient_prob : float;        (** chance a change shows transients *)
  mrai : float;                  (** spacing between transients, s *)
  convergence_delay_max : float; (** final path settles within this, s *)
  max_affected_per_event : int;  (** bound on prefixes recomputed per event *)
  pathological_prefixes : int;   (** super-flappers among hosting prefixes
                                     (the paper's 2000x-median anecdote) *)
  pathological_multiplier : float;
  route_cache_size : int;        (** LRU capacity of the route cache keyed
                                     by (announcement, failed links); [<= 0]
                                     disables it. The emitted update stream
                                     is byte-identical either way — the
                                     cache only avoids recomputing
                                     propagation outcomes already seen
                                     (default: 512). *)
  delta_states : int;            (** LRU capacity of per-prefix
                                     {!Propagate.Delta} states; [<= 0]
                                     disables the incremental engine and
                                     every compute runs full. The stream is
                                     byte-identical either way — delta
                                     repair reaches the same unique fixed
                                     point, it just does O(affected) work
                                     ([check --suite delta] enforces this)
                                     (default: 512). *)
  session_churn : Churn.config option;
      (** trace-shaped session churn: per-origin heavy-tailed up/down
          alternating-renewal processes ({!Qs_churn.Churn}) layered on
          top of the Poisson link-failure processes above. A Down event
          fails every uplink of its origin AS at once (skipping links
          some other process already failed); the matching Up restores
          exactly those links — even past the horizon, so
          [final_failed] still returns to baseline. [None] (the
          default) keeps the stream byte-identical to before the field
          existed. *)
}

val default_config : config
(** A 30-day month matching the paper's measurement scale. *)

val short_config : config
(** A 2-day run for tests and examples. *)

type world = {
  graph : As_graph.t;
  indexed : As_graph.Indexed.t;
  addressing : Addressing.t;
  collectors : Collector.t list;
}

val make_world : As_graph.t -> Addressing.t -> Collector.t list -> world

type initial = Route.t Prefix.Map.t Update.Session_map.t
(** Per session: the table at time 0 — the paper's "first path used at the
    beginning of the month" baseline. *)

type stats = {
  churn_events : int;
  global_events : (Asn.t * Asn.t * float * float) list;
      (** core link, down-time, up-time *)
  resets_injected : (Update.session_id * float * float) list;
      (** ground truth for evaluating {!Session_reset} detection *)
  updates_emitted : int;
  announces : int;
  withdraws : int;
  full_recomputations : int;
      (** full propagation runs: delta cold starts / evictions /
          unsupported shapes, plus every compute when the delta engine is
          off. Delta steps are deliberately {e not} counted here — AB
          tables comparing engines would otherwise lie.
          [cache_hits + full_recomputations + delta_steps] = outcome
          requests *)
  delta_steps : int;
      (** outcome requests served by incremental {!Propagate.Delta}
          repair instead of a full recompute *)
  delta_stop_early : int;
      (** link repairs inside those steps proven no-ops in O(1) (the
          flapped link carried no selected route) *)
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  post_horizon_dropped : int;
      (** updates scheduled past [duration] and never emitted — convergence
          delays and reset replays near the end of the run overshoot the
          horizon; the stream itself stays within [\[0, duration\]] *)
  final_failed : Link_set.t;
      (** failed links once every revert has been applied — empty unless a
          perturbation genuinely outlives all scheduled restores *)
}

val run :
  rng:Rng.t -> ?trace_rng:Rng.t -> ?on_initial:(initial -> unit) ->
  config -> world -> emit:(Update.t -> unit) -> initial * stats
(** Runs the simulation, feeding every UPDATE to [emit] in time order.
    [on_initial] is called with the time-0 tables {e before} any update is
    emitted, so consumers can set their baselines. Deterministic given
    [rng] and inputs. [trace_rng] seeds the trace-churn generator when
    [session_churn] is set (callers with a scenario pass
    [Scenario.rng_for _ "trace-churn"]; defaults to a split of [rng]) —
    a dedicated stream, so enabling trace churn never re-times the
    Poisson processes. *)
