(* Bounded LRU over propagation outcomes. Keys are exact canonical
   serializations of (announcements, failed links) — structural equality,
   no lossy hashing — so a hit can never return routes for a different
   configuration; byte-identical update streams with the cache on and off
   depend on that. Recency is a doubly-linked list threaded through the
   table entries: find/add are O(1) plus the key's hash. *)

type entry = {
  e_key : string;
  outcome : Propagate.t;
  mutable newer : entry option;
  mutable older : entry option;
}

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  mutable newest : entry option;
  mutable oldest : entry option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

(* Registry mirrors of the per-cache counters, summed across every cache
   in the process (one per domain in a parallel sweep). *)
let m_hits = Metrics.counter ~help:"route cache hits" "route_cache.hits"
let m_misses = Metrics.counter ~help:"route cache misses" "route_cache.misses"

let m_evictions =
  Metrics.counter ~help:"route cache LRU evictions" "route_cache.evictions"

let create ~capacity =
  if capacity <= 0 then
    invalid_arg "Route_cache.create: capacity must be positive";
  { capacity; table = Hashtbl.create (2 * capacity);
    newest = None; oldest = None; hits = 0; misses = 0; evictions = 0 }

let key ~anns ~failed =
  let buf = Buffer.create 96 in
  List.iter
    (fun (a : Announcement.t) ->
       Buffer.add_string buf (Prefix.to_string a.Announcement.prefix);
       Printf.bprintf buf "|%d|%d|"
         (Asn.to_int a.Announcement.origin) a.Announcement.prepend;
       List.iter
         (fun s -> Printf.bprintf buf "%d," (Asn.to_int s))
         a.Announcement.fake_suffix;
       Buffer.add_char buf '|';
       (match a.Announcement.export_to with
        | None -> Buffer.add_char buf '*'
        | Some set ->
            Asn.Set.iter
              (fun x -> Printf.bprintf buf "%d," (Asn.to_int x))
              set);
       Buffer.add_char buf '|';
       (match a.Announcement.max_radius with
        | None -> Buffer.add_char buf '*'
        | Some r -> Buffer.add_string buf (string_of_int r));
       Buffer.add_char buf '|';
       List.iter
         (fun (x, y) -> Printf.bprintf buf "%d:%d," x y)
         a.Announcement.communities;
       Buffer.add_char buf ';')
    anns;
  Buffer.add_char buf '#';
  List.iter
    (fun (x, y) ->
       Printf.bprintf buf "%d-%d;" (Asn.to_int x) (Asn.to_int y))
    (Link_set.elements failed);
  Buffer.contents buf

let unlink t e =
  (match e.newer with
   | Some n -> n.older <- e.older
   | None -> t.newest <- e.older);
  (match e.older with
   | Some o -> o.newer <- e.newer
   | None -> t.oldest <- e.newer);
  e.newer <- None;
  e.older <- None

let push_newest t e =
  e.older <- t.newest;
  (match t.newest with
   | Some n -> n.newer <- Some e
   | None -> t.oldest <- Some e);
  t.newest <- Some e

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some e ->
      t.hits <- t.hits + 1;
      Metrics.incr m_hits;
      (match t.newest with
       | Some n when n == e -> ()
       | Some _ | None -> unlink t e; push_newest t e);
      Some e.outcome
  | None ->
      t.misses <- t.misses + 1;
      Metrics.incr m_misses;
      None

let add t k outcome =
  (match Hashtbl.find_opt t.table k with
   | Some old ->
       unlink t old;
       Hashtbl.remove t.table k
   | None -> ());
  let e = { e_key = k; outcome; newer = None; older = None } in
  Hashtbl.replace t.table k e;
  push_newest t e;
  if Hashtbl.length t.table > t.capacity then
    match t.oldest with
    | Some victim ->
        unlink t victim;
        Hashtbl.remove t.table victim.e_key;
        t.evictions <- t.evictions + 1;
        Metrics.incr m_evictions
    | None -> ()

let length t = Hashtbl.length t.table

let stats (c : t) =
  { hits = c.hits; misses = c.misses; evictions = c.evictions;
    entries = Hashtbl.length c.table }

let zero_stats = { hits = 0; misses = 0; evictions = 0; entries = 0 }
