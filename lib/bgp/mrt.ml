exception Malformed of string

type message =
  | Update of {
      withdrawn : Prefix.t list;
      as_path : Asn.t list;
      next_hop : Ipv4.t option;
      communities : (int * int) list;
      nlri : Prefix.t list;
    }
  | Keepalive

type record = {
  timestamp : float;
  peer_as : Asn.t;
  local_as : Asn.t;
  peer_ip : Ipv4.t;
  local_ip : Ipv4.t;
  message : message;
}

let mrt_type_bgp4mp_et = 17
let subtype_message_as4 = 4
let bgp_type_update = 2
let bgp_type_keepalive = 4
let attr_origin = 1
let attr_as_path = 2
let attr_next_hop = 3
let attr_communities = 8

(* --- encoding ------------------------------------------------------ *)

let add_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let add_u16 buf v =
  add_u8 buf (v lsr 8);
  add_u8 buf v

let add_u32 buf v =
  add_u16 buf (v lsr 16);
  add_u16 buf (v land 0xFFFF)

(* A prefix in BGP wire format: length byte + just enough address bytes. *)
let add_wire_prefix buf p =
  let len = Prefix.length p in
  add_u8 buf len;
  let addr = Ipv4.to_int (Prefix.network p) in
  let nbytes = (len + 7) / 8 in
  for i = 0 to nbytes - 1 do
    add_u8 buf ((addr lsr (24 - (8 * i))) land 0xFF)
  done

let add_attr buf ~flags ~typ body =
  let len = String.length body in
  if len > 0xFF then begin
    add_u8 buf (flags lor 0x10);  (* extended length *)
    add_u8 buf typ;
    add_u16 buf len
  end else begin
    add_u8 buf flags;
    add_u8 buf typ;
    add_u8 buf len
  end;
  Buffer.add_string buf body

let as_path_body path =
  let buf = Buffer.create 64 in
  let rec segments = function
    | [] -> ()
    | rest ->
        let seg_len = min 255 (List.length rest) in
        add_u8 buf 2;  (* AS_SEQUENCE *)
        add_u8 buf seg_len;
        let rec take n = function
          | a :: tl when n > 0 ->
              add_u32 buf (Asn.to_int a);
              take (n - 1) tl
          | tl -> tl
        in
        segments (take seg_len rest)
  in
  segments path;
  Buffer.contents buf

let encode_attrs ~as_path ~next_hop ~communities =
  let attrs = Buffer.create 64 in
  if as_path <> [] then begin
    let origin_body = String.make 1 '\000' in
    add_attr attrs ~flags:0x40 ~typ:attr_origin origin_body;
    add_attr attrs ~flags:0x40 ~typ:attr_as_path (as_path_body as_path)
  end;
  (match next_hop with
   | Some ip ->
       let b = Buffer.create 4 in
       add_u32 b (Ipv4.to_int ip);
       add_attr attrs ~flags:0x40 ~typ:attr_next_hop (Buffer.contents b)
   | None -> ());
  if communities <> [] then begin
    let b = Buffer.create 16 in
    List.iter
      (fun (asn, value) ->
         add_u16 b asn;
         add_u16 b value)
      communities;
    add_attr attrs ~flags:0xC0 ~typ:attr_communities (Buffer.contents b)
  end;
  Buffer.contents attrs

let bgp_message_body message =
  let buf = Buffer.create 128 in
  (match message with
   | Keepalive -> ()
   | Update { withdrawn; as_path; next_hop; communities; nlri } ->
       let wd = Buffer.create 32 in
       List.iter (add_wire_prefix wd) withdrawn;
       add_u16 buf (Buffer.length wd);
       Buffer.add_buffer buf wd;
       let attrs = encode_attrs ~as_path ~next_hop ~communities in
       add_u16 buf (String.length attrs);
       Buffer.add_string buf attrs;
       List.iter (add_wire_prefix buf) nlri);
  Buffer.contents buf

let encode_record buf r =
  let seconds = int_of_float r.timestamp in
  let micros =
    int_of_float (Float.round ((r.timestamp -. float_of_int seconds) *. 1_000_000.))
  in
  let body = bgp_message_body r.message in
  let bgp_len = 16 + 2 + 1 + String.length body in
  (* BGP4MP_MESSAGE_AS4 body: peer AS, local AS, ifindex, AFI, IPs, message. *)
  let mrt_len = 4 (* microseconds *) + 4 + 4 + 2 + 2 + 4 + 4 + bgp_len in
  add_u32 buf seconds;
  add_u16 buf mrt_type_bgp4mp_et;
  add_u16 buf subtype_message_as4;
  add_u32 buf mrt_len;
  add_u32 buf micros;
  add_u32 buf (Asn.to_int r.peer_as);
  add_u32 buf (Asn.to_int r.local_as);
  add_u16 buf 0;  (* interface index *)
  add_u16 buf 1;  (* AFI IPv4 *)
  add_u32 buf (Ipv4.to_int r.peer_ip);
  add_u32 buf (Ipv4.to_int r.local_ip);
  for _ = 1 to 16 do add_u8 buf 0xFF done;
  add_u16 buf bgp_len;
  add_u8 buf
    (match r.message with
     | Update _ -> bgp_type_update
     | Keepalive -> bgp_type_keepalive);
  Buffer.add_string buf body

let encode records =
  let buf = Buffer.create 4096 in
  List.iter (encode_record buf) records;
  Buffer.contents buf

(* --- decoding ------------------------------------------------------ *)

type reader = { data : string; mutable pos : int; limit : int }

let need r n what =
  if r.pos + n > r.limit then
    raise (Malformed (Printf.sprintf "truncated %s at offset %d" what r.pos))

let u8 r what =
  need r 1 what;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let u16 r what =
  let hi = u8 r what in
  (hi lsl 8) lor u8 r what

let u32 r what =
  let hi = u16 r what in
  (hi lsl 16) lor u16 r what

let wire_prefix r =
  let len = u8 r "prefix length" in
  if len > 32 then raise (Malformed (Printf.sprintf "prefix length %d > 32" len));
  let nbytes = (len + 7) / 8 in
  let addr = ref 0 in
  for i = 0 to nbytes - 1 do
    addr := !addr lor (u8 r "prefix bytes" lsl (24 - (8 * i)))
  done;
  Prefix.make (Ipv4.of_int_trunc !addr) len

let wire_prefixes r limit =
  let sub = { r with limit } in
  let out = ref [] in
  while sub.pos < sub.limit do
    out := wire_prefix sub :: !out
  done;
  r.pos <- sub.pos;
  List.rev !out

let decode_attrs r limit =
  let sub = { r with limit } in
  let as_path = ref [] and next_hop = ref None and communities = ref [] in
  while sub.pos < sub.limit do
    let flags = u8 sub "attr flags" in
    let typ = u8 sub "attr type" in
    let len =
      if flags land 0x10 <> 0 then u16 sub "attr ext length" else u8 sub "attr length"
    in
    need sub len "attr body";
    let body_end = sub.pos + len in
    if typ = attr_as_path then begin
      let path = ref [] in
      while sub.pos < body_end do
        let seg_type = u8 sub "segment type" in
        if seg_type <> 2 then
          raise (Malformed (Printf.sprintf "unsupported AS_PATH segment %d" seg_type));
        let count = u8 sub "segment count" in
        for _ = 1 to count do
          path := Asn.of_int (u32 sub "segment ASN") :: !path
        done
      done;
      as_path := !as_path @ List.rev !path
    end
    else if typ = attr_next_hop then begin
      if len <> 4 then raise (Malformed "NEXT_HOP length <> 4");
      next_hop := Some (Ipv4.of_int_trunc (u32 sub "next hop"))
    end
    else if typ = attr_communities then begin
      if len mod 4 <> 0 then raise (Malformed "COMMUNITIES length not multiple of 4");
      for _ = 1 to len / 4 do
        let asn = u16 sub "community asn" in
        let value = u16 sub "community value" in
        communities := (asn, value) :: !communities
      done
    end
    else sub.pos <- body_end;  (* ORIGIN and anything else: skip *)
    if sub.pos <> body_end then raise (Malformed "attribute body size mismatch")
  done;
  r.pos <- sub.pos;
  (!as_path, !next_hop, List.rev !communities)

let decode_record r =
  let seconds = u32 r "MRT timestamp" in
  let typ = u16 r "MRT type" in
  let subtype = u16 r "MRT subtype" in
  let len = u32 r "MRT length" in
  need r len "MRT body";
  let body_end = r.pos + len in
  if typ <> mrt_type_bgp4mp_et then
    raise (Malformed (Printf.sprintf "unsupported MRT type %d" typ));
  if subtype <> subtype_message_as4 then
    raise (Malformed (Printf.sprintf "unsupported BGP4MP subtype %d" subtype));
  let micros = u32 r "microseconds" in
  let peer_as = Asn.of_int (u32 r "peer AS") in
  let local_as = Asn.of_int (u32 r "local AS") in
  let _ifindex = u16 r "ifindex" in
  let afi = u16 r "AFI" in
  if afi <> 1 then raise (Malformed (Printf.sprintf "unsupported AFI %d" afi));
  let peer_ip = Ipv4.of_int_trunc (u32 r "peer IP") in
  let local_ip = Ipv4.of_int_trunc (u32 r "local IP") in
  for _ = 1 to 16 do
    if u8 r "BGP marker" <> 0xFF then raise (Malformed "bad BGP marker")
  done;
  let bgp_len = u16 r "BGP length" in
  if r.pos - 18 + bgp_len <> body_end then raise (Malformed "BGP length mismatch");
  let bgp_type = u8 r "BGP type" in
  let message =
    if bgp_type = bgp_type_keepalive then Keepalive
    else if bgp_type = bgp_type_update then begin
      let wd_len = u16 r "withdrawn length" in
      need r wd_len "withdrawn routes";
      let withdrawn = wire_prefixes r (r.pos + wd_len) in
      let attr_len = u16 r "attrs length" in
      need r attr_len "path attributes";
      let as_path, next_hop, communities = decode_attrs r (r.pos + attr_len) in
      let nlri = wire_prefixes r body_end in
      Update { withdrawn; as_path; next_hop; communities; nlri }
    end
    else raise (Malformed (Printf.sprintf "unsupported BGP message type %d" bgp_type))
  in
  if r.pos <> body_end then raise (Malformed "trailing bytes in MRT record");
  { timestamp = float_of_int seconds +. (float_of_int micros /. 1_000_000.);
    peer_as; local_as; peer_ip; local_ip; message }

let decode data =
  let r = { data; pos = 0; limit = String.length data } in
  let out = ref [] in
  while r.pos < r.limit do
    out := decode_record r :: !out
  done;
  List.rev !out

(* Total variants for callers feeding the decoder untrusted or corrupted
   bytes. Only [Malformed] is converted to [Error]: any other exception
   escaping the decoder is a bug, and the fuzz harness treats it as one. *)
let decode_result data =
  match decode data with
  | records -> Ok records
  | exception Malformed msg -> Error msg

let record_of_update ~local_as ~local_ip ~peer_ip (u : Update.t) =
  let message =
    match u.Update.kind with
    | Update.Announce route ->
        Update
          { withdrawn = [];
            as_path = route.Route.as_path;
            next_hop = Some peer_ip;
            communities = route.Route.communities;
            nlri = [ route.Route.prefix ] }
    | Update.Withdraw p ->
        Update
          { withdrawn = [ p ]; as_path = []; next_hop = None;
            communities = []; nlri = [] }
  in
  { timestamp = u.Update.time; peer_as = u.Update.session.Update.peer;
    local_as; local_ip; peer_ip; message }

let update_of_record ~collector r =
  let session = { Update.collector; peer = r.peer_as } in
  match r.message with
  | Keepalive -> []
  | Update { withdrawn; as_path; communities; nlri; _ } ->
      let withdraws =
        List.map
          (fun p -> { Update.time = r.timestamp; session; kind = Update.Withdraw p })
          withdrawn
      in
      let announces =
        if as_path = [] then []
        else
          List.map
            (fun p ->
               { Update.time = r.timestamp; session;
                 kind = Update.Announce (Route.make ~communities p as_path) })
            nlri
      in
      withdraws @ announces

(* --- TABLE_DUMP_V2 RIB snapshots (RFC 6396 §4.3) -------------------- *)

let mrt_type_table_dump_v2 = 13
let subtype_peer_index_table = 1
let subtype_rib_ipv4_unicast = 2

type rib = {
  rib_time : float;
  collector_id : Ipv4.t;
  view_name : string;
  peers : (Ipv4.t * Asn.t) array;
  rib_entries : (Prefix.t * (int * Route.t) list) list;
}

let add_mrt_header buf ~time ~typ ~subtype ~len =
  add_u32 buf (int_of_float time);
  add_u16 buf typ;
  add_u16 buf subtype;
  add_u32 buf len

let encode_rib rib =
  let buf = Buffer.create 4096 in
  (* PEER_INDEX_TABLE *)
  let pit = Buffer.create 256 in
  add_u32 pit (Ipv4.to_int rib.collector_id);
  add_u16 pit (String.length rib.view_name);
  Buffer.add_string pit rib.view_name;
  add_u16 pit (Array.length rib.peers);
  Array.iter
    (fun (ip, asn) ->
       add_u8 pit 0x02;  (* IPv4 peer, 4-byte AS *)
       add_u32 pit (Ipv4.to_int ip);  (* peer BGP id = peer IP here *)
       add_u32 pit (Ipv4.to_int ip);
       add_u32 pit (Asn.to_int asn))
    rib.peers;
  add_mrt_header buf ~time:rib.rib_time ~typ:mrt_type_table_dump_v2
    ~subtype:subtype_peer_index_table ~len:(Buffer.length pit);
  Buffer.add_buffer buf pit;
  (* RIB_IPV4_UNICAST records, one per prefix *)
  List.iteri
    (fun seq (prefix, entries) ->
       let body = Buffer.create 256 in
       add_u32 body seq;
       add_wire_prefix body prefix;
       add_u16 body (List.length entries);
       List.iter
         (fun (peer_index, (route : Route.t)) ->
            add_u16 body peer_index;
            add_u32 body (int_of_float rib.rib_time);
            let attrs =
              encode_attrs ~as_path:route.Route.as_path ~next_hop:None
                ~communities:route.Route.communities
            in
            add_u16 body (String.length attrs);
            Buffer.add_string body attrs)
         entries;
       add_mrt_header buf ~time:rib.rib_time ~typ:mrt_type_table_dump_v2
         ~subtype:subtype_rib_ipv4_unicast ~len:(Buffer.length body);
       Buffer.add_buffer buf body)
    rib.rib_entries;
  Buffer.contents buf

let decode_rib data =
  let r = { data; pos = 0; limit = String.length data } in
  let rib_time = ref 0. in
  let collector_id = ref (Ipv4.of_int_trunc 0) in
  let view_name = ref "" in
  let peers = ref [||] in
  let entries = ref [] in
  while r.pos < r.limit do
    let seconds = u32 r "MRT timestamp" in
    let typ = u16 r "MRT type" in
    let subtype = u16 r "MRT subtype" in
    let len = u32 r "MRT length" in
    need r len "MRT body";
    let body_end = r.pos + len in
    if typ <> mrt_type_table_dump_v2 then
      raise (Malformed (Printf.sprintf "expected TABLE_DUMP_V2, got type %d" typ));
    if subtype = subtype_peer_index_table then begin
      rib_time := float_of_int seconds;
      collector_id := Ipv4.of_int_trunc (u32 r "collector id");
      let name_len = u16 r "view name length" in
      need r name_len "view name";
      view_name := String.sub r.data r.pos name_len;
      r.pos <- r.pos + name_len;
      let count = u16 r "peer count" in
      peers :=
        Array.init count (fun _ ->
            let peer_type = u8 r "peer type" in
            if peer_type land 0x01 <> 0 then
              raise (Malformed "IPv6 peers unsupported");
            let _bgp_id = u32 r "peer bgp id" in
            let ip = Ipv4.of_int_trunc (u32 r "peer ip") in
            let asn =
              if peer_type land 0x02 <> 0 then Asn.of_int (u32 r "peer as4")
              else Asn.of_int (u16 r "peer as2")
            in
            (ip, asn))
    end
    else if subtype = subtype_rib_ipv4_unicast then begin
      let _seq = u32 r "rib sequence" in
      let prefix = wire_prefix r in
      let count = u16 r "entry count" in
      let entry_list = ref [] in
      for _ = 1 to count do
        let peer_index = u16 r "peer index" in
        let _originated = u32 r "originated time" in
        let attr_len = u16 r "rib attr length" in
        need r attr_len "rib attributes";
        let as_path, _next_hop, communities = decode_attrs r (r.pos + attr_len) in
        if as_path = [] then raise (Malformed "RIB entry without AS_PATH");
        entry_list :=
          (peer_index, Route.make ~communities prefix as_path) :: !entry_list
      done;
      entries := (prefix, List.rev !entry_list) :: !entries
    end
    else raise (Malformed (Printf.sprintf "unsupported TABLE_DUMP_V2 subtype %d" subtype));
    if r.pos <> body_end then raise (Malformed "trailing bytes in TABLE_DUMP_V2 record")
  done;
  { rib_time = !rib_time; collector_id = !collector_id; view_name = !view_name;
    peers = !peers; rib_entries = List.rev !entries }

let decode_rib_result data =
  match decode_rib data with
  | rib -> Ok rib
  | exception Malformed msg -> Error msg

let rib_of_initial ~time ~collector_id ~view_name ~peer_ip initial =
  let sessions = List.map fst (Update.Session_map.bindings initial) in
  let peers =
    Array.of_list
      (List.map (fun s -> (peer_ip s, s.Update.peer)) sessions)
  in
  let index_of =
    let tbl = Hashtbl.create 64 in
    List.iteri (fun i s -> Hashtbl.replace tbl s i) sessions;
    fun s -> Hashtbl.find tbl s
  in
  let by_prefix = ref Prefix.Map.empty in
  Update.Session_map.iter
    (fun session table ->
       Prefix.Map.iter
         (fun p route ->
            let cur = Option.value ~default:[] (Prefix.Map.find_opt p !by_prefix) in
            by_prefix := Prefix.Map.add p ((index_of session, route) :: cur) !by_prefix)
         table)
    initial;
  { rib_time = time; collector_id; view_name; peers;
    rib_entries =
      Prefix.Map.bindings !by_prefix
      |> List.map (fun (p, entries) -> (p, List.rev entries)) }
