(** Detection and removal of BGP session-reset artifacts.

    When an eBGP session to a collector resets, the peer re-sends its whole
    table. Those updates say nothing about routing changes and massively
    inflate per-prefix update counts; the paper removes them ("we removed
    any artificial updates caused by BGP session resets [31]", following
    Zhang et al., {i Identifying BGP routing table transfer}).

    This module implements the detection heuristic as an online filter:
    per session it watches for bursts that announce an abnormally large
    share of the session's known table within a short window, drops the
    whole burst (and keeps dropping while the burst continues), and passes
    everything else downstream. Updates must be pushed in non-decreasing
    time order per session; downstream emission preserves order but is
    delayed by up to [window] seconds (call {!flush} at end of stream). *)

type config = {
  window : float;        (** burst-detection window, seconds (default 60) *)
  min_prefixes : int;    (** never classify fewer distinct prefixes as a
                             transfer (default 100) *)
  table_fraction : float;(** burst must cover at least this fraction of the
                             session's known table (default 0.5) *)
  quiet_gap : float;     (** a silence this long ends a transfer (default 30) *)
}

val default_config : config

type stats = {
  pushed : int;          (** total updates ever pushed into the filter *)
  passed : int;          (** updates emitted downstream *)
  dropped : int;         (** updates classified as table-transfer artifacts *)
  buffered : int;        (** updates still held in session buffers; zero
                             after {!flush}. The accounting identity
                             [pushed = passed + dropped + buffered] holds at
                             every point of the stream. *)
  bursts : (Update.session_id * float * float) list;
  (** detected transfer intervals, latest first *)
}

type t

val create : ?config:config -> emit:(Update.t -> unit) -> unit -> t

val preload_table : t -> Update.session_id -> int -> unit
(** Tell the filter how many prefixes the session's table holds at stream
    start (from the initial RIB), so early resets are sized correctly. *)

val push : t -> Update.t -> unit

val advance : t -> float -> unit
(** Global clock tick: emit, across {e all} sessions, every buffered
    update older than [now - window], in global (time, session, position)
    order. [push] alone only releases a session's buffer when that session
    speaks again, so a quiet session can hold a straggler for hours;
    calling [advance u.time] before every push bounds the emission delay
    by [window] and makes the downstream stream globally time-ordered —
    what a streaming consumer with bounded reorder slack needs.
    Per-session pass/drop decisions are exactly unchanged: a tick releases
    only what the session's own next push would release anyway. Input time
    must be globally non-decreasing. *)

val flush : t -> unit
(** Emits everything still buffered, across all sessions, in global
    (time, session) order. Call exactly once, at end of stream. *)

val stats : t -> stats
