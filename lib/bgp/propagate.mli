(** Network-wide BGP route computation for one prefix.

    Implements the standard Gao–Rexford model of interdomain routing (the
    "AS-level path simulator of Gao et al." lineage the paper builds on):

    {b Decision process} at every AS, in order: prefer routes learned from
    customers over peers over providers; then shortest AS path; then lowest
    next-hop ASN (a deterministic stand-in for intra-AS tie-breaking).

    {b Export policy}: self-originated and customer-learned routes are
    exported to everyone; peer- and provider-learned routes are exported to
    customers only. The resulting paths are valley-free.

    The computation takes a {e list} of simultaneous announcements for the
    prefix, which is how hijacks are expressed: the legitimate origin plus
    one or more adversarial origins, each AS independently picking whichever
    route its policy prefers. Announcement scoping ([export_to],
    [max_radius]) and path forgery ([fake_suffix]) are honored, including
    BGP loop detection (an AS never accepts a path already containing
    itself).

    Link failures are passed as a {!Link_set.t}; failed links carry no
    routes. *)

type t
(** The routing outcome for one prefix: the best route at every AS. *)

module Workspace : sig
  type t
  (** Preallocated scratch state for {!compute}: the five per-AS arrays
      (class/length/next-hop/source/depth) plus settle flags and the two
      BFS bucket tables. A plain [compute] allocates all of these afresh
      per call — on hot paths that recompute thousands of prefixes (the
      dynamics simulator, lint's per-prefix sampling loop) a reused
      workspace removes that allocation entirely.

      A workspace grows to fit the largest graph it has served and is
      reset in place on every use.

      {b Aliasing and invalidation.} An outcome computed through a
      workspace {e aliases} the workspace's arrays — it is a view, not a
      copy. The next [compute ~workspace] call on the same workspace
      resets those arrays in place and therefore {b invalidates every
      previous outcome} it produced: reading a retained outcome after the
      next compute observes the new prefix's routes, silently. Use a
      workspace only where each outcome is fully consumed before the next
      compute — never for outcomes that are stored (e.g. in a
      {!Route_cache}, which must use plain [compute]). A regression test
      in [test/test_bgp.ml] pins this clobbering behaviour down.

      {b One workspace per domain.} A workspace is single-threaded
      scratch: two domains computing through the same workspace race on
      the same arrays and corrupt both outcomes. Code that runs inside
      {!Qs_exec.Pool} tasks must allocate its workspace through
      [Pool.per_domain Workspace.create] and fetch it with [Pool.get], so
      each domain reuses its own instance ([Lint.run] is the template).
      Sharing one workspace across domains is never sound, even briefly. *)

  val create : unit -> t
  (** An empty workspace; arrays are sized lazily by the first use. *)
end

val compute :
  As_graph.Indexed.t -> ?workspace:Workspace.t -> ?failed:Link_set.t ->
  ?rov:Rpki.t * Asn.Set.t -> Announcement.t list -> t
(** [compute g ~failed ~rov anns] computes routes for the prefix of [anns].
    [rov = (roa_table, deploying_ases)] enables route-origin validation:
    the listed ASes refuse routes whose claimed origin is RPKI-invalid
    (forged-origin paths still validate — ROV is origin, not path,
    security).
    [workspace] reuses preallocated scratch arrays instead of allocating
    per call; the result then stays valid only until the workspace's next
    compute (see {!Workspace}). The outcome is bit-for-bit identical with
    and without a workspace.
    @raise Invalid_argument if [anns] is empty, the announcements disagree
    on the prefix, or an origin is not in the graph. *)

val prefix : t -> Prefix.t

val has_route : t -> Asn.t -> bool

val route_at : t -> Asn.t -> Route.t option
(** [route_at t a] is the route as [a] would export it: [a]'s own ASN (or
    its announced path if [a] is an origin) at the head. This is what a
    route collector peering with [a] records. [None] if [a] has no route. *)

val next_hop : t -> Asn.t -> Asn.t option
(** The neighbor [a] forwards traffic to for this prefix; [None] if [a] has
    no route or is itself an origin. *)

val route_matches : t -> Asn.t -> Route.t -> bool
(** [route_matches t a r] is [route_at t a = Some r] without building the
    route: an allocation-free walk of the stored next-hop chain against
    [r]'s path. This is the dynamics simulator's per-session unchanged
    check — the overwhelmingly common case after an event. *)

(** Id-keyed variants for per-event hot loops: [i] is the AS's index in
    the {e same} [As_graph.Indexed.t] the outcome was computed over
    ([As_graph.Indexed.id_of_asn], cacheable across outcomes). They skip
    the per-call ASN-to-id table lookup, which dominates a loop that
    probes thousands of (prefix, session) pairs per event. *)

val route_class_at_id :
  t -> int -> [ `Origin | `Customer | `Peer | `Provider ] option

val route_at_id : t -> int -> Route.t option
val route_matches_id : t -> int -> Route.t -> bool

val class_code_at_id : t -> int -> int
(** The raw decision-class code at an id: 3 origin, 2 customer, 1 peer,
    0 provider, -1 unrouted. Codes are ordered by collector-feed
    visibility (a feed that shows peer routes shows everything
    customer-learned and above), so "visible on this feed" is a single
    [>=] against a per-feed threshold — the allocation-free form of
    {!route_class_at_id} + [Collector.visible] for tight loops. *)

val forwarding_path : t -> Asn.t -> Asn.t list option
(** [forwarding_path t a] is the data-plane AS sequence from [a] to
    wherever its route terminates: [a] first, terminating origin last (with
    no prepending repetitions — this is the actual AS-level forwarding
    walk, not the control-plane path). [None] if no route. *)

val route_class_at : t -> Asn.t -> [ `Origin | `Customer | `Peer | `Provider ] option
(** How the AS learned its selected route; drives collector feed
    visibility ({!Collector.visible}). *)

val winning_announcement : t -> Asn.t -> int option
(** Index (into the [compute] announcement list) of the announcement whose
    route [a] selected. This is the hijack-deflection test: if AS [a]
    selects announcement 1 (the attacker's), its traffic is captured. *)

val captured : t -> int -> Asn.t list
(** All ASes whose selected route descends from announcement [i]. *)

val candidates_at : t -> Asn.t -> Route.t list
(** Every route AS [a] {e receives} from its neighbors under export policy
    (its best-per-neighbor alternatives), best first. Used to synthesize
    BGP-convergence path exploration: the transient paths a router walks
    through before settling. Paths are as received (neighbor's exported
    path, not including [a]). *)

val routed_count : t -> int
(** Number of ASes that have a route. *)

val copy : t -> t
(** An outcome that owns its arrays. Computing through a
    {!Workspace} (or a {!Delta.state}) yields a view over reused scratch
    that the next compute invalidates; [copy] snapshots it so it can be
    retained — this is how outcomes enter a {!Route_cache}. O(n) blits,
    no recomputation. *)

(** Incremental route repair: apply a configuration change to a retained
    outcome and re-run the Gao–Rexford decision only where it can matter,
    instead of recomputing the world.

    A {!state} holds the current fixed point for one {e origin} as owned
    flat int arrays — the routing arrays never depend on the prefix, so
    one state serves every prefix the origin announces (a prefix swap is
    an O(1) metadata update; this is what lets the dynamics simulator
    key its state LRU per origin). {!update} diffs the requested
    (announcements, failed links) configuration against the last applied
    one and repairs:

    - {b link failure}: if no selected route crosses the link the outcome
      is untouched (O(1) stop-early); otherwise the crossing endpoint
      re-selects locally and the change, if any, ripples outward —
      O(affected), not O(world);
    - {b link restore}: the only new candidates are the two offers across
      the restored edge, so an O(1) check per endpoint decides whether
      anything can move;

    The ripple recomputes a popped node's best response from its
    neighbors' current stored routes (class desc, length asc, lowest
    next-hop ASN — the full engine's total order) and re-enqueues its
    neighbors only when the node's route {e quality} (class, length)
    changed: a swap to an equal-quality route via a different next hop
    leaves every neighbor's candidate through it literally identical, so
    the common multihomed re-homing flap repairs in O(degree) instead of
    cascading through the customer cone. Candidates whose selection
    chain passes through the evaluating node are rejected (they can
    never win the Gao–Rexford order at a consistent state, and skipping
    them keeps the stored next-pointer chains acyclic mid-repair); a
    node that lost its would-be winner only to that rejection
    re-enqueues itself while the wave is still moving, since the
    crossing can untangle without any further push reaching it. An
    empty queue means every node re-evaluated after its inputs last
    changed — a best-response equilibrium.
    - {b prepend change}: decisions are invariant under uniform length
      shifts, so only the [len] column moves.

    Because the Gao–Rexford system is safe (unique stable assignment),
    every repair lands on exactly the arrays a full {!compute} would
    produce; `quicksand check --suite delta` enforces byte-identical
    update streams and tables against the full engine.

    Delta repair is only attempted for the plain dynamics shape — a
    single announcement with no forged suffix, export scoping, radius cap
    or ROV. Anything else (and every first call) falls back to a full
    rebuild through the scratch workspace, reported as {!kind}
    [Full_rebuild].

    Outcomes returned by {!update} alias the state's arrays and are
    invalidated by the state's next update — the same contract as
    {!Workspace}; use {!copy} to retain one. A [scratch] is single-domain
    scratch like a workspace and may be shared across many states. *)
module Delta : sig
  type state
  (** Per-prefix retained fixed point plus the configuration it is the
      fixed point of. *)

  type scratch
  (** Reusable repair scratch (wave queue, epoch marks, a rebuild
      workspace); shareable across all states driven from one domain. *)

  val create_scratch : unit -> scratch

  val create : As_graph.Indexed.t -> state
  (** A cold state: the first {!update} performs a full rebuild. *)

  type kind =
    | Full_rebuild
        (** cold start, or a configuration delta repair can't express *)
    | Steps of { links_applied : int; frontier : int; stop_early : int }
        (** [links_applied] failed-link-set differences applied;
            [frontier] distinct ASes whose stored route record (class,
            length, next hop) changed — rendered AS paths further
            downstream can change without their records being touched;
            [stop_early] links whose repair proved a no-op without
            touching any route *)

  val update :
    state -> scratch -> ?failed:Link_set.t -> Announcement.t list -> t * kind
  (** Bring the state to the requested configuration and return the
      outcome (aliasing the state's arrays). *)

  val version : state -> int
  (** A stamp that changes exactly when an {!update} changes anything an
      outcome reader could observe: any route record, a uniform length
      shift, or the announcement's communities (a pure prefix swap keeps
      the stamp). Two reads of the same prefix at the same version are
      guaranteed identical, so a caller that remembers the version it
      last derived per-session views at can skip the whole derivation
      when the stamp matches — the dynamics simulator's common case,
      where most events leave most origins' states untouched. Stamps are
      globally unique across states: an evicted-and-recreated state
      never repeats a number a caller remembers. *)

  val supported : Announcement.t list -> bool
  (** Whether this announcement shape is delta-eligible (informational:
      {!update} falls back by itself). *)
end
