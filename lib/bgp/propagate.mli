(** Network-wide BGP route computation for one prefix.

    Implements the standard Gao–Rexford model of interdomain routing (the
    "AS-level path simulator of Gao et al." lineage the paper builds on):

    {b Decision process} at every AS, in order: prefer routes learned from
    customers over peers over providers; then shortest AS path; then lowest
    next-hop ASN (a deterministic stand-in for intra-AS tie-breaking).

    {b Export policy}: self-originated and customer-learned routes are
    exported to everyone; peer- and provider-learned routes are exported to
    customers only. The resulting paths are valley-free.

    The computation takes a {e list} of simultaneous announcements for the
    prefix, which is how hijacks are expressed: the legitimate origin plus
    one or more adversarial origins, each AS independently picking whichever
    route its policy prefers. Announcement scoping ([export_to],
    [max_radius]) and path forgery ([fake_suffix]) are honored, including
    BGP loop detection (an AS never accepts a path already containing
    itself).

    Link failures are passed as a {!Link_set.t}; failed links carry no
    routes. *)

type t
(** The routing outcome for one prefix: the best route at every AS. *)

module Workspace : sig
  type t
  (** Preallocated scratch state for {!compute}: the five per-AS arrays
      (class/length/next-hop/source/depth) plus settle flags and the two
      BFS bucket tables. A plain [compute] allocates all of these afresh
      per call — on hot paths that recompute thousands of prefixes (the
      dynamics simulator, lint's per-prefix sampling loop) a reused
      workspace removes that allocation entirely.

      A workspace grows to fit the largest graph it has served and is
      reset in place on every use.

      {b Aliasing and invalidation.} An outcome computed through a
      workspace {e aliases} the workspace's arrays — it is a view, not a
      copy. The next [compute ~workspace] call on the same workspace
      resets those arrays in place and therefore {b invalidates every
      previous outcome} it produced: reading a retained outcome after the
      next compute observes the new prefix's routes, silently. Use a
      workspace only where each outcome is fully consumed before the next
      compute — never for outcomes that are stored (e.g. in a
      {!Route_cache}, which must use plain [compute]). A regression test
      in [test/test_bgp.ml] pins this clobbering behaviour down.

      {b One workspace per domain.} A workspace is single-threaded
      scratch: two domains computing through the same workspace race on
      the same arrays and corrupt both outcomes. Code that runs inside
      {!Qs_exec.Pool} tasks must allocate its workspace through
      [Pool.per_domain Workspace.create] and fetch it with [Pool.get], so
      each domain reuses its own instance ([Lint.run] is the template).
      Sharing one workspace across domains is never sound, even briefly. *)

  val create : unit -> t
  (** An empty workspace; arrays are sized lazily by the first use. *)
end

val compute :
  As_graph.Indexed.t -> ?workspace:Workspace.t -> ?failed:Link_set.t ->
  ?rov:Rpki.t * Asn.Set.t -> Announcement.t list -> t
(** [compute g ~failed ~rov anns] computes routes for the prefix of [anns].
    [rov = (roa_table, deploying_ases)] enables route-origin validation:
    the listed ASes refuse routes whose claimed origin is RPKI-invalid
    (forged-origin paths still validate — ROV is origin, not path,
    security).
    [workspace] reuses preallocated scratch arrays instead of allocating
    per call; the result then stays valid only until the workspace's next
    compute (see {!Workspace}). The outcome is bit-for-bit identical with
    and without a workspace.
    @raise Invalid_argument if [anns] is empty, the announcements disagree
    on the prefix, or an origin is not in the graph. *)

val prefix : t -> Prefix.t

val has_route : t -> Asn.t -> bool

val route_at : t -> Asn.t -> Route.t option
(** [route_at t a] is the route as [a] would export it: [a]'s own ASN (or
    its announced path if [a] is an origin) at the head. This is what a
    route collector peering with [a] records. [None] if [a] has no route. *)

val next_hop : t -> Asn.t -> Asn.t option
(** The neighbor [a] forwards traffic to for this prefix; [None] if [a] has
    no route or is itself an origin. *)

val forwarding_path : t -> Asn.t -> Asn.t list option
(** [forwarding_path t a] is the data-plane AS sequence from [a] to
    wherever its route terminates: [a] first, terminating origin last (with
    no prepending repetitions — this is the actual AS-level forwarding
    walk, not the control-plane path). [None] if no route. *)

val route_class_at : t -> Asn.t -> [ `Origin | `Customer | `Peer | `Provider ] option
(** How the AS learned its selected route; drives collector feed
    visibility ({!Collector.visible}). *)

val winning_announcement : t -> Asn.t -> int option
(** Index (into the [compute] announcement list) of the announcement whose
    route [a] selected. This is the hijack-deflection test: if AS [a]
    selects announcement 1 (the attacker's), its traffic is captured. *)

val captured : t -> int -> Asn.t list
(** All ASes whose selected route descends from announcement [i]. *)

val candidates_at : t -> Asn.t -> Route.t list
(** Every route AS [a] {e receives} from its neighbors under export policy
    (its best-per-neighbor alternatives), best first. Used to synthesize
    BGP-convergence path exploration: the transient paths a router walks
    through before settling. Paths are as received (neighbor's exported
    path, not including [a]). *)

val routed_count : t -> int
(** Number of ASes that have a route. *)
