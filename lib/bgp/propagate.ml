(* Three-stage bucketed BFS. Stage A floods customer routes uphill
   (customer -> provider edges), stage B crosses peering edges once, stage C
   floods downhill to customers. Within a stage, nodes are settled in
   increasing path-length order, with ties broken by lowest next-hop ASN;
   classes are strictly ordered customer > peer > provider, so later stages
   never overwrite earlier ones. *)

type ann_info = {
  spec : Announcement.t;
  claimed_path : Asn.t list; (* as injected: origin^(1+prepend) @ fake_suffix *)
  claimed_set : Asn.Set.t;
  init_len : int;
  rpki_invalid : bool;       (* claimed origin fails route-origin validation *)
}

type t = {
  graph : As_graph.Indexed.t;
  pfx : Prefix.t;
  anns : ann_info array;
  cls : int array;   (* 3 origin, 2 customer, 1 peer, 0 provider, -1 none *)
  len : int array;
  next : int array;  (* neighbor id the route was learned from; -1 at origin *)
  src : int array;   (* announcement index the route descends from *)
  depth : int array; (* AS hops from the originating AS *)
  failed : Link_set.t;
  rov_deployers : Asn.Set.t;  (* ASes that drop RPKI-invalid routes *)
}

let cls_origin = 3
let cls_customer = 2
let cls_peer = 1
let cls_provider = 0

let prefix t = t.pfx

let link_up t u v =
  Link_set.is_empty t.failed
  || not
       (Link_set.mem
          (As_graph.Indexed.asn_of_id t.graph u)
          (As_graph.Indexed.asn_of_id t.graph v)
          t.failed)

(* May the route sitting at [u] be exported across one more hop? Checks the
   origin announcement's scoping rules. *)
let may_reexport t u =
  let info = t.anns.(t.src.(u)) in
  match info.spec.Announcement.max_radius with
  | Some r -> t.depth.(u) < r
  | None -> true

(* Origin first-hop restriction (community-scoped announcements). *)
let origin_export_allowed t u v =
  if t.next.(u) <> -1 then true
  else
    let info = t.anns.(t.src.(u)) in
    match info.spec.Announcement.export_to with
    | None -> true
    | Some set -> Asn.Set.mem (As_graph.Indexed.asn_of_id t.graph v) set

(* BGP loop detection against the *claimed* path: the BFS tree itself cannot
   loop, but a forged suffix can mention [v]. *)
let loop_free t v k =
  not (Asn.Set.mem (As_graph.Indexed.asn_of_id t.graph v) t.anns.(k).claimed_set)

(* Route-origin validation: a deploying AS drops routes whose claimed
   origin is RPKI-invalid. Non-deployers accept everything; forged-origin
   paths (interceptions) present a Valid origin and sail through. *)
let rov_accepts t v k =
  (not t.anns.(k).rpki_invalid)
  || not (Asn.Set.mem (As_graph.Indexed.asn_of_id t.graph v) t.rov_deployers)

let admissible t v k = loop_free t v k && rov_accepts t v k

let better t ~cls ~len ~next_id ~cand_cls ~cand_len ~cand_next =
  if cand_cls <> cls then cand_cls > cls
  else if cand_len <> len then cand_len < len
  else
    Asn.compare
      (As_graph.Indexed.asn_of_id t.graph cand_next)
      (As_graph.Indexed.asn_of_id t.graph next_id)
    < 0

type buckets = { mutable slots : int list array }

let bucket_make n = { slots = Array.make (n + 2) [] }

let bucket_push b l v =
  let cap = Array.length b.slots in
  if l >= cap then begin
    let slots = Array.make (max (l + 1) (2 * cap)) [] in
    Array.blit b.slots 0 slots 0 cap;
    b.slots <- slots
  end;
  b.slots.(l) <- v :: b.slots.(l)

let offer t buckets ~v ~cand_cls ~cand_len ~cand_next ~cand_src =
  if t.cls.(v) = -1
     || better t ~cls:t.cls.(v) ~len:t.len.(v) ~next_id:t.next.(v)
          ~cand_cls ~cand_len ~cand_next
  then begin
    t.cls.(v) <- cand_cls;
    t.len.(v) <- cand_len;
    t.next.(v) <- cand_next;
    t.src.(v) <- cand_src;
    t.depth.(v) <- t.depth.(cand_next) + 1;
    match buckets with
    | Some b -> bucket_push b cand_len v
    | None -> ()
  end

let rec last_exn = function
  | [ x ] -> x
  | _ :: rest -> last_exn rest
  | [] -> invalid_arg "Propagate: empty claimed path"

module Workspace = struct
  type t = {
    mutable cls : int array;
    mutable len : int array;
    mutable next : int array;
    mutable src : int array;
    mutable depth : int array;
    mutable settled_up : bool array;
    mutable settled_down : bool array;
    mutable up : buckets;
    mutable down : buckets;
  }

  let create () =
    { cls = [||]; len = [||]; next = [||]; src = [||]; depth = [||];
      settled_up = [||]; settled_down = [||];
      up = { slots = [||] }; down = { slots = [||] } }

  (* Make the workspace ready for a graph of [n] nodes: reallocate when too
     small, otherwise reset in place. Bucket arrays are cleared over their
     whole (possibly larger) capacity — the stage loops walk every slot, so
     a stale entry from a previous compute would corrupt the BFS. *)
  let ready w n =
    if Array.length w.cls < n then begin
      w.cls <- Array.make n (-1);
      w.len <- Array.make n 0;
      w.next <- Array.make n (-1);
      w.src <- Array.make n (-1);
      w.depth <- Array.make n 0;
      w.settled_up <- Array.make n false;
      w.settled_down <- Array.make n false;
      w.up <- bucket_make n;
      w.down <- bucket_make n
    end else begin
      Array.fill w.cls 0 n (-1);
      Array.fill w.len 0 n 0;
      Array.fill w.next 0 n (-1);
      Array.fill w.src 0 n (-1);
      Array.fill w.depth 0 n 0;
      Array.fill w.settled_up 0 n false;
      Array.fill w.settled_down 0 n false;
      Array.fill w.up.slots 0 (Array.length w.up.slots) [];
      Array.fill w.down.slots 0 (Array.length w.down.slots) []
    end
end

let compute graph ?workspace ?(failed = Link_set.empty) ?rov anns =
  (match anns with [] -> invalid_arg "Propagate.compute: no announcements" | _ -> ());
  let pfx = (List.hd anns).Announcement.prefix in
  List.iter
    (fun a ->
       if not (Prefix.equal a.Announcement.prefix pfx) then
         invalid_arg "Propagate.compute: announcements for different prefixes")
    anns;
  let rpki_table, rov_deployers =
    match rov with
    | Some (table, deployers) -> (Some table, deployers)
    | None -> (None, Asn.Set.empty)
  in
  let anns =
    Array.of_list
      (List.map
         (fun spec ->
            let claimed_path = Announcement.announced_path spec in
            let rpki_invalid =
              match rpki_table with
              | None -> false
              | Some table ->
                  Rpki.validate table spec.Announcement.prefix
                    (last_exn claimed_path)
                  = Rpki.Invalid
            in
            { spec; claimed_path;
              claimed_set = Asn.Set.of_list claimed_path;
              init_len = List.length claimed_path;
              rpki_invalid })
         anns)
  in
  let n = As_graph.Indexed.n graph in
  let cls, len, next, src, depth, settled_up, settled_down, up, down =
    match workspace with
    | Some w ->
        Workspace.ready w n;
        (w.Workspace.cls, w.Workspace.len, w.Workspace.next,
         w.Workspace.src, w.Workspace.depth, w.Workspace.settled_up,
         w.Workspace.settled_down, w.Workspace.up, w.Workspace.down)
    | None ->
        (Array.make n (-1), Array.make n 0, Array.make n (-1),
         Array.make n (-1), Array.make n 0, Array.make n false,
         Array.make n false, bucket_make n, bucket_make n)
  in
  let t = { graph; pfx; anns; cls; len; next; src; depth; failed; rov_deployers } in
  (* Seed the origins. *)
  Array.iteri
    (fun k info ->
       let o =
         try As_graph.Indexed.id_of_asn graph info.spec.Announcement.origin
         with Not_found ->
           invalid_arg
             (Printf.sprintf "Propagate.compute: origin %s not in topology"
                (Asn.to_string info.spec.Announcement.origin))
       in
       let take =
         t.cls.(o) <> cls_origin
         || info.init_len < t.len.(o)
       in
       if take then begin
         t.cls.(o) <- cls_origin;
         t.len.(o) <- info.init_len;
         t.next.(o) <- -1;
         t.src.(o) <- k;
         t.depth.(o) <- 0;
         bucket_push up info.init_len o
       end)
    anns;
  (* Stage A: uphill. *)
  let l = ref 0 in
  while !l < Array.length up.slots do
    List.iter
      (fun u ->
         if (not settled_up.(u)) && t.len.(u) = !l && t.cls.(u) >= cls_customer then begin
           settled_up.(u) <- true;
           if may_reexport t u then
             Array.iter
               (fun (v, rel) ->
                  match rel with
                  | Relationship.Provider ->
                      if link_up t u v && origin_export_allowed t u v
                         && admissible t v t.src.(u)
                      then
                        offer t (Some up) ~v ~cand_cls:cls_customer
                          ~cand_len:(t.len.(u) + 1) ~cand_next:u ~cand_src:t.src.(u)
                  | Relationship.Customer | Relationship.Peer -> ())
               (As_graph.Indexed.neighbors graph u)
         end)
      up.slots.(!l);
    incr l
  done;
  (* Stage B: one hop across peering links, from customer/origin routes. *)
  let stage_a_sources = ref [] in
  for u = 0 to n - 1 do
    if t.cls.(u) >= cls_customer then stage_a_sources := u :: !stage_a_sources
  done;
  List.iter
    (fun u ->
       if may_reexport t u then
         Array.iter
           (fun (v, rel) ->
              match rel with
              | Relationship.Peer ->
                  if t.cls.(v) < cls_customer && link_up t u v
                     && origin_export_allowed t u v && admissible t v t.src.(u)
                  then
                    offer t None ~v ~cand_cls:cls_peer ~cand_len:(t.len.(u) + 1)
                      ~cand_next:u ~cand_src:t.src.(u)
              | Relationship.Customer | Relationship.Provider -> ())
           (As_graph.Indexed.neighbors graph u))
    !stage_a_sources;
  (* Stage C: downhill to customers, chaining through provider routes. *)
  for u = 0 to n - 1 do
    if t.cls.(u) >= cls_provider then bucket_push down t.len.(u) u
  done;
  let l = ref 0 in
  while !l < Array.length down.slots do
    List.iter
      (fun u ->
         if (not settled_down.(u)) && t.len.(u) = !l && t.cls.(u) >= cls_provider
         then begin
           settled_down.(u) <- true;
           if may_reexport t u then
             Array.iter
               (fun (v, rel) ->
                  match rel with
                  | Relationship.Customer ->
                      if t.cls.(v) < cls_peer && link_up t u v
                         && origin_export_allowed t u v && admissible t v t.src.(u)
                      then
                        offer t (Some down) ~v ~cand_cls:cls_provider
                          ~cand_len:(t.len.(u) + 1) ~cand_next:u ~cand_src:t.src.(u)
                  | Relationship.Provider | Relationship.Peer -> ())
               (As_graph.Indexed.neighbors graph u)
         end)
      down.slots.(!l);
    incr l
  done;
  t

let id_opt t a =
  match As_graph.Indexed.id_of_asn t.graph a with
  | i -> Some i
  | exception Not_found -> None

let has_route t a =
  match id_opt t a with
  | Some i -> t.cls.(i) >= 0
  | None -> false

let rec exported_path t i =
  if t.next.(i) = -1 then t.anns.(t.src.(i)).claimed_path
  else As_graph.Indexed.asn_of_id t.graph i :: exported_path t t.next.(i)

let route_at_id t i =
  if t.cls.(i) >= 0 then
    let communities = t.anns.(t.src.(i)).spec.Announcement.communities in
    Some (Route.make ~communities t.pfx (exported_path t i))
  else None

let route_at t a =
  match id_opt t a with
  | Some i -> route_at_id t i
  | None -> None

let next_hop t a =
  match id_opt t a with
  | Some i when t.cls.(i) >= 0 && t.next.(i) <> -1 ->
      Some (As_graph.Indexed.asn_of_id t.graph t.next.(i))
  | Some _ | None -> None

(* Allocation-free [route_at t a = Some r]: walks the next-hop chain
   comparing hops against [r]'s stored path instead of materializing a
   fresh list and Route. The dynamics simulator calls this once per
   (prefix, session) per event — almost always on an unchanged route. *)
let route_matches_id t i (r : Route.t) =
  t.cls.(i) >= 0
  && Prefix.equal t.pfx r.Route.prefix
  && t.anns.(t.src.(i)).spec.Announcement.communities = r.Route.communities
  &&
  let rec walk i (path : Asn.t list) =
    if t.next.(i) = -1 then
      List.equal Asn.equal t.anns.(t.src.(i)).claimed_path path
    else
      match path with
      | [] -> false
      | hop :: rest ->
          Asn.equal (As_graph.Indexed.asn_of_id t.graph i) hop
          && walk t.next.(i) rest
  in
  walk i r.Route.as_path

let route_matches t a r =
  match id_opt t a with
  | Some i -> route_matches_id t i r
  | None -> false

let forwarding_path t a =
  match id_opt t a with
  | Some i when t.cls.(i) >= 0 ->
      let rec walk i acc =
        let acc = As_graph.Indexed.asn_of_id t.graph i :: acc in
        if t.next.(i) = -1 then List.rev acc else walk t.next.(i) acc
      in
      Some (walk i [])
  | Some _ | None -> None

let class_code_at_id t i = t.cls.(i)

let route_class_at_id t i =
  if t.cls.(i) >= 0 then
    Some
      (if t.cls.(i) = cls_origin then `Origin
       else if t.cls.(i) = cls_customer then `Customer
       else if t.cls.(i) = cls_peer then `Peer
       else `Provider)
  else None

let route_class_at t a =
  match id_opt t a with
  | Some i -> route_class_at_id t i
  | None -> None

let winning_announcement t a =
  match id_opt t a with
  | Some i when t.cls.(i) >= 0 -> Some t.src.(i)
  | Some _ | None -> None

(* [t.cls] may be a workspace array longer than the graph (the workspace
   grows to the largest graph it has served), so whole-table scans must
   bound themselves by the graph size, not the array length. *)
let captured t k =
  let out = ref [] in
  for i = As_graph.Indexed.n t.graph - 1 downto 0 do
    if t.cls.(i) >= 0 && t.src.(i) = k then
      out := As_graph.Indexed.asn_of_id t.graph i :: !out
  done;
  !out

let routed_count t =
  let n = As_graph.Indexed.n t.graph in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    if t.cls.(i) >= 0 then incr acc
  done;
  !acc

let copy t =
  let n = As_graph.Indexed.n t.graph in
  { t with
    cls = Array.sub t.cls 0 n;
    len = Array.sub t.len 0 n;
    next = Array.sub t.next 0 n;
    src = Array.sub t.src 0 n;
    depth = Array.sub t.depth 0 n }

let candidates_at t a =
  match id_opt t a with
  | None -> []
  | Some v ->
      let asn_v = a in
      let cands = ref [] in
      Array.iter
        (fun (u, rel) ->
           (* [rel] is what u is to v; u exports its best route to v iff the
              route is customer/origin class, or v is u's customer — i.e. u
              is v's Provider. *)
           if t.cls.(u) >= 0 && link_up t v u && may_reexport t u
              && origin_export_allowed t u v && rov_accepts t v t.src.(u)
              && (t.cls.(u) >= cls_customer || Relationship.equal rel Relationship.Provider)
           then begin
             let path = exported_path t u in
             if not (List.exists (Asn.equal asn_v) path) then
               let cand_cls =
                 match rel with
                 | Relationship.Customer -> cls_customer
                 | Relationship.Peer -> cls_peer
                 | Relationship.Provider -> cls_provider
               in
               cands := (cand_cls, List.length path, path) :: !cands
           end)
        (As_graph.Indexed.neighbors t.graph v);
      !cands
      |> List.sort (fun (c1, l1, p1) (c2, l2, p2) ->
          if c1 <> c2 then Int.compare c2 c1
          else if l1 <> l2 then Int.compare l1 l2
          else List.compare Asn.compare p1 p2)
      |> List.map (fun (_, _, path) -> Route.make t.pfx path)

(* ---- Incremental delta engine --------------------------------------- *)

(* Correctness rests on the Gao-Rexford safety property: under
   customer>peer>provider preference and valley-free export the routing
   system has a {e unique} stable assignment (the customer layer is the
   shortest-path fixed point over the acyclic customer->provider digraph,
   the peer layer is a function of it, the provider layer a Dijkstra fixed
   point given both). Any repair that ends in a feasible, stable
   assignment therefore lands on the very same arrays the full compute
   produces.

   A {b failed} link only removes candidates, so nodes whose selected
   next-chain does not cross it keep their exact routes (the preference
   order is total, so every alternative they saw before strictly lost and
   still does). Only the endpoint routing across it must re-select, and
   its change (if any) ripples outward through local re-selection. A
   {b restored} link only adds candidates: the current assignment is still
   feasible, and the only new offers cross the restored edge, so an O(1)
   check per endpoint decides whether anything can change (stop-early). A
   {b prepend} change on the single announcement shifts every candidate's
   length uniformly, so decisions are invariant and the repair is a plain
   [len] shift. *)
module Delta = struct
  type scratch = {
    ws : Workspace.t;               (* for cold starts / full rebuilds *)
    mutable mark : int array;       (* epoch-stamped clean/dirty memo *)
    mutable epoch : int;
    mutable on_list : bool array;
    mutable queue : int array;      (* ring buffer, capacity n + 1 *)
  }

  let create_scratch () =
    { ws = Workspace.create ();
      mark = [||]; epoch = 1; on_list = [||]; queue = [||] }

  let scratch_ready s n =
    if Array.length s.mark < n then begin
      s.mark <- Array.make n 0;
      s.epoch <- 1;
      s.on_list <- Array.make n false;
      s.queue <- Array.make (n + 1) 0
    end

  type state = {
    graph : As_graph.Indexed.t;
    cls : int array;                (* owned, length n *)
    len : int array;
    next : int array;
    src : int array;
    depth : int array;
    mutable ann : Announcement.t option;  (* last applied; None = cold *)
    mutable infos : ann_info array;
    mutable failed : Link_set.t;
    mutable failed_ids : (int * int) list;
        (* in-graph links of [failed] as normalized (min id, max id)
           pairs — the wave's membership test, int compares on a
           near-always-tiny list instead of a Map probe per candidate *)
    mutable origin_id : int;
    mutable version : int;
        (* bumped whenever an update changes anything a reader could
           observe (any record, every length, route communities); two
           reads of the same prefix at the same version are guaranteed
           identical, which lets callers skip re-deriving per-session
           views entirely *)
  }

  type kind =
    | Full_rebuild
    | Steps of { links_applied : int; frontier : int; stop_early : int }

  (* Global across states so an evicted-and-recreated state can never
     echo a version number a caller remembers from its predecessor. *)
  let version_counter = ref 0

  let fresh_version () =
    incr version_counter;
    !version_counter

  let create graph =
    let n = As_graph.Indexed.n graph in
    { graph;
      cls = Array.make n (-1); len = Array.make n 0;
      next = Array.make n (-1); src = Array.make n (-1);
      depth = Array.make n 0;
      ann = None; infos = [||]; failed = Link_set.empty; failed_ids = [];
      origin_id = -1; version = fresh_version () }

  let version st = st.version

  (* The delta repairs are only sound for the plain single-announcement
     shape ([outcome_for] in the dynamics simulator emits exactly this):
     no forged suffix (claimed set is the origin alone, so loop detection
     is [v <> origin]), no export scoping, no radius cap, no ROV. *)
  let supported_ann (a : Announcement.t) =
    a.Announcement.fake_suffix = []
    && a.Announcement.export_to = None
    && a.Announcement.max_radius = None

  let supported = function [ a ] -> supported_ann a | _ -> false

  let ann_info_no_rov (spec : Announcement.t) =
    let claimed_path = Announcement.announced_path spec in
    { spec; claimed_path;
      claimed_set = Asn.Set.of_list claimed_path;
      init_len = List.length claimed_path;
      rpki_invalid = false }

  let make_t st =
    { graph = st.graph;
      pfx = st.infos.(0).spec.Announcement.prefix;
      anns = st.infos;
      cls = st.cls; len = st.len; next = st.next; src = st.src;
      depth = st.depth;
      failed = st.failed; rov_deployers = Asn.Set.empty }

  let rebuild st scratch ~failed anns =
    let o = compute st.graph ~workspace:scratch.ws ~failed anns in
    let n = As_graph.Indexed.n st.graph in
    Array.blit o.cls 0 st.cls 0 n;
    Array.blit o.len 0 st.len 0 n;
    Array.blit o.next 0 st.next 0 n;
    Array.blit o.src 0 st.src 0 n;
    Array.blit o.depth 0 st.depth 0 n;
    st.infos <- o.anns;
    st.failed <- failed;
    st.failed_ids <-
      List.filter_map
        (fun (a, b) ->
           match
             ( As_graph.Indexed.id_of_asn st.graph a,
               As_graph.Indexed.id_of_asn st.graph b )
           with
           | ia, ib -> Some (if ia < ib then (ia, ib) else (ib, ia))
           | exception Not_found -> None)
        (Link_set.elements failed);
    st.version <- fresh_version ();
    (match anns with
     | [ a ] when supported_ann a ->
         st.ann <- Some a;
         st.origin_id <-
           As_graph.Indexed.id_of_asn st.graph a.Announcement.origin
     | _ ->
         (* Unsupported shape: never diff against it. *)
         st.ann <- None);
    make_t st

  (* A repair that refuses to converge within its pop budget bails out to
     a full rebuild (the budget is a safety valve; Gao-Rexford-compliant
     topologies converge long before it). *)
  exception Bail

  (* Does the selection chain starting at [w] pass through [x]? Stored
     chains are acyclic at every moment (each accept below re-checks
     this), so the walk ends at the origin; the step bound is a safety
     net. A candidate whose chain crosses the evaluating node can never
     beat that node's stored route under the Gao-Rexford order once
     chains are accept-consistent, so rejecting them loses nothing at
     the fixed point - it only steers transients away from next-pointer
     cycles. *)
  let chain_crosses st w x =
    let n = Array.length st.cls in
    let rec go v steps =
      v >= 0 && steps <= n && (v = x || go st.next.(v) (steps + 1))
    in
    go w 0

  let link_failed st x v =
    match st.failed_ids with
    | [] -> false
    | ids ->
        let lo, hi = if v < x then (v, x) else (x, v) in
        List.exists (fun (a, b) -> a = lo && b = hi) ids

  (* [x]'s stored record just changed quality (class or length, incl.
     becoming unrouted): enqueue only the neighbors the change can
     actually move. Dependents (routing via [x]) must re-select
     unconditionally. Any other neighbor [v] chose its stored route over
     [x]'s old offer, so a {e worsened} or withdrawn offer cannot move
     it; an {e improved} offer matters only if it now beats [v]'s stored
     route outright (class desc, length asc, lowest next-hop ASN). This
     collapses the wave's fanout from degree to the handful of nodes
     that actually re-route. *)
  let push_affected st push x =
    let g = st.graph in
    let neighbors = As_graph.Indexed.neighbors g x in
    for k = 0 to Array.length neighbors - 1 do
      let (v, rel) : int * Relationship.t = neighbors.(k) in
      (* [rel] is what v is to x. *)
      if st.next.(v) = x then push v
      else if st.cls.(x) >= 0 then begin
        let exportable =
          st.cls.(x) >= cls_customer
          || Relationship.equal rel Relationship.Customer
        in
        if exportable && not (link_failed st x v) then begin
          (* x's relationship to v is the inverse of [rel]. *)
          let cand_cls =
            match rel with
            | Relationship.Customer -> cls_provider
            | Relationship.Peer -> cls_peer
            | Relationship.Provider -> cls_customer
          in
          let cand_len = st.len.(x) + 1 in
          let beats =
            st.cls.(v) < 0 || cand_cls > st.cls.(v)
            || (cand_cls = st.cls.(v)
                && (cand_len < st.len.(v)
                    || (cand_len = st.len.(v)
                        && st.next.(v) >= 0
                        && Asn.compare
                             (As_graph.Indexed.asn_of_id g x)
                             (As_graph.Indexed.asn_of_id g st.next.(v))
                           < 0)))
          in
          if beats then push v
        end
      end
    done

  (* Local re-selection ("ripple") repair: pop a node, recompute its
     best response from its neighbors' current stored routes under
     valley-free export (total order: class desc, length asc, lowest
     next-hop ASN - exactly [better] in the full engine), and re-enqueue
     its neighbors only when its route *quality* (class, length)
     changed. A node that swaps to an equal-quality route via a
     different next hop affects nobody: its neighbors' candidates
     through it keep the same class, length, and offering ASN, so the
     repair frontier collapses to the nodes whose (class, length)
     actually move - the common multihomed re-homing flap repairs in
     O(degree) instead of invalidating the whole customer cone.

     An empty queue means every node was re-evaluated after its inputs
     last changed, i.e. the tables are a best-response equilibrium,
     which is unique under Gao-Rexford safety and therefore
     byte-identical to a full compute. *)
  let wave st s ~tail ~newly =
    let g = st.graph in
    let n = As_graph.Indexed.n g in
    let cap = n + 1 in
    let head = ref 0 and tail = ref tail in
    let init_len = st.infos.(0).init_len in
    let budget = ref ((64 * n) + 256) in
    let push v =
      if v <> st.origin_id && not s.on_list.(v) then begin
        s.on_list.(v) <- true;
        s.queue.(!tail) <- v;
        let t = !tail + 1 in
        tail := if t = cap then 0 else t
      end
    in
    let stamp v =
      if s.mark.(v) <> s.epoch then begin
        s.mark.(v) <- s.epoch;
        incr newly
      end
    in
    while !head <> !tail do
      let x = s.queue.(!head) in
      let h = !head + 1 in
      head := if h = cap then 0 else h;
      s.on_list.(x) <- false;
      decr budget;
      if !budget < 0 then raise Bail;
      let neighbors = As_graph.Indexed.neighbors g x in
      let b_cls = ref (-1) and b_len = ref 0 and b_next = ref (-1) in
      (* Did a candidate lose only to the chain-crossing rejection? Then
         x's true best response is not yet determined — the crossing can
         untangle later without any neighbor's record (and hence any
         push) changing, so x must re-evaluate once the wave has moved
         on. Without this, a transiently-crossing winner leaves x stuck
         on a worse route (or unrouted) at quiescence. *)
      let deferred = ref false in
      (* A plain counted loop with local refs: the candidate scan runs
         per pop and must not allocate (an [Array.iter] closure over the
         running-best refs boxes all of them, every pop). *)
      for k = 0 to Array.length neighbors - 1 do
        let (w, rel) : int * Relationship.t = neighbors.(k) in
        (* [rel] is what w is to x; w exports its route to x iff the
           route is customer/origin class or x is w's customer. *)
        if st.cls.(w) >= 0
           && (st.cls.(w) >= cls_customer
               || Relationship.equal rel Relationship.Provider)
           && not (link_failed st x w)
        then begin
          let cand_cls =
            match rel with
            | Relationship.Customer -> cls_customer
            | Relationship.Peer -> cls_peer
            | Relationship.Provider -> cls_provider
          in
          let cand_len = st.len.(w) + 1 in
          let take =
            !b_next = -1
            || (if cand_cls <> !b_cls then cand_cls > !b_cls
                else if cand_len <> !b_len then cand_len < !b_len
                else
                  Asn.compare
                    (As_graph.Indexed.asn_of_id g w)
                    (As_graph.Indexed.asn_of_id g !b_next)
                  < 0)
          in
          if take then begin
            (* Incumbent fast path: if x already routes via w, the
               stored chain x -> w -> ... is acyclic (the invariant
               every adopt preserves), so chain(w) cannot contain x —
               no walk needed. Re-confirmation pops, the wave's common
               case, take this branch. *)
            if st.next.(x) = w then begin
              b_cls := cand_cls;
              b_len := cand_len;
              b_next := w
            end
            else begin
              if chain_crosses st w x then deferred := true
              else begin
                b_cls := cand_cls;
                b_len := cand_len;
                b_next := w
              end
            end
          end
        end
      done;
      let changed_here = ref false in
      if !b_next = -1 then begin
        if st.cls.(x) >= 0 then begin
          st.cls.(x) <- -1;
          st.len.(x) <- 0;
          st.next.(x) <- -1;
          st.src.(x) <- -1;
          st.depth.(x) <- 0;
          stamp x;
          changed_here := true;
          push_affected st push x
        end
      end
      else begin
        let quality_changed =
          st.cls.(x) <> !b_cls || st.len.(x) <> !b_len
        in
        if quality_changed || st.next.(x) <> !b_next then begin
          st.cls.(x) <- !b_cls;
          st.len.(x) <- !b_len;
          st.next.(x) <- !b_next;
          st.src.(x) <- 0;
          st.depth.(x) <- !b_len - init_len;
          stamp x;
          changed_here := true;
          if quality_changed then push_affected st push x
        end
      end;
      (* Re-evaluate x later only while the wave is still moving: if the
         queue is empty and x's own record just stabilized, every chain
         is consistent, and a crossing candidate provably cannot beat a
         stored route at a consistent state — the rejection was
         harmless. Re-pushing unconditionally would spin on its own
         unresolved crossing until the budget bails. *)
      if !deferred && (!head <> !tail || !changed_here) then push x
    done

  (* Fail link (a, b): stop immediately unless a selected route actually
     crosses it; otherwise the crossing endpoint re-selects and the
     change (if any) ripples out. Returns the number of nodes whose
     route record changed. *)
  (* Repairs maintain only [failed_ids] (what the wave consults);
     [update] installs the target [Link_set.t] wholesale at the end, so
     per-link Map surgery here would be redundant work. *)
  let fail_repair st s ia ib =
    st.failed_ids <-
      (if ia < ib then (ia, ib) else (ib, ia)) :: st.failed_ids;
    let root =
      if st.cls.(ia) >= 0 && st.next.(ia) = ib then ia
      else if st.cls.(ib) >= 0 && st.next.(ib) = ia then ib
      else -1
    in
    if root = -1 then 0
    else begin
      s.epoch <- s.epoch + 1;
      let tail = ref 0 in
      s.on_list.(root) <- true;
      s.queue.(0) <- root;
      incr tail;
      let newly = ref 0 in
      wave st s ~tail:!tail ~newly;
      !newly
    end

  (* Restore link (a, b): the only new candidates are the two offers
     across the restored edge, and each endpoint's stored route is
     already the maximum over every other candidate - so an O(1) check
     per endpoint decides whether anything can move, and the wave only
     runs when an endpoint actually improves. *)
  let restore_repair st s ia ib =
    (let lo, hi = if ia < ib then (ia, ib) else (ib, ia) in
     st.failed_ids <-
       List.filter (fun (a, b) -> not (a = lo && b = hi)) st.failed_ids);
    s.epoch <- s.epoch + 1;
    let init_len = st.infos.(0).init_len in
    let tail = ref 0 in
    let newly = ref 0 in
    let push v =
      if v <> st.origin_id && not s.on_list.(v) then begin
        s.on_list.(v) <- true;
        s.queue.(!tail) <- v;
        incr tail
      end
    in
    (* Offer w's route to x across the restored edge; adopt it only if
       it beats x's stored maximum (then x's neighbors re-evaluate). *)
    let try_improve x w =
      if x <> st.origin_id && st.cls.(w) >= 0 then begin
        (* What w is to x, read off x's adjacency row. *)
        let rel = ref None in
        Array.iter
          (fun ((u, r) : int * Relationship.t) ->
             if u = w then rel := Some r)
          (As_graph.Indexed.neighbors st.graph x);
        match !rel with
        | None -> ()
        | Some rel ->
        let exportable =
          st.cls.(w) >= cls_customer
          || Relationship.equal rel Relationship.Provider
        in
        if exportable then begin
          let cand_cls =
            match rel with
            | Relationship.Customer -> cls_customer
            | Relationship.Peer -> cls_peer
            | Relationship.Provider -> cls_provider
          in
          let cand_len = st.len.(w) + 1 in
          let beats =
            st.cls.(x) = -1
            || (if cand_cls <> st.cls.(x) then cand_cls > st.cls.(x)
                else if cand_len <> st.len.(x) then cand_len < st.len.(x)
                else
                  Asn.compare
                    (As_graph.Indexed.asn_of_id st.graph w)
                    (As_graph.Indexed.asn_of_id st.graph st.next.(x))
                  < 0)
          in
          if beats && chain_crosses st w x then
            (* The winning offer is blocked only by a (possibly
               transient) crossing: let the wave re-evaluate x with a
               full scan rather than silently dropping it. *)
            push x
          else if beats then begin
            let quality_changed =
              st.cls.(x) <> cand_cls || st.len.(x) <> cand_len
            in
            st.cls.(x) <- cand_cls;
            st.len.(x) <- cand_len;
            st.next.(x) <- w;
            st.src.(x) <- 0;
            st.depth.(x) <- cand_len - init_len;
            if s.mark.(x) <> s.epoch then begin
              s.mark.(x) <- s.epoch;
              incr newly
            end;
            if quality_changed then push_affected st push x
          end
        end
      end
    in
    try_improve ia ib;
    try_improve ib ia;
    if !tail > 0 then wave st s ~tail:!tail ~newly;
    !newly

  let shift_len st delta =
    if delta <> 0 then begin
      let n = As_graph.Indexed.n st.graph in
      for v = 0 to n - 1 do
        if st.cls.(v) >= 0 then st.len.(v) <- st.len.(v) + delta
      done
    end

  let update st scratch ?(failed = Link_set.empty) anns =
    scratch_ready scratch (As_graph.Indexed.n st.graph);
    match (anns, st.ann) with
    | [ a ], Some prev
      when supported_ann a
           && Asn.equal a.Announcement.origin prev.Announcement.origin ->
        (* Same origin is enough: the routing arrays never depend on the
           prefix, so one state serves every prefix of an origin — a
           prefix swap is a metadata update, a prepend change a length
           shift. This is what lets [Dynamics] key states per origin and
           amortize one repair across all of an origin's prefixes. *)
        (let links_applied = ref 0
        and frontier = ref 0
        and stop_early = ref 0 in
        if (not (Prefix.equal a.Announcement.prefix prev.Announcement.prefix))
           || a.Announcement.prepend <> prev.Announcement.prepend
           || a.Announcement.communities <> prev.Announcement.communities
        then begin
          (* The claimed path depends only on (origin, prepend): a pure
             prefix or communities swap reuses the previous path and
             set instead of rebuilding them. *)
          let info =
            if a.Announcement.prepend = prev.Announcement.prepend then
              { st.infos.(0) with spec = a }
            else ann_info_no_rov a
          in
          let shift = info.init_len - st.infos.(0).init_len in
          shift_len st shift;
          (* A pure prefix swap leaves everything a reader derives for
             that prefix untouched; shifts and community changes do not. *)
          if shift <> 0
             || a.Announcement.communities <> prev.Announcement.communities
          then st.version <- fresh_version ();
          st.infos <- [| info |];
          st.ann <- Some a
        end;
        let apply repair (x, y) =
          match
            ( As_graph.Indexed.id_of_asn st.graph x,
              As_graph.Indexed.id_of_asn st.graph y )
          with
          | ix, iy ->
              incr links_applied;
              let changed = repair st scratch ix iy in
              if changed = 0 then incr stop_early;
              frontier := !frontier + changed
          | exception Not_found ->
              (* A link between ASes outside this graph can't carry
                 routes; just record the set change. *)
              ()
        in
        match
          (* Physical equality is the hot path: consecutive updates of
             one origin's prefixes within one event pass the very set
             this state already applied. *)
          if st.failed != failed then begin
            List.iter
              (fun l ->
                 if not (Link_set.mem (fst l) (snd l) failed) then
                   apply restore_repair l)
              (Link_set.elements st.failed);
            List.iter
              (fun l ->
                 if not (Link_set.mem (fst l) (snd l) st.failed) then
                   apply fail_repair l)
              (Link_set.elements failed)
          end
        with
        | () ->
            if !frontier > 0 then st.version <- fresh_version ();
            st.failed <- failed;
            ( make_t st,
              Steps
                { links_applied = !links_applied;
                  frontier = !frontier;
                  stop_early = !stop_early } )
        | exception Bail ->
            (* Repair blew its budget: the arrays are mid-flight garbage,
               but a rebuild overwrites every field, so correctness is
               preserved at full-compute cost. Abandoned queue entries
               must not poison the next repair's pushes. *)
            Array.fill scratch.on_list 0 (Array.length scratch.on_list) false;
            (rebuild st scratch ~failed anns, Full_rebuild))
    | _ -> (rebuild st scratch ~failed anns, Full_rebuild)
end
