(* Three-stage bucketed BFS. Stage A floods customer routes uphill
   (customer -> provider edges), stage B crosses peering edges once, stage C
   floods downhill to customers. Within a stage, nodes are settled in
   increasing path-length order, with ties broken by lowest next-hop ASN;
   classes are strictly ordered customer > peer > provider, so later stages
   never overwrite earlier ones. *)

type ann_info = {
  spec : Announcement.t;
  claimed_path : Asn.t list; (* as injected: origin^(1+prepend) @ fake_suffix *)
  claimed_set : Asn.Set.t;
  init_len : int;
  rpki_invalid : bool;       (* claimed origin fails route-origin validation *)
}

type t = {
  graph : As_graph.Indexed.t;
  pfx : Prefix.t;
  anns : ann_info array;
  cls : int array;   (* 3 origin, 2 customer, 1 peer, 0 provider, -1 none *)
  len : int array;
  next : int array;  (* neighbor id the route was learned from; -1 at origin *)
  src : int array;   (* announcement index the route descends from *)
  depth : int array; (* AS hops from the originating AS *)
  failed : Link_set.t;
  rov_deployers : Asn.Set.t;  (* ASes that drop RPKI-invalid routes *)
}

let cls_origin = 3
let cls_customer = 2
let cls_peer = 1
let cls_provider = 0

let prefix t = t.pfx

let link_up t u v =
  Link_set.is_empty t.failed
  || not
       (Link_set.mem
          (As_graph.Indexed.asn_of_id t.graph u)
          (As_graph.Indexed.asn_of_id t.graph v)
          t.failed)

(* May the route sitting at [u] be exported across one more hop? Checks the
   origin announcement's scoping rules. *)
let may_reexport t u =
  let info = t.anns.(t.src.(u)) in
  match info.spec.Announcement.max_radius with
  | Some r -> t.depth.(u) < r
  | None -> true

(* Origin first-hop restriction (community-scoped announcements). *)
let origin_export_allowed t u v =
  if t.next.(u) <> -1 then true
  else
    let info = t.anns.(t.src.(u)) in
    match info.spec.Announcement.export_to with
    | None -> true
    | Some set -> Asn.Set.mem (As_graph.Indexed.asn_of_id t.graph v) set

(* BGP loop detection against the *claimed* path: the BFS tree itself cannot
   loop, but a forged suffix can mention [v]. *)
let loop_free t v k =
  not (Asn.Set.mem (As_graph.Indexed.asn_of_id t.graph v) t.anns.(k).claimed_set)

(* Route-origin validation: a deploying AS drops routes whose claimed
   origin is RPKI-invalid. Non-deployers accept everything; forged-origin
   paths (interceptions) present a Valid origin and sail through. *)
let rov_accepts t v k =
  (not t.anns.(k).rpki_invalid)
  || not (Asn.Set.mem (As_graph.Indexed.asn_of_id t.graph v) t.rov_deployers)

let admissible t v k = loop_free t v k && rov_accepts t v k

let better t ~cls ~len ~next_id ~cand_cls ~cand_len ~cand_next =
  if cand_cls <> cls then cand_cls > cls
  else if cand_len <> len then cand_len < len
  else
    Asn.compare
      (As_graph.Indexed.asn_of_id t.graph cand_next)
      (As_graph.Indexed.asn_of_id t.graph next_id)
    < 0

type buckets = { mutable slots : int list array }

let bucket_make n = { slots = Array.make (n + 2) [] }

let bucket_push b l v =
  let cap = Array.length b.slots in
  if l >= cap then begin
    let slots = Array.make (max (l + 1) (2 * cap)) [] in
    Array.blit b.slots 0 slots 0 cap;
    b.slots <- slots
  end;
  b.slots.(l) <- v :: b.slots.(l)

let offer t buckets ~v ~cand_cls ~cand_len ~cand_next ~cand_src =
  if t.cls.(v) = -1
     || better t ~cls:t.cls.(v) ~len:t.len.(v) ~next_id:t.next.(v)
          ~cand_cls ~cand_len ~cand_next
  then begin
    t.cls.(v) <- cand_cls;
    t.len.(v) <- cand_len;
    t.next.(v) <- cand_next;
    t.src.(v) <- cand_src;
    t.depth.(v) <- t.depth.(cand_next) + 1;
    match buckets with
    | Some b -> bucket_push b cand_len v
    | None -> ()
  end

let rec last_exn = function
  | [ x ] -> x
  | _ :: rest -> last_exn rest
  | [] -> invalid_arg "Propagate: empty claimed path"

module Workspace = struct
  type t = {
    mutable cls : int array;
    mutable len : int array;
    mutable next : int array;
    mutable src : int array;
    mutable depth : int array;
    mutable settled_up : bool array;
    mutable settled_down : bool array;
    mutable up : buckets;
    mutable down : buckets;
  }

  let create () =
    { cls = [||]; len = [||]; next = [||]; src = [||]; depth = [||];
      settled_up = [||]; settled_down = [||];
      up = { slots = [||] }; down = { slots = [||] } }

  (* Make the workspace ready for a graph of [n] nodes: reallocate when too
     small, otherwise reset in place. Bucket arrays are cleared over their
     whole (possibly larger) capacity — the stage loops walk every slot, so
     a stale entry from a previous compute would corrupt the BFS. *)
  let ready w n =
    if Array.length w.cls < n then begin
      w.cls <- Array.make n (-1);
      w.len <- Array.make n 0;
      w.next <- Array.make n (-1);
      w.src <- Array.make n (-1);
      w.depth <- Array.make n 0;
      w.settled_up <- Array.make n false;
      w.settled_down <- Array.make n false;
      w.up <- bucket_make n;
      w.down <- bucket_make n
    end else begin
      Array.fill w.cls 0 n (-1);
      Array.fill w.len 0 n 0;
      Array.fill w.next 0 n (-1);
      Array.fill w.src 0 n (-1);
      Array.fill w.depth 0 n 0;
      Array.fill w.settled_up 0 n false;
      Array.fill w.settled_down 0 n false;
      Array.fill w.up.slots 0 (Array.length w.up.slots) [];
      Array.fill w.down.slots 0 (Array.length w.down.slots) []
    end
end

let compute graph ?workspace ?(failed = Link_set.empty) ?rov anns =
  (match anns with [] -> invalid_arg "Propagate.compute: no announcements" | _ -> ());
  let pfx = (List.hd anns).Announcement.prefix in
  List.iter
    (fun a ->
       if not (Prefix.equal a.Announcement.prefix pfx) then
         invalid_arg "Propagate.compute: announcements for different prefixes")
    anns;
  let rpki_table, rov_deployers =
    match rov with
    | Some (table, deployers) -> (Some table, deployers)
    | None -> (None, Asn.Set.empty)
  in
  let anns =
    Array.of_list
      (List.map
         (fun spec ->
            let claimed_path = Announcement.announced_path spec in
            let rpki_invalid =
              match rpki_table with
              | None -> false
              | Some table ->
                  Rpki.validate table spec.Announcement.prefix
                    (last_exn claimed_path)
                  = Rpki.Invalid
            in
            { spec; claimed_path;
              claimed_set = Asn.Set.of_list claimed_path;
              init_len = List.length claimed_path;
              rpki_invalid })
         anns)
  in
  let n = As_graph.Indexed.n graph in
  let cls, len, next, src, depth, settled_up, settled_down, up, down =
    match workspace with
    | Some w ->
        Workspace.ready w n;
        (w.Workspace.cls, w.Workspace.len, w.Workspace.next,
         w.Workspace.src, w.Workspace.depth, w.Workspace.settled_up,
         w.Workspace.settled_down, w.Workspace.up, w.Workspace.down)
    | None ->
        (Array.make n (-1), Array.make n 0, Array.make n (-1),
         Array.make n (-1), Array.make n 0, Array.make n false,
         Array.make n false, bucket_make n, bucket_make n)
  in
  let t = { graph; pfx; anns; cls; len; next; src; depth; failed; rov_deployers } in
  (* Seed the origins. *)
  Array.iteri
    (fun k info ->
       let o =
         try As_graph.Indexed.id_of_asn graph info.spec.Announcement.origin
         with Not_found ->
           invalid_arg
             (Printf.sprintf "Propagate.compute: origin %s not in topology"
                (Asn.to_string info.spec.Announcement.origin))
       in
       let take =
         t.cls.(o) <> cls_origin
         || info.init_len < t.len.(o)
       in
       if take then begin
         t.cls.(o) <- cls_origin;
         t.len.(o) <- info.init_len;
         t.next.(o) <- -1;
         t.src.(o) <- k;
         t.depth.(o) <- 0;
         bucket_push up info.init_len o
       end)
    anns;
  (* Stage A: uphill. *)
  let l = ref 0 in
  while !l < Array.length up.slots do
    List.iter
      (fun u ->
         if (not settled_up.(u)) && t.len.(u) = !l && t.cls.(u) >= cls_customer then begin
           settled_up.(u) <- true;
           if may_reexport t u then
             Array.iter
               (fun (v, rel) ->
                  match rel with
                  | Relationship.Provider ->
                      if link_up t u v && origin_export_allowed t u v
                         && admissible t v t.src.(u)
                      then
                        offer t (Some up) ~v ~cand_cls:cls_customer
                          ~cand_len:(t.len.(u) + 1) ~cand_next:u ~cand_src:t.src.(u)
                  | Relationship.Customer | Relationship.Peer -> ())
               (As_graph.Indexed.neighbors graph u)
         end)
      up.slots.(!l);
    incr l
  done;
  (* Stage B: one hop across peering links, from customer/origin routes. *)
  let stage_a_sources = ref [] in
  for u = 0 to n - 1 do
    if t.cls.(u) >= cls_customer then stage_a_sources := u :: !stage_a_sources
  done;
  List.iter
    (fun u ->
       if may_reexport t u then
         Array.iter
           (fun (v, rel) ->
              match rel with
              | Relationship.Peer ->
                  if t.cls.(v) < cls_customer && link_up t u v
                     && origin_export_allowed t u v && admissible t v t.src.(u)
                  then
                    offer t None ~v ~cand_cls:cls_peer ~cand_len:(t.len.(u) + 1)
                      ~cand_next:u ~cand_src:t.src.(u)
              | Relationship.Customer | Relationship.Provider -> ())
           (As_graph.Indexed.neighbors graph u))
    !stage_a_sources;
  (* Stage C: downhill to customers, chaining through provider routes. *)
  for u = 0 to n - 1 do
    if t.cls.(u) >= cls_provider then bucket_push down t.len.(u) u
  done;
  let l = ref 0 in
  while !l < Array.length down.slots do
    List.iter
      (fun u ->
         if (not settled_down.(u)) && t.len.(u) = !l && t.cls.(u) >= cls_provider
         then begin
           settled_down.(u) <- true;
           if may_reexport t u then
             Array.iter
               (fun (v, rel) ->
                  match rel with
                  | Relationship.Customer ->
                      if t.cls.(v) < cls_peer && link_up t u v
                         && origin_export_allowed t u v && admissible t v t.src.(u)
                      then
                        offer t (Some down) ~v ~cand_cls:cls_provider
                          ~cand_len:(t.len.(u) + 1) ~cand_next:u ~cand_src:t.src.(u)
                  | Relationship.Provider | Relationship.Peer -> ())
               (As_graph.Indexed.neighbors graph u)
         end)
      down.slots.(!l);
    incr l
  done;
  t

let id_opt t a =
  match As_graph.Indexed.id_of_asn t.graph a with
  | i -> Some i
  | exception Not_found -> None

let has_route t a =
  match id_opt t a with
  | Some i -> t.cls.(i) >= 0
  | None -> false

let rec exported_path t i =
  if t.next.(i) = -1 then t.anns.(t.src.(i)).claimed_path
  else As_graph.Indexed.asn_of_id t.graph i :: exported_path t t.next.(i)

let route_at t a =
  match id_opt t a with
  | Some i when t.cls.(i) >= 0 ->
      let communities = t.anns.(t.src.(i)).spec.Announcement.communities in
      Some (Route.make ~communities t.pfx (exported_path t i))
  | Some _ | None -> None

let next_hop t a =
  match id_opt t a with
  | Some i when t.cls.(i) >= 0 && t.next.(i) <> -1 ->
      Some (As_graph.Indexed.asn_of_id t.graph t.next.(i))
  | Some _ | None -> None

let forwarding_path t a =
  match id_opt t a with
  | Some i when t.cls.(i) >= 0 ->
      let rec walk i acc =
        let acc = As_graph.Indexed.asn_of_id t.graph i :: acc in
        if t.next.(i) = -1 then List.rev acc else walk t.next.(i) acc
      in
      Some (walk i [])
  | Some _ | None -> None

let route_class_at t a =
  match id_opt t a with
  | Some i when t.cls.(i) >= 0 ->
      Some
        (if t.cls.(i) = cls_origin then `Origin
         else if t.cls.(i) = cls_customer then `Customer
         else if t.cls.(i) = cls_peer then `Peer
         else `Provider)
  | Some _ | None -> None

let winning_announcement t a =
  match id_opt t a with
  | Some i when t.cls.(i) >= 0 -> Some t.src.(i)
  | Some _ | None -> None

let captured t k =
  let out = ref [] in
  for i = Array.length t.cls - 1 downto 0 do
    if t.cls.(i) >= 0 && t.src.(i) = k then
      out := As_graph.Indexed.asn_of_id t.graph i :: !out
  done;
  !out

let routed_count t =
  Array.fold_left (fun acc c -> if c >= 0 then acc + 1 else acc) 0 t.cls

let candidates_at t a =
  match id_opt t a with
  | None -> []
  | Some v ->
      let asn_v = a in
      let cands = ref [] in
      Array.iter
        (fun (u, rel) ->
           (* [rel] is what u is to v; u exports its best route to v iff the
              route is customer/origin class, or v is u's customer — i.e. u
              is v's Provider. *)
           if t.cls.(u) >= 0 && link_up t v u && may_reexport t u
              && origin_export_allowed t u v && rov_accepts t v t.src.(u)
              && (t.cls.(u) >= cls_customer || Relationship.equal rel Relationship.Provider)
           then begin
             let path = exported_path t u in
             if not (List.exists (Asn.equal asn_v) path) then
               let cand_cls =
                 match rel with
                 | Relationship.Customer -> cls_customer
                 | Relationship.Peer -> cls_peer
                 | Relationship.Provider -> cls_provider
               in
               cands := (cand_cls, List.length path, path) :: !cands
           end)
        (As_graph.Indexed.neighbors t.graph v);
      !cands
      |> List.sort (fun (c1, l1, p1) (c2, l2, p2) ->
          if c1 <> c2 then Int.compare c2 c1
          else if l1 <> l2 then Int.compare l1 l2
          else List.compare Asn.compare p1 p2)
      |> List.map (fun (_, _, path) -> Route.make t.pfx path)
