type config = {
  window : float;
  min_prefixes : int;
  table_fraction : float;
  quiet_gap : float;
}

let default_config =
  { window = 60.; min_prefixes = 100; table_fraction = 0.5; quiet_gap = 30. }

type stats = {
  pushed : int;
  passed : int;
  dropped : int;
  buffered : int;
  bursts : (Update.session_id * float * float) list;
}

(* Registry mirrors of the filter's accounting; the regression suite
   pins them against [stats] (pushed = passed + dropped + buffered). *)
let m_pushed = Metrics.counter ~help:"updates entering the filter" "session_reset.pushed"
let m_passed = Metrics.counter ~help:"updates emitted by the filter" "session_reset.passed"
let m_dropped = Metrics.counter ~help:"updates dropped as table transfer" "session_reset.dropped"
let m_bursts = Metrics.counter ~help:"table-transfer bursts detected" "session_reset.bursts"

type session_state = {
  id : Update.session_id;
  table : unit Prefix.Table.t;          (* prefixes ever seen on the session *)
  mutable table_floor : int;            (* preloaded table size *)
  buffer : Update.t Queue.t;            (* recent updates, undecided *)
  window_prefixes : int Prefix.Table.t; (* distinct prefixes in buffer *)
  mutable in_burst : bool;
  mutable burst_start : float;
  mutable last_time : float;
}

type t = {
  config : config;
  emit : Update.t -> unit;
  sessions : (Update.session_id, session_state) Hashtbl.t;
  mutable pushed : int;
  mutable passed : int;
  mutable dropped : int;
  mutable bursts : (Update.session_id * float * float) list;
}

let create ?(config = default_config) ~emit () =
  { config; emit; sessions = Hashtbl.create 128;
    pushed = 0; passed = 0; dropped = 0; bursts = [] }

let state t id =
  match Hashtbl.find_opt t.sessions id with
  | Some s -> s
  | None ->
      let s =
        { id; table = Prefix.Table.create 1024; table_floor = 0;
          buffer = Queue.create (); window_prefixes = Prefix.Table.create 64;
          in_burst = false; burst_start = 0.; last_time = neg_infinity }
      in
      Hashtbl.replace t.sessions id s;
      s

let preload_table t id n =
  let s = state t id in
  s.table_floor <- max s.table_floor n

let table_size s = max s.table_floor (Prefix.Table.length s.table)

let window_remove s u =
  let p = Update.prefix u in
  match Prefix.Table.find_opt s.window_prefixes p with
  | Some 1 -> Prefix.Table.remove s.window_prefixes p
  | Some n -> Prefix.Table.replace s.window_prefixes p (n - 1)
  | None -> ()

let window_add s u =
  let p = Update.prefix u in
  let n = Option.value ~default:0 (Prefix.Table.find_opt s.window_prefixes p) in
  Prefix.Table.replace s.window_prefixes p (n + 1)

(* Release buffered updates older than [now - window]: they were not part of
   any burst that could still trigger, so they are clean. *)
let release t s now =
  let rec loop () =
    match Queue.peek_opt s.buffer with
    | Some u when u.Update.time < now -. t.config.window ->
        ignore (Queue.pop s.buffer);
        window_remove s u;
        t.emit u;
        t.passed <- t.passed + 1;
        Metrics.incr m_passed;
        loop ()
    | Some _ | None -> ()
  in
  loop ()

let burst_threshold t s =
  max t.config.min_prefixes
    (int_of_float (t.config.table_fraction *. float_of_int (table_size s)))

let drop_buffer t s =
  t.dropped <- t.dropped + Queue.length s.buffer;
  Metrics.add m_dropped (Queue.length s.buffer);
  Queue.clear s.buffer;
  Prefix.Table.reset s.window_prefixes

let push t u =
  t.pushed <- t.pushed + 1;
  Metrics.incr m_pushed;
  let s = state t u.Update.session in
  let now = u.Update.time in
  Prefix.Table.replace s.table (Update.prefix u) ();
  if s.in_burst then begin
    if now -. s.last_time > t.config.quiet_gap then begin
      (* Transfer over; this update is the first normal one after it. *)
      t.bursts <- (s.id, s.burst_start, s.last_time) :: t.bursts;
      Metrics.incr m_bursts;
      s.in_burst <- false;
      Queue.push u s.buffer;
      window_add s u
    end else begin
      t.dropped <- t.dropped + 1;
      Metrics.incr m_dropped
    end
  end else begin
    release t s now;
    Queue.push u s.buffer;
    window_add s u;
    if Prefix.Table.length s.window_prefixes >= burst_threshold t s then begin
      (* The whole window is a table transfer. *)
      s.in_burst <- true;
      s.burst_start <-
        (match Queue.peek_opt s.buffer with
         | Some first -> first.Update.time
         | None -> now);
      drop_buffer t s
    end
  end;
  s.last_time <- now

(* Global clock tick: release, across every session, the buffered updates
   old enough that no burst could still claim them. [push] only releases a
   session's buffer when that same session speaks again, so a quiet
   session can hold a straggler for hours — fine for batch consumers
   (per-key statistics ignore cross-key order) but fatal for a streaming
   consumer whose reorder slack is bounded. Driving the filter with
   [advance now] on every input update bounds the emission delay by
   [window] and makes the downstream stream globally time-ordered.

   Per-session semantics are exactly unchanged: a tick releases only
   updates that the session's own next push would release anyway (both
   paths use the [time < now - window] rule and input time is globally
   non-decreasing), so burst detection sees identical window contents and
   every update is passed or dropped exactly as without ticks — the
   regression suite pins this. Due updates are emitted in the same
   (time, session, position) order [flush] uses. *)
let advance t now =
  let horizon = now -. t.config.window in
  let any_due =
    Hashtbl.fold
      (fun _ s due ->
         due
         || (match Queue.peek_opt s.buffer with
             | Some u -> u.Update.time < horizon
             | None -> false))
      t.sessions false
  in
  if any_due then begin
    let due =
      Hashtbl.fold
        (fun _ s acc ->
           let taken = ref acc and i = ref 0 in
           let rec loop () =
             match Queue.peek_opt s.buffer with
             | Some u when u.Update.time < horizon ->
                 ignore (Queue.pop s.buffer);
                 window_remove s u;
                 taken := (u, s.id, !i) :: !taken;
                 incr i;
                 loop ()
             | Some _ | None -> ()
           in
           loop ();
           !taken)
        t.sessions []
    in
    due
    |> List.sort (fun ((a : Update.t), sa, ia) ((b : Update.t), sb, ib) ->
        match Float.compare a.Update.time b.Update.time with
        | 0 ->
            (match Update.session_compare sa sb with
             | 0 -> Int.compare ia ib
             | c -> c)
        | c -> c)
    |> List.iter
         (fun (u, _, _) ->
            t.emit u;
            t.passed <- t.passed + 1;
            Metrics.incr m_passed)
  end

(* End-of-stream emission must preserve the global time order every other
   emission path respects: a per-session [Hashtbl.iter] would interleave
   whole session buffers in hash order, making downstream observers see
   time jump backwards across sessions at end of month. Close open bursts
   deterministically, collect every buffered update, sort by
   (time, session, within-session position) and only then emit. *)
let flush t =
  let open_bursts =
    Hashtbl.fold (fun _ s acc -> if s.in_burst then s :: acc else acc)
      t.sessions []
    |> List.sort (fun a b -> Update.session_compare a.id b.id)
  in
  List.iter
    (fun s ->
       t.bursts <- (s.id, s.burst_start, s.last_time) :: t.bursts;
       Metrics.incr m_bursts;
       s.in_burst <- false)
    open_bursts;
  let buffered =
    Hashtbl.fold
      (fun _ s acc ->
         let seq = ref acc and i = ref 0 in
         Queue.iter (fun u -> seq := (u, !i) :: !seq; incr i) s.buffer;
         Queue.clear s.buffer;
         Prefix.Table.reset s.window_prefixes;
         !seq)
      t.sessions []
  in
  buffered
  |> List.sort (fun ((a : Update.t), ia) ((b : Update.t), ib) ->
      match Float.compare a.Update.time b.Update.time with
      | 0 ->
          (match Update.session_compare a.Update.session b.Update.session with
           | 0 -> Int.compare ia ib
           | c -> c)
      | c -> c)
  |> List.iter
       (fun (u, _) ->
          t.emit u;
          t.passed <- t.passed + 1;
          Metrics.incr m_passed)

let stats t =
  { pushed = t.pushed;
    passed = t.passed;
    dropped = t.dropped;
    buffered =
      Hashtbl.fold (fun _ s acc -> acc + Queue.length s.buffer) t.sessions 0;
    bursts = t.bursts }
