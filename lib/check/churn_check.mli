(** The [quicksand check --suite churn] harness: statistical and
    structural laws for the trace-churn generator (lib/churn).

    Per seed and per shipped session-length configuration
    ({!Churn.pareto_day}, {!Churn.lognormal_day}) the suite checks:

    - {e shape}: empirical mean of direct samples within 15% of the
      analytic mean (finite-variance laws only), empirical median within
      10%, Kolmogorov-Smirnov sup-distance below [2/sqrt n];
    - {e structure} of a generated stream: global time-monotonicity,
      strict per-entity Down/Up alternation starting Down and closing Up,
      equal Down/Up counts, strictly positive paired durations;
    - {e identity}: the rendered stream ({!Churn.to_string}) is
      byte-identical on rerun and across 1- vs 4-worker pools.

    Results reuse {!Differential.outcome} ([pair] = law or
    ["trace-identity"], [experiment] = check name), so
    {!Report.differential} renders them unchanged. *)

val run : ?seeds:int list -> unit -> Differential.outcome list
(** Run every check on every seed (default [[1; 2; 3; 4; 5]]).
    Deterministic: no wall clock, no global state. *)
