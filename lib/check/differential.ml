type outcome = {
  seed : int;
  pair : string;
  experiment : string;
  ok : bool;
  detail : string option;
}

let pp_outcome ppf o =
  Format.fprintf ppf "seed %d  %-22s %-12s %s" o.seed o.pair o.experiment
    (if o.ok then "identical"
     else "DIVERGED" ^ Option.fold ~none:"" ~some:(fun d -> ": " ^ d) o.detail)

let all_ok = List.for_all (fun o -> o.ok)

let render print v =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  print ppf v;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let first_divergence a b =
  if String.equal a b then None
  else
    let rec loop i la lb =
      match la, lb with
      | [], [] -> Some "outputs differ only in trailing whitespace"
      | x :: _, [] -> Some (Printf.sprintf "line %d: %S vs end of output" i x)
      | [], y :: _ -> Some (Printf.sprintf "line %d: end of output vs %S" i y)
      | x :: la, y :: lb ->
          if String.equal x y then loop (i + 1) la lb
          else Some (Printf.sprintf "line %d: %S vs %S" i x y)
    in
    loop 1 (String.split_on_char '\n' a) (String.split_on_char '\n' b)

(* Half a simulated day of the test-scale dynamics: enough churn for
   non-trivial F3L/F3R tables, small enough that the whole pair matrix
   runs in seconds on a Small scenario. *)
let default_dynamics =
  { Dynamics.short_config with Dynamics.duration = 12. *. 3600. }

(* ---- dynamic-vs-static soundness oracle ------------------------------ *)

(* The static closure bounds of [Qs_analysis.Static_surface] are claimed
   to over-approximate everything the dynamic pipeline can do. This suite
   makes the claim falsifiable, per seed:

   - stream: every announce a collector session records must stay inside
     the static exposure bound of its (peer, true origin) pair — audited
     byte-by-byte over a full simulated measurement (churn, policy racing,
     session resets and all);
   - hijack-same-prefix: every client a same-prefix hijack wins against
     must be statically capturable in an equal-specific race (the
     customer-cone-protected set really is safe);
   - hijack-more-specific: every client a sub-prefix hijack wins against
     must be inside the attacker's static hear set;
   - interception: every win must satisfy the static interception
     predicate (tight capture plus a surviving return path).

   Violations are impossible by the soundness argument in DESIGN.md §12;
   a finding here is a bug in the propagation engine, the attack modules,
   or the closure itself. *)
let static ?(dynamics = default_dynamics) ?(seeds = [ 1; 2; 3; 4; 5 ]) size =
  List.concat_map
    (fun seed ->
       let s = Scenario.build ~seed size in
       let surface = Static_surface.create s.Scenario.indexed in
       let outcome ~experiment problems =
         { seed; pair = "dynamic-vs-static"; experiment;
           ok = problems = [];
           detail =
             (match problems with
              | [] -> None
              | p :: rest ->
                  if rest = [] then Some p
                  else
                    Some
                      (Printf.sprintf "%s (and %d more)" p (List.length rest)))
         }
       in
       (* 1. Update-stream containment over a full measurement. *)
       let updates = ref [] in
       let (_ : Measurement.t) =
         Measurement.run ~dynamics ~observe:(fun u -> updates := u :: !updates)
           s
       in
       let stream =
         Surface_lint.check_stream surface
           ~origin_of:(Addressing.origin s.Scenario.addressing)
           (List.rev !updates)
         |> List.map (render Diag.pp)
       in
       (* 2-4. Attack-win containment over seeded attack draws. *)
       let rng = Scenario.rng_for s "check-static" in
       let guards = Array.of_list (Consensus.guards s.Scenario.consensus) in
       let ases = Array.of_list (As_graph.ases s.Scenario.graph) in
       let same = ref [] and sub = ref [] and icept = ref [] in
       let violation bucket fmt =
         Printf.ksprintf (fun msg -> bucket := msg :: !bucket) fmt
       in
       for _ = 1 to 8 do
         let relay = Rng.pick rng guards in
         match Scenario.guard_announcement s relay with
         | None -> ()
         | Some ann ->
             let victim = ann.Announcement.origin in
             let attacker =
               let rec draw () =
                 let a = Rng.pick rng ases in
                 if Asn.equal a victim then draw () else a
               in
               draw ()
             in
             let h =
               Hijack.same_prefix s.Scenario.indexed ~victim:ann ~attacker ()
             in
             List.iter
               (fun x ->
                  if
                    Hijack.wins h x
                    && not
                         (Static_surface.can_blackhole surface
                            ~same_prefix:true ~adversary:attacker ~victim x)
                  then
                    violation same
                      "%s wins same-prefix hijack of %s against %s outside \
                       the static bound"
                      (Asn.to_string attacker) (Asn.to_string victim)
                      (Asn.to_string x))
               h.Hijack.captured;
             (if Prefix.length ann.Announcement.prefix < 32 then
                let half, _ = Prefix.split ann.Announcement.prefix in
                let h =
                  Hijack.more_specific s.Scenario.indexed ~victim:ann
                    ~attacker ~sub:half ()
                in
                List.iter
                  (fun x ->
                     if
                       Hijack.wins h x
                       && not
                            (Static_surface.can_blackhole surface
                               ~adversary:attacker ~victim x)
                     then
                       violation sub
                         "%s wins more-specific hijack of %s against %s \
                          outside the static hear set"
                         (Asn.to_string attacker) (Asn.to_string victim)
                         (Asn.to_string x))
                  h.Hijack.captured);
             let i =
               Interception.run s.Scenario.indexed ~victim:ann ~attacker ()
             in
             List.iter
               (fun x ->
                  if
                    Interception.wins i x
                    && not
                         (Static_surface.can_intercept surface
                            ~adversary:attacker ~victim x)
                  then
                    violation icept
                      "%s wins interception of %s against %s outside the \
                       static feasible set"
                      (Asn.to_string attacker) (Asn.to_string victim)
                      (Asn.to_string x))
               i.Interception.captured
       done;
       [ outcome ~experiment:"stream" stream;
         outcome ~experiment:"hijack-same-prefix" (List.rev !same);
         outcome ~experiment:"hijack-more-specific" (List.rev !sub);
         outcome ~experiment:"interception" (List.rev !icept) ])
    seeds

(* ---- delta-vs-full propagation oracle -------------------------------- *)

(* [Propagate.Delta] claims to be a pure reimplementation of propagation:
   repairing the dirty frontier after each churn event must land on the
   same unique Gao-Rexford fixed point a full recompute finds. This suite
   makes the claim falsifiable at the system level, per seed:

   - the full collector update stream must be byte-identical with delta
     repair on and off (cache disabled, so propagation alone is on trial);
   - the final (session, prefix) tables must agree as well;
   - layering the route cache on top of the delta engine must still
     change nothing;
   - worker count must not leak into delta-backed results;
   - and the delta run must actually take delta steps, otherwise the
     identity claims are vacuous. *)
let delta ?(dynamics = default_dynamics) ?(seeds = [ 1; 2; 3; 4; 5 ]) size =
  List.concat_map
    (fun seed ->
       let scenario = Scenario.build ~seed size in
       let capture ~delta_states ~cache =
         let buf = Buffer.create (1 lsl 16) in
         let ppf = Format.formatter_of_buffer buf in
         let m =
           Measurement.run
             ~dynamics:
               { dynamics with
                 Dynamics.route_cache_size = (if cache then 512 else 0);
                 delta_states }
             ~observe:(fun u -> Format.fprintf ppf "%a@." Update.pp u)
             scenario
         in
         Format.pp_print_flush ppf ();
         (Buffer.contents buf, m)
       in
       let final_tables m =
         List.map
           (fun (c : Measurement.cell) ->
              render
                (fun ppf () ->
                   Format.fprintf ppf "%a %a -> %s"
                     Update.pp_session c.Measurement.key.Measurement.session
                     Prefix.pp c.Measurement.key.Measurement.prefix
                     (match c.Measurement.final_set with
                      | None -> "-"
                      | Some set ->
                          Asn.Set.elements set
                          |> List.map Asn.to_string
                          |> String.concat ","))
                ())
           m.Measurement.cells
         |> List.sort String.compare |> String.concat "\n"
       in
       let f3l ~jobs m =
         Pool.with_pool ~jobs (fun exec ->
             render Path_changes.print (Path_changes.compute ~exec m))
       in
       let check ~pair ~experiment a b =
         { seed; pair; experiment;
           ok = String.equal a b;
           detail = first_divergence a b }
       in
       let stream_full, m_full = capture ~delta_states:0 ~cache:false in
       let stream_delta, m_delta = capture ~delta_states:512 ~cache:false in
       let stream_both, m_both = capture ~delta_states:512 ~cache:true in
       [ check ~pair:"delta-on-vs-off" ~experiment:"stream"
           stream_delta stream_full;
         check ~pair:"delta-on-vs-off" ~experiment:"final-tables"
           (final_tables m_delta) (final_tables m_full);
         check ~pair:"delta-plus-cache-vs-off" ~experiment:"stream"
           stream_both stream_full;
         check ~pair:"delta-plus-cache-vs-off" ~experiment:"final-tables"
           (final_tables m_both) (final_tables m_full);
         check ~pair:"delta-jobs-1-vs-4" ~experiment:"F3L"
           (f3l ~jobs:1 m_delta) (f3l ~jobs:4 m_delta);
         { seed; pair = "delta-engaged"; experiment = "stats";
           ok = m_delta.Measurement.dyn_stats.Dynamics.delta_steps > 0;
           detail =
             (if m_delta.Measurement.dyn_stats.Dynamics.delta_steps > 0 then
                None
              else Some "delta run took zero delta steps") } ])
    seeds

let run ?(dynamics = default_dynamics) ?(seeds = [ 1; 2 ]) size =
  List.concat_map
    (fun seed ->
       let scenario = Scenario.build ~seed size in
       let check ~pair ~experiment a b =
         { seed; pair; experiment;
           ok = String.equal a b;
           detail = first_divergence a b }
       in
       let f3l ?(jobs = 1) m =
         Pool.with_pool ~jobs (fun exec ->
             render Path_changes.print (Path_changes.compute ~exec m))
       in
       let f3r ?(jobs = 1) m =
         Pool.with_pool ~jobs (fun exec ->
             render As_exposure.print (As_exposure.compute ~exec m))
       in
       (* Pair 1: the route cache is a pure memoization layer. *)
       let cached =
         Measurement.run
           ~dynamics:{ dynamics with Dynamics.route_cache_size = 512 } scenario
       in
       let uncached =
         Measurement.run
           ~dynamics:{ dynamics with Dynamics.route_cache_size = 0 } scenario
       in
       (* Pair 2: worker count must not leak into results. *)
       let m1 jobs =
         Pool.with_pool ~jobs (fun exec ->
             render Compromise.print
               (Compromise.compute ~rng:(Rng.of_int seed) ~exec ~trials:500
                  ~universe:800 ()))
       in
       (* Pair 3: chunking of the work queue is invisible too; exercise a
          real per-cell kernel rather than a toy function. *)
       let extra_counts chunk =
         Pool.with_pool ~jobs:2 (fun exec ->
             let cells = Array.of_list cached.Measurement.cells in
             Pool.map ~chunk exec
               (fun c -> Asn.Set.cardinal (Measurement.extra_ases c))
               cells
             |> Array.to_list |> List.map string_of_int |> String.concat ",")
       in
       (* Pair 4: on a stream with no session resets the reset filter has
          nothing to remove, so enabling it must not change any cell. *)
       let quiet = { dynamics with Dynamics.resets_per_session = 0. } in
       let filtered = Measurement.run ~dynamics:quiet scenario in
       let unfiltered = Measurement.run ~dynamics:quiet ~no_filter:true scenario in
       [ check ~pair:"route-cache-on-vs-off" ~experiment:"F3L"
           (f3l cached) (f3l uncached);
         check ~pair:"route-cache-on-vs-off" ~experiment:"F3R"
           (f3r cached) (f3r uncached);
         check ~pair:"jobs-1-vs-2" ~experiment:"F3L"
           (f3l ~jobs:1 cached) (f3l ~jobs:2 cached);
         check ~pair:"jobs-1-vs-2" ~experiment:"F3R"
           (f3r ~jobs:1 cached) (f3r ~jobs:2 cached);
         check ~pair:"jobs-1-vs-2" ~experiment:"M1" (m1 1) (m1 2);
         check ~pair:"chunk-1-vs-64" ~experiment:"F3R-kernel"
           (extra_counts 1) (extra_counts 64);
         check ~pair:"filter-on-reset-free" ~experiment:"F3L"
           (f3l filtered) (f3l unfiltered);
         check ~pair:"filter-on-reset-free" ~experiment:"F3R"
           (f3r filtered) (f3r unfiltered) ])
    seeds
