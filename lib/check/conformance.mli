(** Streaming conformance checker for the measurement pipeline.

    Every §4 statistic is a function of a filtered, time-ordered update
    stream; this module states the stream and accumulator invariants as
    executable checks:

    - {b horizon containment}: every update's time lies in [\[0, duration\]];
    - {b per-session monotonicity}: times never decrease on one session;
    - {b global monotonicity} (opt-in): the merged stream never goes back
      in time. The post-filter stream is only per-session ordered — the
      reset filter buffers each session independently, so cross-session
      interleaving is expected there — but the raw dynamics stream and
      the [Session_reset.flush] batch are globally ordered, which is
      what the pre-fix hash-order flush violated;
    - {b no withdraw-before-announce}: a withdraw only makes sense for a
      key that had a baseline route or a prior announce;
    - {b residency conservation}: per cell and AS, cumulative residency
      stays within [\[0, duration\]] and the longest contiguous run never
      exceeds the cumulative total;
    - {b filter accounting}: [pushed = passed + dropped + buffered] for
      the session-reset filter, with an empty buffer after flush.

    Install it on a pipeline via [Measurement.run ?observe] (or use {!run}
    which does the plumbing), or wrap any [Update.t -> unit] consumer with
    {!wrap}. *)

type violation = { invariant : string; message : string }

val pp_violation : Format.formatter -> violation -> unit

type t
(** Mutable checker state for one stream. *)

val create : ?duration:float -> ?require_global_order:bool -> unit -> t
(** [duration] bounds the horizon check (default [infinity], i.e. only
    negative or NaN times violate). [require_global_order] (default
    [false]) additionally demands global time monotonicity — enable it
    on streams with a global ordering contract (the raw dynamics stream,
    a flush batch), not on the post-filter stream. *)

val observe : t -> Update.t -> unit
(** Feed one update; pass this as [Measurement.run ~observe]. *)

val wrap : t -> (Update.t -> unit) -> Update.t -> unit
(** [wrap t k] observes each update, then forwards it to [k]. *)

val observed : t -> int
(** Updates seen so far. *)

val finalize : ?initial:Dynamics.initial -> t -> violation list
(** Stream verdict, in detection order. Withdraw-first keys are only
    violations if they also lack a time-0 baseline route, so pass the
    pipeline's [initial] tables when available; without [initial] every
    withdraw-first key is reported. At most 100 violations are kept
    verbatim; the rest are summarized in a final ["truncated"] entry. *)

val check_measurement : Measurement.t -> violation list
(** Post-hoc invariants over a finished measurement: phantom cells,
    path-changes vs updates accounting, residency conservation
    (cumulative and contiguous), visibility bounds, filter accounting. *)

val run :
  ?dynamics:Dynamics.config ->
  ?filter:Session_reset.config ->
  ?no_filter:bool ->
  ?extra_updates:Update.t list ->
  Scenario.t -> Measurement.t * violation list
(** Run the full measurement pipeline with the checker installed as its
    [observe] hook, then {!finalize} against the pipeline's own time-0
    tables and append {!check_measurement}. An empty list means the run
    was conformant. *)
