let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
           Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string ppf s = Format.fprintf ppf "\"%s\"" (json_escape s)

let json_list pp ppf xs =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       pp)
    xs

let conformance ~json ppf ~observed violations =
  if json then
    Format.fprintf ppf
      "{\"suite\":\"conform\",\"observed\":%d,\"ok\":%b,\"violations\":%a}@."
      observed (violations = [])
      (json_list (fun ppf (v : Conformance.violation) ->
           Format.fprintf ppf "{\"invariant\":%a,\"message\":%a}" json_string
             v.Conformance.invariant json_string v.Conformance.message))
      violations
  else begin
    Format.fprintf ppf "conformance: %d updates observed, %d violations@."
      observed (List.length violations);
    List.iter
      (fun v -> Format.fprintf ppf "  %a@." Conformance.pp_violation v)
      violations
  end

let differential ~json ppf outcomes =
  if json then
    Format.fprintf ppf "{\"suite\":\"diff\",\"ok\":%b,\"pairs\":%a}@."
      (Differential.all_ok outcomes)
      (json_list (fun ppf (o : Differential.outcome) ->
           Format.fprintf ppf
             "{\"seed\":%d,\"pair\":%a,\"experiment\":%a,\"ok\":%b%t}"
             o.Differential.seed json_string o.Differential.pair json_string
             o.Differential.experiment o.Differential.ok
             (fun ppf ->
                match o.Differential.detail with
                | Some d when not o.Differential.ok ->
                    Format.fprintf ppf ",\"detail\":%a" json_string d
                | _ -> ())))
      outcomes
  else begin
    let bad = List.filter (fun o -> not o.Differential.ok) outcomes in
    Format.fprintf ppf "differential: %d pair checks, %d divergent@."
      (List.length outcomes) (List.length bad);
    List.iter
      (fun o -> Format.fprintf ppf "  %a@." Differential.pp_outcome o)
      outcomes
  end

let fuzz ~json ppf suites =
  if json then
    Format.fprintf ppf "{\"suite\":\"fuzz\",\"ok\":%b,\"targets\":%a}@."
      (List.for_all (fun (_, s) -> Fuzz.ok s) suites)
      (json_list (fun ppf (name, (s : Fuzz.stats)) ->
           Format.fprintf ppf
             "{\"target\":%a,\"seeds\":%d,\"cases\":%d,\"rejected\":%d,\
              \"violations\":%a}"
             json_string name s.Fuzz.seeds s.Fuzz.cases s.Fuzz.rejected
             (json_list (fun ppf (v : Fuzz.violation) ->
                  Format.fprintf ppf
                    "{\"case\":%a,\"seed\":%d,\"detail\":%a}" json_string
                    v.Fuzz.case v.Fuzz.seed json_string v.Fuzz.detail))
             s.Fuzz.violations))
      suites
  else
    List.iter
      (fun (name, (s : Fuzz.stats)) ->
         Format.fprintf ppf "fuzz %s: %a@." name Fuzz.pp_stats s;
         List.iter
           (fun v -> Format.fprintf ppf "  %a@." Fuzz.pp_violation v)
           s.Fuzz.violations)
      suites
