(** Text and JSON renderers for the three [quicksand check] suites.

    The JSON shapes are one object per suite:
    [{"suite":"conform","observed":N,"ok":B,"violations":[...]}],
    [{"suite":"diff","ok":B,"pairs":[...]}] and
    [{"suite":"fuzz","ok":B,"targets":[...]}]. *)

val conformance :
  json:bool -> Format.formatter -> observed:int ->
  Conformance.violation list -> unit

val differential :
  json:bool -> Format.formatter -> Differential.outcome list -> unit

val fuzz :
  json:bool -> Format.formatter -> (string * Fuzz.stats) list -> unit
(** Takes [(target name, stats)] pairs, e.g. [("mrt", ...);
    ("session-reset", ...)]. *)
