(** Seeded mutation fuzzers for the pipeline's parsing and filtering
    edges. Fully deterministic: the same seed count always replays the
    same cases.

    {b MRT codec}: generates valid BGP4MP_ET and TABLE_DUMP_V2 messages,
    checks encode∘decode identity, then bit-flips and truncates the
    encodings — the result-returning decoders must come back with
    [Ok]/[Error] and never let an exception escape.

    {b Session_reset}: synthesizes streams of organic churn with injected
    synthetic table-transfer bursts — every injected transfer must be
    detected and dropped, organic updates clear of any transfer's shadow
    must pass, and [pushed = passed + dropped] must hold at flush. *)

type violation = { case : string; seed : int; detail : string }

val pp_violation : Format.formatter -> violation -> unit

type stats = {
  seeds : int;
  cases : int;      (** individual checks executed *)
  rejected : int;   (** malformed inputs cleanly rejected with [Error]
                        (MRT suite; 0 for the session-reset suite) *)
  violations : violation list;
}

val pp_stats : Format.formatter -> stats -> unit

val ok : stats -> bool
(** No violations. *)

val mrt : ?seeds:int -> unit -> stats
(** Codec round-trip + mutation fuzz (default 200 seeds; ~66 decode
    cases per seed). *)

val session_reset : ?seeds:int -> unit -> stats
(** Table-transfer injection fuzz against the reset filter (default 200
    seeds). *)
