(* The statistical harness for the trace-churn generator (lib/churn):
   distribution-shape laws on direct samples from the session-length laws,
   structural laws on generated event streams, and byte-identity across
   reruns and worker counts. Reported as Differential.outcome rows so the
   CLI reuses the diff renderer unchanged. *)

let laws = [ ("trace-pareto", Churn.pareto_day);
             ("trace-lognormal", Churn.lognormal_day) ]

let n_samples = 4_000

(* Empirical means of heavy-tailed laws only concentrate when the variance
   is finite: Pareto needs alpha > 2, log-normal always qualifies. *)
let finite_variance = function
  | Churn.Pareto { alpha; _ } -> alpha > 2.
  | Churn.Log_normal _ -> true

let sample_sorted rng law n =
  let a = Array.init n (fun _ -> Churn.sample rng law) in
  Array.sort Float.compare a;
  a

(* sup_x |F_n(x) - F(x)| over the sample points: at each order statistic
   the empirical CDF jumps from i/n to (i+1)/n, so the sup is attained at
   one of the two sides of a jump. *)
let ks_distance law sorted =
  let n = float_of_int (Array.length sorted) in
  let d = ref 0. in
  Array.iteri
    (fun i x ->
       let f = Churn.cdf law x in
       let lo = Float.abs (f -. (float_of_int i /. n)) in
       let hi = Float.abs (f -. (float_of_int (i + 1) /. n)) in
       if lo > !d then d := lo;
       if hi > !d then d := hi)
    sorted;
  !d

let outcome seed pair experiment ok detail =
  { Differential.seed; pair; experiment; ok;
    detail = (if ok then None else Some detail) }

(* Distribution-shape laws for one session-length law: empirical mean
   within 15% of the analytic mean (finite-variance laws only — a
   4000-sample mean of an infinite-variance Pareto proves nothing),
   empirical median within 10%, and the Kolmogorov-Smirnov sup-distance
   below 2/sqrt(n) (the ~99.9% critical value). *)
let shape_checks seed pair side rng law =
  let sorted = sample_sorted rng law n_samples in
  let n = Array.length sorted in
  let mean_rows =
    if not (finite_variance law) then []
    else begin
      let m = Array.fold_left ( +. ) 0. sorted /. float_of_int n in
      let want = Churn.mean law in
      let rel = Float.abs (m -. want) /. want in
      [ outcome seed pair (side ^ "-mean") (rel <= 0.15)
          (Printf.sprintf "%s: empirical mean %.3f vs %.3f (rel %.3f > 0.15)"
             (Churn.law_to_string law) m want rel) ]
    end
  in
  let med = sorted.((n - 1) / 2) in
  let want_med = Churn.median law in
  let rel_med = Float.abs (med -. want_med) /. want_med in
  let ks = ks_distance law sorted in
  let ks_bound = 2.0 /. sqrt (float_of_int n) in
  mean_rows
  @ [ outcome seed pair (side ^ "-median") (rel_med <= 0.10)
        (Printf.sprintf "%s: empirical median %.3f vs %.3f (rel %.3f > 0.10)"
           (Churn.law_to_string law) med want_med rel_med);
      outcome seed pair (side ^ "-ks") (ks <= ks_bound)
        (Printf.sprintf "%s: KS distance %.4f > %.4f"
           (Churn.law_to_string law) ks ks_bound) ]

let gen_entities = 48
let gen_duration = 43_200.

let generate_events seed config =
  let rng = Rng.of_int (seed * 1_000_003 + 7) in
  Churn.generate ~rng config ~entities:gen_entities ~duration:gen_duration

(* Structural laws on a generated stream: global time-monotonicity (the
   generator sorts; a violation means the comparator or the sort broke),
   strict per-entity D/U alternation starting Down and ending Up (every
   session closes, even past the horizon), equal Down and Up counts per
   entity, and strictly positive session/gap durations. *)
let stream_checks seed pair config =
  let events = generate_events seed config in
  let monotone = ref true in
  let last_t = ref neg_infinity in
  List.iter
    (fun (e : Churn.event) ->
       if e.Churn.time < !last_t then monotone := false;
       last_t := e.Churn.time)
    events;
  let last_action : (int, Churn.action) Hashtbl.t =
    Hashtbl.create gen_entities in
  let alternates = ref true in
  List.iter
    (fun (e : Churn.event) ->
       (match Hashtbl.find_opt last_action e.Churn.entity, e.Churn.action with
        | None, Churn.Down | Some Churn.Up, Churn.Down
        | Some Churn.Down, Churn.Up -> ()
        | None, Churn.Up | Some Churn.Down, Churn.Down
        | Some Churn.Up, Churn.Up -> alternates := false);
       Hashtbl.replace last_action e.Churn.entity e.Churn.action)
    events;
  let closed = Hashtbl.fold (fun _ a ok -> ok && a = Churn.Up) last_action true in
  let downs = List.length (List.filter (fun (e : Churn.event) ->
      e.Churn.action = Churn.Down) events) in
  let ups = List.length events - downs in
  let up_durs, down_durs = Churn.durations events in
  let positive = List.for_all (fun d -> d > 0.) up_durs
                 && List.for_all (fun d -> d > 0.) down_durs in
  [ outcome seed pair "monotone" !monotone "event times not nondecreasing";
    outcome seed pair "alternation" (!alternates && closed)
      "entity stream is not a strict D/U alternation closing Up";
    outcome seed pair "accounting"
      (downs = ups && List.length down_durs = downs && positive)
      (Printf.sprintf
         "accounting: %d downs vs %d ups, %d paired outages%s"
         downs ups (List.length down_durs)
         (if positive then "" else ", non-positive duration")) ]

let render seed (_, config) =
  Churn.to_string (generate_events seed config)

(* Byte-identity: the rendered stream is a pure function of (seed, law) —
   identical on rerun, and identical whether the renders run as tasks on
   a 1-worker or a 4-worker pool (the generator takes no pool, so any
   divergence means hidden global state). *)
let identity_checks seed =
  let with_jobs jobs =
    Pool.with_pool ~jobs @@ fun pool ->
    Pool.map_list pool (render seed) laws
  in
  let once = List.map (render seed) laws in
  let again = List.map (render seed) laws in
  let j1 = with_jobs 1 in
  let j4 = with_jobs 4 in
  [ outcome seed "trace-identity" "rerun" (once = again)
      "regenerating from the same seed changed the rendered stream";
    outcome seed "trace-identity" "jobs-1-vs-4" (j1 = j4 && j1 = once)
      "worker count leaked into the rendered stream" ]

let run ?(seeds = [ 1; 2; 3; 4; 5 ]) () =
  List.concat_map
    (fun seed ->
       List.concat_map
         (fun (pair, (config : Churn.config)) ->
            let rng = Rng.of_int (seed * 9_176_141 + 13) in
            let up_rng = Rng.split rng in
            let down_rng = Rng.split rng in
            shape_checks seed pair "up" up_rng config.Churn.up_law
            @ shape_checks seed pair "down" down_rng config.Churn.down_law
            @ stream_checks seed pair config)
         laws
       @ identity_checks seed)
    seeds
