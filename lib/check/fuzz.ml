type violation = { case : string; seed : int; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "[%s] seed %d: %s" v.case v.seed v.detail

type stats = {
  seeds : int;
  cases : int;
  rejected : int;
  violations : violation list;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "%d seeds, %d cases, %d mutants cleanly rejected, %d violations" s.seeds
    s.cases s.rejected (List.length s.violations)

let ok s = s.violations = []

(* ---- MRT codec ---------------------------------------------------- *)

let gen_ip rng = Ipv4.of_int_trunc (Rng.int rng 0x3FFFFFFF)
let gen_asn rng = Asn.of_int (1 + Rng.int rng 4_000_000)

let gen_prefix rng =
  Prefix.make (gen_ip rng) (8 + Rng.int rng 17)

let gen_path rng = List.init (1 + Rng.int rng 5) (fun _ -> gen_asn rng)

let gen_communities rng =
  List.init (Rng.int rng 3) (fun _ -> (Rng.int rng 0x10000, Rng.int rng 0x10000))

let gen_message rng =
  if Rng.int rng 8 = 0 then Mrt.Keepalive
  else
    Mrt.Update
      { withdrawn = List.init (Rng.int rng 3) (fun _ -> gen_prefix rng);
        as_path = (if Rng.int rng 6 = 0 then [] else gen_path rng);
        next_hop = (if Rng.bool rng then Some (gen_ip rng) else None);
        communities = gen_communities rng;
        nlri = List.init (Rng.int rng 3) (fun _ -> gen_prefix rng) }

let gen_record rng =
  { Mrt.timestamp =
      float_of_int (Rng.int rng 1_000_000)
      +. (float_of_int (Rng.int rng 1_000_000) /. 1e6);
    peer_as = gen_asn rng;
    local_as = gen_asn rng;
    peer_ip = gen_ip rng;
    local_ip = gen_ip rng;
    message = gen_message rng }

let gen_rib rng =
  let n_peers = 1 + Rng.int rng 4 in
  { Mrt.rib_time = float_of_int (Rng.int rng 1_000_000);
    collector_id = gen_ip rng;
    view_name = (if Rng.bool rng then "" else "fuzz-view");
    peers = Array.init n_peers (fun _ -> (gen_ip rng, gen_asn rng));
    rib_entries =
      List.init (1 + Rng.int rng 4) (fun _ ->
          let p = gen_prefix rng in
          ( p,
            List.init (1 + Rng.int rng 3) (fun _ ->
                ( Rng.int rng n_peers,
                  Route.make ~communities:(gen_communities rng) p
                    (gen_path rng) )) )) }

let message_equal (a : Mrt.message) (b : Mrt.message) =
  match a, b with
  | Mrt.Keepalive, Mrt.Keepalive -> true
  | Mrt.Update a, Mrt.Update b ->
      List.equal Prefix.equal a.withdrawn b.withdrawn
      && List.equal Asn.equal a.as_path b.as_path
      && Option.equal Ipv4.equal a.next_hop b.next_hop
      && List.equal
           (fun (c1, v1) (c2, v2) -> c1 = c2 && v1 = v2)
           a.communities b.communities
      && List.equal Prefix.equal a.nlri b.nlri
  | _, _ -> false

let record_equal (a : Mrt.record) (b : Mrt.record) =
  Float.abs (a.Mrt.timestamp -. b.Mrt.timestamp) < 1e-5
  && Asn.equal a.Mrt.peer_as b.Mrt.peer_as
  && Asn.equal a.Mrt.local_as b.Mrt.local_as
  && Ipv4.equal a.Mrt.peer_ip b.Mrt.peer_ip
  && Ipv4.equal a.Mrt.local_ip b.Mrt.local_ip
  && message_equal a.Mrt.message b.Mrt.message

let route_equal (a : Route.t) (b : Route.t) =
  Prefix.equal a.Route.prefix b.Route.prefix
  && List.equal Asn.equal a.Route.as_path b.Route.as_path
  && List.equal
       (fun (c1, v1) (c2, v2) -> c1 = c2 && v1 = v2)
       a.Route.communities b.Route.communities

let rib_equal (a : Mrt.rib) (b : Mrt.rib) =
  Float.abs (a.Mrt.rib_time -. b.Mrt.rib_time) < 1e-5
  && Ipv4.equal a.Mrt.collector_id b.Mrt.collector_id
  && String.equal a.Mrt.view_name b.Mrt.view_name
  && Array.length a.Mrt.peers = Array.length b.Mrt.peers
  && Array.for_all2
       (fun (ip1, as1) (ip2, as2) -> Ipv4.equal ip1 ip2 && Asn.equal as1 as2)
       a.Mrt.peers b.Mrt.peers
  && List.equal
       (fun (p1, es1) (p2, es2) ->
          Prefix.equal p1 p2
          && List.equal
               (fun (i1, r1) (i2, r2) -> i1 = i2 && route_equal r1 r2)
               es1 es2)
       a.Mrt.rib_entries b.Mrt.rib_entries

let bit_flip rng data =
  let b = Bytes.of_string data in
  if Bytes.length b > 0 then begin
    let pos = Rng.int rng (Bytes.length b) in
    let bit = Rng.int rng 8 in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)))
  end;
  Bytes.to_string b

let truncate rng data =
  if String.length data = 0 then data
  else String.sub data 0 (Rng.int rng (String.length data))

(* Runs [decode] on [data]; a clean [Ok]/[Error] is fine, anything the
   result-returning decoder still throws is a decoder bug. *)
let expect_total ~case ~seed decode data (cases, rejected, violations) =
  incr cases;
  match decode data with
  | Ok _ -> ()
  | Error _ -> incr rejected
  | exception e ->
      violations :=
        { case; seed; detail = "decoder raised " ^ Printexc.to_string e }
        :: !violations

let mrt ?(seeds = 200) () =
  let cases = ref 0 and rejected = ref 0 and violations = ref [] in
  let state = (cases, rejected, violations) in
  for seed = 1 to seeds do
    let rng = Rng.of_int seed in
    (* encode∘decode identity on valid BGP4MP records ... *)
    let records = List.init (1 + Rng.int rng 4) (fun _ -> gen_record rng) in
    let encoded = Mrt.encode records in
    incr cases;
    (match Mrt.decode_result encoded with
     | Ok back ->
         if not (List.equal record_equal records back) then
           violations :=
             { case = "mrt-roundtrip"; seed;
               detail = "decode (encode records) <> records" }
             :: !violations
     | Error e ->
         violations :=
           { case = "mrt-roundtrip"; seed; detail = "valid input rejected: " ^ e }
           :: !violations
     | exception e ->
         violations :=
           { case = "mrt-decoder-raised"; seed;
             detail = "on valid input: " ^ Printexc.to_string e }
           :: !violations);
    (* ... and on valid TABLE_DUMP_V2 snapshots. *)
    let rib = gen_rib rng in
    let encoded_rib = Mrt.encode_rib rib in
    incr cases;
    (match Mrt.decode_rib_result encoded_rib with
     | Ok back ->
         if not (rib_equal rib back) then
           violations :=
             { case = "rib-roundtrip"; seed;
               detail = "decode_rib (encode_rib rib) <> rib" }
             :: !violations
     | Error e ->
         violations :=
           { case = "rib-roundtrip"; seed; detail = "valid input rejected: " ^ e }
           :: !violations
     | exception e ->
         violations :=
           { case = "mrt-decoder-raised"; seed;
             detail = "on valid RIB: " ^ Printexc.to_string e }
           :: !violations);
    (* Mutations: decode must return an error, never raise. *)
    for _ = 1 to 24 do
      expect_total ~case:"mrt-decoder-raised" ~seed Mrt.decode_result
        (bit_flip rng encoded) state;
      expect_total ~case:"mrt-decoder-raised" ~seed Mrt.decode_rib_result
        (bit_flip rng encoded_rib) state
    done;
    for _ = 1 to 8 do
      expect_total ~case:"mrt-decoder-raised" ~seed Mrt.decode_result
        (truncate rng encoded) state;
      expect_total ~case:"mrt-decoder-raised" ~seed Mrt.decode_rib_result
        (truncate rng encoded_rib) state
    done;
    (* Cross-feeding the two framings must fail cleanly too. *)
    expect_total ~case:"mrt-decoder-raised" ~seed Mrt.decode_result encoded_rib
      state;
    expect_total ~case:"mrt-decoder-raised" ~seed Mrt.decode_rib_result encoded
      state
  done;
  { seeds; cases = !cases; rejected = !rejected;
    violations = List.rev !violations }

(* ---- Session_reset ------------------------------------------------ *)

(* Synthesize a stream of organic churn with injected table-transfer
   bursts: the filter must drop the bursts (detect each injected
   interval) and pass the organic updates that are clear of them, while
   keeping pushed = passed + dropped at flush. *)

let sr_duration = 4. *. 3600.
let sr_transfer_span = 45.

let gen_session k = { Update.collector = "rrc00"; peer = Asn.of_int (64500 + k) }

let session_reset ?(seeds = 200) () =
  let cases = ref 0 and rejected = ref 0 and violations = ref [] in
  let add case seed detail = violations := { case; seed; detail } :: !violations in
  for seed = 1 to seeds do
    let rng = Rng.of_int (0x5e55e7 + seed) in
    let session = gen_session (Rng.int rng 4) in
    let table_n = 150 + Rng.int rng 150 in
    let prefixes =
      Array.init table_n (fun i ->
          Prefix.make (Ipv4.of_int_trunc (0x0A000000 + (i * 256))) 24)
    in
    let route i = Route.make prefixes.(i) [ gen_asn rng; gen_asn rng ] in
    let announce time i =
      { Update.time; session; kind = Update.Announce (route i) }
    in
    (* Organic churn: sparse single-prefix updates. *)
    let n_organic = 40 + Rng.int rng 40 in
    let organic =
      List.init n_organic (fun _ ->
          announce (Rng.float rng sr_duration) (Rng.int rng table_n))
      |> List.sort (fun (a : Update.t) b -> Float.compare a.Update.time b.Update.time)
    in
    (* Injected table transfers: the whole table replayed in seconds. *)
    let n_bursts = 1 + Rng.int rng 2 in
    let burst_starts =
      List.init n_bursts (fun _ ->
          300. +. Rng.float rng (sr_duration -. 600.))
      |> List.sort Float.compare
    in
    let bursts =
      List.map
        (fun start ->
           ( start,
             List.init table_n (fun i ->
                 announce
                   (start +. (float_of_int i *. sr_transfer_span
                              /. float_of_int table_n))
                   i) ))
        burst_starts
    in
    let stream =
      List.stable_sort
        (fun (a : Update.t) b -> Float.compare a.Update.time b.Update.time)
        (organic @ List.concat_map snd bursts)
    in
    let emitted = Hashtbl.create 1024 in
    let filter =
      Session_reset.create
        ~emit:(fun u -> Hashtbl.replace emitted u ())
        ()
    in
    Session_reset.preload_table filter session table_n;
    List.iter (Session_reset.push filter) stream;
    Session_reset.flush filter;
    let st = Session_reset.stats filter in
    incr cases;
    if
      st.Session_reset.pushed
      <> st.Session_reset.passed + st.Session_reset.dropped
         + st.Session_reset.buffered
      || st.Session_reset.buffered <> 0
    then
      add "reset-accounting" seed
        (Printf.sprintf "pushed %d, passed %d, dropped %d, buffered %d"
           st.Session_reset.pushed st.Session_reset.passed
           st.Session_reset.dropped st.Session_reset.buffered);
    (* A transfer's drop window outlasts the replay: while consecutive
       updates arrive within the quiet gap the filter keeps dropping, so
       extend each burst's shadow along that chain through the stream. *)
    let quiet_gap = Session_reset.default_config.Session_reset.quiet_gap in
    let window = Session_reset.default_config.Session_reset.window in
    let shadows =
      List.map
        (fun (start, updates) ->
           let finish =
             (List.nth updates (List.length updates - 1)).Update.time
           in
           let chain_end =
             List.fold_left
               (fun last (u : Update.t) ->
                  if u.Update.time > last
                     && u.Update.time -. last <= quiet_gap
                  then u.Update.time
                  else last)
               finish stream
           in
           (start, finish, start -. window -. 1., chain_end))
        bursts
    in
    (* Every injected transfer must be detected as a burst... *)
    List.iter
      (fun (start, finish, _, _) ->
         incr cases;
         let found =
           List.exists
             (fun (_, b_start, b_end) ->
                b_start <= finish +. 120. && b_end >= start -. 120.)
             st.Session_reset.bursts
         in
         if not found then
           add "reset-burst-missed" seed
             (Printf.sprintf "transfer at t=%.0f..%.0f not detected" start
                finish))
      shadows;
    (* ... and organic churn clear of any transfer's shadow must pass. *)
    let shadowed time =
      List.exists
        (fun (_, _, lo, hi) -> time >= lo && time <= hi)
        shadows
    in
    List.iter
      (fun (u : Update.t) ->
         if not (shadowed u.Update.time) then begin
           incr cases;
           if not (Hashtbl.mem emitted u) then
             add "reset-organic-dropped" seed
               (Format.asprintf "organic update at t=%g was dropped"
                  u.Update.time)
         end)
      organic
  done;
  { seeds; cases = !cases; rejected = !rejected;
    violations = List.rev !violations }
