(** Differential oracles: configuration pairs that must not change
    results.

    The route cache (PR 2) and the domain pool (PR 3) are pure
    memoization/execution layers, and the session-reset filter is inert
    on a stream without resets. Each oracle runs a seeded scenario under
    both halves of such a pair, renders the experiment output (F3L, F3R,
    M1, or a raw per-cell kernel) and diffs the two renderings
    byte-for-byte, reporting the first divergent line.

    | pair                   | halves                             | outputs        |
    |------------------------|------------------------------------|----------------|
    | route-cache-on-vs-off  | [route_cache_size] 512 vs 0        | F3L, F3R       |
    | jobs-1-vs-2            | pool [jobs] 1 vs 2                 | F3L, F3R, M1   |
    | chunk-1-vs-64          | [Pool.map ~chunk] 1 vs 64          | per-cell F3R   |
    | filter-on-reset-free   | filter on vs off, 0 resets/session | F3L, F3R       | *)

type outcome = {
  seed : int;
  pair : string;        (** e.g. ["route-cache-on-vs-off"] *)
  experiment : string;  (** e.g. ["F3R"] *)
  ok : bool;
  detail : string option;  (** first divergent line, when [not ok] *)
}

val pp_outcome : Format.formatter -> outcome -> unit

val all_ok : outcome list -> bool

val default_dynamics : Dynamics.config
(** [Dynamics.short_config] shortened to 12 simulated hours. *)

val run :
  ?dynamics:Dynamics.config -> ?seeds:int list -> Scenario.size ->
  outcome list
(** Run every pair on every seed (default seeds [1; 2]) and return one
    outcome per (seed, pair, experiment). Deterministic. *)

val delta :
  ?dynamics:Dynamics.config -> ?seeds:int list -> Scenario.size ->
  outcome list
(** The delta-vs-full propagation oracle (default seeds [1..5]): per
    seed, runs the same measurement with [Dynamics.delta_states] 0
    (every churn event is a full recompute) and 512 (incremental
    repair), both with the route cache disabled, and demands
    byte-identical collector update streams and final (session, prefix)
    tables; then layers the route cache on top of the delta engine
    (still byte-identical), checks worker count does not leak into
    delta-backed F3L output (jobs 1 vs 4), and finally that the delta
    run actually took delta steps — without which the identities would
    be vacuous. A divergence is a repair-engine bug by construction:
    Gao-Rexford safety makes the stable assignment unique, so any
    correct repair must land on the full-compute fixed point. *)

val static :
  ?dynamics:Dynamics.config -> ?seeds:int list -> Scenario.size ->
  outcome list
(** The dynamic-vs-static soundness oracle (default seeds [1..5]): per
    seed, audits that (1) every update a full simulated measurement
    records stays inside the [Qs_analysis.Static_surface] exposure bound
    of its (session peer, true origin) pair, and (2) every client a
    seeded same-prefix hijack, more-specific hijack, or interception
    wins against ([Hijack.wins] / [Interception.wins]) lies inside the
    corresponding static feasible set. All four experiments report under
    the pair name ["dynamic-vs-static"]; a divergence is a propagation,
    attack, or closure bug by construction. *)
