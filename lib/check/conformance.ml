type violation = { invariant : string; message : string }

let pp_violation ppf v =
  Format.fprintf ppf "[%s] %s" v.invariant v.message

(* Storing every violation of a badly broken stream would be as long as
   the stream itself; keep the first [max_recorded] and count the rest. *)
let max_recorded = 100

type stream_key = Update.session_id * Prefix.t

type t = {
  duration : float;
  require_global_order : bool;
  last_by_session : (Update.session_id, float) Hashtbl.t;
  mutable last_global : float;
  announced : (stream_key, unit) Hashtbl.t;
  suspects : (stream_key, float) Hashtbl.t;
      (* keys whose first event was a withdraw; resolved against the
         time-0 tables in {!finalize} *)
  mutable observed : int;
  mutable recorded : violation list;  (* newest first *)
  mutable n_violations : int;
}

let create ?(duration = infinity) ?(require_global_order = false) () =
  { duration;
    require_global_order;
    last_by_session = Hashtbl.create 64;
    last_global = neg_infinity;
    announced = Hashtbl.create 4096;
    suspects = Hashtbl.create 64;
    observed = 0;
    recorded = [];
    n_violations = 0 }

let add t invariant message =
  t.n_violations <- t.n_violations + 1;
  if t.n_violations <= max_recorded then
    t.recorded <- { invariant; message } :: t.recorded

let observed t = t.observed

let observe t (u : Update.t) =
  t.observed <- t.observed + 1;
  let time = u.Update.time in
  let s = u.Update.session in
  if Float.is_nan time || time < 0. || time > t.duration then
    add t "horizon"
      (Format.asprintf "%a: update at t=%g outside [0, %g]"
         Update.pp_session s time t.duration);
  (match Hashtbl.find_opt t.last_by_session s with
   | Some last when time < last ->
       add t "session-monotonic"
         (Format.asprintf "%a: t=%g after t=%g on the same session"
            Update.pp_session s time last)
   | Some last -> Hashtbl.replace t.last_by_session s (Float.max last time)
   | None -> Hashtbl.replace t.last_by_session s time);
  if t.require_global_order && time < t.last_global then
    add t "global-monotonic"
      (Format.asprintf "%a: t=%g after another session already reached t=%g"
         Update.pp_session s time t.last_global);
  t.last_global <- Float.max t.last_global time;
  let key = (s, Update.prefix u) in
  match u.Update.kind with
  | Update.Announce _ -> Hashtbl.replace t.announced key ()
  | Update.Withdraw _ ->
      if not (Hashtbl.mem t.announced key) && not (Hashtbl.mem t.suspects key)
      then Hashtbl.replace t.suspects key time

let wrap t k = fun u -> observe t u; k u

let finalize ?initial t =
  let in_baseline (session, prefix) =
    match initial with
    | None -> false
    | Some init ->
        (match Update.Session_map.find_opt session init with
         | Some table -> Prefix.Map.mem prefix table
         | None -> false)
  in
  let late =
    Hashtbl.fold
      (fun key time acc ->
         if in_baseline key then acc else (key, time) :: acc)
      t.suspects []
    |> List.sort
         (fun ((sa, pa), ta) ((sb, pb), tb) ->
            match Float.compare ta tb with
            | 0 ->
                (match Update.session_compare sa sb with
                 | 0 -> Prefix.compare pa pb
                 | c -> c)
            | c -> c)
    |> List.map (fun ((s, p), time) ->
        { invariant = "withdraw-before-announce";
          message =
            Format.asprintf
              "%a %a: withdraw at t=%g with no prior announce or baseline"
              Update.pp_session s Prefix.pp p time })
  in
  let truncated =
    if t.n_violations <= max_recorded then []
    else
      [ { invariant = "truncated";
          message =
            Printf.sprintf "... and %d more stream violations not recorded"
              (t.n_violations - max_recorded) } ]
  in
  List.rev t.recorded @ truncated @ late

let eps = 1e-6

let check_measurement (m : Measurement.t) =
  let out = ref [] in
  let add invariant message = out := { invariant; message } :: !out in
  let dur = m.Measurement.duration in
  List.iter
    (fun (c : Measurement.cell) ->
       let name =
         Format.asprintf "%a %a"
           Update.pp_session c.Measurement.key.Measurement.session
           Prefix.pp c.Measurement.key.Measurement.prefix
       in
       if c.Measurement.baseline = None && c.Measurement.updates = 0 then
         add "phantom-cell" (name ^ ": cell with no baseline and no updates");
       if c.Measurement.path_changes > c.Measurement.updates then
         add "cell-accounting"
           (Printf.sprintf "%s: %d path changes out of %d updates" name
              c.Measurement.path_changes c.Measurement.updates);
       List.iter
         (fun (a, d) ->
            if d < -.eps || d > dur +. eps then
              add "residency-conservation"
                (Format.asprintf "%s: AS%a residency %g outside [0, %g]" name
                   Asn.pp a d dur))
         c.Measurement.residency;
       List.iter
         (fun (a, d) ->
            let cum =
              List.fold_left
                (fun acc (a', d') -> if Asn.equal a a' then acc +. d' else acc)
                0. c.Measurement.residency
            in
            if d > cum +. eps then
              add "residency-conservation"
                (Format.asprintf
                   "%s: AS%a contiguous run %g exceeds cumulative %g" name
                   Asn.pp a d cum))
         c.Measurement.contiguous)
    m.Measurement.cells;
  Prefix.Table.iter
    (fun p n ->
       if n < 0 || n > m.Measurement.n_sessions then
         add "visibility"
           (Format.asprintf "%a: visible on %d of %d sessions" Prefix.pp p n
              m.Measurement.n_sessions))
    m.Measurement.visibility;
  (match m.Measurement.filter_stats with
   | None -> ()
   | Some fs ->
       if
         fs.Session_reset.pushed
         <> fs.Session_reset.passed + fs.Session_reset.dropped
            + fs.Session_reset.buffered
       then
         add "filter-accounting"
           (Printf.sprintf "pushed %d <> passed %d + dropped %d + buffered %d"
              fs.Session_reset.pushed fs.Session_reset.passed
              fs.Session_reset.dropped fs.Session_reset.buffered);
       if fs.Session_reset.buffered <> 0 then
         add "filter-accounting"
           (Printf.sprintf "%d updates still buffered after flush"
              fs.Session_reset.buffered));
  List.rev !out

let run ?dynamics ?filter ?no_filter ?extra_updates scenario =
  let dcfg = Option.value ~default:Dynamics.default_config dynamics in
  let t = create ~duration:dcfg.Dynamics.duration () in
  let m =
    Measurement.run ~dynamics:dcfg ?filter ?no_filter ?extra_updates
      ~observe:(observe t) scenario
  in
  let violations =
    finalize ~initial:m.Measurement.initial t @ check_measurement m
  in
  (m, violations)
