(** Minimal mutable min-priority queue (binary heap) keyed by float.

    Used by the BGP dynamics simulator for pending timed events and for
    time-ordering emitted updates. Ties are popped in insertion order.

    The queue never retains values it no longer holds: popping an entry
    clears the vacated heap slot, and freshly-grown capacity slots are
    empty rather than filled with a dummy entry, so long-running
    simulations do not pin dead events against the GC. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push q key v] inserts [v] with priority [key]. *)

val min_key : 'a t -> float option
(** Smallest key, without popping. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the entry with the smallest key. *)

val pop_until : 'a t -> float -> (float * 'a) list
(** [pop_until q limit] pops all entries with key <= [limit], in key order. *)

val drain : 'a t -> (float * 'a) list
(** Pops everything, in key order. *)
