type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_raw t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

let int64 t = mix (next_raw t)

let split t = create (int64 t)

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  Array.init n (fun _ -> split t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit int non-negatively.
     Rejection-free: modulo bias is negligible for bound << 2^62. *)
  let v = Int64.to_int (Int64.logand (int64 t) 0x3FFFFFFFFFFFFFFFL) in
  v mod bound

let float t bound =
  (* 53 random bits -> uniform in [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  let u = Int64.to_float bits /. 9007199254740992.0 in
  u *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let exponential t rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1.0 -. float t 1.0 in
  -.log u /. rate

let pareto t ~alpha ~xmin =
  if alpha <= 0. || xmin <= 0. then invalid_arg "Rng.pareto: parameters must be positive";
  let u = 1.0 -. float t 1.0 in
  xmin /. (u ** (1.0 /. alpha))

let geometric t p =
  if not (0. < p && p <= 1.) then invalid_arg "Rng.geometric: p must be in (0, 1]";
  if p = 1.0 then 0
  else begin
    let u = 1.0 -. float t 1.0 in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))
  end

let normal t ~mu ~sigma =
  let u1 = 1.0 -. float t 1.0 in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let weighted_index t w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Rng.weighted_index: empty weights";
  let total = Array.fold_left (fun acc x ->
      if x < 0. then invalid_arg "Rng.weighted_index: negative weight";
      acc +. x) 0. w
  in
  if total <= 0. then invalid_arg "Rng.weighted_index: all-zero weights";
  let target = float t total in
  let rec loop i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if target < acc then i else loop (i + 1) acc
  in
  loop 0 0.

let sample_without_replacement t k arr =
  let n = Array.length arr in
  if k >= n then begin
    let copy = Array.copy arr in
    shuffle t copy;
    Array.to_list copy
  end else begin
    (* Partial Fisher-Yates: shuffle only the first k slots. *)
    let copy = Array.copy arr in
    let out = ref [] in
    for i = 0 to k - 1 do
      let j = i + int t (n - i) in
      let tmp = copy.(i) in
      copy.(i) <- copy.(j);
      copy.(j) <- tmp;
      out := copy.(i) :: !out
    done;
    !out
  end
