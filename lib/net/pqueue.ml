type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

(* Slots at indices < size are always [Some]; slots at indices >= size are
   always [None], so the heap never retains entries that were popped (or
   dummy entries pinning the first pushed value, as an ['a entry array]
   representation would need for freshly-grown capacity). *)

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty q = q.size = 0
let length q = q.size

let get q i =
  match q.heap.(i) with
  | Some e -> e
  | None -> invalid_arg "Pqueue: vacant slot inside the live heap"

let lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt (get q i) (get q parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && lt (get q l) (get q !smallest) then smallest := l;
  if r < q.size && lt (get q r) (get q !smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q key value =
  if q.size = Array.length q.heap then begin
    let cap = max 16 (2 * Array.length q.heap) in
    let heap = Array.make cap None in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end;
  q.heap.(q.size) <- Some { key; seq = q.next_seq; value };
  q.next_seq <- q.next_seq + 1;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let min_key q = if q.size = 0 then None else Some (get q 0).key

let pop q =
  if q.size = 0 then None
  else begin
    let top = get q 0 in
    q.size <- q.size - 1;
    q.heap.(0) <- q.heap.(q.size);
    q.heap.(q.size) <- None;
    if q.size > 0 then sift_down q 0;
    Some (top.key, top.value)
  end

let pop_until q limit =
  let rec loop acc =
    match min_key q with
    | Some k when k <= limit -> begin
        match pop q with
        | Some (key, v) -> loop ((key, v) :: acc)
        | None -> List.rev acc
      end
    | Some _ | None -> List.rev acc
  in
  loop []

let drain q = pop_until q infinity
