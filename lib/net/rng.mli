(** Deterministic, splittable pseudo-random number generator.

    All experiments in this repository are seeded so that every table and
    figure is reproducible bit-for-bit. We implement SplitMix64: it is fast,
    has a 64-bit state, passes BigCrush, and — crucially — supports
    {!split}, which lets independent subsystems (topology generation, BGP
    event scheduling, Tor path selection, TCP jitter) draw from statistically
    independent streams derived from a single experiment seed. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    independent of [t]'s subsequent output. *)

val split_n : t -> int -> t array
(** [split_n t n] splits [n] sibling generators off [t], in order: element
    [i] depends only on [t]'s state at the call and on [i], so the array is
    stable however its elements are later consumed. This is the sharding
    primitive of the parallel executor ({!Qs_exec.Pool.map_seeded}): give
    shard [i] stream [i] and a sweep is reproducible at any worker count.
    Sibling streams are statistically independent of each other and of
    [t]'s subsequent output.
    @raise Invalid_argument if [n < 0]. *)

val int64 : t -> int64
(** [int64 t] returns the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] returns a uniform boolean. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] returns a uniform element of [arr].
    @raise Invalid_argument if [arr] is empty. *)

val pick_list : t -> 'a list -> 'a
(** [pick_list t l] returns a uniform element of [l].
    @raise Invalid_argument if [l] is empty. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t arr] permutes [arr] in place, uniformly (Fisher–Yates). *)

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate): mean [1. /. rate].
    @raise Invalid_argument if [rate <= 0.]. *)

val pareto : t -> alpha:float -> xmin:float -> float
(** [pareto t ~alpha ~xmin] samples a Pareto(alpha, xmin) heavy-tailed
    value; used for bandwidths and churn burst sizes. *)

val geometric : t -> float -> int
(** [geometric t p] samples the number of failures before the first success
    of a Bernoulli(p); in [\[0, inf)].
    @raise Invalid_argument unless [0. < p && p <= 1.]. *)

val normal : t -> mu:float -> sigma:float -> float
(** [normal t ~mu ~sigma] samples a Gaussian via Box–Muller. *)

val weighted_index : t -> float array -> int
(** [weighted_index t w] samples index [i] with probability proportional to
    [w.(i)]. Weights must be non-negative and not all zero.
    @raise Invalid_argument otherwise. *)

val sample_without_replacement : t -> int -> 'a array -> 'a list
(** [sample_without_replacement t k arr] returns [k] distinct elements of
    [arr] (all of them if [k >= Array.length arr]), in random order. *)
