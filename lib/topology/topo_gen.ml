type params = {
  n_tier1 : int;
  n_transit : int;
  n_stub : int;
  n_hosting : int;
  multihoming_prob : float;
  transit_peering_prob : float;
}

let default_params =
  { n_tier1 = 12;
    n_transit = 350;
    n_stub = 2000;
    n_hosting = 60;
    multihoming_prob = 0.45;
    transit_peering_prob = 0.5 }

let small_params =
  { n_tier1 = 5;
    n_transit = 40;
    n_stub = 175;
    n_hosting = 12;
    multihoming_prob = 0.45;
    transit_peering_prob = 0.25 }

(* The paper's top five relay-hosting ASes (Figure 2 left). *)
let famous_hosters =
  [| "Hetzner Online AG"; "OVH SAS"; "Abovenet Communications";
     "Fiberring"; "Online.net" |]

let generate ~rng p =
  if p.n_tier1 < 2 || p.n_transit < 0 || p.n_stub < 0 || p.n_hosting < 0 then
    invalid_arg "Topo_gen.generate: bad parameters";
  let g = As_graph.create () in
  let next_asn = ref 0 in
  let fresh_asn () = incr next_asn; Asn.of_int !next_asn in
  let add tier name weight =
    let a = fresh_asn () in
    As_graph.add_as g a { As_graph.name; tier; hosting_weight = weight };
    a
  in
  (* Tier-1 core: full peering mesh. *)
  let tier1 =
    Array.init p.n_tier1 (fun i -> add As_graph.Tier1 (Printf.sprintf "Core-%d" (i + 1)) 0.)
  in
  Array.iteri
    (fun i a ->
       for j = i + 1 to p.n_tier1 - 1 do
         As_graph.add_peering g a tier1.(j)
       done)
    tier1;
  (* Transit providers: preferential attachment to earlier transits/Tier-1s
     by current customer count, so customer-cone sizes come out heavy-tailed. *)
  let transits = Array.make (max p.n_transit 1) tier1.(0) in
  let provider_pool () =
    (* candidate providers with weight = 1 + #customers so far *)
    let candidates =
      Array.append tier1 (Array.sub transits 0 (min p.n_transit (max 0 (!next_asn - p.n_tier1))))
    in
    candidates
  in
  for i = 0 to p.n_transit - 1 do
    let a = add As_graph.Transit (Printf.sprintf "Transit-%d" (i + 1)) 0. in
    transits.(i) <- a;
    let candidates = provider_pool () in
    let weights =
      Array.map (fun c -> 1.0 +. float_of_int (List.length (As_graph.customers g c)))
        candidates
    in
    let n_providers = 1 + Rng.int rng 3 in
    let chosen = ref Asn.Set.empty in
    let attempts = ref 0 in
    while Asn.Set.cardinal !chosen < n_providers && !attempts < 20 do
      incr attempts;
      let c = candidates.(Rng.weighted_index rng weights) in
      if not (Asn.equal c a) && not (Asn.Set.mem c !chosen) then
        chosen := Asn.Set.add c !chosen
    done;
    Asn.Set.iter (fun c -> As_graph.add_provider_customer g ~provider:c ~customer:a) !chosen;
    (* Some lateral peering among transits (settlement-free meshes are how
       partial collector feeds end up seeing peer routes). *)
    if i > 0 && Rng.float rng 1.0 < p.transit_peering_prob then begin
      let n_peers = 1 + Rng.int rng 2 in
      for _ = 1 to n_peers do
        let peer = transits.(Rng.int rng i) in
        if As_graph.relationship g a peer = None then As_graph.add_peering g a peer
      done
    end
  done;
  let transits = Array.sub transits 0 p.n_transit in
  (* Hub peering mesh: the biggest transits (by customer count) peer densely
     with each other, IXP-style. This is what lets partial collector feeds
     (customer+peer exports) still see a large share of the table. *)
  if Array.length transits > 0 then begin
    let by_customers = Array.copy transits in
    Array.sort
      (fun a b ->
         Int.compare
           (List.length (As_graph.customers g b))
           (List.length (As_graph.customers g a)))
      by_customers;
    let n_hubs = max 8 (Array.length transits / 8) in
    let n_hubs = min n_hubs (Array.length by_customers) in
    for i = 0 to n_hubs - 1 do
      for j = i + 1 to n_hubs - 1 do
        if Rng.float rng 1.0 < 0.5
           && As_graph.relationship g by_customers.(i) by_customers.(j) = None
        then As_graph.add_peering g by_customers.(i) by_customers.(j)
      done
    done
  end;
  (* Decide which stubs are hosting ASes (hosting providers live at the edge
     in practice: Hetzner, OVH etc. are stubs or small transits). *)
  let hosting_indices = Hashtbl.create 64 in
  let n_stub_effective = max p.n_stub 1 in
  let placed = ref 0 in
  while !placed < min p.n_hosting p.n_stub do
    let idx = Rng.int rng n_stub_effective in
    if not (Hashtbl.mem hosting_indices idx) then begin
      Hashtbl.replace hosting_indices idx !placed;
      incr placed
    end
  done;
  (* Stub ASes: 1-2 providers picked preferentially among transits. *)
  let stubs = Array.make (max p.n_stub 1) tier1.(0) in
  for i = 0 to p.n_stub - 1 do
    let rank = Hashtbl.find_opt hosting_indices i in
    let name, weight =
      match rank with
      | Some r when r < Array.length famous_hosters ->
          (* The top hosters get Zipf-like dominant weights. *)
          (famous_hosters.(r), 32.0 /. float_of_int (r + 1))
      | Some r -> (Printf.sprintf "Hosting-%d" (r + 1), Rng.pareto rng ~alpha:1.3 ~xmin:0.4)
      | None -> (Printf.sprintf "Stub-%d" (i + 1), 0.)
    in
    let a = add As_graph.Stub name weight in
    stubs.(i) <- a;
    let pool = if Array.length transits > 0 then transits else tier1 in
    let weights =
      Array.map (fun c -> 1.0 +. float_of_int (List.length (As_graph.customers g c))) pool
    in
    let p1 = pool.(Rng.weighted_index rng weights) in
    As_graph.add_provider_customer g ~provider:p1 ~customer:a;
    if Rng.float rng 1.0 < p.multihoming_prob then begin
      let p2 = pool.(Rng.weighted_index rng weights) in
      if As_graph.relationship g a p2 = None then
        As_graph.add_provider_customer g ~provider:p2 ~customer:a
    end
  done;
  (* Preferential attachment can leave a transit with no customers, which
     contradicts its tier metadata (lint QS104). Each orphan adopts a
     random stub as an extra multihoming leg. This pass only draws from
     the RNG after all other generation, so everything above is
     byte-identical per seed with or without orphans. *)
  if p.n_stub > 0 then
    Array.iter
      (fun t ->
         if As_graph.customers g t = [] then begin
           let adopted = ref false in
           let attempts = ref 0 in
           while (not !adopted) && !attempts < 50 do
             incr attempts;
             let s = stubs.(Rng.int rng p.n_stub) in
             if As_graph.relationship g t s = None then begin
               As_graph.add_provider_customer g ~provider:t ~customer:s;
               adopted := true
             end
           done
         end)
      transits;
  g

let hosting_ases g =
  As_graph.ases g
  |> List.filter_map (fun a ->
      let i = As_graph.info g a in
      if i.As_graph.hosting_weight > 0. then Some (a, i.As_graph.hosting_weight)
      else None)
  |> List.sort (fun (_, w1) (_, w2) -> Float.compare w2 w1)
