(* The three-state export automaton of valley-free routing. A walk from
   the source is legal while its relationship word matches up* peer? down*;
   the BFS below explores the product (AS, phase) graph, so each AS is
   settled at most three times and the whole sweep is O(V + E). *)

let s_up = 0 (* uphill phase: only customer->provider steps taken so far *)
let s_peer = 1 (* the single peering step has been crossed *)
let s_down = 2 (* downhill phase: only provider->customer steps remain *)

type t = {
  graph : As_graph.Indexed.t;
  dist : int array; (* 3n scratch: minimal hops to (AS, phase); max_int = unseen *)
  queue : int array; (* FIFO of (AS, phase) encoded as 3*id + phase *)
}

let create graph =
  let n = As_graph.Indexed.n graph in
  { graph; dist = Array.make (3 * n) max_int; queue = Array.make (3 * n) 0 }

type closure = {
  graph : As_graph.Indexed.t;
  src : Asn.t;
  (* Per AS: bit 0 = reachable in some phase, bit 1 = reachable while
     still uphill (the source is in this AS's customer cone). A byte per
     AS keeps a cached closure at ~n bytes, so thousands of them fit. *)
  mask : Bytes.t;
  count : int;
}

let source c = c.src

let compute (t : t) ?failed ?export_to ?max_radius src =
  (match max_radius with
   | Some r when r < 0 -> invalid_arg "Reach.compute: negative max_radius"
   | _ -> ());
  let g = t.graph in
  let n = As_graph.Indexed.n g in
  let dist = t.dist and queue = t.queue in
  Array.fill dist 0 (3 * n) max_int;
  let head = ref 0 and tail = ref 0 in
  let push node = queue.(!tail) <- node; incr tail in
  let src_id = As_graph.Indexed.id_of_asn g src in
  dist.(3 * src_id + s_up) <- 0;
  push (3 * src_id + s_up);
  let within_radius d =
    match max_radius with None -> true | Some r -> d <= r
  in
  let link_ok u v =
    match failed with
    | None -> true
    | Some f ->
        not (f (As_graph.Indexed.asn_of_id g u) (As_graph.Indexed.asn_of_id g v))
  in
  while !head < !tail do
    let node = queue.(!head) in
    incr head;
    let u = node / 3 and phase = node mod 3 in
    let d = dist.(node) + 1 in
    if within_radius d then
      Array.iter
        (fun (v, rel) ->
           (* [rel] is what the neighbor [v] is to [u]. *)
           let phase' =
             match phase, rel with
             | 0, Relationship.Provider -> s_up
             | 0, Relationship.Peer -> s_peer
             | _, Relationship.Customer -> s_down
             | _, (Relationship.Provider | Relationship.Peer) -> -1
           in
           if phase' >= 0
              && dist.(3 * v + phase') = max_int
              && link_ok u v
              && (match export_to with
                  | Some allowed when u = src_id && phase = s_up && d = 1 ->
                      Asn.Set.mem (As_graph.Indexed.asn_of_id g v) allowed
                  | _ -> true)
           then begin
             dist.(3 * v + phase') <- d;
             push (3 * v + phase')
           end)
        (As_graph.Indexed.neighbors g u)
  done;
  let mask = Bytes.make n '\000' in
  let count = ref 0 in
  for i = 0 to n - 1 do
    let any =
      dist.(3 * i) < max_int
      || dist.(3 * i + 1) < max_int
      || dist.(3 * i + 2) < max_int
    in
    if any then begin
      incr count;
      let bits = if dist.(3 * i + s_up) < max_int then 3 else 1 in
      Bytes.unsafe_set mask i (Char.unsafe_chr bits)
    end
  done;
  { graph = g; src; mask; count = !count }

let bits c a =
  match As_graph.Indexed.id_of_asn c.graph a with
  | id -> Char.code (Bytes.unsafe_get c.mask id)
  | exception Not_found -> 0

let reaches c a = bits c a land 1 <> 0
let uphill_only c a = bits c a land 2 <> 0

(* x on some valley-free src->dst walk: either x is still in the uphill
   prefix (src in x's customer cone: any legal continuation to dst will
   do), or the continuation from x must be pure downhill — equivalently,
   by walk reversal, pure uphill from dst. *)
let on_some_path ~src ~dst x =
  (uphill_only src x && reaches dst x) || (reaches src x && uphill_only dst x)

let reachable_count c = c.count

let fold f c acc =
  let n = Bytes.length c.mask in
  let acc = ref acc in
  for i = 0 to n - 1 do
    if Char.code (Bytes.unsafe_get c.mask i) land 1 <> 0 then
      acc := f (As_graph.Indexed.asn_of_id c.graph i) !acc
  done;
  !acc

let exposure ~src ~dst =
  fold
    (fun a acc -> if on_some_path ~src ~dst a then Asn.Set.add a acc else acc)
    src Asn.Set.empty
