(** Valley-free reachability closure: the static attack-surface substrate.

    For a source AS [s], {!compute} answers in one O(V+E) sweep which ASes
    lie at the end of {e some} policy-compliant (valley-free) walk from
    [s] — the classic Gao shape [up* peer? down*], where an "up" step goes
    to a provider, at most one step crosses a peering link, and every step
    after the peak descends to a customer. This is exactly the shape of

    - every AS path the Gao–Rexford engine ({!Qs_bgp.Propagate}) can ever
      select, and
    - the propagation footprint of an announcement: the set of ASes that
      can ever {e hear} a route originated at [s] (export rules admit a
      route along a walk iff its reverse is valley-free, and the reverse
      of [up* peer? down*] is again [up* peer? down*]).

    The sweep is a BFS over the product of the graph with the three-state
    export automaton (uphill phase / peer crossed / downhill phase), so
    membership comes with the minimal valley-free hop count, which is what
    radius-scoped announcements ([max_radius]) bound.

    Soundness laws (qcheck-enforced in [test/test_topology.ml]):

    - {b monotonicity}: removing a link (via [failed]) never grows any
      closure or any exposure bound — which is why bounds computed on the
      intact graph stay valid for every churn state of the simulator;
    - {b renumbering invariance}: closures commute with any relabelling
      of the ASNs.

    A {!t} is a reusable single-threaded workspace (one per domain, as
    with {!Qs_bgp.Propagate.Workspace}); the {!closure} values it returns
    are owned copies and stay valid forever. *)

type t
(** Reusable scratch state bound to one indexed graph. *)

val create : As_graph.Indexed.t -> t

type closure
(** The reachability closure from one source AS: per target, whether some
    valley-free walk exists ({!reaches}) and whether a pure uphill
    (customer-to-provider) walk exists ({!uphill_only} — i.e. the source
    is in the target's customer cone). *)

val source : closure -> Asn.t

val compute :
  t ->
  ?failed:(Asn.t -> Asn.t -> bool) ->
  ?export_to:Asn.Set.t ->
  ?max_radius:int ->
  Asn.t -> closure
(** [compute t s] is the closure from [s] over the whole graph.
    [failed a b] removes links from the sweep (both directions — links
    are undirected). [export_to] restricts the {e first} hop out of [s]
    to the given neighbors ({!Qs_bgp.Announcement.export_to} scoping);
    [max_radius] keeps only targets whose minimal valley-free walk from
    [s] has at most that many AS hops ({!Qs_bgp.Announcement.max_radius}
    scoping: an origin at depth 0 re-exports while depth < radius).
    @raise Not_found if [s] is not in the graph.
    @raise Invalid_argument if [max_radius] is negative. *)

val reaches : closure -> Asn.t -> bool
(** Some valley-free walk source → target exists. Unknown ASes are
    unreachable. [reaches c (source c)] always holds (the empty walk). *)

val uphill_only : closure -> Asn.t -> bool
(** A pure uphill walk source → target exists, i.e. the target reaches
    the source through a provider chain: [uphill_only c x] iff [source c]
    is in [x]'s customer cone. Implies {!reaches}. *)

val on_some_path : src:closure -> dst:closure -> Asn.t -> bool
(** [on_some_path ~src ~dst x]: does [x] lie on {e some} valley-free walk
    from [src]'s source to [dst]'s source? Both closures are plain forward
    closures (computed with no [export_to]/[max_radius] scoping) from the
    two endpoints; the decomposition is
    [(uphill_only src x && reaches dst x) ||
     (reaches src x && uphill_only dst x)]:
    either [x] sits in the uphill prefix and can still complete any
    valley-free continuation, or the remaining suffix is pure downhill
    (equivalently, by walk reversal, pure uphill from the destination).
    The bound admits non-simple walks, so it over-approximates the simple
    paths BGP loop detection permits — which is the direction a sound
    bound must err. *)

val exposure : src:closure -> dst:closure -> Asn.Set.t
(** All ASes satisfying {!on_some_path} — the static exposure bound of a
    (client, guard-origin) pair. Empty iff no valley-free walk connects
    the endpoints. Symmetric: [exposure ~src ~dst = exposure ~src:dst
    ~dst:src] (walk reversal preserves valley-freedom). *)

val reachable_count : closure -> int
(** [Asn.Set.cardinal] of the closure, without building the set. *)

val fold : (Asn.t -> 'a -> 'a) -> closure -> 'a -> 'a
(** Fold over every reachable AS, in increasing index order. *)
