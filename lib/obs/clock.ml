let default = Unix.gettimeofday

let source = Atomic.make default

let now () = (Atomic.get source) ()

let set_source f = Atomic.set source f

let reset () = Atomic.set source default

let with_source f g =
  let old = Atomic.exchange source f in
  Fun.protect ~finally:(fun () -> Atomic.set source old) g
