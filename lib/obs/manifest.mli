(** The declared metric schema.

    Every metric the pipeline registers at module initialization is
    listed here by name; the QS306 lint rule cross-checks this list
    against the live registry in both directions (a registered name
    missing from the manifest, or a manifest name never registered, is
    an error — as is a name registered twice).  Keeping the schema as
    data makes the exports' key set reviewable in one place and lets the
    golden-trace test pin it. *)

val names : string list
(** Sorted. Names under ["test."] never appear here — that prefix is
    reserved for test suites and exempt from QS306. *)
