(** Deterministic report rendering for the registry and the tracer.

    The JSON export is the contract the golden-trace test pins: one
    metric per line, keys sorted, counts exact, and every timing-derived
    number confined to the ["timing"] object and the ["buckets"] array of
    a histogram so a masking diff can erase exactly those. *)

val metrics_json : Format.formatter -> Metrics.sample list -> unit
(** Render a snapshot as a [qs-obs/1] JSON document:
    {v
    { "schema": "qs-obs/1",
      "counters": { "name": n, ... },
      "gauges": { "name": x|null, ... },
      "histograms": {
        "name": { "count": n,
                  "timing": {"sum":..,"min":..,"max":..,"p50":..,"p90":..,"p99":..},
                  "buckets": [[bound, n], ..., ["+inf", n]] }, ... } }
    v} *)

val metrics_json_string : Metrics.sample list -> string

val metrics_text : Format.formatter -> Metrics.sample list -> unit
(** Human-oriented one-metric-per-line rendering for [--metrics]. *)

val trace_json : Format.formatter -> Span.t list -> unit
(** Render drained spans as a JSON array of
    [{"name","path","depth","domain","start_s","dur_s","alloc_bytes"}]. *)
