type t = {
  name : string;
  path : string;
  depth : int;
  domain : int;
  start : float;
  dur : float;
  alloc_bytes : float;
}

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

(* Per-domain recording state: the live nesting stack plus the finished
   spans, newest first.  States register themselves on [all] (under
   [mu]) the first time a domain records, so [drain] can reach every
   domain's buffer. *)
type dstate = {
  dom : int;
  mutable stack : string list;
  mutable out : t list;
}

let mu = Mutex.create ()
let all : dstate list ref = ref []

let m_spans = Metrics.counter ~help:"spans recorded" "obs.spans"

let dls : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let d =
        { dom = (Domain.self () :> int); stack = []; out = [] }
      in
      Mutex.lock mu;
      all := d :: !all;
      Mutex.unlock mu;
      d)

let with_ ~name f =
  if not (Atomic.get on) then f ()
  else begin
    let d = Domain.DLS.get dls in
    let path =
      match d.stack with [] -> name | top :: _ -> top ^ "/" ^ name
    in
    d.stack <- path :: d.stack;
    let depth = List.length d.stack in
    let start = Clock.now () in
    let a0 = Gc.allocated_bytes () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Clock.now () -. start in
        let alloc_bytes = Gc.allocated_bytes () -. a0 in
        d.stack <- List.tl d.stack;
        d.out <-
          { name; path; depth; domain = d.dom; start; dur; alloc_bytes }
          :: d.out;
        Metrics.incr m_spans)
      f
  end

let drain () =
  Mutex.lock mu;
  let states = List.rev !all in
  Mutex.unlock mu;
  List.concat_map
    (fun d ->
      let spans = List.rev d.out in
      d.out <- [];
      spans)
    states

let reset () =
  Mutex.lock mu;
  List.iter (fun d -> d.out <- []) !all;
  Mutex.unlock mu
