(** The process wall-clock shim.

    Every wall-clock read in the repository flows through {!now} — the
    hygiene gate ([tools/check_mli.sh]) bans direct [Unix.gettimeofday] /
    [Sys.time] outside [lib/obs/] — so tests can substitute a
    deterministic source and make every timing field reproducible (the
    golden-trace test freezes the clock at 0, which turns all span
    durations and pool busy/wait times into exact zeros). *)

val now : unit -> float
(** Seconds since the epoch, from the current source (default:
    [Unix.gettimeofday]). *)

val set_source : (unit -> float) -> unit
(** Replace the clock source process-wide. Affects every domain. *)

val reset : unit -> unit
(** Restore the real wall clock. *)

val with_source : (unit -> float) -> (unit -> 'a) -> 'a
(** [with_source f g] runs [g] with [f] installed as the clock source and
    restores the previous source afterwards, whatever [g] does. *)
