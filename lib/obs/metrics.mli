(** The process-wide metrics registry.

    Every subsystem registers its telemetry here — monotonic counters,
    gauges, and fixed-bucket histograms — under a stable dotted name
    ([Manifest.names] is the declared schema; the QS306 lint rule checks
    the live registry against it). Handles are registered once, at module
    initialization, and written on the hot path under two guarantees:

    {b Domain safety.} Counter increments and histogram observations land
    in a per-domain shard (one flat write, no locks — the registry keeps
    one shard per (metric, domain) pair, created lazily on a domain's
    first write, mirroring the one-workspace-per-domain contract of
    [Qs_exec]). Shards are merged at read time by {!snapshot}; merging
    sums counts bucket-wise, so it is commutative and conserves every
    observation, whatever the worker count was.

    {b Determinism.} Merged counter values depend only on what the
    program computed, never on scheduling. Timing-derived fields
    (histogram sums, minima, maxima, quantiles) are isolated in dedicated
    fields of {!hist_view} so exports can mask them; with a frozen
    {!Clock} they are exact zeros.

    Registration is idempotent: registering an already-registered name
    with the same kind returns the existing handle (and bumps the
    registration count that QS306 inspects); a kind mismatch raises
    [Invalid_argument]. Names under ["test."] are reserved for test
    suites and ignored by the manifest check. *)

type counter
type gauge
type histogram

(** {1 Registration} *)

val counter : ?help:string -> string -> counter
(** [counter name] registers (or retrieves) the monotonic counter
    [name]. *)

val gauge : ?help:string -> string -> gauge
(** [gauge name] registers a last-write-wins instantaneous value. *)

val histogram : ?buckets:float array -> ?help:string -> string -> histogram
(** [histogram ~buckets name] registers a fixed-bucket histogram. An
    observation [v] lands in the first bucket whose upper bound is [>= v],
    or in the implicit overflow bucket. [buckets] must be strictly
    increasing and non-empty (default: nine decades from 1e-6 to 100,
    suitable for seconds).
    @raise Invalid_argument on an unsorted or empty bucket array, or if
    [name] is already registered with different buckets. *)

(** {1 Hot-path writes} *)

val incr : counter -> unit
val add : counter -> int -> unit
(** @raise Invalid_argument if [n < 0] — counters are monotonic. *)

val set : gauge -> float -> unit

val observe : histogram -> float -> unit

val set_enabled : bool -> unit
(** [set_enabled false] turns every write into a no-op — the switch the
    bench overhead ablation flips. Reads are unaffected. Default: on. *)

val enabled : unit -> bool

(** {1 Reading} *)

type hist_view = {
  count : int;            (** observations (exact, scheduling-independent) *)
  sum : float;            (** timing-derived when the histogram is one *)
  min : float;            (** 0 when [count = 0] *)
  max : float;            (** 0 when [count = 0] *)
  buckets : (float * int) array;
      (** (upper bound, count) per bucket; the last bound is [infinity] *)
}

type value =
  | Counter_v of int
  | Gauge_v of float option   (** [None] until the first {!set} *)
  | Hist_v of hist_view

type sample = { name : string; help : string; value : value }

val snapshot : unit -> sample list
(** Every registered metric with its shards merged, sorted by name —
    the stable key order of the exports. *)

val value : string -> value option
(** One metric by name, merged. *)

val quantile : hist_view -> float -> float
(** [quantile h q] is the upper bound of the first bucket at which the
    cumulative count reaches [q * count] (the overflow bucket reads as
    the observed maximum). Monotone in [q]; [0.] on an empty histogram.
    @raise Invalid_argument unless [0 <= q <= 1]. *)

val registrations : unit -> (string * int) list
(** [(name, times registered)] for every metric, sorted by name — the
    QS306 rule's input. A count above 1 means two subsystems claimed the
    same name. *)

val reset_all : unit -> unit
(** Zero every shard and unset every gauge (registrations survive). Test
    and golden-trace plumbing: callers must ensure no concurrent
    writers. *)
