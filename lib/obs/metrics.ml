(* One registry cell per metric name; one shard per (cell, domain).
   Hot-path writes touch only the writing domain's shard — plain mutable
   fields, no locks — which is safe because a shard is only ever written
   by the domain that created it.  The registry mutex [mu] guards the
   name table and the shard lists, both of which change only on a
   domain's first write to a cell and at read time. *)

type kind = Counter | Gauge | Histogram

type shard = {
  mutable s_count : int;
  mutable s_sum : float;
  mutable s_min : float;
  mutable s_max : float;
  s_buckets : int array; (* length = Array.length bounds + 1 (overflow) *)
}

type cell = {
  id : int;
  name : string;
  help : string;
  kind : kind;
  bounds : float array; (* [||] unless kind = Histogram *)
  mutable shards : shard list;
  mutable g_value : float option;
  mutable regs : int;
}

type counter = cell
type gauge = cell
type histogram = cell

let mu = Mutex.create ()
let table : (string, cell) Hashtbl.t = Hashtbl.create 64
let next_id = ref 0
let on = Atomic.make true

let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10.; 100. |]

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let register ~kind ~bounds ?(help = "") name =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some c ->
          if c.kind <> kind then
            invalid_arg
              (Printf.sprintf "Qs_obs.Metrics: %s already registered as a %s"
                 name (kind_name c.kind));
          if kind = Histogram && c.bounds <> bounds then
            invalid_arg
              (Printf.sprintf
                 "Qs_obs.Metrics: %s already registered with other buckets"
                 name);
          c.regs <- c.regs + 1;
          c
      | None ->
          let id = !next_id in
          incr next_id;
          let c =
            { id; name; help; kind; bounds; shards = []; g_value = None;
              regs = 1 }
          in
          Hashtbl.add table name c;
          c)

let counter ?help name = register ~kind:Counter ~bounds:[||] ?help name
let gauge ?help name = register ~kind:Gauge ~bounds:[||] ?help name

let histogram ?(buckets = default_buckets) ?help name =
  if Array.length buckets = 0 then
    invalid_arg "Qs_obs.Metrics.histogram: empty bucket array";
  for i = 1 to Array.length buckets - 1 do
    if not (buckets.(i - 1) < buckets.(i)) then
      invalid_arg "Qs_obs.Metrics.histogram: buckets not strictly increasing"
  done;
  register ~kind:Histogram ~bounds:(Array.copy buckets) ?help name

(* Per-domain shard lookup, keyed by cell id.  The hashtable lives in
   domain-local storage, so [Hashtbl.find_opt] needs no lock; only the
   miss path (this domain's first write to the cell) takes [mu] to
   publish the new shard on the cell's merge list. *)
let dls : (int, shard) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let shard_of c =
  let local = Domain.DLS.get dls in
  match Hashtbl.find_opt local c.id with
  | Some s -> s
  | None ->
      let s =
        { s_count = 0; s_sum = 0.; s_min = infinity; s_max = neg_infinity;
          s_buckets = Array.make (Array.length c.bounds + 1) 0 }
      in
      Hashtbl.add local c.id s;
      locked (fun () -> c.shards <- s :: c.shards);
      s

let incr c =
  if Atomic.get on then begin
    let s = shard_of c in
    s.s_count <- s.s_count + 1
  end

let add c n =
  if n < 0 then invalid_arg "Qs_obs.Metrics.add: negative increment";
  if Atomic.get on && n > 0 then begin
    let s = shard_of c in
    s.s_count <- s.s_count + n
  end

let set c v = if Atomic.get on then locked (fun () -> c.g_value <- Some v)

let observe c v =
  if Atomic.get on then begin
    let s = shard_of c in
    s.s_count <- s.s_count + 1;
    s.s_sum <- s.s_sum +. v;
    if v < s.s_min then s.s_min <- v;
    if v > s.s_max then s.s_max <- v;
    let n = Array.length c.bounds in
    let i = ref 0 in
    while !i < n && v > c.bounds.(!i) do i := !i + 1 done;
    s.s_buckets.(!i) <- s.s_buckets.(!i) + 1
  end

type hist_view = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) array;
}

type value =
  | Counter_v of int
  | Gauge_v of float option
  | Hist_v of hist_view

type sample = { name : string; help : string; value : value }

let merged_locked c =
  match c.kind with
  | Counter ->
      Counter_v (List.fold_left (fun acc s -> acc + s.s_count) 0 c.shards)
  | Gauge -> Gauge_v c.g_value
  | Histogram ->
      let n = Array.length c.bounds in
      let counts = Array.make (n + 1) 0 in
      let count = ref 0 and sum = ref 0. in
      let mn = ref infinity and mx = ref neg_infinity in
      List.iter
        (fun s ->
          count := !count + s.s_count;
          sum := !sum +. s.s_sum;
          if s.s_min < !mn then mn := s.s_min;
          if s.s_max > !mx then mx := s.s_max;
          Array.iteri (fun i k -> counts.(i) <- counts.(i) + k) s.s_buckets)
        c.shards;
      let buckets =
        Array.init (n + 1) (fun i ->
            ((if i < n then c.bounds.(i) else infinity), counts.(i)))
      in
      let empty = !count = 0 in
      Hist_v
        { count = !count; sum = !sum;
          min = (if empty then 0. else !mn);
          max = (if empty then 0. else !mx);
          buckets }

let snapshot () =
  locked (fun () ->
      Hashtbl.fold
        (fun _ (c : cell) acc ->
          { name = c.name; help = c.help; value = merged_locked c } :: acc)
        table []
      |> List.sort (fun a b -> String.compare a.name b.name))

let value name =
  locked (fun () ->
      Option.map merged_locked (Hashtbl.find_opt table name))

let quantile h q =
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Qs_obs.Metrics.quantile: q outside [0, 1]";
  if h.count = 0 then 0.
  else begin
    let need = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int h.count))) in
    let n = Array.length h.buckets in
    let acc = ref 0 and res = ref h.max in
    (try
       for i = 0 to n - 1 do
         let bound, k = h.buckets.(i) in
         acc := !acc + k;
         if !acc >= need then begin
           res := (if i = n - 1 then h.max else bound);
           raise Exit
         end
       done
     with Exit -> ());
    !res
  end

let registrations () =
  locked (fun () ->
      Hashtbl.fold (fun name c acc -> (name, c.regs) :: acc) table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let reset_all () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ c ->
          c.g_value <- None;
          List.iter
            (fun s ->
              s.s_count <- 0;
              s.s_sum <- 0.;
              s.s_min <- infinity;
              s.s_max <- neg_infinity;
              Array.fill s.s_buckets 0 (Array.length s.s_buckets) 0)
            c.shards)
        table)
