(** Lightweight span tracing.

    A span is one timed region of the pipeline — a [Dynamics.run], a
    [Path_changes.compute] sweep — recorded with its wall-clock duration
    (via {!Clock}, so a frozen clock yields exact-zero durations), the
    bytes allocated inside it ([Gc.allocated_bytes] delta), and its
    position in the per-domain nesting stack ([path] is the
    ["parent/child"] chain, [depth] its length).

    Tracing is {b off by default} — [with_ ~name f] is a single atomic
    load away from being [f ()] — and is switched on by the [--trace]
    flag.  Spans accumulate in per-domain buffers (no cross-domain
    contention on the hot path) and are collected by {!drain}. *)

type t = {
  name : string;        (** leaf name as passed to [with_] *)
  path : string;        (** ["outer/inner"] chain within this domain *)
  depth : int;          (** nesting depth; 1 for a root span *)
  domain : int;         (** recording domain's id *)
  start : float;        (** {!Clock.now} at entry *)
  dur : float;          (** wall-clock seconds inside the span *)
  alloc_bytes : float;  (** [Gc.allocated_bytes] delta *)
}

val with_ : name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f] inside a span named [name].  The span is
    recorded even when [f] raises; the exception is re-raised.  When
    tracing is disabled this is just [f ()]. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val drain : unit -> t list
(** All spans recorded since the last [drain]/[reset], in domain
    registration order and, within a domain, completion order (so a
    parent follows its children).  Clears the buffers. *)

val reset : unit -> unit
(** Discard buffered spans without reading them. *)
