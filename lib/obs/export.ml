let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string ppf s = Format.fprintf ppf "\"%s\"" (json_escape s)

(* %.17g survives a float round-trip; plain integers print bare. *)
let json_float ppf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Format.fprintf ppf "%.0f" x
  else Format.fprintf ppf "%.17g" x

let partition samples =
  List.fold_left
    (fun (cs, gs, hs) (s : Metrics.sample) ->
      match s.value with
      | Metrics.Counter_v n -> ((s.name, n) :: cs, gs, hs)
      | Metrics.Gauge_v v -> (cs, (s.name, v) :: gs, hs)
      | Metrics.Hist_v h -> (cs, gs, (s.name, h) :: hs))
    ([], [], []) samples
  |> fun (cs, gs, hs) -> (List.rev cs, List.rev gs, List.rev hs)

let pp_fields pp ppf xs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@\n")
    pp ppf xs

let pp_hist ppf (h : Metrics.hist_view) =
  Format.fprintf ppf
    "{\"count\": %d, \"timing\": {\"sum\": %a, \"min\": %a, \"max\": %a, \
     \"p50\": %a, \"p90\": %a, \"p99\": %a}, \"buckets\": [%a]}"
    h.count json_float h.sum json_float h.min json_float h.max json_float
    (Metrics.quantile h 0.5) json_float
    (Metrics.quantile h 0.9) json_float
    (Metrics.quantile h 0.99)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (bound, n) ->
         if bound = infinity then Format.fprintf ppf "[\"+inf\", %d]" n
         else Format.fprintf ppf "[%a, %d]" json_float bound n))
    (Array.to_list h.buckets)

let metrics_json ppf samples =
  let cs, gs, hs = partition samples in
  Format.fprintf ppf "{@\n\"schema\": \"qs-obs/1\",@\n";
  Format.fprintf ppf "\"counters\": {@\n%a@\n},@\n"
    (pp_fields (fun ppf (name, n) ->
         Format.fprintf ppf "  %a: %d" json_string name n))
    cs;
  Format.fprintf ppf "\"gauges\": {@\n%a@\n},@\n"
    (pp_fields (fun ppf (name, v) ->
         match v with
         | None -> Format.fprintf ppf "  %a: null" json_string name
         | Some x -> Format.fprintf ppf "  %a: %a" json_string name json_float x))
    gs;
  Format.fprintf ppf "\"histograms\": {@\n%a@\n}@\n}@."
    (pp_fields (fun ppf (name, h) ->
         Format.fprintf ppf "  %a: %a" json_string name pp_hist h))
    hs

let metrics_json_string samples =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  metrics_json ppf samples;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let metrics_text ppf samples =
  List.iter
    (fun (s : Metrics.sample) ->
      match s.value with
      | Metrics.Counter_v n -> Format.fprintf ppf "%-32s %d@." s.name n
      | Metrics.Gauge_v None -> Format.fprintf ppf "%-32s -@." s.name
      | Metrics.Gauge_v (Some x) -> Format.fprintf ppf "%-32s %g@." s.name x
      | Metrics.Hist_v h ->
          Format.fprintf ppf
            "%-32s count=%d sum=%.6f min=%.6f max=%.6f p50=%.6f p90=%.6f \
             p99=%.6f@."
            s.name h.count h.sum h.min h.max
            (Metrics.quantile h 0.5) (Metrics.quantile h 0.9)
            (Metrics.quantile h 0.99))
    samples

let trace_json ppf (spans : Span.t list) =
  Format.fprintf ppf "[@\n%a@\n]@."
    (pp_fields (fun ppf (s : Span.t) ->
         Format.fprintf ppf
           "  {\"name\": %a, \"path\": %a, \"depth\": %d, \"domain\": %d, \
            \"start_s\": %a, \"dur_s\": %a, \"alloc_bytes\": %a}"
           json_string s.name json_string s.path s.depth s.domain json_float
           s.start json_float s.dur json_float s.alloc_bytes))
    spans
