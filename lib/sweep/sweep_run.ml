(* JSON rendering, local and deliberately boring: every byte of a cell's
   artifacts must be a pure function of its vars, so no timing, no worker
   count, no hashtable order ever reaches a buffer here. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ json_escape s ^ "\""

(* Integers print bare, everything else round-trips; non-finite values
   (F3L's max ratio is +inf on a quiet session) become [null] — JSON has
   no spelling for them and a sentinel number would lie. *)
let jfloat x =
  if not (Float.is_finite x) then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let jobj fields =
  if fields = [] then "{}"
  else
    "{\n"
    ^ String.concat ",\n"
        (List.map (fun (k, v) -> "  " ^ jstr k ^ ": " ^ v) fields)
    ^ "\n}"

(* Nested object rendered for embedding at one indent level. *)
let jobj_inline fields =
  if fields = [] then "{}"
  else
    "{"
    ^ String.concat ", " (List.map (fun (k, v) -> jstr k ^ ": " ^ v) fields)
    ^ "}"

type headline = {
  updates : int;
  path_changes : int;
  f3l_cases : int;
  frac_above_one : float;
  f3r_cases : int;
  frac_at_least_2 : float;
  max_extras : int;
  compromise : (float * float) option;
  m2_compromised : float option;
}

type cell_result = {
  cell : Sweep.cell;
  slug : string;
  fingerprint : string;
  headline : headline;
  summary_json : string;
  metrics_json : string;
}

type t = {
  entry : Sweep.entry;
  results : cell_result list;
  index_json : string;
}

let m_runs = Metrics.counter ~help:"sweep matrices executed" "sweep.runs"
let m_cells = Metrics.counter ~help:"sweep cells executed" "sweep.cells"

let m_cell_seconds =
  Metrics.histogram ~help:"wall-clock per sweep cell" "sweep.cell_seconds"

let vars_fields (v : Sweep.vars) =
  [ ("size", jstr (Scenario.size_to_string v.Sweep.size));
    ("seed", string_of_int v.Sweep.seed);
    ("days", jfloat v.Sweep.days);
    ("churn", jstr (Sweep.churn_to_string v.Sweep.churn));
    ("consensus", jstr (Sweep.consensus_to_string v.Sweep.consensus));
    ("cache", string_of_int v.Sweep.cache);
    ("delta", string_of_int v.Sweep.delta);
    ("obs", if v.Sweep.obs then "true" else "false");
    ("adversary", jfloat v.Sweep.adversary);
    ("guards", jstr (Sweep.guards_to_string v.Sweep.guards));
    ("threshold", jfloat v.Sweep.threshold) ]

let guards_l = function
  | Sweep.No_guards -> 1
  | Sweep.Guards { n; _ } -> n

let summary_json_of ~entry ~slug ~fingerprint (c : Sweep.cell)
    (m : Measurement.t) (f3l : Path_changes.t) (f3r : As_exposure.t)
    compromise m2 =
  let v = c.Sweep.vars in
  let d = m.Measurement.dyn_stats in
  jobj
    [ ("schema", jstr "qs-sweep/1");
      ("entry", jstr entry);
      ("cell", jstr slug);
      ("index", string_of_int c.Sweep.index);
      ("fingerprint", jstr fingerprint);
      ("vars", jobj_inline (vars_fields v));
      ( "bindings",
        jobj_inline (List.map (fun (k, x) -> (k, jstr x)) c.Sweep.bindings) );
      ( "dataset",
        jobj_inline
          [ ("ases", string_of_int (As_graph.num_ases m.Measurement.scenario.Scenario.graph));
            ("links", string_of_int (As_graph.num_links m.Measurement.scenario.Scenario.graph));
            ("prefixes", string_of_int (Addressing.count m.Measurement.scenario.Scenario.addressing));
            ("relays", string_of_int (Array.length m.Measurement.scenario.Scenario.consensus.Consensus.relays));
            ("sessions", string_of_int m.Measurement.n_sessions) ] );
      ( "dynamics",
        jobj_inline
          [ ("churn_events", string_of_int d.Dynamics.churn_events);
            ("updates", string_of_int d.Dynamics.updates_emitted);
            ("announces", string_of_int d.Dynamics.announces);
            ("withdraws", string_of_int d.Dynamics.withdraws);
            ("full_recomputations", string_of_int d.Dynamics.full_recomputations);
            ("delta_steps", string_of_int d.Dynamics.delta_steps);
            ("cache_hits", string_of_int d.Dynamics.cache_hits);
            ("cache_misses", string_of_int d.Dynamics.cache_misses) ] );
      ( "f3l",
        jobj_inline
          [ ("cases", string_of_int (List.length f3l.Path_changes.ratios));
            ("frac_above_one", jfloat f3l.Path_changes.frac_above_one);
            ("max_ratio", jfloat f3l.Path_changes.max_ratio) ] );
      ( "f3r",
        jobj_inline
          [ ("threshold", jfloat f3r.As_exposure.threshold);
            ("cases", string_of_int (List.length f3r.As_exposure.extras));
            ("frac_at_least_2", jfloat f3r.As_exposure.frac_at_least_2);
            ("frac_above_5", jfloat f3r.As_exposure.frac_above_5);
            ("max_extras", string_of_int f3r.As_exposure.max_extras) ] );
      ( "compromise",
        match compromise with
        | None -> "null"
        | Some (static, dynamic) ->
            jobj_inline
              [ ("f", jfloat v.Sweep.adversary);
                ("l", string_of_int (guards_l v.Sweep.guards));
                ("static", jfloat static);
                ("dynamic", jfloat dynamic) ] );
      ( "m2",
        match m2 with
        | None -> "null"
        | Some (o : Long_term.outcome) ->
            jobj_inline
              [ ("consensus", jstr (Sweep.consensus_to_string v.Sweep.consensus));
                ("clients", string_of_int o.Long_term.clients);
                ("compromised_fraction",
                 jfloat o.Long_term.compromised_fraction);
                ("median_day",
                 (match o.Long_term.median_day with
                  | None -> "null"
                  | Some d -> string_of_int d));
                ("mean_exposed_per_day",
                 jfloat o.Long_term.mean_exposed_per_day) ] ) ]

(* The cell's qs-obs/1 export is rebuilt by hand from the cell's own
   deterministic numbers rather than snapshotted from the process-wide
   registry: the registry's shards see every cell a worker domain ran, so
   a snapshot would depend on scheduling and [--jobs]. Hand-built samples
   reuse the exact export renderer, so downstream tooling sees one
   schema. *)
let cell_samples (m : Measurement.t) (f3l : Path_changes.t)
    (f3r : As_exposure.t) total_changes m2 =
  let d = m.Measurement.dyn_stats in
  let c name value : Metrics.sample =
    { Metrics.name = "sweep.cell." ^ name;
      help = "per-cell deterministic count";
      value = Metrics.Counter_v value }
  in
  let g name value : Metrics.sample =
    { Metrics.name = "sweep.cell." ^ name;
      help = "per-cell deterministic statistic";
      value =
        (if Float.is_finite value then Metrics.Gauge_v (Some value)
         else Metrics.Gauge_v None) }
  in
  List.sort
    (fun (a : Metrics.sample) b -> String.compare a.Metrics.name b.Metrics.name)
    ([ c "updates" d.Dynamics.updates_emitted;
      c "announces" d.Dynamics.announces;
      c "withdraws" d.Dynamics.withdraws;
      c "churn_events" d.Dynamics.churn_events;
      c "full_recomputations" d.Dynamics.full_recomputations;
      c "delta_steps" d.Dynamics.delta_steps;
      c "cache_hits" d.Dynamics.cache_hits;
      c "cache_misses" d.Dynamics.cache_misses;
      c "path_changes" total_changes;
      c "cases_f3l" (List.length f3l.Path_changes.ratios);
      c "cases_f3r" (List.length f3r.As_exposure.extras);
      c "max_extras" f3r.As_exposure.max_extras;
      g "frac_above_one" f3l.Path_changes.frac_above_one;
      g "max_ratio" f3l.Path_changes.max_ratio;
      g "frac_at_least_2" f3r.As_exposure.frac_at_least_2;
      g "frac_above_5" f3r.As_exposure.frac_above_5 ]
     @ (match m2 with
        | None -> []
        | Some (o : Long_term.outcome) ->
            [ c "m2_clients" o.Long_term.clients;
              g "m2_compromised_fraction" o.Long_term.compromised_fraction;
              g "m2_mean_exposed_per_day" o.Long_term.mean_exposed_per_day ]))

let run_cell entry_name (c : Sweep.cell) =
  let v = c.Sweep.vars in
  let t0 = Clock.now () in
  let prev_enabled = Metrics.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled prev_enabled;
      Metrics.observe m_cell_seconds (Clock.now () -. t0))
  @@ fun () ->
  Metrics.set_enabled v.Sweep.obs;
  (* Intra-cell stages run on an inline jobs=1 pool: this function may
     itself be a task on the matrix pool, and submitting back into the
     pool you run on deadlocks by design. An inline pool spawns no
     domains, so results cannot depend on nesting depth. *)
  Pool.with_pool ~jobs:1 @@ fun inline ->
  let scenario = Scenario.build ~seed:v.Sweep.seed v.Sweep.size in
  let m = Measurement.run ~dynamics:(Sweep.dynamics v) scenario in
  let f3l = Path_changes.compute ~exec:inline m in
  let f3r = As_exposure.compute ~threshold:v.Sweep.threshold ~exec:inline m in
  let compromise =
    if v.Sweep.adversary > 0. then
      Some
        (Compromise.exposure_based ~f:v.Sweep.adversary
           ~l:(guards_l v.Sweep.guards) f3r)
    else None
  in
  (* The M2 long-term stage, gated on the consensus key: a small client
     cohort against the cell's adversary fraction, on the frozen snapshot
     or under living epochs. Deterministic in the cell vars: its RNG is
     the scenario's dedicated "sweep-m2" stream and the epoch sequence is
     a pure function of (scenario, params, horizon). *)
  let m2 =
    match v.Sweep.consensus with
    | Sweep.Frozen -> None
    | cm ->
        let n_guards, rotation_days, use_guards =
          match v.Sweep.guards with
          | Sweep.No_guards -> (1, max_int, false)
          | Sweep.Guards { n; rotation_days } -> (n, rotation_days, true)
        in
        let config =
          { Long_term.default_config with
            Long_term.n_clients = 8;
            horizon_days = 30;
            f = (if v.Sweep.adversary > 0. then v.Sweep.adversary else 0.05);
            n_guards;
            rotation_days;
            use_guards }
        in
        let living =
          match cm with
          | Sweep.Frozen | Sweep.Frozen_m2 -> None
          | Sweep.Live_hourly ->
              Some
                (Long_term.living_consensus
                   ~horizon_days:config.Long_term.horizon_days scenario)
          | Sweep.Live_heavy ->
              Some
                (Long_term.living_consensus
                   ~params:Consensus_dynamics.heavy_params
                   ~horizon_days:config.Long_term.horizon_days scenario)
        in
        Some
          (Long_term.run
             ~rng:(Scenario.rng_for scenario "sweep-m2")
             ~config ?living ~exec:inline scenario)
  in
  let fingerprint =
    Scenario.fingerprint ~exec:inline
      ~params:(Sweep.canonical_bindings v) scenario
  in
  let slug = Sweep.slug c in
  let total_changes =
    List.fold_left
      (fun acc cell -> acc + Measurement.changes_of cell)
      0 m.Measurement.cells
  in
  let headline =
    { updates = m.Measurement.dyn_stats.Dynamics.updates_emitted;
      path_changes = total_changes;
      f3l_cases = List.length f3l.Path_changes.ratios;
      frac_above_one = f3l.Path_changes.frac_above_one;
      f3r_cases = List.length f3r.As_exposure.extras;
      frac_at_least_2 = f3r.As_exposure.frac_at_least_2;
      max_extras = f3r.As_exposure.max_extras;
      compromise;
      m2_compromised =
        Option.map (fun o -> o.Long_term.compromised_fraction) m2 }
  in
  { cell = c;
    slug;
    fingerprint;
    headline;
    summary_json =
      summary_json_of ~entry:entry_name ~slug ~fingerprint c m f3l f3r
        compromise m2;
    metrics_json =
      Export.metrics_json_string (cell_samples m f3l f3r total_changes m2) }

let index_json_of (entry : Sweep.entry) results =
  jobj
    [ ("schema", jstr "qs-sweep-index/1");
      ("entry", jstr entry.Sweep.name);
      ("doc", jstr entry.Sweep.doc);
      ( "axes",
        jobj_inline
          (List.map
             (fun (k, values) ->
               (k, "[" ^ String.concat ", " (List.map jstr values) ^ "]"))
             entry.Sweep.axes) );
      ( "cells",
        "[\n"
        ^ String.concat ",\n"
            (List.map
               (fun r ->
                 "    "
                 ^ jobj_inline
                     [ ("index", string_of_int r.cell.Sweep.index);
                       ("slug", jstr r.slug);
                       ("fingerprint", jstr r.fingerprint);
                       ( "bindings",
                         jobj_inline
                           (List.map
                              (fun (k, x) -> (k, jstr x))
                              r.cell.Sweep.bindings) ) ])
               results)
        ^ "\n  ]" ) ]

let run ?(registry = Sweep.builtin) ?exec entry =
  match Sweep.cells ~registry entry with
  | Error invalids -> Error invalids
  | Ok cells ->
      Metrics.incr m_runs;
      Metrics.add m_cells (List.length cells);
      let pool = match exec with Some p -> p | None -> Pool.default () in
      (* [Metrics.set_enabled] is process-global, so a matrix with an
         obs=off cell must not run cells concurrently — one cell's toggle
         would silence its neighbours' instrumentation mid-run. Results
         are vars-pure either way; only the wall-clock differs. *)
      let serial = List.exists (fun c -> not c.Sweep.vars.Sweep.obs) cells in
      let results =
        if serial then List.map (run_cell entry.Sweep.name) cells
        else Pool.map_list pool (run_cell entry.Sweep.name) cells
      in
      Ok { entry; results; index_json = index_json_of entry results }

let print_table ppf t =
  let open Format in
  fprintf ppf "@[<v>matrix %s: %d cell%s@,"
    t.entry.Sweep.name (List.length t.results)
    (if List.length t.results = 1 then "" else "s");
  fprintf ppf "%-42s %9s %8s %8s %8s %6s %10s %8s@,"
    "cell" "updates" "changes" "f3l>1" "f3r>=2" "max" "compromise" "m2";
  List.iter
    (fun r ->
      let h = r.headline in
      fprintf ppf "%-42s %9d %8d %8.3f %8.3f %6d %10s %8s@,"
        r.slug h.updates h.path_changes h.frac_above_one h.frac_at_least_2
        h.max_extras
        (match h.compromise with
         | None -> "-"
         | Some (_, dynamic) -> Printf.sprintf "%.4f" dynamic)
        (match h.m2_compromised with
         | None -> "-"
         | Some f -> Printf.sprintf "%.4f" f))
    t.results;
  fprintf ppf "@]"

let table_string t =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  print_table ppf t;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then
    begin
      mkdir_p (Filename.dirname dir);
      try Sys.mkdir dir 0o755 with Sys_error _ -> ()
    end

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write ~dir t =
  mkdir_p dir;
  let written = ref [] in
  let emit path contents =
    write_file path contents;
    written := path :: !written
  in
  emit (Filename.concat dir "index.json") (t.index_json ^ "\n");
  emit (Filename.concat dir "table.txt") (table_string t ^ "\n");
  List.iter
    (fun r ->
      let cell_dir = Filename.concat dir r.slug in
      mkdir_p cell_dir;
      emit (Filename.concat cell_dir "summary.json") (r.summary_json ^ "\n");
      emit (Filename.concat cell_dir "metrics.json") r.metrics_json;
      emit (Filename.concat cell_dir "fingerprint") (r.fingerprint ^ "\n"))
    t.results;
  List.rev !written
