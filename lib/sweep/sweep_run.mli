(** Executing an expanded sweep matrix and rendering its results.

    Every cell builds its own scenario, runs the §4 measurement pipeline
    under the cell's dynamics, computes the F3L/F3R statistics (and the
    §3.1 compromise numbers when the cell declares an adversary), and
    renders three artifacts: a [qs-sweep/1] [summary.json], a [qs-obs/1]
    metrics export built from the cell's own deterministic counts, and
    the scenario fingerprint over the cell's canonical bindings.

    Determinism contract: every rendered byte depends only on the cell's
    {!Sweep.vars}. Cells run as tasks on the supplied pool with a
    submission-order reduction, intra-cell parallel stages run on inline
    [jobs = 1] pools, and no artifact embeds a timing or a worker count —
    so a matrix's results directory is byte-identical across reruns and
    across [--jobs] settings. The one exception forced by a global knob:
    a matrix containing an [obs = off] cell runs its cells sequentially,
    because {!Metrics.set_enabled} is process-wide (the outputs are
    unchanged, only the wall-clock is). *)

type headline = {
  updates : int;            (** post-emission update count of the run *)
  path_changes : int;       (** total path changes across cells *)
  f3l_cases : int;
  frac_above_one : float;
  f3r_cases : int;
  frac_at_least_2 : float;
  max_extras : int;
  compromise : (float * float) option;
      (** (static, dynamic) mean compromise probability, when the cell
          declares an adversary fraction > 0 *)
  m2_compromised : float option;
      (** M2 compromised-client fraction, when the cell's [consensus]
          key requests the long-term stage (anything but [frozen]) *)
}

type cell_result = {
  cell : Sweep.cell;
  slug : string;
  fingerprint : string;
  headline : headline;
  summary_json : string;     (** the cell's [summary.json] body *)
  metrics_json : string;     (** the cell's [qs-obs/1] export body *)
}

type t = {
  entry : Sweep.entry;
  results : cell_result list;  (** in row-major cell order *)
  index_json : string;         (** the matrix-level [index.json] body *)
}

val run :
  ?registry:Sweep.entry list ->
  ?exec:Pool.t ->
  Sweep.entry ->
  (t, Sweep.invalid list) result
(** Expand and run every cell. Fails with the {!Sweep.validate} findings
    without running anything if the entry is invalid. *)

val write : dir:string -> t -> string list
(** Materialize the results directory:
    [dir/index.json], [dir/table.txt], and per cell
    [dir/<slug>/{summary.json,metrics.json,fingerprint}]. Creates
    directories as needed, overwrites existing files. Returns the paths
    written, in writing order. *)

val print_table : Format.formatter -> t -> unit
(** The per-cell summary table ([table.txt] and the CLI's text output). *)

val table_string : t -> string
