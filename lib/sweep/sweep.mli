(** The declarative scenario registry behind [quicksand sweep].

    The paper's headline numbers are sweeps — exposure and compromise
    probability across topology, churn, adversary and guard-selection
    axes — and every point of such a sweep is a {e cell}: a fully-bound
    set of {!vars} naming one seeded scenario plus the process parameters
    of one measurement over it. A registry {!entry} declares a family of
    cells as data: a named overlay on a base entry plus a matrix of axis
    values, so "one more ablation" is a data change, never a code change
    (the run-workloads registry pattern).

    Everything here is static and deterministic: entries validate without
    building a single scenario ({!validate} is what the QS308 lint rule
    runs), matrices expand in a canonical row-major order, and a cell's
    identity is the scenario fingerprint over its canonical bindings —
    two cells that can diverge never share an identity, and two runs of
    one cell always do. *)

(** {1 Cell variables} *)

type churn =
  | Calm      (** quarter of the baseline churn rate, half the resets *)
  | Baseline  (** the size's stock dynamics configuration *)
  | Heavy     (** the churn-heavy day of the AB-cache/AB-delta ablations *)
  | Trace_pareto
      (** baseline plus trace-shaped session churn with Pareto up/down
          laws ({!Churn.pareto_day}) on the dedicated trace stream *)
  | Trace_lognormal
      (** as {!Trace_pareto} with log-normal laws
          ({!Churn.lognormal_day}) *)

(** Which consensus the M2 long-term stage of a cell runs against.
    [Frozen] skips the M2 stage entirely (the pre-existing behaviour);
    the other three run {!Long_term} — on the frozen snapshot or on a
    living {!Consensus_dynamics} epoch sequence. *)
type consensus =
  | Frozen      (** no M2 stage *)
  | Frozen_m2   (** M2 against the scenario's frozen snapshot *)
  | Live_hourly (** M2 under hourly epochs, default hazards *)
  | Live_heavy  (** M2 under hourly epochs, heavy arrival/departure *)

type guards =
  | No_guards  (** a fresh entry relay every day — pre-guard Tor *)
  | Guards of { n : int; rotation_days : int }
      (** [n] guards rotated every [rotation_days]; [max_int] = never *)

type vars = {
  size : Scenario.size;
  seed : int;
  days : float;       (** simulated measurement duration *)
  churn : churn;
  consensus : consensus;
  cache : int;        (** route-cache LRU capacity; 0 disables *)
  delta : int;        (** delta-state LRU capacity; 0 disables *)
  obs : bool;         (** Qs_obs instrumentation during the cell *)
  adversary : float;  (** fraction f of malicious ASes; 0 = no adversary *)
  guards : guards;
  threshold : float;  (** F3R contiguous-residency threshold, seconds *)
}

val default_vars : vars
(** Small scenario, seed 1, one simulated day, baseline churn, frozen
    consensus (no M2 stage), stock cache/delta capacities (512),
    instrumentation on, no adversary, 3 guards / 30 days, the paper's
    300 s exposure threshold. *)

val known_keys : (string * string) list
(** Every overlay/axis key with a one-line description — the vocabulary
    {!set} accepts and QS308 checks against. *)

val set : vars -> key:string -> value:string -> (vars, string) result
(** [set v ~key ~value] parses and range-checks one binding; [Error msg]
    names the problem (unknown key, parse failure, out of range). *)

val churn_to_string : churn -> string
val consensus_to_string : consensus -> string
val guards_to_string : guards -> string

val canonical_bindings : vars -> (string * string) list
(** The full variable set rendered canonically (every key, sorted, values
    normalized) — the [params] section {!Scenario.fingerprint} digests
    into the cell identity, and the duplicate-cell test of {!validate}.
    Seed and size are deliberately absent: the fingerprint's identity
    section already carries them. *)

val identity : vars -> string
(** Canonical one-line rendering of the {e complete} cell identity
    (seed and size included) — equal strings iff the cells would
    fingerprint identically. *)

val dynamics : vars -> Dynamics.config
(** The dynamics configuration a cell runs: the size's stock config with
    the duration, churn preset and cache/delta capacities applied. *)

(** {1 Registry entries} *)

type entry = {
  name : string;
  doc : string;
  base : string option;
      (** inherit another entry's resolved overlay (axes are {e not}
          inherited — a base contributes bindings only) *)
  overlay : (string * string) list;
      (** key/value bindings applied over the base, in order *)
  axes : (string * string list) list;
      (** the matrix: each axis is a key with the values it ranges over;
          cells are the cartesian product, expanded row-major with the
          last axis fastest *)
}

val builtin : entry list
(** The shipped registry: the ported AB-cache/AB-delta/AB-obs ablations,
    the paper's exposure matrix, the trace-churn day, the M2
    frozen-vs-living consensus pair, and the tiny CI matrix. *)

val find : entry list -> string -> entry option

(** {1 Validation and expansion} *)

type invalid = {
  entry : string;                  (** offending entry name *)
  problem : string;
      (** stable slug: ["duplicate-entry"], ["unknown-key"],
          ["bad-value"], ["empty-axis"], ["unreachable-base"],
          ["base-cycle"] or ["duplicate-cell"] *)
  detail : (string * string) list; (** structured context for reporters *)
  message : string;                (** human-readable description *)
}

val validate : ?registry:entry list -> entry -> invalid list
(** Static validation against [registry] (default {!builtin}, used to
    resolve [base] references): every overlay/axis key known and its
    value parseable and in range, axes non-empty, the base chain
    resolvable and acyclic, and the expanded matrix free of duplicate
    cell identities. Empty = the entry is runnable. *)

val validate_registry : entry list -> invalid list
(** {!validate} over every entry, plus duplicate-name detection — what
    the QS308 lint rule reports on. *)

type cell = {
  index : int;                       (** position in row-major order *)
  bindings : (string * string) list; (** this cell's axis bindings *)
  vars : vars;                       (** fully-resolved variables *)
}

val cells : ?registry:entry list -> entry -> (cell list, invalid list) result
(** Expand the entry's matrix into bound cells (base chain applied, then
    the overlay, then each axis combination). Fails with the {!validate}
    findings if the entry is invalid. *)

val slug : cell -> string
(** The cell's results-directory name: ["cell-007-seed=2,churn=heavy"] —
    index plus sanitized bindings, unique within an entry and stable
    across runs and worker counts. *)
