type churn = Calm | Baseline | Heavy | Trace_pareto | Trace_lognormal

type consensus = Frozen | Frozen_m2 | Live_hourly | Live_heavy

type guards = No_guards | Guards of { n : int; rotation_days : int }

type vars = {
  size : Scenario.size;
  seed : int;
  days : float;
  churn : churn;
  consensus : consensus;
  cache : int;
  delta : int;
  obs : bool;
  adversary : float;
  guards : guards;
  threshold : float;
}

let default_vars =
  { size = Scenario.Small;
    seed = 1;
    days = 1.;
    churn = Baseline;
    consensus = Frozen;
    cache = 512;
    delta = 512;
    obs = true;
    adversary = 0.;
    guards = Guards { n = 3; rotation_days = 30 };
    threshold = 300. }

let known_keys =
  [ ("size", "scenario scale: small | paper");
    ("seed", "scenario seed (non-negative integer)");
    ("days", "simulated measurement horizon in days, in (0, 366]");
    ("churn", "churn model: calm | baseline | heavy | trace-pareto | \
               trace-lognormal");
    ("consensus", "M2 consensus model: frozen (no M2 stage) | frozen-m2 \
                   (M2 on the frozen snapshot) | live-hourly | live-heavy \
                   (M2 on hourly living epochs)");
    ("cache", "route-cache LRU capacity; 0 disables");
    ("delta", "delta-state LRU capacity; 0 disables");
    ("obs", "qs_obs instrumentation during the cell: on | off");
    ("adversary", "fraction of malicious ASes, in [0, 1]; 0 = no adversary");
    ("guards", "guard policy: none | N/D (N guards, rotate every D days) | \
                N/never");
    ("threshold", "F3R contiguous-residency threshold in seconds, >= 0") ]

let churn_to_string = function
  | Calm -> "calm"
  | Baseline -> "baseline"
  | Heavy -> "heavy"
  | Trace_pareto -> "trace-pareto"
  | Trace_lognormal -> "trace-lognormal"

let churn_of_string = function
  | "calm" -> Some Calm
  | "baseline" -> Some Baseline
  | "heavy" -> Some Heavy
  | "trace-pareto" -> Some Trace_pareto
  | "trace-lognormal" -> Some Trace_lognormal
  | _ -> None

let consensus_to_string = function
  | Frozen -> "frozen"
  | Frozen_m2 -> "frozen-m2"
  | Live_hourly -> "live-hourly"
  | Live_heavy -> "live-heavy"

let consensus_of_string = function
  | "frozen" -> Some Frozen
  | "frozen-m2" -> Some Frozen_m2
  | "live-hourly" -> Some Live_hourly
  | "live-heavy" -> Some Live_heavy
  | _ -> None

let guards_to_string = function
  | No_guards -> "none"
  | Guards { n; rotation_days } ->
      if rotation_days = max_int then Printf.sprintf "%d/never" n
      else Printf.sprintf "%d/%d" n rotation_days

let guards_of_string s =
  if s = "none" then Some No_guards
  else
    match String.index_opt s '/' with
    | None -> None
    | Some i ->
        let n = String.sub s 0 i in
        let rot = String.sub s (i + 1) (String.length s - i - 1) in
        (match (int_of_string_opt n, rot) with
         | Some n, _ when n <= 0 -> None
         | Some n, "never" -> Some (Guards { n; rotation_days = max_int })
         | Some n, _ ->
             (match int_of_string_opt rot with
              | Some d when d > 0 -> Some (Guards { n; rotation_days = d })
              | _ -> None)
         | None, _ -> None)

(* Canonical float rendering: [%g] collapses "1.0"/"1." to "1" and keeps
   "0.25" exact, so any spelling of a value in a registry entry normalizes
   to one canonical binding (and thus one fingerprint). *)
let float_str f = Printf.sprintf "%g" f

let set v ~key ~value =
  let bad fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let as_int k f =
    match int_of_string_opt (String.trim value) with
    | Some i -> f i
    | None -> bad "%s: not an integer: %S" k value
  in
  let as_float k f =
    match float_of_string_opt (String.trim value) with
    | Some x when Float.is_finite x -> f x
    | _ -> bad "%s: not a finite number: %S" k value
  in
  match key with
  | "size" ->
      (match Scenario.size_of_string value with
       | Some s -> Ok { v with size = s }
       | None -> bad "size: expected small | paper, got %S" value)
  | "seed" ->
      as_int "seed" (fun i ->
          if i < 0 then bad "seed: must be non-negative, got %d" i
          else Ok { v with seed = i })
  | "days" ->
      as_float "days" (fun x ->
          if x <= 0. || x > 366. then
            bad "days: must be in (0, 366], got %s" (float_str x)
          else Ok { v with days = x })
  | "churn" ->
      (match churn_of_string value with
       | Some c -> Ok { v with churn = c }
       | None ->
           bad
             "churn: expected calm | baseline | heavy | trace-pareto | \
              trace-lognormal, got %S"
             value)
  | "consensus" ->
      (match consensus_of_string value with
       | Some c -> Ok { v with consensus = c }
       | None ->
           bad
             "consensus: expected frozen | frozen-m2 | live-hourly | \
              live-heavy, got %S"
             value)
  | "cache" ->
      as_int "cache" (fun i ->
          if i < 0 then bad "cache: must be >= 0, got %d" i
          else Ok { v with cache = i })
  | "delta" ->
      as_int "delta" (fun i ->
          if i < 0 then bad "delta: must be >= 0, got %d" i
          else Ok { v with delta = i })
  | "obs" ->
      (match value with
       | "on" -> Ok { v with obs = true }
       | "off" -> Ok { v with obs = false }
       | _ -> bad "obs: expected on | off, got %S" value)
  | "adversary" ->
      as_float "adversary" (fun x ->
          if x < 0. || x > 1. then
            bad "adversary: must be in [0, 1], got %s" (float_str x)
          else Ok { v with adversary = x })
  | "guards" ->
      (match guards_of_string value with
       | Some g -> Ok { v with guards = g }
       | None -> bad "guards: expected none | N/D | N/never, got %S" value)
  | "threshold" ->
      as_float "threshold" (fun x ->
          if x < 0. then bad "threshold: must be >= 0, got %s" (float_str x)
          else Ok { v with threshold = x })
  | k -> bad "unknown key %S (see `quicksand sweep --list`)" k

(* Sorted by key: adversary, cache, churn, consensus, days, delta, guards,
   obs, threshold. Seed and size are carried by the fingerprint's own
   identity section, so repeating them here would double-count nothing and
   desync eventually. *)
let canonical_bindings v =
  [ ("adversary", float_str v.adversary);
    ("cache", string_of_int v.cache);
    ("churn", churn_to_string v.churn);
    ("consensus", consensus_to_string v.consensus);
    ("days", float_str v.days);
    ("delta", string_of_int v.delta);
    ("guards", guards_to_string v.guards);
    ("obs", if v.obs then "on" else "off");
    ("threshold", float_str v.threshold) ]

let identity v =
  Printf.sprintf "size=%s,seed=%d,%s"
    (Scenario.size_to_string v.size)
    v.seed
    (String.concat ","
       (List.map (fun (k, x) -> k ^ "=" ^ x) (canonical_bindings v)))

let dynamics v =
  let base =
    match v.size with
    | Scenario.Paper -> Dynamics.default_config
    | Scenario.Small -> Dynamics.short_config
  in
  let base = { base with Dynamics.duration = v.days *. 86_400. } in
  let base =
    match v.churn with
    | Baseline -> base
    | Calm ->
        { base with
          Dynamics.base_churn_rate = base.Dynamics.base_churn_rate *. 0.25;
          resets_per_session = base.Dynamics.resets_per_session *. 0.5 }
    | Heavy ->
        (* The churn-heavy day the AB-cache/AB-delta ablations in
           bench/main.ml stress: pathological flap rates with very short
           outages, so the update stream is dominated by re-announcements. *)
        { base with
          Dynamics.base_churn_rate = 2.0;
          mean_outage = 5.;
          mean_global_outage = 5. }
    | Trace_pareto ->
        (* Trace-shaped session churn layered over the baseline Poisson
           processes: heavy-tailed per-origin up/down sessions on the
           dedicated trace stream (lib/churn). *)
        { base with Dynamics.session_churn = Some Churn.pareto_day }
    | Trace_lognormal ->
        { base with Dynamics.session_churn = Some Churn.lognormal_day }
  in
  { base with Dynamics.route_cache_size = v.cache; delta_states = v.delta }

type entry = {
  name : string;
  doc : string;
  base : string option;
  overlay : (string * string) list;
  axes : (string * string list) list;
}

let builtin =
  [ { name = "base-small-day";
      doc = "one simulated day over the Small scenario, stock everything";
      base = None;
      overlay = [ ("size", "small"); ("days", "1") ];
      axes = [] };
    { name = "churn-day";
      doc = "base-small-day under the churn-heavy dynamics model";
      base = Some "base-small-day";
      overlay = [ ("churn", "heavy") ];
      axes = [] };
    { name = "ab-cache";
      doc = "AB-cache ablation (bench/main.ml): route cache off vs large \
             on a churn-heavy day, deltas disabled";
      base = Some "churn-day";
      overlay = [ ("delta", "0") ];
      axes = [ ("cache", [ "0"; "4096" ]) ] };
    { name = "ab-delta";
      doc = "AB-delta ablation (bench/main.ml): delta states off vs large \
             on a churn-heavy day, cache disabled";
      base = Some "churn-day";
      overlay = [ ("cache", "0") ];
      axes = [ ("delta", [ "0"; "4096" ]) ] };
    { name = "ab-obs";
      doc = "AB-obs ablation (bench/main.ml): instrumentation off vs on — \
             results must be identical, only the cost may differ";
      base = Some "churn-day";
      overlay = [];
      axes = [ ("obs", [ "off"; "on" ]) ] };
    { name = "exposure-matrix";
      doc = "the paper's exposure sweep: churn model x adversary fraction \
             x guard policy over one Small day";
      base = Some "base-small-day";
      overlay = [];
      axes =
        [ ("churn", [ "calm"; "baseline"; "heavy" ]);
          ("adversary", [ "0.02"; "0.05" ]);
          ("guards", [ "none"; "3/30"; "1/never" ]) ] };
    { name = "churn-trace-day";
      doc = "base-small-day under trace-shaped session churn \
             (lib/churn heavy-tailed up/down sessions)";
      base = Some "base-small-day";
      overlay = [ ("churn", "trace-pareto") ];
      axes = [] };
    { name = "m2-consensus";
      doc = "M2 frozen vs living consensus: guard exposure drift when \
             relays arrive, depart and drift in bandwidth each hour";
      base = Some "base-small-day";
      overlay = [ ("adversary", "0.05") ];
      axes = [ ("consensus", [ "frozen-m2"; "live-hourly" ]) ] };
    { name = "seeds-2x2";
      doc = "tiny CI matrix: two seeds x two churn models over a quarter \
             of a Small day";
      base = None;
      overlay = [ ("size", "small"); ("days", "0.25") ];
      axes = [ ("seed", [ "1"; "2" ]); ("churn", [ "calm"; "heavy" ]) ] } ]

let find registry name =
  List.find_opt (fun e -> e.name = name) registry

type invalid = {
  entry : string;
  problem : string;
  detail : (string * string) list;
  message : string;
}

let invalid entry problem detail message = { entry; problem; detail; message }

(* Root-first list of entries whose overlays apply in order, or the chain
   problem. [seen] carries every name already on the chain so a cycle is
   caught on its first revisit. *)
let resolve_chain registry entry =
  let rec go acc seen e =
    if List.mem e.name seen then Error (`Cycle e.name)
    else
      match e.base with
      | None -> Ok (e :: acc)
      | Some b ->
          (match find registry b with
           | None -> Error (`Unreachable (e.name, b))
           | Some parent -> go (e :: acc) (e.name :: seen) parent)
  in
  go [] [] entry

(* Expand axes row-major: the first axis varies slowest, the last fastest,
   matching how the table reads. *)
let combos axes =
  List.fold_right
    (fun (key, values) acc ->
       List.concat_map
         (fun v -> List.map (fun rest -> (key, v) :: rest) acc)
         values)
    axes [ [] ]

let apply_bindings ~entry ~where v bindings =
  List.fold_left
    (fun (v, invalids) (key, value) ->
       if not (List.mem_assoc key known_keys) then
         ( v,
           invalid entry "unknown-key"
             [ ("where", where); ("key", key) ]
             (Printf.sprintf "%s: %s binds unknown key %S" entry where key)
           :: invalids )
       else
         match set v ~key ~value with
         | Ok v -> (v, invalids)
         | Error msg ->
             ( v,
               invalid entry "bad-value"
                 [ ("where", where); ("key", key); ("value", value) ]
                 (Printf.sprintf "%s: %s: %s" entry where msg)
               :: invalids ))
    (v, []) bindings

let expand registry entry =
  match resolve_chain registry entry with
  | Error (`Cycle name) ->
      Error
        [ invalid entry.name "base-cycle"
            [ ("at", name) ]
            (Printf.sprintf
               "%s: base chain loops back through %S — entries must form a \
                tree" entry.name name) ]
  | Error (`Unreachable (at, base)) ->
      Error
        [ invalid entry.name "unreachable-base"
            [ ("at", at); ("base", base) ]
            (Printf.sprintf
               "%s: entry %S names base %S which is not in the registry"
               entry.name at base) ]
  | Ok chain ->
      let empty_axes =
        List.filter_map
          (fun (key, values) ->
             if values = [] then
               Some
                 (invalid entry.name "empty-axis"
                    [ ("axis", key) ]
                    (Printf.sprintf
                       "%s: axis %S has no values — the matrix would be \
                        empty" entry.name key))
             else None)
          entry.axes
      in
      let base_vars, overlay_invalids =
        List.fold_left
          (fun (v, invalids) e ->
             let where =
               if e.name = entry.name then "overlay"
               else Printf.sprintf "overlay (via base %S)" e.name
             in
             let v, more = apply_bindings ~entry:entry.name ~where v e.overlay in
             (v, invalids @ more))
          (default_vars, []) chain
      in
      let cells_rev, axis_invalids, _ =
        List.fold_left
          (fun (cells, invalids, index) bindings ->
             let v, more =
               apply_bindings ~entry:entry.name ~where:"axes" base_vars
                 bindings
             in
             if more = [] then ((index, bindings, v) :: cells, invalids, index + 1)
             else (cells, invalids @ more, index + 1))
          ([], [], 0)
          (combos entry.axes)
      in
      let invalids = empty_axes @ overlay_invalids @ axis_invalids in
      if invalids <> [] then Error invalids
      else
        let cells = List.rev cells_rev in
        let seen = Hashtbl.create 16 in
        let dups =
          List.filter_map
            (fun (index, bindings, v) ->
               let id = identity v in
               match Hashtbl.find_opt seen id with
               | Some first ->
                   Some
                     (invalid entry.name "duplicate-cell"
                        [ ("identity", id);
                          ("first", string_of_int first);
                          ("duplicate", string_of_int index) ]
                        (Printf.sprintf
                           "%s: cells %d and %d share identity %s — an axis \
                            value collapses onto the overlay or another axis \
                            value, so the matrix would run one cell twice"
                           entry.name first index id))
               | None ->
                   Hashtbl.add seen id index;
                   ignore bindings;
                   None)
            cells
        in
        if dups <> [] then Error dups else Ok cells

type cell = {
  index : int;
  bindings : (string * string) list;
  vars : vars;
}

let validate ?(registry = builtin) entry =
  match expand registry entry with Ok _ -> [] | Error invalids -> invalids

let validate_registry registry =
  let _, dups =
    List.fold_left
      (fun (seen, invalids) e ->
         if List.mem e.name seen then
           ( seen,
             invalid e.name "duplicate-entry" []
               (Printf.sprintf
                  "registry declares entry %S more than once — lookups by \
                   name would silently pick one" e.name)
             :: invalids )
         else (e.name :: seen, invalids))
      ([], []) registry
  in
  List.rev dups @ List.concat_map (validate ~registry) registry

let cells ?(registry = builtin) entry =
  match expand registry entry with
  | Error invalids -> Error invalids
  | Ok cells ->
      Ok (List.map (fun (index, bindings, vars) -> { index; bindings; vars })
            cells)

let sanitize s =
  String.map
    (fun ch ->
       match ch with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> ch
       | _ -> '-')
    s

let slug c =
  match c.bindings with
  | [] -> Printf.sprintf "cell-%03d" c.index
  | bs ->
      Printf.sprintf "cell-%03d-%s" c.index
        (String.concat ","
           (List.map (fun (k, v) -> sanitize k ^ "=" ^ sanitize v) bs))
