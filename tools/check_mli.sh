#!/usr/bin/env bash
# Static hygiene gate, run from the repo root (or its _build copy) by the
# @lint alias:
#   1. every library module lib/**/*.ml must have a matching .mli — the
#      interfaces are where invariants are documented, so an interface-less
#      module is an undocumented one;
#   2. forbidden patterns must not appear in shipped code (test/ may use
#      them): Obj.magic defeats the type system, bare Stdlib.compare is a
#      polymorphic-comparison trap (NaN-unsound on floats, depth-first on
#      variants), and `assert false` hides unreachable-state reasoning that
#      should be an explicit exception;
#   3. raw concurrency primitives (Domain.spawn, Thread.create) must not
#      appear outside lib/exec/ — every parallel sweep goes through
#      Qs_exec.Pool, which is where the determinism and per-domain
#      isolation guarantees live. Ad-hoc domains would bypass both;
#   4. raw timing primitives (Unix.gettimeofday, Sys.time) must not appear
#      outside lib/obs/ — every wall-clock read goes through Qs_obs.Clock,
#      so tests can freeze the clock and make timing fields reproducible;
#   5. Stdlib Random must not appear outside lib/net/ (home of the seeded
#      SplitMix64 Qs_net.Rng) — Random.self_init is nondeterminism by
#      definition, and even seeded Stdlib.Random draws from global state
#      that any other caller can advance, so equal seeds would stop giving
#      equal scenarios.
set -u
cd "$(dirname "$0")/.."

fail=0

# find, not a glob: covers every library at any depth (lib/check/ arrived
# after the original lib/*/*.ml pattern and new nesting should never dodge
# the gate silently).
while IFS= read -r ml; do
  if [ ! -f "${ml}i" ]; then
    echo "check_mli: $ml has no matching .mli" >&2
    fail=1
  fi
done < <(find lib -name '*.ml' -not -path '*/_build/*' | sort)

if grep -rn --include='*.ml' --include='*.mli' \
     -e 'Obj\.magic' -e 'Stdlib\.compare' -e 'assert false' \
     lib bin examples bench; then
  echo "check_mli: forbidden pattern (Obj.magic / Stdlib.compare / assert false)" >&2
  fail=1
fi

if grep -rn --include='*.ml' --include='*.mli' \
     -e 'Domain\.spawn' -e 'Thread\.create' \
     lib bin examples bench | grep -v '^lib/exec/'; then
  echo "check_mli: raw concurrency primitive outside lib/exec/ (use Qs_exec.Pool)" >&2
  fail=1
fi

if grep -rn --include='*.ml' --include='*.mli' \
     -e 'Unix\.gettimeofday' -e 'Sys\.time' \
     lib bin examples bench | grep -v '^lib/obs/'; then
  echo "check_mli: raw timing primitive outside lib/obs/ (use Qs_obs.Clock)" >&2
  fail=1
fi

if grep -rn --include='*.ml' --include='*.mli' \
     -e 'Random\.self_init' -e 'Random\.make_self_init' \
     -e 'Random\.int\b' -e 'Random\.float\b' \
     lib bin examples bench | grep -v '^lib/net/'; then
  echo "check_mli: Stdlib Random outside lib/net/ (use the seeded Qs_net.Rng)" >&2
  fail=1
fi

exit $fail
