#!/usr/bin/env bash
# The CI entry point: everything a green checkmark promises, runnable
# verbatim on a developer's shell. Kept in lockstep with
# .github/workflows/ci.yml, which just calls this script.
#
#   1. dune build       — the whole tree, warnings-as-errors;
#   2. dune runtest     — unit/property/golden suites plus the @lint
#                         alias (check_mli.sh hygiene gate, quicksand
#                         lint --fail-on error, conformance smoke);
#   3. quicksand lint --fail-on warning
#                       — the full rule registry on the Small scenario,
#                         no exclusions (the generator's orphan-transit
#                         adoption pass keeps QS104 clean);
#   4. quicksand check --suite conform
#                       — the streaming invariant checker over half a
#                         simulated day;
#   5. quicksand check --suite static
#                       — the dynamic-vs-static soundness oracle across
#                         5 seeds;
#   6. quicksand check --suite delta
#                       — delta-vs-full propagation equivalence: byte-
#                         identical update streams and final tables
#                         across 5 seeds, cache on/off, jobs 1 vs 4;
#   7. quicksand serve --replay --verify-batch
#                       — the streaming service over a seeded churn-heavy
#                         half day with injected hijacks: C1c alert set
#                         must equal the batch detector's exactly and the
#                         windowed cells must be bit-identical to
#                         Measurement.run's (exit 1 on any divergence).
set -eu
cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== quicksand lint --fail-on warning (Small, seed 1)"
dune exec bin/quicksand.exe -- lint --scale small --seed 1 --fail-on warning

echo "== quicksand check --suite conform (Small, seed 1, half a day)"
dune exec bin/quicksand.exe -- check --suite conform --scale small --seed 1 \
  --days 0.5

echo "== quicksand check --suite static (Small, 5 seeds)"
dune exec bin/quicksand.exe -- check --suite static --scale small

echo "== quicksand check --suite delta (Small, 5 seeds)"
dune exec bin/quicksand.exe -- check --suite delta --scale small

echo "== quicksand serve --replay --verify-batch (Small, seed 1, half a day)"
dune exec bin/quicksand.exe -- serve --replay --verify-batch --scale small \
  --seed 1 --days 0.5 --attacks 4 --quiet

echo "CI OK"
