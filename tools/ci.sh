#!/usr/bin/env bash
# The CI entry point: everything a green checkmark promises, runnable
# verbatim on a developer's shell. Kept in lockstep with
# .github/workflows/ci.yml, which just calls this script.
#
#   1. dune build       — the whole tree, warnings-as-errors;
#   2. dune runtest     — unit/property/golden suites plus the @lint
#                         alias (check_mli.sh hygiene gate, quicksand
#                         lint --fail-on error, conformance smoke);
#   3. quicksand lint --fail-on warning
#                       — the full rule registry on the Small scenario.
#                         QS104 (tier-sanity) is excluded: the synthetic
#                         topology generator legitimately emits a few
#                         customer-less transit ASes at Small scale, a
#                         known generator artefact, and CI must fail only
#                         on regressions;
#   4. quicksand check --suite conform
#                       — the streaming invariant checker over half a
#                         simulated day;
#   5. quicksand check --suite static
#                       — the dynamic-vs-static soundness oracle across
#                         5 seeds.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== quicksand lint --fail-on warning (Small, seed 1)"
dune exec bin/quicksand.exe -- lint --scale small --seed 1 --fail-on warning \
  --rules QS001,QS002,QS003,QS101,QS102,QS103,QS201,QS202,QS203,QS204,QS301,QS302,QS303,QS304,QS305,QS306,QS401,QS402,QS403,QS404

echo "== quicksand check --suite conform (Small, seed 1, half a day)"
dune exec bin/quicksand.exe -- check --suite conform --scale small --seed 1 \
  --days 0.5

echo "== quicksand check --suite static (Small, 5 seeds)"
dune exec bin/quicksand.exe -- check --suite static --scale small

echo "CI OK"
