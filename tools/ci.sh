#!/usr/bin/env bash
# The CI entry point: everything a green checkmark promises, runnable
# verbatim on a developer's shell. Kept in lockstep with
# .github/workflows/ci.yml, which just calls this script.
#
#   1. dune build       — the whole tree, warnings-as-errors;
#   2. dune runtest     — unit/property/golden suites plus the @lint
#                         alias (check_mli.sh hygiene gate, quicksand
#                         lint --fail-on error, conformance smoke);
#   3. quicksand lint --fail-on warning
#                       — the full rule registry on the Small scenario,
#                         no exclusions (the generator's orphan-transit
#                         adoption pass keeps QS104 clean);
#   4. quicksand check --suite conform
#                       — the streaming invariant checker over half a
#                         simulated day;
#   5. quicksand check --suite static
#                       — the dynamic-vs-static soundness oracle across
#                         5 seeds;
#   6. quicksand check --suite delta
#                       — delta-vs-full propagation equivalence: byte-
#                         identical update streams and final tables
#                         across 5 seeds, cache on/off, jobs 1 vs 4;
#   7. quicksand check --suite churn
#                       — the trace-churn statistical harness across
#                         5 seeds: distribution shape (mean/median/KS),
#                         stream structure (monotonicity, D/U
#                         alternation, accounting), byte-identity across
#                         reruns and worker counts;
#   8. quicksand serve --replay --verify-batch
#                       — the streaming service over a seeded churn-heavy
#                         half day with injected hijacks: C1c alert set
#                         must equal the batch detector's exactly and the
#                         windowed cells must be bit-identical to
#                         Measurement.run's (exit 1 on any divergence);
#   9. quicksand sweep --matrix seeds-2x2
#                       — the tiny 2x2 matrix (two seeds x two churn
#                         models, quarter of a Small day) three times:
#                         jobs=1, jobs=4, and a jobs=1 rerun. Every cell's
#                         summary.json must carry the qs-sweep/1 schema,
#                         and the three results directories must be
#                         byte-identical — fingerprints stable across
#                         reruns, outputs independent of the worker count;
#  10. quicksand sweep --matrix churn-trace-day
#                       — the trace-shaped churn day, same three-way
#                         byte-identity gate (jobs=1 vs jobs=4 vs rerun).
set -eu
cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== quicksand lint --fail-on warning (Small, seed 1)"
dune exec bin/quicksand.exe -- lint --scale small --seed 1 --fail-on warning

echo "== quicksand check --suite conform (Small, seed 1, half a day)"
dune exec bin/quicksand.exe -- check --suite conform --scale small --seed 1 \
  --days 0.5

echo "== quicksand check --suite static (Small, 5 seeds)"
dune exec bin/quicksand.exe -- check --suite static --scale small

echo "== quicksand check --suite delta (Small, 5 seeds)"
dune exec bin/quicksand.exe -- check --suite delta --scale small

echo "== quicksand check --suite churn (5 seeds)"
dune exec bin/quicksand.exe -- check --suite churn

echo "== quicksand serve --replay --verify-batch (Small, seed 1, half a day)"
dune exec bin/quicksand.exe -- serve --replay --verify-batch --scale small \
  --seed 1 --days 0.5 --attacks 4 --quiet

echo "== quicksand sweep --matrix seeds-2x2 (jobs 1 vs 4 vs rerun)"
sweep_tmp="$(mktemp -d)"
trap 'rm -rf "$sweep_tmp"' EXIT
dune exec bin/quicksand.exe -- sweep --matrix seeds-2x2 --jobs 1 \
  --out "$sweep_tmp/j1"
dune exec bin/quicksand.exe -- sweep --matrix seeds-2x2 --jobs 4 \
  --out "$sweep_tmp/j4"
dune exec bin/quicksand.exe -- sweep --matrix seeds-2x2 --jobs 1 \
  --out "$sweep_tmp/j1-rerun"
for cell_summary in "$sweep_tmp"/j1/cell-*/summary.json; do
  for key in '"schema": "qs-sweep/1"' '"fingerprint"' '"vars"' '"dynamics"' \
             '"f3l"' '"f3r"'; do
    grep -qF "$key" "$cell_summary" \
      || { echo "missing $key in $cell_summary"; exit 1; }
  done
done
diff -r "$sweep_tmp/j1" "$sweep_tmp/j4"
diff -r "$sweep_tmp/j1" "$sweep_tmp/j1-rerun"

echo "== quicksand sweep --matrix churn-trace-day (jobs 1 vs 4 vs rerun)"
dune exec bin/quicksand.exe -- sweep --matrix churn-trace-day --jobs 1 \
  --out "$sweep_tmp/trace-j1"
dune exec bin/quicksand.exe -- sweep --matrix churn-trace-day --jobs 4 \
  --out "$sweep_tmp/trace-j4"
dune exec bin/quicksand.exe -- sweep --matrix churn-trace-day --jobs 1 \
  --out "$sweep_tmp/trace-j1-rerun"
diff -r "$sweep_tmp/trace-j1" "$sweep_tmp/trace-j4"
diff -r "$sweep_tmp/trace-j1" "$sweep_tmp/trace-j1-rerun"

echo "CI OK"
