(* Tests for qs_topology: relationships, the AS graph, the generator,
   addressing, and graph algorithms. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let asn = Asn.of_int

(* ---- Relationship --------------------------------------------------- *)

let test_invert () =
  check_bool "customer<->provider" true
    (Relationship.equal (Relationship.invert Relationship.Customer)
       Relationship.Provider);
  check_bool "peer self-inverse" true
    (Relationship.equal (Relationship.invert Relationship.Peer) Relationship.Peer)

let test_export_rules () =
  let open Relationship in
  (* customer routes go everywhere *)
  check_bool "cust->cust" true (export_allowed ~learned_from:Customer ~to_:Customer);
  check_bool "cust->peer" true (export_allowed ~learned_from:Customer ~to_:Peer);
  check_bool "cust->prov" true (export_allowed ~learned_from:Customer ~to_:Provider);
  (* peer and provider routes only to customers *)
  check_bool "peer->cust" true (export_allowed ~learned_from:Peer ~to_:Customer);
  check_bool "peer->peer" false (export_allowed ~learned_from:Peer ~to_:Peer);
  check_bool "peer->prov" false (export_allowed ~learned_from:Peer ~to_:Provider);
  check_bool "prov->cust" true (export_allowed ~learned_from:Provider ~to_:Customer);
  check_bool "prov->peer" false (export_allowed ~learned_from:Provider ~to_:Peer);
  check_bool "prov->prov" false (export_allowed ~learned_from:Provider ~to_:Provider)

let test_export_characterization () =
  (* The Gao rule in one sentence: a route crosses a link iff someone pays
     for it — export is allowed exactly when one side is a customer. *)
  let all = [ Relationship.Customer; Relationship.Provider; Relationship.Peer ] in
  List.iter
    (fun learned_from ->
       List.iter
         (fun to_ ->
            let expected =
              Relationship.equal learned_from Relationship.Customer
              || Relationship.equal to_ Relationship.Customer
            in
            check_bool
              (Printf.sprintf "%s->%s"
                 (Relationship.to_string learned_from)
                 (Relationship.to_string to_))
              expected
              (Relationship.export_allowed ~learned_from ~to_))
         all)
    all;
  (* invert is an involution, and export is not symmetric under it: a
     customer-learned route goes to a provider, but a provider-learned
     route must not go to a provider. *)
  List.iter
    (fun r ->
       check_bool "invert involution" true
         (Relationship.equal (Relationship.invert (Relationship.invert r)) r))
    all;
  check_bool "asymmetry under invert" true
    (Relationship.export_allowed ~learned_from:Relationship.Customer
       ~to_:Relationship.Provider
     && not
          (Relationship.export_allowed ~learned_from:Relationship.Provider
             ~to_:Relationship.Provider))

let test_preference () =
  check_bool "customer > peer > provider" true
    (Relationship.preference_class Relationship.Customer
     > Relationship.preference_class Relationship.Peer
     && Relationship.preference_class Relationship.Peer
        > Relationship.preference_class Relationship.Provider)

(* ---- As_graph ------------------------------------------------------- *)

let stub_info name =
  { As_graph.name; tier = As_graph.Stub; hosting_weight = 0. }

let triangle () =
  let g = As_graph.create () in
  As_graph.add_as g (asn 1) (stub_info "one");
  As_graph.add_as g (asn 2) (stub_info "two");
  As_graph.add_as g (asn 3) (stub_info "three");
  As_graph.add_provider_customer g ~provider:(asn 1) ~customer:(asn 2);
  As_graph.add_peering g (asn 2) (asn 3);
  g

let test_graph_relationships () =
  let g = triangle () in
  check_bool "2 is 1's customer" true
    (As_graph.relationship g (asn 1) (asn 2) = Some Relationship.Customer);
  check_bool "1 is 2's provider" true
    (As_graph.relationship g (asn 2) (asn 1) = Some Relationship.Provider);
  check_bool "peering symmetric" true
    (As_graph.relationship g (asn 2) (asn 3) = Some Relationship.Peer
     && As_graph.relationship g (asn 3) (asn 2) = Some Relationship.Peer);
  check_bool "no link" true (As_graph.relationship g (asn 1) (asn 3) = None);
  check_int "customers of 1" 1 (List.length (As_graph.customers g (asn 1)));
  check_int "providers of 2" 1 (List.length (As_graph.providers g (asn 2)));
  check_int "peers of 3" 1 (List.length (As_graph.peers g (asn 3)));
  check_int "links" 2 (As_graph.num_links g)

let test_graph_rejects () =
  let g = triangle () in
  Alcotest.check_raises "self loop" (Invalid_argument "As_graph.add_link: self loop")
    (fun () -> As_graph.add_peering g (asn 1) (asn 1));
  check_bool "duplicate link rejected" true
    (try
       As_graph.add_peering g (asn 1) (asn 2);
       false
     with Invalid_argument _ -> true)

let test_caida_roundtrip () =
  let g = triangle () in
  let s = As_graph.to_caida_string g in
  let g' = As_graph.of_caida_string s in
  check_int "ases preserved" (As_graph.num_ases g) (As_graph.num_ases g');
  check_int "links preserved" (As_graph.num_links g) (As_graph.num_links g');
  check_bool "relationship preserved" true
    (As_graph.relationship g' (asn 1) (asn 2) = Some Relationship.Customer);
  check_bool "metadata preserved" true
    ((As_graph.info g' (asn 1)).As_graph.name = "one")

let test_indexed_view () =
  let g = triangle () in
  let ix = As_graph.Indexed.of_graph g in
  check_int "n" 3 (As_graph.Indexed.n ix);
  let id2 = As_graph.Indexed.id_of_asn ix (asn 2) in
  check_bool "asn roundtrip" true
    (Asn.equal (As_graph.Indexed.asn_of_id ix id2) (asn 2));
  check_int "neighbors of 2" 2 (Array.length (As_graph.Indexed.neighbors ix id2))

(* ---- Topo_gen ------------------------------------------------------- *)

let small_graph seed =
  Topo_gen.generate ~rng:(Rng.of_int seed) Topo_gen.small_params

let test_gen_connected () =
  check_bool "connected" true (Paths.connected (small_graph 1))

let test_gen_counts () =
  let g = small_graph 2 in
  let p = Topo_gen.small_params in
  check_int "total ASes" (p.Topo_gen.n_tier1 + p.Topo_gen.n_transit + p.Topo_gen.n_stub)
    (As_graph.num_ases g)

let test_gen_tier1_clique () =
  let g = small_graph 3 in
  let tier1 =
    As_graph.ases g
    |> List.filter (fun a ->
        (As_graph.info g a).As_graph.tier = As_graph.Tier1)
  in
  List.iter
    (fun a ->
       List.iter
         (fun b ->
            if not (Asn.equal a b) then
              check_bool "tier1s peer" true
                (As_graph.relationship g a b = Some Relationship.Peer))
         tier1)
    tier1

let test_gen_stubs_have_providers () =
  let g = small_graph 4 in
  As_graph.ases g
  |> List.iter (fun a ->
      match (As_graph.info g a).As_graph.tier with
      | As_graph.Stub ->
          check_bool "stub has a provider" true (As_graph.providers g a <> [])
      | As_graph.Transit ->
          check_bool "transit has a provider" true (As_graph.providers g a <> [])
      | As_graph.Tier1 ->
          check_bool "tier1 has no provider" true (As_graph.providers g a = []))

let test_gen_hosting () =
  let g = small_graph 5 in
  let hosting = Topo_gen.hosting_ases g in
  check_int "hosting count" Topo_gen.small_params.Topo_gen.n_hosting
    (List.length hosting);
  (* heaviest first, and the famous five present *)
  let weights = List.map snd hosting in
  check_bool "sorted descending" true
    (List.for_all2 (fun a b -> a >= b) weights
       (List.tl weights @ [ 0. ]));
  let names =
    List.map (fun (a, _) -> (As_graph.info g a).As_graph.name) hosting
  in
  check_bool "Hetzner present" true (List.mem "Hetzner Online AG" names)

let test_gen_deterministic () =
  let g1 = small_graph 7 and g2 = small_graph 7 in
  Alcotest.(check string) "same topology"
    (As_graph.to_caida_string g1) (As_graph.to_caida_string g2)

(* ---- Paths ---------------------------------------------------------- *)

let test_valley_free_checker () =
  let g = As_graph.create () in
  List.iter (fun i -> As_graph.add_as g (asn i) (stub_info ""))
    [ 10; 11; 20; 21; 6 ];
  (* 10 is 11's provider; 10 -- 20 peer; 20 is 21's provider; 6 is a second
     provider of 11. *)
  As_graph.add_provider_customer g ~provider:(asn 10) ~customer:(asn 11);
  As_graph.add_peering g (asn 10) (asn 20);
  As_graph.add_provider_customer g ~provider:(asn 20) ~customer:(asn 21);
  As_graph.add_provider_customer g ~provider:(asn 6) ~customer:(asn 11);
  (* origin 11: uphill to 10, across the peering, downhill to 21 *)
  check_bool "up-peer-down" true
    (Paths.valley_free g [ asn 21; asn 20; asn 10; asn 11 ]);
  check_bool "pure uphill" true (Paths.valley_free g [ asn 10; asn 11 ]);
  check_bool "pure downhill" true (Paths.valley_free g [ asn 11; asn 10 ]);
  (* a peer-learned route exported across a second peering is a valley *)
  check_bool "peer-peer rejected" false
    (Paths.valley_free g [ asn 21; asn 20; asn 10; asn 11; asn 6 ]);
  (* valley: provider route going back uphill (10 -> 11 -> 6) *)
  check_bool "valley rejected" false
    (Paths.valley_free g [ asn 6; asn 11; asn 10 ]);
  (* unlinked hop *)
  check_bool "unlinked rejected" false (Paths.valley_free g [ asn 10; asn 21 ]);
  check_bool "singleton ok" true (Paths.valley_free g [ asn 10 ])

let test_bfs_and_cone () =
  let g = triangle () in
  let d = Paths.bfs_hops g (asn 1) in
  check_int "self distance" 0 (Asn.Map.find (asn 1) d);
  check_int "one hop" 1 (Asn.Map.find (asn 2) d);
  check_int "two hops" 2 (Asn.Map.find (asn 3) d);
  check_int "cone of 1" 2 (Paths.customer_cone_size g (asn 1));
  check_int "cone of 3" 1 (Paths.customer_cone_size g (asn 3))

(* ---- Reach ----------------------------------------------------------- *)

(* The valley-free checker graph again: 10 is 11's provider, 10 -- 20 peer,
   20 is 21's provider, 6 is a second provider of 11. 6 hangs off the far
   downhill side of any 21-rooted walk, which makes it the interesting AS
   in every test below. *)
let reach_graph () =
  let g = As_graph.create () in
  List.iter (fun i -> As_graph.add_as g (asn i) (stub_info ""))
    [ 6; 10; 11; 20; 21 ];
  As_graph.add_provider_customer g ~provider:(asn 10) ~customer:(asn 11);
  As_graph.add_peering g (asn 10) (asn 20);
  As_graph.add_provider_customer g ~provider:(asn 20) ~customer:(asn 21);
  As_graph.add_provider_customer g ~provider:(asn 6) ~customer:(asn 11);
  g

let test_reach_closure () =
  let t = Reach.create (As_graph.Indexed.of_graph (reach_graph ())) in
  let c11 = Reach.compute t (asn 11) in
  check_bool "source" true (Asn.equal (Reach.source c11) (asn 11));
  (* an origin at 11 floods the whole graph: up to both providers, across
     the peering, down to 21 *)
  check_int "11 reaches everyone" 5 (Reach.reachable_count c11);
  List.iter
    (fun i ->
       check_bool
         (Printf.sprintf "uphill from 11 to %d" i)
         (List.mem i [ 6; 10; 11 ])
         (Reach.uphill_only c11 (asn i)))
    [ 6; 10; 11; 20; 21 ];
  let c21 = Reach.compute t (asn 21) in
  (* after the peering crossing only downhill steps remain, so 6 can
     never hear a route originated at 21 *)
  check_bool "21 cannot reach 6" false (Reach.reaches c21 (asn 6));
  check_int "21 reaches its side" 4 (Reach.reachable_count c21);
  check_bool "unknown AS unreachable" false (Reach.reaches c21 (asn 999));
  check_int "fold agrees with count" (Reach.reachable_count c21)
    (Reach.fold (fun _ n -> n + 1) c21 0)

let test_reach_exposure () =
  let t = Reach.create (As_graph.Indexed.of_graph (reach_graph ())) in
  let c21 = Reach.compute t (asn 21) and c11 = Reach.compute t (asn 11) in
  let e = Reach.exposure ~src:c21 ~dst:c11 in
  (* no valley-free 21 <-> 11 walk crosses 6 *)
  check_bool "6 outside the bound" false (Asn.Set.mem (asn 6) e);
  List.iter
    (fun i ->
       check_bool (Printf.sprintf "%d on some path" i) true
         (Asn.Set.mem (asn i) e))
    [ 10; 11; 20; 21 ];
  (* walk reversal preserves valley-freedom, so exposure is symmetric *)
  check_bool "symmetric" true
    (Asn.Set.equal e (Reach.exposure ~src:c11 ~dst:c21));
  check_bool "on_some_path agrees with the set" true
    (List.for_all
       (fun a -> Reach.on_some_path ~src:c21 ~dst:c11 a = Asn.Set.mem a e)
       (As_graph.ases (reach_graph ())))

let test_reach_scoping () =
  let t = Reach.create (As_graph.Indexed.of_graph (reach_graph ())) in
  (* radius 1 from 11: the origin and its two providers; radius 0: alone *)
  check_int "radius 1" 3
    (Reach.reachable_count (Reach.compute t ~max_radius:1 (asn 11)));
  check_int "radius 0" 1
    (Reach.reachable_count (Reach.compute t ~max_radius:0 (asn 11)));
  (* first hop scoped to 10 only: 6 never hears, everyone else still does *)
  let scoped =
    Reach.compute t ~export_to:(Asn.Set.singleton (asn 10)) (asn 11)
  in
  check_bool "6 cut off by export scoping" false (Reach.reaches scoped (asn 6));
  check_int "rest intact" 4 (Reach.reachable_count scoped);
  (* failing the peering strands 21 with its provider *)
  let failed a b =
    (Asn.equal a (asn 10) && Asn.equal b (asn 20))
    || (Asn.equal a (asn 20) && Asn.equal b (asn 10))
  in
  check_int "peering failure strands 21" 2
    (Reach.reachable_count (Reach.compute t ~failed (asn 21)));
  check_bool "negative radius rejected" true
    (try
       ignore (Reach.compute t ~max_radius:(-1) (asn 11));
       false
     with Invalid_argument _ -> true)

(* Soundness law 1: removing a link never grows a closure or an exposure
   bound — the reason intact-graph bounds stay valid under churn. *)
let prop_reach_monotone_under_link_removal =
  QCheck.Test.make ~name:"closure monotone under link removal" ~count:15
    QCheck.(int_bound 1000)
    (fun seed ->
       let g = small_graph seed in
       let t = Reach.create (As_graph.Indexed.of_graph g) in
       let links = Array.of_list (As_graph.links g) in
       let la, lb, _ = links.(seed mod Array.length links) in
       let failed a b =
         (Asn.equal a la && Asn.equal b lb)
         || (Asn.equal a lb && Asn.equal b la)
       in
       let sources =
         la :: lb
         :: (As_graph.ases g
             |> List.filteri (fun i _ -> i mod 13 = seed mod 13))
       in
       List.for_all
         (fun s ->
            let full = Reach.compute t s in
            let cut = Reach.compute t ~failed s in
            Reach.reachable_count cut <= Reach.reachable_count full
            && Reach.fold
                 (fun x ok ->
                    ok && Reach.reaches full x
                    && (Reach.uphill_only full x
                        || not (Reach.uphill_only cut x)))
                 cut true)
         sources
       &&
       match sources with
       | s1 :: s2 :: _ ->
           let expo ?failed a b =
             Reach.exposure
               ~src:(Reach.compute t ?failed a)
               ~dst:(Reach.compute t ?failed b)
           in
           Asn.Set.subset (expo ~failed s1 s2) (expo s1 s2)
       | _ -> true)

(* Soundness law 2: closures commute with any relabelling of the ASNs —
   the answers depend on the shape of the graph, never on the names. *)
let prop_reach_renumbering_invariance =
  QCheck.Test.make ~name:"closure invariant under AS renumbering" ~count:10
    QCheck.(pair (int_bound 1000) (int_range 1 5000))
    (fun (seed, shift) ->
       let g = small_graph seed in
       let f a = asn ((Asn.to_int a * 3) + shift) in
       let g' = As_graph.create () in
       List.iter
         (fun a -> As_graph.add_as g' (f a) (As_graph.info g a))
         (As_graph.ases g);
       List.iter
         (fun (a, b, rel) ->
            match rel with
            | Relationship.Customer ->
                As_graph.add_provider_customer g' ~provider:(f a)
                  ~customer:(f b)
            | Relationship.Provider ->
                As_graph.add_provider_customer g' ~provider:(f b)
                  ~customer:(f a)
            | Relationship.Peer -> As_graph.add_peering g' (f a) (f b))
         (As_graph.links g);
       let t = Reach.create (As_graph.Indexed.of_graph g) in
       let t' = Reach.create (As_graph.Indexed.of_graph g') in
       As_graph.ases g
       |> List.filteri (fun i _ -> i mod 17 = seed mod 17)
       |> List.for_all (fun s ->
           let c = Reach.compute t s and c' = Reach.compute t' (f s) in
           Reach.reachable_count c = Reach.reachable_count c'
           && List.for_all
                (fun x ->
                   Reach.reaches c x = Reach.reaches c' (f x)
                   && Reach.uphill_only c x = Reach.uphill_only c' (f x))
                (As_graph.ases g)))

(* ---- Addressing ----------------------------------------------------- *)

let test_addressing_coherent () =
  let g = small_graph 11 in
  let addressing = Addressing.allocate ~rng:(Rng.of_int 11) g in
  check_bool "every AS has prefixes" true
    (List.for_all (fun a -> Addressing.prefixes_of addressing a <> [])
       (As_graph.ases g));
  (* origin lookup is consistent *)
  List.iter
    (fun (p, o) ->
       check_bool "origin matches" true
         (match Addressing.origin addressing p with
          | Some o' -> Asn.equal o o'
          | None -> false);
       check_bool "prefix listed under its AS" true
         (List.exists (Prefix.equal p) (Addressing.prefixes_of addressing o)))
    (Addressing.announced addressing)

let test_addressing_top_blocks_disjoint () =
  let g = small_graph 12 in
  let addressing = Addressing.allocate ~rng:(Rng.of_int 12) g in
  (* The least-specific block of any two distinct ASes must not overlap. *)
  let tops =
    As_graph.ases g
    |> List.filter_map (fun a ->
        match Addressing.prefixes_of addressing a with
        | p :: _ -> Some (a, p)
        | [] -> None)
  in
  List.iteri
    (fun i (_, p) ->
       List.iteri
         (fun j (_, q) ->
            if i < j then
              check_bool "top blocks disjoint" false (Prefix.overlaps p q))
         tops)
    tops

let test_addressing_nested_inside () =
  let g = small_graph 13 in
  let addressing = Addressing.allocate ~rng:(Rng.of_int 13) g in
  (* Maximal blocks (not contained in any other block of the same AS) must
     be pairwise disjoint across different ASes; non-maximal blocks must
     nest inside one of their own AS's maximal blocks. *)
  let maximal =
    As_graph.ases g
    |> List.concat_map (fun a ->
        let ps = Addressing.prefixes_of addressing a in
        ps
        |> List.filter (fun p ->
            not (List.exists
                   (fun q -> not (Prefix.equal p q) && Prefix.subsumes q p)
                   ps))
        |> List.map (fun p -> (a, p)))
  in
  List.iteri
    (fun i (a1, p) ->
       List.iteri
         (fun j (a2, q) ->
            if i < j && not (Asn.equal a1 a2) then
              check_bool "maximal blocks of different ASes disjoint" false
                (Prefix.overlaps p q))
         maximal)
    maximal;
  As_graph.ases g
  |> List.iter (fun a ->
      let ps = Addressing.prefixes_of addressing a in
      List.iter
        (fun p ->
           let is_maximal = List.exists (fun (_, q) -> Prefix.equal p q)
               (List.filter (fun (a', _) -> Asn.equal a a') maximal) in
           if not is_maximal then
             check_bool "non-maximal nests in own maximal block" true
               (List.exists
                  (fun q -> not (Prefix.equal p q) && Prefix.subsumes q p)
                  ps))
        ps)

let test_address_in_covered () =
  let g = small_graph 14 in
  let addressing = Addressing.allocate ~rng:(Rng.of_int 14) g in
  let rng = Rng.of_int 99 in
  As_graph.ases g
  |> List.iter (fun a ->
      let ip = Addressing.address_in ~rng addressing a in
      match Addressing.covering_prefix addressing ip with
      | Some (_, origin) ->
          check_bool "address maps back to its AS" true (Asn.equal origin a)
      | None -> Alcotest.fail "address not covered by any announced prefix")

let qsuite = List.map (fun t -> QCheck_alcotest.to_alcotest t)

let prop_generated_graphs_connected =
  QCheck.Test.make ~name:"generated topologies are connected" ~count:10
    QCheck.(int_bound 1000)
    (fun seed -> Paths.connected (small_graph seed))

let () =
  Alcotest.run "qs_topology"
    [ ("relationship",
       [ Alcotest.test_case "invert" `Quick test_invert;
         Alcotest.test_case "export rules" `Quick test_export_rules;
         Alcotest.test_case "export characterization" `Quick
           test_export_characterization;
         Alcotest.test_case "preference order" `Quick test_preference ]);
      ("as_graph",
       [ Alcotest.test_case "relationships" `Quick test_graph_relationships;
         Alcotest.test_case "rejects bad links" `Quick test_graph_rejects;
         Alcotest.test_case "caida roundtrip" `Quick test_caida_roundtrip;
         Alcotest.test_case "indexed view" `Quick test_indexed_view ]);
      ("topo_gen",
       [ Alcotest.test_case "connected" `Quick test_gen_connected;
         Alcotest.test_case "counts" `Quick test_gen_counts;
         Alcotest.test_case "tier1 clique" `Quick test_gen_tier1_clique;
         Alcotest.test_case "stub providers" `Quick test_gen_stubs_have_providers;
         Alcotest.test_case "hosting ASes" `Quick test_gen_hosting;
         Alcotest.test_case "deterministic" `Quick test_gen_deterministic ]
       @ qsuite [ prop_generated_graphs_connected ]);
      ("paths",
       [ Alcotest.test_case "valley-free checker" `Quick test_valley_free_checker;
         Alcotest.test_case "bfs and cone" `Quick test_bfs_and_cone ]);
      ("reach",
       [ Alcotest.test_case "closure membership" `Quick test_reach_closure;
         Alcotest.test_case "exposure bound" `Quick test_reach_exposure;
         Alcotest.test_case "scoped closures" `Quick test_reach_scoping ]
       @ qsuite
           [ prop_reach_monotone_under_link_removal;
             prop_reach_renumbering_invariance ]);
      ("addressing",
       [ Alcotest.test_case "coherent" `Quick test_addressing_coherent;
         Alcotest.test_case "top blocks disjoint" `Quick
           test_addressing_top_blocks_disjoint;
         Alcotest.test_case "nested inside aggregate" `Quick
           test_addressing_nested_inside;
         Alcotest.test_case "address_in covered" `Quick test_address_in_covered ]) ]
