(* Tests for qs_serve: the sliding window's eviction/resurrection laws
   against the batch accumulator, the ingest buffer's backpressure
   accounting identity, the session-reset tick invariance the streaming
   arm relies on, event JSON goldens, and the headline property — replay
   of a simulated measurement period through the live service reproduces
   the batch cells bit-exactly and the batch C1c alert sequence, at any
   pool width. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let asn = Asn.of_int
let pfx = Prefix.of_string

let sess ?(collector = "rrc00") peer =
  { Update.collector; peer = asn peer }

let ann ~t ~s p path =
  { Update.time = t; session = s;
    kind = Update.Announce (Route.make p (List.map asn path)) }

let wd ~t ~s p = { Update.time = t; session = s; kind = Update.Withdraw p }

let aset l = Asn.Set.of_list (List.map asn l)

(* Field-by-field cell equality with bit-exact floats — the same contract
   Serve.diff_against_batch enforces. *)
let sorted_assoc l = List.sort (fun (a, _) (b, _) -> Asn.compare a b) l

let equal_assoc a b =
  List.equal
    (fun (x, dx) (y, dy) -> Asn.equal x y && Float.equal dx dy)
    (sorted_assoc a) (sorted_assoc b)

let equal_cell (a : Measurement.cell) (b : Measurement.cell) =
  Update.session_equal a.Measurement.key.Measurement.session
    b.Measurement.key.Measurement.session
  && Prefix.equal a.Measurement.key.Measurement.prefix
       b.Measurement.key.Measurement.prefix
  && Option.equal Asn.Set.equal a.Measurement.baseline b.Measurement.baseline
  && a.Measurement.updates = b.Measurement.updates
  && a.Measurement.path_changes = b.Measurement.path_changes
  && equal_assoc a.Measurement.residency b.Measurement.residency
  && equal_assoc a.Measurement.contiguous b.Measurement.contiguous
  && Option.equal Asn.Set.equal a.Measurement.final_set b.Measurement.final_set

let raises_invalid f =
  match f () with
  | exception Invalid_argument _ -> true
  | _ -> false

(* ---- Window: config validation ---------------------------------------- *)

let test_window_validation () =
  let mk window bucket threshold () =
    Window.create ~config:{ Window.window; bucket; threshold }
      ~watched:(fun _ -> true) ()
  in
  check_bool "valid config accepted" true
    (match mk 600. 60. 120. () with _ -> true);
  check_bool "zero bucket rejected" true (raises_invalid (mk 600. 0. 120.));
  check_bool "bucket must divide window" true
    (raises_invalid (mk 600. 77. 120.));
  check_bool "zero threshold rejected" true (raises_invalid (mk 600. 60. 0.));
  check_bool "threshold beyond window rejected" true
    (raises_invalid (mk 600. 60. 900.))

(* ---- Window: ring-buffer path-change counting -------------------------- *)

let tiny_window = { Window.window = 600.; bucket = 60.; threshold = 120. }

let test_window_ring () =
  let w = Window.create ~config:tiny_window ~watched:(fun _ -> true) () in
  let s1 = sess 64512 and p = pfx "10.0.0.0/8" in
  let key = { Measurement.session = s1; prefix = p } in
  Window.set_baseline w key (aset [ 1; 2; 3 ]);
  let ev1 = Window.apply w (ann ~t:10. ~s:s1 p [ 9; 2; 3 ]) in
  let ev2 = Window.apply w (ann ~t:70. ~s:s1 p [ 8; 2; 3 ]) in
  let changes evs =
    List.filter (function Event.Path_change _ -> true | _ -> false) evs
  in
  check_int "first change event" 1 (List.length (changes ev1));
  check_int "second change event" 1 (List.length (changes ev2));
  (match changes ev2 with
   | [ Event.Path_change { total; in_window; _ } ] ->
       check_int "total counts both" 2 total;
       check_int "window counts both" 2 in_window
   | _ -> Alcotest.fail "expected one path-change event");
  check_int "in_window live" 2 (Window.in_window w key);
  (* Roll the ring a full window past the changes: the rolling sum decays
     to zero without touching the key. *)
  ignore (Window.advance w 800. : Event.t list);
  check_int "in_window decays" 0 (Window.in_window w key)

(* ---- Window: eviction and resurrection vs the batch accumulator -------- *)

let test_window_evict_resurrect () =
  let w = Window.create ~config:tiny_window ~watched:(fun _ -> true) () in
  let s1 = sess 64512 and p = pfx "10.0.0.0/8" in
  let key = { Measurement.session = s1; prefix = p } in
  let feed =
    [ ann ~t:0. ~s:s1 p [ 1; 2 ];
      wd ~t:100. ~s:s1 p;
      (* withdrawn and silent past t = 100 + window: evicted at 700 *)
      ann ~t:900. ~s:s1 p [ 1; 2 ] ]
  in
  let horizon = 1000. in
  let events = ref [] in
  List.iter (fun u -> events := !events @ Window.apply w u) feed;
  events := !events @ Window.drain w ~horizon;
  let evicted =
    List.filter (function Event.Evicted _ -> true | _ -> false) !events
  in
  check_int "one eviction event" 1 (List.length evicted);
  let st = Window.stats w in
  check_int "eviction counted" 1 st.Window.evictions;
  check_int "resurrection counted" 1 st.Window.resurrections;
  (* The ghost handoff must be invisible in the final accounting: the
     cell equals a batch accumulator fed the same sequence. *)
  let acc = Measurement.Acc.create () in
  List.iter (fun u -> ignore (Measurement.Acc.consume acc u)) feed;
  Measurement.Acc.seal acc horizon;
  (match (Window.cells w, Measurement.Acc.cell key acc) with
   | [ got ], Some want ->
       check_bool "cell matches batch across eviction" true
         (equal_cell got want)
   | cells, _ ->
       Alcotest.failf "expected exactly one cell, got %d" (List.length cells))

(* ---- Window: extra-AS threshold is contiguous, not cumulative ----------- *)

let test_window_contiguous_threshold () =
  let w = Window.create ~config:tiny_window ~watched:(fun _ -> true) () in
  let s1 = sess 64512 in
  let p1 = pfx "10.0.0.0/8" and p2 = pfx "172.16.0.0/12" in
  let k1 = { Measurement.session = s1; prefix = p1 } in
  let k2 = { Measurement.session = s1; prefix = p2 } in
  Window.set_baseline w k1 (aset [ 1; 2 ]);
  Window.set_baseline w k2 (aset [ 1; 2 ]);
  (* p1: AS3 holds a single contiguous 150 s run crossing the 60 s bucket
     boundary — past the 120 s threshold, must fire exactly once. *)
  (* p2: AS4 totals 200 s on the path but in two disjoint 100 s stints —
     cumulative residency qualifies, contiguous does not: silent. *)
  let feed =
    [ ann ~t:0. ~s:s1 p1 [ 3; 1; 2 ];
      ann ~t:0. ~s:s1 p2 [ 4; 1; 2 ];
      ann ~t:100. ~s:s1 p2 [ 1; 2 ];
      ann ~t:150. ~s:s1 p1 [ 1; 2 ];
      ann ~t:200. ~s:s1 p2 [ 4; 1; 2 ];
      ann ~t:300. ~s:s1 p2 [ 1; 2 ] ]
  in
  let horizon = 1000. in
  let events =
    List.concat_map (fun u -> Window.apply w u) feed
    @ Window.drain w ~horizon
  in
  let extra =
    List.filter_map
      (function Event.Extra_as { key; asn; run; _ } -> Some (key, asn, run)
              | _ -> None)
      events
  in
  (match extra with
   | [ (key, a, run) ] ->
       check_bool "fired for p1" true
         (Prefix.equal key.Measurement.prefix p1);
       check_int "fired for AS3" 3 (Asn.to_int a);
       check_bool "run reaches threshold" true (run >= 120.)
   | l -> Alcotest.failf "expected exactly one extra-AS event, got %d"
            (List.length l));
  (* And the emission set is exactly the batch extra_ases rule. *)
  List.iter
    (fun (c : Measurement.cell) ->
       let want = Measurement.extra_ases ~threshold:120. c in
       let fired =
         List.filter_map
           (function
             | Event.Extra_as { key; asn; _ }
               when Prefix.equal key.Measurement.prefix
                      c.Measurement.key.Measurement.prefix -> Some asn
             | _ -> None)
           events
         |> Asn.Set.of_list
       in
       check_bool "events = batch extra_ases" true (Asn.Set.equal want fired))
    (Window.cells w)

(* ---- Window law: windowed cells = batch accumulator, any sequence ------ *)

(* Random per-key update sequences with gaps well past the window, so
   evictions, ghost parking and resurrections all trigger — the drained
   cells must still equal a batch accumulator fed the same stream. *)
let prop_window_equals_batch =
  QCheck.Test.make ~name:"window cells = batch accumulator (random streams)"
    ~count:60
    QCheck.(int_bound 100_000)
    (fun seed ->
       let config = { Window.window = 120.; bucket = 60.; threshold = 60. } in
       let st = Random.State.make [| seed |] in
       let sessions = [| sess 64512; sess ~collector:"rrc01" 64513 |] in
       let prefixes =
         [| pfx "10.0.0.0/8"; pfx "172.16.0.0/12"; pfx "192.168.0.0/16" |]
       in
       let paths = [| [ 1; 2 ]; [ 3; 1; 2 ]; [ 4; 2 ]; [ 5; 4; 2 ] |] in
       let t = ref 0. in
       let feed =
         List.init 60 (fun _ ->
             t := !t +. float_of_int (Random.State.int st 51);
             let s = sessions.(Random.State.int st 2) in
             let p = prefixes.(Random.State.int st 3) in
             if Random.State.int st 5 = 0 then wd ~t:!t ~s p
             else ann ~t:!t ~s p paths.(Random.State.int st 4))
       in
       let horizon = !t +. 1. in
       let w = Window.create ~config ~watched:(fun _ -> true) () in
       let accs = ref [] in
       let get_acc key =
         match
           List.find_opt
             (fun (k, _) ->
                Update.session_equal k.Measurement.session
                  key.Measurement.session
                && Prefix.equal k.Measurement.prefix key.Measurement.prefix)
             !accs
         with
         | Some (_, a) -> a
         | None ->
             let a = Measurement.Acc.create () in
             accs := (key, a) :: !accs;
             a
       in
       (* Baseline one key in both arms so the baseline path is covered. *)
       let k0 = { Measurement.session = sessions.(0); prefix = prefixes.(0) } in
       Window.set_baseline w k0 (aset [ 1; 2 ]);
       Measurement.Acc.set_baseline (get_acc k0) (aset [ 1; 2 ]);
       List.iter
         (fun u ->
            ignore (Window.apply w u : Event.t list);
            let key =
              { Measurement.session = u.Update.session;
                prefix = Update.prefix u }
            in
            ignore (Measurement.Acc.consume (get_acc key) u))
         feed;
       ignore (Window.drain w ~horizon : Event.t list);
       let batch =
         List.filter_map
           (fun (k, a) ->
              Measurement.Acc.seal a horizon;
              Measurement.Acc.cell k a)
           !accs
         |> List.sort (fun (a : Measurement.cell) b ->
             Window.compare_key a.Measurement.key b.Measurement.key)
       in
       let got = Window.cells w in
       List.length got = List.length batch
       && List.for_all2 equal_cell got batch)

(* ---- Ingest: validation, drops, ordering ------------------------------- *)

let test_ingest_validation () =
  check_bool "zero capacity rejected" true
    (raises_invalid (fun () ->
         Ingest.create ~config:{ Ingest.capacity = 0; slack = 10. } ()));
  check_bool "negative slack rejected" true
    (raises_invalid (fun () ->
         Ingest.create ~config:{ Ingest.capacity = 8; slack = -1. } ()))

let test_ingest_late_drop () =
  let i = Ingest.create ~config:{ Ingest.capacity = 64; slack = 120. } () in
  let s = sess 64512 and p = pfx "10.0.0.0/8" in
  check_bool "first accepted" true
    (Ingest.push i (ann ~t:1000. ~s p [ 1 ]) = `Accepted);
  (* watermark = 1000 - 120 = 880; 100 is hopeless *)
  check_bool "stale dropped late" true
    (Ingest.push i (ann ~t:100. ~s p [ 1 ]) = `Dropped_late);
  check_bool "within slack accepted" true
    (Ingest.push i (ann ~t:900. ~s p [ 2 ]) = `Accepted);
  let st = Ingest.stats i in
  check_int "ingested counts every push" 3 st.Ingest.ingested;
  check_int "late counted" 1 st.Ingest.dropped_late

let test_ingest_overflow () =
  let i = Ingest.create ~config:{ Ingest.capacity = 2; slack = 1e9 } () in
  let s = sess 64512 and p = pfx "10.0.0.0/8" in
  check_bool "fits" true (Ingest.push i (ann ~t:1. ~s p [ 1 ]) = `Accepted);
  check_bool "fits" true (Ingest.push i (ann ~t:2. ~s p [ 1 ]) = `Accepted);
  check_bool "third overflows" true
    (Ingest.push i (ann ~t:3. ~s p [ 1 ]) = `Dropped_overflow);
  let st = Ingest.stats i in
  check_int "overflow counted" 1 st.Ingest.dropped_overflow;
  check_int "still queued" 2 st.Ingest.queued

let test_ingest_release_order () =
  let i = Ingest.create ~config:{ Ingest.capacity = 64; slack = 100. } () in
  let s = sess 64512 and p = pfx "10.0.0.0/8" in
  (* Arrival order 50, 10, 30: all within slack once 200 raises the
     watermark, released in time order. *)
  List.iter
    (fun t -> ignore (Ingest.push i (ann ~t ~s p [ 1 ])))
    [ 50.; 10.; 30. ];
  check_int "nothing due yet" 0 (List.length (Ingest.ready i));
  ignore (Ingest.push i (ann ~t:200. ~s p [ 1 ]));
  let released = Ingest.ready i in
  Alcotest.(check (list (float 0.)))
    "time-ordered release" [ 10.; 30.; 50. ]
    (List.map (fun u -> u.Update.time) released);
  let rest = Ingest.flush i in
  Alcotest.(check (list (float 0.)))
    "flush releases the tail" [ 200. ]
    (List.map (fun u -> u.Update.time) rest);
  check_int "queue empty" 0 (Ingest.queued i)

(* The backpressure contract: nothing ever disappears silently. The
   accounting identity holds at every point of the stream, for any mix of
   late arrivals and overflow. *)
let prop_ingest_accounting =
  QCheck.Test.make ~name:"ingest accounting identity (random feeds)"
    ~count:100
    QCheck.(int_bound 100_000)
    (fun seed ->
       let st = Random.State.make [| seed |] in
       let i =
         Ingest.create ~config:{ Ingest.capacity = 16; slack = 50. } ()
       in
       let s = sess 64512 and p = pfx "10.0.0.0/8" in
       let base = ref 0. in
       let ok = ref true in
       let identity () =
         let s = Ingest.stats i in
         s.Ingest.ingested
         = s.Ingest.released + s.Ingest.dropped_late
           + s.Ingest.dropped_overflow + s.Ingest.queued
       in
       for n = 1 to 120 do
         base := !base +. float_of_int (Random.State.int st 31);
         let t = !base -. float_of_int (Random.State.int st 201) in
         ignore (Ingest.push i (ann ~t ~s p [ 1 ]) : Ingest.push_result);
         if n mod 5 = 0 then ignore (Ingest.ready i : Update.t list);
         ok := !ok && identity ()
       done;
       ignore (Ingest.flush i : Update.t list);
       let s = Ingest.stats i in
       !ok && identity () && s.Ingest.queued = 0 && s.Ingest.ingested = 120)

(* ---- Ingest: chunked MRT decode --------------------------------------- *)

let test_mrt_chunked_decode () =
  let s1 = sess 64512 and s2 = sess 64513 in
  let p1 = pfx "10.0.0.0/8" and p2 = pfx "172.16.0.0/12" in
  let updates =
    [ ann ~t:1. ~s:s1 p1 [ 1; 2 ];
      ann ~t:2. ~s:s2 p2 [ 3; 2 ];
      wd ~t:3. ~s:s1 p1;
      ann ~t:4. ~s:s1 p2 [ 4; 5; 2 ];
      wd ~t:5. ~s:s2 p2;
      ann ~t:6. ~s:s2 p1 [ 1; 2; 2; 7 ] ]
  in
  let local_ip = Ipv4.of_string "193.0.0.1" in
  let peer_ip = Ipv4.of_string "193.0.0.2" in
  let raw =
    Mrt.encode
      (List.map
         (Mrt.record_of_update ~local_as:(asn 12654) ~local_ip ~peer_ip)
         updates)
  in
  let reference =
    Mrt.decode raw
    |> List.concat_map (Mrt.update_of_record ~collector:"rrc00")
  in
  check_bool "reference decode is lossless" true (reference <> []);
  Pool.with_pool ~jobs:3 (fun exec ->
      List.iter
        (fun chunk ->
           let got = Ingest.decode_mrt ~chunk ~collector:"rrc00" ~exec raw in
           check_bool
             (Printf.sprintf "chunk=%d matches whole-stream decode" chunk)
             true (got = reference))
        [ 1; 3; 512 ])

(* ---- Session_reset.advance: tick invariance ---------------------------- *)

(* The streaming arm ticks the reset filter with the input clock so quiet
   sessions cannot hold stragglers. The tick must not change any
   pass/drop decision — only emission timing and global order. *)
let test_reset_advance_invariance () =
  let config =
    { Session_reset.window = 60.; min_prefixes = 5; table_fraction = 0.5;
      quiet_gap = 30. }
  in
  let sa = sess 64512 and sb = sess ~collector:"rrc01" 64513 in
  let prefixes =
    Array.init 8 (fun i -> pfx (Printf.sprintf "10.%d.0.0/16" i))
  in
  let feed =
    (* sA chats steadily; sB sends one straggler then a table-transfer
       burst (8 prefixes >= max(min_prefixes, fraction * table)) and goes
       quiet — the lazy filter would sit on nothing here, the ticked one
       must drop exactly the same burst. *)
    [ ann ~t:0. ~s:sa prefixes.(0) [ 1; 2 ];
      ann ~t:50. ~s:sa prefixes.(1) [ 1; 2 ];
      ann ~t:100. ~s:sb prefixes.(0) [ 3; 2 ] ]
    @ List.init 8 (fun i ->
        ann ~t:(200. +. float_of_int i) ~s:sb prefixes.(i) [ 3; 2 ])
    @ [ ann ~t:300. ~s:sa prefixes.(2) [ 1; 2 ];
        ann ~t:400. ~s:sa prefixes.(3) [ 1; 2 ];
        ann ~t:500. ~s:sa prefixes.(4) [ 1; 2 ] ]
  in
  let run ~ticked =
    let out = ref [] in
    let f = Session_reset.create ~config ~emit:(fun u -> out := u :: !out) () in
    Session_reset.preload_table f sa 10;
    Session_reset.preload_table f sb 10;
    List.iter
      (fun u ->
         if ticked then Session_reset.advance f u.Update.time;
         Session_reset.push f u)
      feed;
    Session_reset.flush f;
    (List.rev !out, Session_reset.stats f)
  in
  let lazy_out, lazy_stats = run ~ticked:false in
  let tick_out, tick_stats = run ~ticked:true in
  check_int "same passed" lazy_stats.Session_reset.passed
    tick_stats.Session_reset.passed;
  check_int "same dropped" lazy_stats.Session_reset.dropped
    tick_stats.Session_reset.dropped;
  check_bool "a burst was actually dropped" true
    (tick_stats.Session_reset.dropped >= 8);
  let canon l =
    List.sort
      (fun a b ->
         match Float.compare a.Update.time b.Update.time with
         | 0 ->
             (match Update.session_compare a.Update.session b.Update.session
              with
              | 0 -> Prefix.compare (Update.prefix a) (Update.prefix b)
              | c -> c)
         | c -> c)
      l
  in
  check_bool "identical pass multiset" true (canon lazy_out = canon tick_out);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Update.time <= b.Update.time && sorted rest
    | _ -> true
  in
  check_bool "ticked emission is globally time-ordered" true (sorted tick_out)

(* ---- Event JSON goldens ------------------------------------------------ *)

(* These pin the wire format sinks and the CI smoke stage parse. Bump them
   deliberately when the schema changes. *)
let golden_key =
  { Measurement.session = sess 64512; prefix = pfx "10.0.0.0/8" }

let test_event_json_goldens () =
  check_string "path_change"
    "{\"event\":\"path_change\",\"time\":12.500000,\"collector\":\"rrc00\",\
     \"peer\":64512,\"prefix\":\"10.0.0.0/8\",\"total\":3,\"in_window\":2}"
    (Event.to_json
       (Event.Path_change { key = golden_key; time = 12.5; total = 3;
                            in_window = 2 }));
  check_string "extra_as"
    "{\"event\":\"extra_as\",\"time\":420.000000,\"collector\":\"rrc00\",\
     \"peer\":64512,\"prefix\":\"10.0.0.0/8\",\"asn\":65001,\
     \"run\":300.000000}"
    (Event.to_json
       (Event.Extra_as { key = golden_key; time = 420.; asn = asn 65001;
                         run = 300. }));
  check_string "evicted, unmeasured"
    "{\"event\":\"evicted\",\"time\":700.000000,\"collector\":\"rrc00\",\
     \"peer\":64512,\"prefix\":\"10.0.0.0/8\",\"measured\":false}"
    (Event.to_json (Event.Evicted { key = golden_key; time = 700.;
                                    cell = None }));
  let cell =
    { Measurement.key = golden_key; baseline = None; updates = 4;
      path_changes = 2; residency = []; contiguous = []; final_set = None }
  in
  check_string "evicted, measured"
    "{\"event\":\"evicted\",\"time\":700.000000,\"collector\":\"rrc00\",\
     \"peer\":64512,\"prefix\":\"10.0.0.0/8\",\"measured\":true,\
     \"updates\":4,\"path_changes\":2}"
    (Event.to_json (Event.Evicted { key = golden_key; time = 700.;
                                    cell = Some cell }));
  let alert =
    { Alert.detector = "c1c"; time = 7200.; session = sess 64512;
      prefix = pfx "10.0.0.0/8"; kind = "moas";
      summary = "origin \"moved\"";
      evidence = [ ann ~t:7100. ~s:(sess 64512) (pfx "10.0.0.0/8") [ 1 ] ] }
  in
  check_string "alert (with escaping)"
    "{\"event\":\"alert\",\"time\":7200.000000,\"detector\":\"c1c\",\
     \"kind\":\"moas\",\"collector\":\"rrc00\",\"peer\":64512,\
     \"prefix\":\"10.0.0.0/8\",\"summary\":\"origin \\\"moved\\\"\",\
     \"evidence\":1}"
    (Event.to_json (Event.Alert alert));
  check_string "violation"
    "{\"event\":\"violation\",\"invariant\":\"ordering\",\
     \"message\":\"time went backwards\"}"
    (Event.to_json
       (Event.Violation { invariant = "ordering";
                          message = "time went backwards" }))

(* ---- Serve: alerting end-to-end on a synthetic feed -------------------- *)

let serve_config =
  { Serve.Config.default with
    Serve.Config.window = 600.; bucket = 60.; threshold = 120.; slack = 50.;
    capacity = 4096; chunk = 4; learning_period = 100. }

let test_serve_moas_alert () =
  (* Frozen clock: only wall-time metrics consult it, so the emitted
     stream is reproducible under it by construction. *)
  Clock.with_source (fun () -> 0.) @@ fun () ->
  Pool.with_pool ~jobs:2 @@ fun exec ->
  let sink, captured = Sink.memory () in
  let t = Serve.create ~config:serve_config ~sinks:[ sink ] ~exec () in
  let s1 = sess 64512 and p = pfx "10.0.0.0/8" in
  (* Learn origin AS65001 inside the 100 s learning period, then move the
     origin: a MOAS alarm, the paper's C1c control-plane signature. *)
  List.iter (Serve.offer t)
    [ ann ~t:0. ~s:s1 p [ 7; 65001 ];
      ann ~t:50. ~s:s1 p [ 7; 65001 ];
      ann ~t:300. ~s:s1 p [ 9; 65002 ] ];
  let violations = Serve.drain t ~horizon:600. in
  check_bool "no conformance violations" true (violations = []);
  (match Serve.alerts t with
   | [ a ] ->
       check_string "detector" "c1c" a.Alert.detector;
       check_string "kind" "moas" a.Alert.kind;
       check_bool "right prefix" true (Prefix.equal a.Alert.prefix p);
       check_bool "carries evidence" true (a.Alert.evidence <> [])
   | l -> Alcotest.failf "expected one alert, got %d" (List.length l));
  let evs = captured () in
  check_bool "sink saw the alert" true
    (List.exists (function Event.Alert _ -> true | _ -> false) evs);
  check_bool "events were emitted" true (Serve.events_emitted t > 0);
  (* Losslessness of the feed we just pushed. *)
  let st = Ingest.stats (Serve.ingest t) in
  check_int "all ingested" 3 st.Ingest.ingested;
  check_int "all released" 3 st.Ingest.released

let test_serve_guards () =
  Pool.with_pool ~jobs:1 @@ fun exec ->
  check_bool "invalid config rejected at create" true
    (raises_invalid (fun () ->
         Serve.create
           ~config:{ serve_config with Serve.Config.threshold = 0. }
           ~exec ()));
  let t = Serve.create ~config:serve_config ~exec () in
  ignore (Serve.drain t ~horizon:10. : Conformance.violation list);
  check_bool "drain is single-shot" true
    (raises_invalid (fun () -> Serve.drain t ~horizon:20.))

(* ---- Replay equivalence: streaming = batch ----------------------------- *)

let replay_scenario = lazy (Scenario.build ~seed:9 Scenario.Small)

let replay_dynamics =
  { Dynamics.short_config with
    Dynamics.duration = 6. *. 3600.;
    base_churn_rate = 0.3 }

(* A sub-duration window forces evictions during the replay; the short
   learning period lets the injected second-half hijacks alarm. *)
let replay_config =
  { Serve.Config.default with
    Serve.Config.window = 1800.;
    learning_period = 3600. }

let replay_attacks s =
  snd
    (Countermeasures.inject_hijacks
       ~rng:(Scenario.rng_for s "serve") ~n_attacks:3
       ~duration:replay_dynamics.Dynamics.duration s)

let test_replay_matches_batch () =
  let s = Lazy.force replay_scenario in
  let extra = replay_attacks s in
  check_bool "attacks were injected" true (extra <> []);
  Pool.with_pool ~jobs:2 @@ fun exec ->
  let r =
    Serve.replay ~dynamics:replay_dynamics ~extra_updates:extra
      ~config:replay_config ~exec s
  in
  let m, batch =
    Serve.batch_alerts ~dynamics:replay_dynamics ~extra_updates:extra
      ~learning_period:replay_config.Serve.Config.learning_period s
  in
  Alcotest.(check (list string)) "streaming = batch, exactly" []
    (Serve.diff_against_batch r m batch);
  check_int "no late drops" 0 r.Serve.r_ingest.Ingest.dropped_late;
  check_int "no overflow" 0 r.Serve.r_ingest.Ingest.dropped_overflow;
  check_bool "memory bound exercised (evictions observed)" true
    (r.Serve.r_window.Window.evictions > 0);
  check_bool "hijacks raised alerts" true (r.Serve.r_alerts <> []);
  check_bool "no conformance violations" true (r.Serve.r_violations = [])

let test_replay_jobs_identity () =
  let s = Lazy.force replay_scenario in
  let extra = replay_attacks s in
  let run jobs =
    Pool.with_pool ~jobs @@ fun exec ->
    let sink, captured = Sink.memory () in
    let r =
      Serve.replay ~dynamics:replay_dynamics ~extra_updates:extra
        ~config:replay_config ~sinks:[ sink ] ~exec s
    in
    (r, List.map Event.to_json (captured ()))
  in
  let r1, ev1 = run 1 in
  let r4, ev4 = run 4 in
  Alcotest.(check (list string)) "event stream byte-identical" ev1 ev4;
  check_int "same event count" r1.Serve.r_events r4.Serve.r_events;
  check_bool "same alerts" true
    (List.equal Alert.equal r1.Serve.r_alerts r4.Serve.r_alerts);
  check_bool "same window stats" true (r1.Serve.r_window = r4.Serve.r_window);
  check_int "same released count" r1.Serve.r_ingest.Ingest.released
    r4.Serve.r_ingest.Ingest.released

(* ----------------------------------------------------------------------- *)

let qsuite = List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [ prop_window_equals_batch; prop_ingest_accounting ]

let () =
  Alcotest.run "qs_serve"
    [ ("window",
       [ Alcotest.test_case "config validation" `Quick test_window_validation;
         Alcotest.test_case "path-change ring" `Quick test_window_ring;
         Alcotest.test_case "evict + resurrect = batch" `Quick
           test_window_evict_resurrect;
         Alcotest.test_case "contiguous threshold" `Quick
           test_window_contiguous_threshold ]);
      ("window laws", qsuite);
      ("ingest",
       [ Alcotest.test_case "validation" `Quick test_ingest_validation;
         Alcotest.test_case "late drop" `Quick test_ingest_late_drop;
         Alcotest.test_case "overflow" `Quick test_ingest_overflow;
         Alcotest.test_case "release order" `Quick test_ingest_release_order;
         Alcotest.test_case "chunked MRT decode" `Quick
           test_mrt_chunked_decode ]);
      ("session-reset ticks",
       [ Alcotest.test_case "advance invariance" `Quick
           test_reset_advance_invariance ]);
      ("events",
       [ Alcotest.test_case "JSON goldens" `Quick test_event_json_goldens ]);
      ("serve",
       [ Alcotest.test_case "moas alert end-to-end" `Quick
           test_serve_moas_alert;
         Alcotest.test_case "guards" `Quick test_serve_guards ]);
      ("replay",
       [ Alcotest.test_case "streaming = batch" `Slow
           test_replay_matches_batch;
         Alcotest.test_case "jobs byte-identity" `Slow
           test_replay_jobs_identity ]) ]
