(* Cross-library integration tests: full pipelines exercised end to end on
   small worlds — dynamics through MRT serialization and back; hijacks
   through collectors into detection; the asymmetric attack against real
   simulated traffic; reset filtering against ground truth. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let scenario = lazy (Scenario.build ~seed:77 Scenario.Small)

let tiny_dynamics =
  { Dynamics.short_config with
    Dynamics.duration = 12. *. 3600.;
    base_churn_rate = 0.3 }

(* 1. Dynamics -> MRT encode -> decode -> identical update stream. *)
let test_dynamics_mrt_roundtrip () =
  let s = Lazy.force scenario in
  let rng = Scenario.rng_for s "mrt-roundtrip" in
  let buf = Buffer.create 65536 in
  let originals = ref [] in
  let local_ip = Ipv4.of_string "192.0.2.254" in
  let peer_ip = Ipv4.of_string "192.0.2.1" in
  let emit (u : Update.t) =
    originals := u :: !originals;
    Mrt.encode_record buf
      (Mrt.record_of_update ~local_as:(Asn.of_int 12654) ~local_ip ~peer_ip u)
  in
  let _, stats = Dynamics.run ~rng tiny_dynamics s.Scenario.world ~emit in
  check_bool "stream non-empty" true (stats.Dynamics.updates_emitted > 0);
  let decoded =
    Mrt.decode (Buffer.contents buf)
    |> List.concat_map (fun r ->
        (* collectors are recovered out of band; use a fixed name and match
           on peer + prefix + path *)
        Mrt.update_of_record ~collector:"x" r)
  in
  check_int "record count" (List.length !originals) (List.length decoded);
  List.iter2
    (fun (a : Update.t) (b : Update.t) ->
       check_bool "same peer" true
         (Asn.equal a.Update.session.Update.peer b.Update.session.Update.peer);
       check_bool "same prefix" true
         (Prefix.equal (Update.prefix a) (Update.prefix b));
       check_bool "same time" true (Float.abs (a.Update.time -. b.Update.time) < 1e-3);
       match (a.Update.kind, b.Update.kind) with
       | Update.Announce ra, Update.Announce rb ->
           check_bool "same path" true
             (List.equal Asn.equal ra.Route.as_path rb.Route.as_path)
       | Update.Withdraw _, Update.Withdraw _ -> ()
       | Update.Announce _, Update.Withdraw _ | Update.Withdraw _, Update.Announce _
         ->
           Alcotest.fail "kind mismatch")
    (List.rev !originals) decoded

(* 2. Reset filtering vs ground truth: every injected reset interval should
   be found, with few spurious bursts. *)
let test_reset_detection_vs_ground_truth () =
  let s = Lazy.force scenario in
  let rng = Scenario.rng_for s "reset-truth" in
  let config =
    { tiny_dynamics with
      Dynamics.duration = 2. *. 86_400.;
      resets_per_session = 2.0 }
  in
  let filter = Session_reset.create ~emit:(fun _ -> ()) () in
  let initial_seen = ref false in
  let table_sizes = ref Update.Session_map.empty in
  let on_initial initial =
    initial_seen := true;
    Update.Session_map.iter
      (fun session table ->
         let n = Prefix.Map.cardinal table in
         table_sizes := Update.Session_map.add session n !table_sizes;
         Session_reset.preload_table filter session n)
      initial
  in
  let _, stats =
    Dynamics.run ~rng ~on_initial config s.Scenario.world
      ~emit:(Session_reset.push filter)
  in
  Session_reset.flush filter;
  check_bool "initial callback fired" true !initial_seen;
  (* A replay of a tiny table is indistinguishable from normal churn by
     design (the filter's min_prefixes floor), so score recall only on
     sessions whose table is big enough to look like a transfer. *)
  let truth =
    List.filter
      (fun (session, _, _) ->
         match Update.Session_map.find_opt session !table_sizes with
         | Some n -> n >= 2 * Session_reset.default_config.Session_reset.min_prefixes
         | None -> false)
      stats.Dynamics.resets_injected
  in
  let found = (Session_reset.stats filter).Session_reset.bursts in
  check_bool "some resets injected" true (truth <> []);
  let detected =
    List.filter
      (fun (session, start, finish) ->
         List.exists
           (fun (s', b_start, b_end) ->
              Update.session_equal session s'
              && b_start <= finish +. 120. && b_end >= start -. 120.)
           found)
      truth
  in
  let recall =
    float_of_int (List.length detected) /. float_of_int (List.length truth)
  in
  check_bool
    (Printf.sprintf "recall %.2f >= 0.7" recall)
    true (recall >= 0.7)

(* 3. Hijack -> collector updates -> Detection raises a MOAS within the
   cool-down discipline. *)
let test_hijack_detection_pipeline () =
  let s = Lazy.force scenario in
  let rng = Scenario.rng_for s "hijack-detect" in
  let m = Countermeasures.monitoring ~rng ~n_attacks:3 ~dynamics:tiny_dynamics s in
  check_bool "recall positive" true (m.Countermeasures.recall > 0.);
  check_bool "alarms raised" true (m.Countermeasures.alarms_total > 0)

(* 4. The full asymmetric attack against simulated traffic: all four
   segment totals agree within cell overhead, and matching works. *)
let test_traffic_attack_pipeline () =
  let rng = Rng.of_int 4242 in
  let r = Onion.download ~rng ~size:(4 * 1024 * 1024) () in
  check_bool "completed" true r.Onion.completed;
  let sent_srv = Trace.total_payload r.Onion.server_to_exit in
  let acked_cli = Trace.max_ack r.Onion.client_to_guard in
  (* client side counts cells; 514/498 apart, give 8% slack *)
  let ratio = float_of_int acked_cli /. float_of_int sent_srv in
  check_bool "segments consistent" true (ratio > 0.95 && ratio < 1.12);
  let m = Asymmetric.deanonymize ~rng ~n_flows:4 ~size:(2 * 1024 * 1024) () in
  check_bool "matching works end to end" true (m.Asymmetric.correct >= 3)

(* 5. Interception feasibility implies a usable data path: captured traffic
   re-injected at the attacker reaches the victim. *)
let test_interception_return_path_works () =
  let s = Lazy.force scenario in
  let rng = Scenario.rng_for s "interception-path" in
  let tried = ref 0 and feasible = ref 0 in
  for _ = 1 to 12 do
    let guard =
      Path_selection.pick_weighted ~rng (Consensus.guards s.Scenario.consensus)
    in
    match Scenario.guard_announcement s guard with
    | None -> ()
    | Some victim ->
        let attacker = Scenario.random_client_as ~rng s in
        if not (Asn.equal attacker victim.Announcement.origin) then begin
          incr tried;
          let i = Interception.run s.Scenario.indexed ~victim ~attacker () in
          if i.Interception.feasible then begin
            incr feasible;
            match i.Interception.return_path with
            | Some (first :: rest) ->
                check_bool "starts at attacker" true
                  (Asn.equal first i.Interception.attacker);
                check_bool "ends at victim origin" true
                  (match List.rev rest with
                   | last :: _ -> Asn.equal last victim.Announcement.origin
                   | [] -> false);
                check_bool "attacker not revisited" true
                  (not (List.exists (Asn.equal i.Interception.attacker) rest))
            | Some [] | None -> Alcotest.fail "feasible but no return path"
          end
        end
  done;
  check_bool "tried some" true (!tried > 0)

(* 6. Consensus + topology serialization round-trips reconstruct the same
   Tor-prefix mapping. *)
let test_serialization_pipeline () =
  let s = Lazy.force scenario in
  let consensus' = Consensus.of_string (Consensus.to_string s.Scenario.consensus) in
  let tp = Tor_prefix.compute s.Scenario.addressing s.Scenario.consensus in
  let tp' = Tor_prefix.compute s.Scenario.addressing consensus' in
  check_int "same prefix count" (Tor_prefix.count tp) (Tor_prefix.count tp');
  check_int "same origin ASes"
    (Asn.Set.cardinal (Tor_prefix.origin_ases tp))
    (Asn.Set.cardinal (Tor_prefix.origin_ases tp'))

(* 7. End-to-end determinism: a full small pipeline twice gives identical
   headline numbers. *)
let test_full_determinism () =
  let run () =
    let s = Scenario.build ~seed:99 Scenario.Small in
    let m = Measurement.run ~dynamics:tiny_dynamics s in
    let pc = Path_changes.compute m in
    let e = As_exposure.compute m in
    ( List.length m.Measurement.cells,
      pc.Path_changes.frac_above_one,
      e.As_exposure.frac_at_least_2,
      m.Measurement.dyn_stats.Dynamics.updates_emitted )
  in
  check_bool "two runs identical" true (run () = run ())

(* 8. The measurement pipeline passes the streaming conformance checker:
   every post-filter update respects the horizon and per-session time
   order, withdraws follow announces (or a baseline route), and the
   finished measurement satisfies the accounting invariants. *)
let test_pipeline_conformance () =
  let m, violations =
    Conformance.run ~dynamics:tiny_dynamics (Lazy.force scenario)
  in
  List.iter
    (fun v -> Format.eprintf "%a@." Conformance.pp_violation v)
    violations;
  check_int "no conformance violations" 0 (List.length violations);
  check_bool "stream was actually observed" true
    (m.Measurement.dyn_stats.Dynamics.updates_emitted > 0)

let () =
  Alcotest.run "integration"
    [ ("pipelines",
       [ Alcotest.test_case "dynamics->MRT->decode" `Quick
           test_dynamics_mrt_roundtrip;
         Alcotest.test_case "reset detection vs ground truth" `Quick
           test_reset_detection_vs_ground_truth;
         Alcotest.test_case "hijack->collector->detection" `Quick
           test_hijack_detection_pipeline;
         Alcotest.test_case "traffic attack end to end" `Quick
           test_traffic_attack_pipeline;
         Alcotest.test_case "interception return path" `Quick
           test_interception_return_path_works;
         Alcotest.test_case "serialization round trips" `Quick
           test_serialization_pipeline;
         Alcotest.test_case "full determinism" `Quick test_full_determinism;
         Alcotest.test_case "pipeline conformance" `Quick
           test_pipeline_conformance ]) ]
