(* Tests for qs_obs: registration idempotence, hot-path write semantics,
   quantile readout, shard-merge conservation (qcheck, through the real
   pool at several worker counts), span nesting, the clock shim, the
   registry-vs-legacy-stats pins, and the golden metrics snapshot.

   Updating the golden: after an intentional schema or counter change,
   dump the freshly masked snapshot with

     QS_OBS_GOLDEN_DUMP=1 dune exec -- test/test_obs.exe test golden

   and paste the block between the dump markers over the [golden] string
   below.  Review the diff first — key drift or count drift here means
   the exported schema changed for every consumer. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* Metric cells are registered at module initialization, and the linker
   only initializes modules this binary references.  Touch one value per
   instrumented module the tests below don't already use, so the golden
   snapshot pins the complete manifest, not the subset this suite happens
   to exercise. *)
let () =
  let force : 'a. 'a -> unit = fun _ -> () in
  force Hijack.is_captured;
  force Interception.run

let counter_value name =
  match Metrics.value name with
  | Some (Metrics.Counter_v n) -> n
  | _ -> Alcotest.fail ("no counter named " ^ name)

let hist_value name =
  match Metrics.value name with
  | Some (Metrics.Hist_v h) -> h
  | _ -> Alcotest.fail ("no histogram named " ^ name)

(* Unique test-reserved names: the registry is process-wide and append-only
   within a run, so every property iteration gets a fresh cell. *)
let fresh =
  let k = ref 0 in
  fun () ->
    incr k;
    Printf.sprintf "test.obs.%d" !k

(* ---- registration ----------------------------------------------------- *)

let test_registration_idempotent () =
  let name = fresh () in
  let a = Metrics.counter name in
  let b = Metrics.counter name in
  Metrics.incr a;
  Metrics.add b 2;
  check_int "both handles hit one cell" 3 (counter_value name);
  check_bool "registration count visible" true
    (List.mem_assoc name (Metrics.registrations ())
     && List.assoc name (Metrics.registrations ()) = 2)

let test_registration_kind_mismatch () =
  let name = fresh () in
  let _ = Metrics.counter name in
  let raised =
    try
      ignore (Metrics.gauge name);
      false
    with Invalid_argument _ -> true
  in
  check_bool "kind mismatch rejected" true raised;
  let hname = fresh () in
  let _ = Metrics.histogram ~buckets:[| 1.; 2. |] hname in
  let raised =
    try
      ignore (Metrics.histogram ~buckets:[| 1.; 3. |] hname);
      false
    with Invalid_argument _ -> true
  in
  check_bool "bucket mismatch rejected" true raised

let test_counter_rejects_negative () =
  let c = Metrics.counter (fresh ()) in
  let raised =
    try
      Metrics.add c (-1);
      false
    with Invalid_argument _ -> true
  in
  check_bool "counters are monotonic" true raised

let test_gauge_last_write_wins () =
  let name = fresh () in
  let g = Metrics.gauge name in
  check_bool "unset gauge reads None" true
    (Metrics.value name = Some (Metrics.Gauge_v None));
  Metrics.set g 3.;
  Metrics.set g 7.;
  check_bool "last write wins" true
    (Metrics.value name = Some (Metrics.Gauge_v (Some 7.)))

let test_disabled_writes_are_noops () =
  let name = fresh () in
  let c = Metrics.counter name in
  Metrics.set_enabled false;
  Metrics.incr c;
  Metrics.set_enabled true;
  check_int "disabled write dropped" 0 (counter_value name);
  Metrics.incr c;
  check_int "re-enabled write lands" 1 (counter_value name)

(* ---- histograms and quantiles ----------------------------------------- *)

let test_histogram_buckets_and_quantiles () =
  let name = fresh () in
  let h = Metrics.histogram ~buckets:[| 1.; 10.; 100. |] name in
  check_bool "empty quantile is 0" true (Metrics.quantile (hist_value name) 0.5 = 0.);
  List.iter (Metrics.observe h) [ 0.5; 0.5; 5.; 50.; 500. ];
  let v = hist_value name in
  check_int "count" 5 v.Metrics.count;
  check_bool "sum" true (v.Metrics.sum = 556.);
  check_bool "min" true (v.Metrics.min = 0.5);
  check_bool "max" true (v.Metrics.max = 500.);
  check_bool "bucket layout" true
    (v.Metrics.buckets = [| (1., 2); (10., 1); (100., 1); (infinity, 1) |]);
  (* cumulative bucket counts are 2/3/4/5, so q*5 observations land at
     bounds 1, 10, 100 as q crosses 0.4, 0.6, 0.8 *)
  check_bool "p25 in first bucket" true (Metrics.quantile v 0.25 = 1.);
  check_bool "p50 second bucket" true (Metrics.quantile v 0.5 = 10.);
  check_bool "p70 third bucket" true (Metrics.quantile v 0.7 = 100.);
  check_bool "overflow bucket reads the max" true (Metrics.quantile v 1.0 = 500.);
  let raised =
    try
      ignore (Metrics.quantile v 1.5);
      false
    with Invalid_argument _ -> true
  in
  check_bool "q outside [0,1] rejected" true raised

let test_reset_all () =
  let name = fresh () in
  let c = Metrics.counter name in
  Metrics.incr c;
  Metrics.reset_all ();
  check_int "reset zeroes" 0 (counter_value name);
  check_bool "registrations survive reset" true
    (List.mem_assoc name (Metrics.registrations ()));
  Metrics.incr c;
  check_int "handle still live" 1 (counter_value name)

(* ---- qcheck: shard-merge laws ----------------------------------------- *)

let bounds = [| 5.; 50.; 500. |]

let sum_ints xs = List.fold_left ( + ) 0 xs

let observe_via_pool pool h xs =
  ignore
    (Pool.map ~chunk:1 pool
       (fun x ->
          Metrics.observe h (float_of_int x);
          x)
       (Array.of_list xs))

let test_quantile_monotone () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"quantile monotone in q"
       QCheck.(triple
                 (list_of_size Gen.(1 -- 50) (int_bound 1000))
                 (int_bound 100) (int_bound 100))
       (fun (xs, a, b) ->
          let name = fresh () in
          let h = Metrics.histogram ~buckets:bounds name in
          List.iter (fun x -> Metrics.observe h (float_of_int x)) xs;
          let v = hist_value name in
          let q1 = float_of_int (min a b) /. 100. in
          let q2 = float_of_int (max a b) /. 100. in
          Metrics.quantile v q1 <= Metrics.quantile v q2))

let test_merge_conserves_observations () =
  Pool.with_pool ~jobs:4 (fun pool ->
      QCheck.Test.check_exn
        (QCheck.Test.make ~count:25
           ~name:"shard merge conserves count and integer sums"
           QCheck.(list_of_size Gen.(1 -- 100) (int_bound 500))
           (fun xs ->
              let name = fresh () in
              let h = Metrics.histogram ~buckets:bounds name in
              observe_via_pool pool h xs;
              let v = hist_value name in
              v.Metrics.count = List.length xs
              && v.Metrics.sum = float_of_int (sum_ints xs)
              && Array.fold_left (fun acc (_, n) -> acc + n) 0 v.Metrics.buckets
                 = List.length xs)))

let test_merge_commutes_across_jobs () =
  Pool.with_pool ~jobs:4 (fun wide ->
      QCheck.Test.check_exn
        (QCheck.Test.make ~count:25
           ~name:"merged view identical at jobs=1 and jobs=4"
           QCheck.(list_of_size Gen.(1 -- 100) (int_bound 500))
           (fun xs ->
              let n1 = fresh () and n4 = fresh () in
              let h1 = Metrics.histogram ~buckets:bounds n1 in
              let h4 = Metrics.histogram ~buckets:bounds n4 in
              Pool.with_pool ~jobs:1 (fun narrow ->
                  observe_via_pool narrow h1 xs);
              observe_via_pool wide h4 xs;
              (* integer-valued observations: sums are order-independent,
                 so the whole view must match structurally *)
              hist_value n1 = hist_value n4)))

(* ---- spans ------------------------------------------------------------ *)

let test_span_disabled_passthrough () =
  Span.set_enabled false;
  ignore (Span.drain ());
  check_int "passthrough result" 9 (Span.with_ ~name:"off" (fun () -> 9));
  check_int "nothing recorded" 0 (List.length (Span.drain ()))

let test_span_nesting () =
  ignore (Span.drain ());
  Span.set_enabled true;
  let spans =
    Fun.protect
      ~finally:(fun () -> Span.set_enabled false)
      (fun () ->
         Clock.with_source (fun () -> 0.) (fun () ->
             Span.with_ ~name:"outer" (fun () ->
                 Span.with_ ~name:"inner" (fun () -> ())));
         Span.drain ())
  in
  match spans with
  | [ inner; outer ] ->
      (* completion order: a parent follows its children *)
      check_str "inner path" "outer/inner" inner.Span.path;
      check_int "inner depth" 2 inner.Span.depth;
      check_str "outer path" "outer" outer.Span.path;
      check_int "outer depth" 1 outer.Span.depth;
      check_bool "frozen clock yields zero durations" true
        (inner.Span.dur = 0. && outer.Span.dur = 0.);
      check_int "drain clears" 0 (List.length (Span.drain ()))
  | l -> Alcotest.fail (Printf.sprintf "expected 2 spans, got %d" (List.length l))

let test_span_records_on_raise () =
  ignore (Span.drain ());
  Span.set_enabled true;
  let raised =
    Fun.protect
      ~finally:(fun () -> Span.set_enabled false)
      (fun () ->
         try
           Span.with_ ~name:"boom" (fun () ->
               if true then failwith "boom");
           false
         with Failure _ -> true)
  in
  check_bool "exception re-raised" true raised;
  match Span.drain () with
  | [ s ] -> check_str "span recorded anyway" "boom" s.Span.name
  | l -> Alcotest.fail (Printf.sprintf "expected 1 span, got %d" (List.length l))

let test_clock_substitution () =
  let frozen = Clock.with_source (fun () -> 42.) (fun () -> Clock.now ()) in
  Alcotest.(check (float 0.)) "substituted source" 42. frozen;
  check_bool "real clock restored" true (Clock.now () > 1e9)

(* ---- registry vs legacy stats ----------------------------------------- *)

let short_dynamics =
  { Dynamics.short_config with Dynamics.duration = 6. *. 3600. }

let test_registry_matches_legacy_stats () =
  Metrics.reset_all ();
  let s = Scenario.build ~seed:3 Scenario.Small in
  let m = Measurement.run ~dynamics:short_dynamics s in
  let d = m.Measurement.dyn_stats in
  check_int "route_cache.hits pins cache_hits" d.Dynamics.cache_hits
    (counter_value "route_cache.hits");
  check_int "route_cache.misses pins cache_misses" d.Dynamics.cache_misses
    (counter_value "route_cache.misses");
  check_int "hits + misses pin the request total"
    (d.Dynamics.cache_hits + d.Dynamics.cache_misses)
    (counter_value "route_cache.hits" + counter_value "route_cache.misses");
  check_int "dynamics.updates_emitted pins the stream size"
    d.Dynamics.updates_emitted
    (counter_value "dynamics.updates_emitted");
  check_int "dynamics.full_recomputations pins full recomputes"
    d.Dynamics.full_recomputations
    (counter_value "dynamics.full_recomputations");
  check_int "dynamics.delta_steps pins delta steps" d.Dynamics.delta_steps
    (counter_value "dynamics.delta_steps");
  check_int "hits + full + delta pin the outcome request total"
    (d.Dynamics.cache_hits + d.Dynamics.full_recomputations
     + d.Dynamics.delta_steps)
    (counter_value "route_cache.hits"
     + counter_value "dynamics.full_recomputations"
     + counter_value "dynamics.delta_steps");
  match m.Measurement.filter_stats with
  | None -> Alcotest.fail "session-reset filter expected on by default"
  | Some f ->
      check_int "session_reset.pushed pins pushed" f.Session_reset.pushed
        (counter_value "session_reset.pushed");
      check_int "pushed = passed + dropped + buffered"
        (counter_value "session_reset.pushed")
        (counter_value "session_reset.passed"
         + counter_value "session_reset.dropped"
         + f.Session_reset.buffered);
      check_int "session_reset.pushed equals dynamics.updates_emitted"
        (counter_value "dynamics.updates_emitted")
        (counter_value "session_reset.pushed")

(* ---- golden metrics snapshot ------------------------------------------ *)

let index_of ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i =
    if i + n > h then None
    else if String.sub hay i n = needle then Some i
    else go (i + 1)
  in
  go 0

let contains ~needle hay = index_of ~needle hay <> None

(* Erase exactly the fields the export contract marks as timing-derived
   or scheduling-derived: the "timing"/"buckets" groups of a histogram
   (wall-clock) and the exec.jobs / exec.chunks values (worker-count
   dependent by the pool's chunking contract).  Everything else — key
   set, counter values, histogram counts — must be byte-stable. *)
let mask_line line =
  let len = String.length line in
  let trail = if len > 0 && line.[len - 1] = ',' then "," else "" in
  match index_of ~needle:"\"timing\"" line with
  | Some i -> String.sub line 0 i ^ "<timing and buckets masked>" ^ trail
  | None ->
      if contains ~needle:"\"exec.jobs\"" line
         || contains ~needle:"\"exec.chunks\"" line
      then
        match index_of ~needle:": " line with
        | Some i -> String.sub line 0 (i + 2) ^ "<jobs-dependent>" ^ trail
        | None -> line
      else line

let mask doc =
  String.split_on_char '\n' doc |> List.map mask_line |> String.concat "\n"

let masked_snapshot ~jobs =
  Clock.with_source (fun () -> 0.) (fun () ->
      Metrics.reset_all ();
      let s = Scenario.build ~seed:1 Scenario.Small in
      let m = Measurement.run ~dynamics:short_dynamics s in
      Pool.with_pool ~jobs (fun exec -> ignore (Path_changes.compute ~exec m));
      (* test.* cells from the property tests above live in the same
         process-wide registry; drop them so the golden pins only the
         shipped schema. *)
      let shipped =
        List.filter
          (fun (smp : Metrics.sample) ->
             not (String.length smp.Metrics.name >= 5
                  && String.sub smp.Metrics.name 0 5 = "test."))
          (Metrics.snapshot ())
      in
      mask (Export.metrics_json_string shipped))

let golden = {gold|{
"schema": "qs-obs/1",
"counters": {
  "attack.hijack.runs": 0,
  "attack.interception.runs": 0,
  "churn.trace_entities": 0,
  "churn.trace_events": 0,
  "dynamics.announces": 21636,
  "dynamics.churn_events": 883,
  "dynamics.delta_steps": 10931,
  "dynamics.delta_stop_early": 23368,
  "dynamics.full_recomputations": 220,
  "dynamics.post_horizon_dropped": 1,
  "dynamics.updates_emitted": 28664,
  "dynamics.withdraws": 7028,
  "exec.chunks": <jobs-dependent>,
  "exec.sweeps": 1,
  "measurement.cells": 3985,
  "measurement.updates": 26678,
  "obs.spans": 0,
  "route_cache.evictions": 10639,
  "route_cache.hits": 31,
  "route_cache.misses": 11151,
  "scenario.builds": 1,
  "session_reset.bursts": 7,
  "session_reset.dropped": 1986,
  "session_reset.passed": 26678,
  "session_reset.pushed": 28664
},
"gauges": {
  "exec.jobs": <jobs-dependent>
},
"histograms": {
  "dynamics.delta_frontier": {"count": 10931, <timing and buckets masked>,
  "exec.busy_seconds": {"count": 1, <timing and buckets masked>,
  "exec.sweep_seconds": {"count": 1, <timing and buckets masked>,
  "exec.wait_seconds": {"count": 1, <timing and buckets masked>
}
}
|gold}

let test_golden_snapshot () =
  let m1 = masked_snapshot ~jobs:1 in
  let m4 = masked_snapshot ~jobs:4 in
  if Sys.getenv_opt "QS_OBS_GOLDEN_DUMP" <> None then
    Format.eprintf "----- masked snapshot (paste over [golden]) -----@.%s@.----- end masked snapshot -----@." m1;
  check_str "masked snapshot byte-identical at jobs=1 and jobs=4" m1 m4;
  check_str "masked snapshot matches the embedded golden" golden m1

let () =
  Alcotest.run "qs_obs"
    [ ("registry",
       [ Alcotest.test_case "registration idempotent" `Quick
           test_registration_idempotent;
         Alcotest.test_case "kind mismatch rejected" `Quick
           test_registration_kind_mismatch;
         Alcotest.test_case "counters monotonic" `Quick
           test_counter_rejects_negative;
         Alcotest.test_case "gauge last write wins" `Quick
           test_gauge_last_write_wins;
         Alcotest.test_case "disabled writes are no-ops" `Quick
           test_disabled_writes_are_noops;
         Alcotest.test_case "buckets and quantiles" `Quick
           test_histogram_buckets_and_quantiles;
         Alcotest.test_case "reset_all" `Quick test_reset_all ]);
      ("laws",
       [ Alcotest.test_case "quantile monotone" `Quick test_quantile_monotone;
         Alcotest.test_case "merge conserves observations" `Quick
           test_merge_conserves_observations;
         Alcotest.test_case "merge commutes across jobs" `Quick
           test_merge_commutes_across_jobs ]);
      ("spans",
       [ Alcotest.test_case "disabled passthrough" `Quick
           test_span_disabled_passthrough;
         Alcotest.test_case "nesting and paths" `Quick test_span_nesting;
         Alcotest.test_case "recorded on raise" `Quick
           test_span_records_on_raise;
         Alcotest.test_case "clock substitution" `Quick
           test_clock_substitution ]);
      ("legacy",
       [ Alcotest.test_case "registry pins legacy stats" `Quick
           test_registry_matches_legacy_stats ]);
      ("golden",
       [ Alcotest.test_case "masked snapshot" `Quick test_golden_snapshot ]) ]
