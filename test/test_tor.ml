(* Tests for qs_tor: relays, consensus generation, Tor-prefix mapping and
   path selection. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let setup seed =
  let rng = Rng.of_int seed in
  let g = Topo_gen.generate ~rng:(Rng.split rng) Topo_gen.small_params in
  let addressing = Addressing.allocate ~rng:(Rng.split rng) g in
  let consensus =
    Consensus.generate ~rng:(Rng.split rng) ~params:Consensus.small_params g addressing
  in
  (rng, g, addressing, consensus)

(* ---- Relay ----------------------------------------------------------- *)

let test_relay_flags () =
  let r =
    Relay.make ~nickname:"r1" ~ip:(Ipv4.of_string "1.2.3.4") ~asn:(Asn.of_int 7)
      ~bandwidth:100 ~flags:[ Relay.Guard; Relay.Fast ]
  in
  check_bool "guard" true (Relay.is_guard r);
  check_bool "not exit" false (Relay.is_exit r);
  check_bool "has fast" true (Relay.has_flag r Relay.Fast);
  Alcotest.check_raises "negative bandwidth"
    (Invalid_argument "Relay.make: negative bandwidth")
    (fun () ->
       ignore
         (Relay.make ~nickname:"x" ~ip:(Ipv4.of_string "1.2.3.4")
            ~asn:(Asn.of_int 7) ~bandwidth:(-1) ~flags:[]))

let test_relay_flag_strings () =
  List.iter
    (fun f ->
       check_bool "roundtrip" true
         (Relay.flag_of_string (Relay.flag_to_string f) = Some f))
    [ Relay.Guard; Relay.Exit; Relay.Fast; Relay.Stable ];
  check_bool "unknown flag" true (Relay.flag_of_string "Bogus" = None)

(* ---- Consensus ------------------------------------------------------- *)

let test_consensus_counts () =
  let _, _, _, consensus = setup 1 in
  let p = Consensus.small_params in
  check_int "relays" p.Consensus.n_relays (Consensus.n_relays consensus);
  check_int "guards" p.Consensus.n_guards (List.length (Consensus.guards consensus));
  check_int "exits" p.Consensus.n_exits (List.length (Consensus.exits consensus));
  let both =
    Array.to_list consensus.Consensus.relays
    |> List.filter (fun r -> Relay.is_guard r && Relay.is_exit r)
  in
  check_int "guard+exit" p.Consensus.n_guard_exits (List.length both);
  check_int "guard-or-exit"
    (p.Consensus.n_guards + p.Consensus.n_exits - p.Consensus.n_guard_exits)
    (List.length (Consensus.guard_or_exit consensus))

let test_consensus_params_validated () =
  let _, g, addressing, _ = setup 2 in
  let bad = { Consensus.small_params with Consensus.n_guard_exits = 1000 } in
  check_bool "inconsistent flags rejected" true
    (try ignore (Consensus.generate ~rng:(Rng.of_int 0) ~params:bad g addressing); false
     with Invalid_argument _ -> true)

let test_consensus_serialization_roundtrip () =
  let _, _, _, consensus = setup 3 in
  let s = Consensus.to_string consensus in
  let consensus' = Consensus.of_string s in
  check_int "relay count" (Consensus.n_relays consensus) (Consensus.n_relays consensus');
  let r = consensus.Consensus.relays.(0) and r' = consensus'.Consensus.relays.(0) in
  check_bool "first relay survives" true
    (Relay.equal r r' && r.Relay.bandwidth = r'.Relay.bandwidth
     && r.Relay.nickname = r'.Relay.nickname
     && Asn.equal r.Relay.asn r'.Relay.asn);
  check_int "guards survive" (List.length (Consensus.guards consensus))
    (List.length (Consensus.guards consensus'))

let test_consensus_relays_in_hosting () =
  (* hosting ASes should collectively host a disproportionate share *)
  let _, g, _, consensus = setup 4 in
  let hosting = Topo_gen.hosting_ases g |> List.map fst in
  let hosted =
    List.fold_left (fun acc a -> acc + List.length (Consensus.relays_in consensus a))
      0 hosting
  in
  let frac = float_of_int hosted /. float_of_int (Consensus.n_relays consensus) in
  check_bool "hosting ASes over-represented" true (frac > 0.3)

let test_consensus_deterministic () =
  let _, _, _, c1 = setup 5 in
  let _, _, _, c2 = setup 5 in
  Alcotest.(check string) "same consensus" (Consensus.to_string c1)
    (Consensus.to_string c2)

(* ---- Tor_prefix ------------------------------------------------------ *)

let test_tor_prefix_mapping () =
  let _, _, addressing, consensus = setup 6 in
  let tp = Tor_prefix.compute addressing consensus in
  check_bool "some prefixes found" true (Tor_prefix.count tp > 0);
  check_int "nothing unmapped" 0 (Tor_prefix.unmapped tp);
  (* every guard/exit relay maps to a prefix that contains it and is the
     most specific announced one *)
  List.iter
    (fun (r : Relay.t) ->
       match Tor_prefix.prefix_of_relay tp r with
       | Some (p, origin) ->
           check_bool "contains the relay" true (Prefix.mem r.Relay.ip p);
           check_bool "most specific" true
             (match Addressing.covering_prefix addressing r.Relay.ip with
              | Some (p', o') -> Prefix.equal p p' && Asn.equal origin o'
              | None -> false)
       | None -> Alcotest.fail "guard/exit relay unmapped")
    (Consensus.guard_or_exit consensus)

let test_tor_prefix_entries_consistent () =
  let _, _, addressing, consensus = setup 7 in
  let tp = Tor_prefix.compute addressing consensus in
  let total_relays =
    List.fold_left (fun acc e -> acc + List.length e.Tor_prefix.relays) 0
      (Tor_prefix.entries tp)
  in
  check_int "entries partition the guard/exit relays"
    (List.length (Consensus.guard_or_exit consensus)) total_relays;
  check_int "counts agree" (Tor_prefix.count tp)
    (List.length (Tor_prefix.entries tp));
  List.iter
    (fun e -> check_bool "is_tor_prefix" true (Tor_prefix.is_tor_prefix tp e.Tor_prefix.prefix))
    (Tor_prefix.entries tp);
  check_int "relays_per_prefix matches" (Tor_prefix.count tp)
    (List.length (Tor_prefix.relays_per_prefix tp))

(* ---- Path_selection -------------------------------------------------- *)

let test_pick_weighted_bias () =
  let rng = Rng.of_int 8 in
  let mk bw ip =
    Relay.make ~nickname:"r" ~ip:(Ipv4.of_string ip) ~asn:(Asn.of_int 1)
      ~bandwidth:bw ~flags:[ Relay.Guard ]
  in
  let heavy = mk 900 "10.0.0.1" and light = mk 100 "10.1.0.1" in
  let heavy_count = ref 0 in
  for _ = 1 to 5000 do
    if Relay.equal (Path_selection.pick_weighted ~rng [ heavy; light ]) heavy then
      incr heavy_count
  done;
  let frac = float_of_int !heavy_count /. 5000. in
  check_bool "bandwidth weighting holds" true (Float.abs (frac -. 0.9) < 0.03)

let test_conflict_rule () =
  let mk ip =
    Relay.make ~nickname:"r" ~ip:(Ipv4.of_string ip) ~asn:(Asn.of_int 1)
      ~bandwidth:10 ~flags:[]
  in
  check_bool "same /16 conflicts" true
    (Path_selection.conflict (mk "10.0.0.1") (mk "10.0.255.9"));
  check_bool "different /16 ok" false
    (Path_selection.conflict (mk "10.0.0.1") (mk "10.1.0.1"))

let test_pick_guards () =
  let rng, _, _, consensus = setup 9 in
  let guards = Path_selection.pick_guards ~rng consensus ~n:3 in
  check_int "three guards" 3 (List.length guards);
  List.iter (fun g -> check_bool "guard flagged" true (Relay.is_guard g)) guards;
  (* pairwise no conflicts *)
  List.iteri
    (fun i a ->
       List.iteri
         (fun j b ->
            if i < j then
              check_bool "diverse /16s" false (Path_selection.conflict a b))
         guards)
    guards

let test_build_circuit () =
  let rng, _, _, consensus = setup 10 in
  let guards = Path_selection.pick_guards ~rng consensus ~n:3 in
  for _ = 1 to 50 do
    let c = Path_selection.build_circuit ~rng consensus ~guards in
    check_bool "guard from set" true
      (List.exists (Relay.equal c.Path_selection.guard) guards);
    check_bool "exit flagged" true (Relay.is_exit c.Path_selection.exit);
    check_bool "no conflicts" false
      (Path_selection.conflict c.Path_selection.guard c.Path_selection.exit
       || Path_selection.conflict c.Path_selection.guard c.Path_selection.middle
       || Path_selection.conflict c.Path_selection.middle c.Path_selection.exit)
  done

let test_client_guard_rotation () =
  let rng, _, addressing, consensus = setup 11 in
  let ip = Addressing.address_in ~rng addressing (Asn.of_int 100) in
  let client =
    Path_selection.make_client ~rng consensus ~id:0 ~asn:(Asn.of_int 100) ~ip 0.
  in
  check_int "three guards by default" 3 (List.length client.Path_selection.guard_set);
  let rotated =
    Path_selection.rotate_guards_if_due ~rng consensus
      ~rotation_period:(30. *. 86400.) ~now:(10. *. 86400.) client
  in
  check_bool "not due yet" false rotated;
  let rotated =
    Path_selection.rotate_guards_if_due ~rng consensus
      ~rotation_period:(30. *. 86400.) ~now:(31. *. 86400.) client
  in
  check_bool "rotates when due" true rotated;
  check_bool "timestamp updated" true
    (client.Path_selection.guards_chosen_at = 31. *. 86400.)

(* ---- Consensus dynamics ----------------------------------------------- *)

let dynamics_for seed ~n_epochs =
  let rng, g, addressing, base = setup seed in
  let cd =
    Consensus_dynamics.generate ~rng:(Rng.split rng)
      ~gen:Consensus.small_params ~n_epochs g addressing base
  in
  (base, cd)

(* Conservation: epoch 0 is the base verbatim, and every later epoch's
   population is exactly the previous one plus arrivals minus
   departures — relays never appear or vanish unaccounted. *)
let prop_epoch_conservation =
  QCheck.Test.make ~name:"epoch populations conserve joins and departures"
    ~count:10 QCheck.(int_bound 10_000)
    (fun seed ->
       let base, cd = dynamics_for seed ~n_epochs:8 in
       let n i = Consensus.n_relays (Consensus_dynamics.at cd i).Consensus_dynamics.consensus in
       let ok0 =
         n 0 = Consensus.n_relays base
         && (Consensus_dynamics.at cd 0).Consensus_dynamics.joined = []
         && (Consensus_dynamics.at cd 0).Consensus_dynamics.departed = []
       in
       let rec check i =
         if i >= Consensus_dynamics.n_epochs cd then true
         else
           let e = Consensus_dynamics.at cd i in
           n i = n (i - 1)
                 + List.length e.Consensus_dynamics.joined
                 - List.length e.Consensus_dynamics.departed
           && check (i + 1)
       in
       ok0 && check 1)

(* Guard refresh against a moving epoch: the refreshed set has the same
   size, every member comes from the new epoch's guard pool, surviving
   guards keep their identity (same IP — only the consensus record moves),
   and the reported replacement count is exactly the number of departed
   guards. *)
let prop_refresh_guards_against_epochs =
  QCheck.Test.make ~name:"refresh_guards tracks epoch departures exactly"
    ~count:10 QCheck.(int_bound 10_000)
    (fun seed ->
       let _, cd = dynamics_for seed ~n_epochs:6 in
       let rng = Rng.of_int (seed + 77) in
       let epoch0 = (Consensus_dynamics.at cd 0).Consensus_dynamics.consensus in
       let guards = ref (Path_selection.pick_guards ~rng epoch0 ~n:3) in
       let ok = ref true in
       for i = 1 to Consensus_dynamics.n_epochs cd - 1 do
         let c = (Consensus_dynamics.at cd i).Consensus_dynamics.consensus in
         let pool = Consensus.guards c in
         let departed =
           List.filter
             (fun g -> not (List.exists (Relay.equal g) pool))
             !guards
         in
         let refreshed, replaced = Path_selection.refresh_guards ~rng c !guards in
         if List.length refreshed <> List.length !guards then ok := false;
         if replaced <> List.length departed then ok := false;
         List.iter
           (fun g ->
              if not (List.exists (Relay.equal g) pool) then ok := false)
           refreshed;
         List.iter
           (fun g ->
              if not (List.exists (Relay.equal g) departed
                      || List.exists (Relay.equal g) refreshed)
              then ok := false)
           !guards;
         guards := refreshed
       done;
       !ok)

(* Golden: 24 epochs from seed 7 render to one pinned digest — the
   byte-stability witness for the whole generator (any change to the draw
   order, the site machinery or the rendering shows up here). *)
let test_consensus_dynamics_golden () =
  let _, cd = dynamics_for 7 ~n_epochs:24 in
  let digest = Digest.to_hex (Digest.string (Consensus_dynamics.to_string cd)) in
  Alcotest.(check string) "24-epoch rendering digest"
    "4cacffc178f4f278cbc736be6317058c" digest

let test_consensus_dynamics_time_index () =
  let _, cd = dynamics_for 7 ~n_epochs:4 in
  check_int "negative clamps to 0" 0 (Consensus_dynamics.epoch_of_time cd (-5.));
  check_int "mid-epoch" 1 (Consensus_dynamics.epoch_of_time cd 3_700.);
  check_int "past the end clamps" 3
    (Consensus_dynamics.epoch_of_time cd 1e9);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Consensus_dynamics.at: epoch out of range")
    (fun () -> ignore (Consensus_dynamics.at cd 4))

let prop_circuits_always_valid =
  QCheck.Test.make ~name:"circuits never violate diversity" ~count:30
    QCheck.(int_bound 10_000)
    (fun seed ->
       let rng, _, _, consensus = setup seed in
       let guards = Path_selection.pick_guards ~rng consensus ~n:3 in
       let c = Path_selection.build_circuit ~rng consensus ~guards in
       not
         (Path_selection.conflict c.Path_selection.guard c.Path_selection.exit
          || Path_selection.conflict c.Path_selection.guard c.Path_selection.middle
          || Path_selection.conflict c.Path_selection.middle c.Path_selection.exit))

let prop_consensus_counts_exact =
  QCheck.Test.make ~name:"generated consensus always hits the pinned counts"
    ~count:8 QCheck.(int_bound 10_000)
    (fun seed ->
       let _, _, _, consensus = setup seed in
       let p = Consensus.small_params in
       Consensus.n_relays consensus = p.Consensus.n_relays
       && List.length (Consensus.guards consensus) = p.Consensus.n_guards
       && List.length (Consensus.exits consensus) = p.Consensus.n_exits)

let prop_serialization_stable =
  QCheck.Test.make ~name:"consensus serialization is a fixpoint" ~count:5
    QCheck.(int_bound 10_000)
    (fun seed ->
       let _, _, _, consensus = setup seed in
       let s1 = Consensus.to_string consensus in
       let s2 = Consensus.to_string (Consensus.of_string s1) in
       s1 = s2)

let qsuite = List.map (fun t -> QCheck_alcotest.to_alcotest t)

let () =
  Alcotest.run "qs_tor"
    [ ("relay",
       [ Alcotest.test_case "flags" `Quick test_relay_flags;
         Alcotest.test_case "flag strings" `Quick test_relay_flag_strings ]);
      ("consensus",
       [ Alcotest.test_case "flag counts" `Quick test_consensus_counts;
         Alcotest.test_case "param validation" `Quick test_consensus_params_validated;
         Alcotest.test_case "serialization roundtrip" `Quick
           test_consensus_serialization_roundtrip;
         Alcotest.test_case "hosting concentration" `Quick
           test_consensus_relays_in_hosting;
         Alcotest.test_case "deterministic" `Quick test_consensus_deterministic ]);
      ("tor_prefix",
       [ Alcotest.test_case "relay mapping" `Quick test_tor_prefix_mapping;
         Alcotest.test_case "entries consistent" `Quick
           test_tor_prefix_entries_consistent ]);
      ("consensus_dynamics",
       [ Alcotest.test_case "24-epoch golden digest" `Quick
           test_consensus_dynamics_golden;
         Alcotest.test_case "time indexing" `Quick
           test_consensus_dynamics_time_index ]
       @ qsuite
           [ prop_epoch_conservation; prop_refresh_guards_against_epochs ]);
      ("path_selection",
       [ Alcotest.test_case "bandwidth weighting" `Quick test_pick_weighted_bias;
         Alcotest.test_case "/16 conflict rule" `Quick test_conflict_rule;
         Alcotest.test_case "guard sets" `Quick test_pick_guards;
         Alcotest.test_case "circuit constraints" `Quick test_build_circuit;
         Alcotest.test_case "guard rotation" `Quick test_client_guard_rotation ]
       @ qsuite [ prop_circuits_always_valid ]);
      ("properties",
       qsuite [ prop_consensus_counts_exact; prop_serialization_stable ]) ]
